package sptc_test

import (
	"io"
	"strings"
	"testing"

	"sptc"
)

const quickProgram = `
var data int[1024];
var total int;

func main() {
	var i int;
	for (i = 0; i < 1024; i++) {
		data[i] = (i * 2654435761) & 4095;
	}
	for (i = 0; i < 1024; i++) {
		var v int = data[i] * 3 + (data[i] >> 2) + data[i] % 7;
		v = v + v % 13 + (v >> 1) % 11 + (v & 31);
		total = (total + v) & 268435455;
	}
	print(total);
}
`

func TestCompileAndSimulate(t *testing.T) {
	base, err := sptc.Compile("q.spl", quickProgram, sptc.LevelBase)
	if err != nil {
		t.Fatalf("compile base: %v", err)
	}
	var baseOut strings.Builder
	baseSim, err := sptc.Simulate(base, &baseOut)
	if err != nil {
		t.Fatalf("simulate base: %v", err)
	}

	best, err := sptc.Compile("q.spl", quickProgram, sptc.LevelBest)
	if err != nil {
		t.Fatalf("compile best: %v", err)
	}
	var bestOut strings.Builder
	bestSim, err := sptc.Simulate(best, &bestOut)
	if err != nil {
		t.Fatalf("simulate best: %v", err)
	}

	if baseOut.String() != bestOut.String() {
		t.Fatalf("outputs differ: %q vs %q", baseOut.String(), bestOut.String())
	}
	if len(best.Reports) == 0 {
		t.Error("no loop reports")
	}
	if bestSim.Cycles <= 0 || baseSim.Cycles <= 0 {
		t.Error("cycle counts missing")
	}
}

func TestDefaultMachineConfigMatchesPaper(t *testing.T) {
	cfg := sptc.DefaultMachineConfig()
	if cfg.ForkOverhead != 6 {
		t.Errorf("fork overhead %v, paper says 6 cycles", cfg.ForkOverhead)
	}
	if cfg.CommitOverhead != 5 {
		t.Errorf("commit overhead %v, paper says 5 cycles", cfg.CommitOverhead)
	}
	if cfg.MispredictPenalty != 5 {
		t.Errorf("branch misprediction %v, paper says 5 cycles", cfg.MispredictPenalty)
	}
}

func TestDefaultOptionsMatchPaper(t *testing.T) {
	opt := sptc.DefaultOptions(sptc.LevelBest)
	if opt.Partition.MaxVCs != 30 {
		t.Errorf("VC limit %d, paper skips loops with more than 30", opt.Partition.MaxVCs)
	}
	if opt.Select.MaxBodySize != 1000 {
		t.Errorf("max body size %d, paper's limit is 1000", opt.Select.MaxBodySize)
	}
	if opt.Select.MinIterCount != 2 {
		t.Errorf("min iteration count %v, paper rejects counts below 2", opt.Select.MinIterCount)
	}
}

func TestCoverageOptions(t *testing.T) {
	res, err := sptc.Compile("q.spl", quickProgram, sptc.LevelBase)
	if err != nil {
		t.Fatal(err)
	}
	opt, sizes := sptc.CoverageOptions(res.Prog, 1000)
	if len(sizes) == 0 || len(opt.AttributeLoops) != len(sizes) {
		t.Fatalf("coverage options incomplete: %d sizes, %d loops", len(sizes), len(opt.AttributeLoops))
	}
	// A tiny limit excludes everything.
	_, none := sptc.CoverageOptions(res.Prog, 1)
	if len(none) != 0 {
		t.Errorf("limit 1 should exclude all loops, got %d", len(none))
	}
}

func TestSimulateWithCustomConfig(t *testing.T) {
	res, err := sptc.Compile("q.spl", quickProgram, sptc.LevelBase)
	if err != nil {
		t.Fatal(err)
	}
	fast := sptc.DefaultMachineConfig()
	fast.MemLat = 10 // dramatically faster memory
	slow := sptc.DefaultMachineConfig()
	slow.MemLat = 800

	fastSim, err := sptc.SimulateWith(res, fast, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	slowSim, err := sptc.SimulateWith(res, slow, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if fastSim.Cycles >= slowSim.Cycles {
		t.Errorf("faster memory should reduce cycles: %.0f vs %.0f", fastSim.Cycles, slowSim.Cycles)
	}
}
