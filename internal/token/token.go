// Package token defines the lexical tokens of SPL, the small C-like
// language compiled by the SPT framework.
package token

import "strconv"

// Kind is the set of lexical token kinds.
type Kind int

// Token kinds.
const (
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT    // foo
	INTLIT   // 123
	FLOATLIT // 1.5
	STRLIT   // "abc" (print only)

	// Operators and delimiters.
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %

	AMP   // &
	PIPE  // |
	CARET // ^
	SHL   // <<
	SHR   // >>

	LAND // &&
	LOR  // ||
	NOT  // !

	ASSIGN     // =
	PLUSEQ     // +=
	MINUSEQ    // -=
	STAREQ     // *=
	SLASHEQ    // /=
	PERCENTEQ  // %=
	INC        // ++
	DEC        // --
	EQ         // ==
	NEQ        // !=
	LT         // <
	GT         // >
	LEQ        // <=
	GEQ        // >=
	LPAREN     // (
	RPAREN     // )
	LBRACE     // {
	RBRACE     // }
	LBRACKET   // [
	RBRACKET   // ]
	COMMA      // ,
	SEMICOLON  // ;
	TILDE      // ~
	QUESTION   // ? (reserved; not yet in grammar)
	COLON      // : (reserved)
	keywordBeg // marker

	// Keywords.
	FUNC
	VAR
	IF
	ELSE
	WHILE
	FOR
	DO
	BREAK
	CONTINUE
	RETURN
	INT
	FLOAT
	keywordEnd // marker
)

var names = map[Kind]string{
	ILLEGAL:   "ILLEGAL",
	EOF:       "EOF",
	IDENT:     "IDENT",
	INTLIT:    "INTLIT",
	FLOATLIT:  "FLOATLIT",
	STRLIT:    "STRLIT",
	PLUS:      "+",
	MINUS:     "-",
	STAR:      "*",
	SLASH:     "/",
	PERCENT:   "%",
	AMP:       "&",
	PIPE:      "|",
	CARET:     "^",
	SHL:       "<<",
	SHR:       ">>",
	LAND:      "&&",
	LOR:       "||",
	NOT:       "!",
	ASSIGN:    "=",
	PLUSEQ:    "+=",
	MINUSEQ:   "-=",
	STAREQ:    "*=",
	SLASHEQ:   "/=",
	PERCENTEQ: "%=",
	INC:       "++",
	DEC:       "--",
	EQ:        "==",
	NEQ:       "!=",
	LT:        "<",
	GT:        ">",
	LEQ:       "<=",
	GEQ:       ">=",
	LPAREN:    "(",
	RPAREN:    ")",
	LBRACE:    "{",
	RBRACE:    "}",
	LBRACKET:  "[",
	RBRACKET:  "]",
	COMMA:     ",",
	SEMICOLON: ";",
	TILDE:     "~",
	QUESTION:  "?",
	COLON:     ":",
	FUNC:      "func",
	VAR:       "var",
	IF:        "if",
	ELSE:      "else",
	WHILE:     "while",
	FOR:       "for",
	DO:        "do",
	BREAK:     "break",
	CONTINUE:  "continue",
	RETURN:    "return",
	INT:       "int",
	FLOAT:     "float",
}

// String returns a printable name for the token kind.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return "Kind(" + strconv.Itoa(int(k)) + ")"
}

// IsKeyword reports whether k is a reserved word.
func (k Kind) IsKeyword() bool { return k > keywordBeg && k < keywordEnd }

var keywords = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		m[names[k]] = k
	}
	return m
}()

// Lookup maps an identifier spelling to its keyword kind, or IDENT.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// Precedence returns the binary-operator precedence of k (higher binds
// tighter), or 0 if k is not a binary operator.
func (k Kind) Precedence() int {
	switch k {
	case LOR:
		return 1
	case LAND:
		return 2
	case PIPE:
		return 3
	case CARET:
		return 4
	case AMP:
		return 5
	case EQ, NEQ:
		return 6
	case LT, GT, LEQ, GEQ:
		return 7
	case SHL, SHR:
		return 8
	case PLUS, MINUS:
		return 9
	case STAR, SLASH, PERCENT:
		return 10
	}
	return 0
}
