package token_test

import (
	"testing"

	"sptc/internal/token"
)

func TestLookup(t *testing.T) {
	cases := map[string]token.Kind{
		"func": token.FUNC, "var": token.VAR, "if": token.IF, "else": token.ELSE,
		"while": token.WHILE, "for": token.FOR, "do": token.DO,
		"break": token.BREAK, "continue": token.CONTINUE, "return": token.RETURN,
		"int": token.INT, "float": token.FLOAT,
		"foo": token.IDENT, "Func": token.IDENT, "whilex": token.IDENT,
	}
	for s, want := range cases {
		if got := token.Lookup(s); got != want {
			t.Errorf("Lookup(%q) = %s, want %s", s, got, want)
		}
	}
}

func TestIsKeyword(t *testing.T) {
	if !token.FUNC.IsKeyword() || !token.FLOAT.IsKeyword() {
		t.Error("keywords misclassified")
	}
	if token.IDENT.IsKeyword() || token.PLUS.IsKeyword() || token.EOF.IsKeyword() {
		t.Error("non-keywords misclassified")
	}
}

func TestPrecedenceOrdering(t *testing.T) {
	// Tighter binders have strictly higher precedence.
	chains := [][]token.Kind{
		{token.LOR, token.LAND, token.PIPE, token.CARET, token.AMP, token.EQ, token.LT, token.SHL, token.PLUS, token.STAR},
	}
	for _, chain := range chains {
		for i := 1; i < len(chain); i++ {
			lo, hi := chain[i-1], chain[i]
			if lo.Precedence() >= hi.Precedence() {
				t.Errorf("%s (%d) should bind looser than %s (%d)",
					lo, lo.Precedence(), hi, hi.Precedence())
			}
		}
	}
	if token.ASSIGN.Precedence() != 0 || token.IDENT.Precedence() != 0 {
		t.Error("non-binary tokens must have precedence 0")
	}
	if token.EQ.Precedence() != token.NEQ.Precedence() {
		t.Error("== and != must share precedence")
	}
	if token.PLUS.Precedence() != token.MINUS.Precedence() {
		t.Error("+ and - must share precedence")
	}
}

func TestStrings(t *testing.T) {
	if token.PLUSEQ.String() != "+=" || token.SHR.String() != ">>" || token.FUNC.String() != "func" {
		t.Error("token spellings wrong")
	}
	if token.Kind(9999).String() == "" {
		t.Error("unknown kinds need a printable form")
	}
}
