package sem_test

import (
	"strings"
	"testing"

	"sptc/internal/parser"
	"sptc/internal/sem"
)

func check(t *testing.T, src string) (*sem.Info, error) {
	t.Helper()
	p, err := parser.Parse("t.spl", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return sem.Check(p)
}

func mustCheck(t *testing.T, src string) *sem.Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return info
}

func mustFail(t *testing.T, src, wantSubstr string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("expected error containing %q", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error %q does not mention %q", err, wantSubstr)
	}
}

func TestValidProgram(t *testing.T) {
	info := mustCheck(t, `
var g int = 2 + 3;
var a float[8];

func helper(x int, s float) float {
	return float(x) + s;
}

func main() {
	var i int;
	for (i = 0; i < 8; i++) {
		a[i] = helper(i, 0.5) * 2.0;
	}
	print("sum", a[0], g);
}
`)
	if len(info.Globals) != 2 {
		t.Errorf("globals: %d", len(info.Globals))
	}
	if info.Funcs["helper"] == nil || info.Funcs["main"] == nil {
		t.Error("function table incomplete")
	}
}

func TestScoping(t *testing.T) {
	mustCheck(t, `
func main() {
	var x int = 1;
	{
		var x float = 2.0; // shadows outer x
		print(x);
	}
	print(x);
}
`)
	mustFail(t, `func main() { var x int; var x int; }`, "redeclared")
	mustFail(t, `func main() { print(y); }`, "undefined: y")
	mustFail(t, `func f(a int, a int) { }`, "redeclared")
}

func TestTypeRules(t *testing.T) {
	// Implicit int->float widening is allowed.
	mustCheck(t, `func main() { var f float = 3; f = f + 1; }`)
	// float->int requires a cast.
	mustFail(t, `func main() { var i int = 1.5; }`, "cast")
	mustFail(t, `func main() { var f float; var i int = f; }`, "cast")
	// % and bitwise ops are int-only.
	mustFail(t, `func main() { var f float = 1.5 % 2.0; }`, "int")
	mustFail(t, `func main() { var f float = 1.0 & 2.0; }`, "int")
	// Array index must be int.
	mustFail(t, `var a int[4]; func main() { a[1.5] = 0; }`, "index must be int")
}

func TestArrays(t *testing.T) {
	mustFail(t, `func main() { var a int[4]; }`, "global scope")
	mustFail(t, `var a int[4]; func main() { a = 3; }`, "array")
	mustFail(t, `var a int[4]; func main() { print(a); }`, "without index")
	mustFail(t, `var m int[2][2]; func main() { m[0] = 1; }`, "dimension")
}

func TestFunctions(t *testing.T) {
	mustFail(t, `func f() int { } func main() { f(1); }`, "argument")
	mustFail(t, `func f(x int) {} func main() { f(); }`, "argument")
	mustFail(t, `func main() { nosuch(); }`, "undefined function")
	mustFail(t, `func f() {} func f() {} func main() {}`, "redeclared")
	mustFail(t, `func print() {} func main() {}`, "builtin")
	mustFail(t, `func f() int { return; } func main() {}`, "missing return value")
	mustFail(t, `func f() { return 3; } func main() {}`, "void function")
}

func TestBreakContinueOutsideLoop(t *testing.T) {
	mustFail(t, `func main() { break; }`, "break outside loop")
	mustFail(t, `func main() { continue; }`, "continue outside loop")
	mustCheck(t, `func main() { while (1) { if (1) { break; } continue; } }`)
}

func TestBuiltins(t *testing.T) {
	mustCheck(t, `func main() {
		print(fabs(-1.5), fsqrt(2.0), fmin(1.0, 2.0), fmax(1.0, 2.0));
		print(iabs(-3), imin(1, 2), imax(1, 2));
	}`)
	mustFail(t, `func main() { var f float = fabs(); }`, "argument")
	mustFail(t, `func main() { print(imin(1.5, 2)); }`, "must be int")
}

func TestGlobalInitializers(t *testing.T) {
	mustCheck(t, `var x int = 1 << 4; func main() {}`)
	mustFail(t, `var x int = y; var y int; func main() {}`, "")
	mustFail(t, `func f() int { return 1; } var x int = f(); func main() {}`, "constant")
}

func TestMainRequired(t *testing.T) {
	mustFail(t, `func helper() {}`, "no main")
}

func TestStringOnlyInPrint(t *testing.T) {
	mustCheck(t, `func main() { print("label", 3); }`)
	mustFail(t, `func main() { var x int = "nope"; }`, "string literal")
}

func TestUsesResolved(t *testing.T) {
	info := mustCheck(t, `
var g int;
func main() {
	var l int = g;
	l = l + g;
	print(l);
}
`)
	// Every identifier use must resolve to a symbol.
	countGlobal := 0
	for _, sym := range info.Uses {
		if sym.Kind == sem.SymGlobal {
			countGlobal++
		}
	}
	if countGlobal != 2 {
		t.Errorf("expected 2 uses of global g, got %d", countGlobal)
	}
}
