// Package sem implements symbol resolution and type checking for SPL.
package sem

import (
	"sptc/internal/ast"
	"sptc/internal/source"
	"sptc/internal/token"
)

// SymbolKind distinguishes where a symbol lives.
type SymbolKind int

// Symbol kinds.
const (
	SymGlobal SymbolKind = iota
	SymParam
	SymLocal
)

func (k SymbolKind) String() string {
	switch k {
	case SymGlobal:
		return "global"
	case SymParam:
		return "param"
	case SymLocal:
		return "local"
	}
	return "?"
}

// Symbol is a resolved variable.
type Symbol struct {
	ID   int // unique within the program
	Name string
	Kind SymbolKind
	Type ast.Type
	Decl *ast.VarDecl // nil for params
}

// Builtin describes a builtin function signature.
type Builtin struct {
	Name     string
	Params   []ast.TypeKind // TypeInvalid means "any numeric"
	Variadic bool           // print
	Result   ast.TypeKind
}

// Builtins is the table of SPL builtin functions.
var Builtins = map[string]*Builtin{
	"fabs":  {Name: "fabs", Params: []ast.TypeKind{ast.TypeFloat}, Result: ast.TypeFloat},
	"fmin":  {Name: "fmin", Params: []ast.TypeKind{ast.TypeFloat, ast.TypeFloat}, Result: ast.TypeFloat},
	"fmax":  {Name: "fmax", Params: []ast.TypeKind{ast.TypeFloat, ast.TypeFloat}, Result: ast.TypeFloat},
	"fsqrt": {Name: "fsqrt", Params: []ast.TypeKind{ast.TypeFloat}, Result: ast.TypeFloat},
	"iabs":  {Name: "iabs", Params: []ast.TypeKind{ast.TypeInt}, Result: ast.TypeInt},
	"imin":  {Name: "imin", Params: []ast.TypeKind{ast.TypeInt, ast.TypeInt}, Result: ast.TypeInt},
	"imax":  {Name: "imax", Params: []ast.TypeKind{ast.TypeInt, ast.TypeInt}, Result: ast.TypeInt},
	"print": {Name: "print", Variadic: true, Result: ast.TypeVoid},
}

// Info holds the results of semantic analysis for one program.
type Info struct {
	Program *ast.Program
	// Uses maps each identifier occurrence to its symbol.
	Uses map[*ast.Ident]*Symbol
	// Decls maps each declaration to its symbol.
	Decls map[*ast.VarDecl]*Symbol
	// ParamSyms maps each function to its parameter symbols, in order.
	ParamSyms map[*ast.FuncDecl][]*Symbol
	// Calls maps call expressions to the callee declaration (nil for builtins).
	Calls map[*ast.CallExpr]*ast.FuncDecl
	// Funcs maps function names to declarations.
	Funcs map[string]*ast.FuncDecl
	// Globals lists global symbols in declaration order.
	Globals []*Symbol

	nextID int
}

// Check resolves and type-checks prog.
func Check(prog *ast.Program) (*Info, error) {
	info := &Info{
		Program:   prog,
		Uses:      make(map[*ast.Ident]*Symbol),
		Decls:     make(map[*ast.VarDecl]*Symbol),
		ParamSyms: make(map[*ast.FuncDecl][]*Symbol),
		Calls:     make(map[*ast.CallExpr]*ast.FuncDecl),
		Funcs:     make(map[string]*ast.FuncDecl),
	}
	c := &checker{info: info, file: prog.File}

	globalScope := newScope(nil)
	for _, d := range prog.Globals {
		sym := c.declare(globalScope, d, SymGlobal)
		info.Globals = append(info.Globals, sym)
		if d.Init != nil {
			t := c.checkExpr(globalScope, d.Init, nil)
			c.checkAssignable(d.Pos(), d.Type, t, d.Init)
			if !isConstExpr(d.Init) {
				c.errorf(d.Init.Pos(), "global initializer must be a constant expression")
			}
		}
	}
	for _, f := range prog.Funcs {
		if prev, ok := info.Funcs[f.Name]; ok {
			c.errorf(f.Pos(), "function %s redeclared (previous at %s)", f.Name, prev.Pos())
			continue
		}
		if _, isBuiltin := Builtins[f.Name]; isBuiltin {
			c.errorf(f.Pos(), "cannot redeclare builtin %s", f.Name)
			continue
		}
		info.Funcs[f.Name] = f
	}
	for _, f := range prog.Funcs {
		c.checkFunc(globalScope, f)
	}
	if _, ok := info.Funcs["main"]; !ok && len(prog.Funcs) > 0 {
		c.errorf(prog.Pos(), "program has no main function")
	}
	c.errs.Sort()
	if err := c.errs.Err(); err != nil {
		return nil, err
	}
	return info, nil
}

type scope struct {
	parent *scope
	names  map[string]*Symbol
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, names: make(map[string]*Symbol)}
}

func (s *scope) lookup(name string) *Symbol {
	for sc := s; sc != nil; sc = sc.parent {
		if sym, ok := sc.names[name]; ok {
			return sym
		}
	}
	return nil
}

type checker struct {
	info *Info
	file *source.File
	errs source.ErrorList
	fn   *ast.FuncDecl // current function
	loop int           // loop nesting depth
}

func (c *checker) errorf(pos source.Pos, format string, args ...any) {
	c.errs.Add(c.file.Name, pos, format, args...)
}

func (c *checker) declare(sc *scope, d *ast.VarDecl, kind SymbolKind) *Symbol {
	if prev, ok := sc.names[d.Name]; ok {
		c.errorf(d.Pos(), "%s redeclared in this scope (previous %s)", d.Name, prev.Kind)
	}
	if d.Type.Kind == ast.TypeArray && kind != SymGlobal {
		c.errorf(d.Pos(), "array %s must be declared at global scope", d.Name)
	}
	sym := &Symbol{ID: c.info.nextID, Name: d.Name, Kind: kind, Type: d.Type, Decl: d}
	c.info.nextID++
	sc.names[d.Name] = sym
	c.info.Decls[d] = sym
	return sym
}

func (c *checker) checkFunc(global *scope, f *ast.FuncDecl) {
	c.fn = f
	sc := newScope(global)
	for _, p := range f.Params {
		if _, ok := sc.names[p.Name]; ok {
			c.errorf(p.PosTok, "parameter %s redeclared", p.Name)
		}
		sym := &Symbol{ID: c.info.nextID, Name: p.Name, Kind: SymParam, Type: p.Type}
		c.info.nextID++
		sc.names[p.Name] = sym
		c.info.ParamSyms[f] = append(c.info.ParamSyms[f], sym)
	}
	c.checkBlock(sc, f.Body)
	c.fn = nil
}

func (c *checker) checkBlock(parent *scope, b *ast.BlockStmt) {
	sc := newScope(parent)
	for _, s := range b.Stmts {
		c.checkStmt(sc, s)
	}
}

func (c *checker) checkStmt(sc *scope, s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.checkBlock(sc, s)
	case *ast.DeclStmt:
		d := s.Decl
		if d.Init != nil {
			t := c.checkExpr(sc, d.Init, nil)
			c.checkAssignable(d.Pos(), d.Type, t, d.Init)
		}
		c.declare(sc, d, SymLocal)
	case *ast.AssignStmt:
		lt := c.checkLValue(sc, s.LHS)
		rt := c.checkExpr(sc, s.RHS, nil)
		if s.Op != token.ASSIGN && lt.Kind == ast.TypeFloat && s.Op == token.PERCENTEQ {
			c.errorf(s.Pos(), "%% is not defined on float")
		}
		c.checkAssignable(s.Pos(), lt, rt, s.RHS)
	case *ast.ExprStmt:
		c.checkExpr(sc, s.X, nil)
	case *ast.IfStmt:
		c.checkCond(sc, s.Cond)
		c.checkBlock(sc, s.Then)
		if s.Else != nil {
			c.checkStmt(sc, s.Else)
		}
	case *ast.WhileStmt:
		c.checkCond(sc, s.Cond)
		c.loop++
		c.checkBlock(sc, s.Body)
		c.loop--
	case *ast.DoWhileStmt:
		c.loop++
		c.checkBlock(sc, s.Body)
		c.loop--
		c.checkCond(sc, s.Cond)
	case *ast.ForStmt:
		inner := newScope(sc)
		if s.Init != nil {
			c.checkStmt(inner, s.Init)
		}
		if s.Cond != nil {
			c.checkCond(inner, s.Cond)
		}
		if s.Post != nil {
			c.checkStmt(inner, s.Post)
		}
		c.loop++
		c.checkBlock(inner, s.Body)
		c.loop--
	case *ast.BreakStmt:
		if c.loop == 0 {
			c.errorf(s.Pos(), "break outside loop")
		}
	case *ast.ContinueStmt:
		if c.loop == 0 {
			c.errorf(s.Pos(), "continue outside loop")
		}
	case *ast.ReturnStmt:
		want := c.fn.Result
		if s.X == nil {
			if want.Kind != ast.TypeVoid {
				c.errorf(s.Pos(), "missing return value (function returns %s)", want)
			}
			return
		}
		if want.Kind == ast.TypeVoid {
			c.errorf(s.Pos(), "void function returns a value")
			c.checkExpr(sc, s.X, nil)
			return
		}
		t := c.checkExpr(sc, s.X, nil)
		c.checkAssignable(s.Pos(), want, t, s.X)
	}
}

func (c *checker) checkCond(sc *scope, e ast.Expr) {
	t := c.checkExpr(sc, e, nil)
	if !t.IsNumeric() {
		c.errorf(e.Pos(), "condition must be numeric, got %s", t)
	}
}

func (c *checker) checkLValue(sc *scope, e ast.Expr) ast.Type {
	switch e := e.(type) {
	case *ast.Ident:
		sym := c.resolve(sc, e)
		if sym == nil {
			return ast.Type{Kind: ast.TypeInt}
		}
		if sym.Type.Kind == ast.TypeArray {
			c.errorf(e.Pos(), "cannot assign to array %s as a whole", e.Name)
			return ast.Type{Kind: sym.Type.Elem}
		}
		ast.SetType(e, sym.Type)
		return sym.Type
	case *ast.IndexExpr:
		return c.checkExpr(sc, e, nil)
	default:
		c.errorf(e.Pos(), "invalid assignment target")
		return ast.Type{Kind: ast.TypeInt}
	}
}

func (c *checker) resolve(sc *scope, id *ast.Ident) *Symbol {
	sym := sc.lookup(id.Name)
	if sym == nil {
		c.errorf(id.Pos(), "undefined: %s", id.Name)
		return nil
	}
	c.info.Uses[id] = sym
	return sym
}

func (c *checker) checkAssignable(pos source.Pos, dst, src ast.Type, rhs ast.Expr) {
	if dst.Kind == ast.TypeArray {
		return // already reported
	}
	if dst.Kind == src.Kind {
		return
	}
	if dst.Kind == ast.TypeFloat && src.Kind == ast.TypeInt {
		return // implicit widening
	}
	c.errorf(pos, "cannot assign %s to %s (use an explicit cast)", src, dst)
	_ = rhs
}

func (c *checker) checkExpr(sc *scope, e ast.Expr, _ *ast.Type) ast.Type {
	switch e := e.(type) {
	case *ast.IntLit:
		t := ast.Type{Kind: ast.TypeInt}
		ast.SetType(e, t)
		return t
	case *ast.FloatLit:
		t := ast.Type{Kind: ast.TypeFloat}
		ast.SetType(e, t)
		return t
	case *ast.StrLit:
		c.errorf(e.Pos(), "string literal only allowed as print argument")
		t := ast.Type{Kind: ast.TypeInt}
		ast.SetType(e, t)
		return t
	case *ast.Ident:
		sym := c.resolve(sc, e)
		if sym == nil {
			t := ast.Type{Kind: ast.TypeInt}
			ast.SetType(e, t)
			return t
		}
		if sym.Type.Kind == ast.TypeArray {
			c.errorf(e.Pos(), "array %s used without index", e.Name)
			t := ast.Type{Kind: sym.Type.Elem}
			ast.SetType(e, t)
			return t
		}
		ast.SetType(e, sym.Type)
		return sym.Type
	case *ast.IndexExpr:
		sym := c.resolve(sc, e.Array)
		elem := ast.TypeInt
		if sym != nil {
			if sym.Type.Kind != ast.TypeArray {
				c.errorf(e.Pos(), "%s is not an array", e.Array.Name)
			} else {
				elem = sym.Type.Elem
				if len(e.Index) != len(sym.Type.Dims) {
					c.errorf(e.Pos(), "array %s has %d dimension(s), %d index(es) given",
						e.Array.Name, len(sym.Type.Dims), len(e.Index))
				}
			}
			ast.SetType(e.Array, sym.Type)
		}
		for _, ix := range e.Index {
			t := c.checkExpr(sc, ix, nil)
			if t.Kind != ast.TypeInt {
				c.errorf(ix.Pos(), "array index must be int, got %s", t)
			}
		}
		t := ast.Type{Kind: elem}
		ast.SetType(e, t)
		return t
	case *ast.BinaryExpr:
		xt := c.checkExpr(sc, e.X, nil)
		yt := c.checkExpr(sc, e.Y, nil)
		t := c.binaryType(e, xt, yt)
		ast.SetType(e, t)
		return t
	case *ast.UnaryExpr:
		xt := c.checkExpr(sc, e.X, nil)
		switch e.Op {
		case token.MINUS:
			if !xt.IsNumeric() {
				c.errorf(e.Pos(), "operand of - must be numeric")
			}
			ast.SetType(e, xt)
			return xt
		case token.NOT:
			if !xt.IsNumeric() {
				c.errorf(e.Pos(), "operand of ! must be numeric")
			}
			t := ast.Type{Kind: ast.TypeInt}
			ast.SetType(e, t)
			return t
		case token.TILDE:
			if xt.Kind != ast.TypeInt {
				c.errorf(e.Pos(), "operand of ~ must be int")
			}
			t := ast.Type{Kind: ast.TypeInt}
			ast.SetType(e, t)
			return t
		}
		t := ast.Type{Kind: ast.TypeInt}
		ast.SetType(e, t)
		return t
	case *ast.CastExpr:
		c.checkExpr(sc, e.X, nil)
		t := ast.Type{Kind: e.To}
		ast.SetType(e, t)
		return t
	case *ast.CallExpr:
		return c.checkCall(sc, e)
	}
	return ast.Type{Kind: ast.TypeInvalid}
}

func (c *checker) binaryType(e *ast.BinaryExpr, xt, yt ast.Type) ast.Type {
	intT := ast.Type{Kind: ast.TypeInt}
	floatT := ast.Type{Kind: ast.TypeFloat}
	if !xt.IsNumeric() || !yt.IsNumeric() {
		c.errorf(e.Pos(), "operands of %s must be numeric", e.Op)
		return intT
	}
	switch e.Op {
	case token.EQ, token.NEQ, token.LT, token.GT, token.LEQ, token.GEQ, token.LAND, token.LOR:
		return intT
	case token.PERCENT, token.AMP, token.PIPE, token.CARET, token.SHL, token.SHR:
		if xt.Kind != ast.TypeInt || yt.Kind != ast.TypeInt {
			c.errorf(e.Pos(), "operands of %s must be int", e.Op)
		}
		return intT
	default:
		if xt.Kind == ast.TypeFloat || yt.Kind == ast.TypeFloat {
			return floatT
		}
		return intT
	}
}

func (c *checker) checkCall(sc *scope, e *ast.CallExpr) ast.Type {
	if b, ok := Builtins[e.Name]; ok {
		if b.Variadic {
			for _, a := range e.Args {
				if _, isStr := a.(*ast.StrLit); isStr {
					ast.SetType(a, ast.Type{Kind: ast.TypeInt})
					continue
				}
				c.checkExpr(sc, a, nil)
			}
		} else {
			if len(e.Args) != len(b.Params) {
				c.errorf(e.Pos(), "%s expects %d argument(s), got %d", b.Name, len(b.Params), len(e.Args))
			}
			for i, a := range e.Args {
				t := c.checkExpr(sc, a, nil)
				if i < len(b.Params) {
					want := b.Params[i]
					if t.Kind != want && !(want == ast.TypeFloat && t.Kind == ast.TypeInt) {
						c.errorf(a.Pos(), "argument %d of %s must be %s, got %s", i+1, b.Name, want, t)
					}
				}
			}
		}
		t := ast.Type{Kind: b.Result}
		ast.SetType(e, t)
		return t
	}
	f, ok := c.info.Funcs[e.Name]
	if !ok {
		c.errorf(e.Pos(), "undefined function: %s", e.Name)
		t := ast.Type{Kind: ast.TypeInt}
		ast.SetType(e, t)
		return t
	}
	c.info.Calls[e] = f
	if len(e.Args) != len(f.Params) {
		c.errorf(e.Pos(), "%s expects %d argument(s), got %d", f.Name, len(f.Params), len(e.Args))
	}
	for i, a := range e.Args {
		t := c.checkExpr(sc, a, nil)
		if i < len(f.Params) {
			c.checkAssignable(a.Pos(), f.Params[i].Type, t, a)
		}
	}
	ast.SetType(e, f.Result)
	return f.Result
}

func isConstExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.IntLit, *ast.FloatLit:
		return true
	case *ast.UnaryExpr:
		return isConstExpr(e.X)
	case *ast.BinaryExpr:
		return isConstExpr(e.X) && isConstExpr(e.Y)
	case *ast.CastExpr:
		return isConstExpr(e.X)
	}
	return false
}
