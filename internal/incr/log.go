package incr

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// RecordLog is the framed append-only binary log underneath both the
// loop-level result store and the service's whole-program response
// cache. The file format is ninja build-log style:
//
//	header:  magic bytes (an 8-byte version tag, e.g. "sptincr1")
//	record:  u32 payload length | payload | u64 FNV-1a(payload)
//
// Records append; payload interpretation (keys, last-record-wins) is the
// caller's business. Open salvages the longest valid prefix of a corrupt
// or truncated file — a damaged log can cost warm hits but never fails
// the caller. Save appends records queued since load and compacts (full
// rewrite of live records only) after a salvage or when total records
// outnumber live ones 2:1.
//
// RecordLog is not safe for concurrent use; callers serialize access
// under their own lock.
type RecordLog struct {
	magic    string
	path     string // empty: in-memory only, persistence is a no-op
	pending  []byte // framed records not yet appended to path
	records  int    // records in file + pending (incl. superseded)
	salvaged bool   // load dropped a damaged tail: rewrite on save
}

// NewRecordLog returns a log persisting to path under the given magic
// header. An empty path gives a purely in-memory log whose Save and
// Compact are no-ops.
func NewRecordLog(magic, path string) *RecordLog {
	return &RecordLog{magic: magic, path: path}
}

// OpenRecordLog loads the log at path, creating it on first use, and
// calls fn once per checksum-valid record in file order. fn returning
// false stops the scan and marks the log for rewrite, exactly like a
// damaged record (fail-soft decode errors). Content damage never returns
// an error; the error path is for real I/O failures only.
func OpenRecordLog(magic, path string, fn func(payload []byte) bool) (*RecordLog, error) {
	l := NewRecordLog(magic, path)
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return l, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	l.load(data, fn)
	return l, nil
}

// load parses the longest valid prefix of a log image.
func (l *RecordLog) load(data []byte, fn func(payload []byte) bool) {
	if len(data) < len(l.magic) || string(data[:len(l.magic)]) != l.magic {
		// Unrecognized file: treat as empty, rewrite on save.
		l.salvaged = len(data) > 0
		return
	}
	off := len(l.magic)
	for {
		if off == len(data) {
			return // clean end
		}
		if off+4 > len(data) {
			break
		}
		n := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		rec := off + 4
		if n < 0 || rec+n+8 > len(data) {
			break // truncated record
		}
		payload := data[rec : rec+n]
		sumOff := rec + n
		var sum uint64
		for i := 0; i < 8; i++ {
			sum |= uint64(data[sumOff+i]) << (8 * i)
		}
		if payloadHash(payload) != sum {
			break // corrupt record
		}
		if !fn(payload) {
			break // caller rejected the payload
		}
		l.records++
		off = sumOff + 8
	}
	l.salvaged = true
}

// Append queues one record for the next Save and counts it. Framing is
// skipped for in-memory logs; the record count still advances so the
// compaction policy stays meaningful if a path is ever attached.
func (l *RecordLog) Append(payload []byte) {
	l.records++
	if l.path == "" {
		return
	}
	var enc encoder
	enc.u32(uint32(len(payload)))
	enc.buf = append(enc.buf, payload...)
	enc.u64(payloadHash(payload))
	l.pending = append(l.pending, enc.buf...)
}

// Records reports records in the file plus pending ones, including
// superseded records not yet compacted away.
func (l *RecordLog) Records() int { return l.records }

// Salvaged reports whether load dropped a damaged tail (the next Save
// will compact).
func (l *RecordLog) Salvaged() bool { return l.salvaged }

// Path returns the backing file path ("" for in-memory logs).
func (l *RecordLog) Path() string { return l.path }

// Save persists pending records. It appends when the log is healthy and
// compacts after a salvage or when total records outnumber the caller's
// live count 2:1; rewrite must emit every live record. A no-op for
// in-memory logs.
func (l *RecordLog) Save(live int, rewrite func(emit func(payload []byte))) error {
	if l.path == "" {
		return nil
	}
	if l.salvaged || l.records > 2*live {
		return l.Compact(rewrite)
	}
	if len(l.pending) == 0 {
		return nil
	}
	f, err := os.OpenFile(l.path, os.O_WRONLY|os.O_CREATE, 0o666)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	if st.Size() == 0 {
		if _, err := f.Write([]byte(l.magic)); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(l.pending); err != nil {
		f.Close()
		return err
	}
	l.pending = nil
	return f.Close()
}

// Compact rewrites the file with only the records rewrite emits, via a
// temp file and rename so a crash mid-compaction leaves the old log
// intact. A no-op for in-memory logs.
func (l *RecordLog) Compact(rewrite func(emit func(payload []byte))) error {
	if l.path == "" {
		return nil
	}
	tmp := l.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	var enc encoder
	enc.buf = append(enc.buf, l.magic...)
	live := 0
	rewrite(func(payload []byte) {
		enc.u32(uint32(len(payload)))
		enc.buf = append(enc.buf, payload...)
		enc.u64(payloadHash(payload))
		live++
	})
	if _, err := f.Write(enc.buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, l.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("incr: compact %s: %w", l.path, err)
	}
	l.pending = nil
	l.records = live
	l.salvaged = false
	return nil
}
