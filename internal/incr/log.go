package incr

import (
	"errors"
	"fmt"
	"io"
	"os"

	"sptc/internal/resilience"
)

// Fault-injection points on the log's durability paths (see
// resilience.Point.Writer): every disk write the log performs goes
// through a failing-writer shim armed by these names, so disk-full,
// short-write, and rename failures are testable without real faults.
var (
	flushPoint  = resilience.Register("incr.log.flush")
	renamePoint = resilience.Register("incr.log.rename")
)

// SyncPolicy selects when the log fsyncs.
type SyncPolicy int

const (
	// SyncNone never fsyncs on Flush: the OS decides when appended
	// records reach the platter. Compaction still fsyncs before its
	// rename (crash atomicity of the rewrite is not negotiable).
	SyncNone SyncPolicy = iota
	// SyncFlush fsyncs after every Flush append, so a completed flush
	// survives power loss, not just process death.
	SyncFlush
)

// RecordLog is the framed append-only binary log underneath both the
// loop-level result store and the service's whole-program response
// cache. The file format is ninja build-log style:
//
//	header:  magic bytes (an 8-byte version tag, e.g. "sptincr1")
//	record:  u32 payload length | payload | u64 FNV-1a(payload)
//
// Records append; payload interpretation (keys, last-record-wins) is the
// caller's business. Open salvages the longest valid prefix of a corrupt
// or truncated file — a damaged log can cost warm hits but never fails
// the caller. Flush appends records queued since the last flush (the
// incremental durability path a daemon runs on a ticker); Save flushes
// or compacts (full rewrite of live records only) after a salvage or
// when total records outnumber live ones 2:1.
//
// RecordLog is not safe for concurrent use; callers serialize access
// under their own lock.
type RecordLog struct {
	magic    string
	path     string // empty: in-memory only, persistence is a no-op
	pending  []byte // framed records not yet appended to path
	records  int    // records in file + pending (incl. superseded)
	salvaged bool   // load dropped a damaged tail: rewrite on save
	sync     SyncPolicy
}

// NewRecordLog returns a log persisting to path under the given magic
// header. An empty path gives a purely in-memory log whose Flush, Save
// and Compact are no-ops.
func NewRecordLog(magic, path string) *RecordLog {
	return &RecordLog{magic: magic, path: path}
}

// OpenRecordLog loads the log at path, creating it on first use, and
// calls fn once per checksum-valid record in file order. fn returning
// false stops the scan and marks the log for rewrite, exactly like a
// damaged record (fail-soft decode errors). Content damage never returns
// an error; the error path is for real I/O failures only.
func OpenRecordLog(magic, path string, fn func(payload []byte) bool) (*RecordLog, error) {
	l := NewRecordLog(magic, path)
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return l, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	l.load(data, fn)
	return l, nil
}

// load parses the longest valid prefix of a log image.
func (l *RecordLog) load(data []byte, fn func(payload []byte) bool) {
	if len(data) < len(l.magic) || string(data[:len(l.magic)]) != l.magic {
		// Unrecognized file: treat as empty, rewrite on save.
		l.salvaged = len(data) > 0
		return
	}
	off := len(l.magic)
	for {
		if off == len(data) {
			return // clean end
		}
		if off+4 > len(data) {
			break
		}
		n := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		rec := off + 4
		if n < 0 || rec+n+8 > len(data) {
			break // truncated record
		}
		payload := data[rec : rec+n]
		sumOff := rec + n
		var sum uint64
		for i := 0; i < 8; i++ {
			sum |= uint64(data[sumOff+i]) << (8 * i)
		}
		if payloadHash(payload) != sum {
			break // corrupt record
		}
		if !fn(payload) {
			break // caller rejected the payload
		}
		l.records++
		off = sumOff + 8
	}
	l.salvaged = true
}

// SetSync selects the fsync policy for Flush appends.
func (l *RecordLog) SetSync(p SyncPolicy) { l.sync = p }

// Append queues one record for the next Flush/Save and counts it.
// Framing is skipped for in-memory logs; the record count still advances
// so the compaction policy stays meaningful if a path is ever attached.
func (l *RecordLog) Append(payload []byte) {
	l.records++
	if l.path == "" {
		return
	}
	var enc encoder
	enc.u32(uint32(len(payload)))
	enc.buf = append(enc.buf, payload...)
	enc.u64(payloadHash(payload))
	l.pending = append(l.pending, enc.buf...)
}

// Records reports records in the file plus pending ones, including
// superseded records not yet compacted away.
func (l *RecordLog) Records() int { return l.records }

// Pending reports the framed bytes queued but not yet flushed.
func (l *RecordLog) Pending() int { return len(l.pending) }

// Salvaged reports whether load dropped a damaged tail, or a failed
// flush may have left one (the next Save will compact).
func (l *RecordLog) Salvaged() bool { return l.salvaged }

// Path returns the backing file path ("" for in-memory logs).
func (l *RecordLog) Path() string { return l.path }

// Flush appends pending records to the file without compacting: the
// incremental durability path. After a successful flush (plus an fsync
// under SyncFlush) every record appended so far survives a hard kill —
// a crash loses at most the records queued since the last flush.
//
// On a write failure the file may hold a torn frame, so the log is
// marked salvaged: the in-memory state is untouched and still complete,
// pending records are retained, and the next Save compacts (a full
// clean rewrite through temp+rename). A failed flush therefore never
// loses data that a later Save or restart-salvage can't recover.
func (l *RecordLog) Flush() error {
	if l.path == "" || len(l.pending) == 0 {
		return nil
	}
	if l.salvaged {
		// The file already has a damaged tail; appending after it would
		// put records beyond salvage reach. Leave them pending for the
		// compacting Save.
		return nil
	}
	if err := l.flushLocked(); err != nil {
		l.salvaged = true
		return err
	}
	return nil
}

func (l *RecordLog) flushLocked() error {
	f, err := os.OpenFile(l.path, os.O_WRONLY|os.O_CREATE, 0o666)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	w := flushPoint.Writer(f)
	if st.Size() == 0 {
		if _, err := w.Write([]byte(l.magic)); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return err
	}
	if _, err := w.Write(l.pending); err != nil {
		f.Close()
		return err
	}
	if l.sync == SyncFlush {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	l.pending = nil
	return nil
}

// Save persists pending records. It flushes (appends) when the log is
// healthy and compacts after a salvage, a failed flush, or when total
// records outnumber the caller's live count 2:1; rewrite must emit every
// live record. A no-op for in-memory logs.
func (l *RecordLog) Save(live int, rewrite func(emit func(payload []byte))) error {
	if l.path == "" {
		return nil
	}
	if l.salvaged || l.records > 2*live {
		return l.Compact(rewrite)
	}
	return l.Flush()
}

// Compact rewrites the file with only the records rewrite emits, via a
// temp file fsynced before an atomic rename, so a crash at any point —
// including between the write and the rename — leaves either the old
// complete log or the new complete log, never a torn one. A no-op for
// in-memory logs.
func (l *RecordLog) Compact(rewrite func(emit func(payload []byte))) error {
	if l.path == "" {
		return nil
	}
	tmp := l.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	var enc encoder
	enc.buf = append(enc.buf, l.magic...)
	live := 0
	rewrite(func(payload []byte) {
		enc.u32(uint32(len(payload)))
		enc.buf = append(enc.buf, payload...)
		enc.u64(payloadHash(payload))
		live++
	})
	if _, err := flushPoint.Writer(f).Write(enc.buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// fsync before rename: without it the rename can hit the directory
	// before the data hits the disk, and a power loss then replaces the
	// old log with a hole instead of the new records.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := renamePoint.Fire(nil); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("incr: compact %s: %w", l.path, err)
	}
	if err := os.Rename(tmp, l.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("incr: compact %s: %w", l.path, err)
	}
	l.pending = nil
	l.records = live
	l.salvaged = false
	return nil
}
