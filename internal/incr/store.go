package incr

import (
	"sync"
)

// The loop-result store persists through a RecordLog (see log.go): an
// append-only binary log of encoded (Key, Entry) records under the
// "sptincr1" magic. Records append; the last record for a key wins.
// Load salvages the longest valid prefix of a corrupt or truncated file
// — a damaged store can cost warm hits but can never fail a build.

const storeMagic = "sptincr1"

// Status classifies one store lookup.
type Status int

// Lookup outcomes. A lookup is Invalidated when the loop's structural
// slot was seen before with a different fingerprint — the "this loop
// changed" signal, as opposed to a Miss for a never-seen loop.
const (
	StatusMiss Status = iota
	StatusHit
	StatusInvalidated
)

func (s Status) String() string {
	switch s {
	case StatusMiss:
		return "miss"
	case StatusHit:
		return "hit"
	case StatusInvalidated:
		return "invalidated"
	}
	return "?"
}

// Store is a loop-result store: Key -> Entry, optionally persisted.
// Safe for concurrent use (the evaluation harness shares one store
// across concurrent compile jobs).
type Store struct {
	mu      sync.Mutex
	log     *RecordLog
	entries map[Key]*Entry
	slots   map[string]uint64 // slot -> last fingerprint seen
}

// New returns an empty in-memory store (no persistence; Save is a no-op).
func New() *Store {
	return &Store{
		log:     NewRecordLog(storeMagic, ""),
		entries: make(map[Key]*Entry),
		slots:   make(map[string]uint64),
	}
}

// Open loads the store at path, creating it on first use. Corrupt or
// truncated content is salvaged (longest valid prefix, damaged tail
// dropped and rewritten on the next Save): content damage never returns
// an error. The error path is for real I/O failures only.
func Open(path string) (*Store, error) {
	s := New()
	log, err := OpenRecordLog(storeMagic, path, func(payload []byte) bool {
		k, e, err := decodeRecord(payload)
		if err != nil {
			return false
		}
		s.entries[k] = e
		s.slots[e.Slot] = k.FP
		return true
	})
	if err != nil {
		return nil, err
	}
	s.log = log
	return s, nil
}

// Lookup fetches the entry for k and classifies the outcome using slot
// (the loop's structural position). On a hit the slot's fingerprint is
// refreshed in memory so later invalidation counts stay accurate.
func (s *Store) Lookup(k Key, slot string) (*Entry, Status) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[k]; ok {
		s.slots[slot] = k.FP
		return e, StatusHit
	}
	if prev, seen := s.slots[slot]; seen && prev != k.FP {
		return nil, StatusInvalidated
	}
	return nil, StatusMiss
}

// Put stores e under k and queues the record for the next Save.
func (s *Store) Put(k Key, e *Entry) {
	payload := encodeRecord(k, e)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[k] = e
	s.slots[e.Slot] = k.FP
	s.log.Append(payload)
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// SetSync selects the underlying log's fsync policy for Flush appends.
func (s *Store) SetSync(p SyncPolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log.SetSync(p)
}

// Flush appends records queued since the last flush without compacting:
// the incremental durability path a daemon runs on a ticker, so a hard
// kill loses at most one flush window of entries. A flush failure marks
// the log for a compacting rewrite on the next Save and never disturbs
// the in-memory state.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Flush()
}

// Save persists pending records. It appends when the log is healthy and
// compacts (full rewrite of live entries only) after a salvage or when
// superseded records outnumber live ones. A no-op for in-memory stores.
func (s *Store) Save() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Save(len(s.entries), s.rewrite)
}

// Compact rewrites the store file with live entries only.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Compact(s.rewrite)
}

func (s *Store) rewrite(emit func(payload []byte)) {
	for k, e := range s.entries {
		emit(encodeRecord(k, e))
	}
}
