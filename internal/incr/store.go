package incr

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Store file format (ninja build-log style append-only binary log):
//
//	header:  8-byte magic "sptincr1"
//	record:  u32 payload length | payload | u64 FNV-1a(payload)
//
// Records append; the last record for a key wins. Load salvages the
// longest valid prefix of a corrupt or truncated file — a damaged store
// can cost warm hits but can never fail a build. Save appends the
// records added since load and rewrites the whole file (compaction) when
// superseded records outnumber live ones.

const storeMagic = "sptincr1"

// Status classifies one store lookup.
type Status int

// Lookup outcomes. A lookup is Invalidated when the loop's structural
// slot was seen before with a different fingerprint — the "this loop
// changed" signal, as opposed to a Miss for a never-seen loop.
const (
	StatusMiss Status = iota
	StatusHit
	StatusInvalidated
)

func (s Status) String() string {
	switch s {
	case StatusMiss:
		return "miss"
	case StatusHit:
		return "hit"
	case StatusInvalidated:
		return "invalidated"
	}
	return "?"
}

// Store is a loop-result store: Key -> Entry, optionally persisted.
// Safe for concurrent use (the evaluation harness shares one store
// across concurrent compile jobs).
type Store struct {
	mu      sync.Mutex
	path    string // empty: in-memory only
	entries map[Key]*Entry
	slots   map[string]uint64 // slot -> last fingerprint seen
	pending []byte            // encoded records not yet appended to path
	records int               // records in file + pending (incl. superseded)
	salvage bool              // load dropped a corrupt tail: rewrite on save
}

// New returns an empty in-memory store (no persistence; Save is a no-op).
func New() *Store {
	return &Store{
		entries: make(map[Key]*Entry),
		slots:   make(map[string]uint64),
	}
}

// Open loads the store at path, creating it on first use. Corrupt or
// truncated content is salvaged (longest valid prefix, damaged tail
// dropped and rewritten on the next Save): content damage never returns
// an error. The error path is for real I/O failures only.
func Open(path string) (*Store, error) {
	s := New()
	s.path = path
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return s, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	s.load(data)
	return s, nil
}

// load parses the longest valid prefix of a store image.
func (s *Store) load(data []byte) {
	if len(data) < len(storeMagic) || string(data[:len(storeMagic)]) != storeMagic {
		// Unrecognized file: treat as empty, rewrite on save.
		s.salvage = len(data) > 0
		return
	}
	off := len(storeMagic)
	for {
		if off == len(data) {
			return // clean end
		}
		if off+4 > len(data) {
			break
		}
		n := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		rec := off + 4
		if n < 0 || rec+n+8 > len(data) {
			break // truncated record
		}
		payload := data[rec : rec+n]
		sumOff := rec + n
		var sum uint64
		for i := 0; i < 8; i++ {
			sum |= uint64(data[sumOff+i]) << (8 * i)
		}
		if payloadHash(payload) != sum {
			break // corrupt record
		}
		k, e, err := decodeRecord(payload)
		if err != nil {
			break
		}
		s.entries[k] = e
		s.slots[e.Slot] = k.FP
		s.records++
		off = sumOff + 8
	}
	s.salvage = true
}

// Lookup fetches the entry for k and classifies the outcome using slot
// (the loop's structural position). On a hit the slot's fingerprint is
// refreshed in memory so later invalidation counts stay accurate.
func (s *Store) Lookup(k Key, slot string) (*Entry, Status) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[k]; ok {
		s.slots[slot] = k.FP
		return e, StatusHit
	}
	if prev, seen := s.slots[slot]; seen && prev != k.FP {
		return nil, StatusInvalidated
	}
	return nil, StatusMiss
}

// Put stores e under k and queues the record for the next Save.
func (s *Store) Put(k Key, e *Entry) {
	payload := encodeRecord(k, e)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[k] = e
	s.slots[e.Slot] = k.FP
	s.records++
	if s.path == "" {
		return
	}
	var enc encoder
	enc.u32(uint32(len(payload)))
	enc.buf = append(enc.buf, payload...)
	enc.u64(payloadHash(payload))
	s.pending = append(s.pending, enc.buf...)
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Save persists pending records. It appends when the log is healthy and
// compacts (full rewrite of live entries only) after a salvage or when
// superseded records outnumber live ones. A no-op for in-memory stores.
func (s *Store) Save() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.path == "" {
		return nil
	}
	if s.salvage || s.records > 2*len(s.entries) {
		return s.compactLocked()
	}
	if len(s.pending) == 0 {
		return nil
	}
	f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_CREATE, 0o666)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	if st.Size() == 0 {
		if _, err := f.Write([]byte(storeMagic)); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(s.pending); err != nil {
		f.Close()
		return err
	}
	s.pending = nil
	return f.Close()
}

// Compact rewrites the store file with live entries only.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.path == "" {
		return nil
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	tmp := s.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	var enc encoder
	enc.buf = append(enc.buf, storeMagic...)
	for k, e := range s.entries {
		payload := encodeRecord(k, e)
		enc.u32(uint32(len(payload)))
		enc.buf = append(enc.buf, payload...)
		enc.u64(payloadHash(payload))
	}
	if _, err := f.Write(enc.buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("incr: compact %s: %w", s.path, err)
	}
	s.pending = nil
	s.records = len(s.entries)
	s.salvage = false
	return nil
}
