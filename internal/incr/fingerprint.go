// Package incr implements incremental recompilation at loop granularity
// (ninja-style content-hash dirty tracking): each candidate loop is
// fingerprinted over its normalized IR plus every dependence-graph and
// profile input the cost model reads, and a persistent store maps
// (fingerprint, level, search options) to the loop's partition result.
// On recompile, pass 1 re-runs only for loops whose fingerprint changed;
// stored partitions are spliced into pass 2 for clean loops. The
// fingerprint is invariant to loop IDs, raw statement/op IDs, source
// positions, and variable/function names — and sensitive to everything
// the search reads, so a hit is byte-equivalent to re-running the search
// (enforced by the metamorphic equivalence suite in internal/core).
package incr

import (
	"sort"

	"sptc/internal/depgraph"
	"sptc/internal/ir"
	"sptc/internal/partition"
	"sptc/internal/ssa"
)

// Key addresses one stored partition result.
type Key struct {
	// FP is the loop fingerprint from Fingerprinter.Loop.
	FP uint64
	// Level is the compilation level (core.Level; kept as int so incr
	// does not import core).
	Level int
	// Opts is OptionsKey over the partition-search options.
	Opts uint64
}

// OptionsKey hashes the partition-search options that change the search
// result. Workers is excluded (the search is worker-count-invariant);
// Budget and Context are excluded because caching is disabled entirely
// when either could degrade the search (see the gate in internal/core).
func OptionsKey(popt partition.Options) uint64 {
	h := ir.NewFPHash()
	h.Int(popt.MaxVCs)
	h.F64(popt.PreForkFraction)
	h.Bool(popt.PruneSize)
	h.Bool(popt.PruneBound)
	h.Int(popt.MaxSearchNodes)
	return h.Sum()
}

// Fingerprinter hashes candidate loops of one program. It memoizes
// call-expanded sizes and callee summaries, so it must not outlive the
// compile that created it (the IR is mutated by pass 2).
type Fingerprinter struct {
	sizes     *ir.SizeCache
	globalIdx map[*ir.Global]int
	callees   map[*ir.Func]uint64
	effects   map[*ir.Func]*depgraph.Effects
}

// NewFingerprinter returns a fingerprinter for p. effects must be the
// same summary map the dependence graphs will be built with.
func NewFingerprinter(p *ir.Program, effects map[*ir.Func]*depgraph.Effects) *Fingerprinter {
	// Globals hash by declaration index: stable under renames and
	// function reordering, conservative (a miss) under declaration edits.
	gi := make(map[*ir.Global]int, len(p.Globals))
	for i, g := range p.Globals {
		gi[g] = i
	}
	return &Fingerprinter{
		sizes:     ir.NewSizeCache(),
		globalIdx: gi,
		callees:   make(map[*ir.Func]uint64),
		effects:   effects,
	}
}

// calleeSummary hashes everything the cost model and dependence analysis
// read about a callee: its call-expanded and static sizes (callCost) and
// its effect summary (reads/writes/IO/unknown). The callee's body
// internals beyond that are irrelevant to the partition search.
func (fp *Fingerprinter) calleeSummary(f *ir.Func) uint64 {
	if s, ok := fp.callees[f]; ok {
		return s
	}
	fp.callees[f] = 0 // cut recursion cycles
	h := ir.NewFPHash()
	h.Int(fp.sizes.FuncSize(f))
	static := 0
	for _, b := range f.Blocks {
		for _, s := range b.Stmts {
			static += s.CountOps()
		}
	}
	h.Int(static)
	if eff := fp.effects[f]; eff != nil {
		h.Bool(eff.IO)
		h.Bool(eff.Unknown)
		h.Int(len(eff.Reads))
		for _, i := range fp.sortedGlobals(eff.Reads) {
			h.Int(i)
		}
		h.Int(len(eff.Writes))
		for _, i := range fp.sortedGlobals(eff.Writes) {
			h.Int(i)
		}
	} else {
		h.Int(-1)
	}
	// Transitive callees contribute through their own summaries.
	seen := make(map[*ir.Func]bool)
	for _, b := range f.Blocks {
		for _, s := range b.Stmts {
			s.Ops(func(o *ir.Op) {
				if o.Kind == ir.OpCall && !o.Builtin && o.Func != nil && !seen[o.Func] {
					seen[o.Func] = true
					h.U64(fp.calleeSummary(o.Func))
				}
			})
		}
	}
	sum := h.Sum()
	fp.callees[f] = sum
	return sum
}

func (fp *Fingerprinter) sortedGlobals(set map[*ir.Global]bool) []int {
	out := make([]int, 0, len(set))
	for g := range set {
		out = append(out, fp.globalIdx[g])
	}
	sort.Ints(out)
	return out
}

// Loop fingerprints candidate loop l. It returns the hash, the loop-body
// statements in iteration order (the exact enumeration depgraph.Build
// uses for Graph.Stmts, computed without building the graph), and
// ok=false when the loop is not fingerprintable (it never ran, so
// depgraph.Build would return nil).
//
// The hash covers, in order: the loop CFG restricted to the body (block
// frequencies, successor probabilities, predecessor frequencies and
// membership — the phi-argument probabilities), the descendant-loop
// structure, the normalized statement stream with per-statement
// call-expanded sizes and callee summaries, the dominance relation among
// body blocks (the scalar motion rules), control dependences into the
// body, the loop-restricted dependence-profile pairs (including their
// raw-ID emission order, which fixes the cost model's float-accumulation
// order), the induction shape, and the effective body size.
func (fp *Fingerprinter) Loop(l *ssa.Loop, cfg depgraph.Config, bodySize int) (uint64, []*ir.Stmt, bool) {
	if l.Header.Freq <= 0 {
		return 0, nil, false
	}
	h := ir.NewFPHash()
	n := ir.NewFPNorm()
	blocks := depgraph.BodyOrder(l)
	for _, b := range blocks {
		n.RegisterBlock(b)
	}

	// CFG shape and frequencies.
	h.Int(len(blocks))
	for _, b := range blocks {
		h.F64(b.Freq)
		h.Int(len(b.Succs))
		for _, s := range b.Succs {
			h.Int(n.BlockSlot(s))
		}
		h.Int(len(b.SuccProb))
		for _, p := range b.SuccProb {
			h.F64(p)
		}
		h.Int(len(b.Preds))
		for _, p := range b.Preds {
			// Out-of-loop predecessors matter too: header-phi argument
			// probabilities divide by the full predecessor frequency sum.
			h.Int(n.BlockSlot(p))
			h.F64(p.Freq)
		}
	}

	// Descendant-loop structure: which body blocks share an inner loop
	// (the sameInner legality rule) and where the back edges are.
	hashLoopTree(h, n, l)

	// Statement stream.
	var stmts []*ir.Stmt
	for _, b := range blocks {
		h.Int(len(b.Stmts))
		for _, s := range b.Stmts {
			n.HashStmt(h, s, fp.globalIdx)
			h.Int(fp.sizes.StmtOps(s))
			s.Ops(func(o *ir.Op) {
				if o.Kind == ir.OpCall && !o.Builtin && o.Func != nil {
					h.U64(fp.calleeSummary(o.Func))
				}
			})
			stmts = append(stmts, s)
		}
	}

	// Dominance among body blocks (scalar motion rule 2).
	dom := cfg.Dom
	if dom == nil {
		dom = ssa.BuildDomTree(l.Func)
	}
	var word uint64
	bits := 0
	for _, a := range blocks {
		for _, b := range blocks {
			word <<= 1
			if dom.Dominates(a, b) {
				word |= 1
			}
			if bits++; bits == 64 {
				h.U64(word)
				word, bits = 0, 0
			}
		}
	}
	if bits > 0 {
		h.U64(word)
	}

	// Control dependences into body blocks.
	for _, b := range blocks {
		cds := cfg.CtrlDeps[b]
		h.Int(len(cds))
		for _, cd := range cds {
			h.Int(n.BlockSlot(cd.Branch))
			h.F64(cd.Prob)
		}
	}

	// Dependence-profile pairs restricted to the loop. The pairs are
	// hashed in the same raw-ID sort order buildProfiledMemEdges emits
	// them in: the emission order feeds the cost model's edge lists, and
	// float accumulation is order-sensitive, so an ID renumbering that
	// permutes the pairs must change the fingerprint even though each
	// pair's normalized content is unchanged.
	h.Bool(cfg.UseProfile)
	if cfg.UseProfile && cfg.Dep != nil {
		order := make(map[*ir.Stmt]int, len(stmts))
		for i, s := range stmts {
			order[s] = i
		}
		keys := cfg.Dep.LoopPairs(l)
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].W.ID != keys[j].W.ID {
				return keys[i].W.ID < keys[j].W.ID
			}
			return keys[i].R.ID < keys[j].R.ID
		})
		for _, k := range keys {
			wi, wok := order[k.W]
			ri, rok := order[k.R]
			if !wok || !rok {
				continue // dependences through callees: skipped by Build too
			}
			h.Int(wi)
			h.Int(ri)
			h.Int(opPos(k.R, cfg.Dep.Pairs[k].ROp))
			h.F64(cfg.Dep.IntraProb(k.W, k.R, l))
			h.F64(cfg.Dep.CrossProb(k.W, k.R, l))
		}
	}

	// Induction shape (array disambiguation) and the size the search
	// thresholds use.
	if ind := ssa.Induction(l); ind != nil {
		h.Int(n.VarSlot(ind.IV))
		h.I64(ind.Step)
	} else {
		h.Int(-1)
	}
	h.Int(bodySize)

	return h.Sum(), stmts, true
}

// hashLoopTree folds the descendant-loop structure of l: per descendant,
// the body-block slots it contains (ascending). Registered block slots
// are already assigned in body order.
func hashLoopTree(h *ir.FPHash, n *ir.FPNorm, l *ssa.Loop) {
	var walk func(c *ssa.Loop)
	walk = func(c *ssa.Loop) {
		slots := make([]int, 0, len(c.Blocks))
		for _, b := range c.Blocks {
			slots = append(slots, n.BlockSlot(b))
		}
		sort.Ints(slots)
		h.Int(len(slots))
		for _, s := range slots {
			h.Int(s)
		}
		h.Int(n.BlockSlot(c.Header))
		h.Int(len(c.Children))
		for _, cc := range c.Children {
			walk(cc)
		}
	}
	h.Int(len(l.Children))
	for _, c := range l.Children {
		walk(c)
	}
}

// opPos returns the position of op id within s's operation walk, the
// ID-invariant rendering of a profile ROp. -1 when absent.
func opPos(s *ir.Stmt, id int) int {
	pos, found := 0, -1
	s.Ops(func(o *ir.Op) {
		if o.ID == id && found < 0 {
			found = pos
		}
		pos++
	})
	return found
}
