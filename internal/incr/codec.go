package incr

import (
	"fmt"
	"math"
	"sort"

	"sptc/internal/ir"
	"sptc/internal/partition"
)

// Entry is one stored partition result, with statement references
// encoded as dense body-order indices (the fingerprint's statement
// enumeration, which equals depgraph.Graph.Stmts). An Entry is valid
// only against a loop whose fingerprint matched: the indices are
// positions, not IDs.
type Entry struct {
	// Slot names the loop's structural position ("func/loopN") for the
	// invalidation metric; it is diagnostic, not part of the key.
	Slot string
	// StmtCount pins the body enumeration length; a mismatch at decode
	// time falls back to a cold search.
	StmtCount int32

	Skipped     bool
	VCCount     int32
	BodySize    int32
	SizeLimit   int32
	PreForkSize int32
	Cost        float64
	EmptyCost   float64

	PreForkVCs []int32 // ascending body-order indices
	Move       []int32
	CopyConds  []int32

	// Search counters, restored on a hit so reports and traces match a
	// deterministic cold compile.
	SearchNodes   int64
	CostEvals     int64
	DedupHits     int64
	Recomputes    int64
	BoundUpdates  int64
	MemoShardHits int64
}

// EncodeResult converts a partition result to a storable entry. Returns
// nil when the result must not be cached: a degraded (budget- or
// deadline-truncated) search is not the deterministic optimum, and
// caching it would silently drop the degradation event on replay.
func EncodeResult(pr *partition.Result, order map[*ir.Stmt]int, stmtCount int, slot string, vcCount int) *Entry {
	if pr == nil || pr.Degraded {
		return nil
	}
	e := &Entry{
		Slot:        slot,
		StmtCount:   int32(stmtCount),
		Skipped:     pr.Skipped,
		VCCount:     int32(vcCount),
		BodySize:    int32(pr.BodySize),
		SizeLimit:   int32(pr.SizeLimit),
		PreForkSize: int32(pr.PreForkSize),
		Cost:        pr.Cost,
		EmptyCost:   pr.EmptyCost,

		SearchNodes:   int64(pr.SearchNodes),
		CostEvals:     int64(pr.CostEvals),
		DedupHits:     int64(pr.DedupHits),
		Recomputes:    int64(pr.Recomputes),
		BoundUpdates:  int64(pr.BoundUpdates),
		MemoShardHits: int64(pr.MemoShardHits),
	}
	var ok bool
	if e.PreForkVCs, ok = stmtIndices(pr.PreForkVCs, order, stmtCount); !ok {
		return nil
	}
	if e.Move, ok = setIndices(pr.Move, order, stmtCount); !ok {
		return nil
	}
	if e.CopyConds, ok = setIndices(pr.CopyConds, order, stmtCount); !ok {
		return nil
	}
	return e
}

// Decode reconstructs a partition result against the current compile's
// body enumeration. workers echoes the active search-worker count (a
// config echo in partition.Result, not a stored fact). ok is false when
// the entry does not fit the enumeration — the caller must fall back to
// a cold search.
func (e *Entry) Decode(stmts []*ir.Stmt, workers int) (*partition.Result, bool) {
	if int(e.StmtCount) != len(stmts) {
		return nil, false
	}
	pr := &partition.Result{
		Skipped:     e.Skipped,
		VCCount:     int(e.VCCount),
		BodySize:    int(e.BodySize),
		SizeLimit:   int(e.SizeLimit),
		PreForkSize: int(e.PreForkSize),
		Cost:        e.Cost,
		EmptyCost:   e.EmptyCost,
		Move:        make(map[*ir.Stmt]bool, len(e.Move)),
		CopyConds:   make(map[*ir.Stmt]bool, len(e.CopyConds)),

		SearchNodes:   int(e.SearchNodes),
		CostEvals:     int(e.CostEvals),
		DedupHits:     int(e.DedupHits),
		Recomputes:    int(e.Recomputes),
		Workers:       workers,
		BoundUpdates:  int(e.BoundUpdates),
		MemoShardHits: int(e.MemoShardHits),
	}
	for _, i := range e.PreForkVCs {
		if i < 0 || int(i) >= len(stmts) {
			return nil, false
		}
		pr.PreForkVCs = append(pr.PreForkVCs, stmts[i])
	}
	for _, i := range e.Move {
		if i < 0 || int(i) >= len(stmts) {
			return nil, false
		}
		pr.Move[stmts[i]] = true
	}
	for _, i := range e.CopyConds {
		if i < 0 || int(i) >= len(stmts) {
			return nil, false
		}
		pr.CopyConds[stmts[i]] = true
	}
	return pr, true
}

// stmtIndices maps a statement slice to body-order indices, preserving
// order. PreForkVCs is emitted by the search in ascending body order, so
// the round trip is exact.
func stmtIndices(list []*ir.Stmt, order map[*ir.Stmt]int, stmtCount int) ([]int32, bool) {
	out := make([]int32, 0, len(list))
	for _, s := range list {
		i, ok := order[s]
		if !ok || i >= stmtCount {
			return nil, false
		}
		out = append(out, int32(i))
	}
	return out, true
}

// setIndices maps a statement set to sorted body-order indices.
func setIndices(set map[*ir.Stmt]bool, order map[*ir.Stmt]int, stmtCount int) ([]int32, bool) {
	out := make([]int32, 0, len(set))
	for s, on := range set {
		if !on {
			continue
		}
		i, ok := order[s]
		if !ok || i >= stmtCount {
			return nil, false
		}
		out = append(out, int32(i))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, true
}

// Binary record encoding: fixed-width little-endian fields, used both
// for the store's append-only log and for hashing record payloads.

type encoder struct{ buf []byte }

func (e *encoder) u32(v uint32) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (e *encoder) u64(v uint64) {
	e.u32(uint32(v))
	e.u32(uint32(v >> 32))
}
func (e *encoder) i32(v int32)   { e.u32(uint32(v)) }
func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *encoder) bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}
func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *encoder) i32s(v []int32) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.i32(x)
	}
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("incr: truncated record at offset %d", d.off)
	}
}
func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	b := d.buf[d.off:]
	d.off += 4
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func (d *decoder) u64() uint64 {
	lo := d.u32()
	hi := d.u32()
	return uint64(lo) | uint64(hi)<<32
}
func (d *decoder) i32() int32   { return int32(d.u32()) }
func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *decoder) boolv() bool  { return d.byte() != 0 }
func (d *decoder) byte() byte {
	if d.err != nil || d.off >= len(d.buf) {
		d.fail()
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}
func (d *decoder) str() string {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail()
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}
func (d *decoder) i32s() []int32 {
	n := int(d.u32())
	if d.err != nil || n < 0 || n > (len(d.buf)-d.off)/4 {
		d.fail()
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = d.i32()
	}
	return out
}

// encodeRecord serializes one (key, entry) pair as a record payload.
func encodeRecord(k Key, e *Entry) []byte {
	var enc encoder
	enc.u64(k.FP)
	enc.i32(int32(k.Level))
	enc.u64(k.Opts)
	enc.str(e.Slot)
	enc.i32(e.StmtCount)
	enc.bool(e.Skipped)
	enc.i32(e.VCCount)
	enc.i32(e.BodySize)
	enc.i32(e.SizeLimit)
	enc.i32(e.PreForkSize)
	enc.f64(e.Cost)
	enc.f64(e.EmptyCost)
	enc.i32s(e.PreForkVCs)
	enc.i32s(e.Move)
	enc.i32s(e.CopyConds)
	enc.i64(e.SearchNodes)
	enc.i64(e.CostEvals)
	enc.i64(e.DedupHits)
	enc.i64(e.Recomputes)
	enc.i64(e.BoundUpdates)
	enc.i64(e.MemoShardHits)
	return enc.buf
}

// decodeRecord parses one record payload.
func decodeRecord(payload []byte) (Key, *Entry, error) {
	d := &decoder{buf: payload}
	var k Key
	k.FP = d.u64()
	k.Level = int(d.i32())
	k.Opts = d.u64()
	e := &Entry{}
	e.Slot = d.str()
	e.StmtCount = d.i32()
	e.Skipped = d.boolv()
	e.VCCount = d.i32()
	e.BodySize = d.i32()
	e.SizeLimit = d.i32()
	e.PreForkSize = d.i32()
	e.Cost = d.f64()
	e.EmptyCost = d.f64()
	e.PreForkVCs = d.i32s()
	e.Move = d.i32s()
	e.CopyConds = d.i32s()
	e.SearchNodes = d.i64()
	e.CostEvals = d.i64()
	e.DedupHits = d.i64()
	e.Recomputes = d.i64()
	e.BoundUpdates = d.i64()
	e.MemoShardHits = d.i64()
	if d.err == nil && d.off != len(payload) {
		d.err = fmt.Errorf("incr: %d trailing bytes in record", len(payload)-d.off)
	}
	return k, e, d.err
}

// payloadHash is the per-record integrity checksum (FNV-1a 64).
func payloadHash(p []byte) uint64 {
	h := ir.NewFPHash()
	for _, b := range p {
		h.Byte(b)
	}
	return h.Sum()
}
