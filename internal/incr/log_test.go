package incr_test

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"sptc/internal/incr"
	"sptc/internal/resilience"
)

// openPayloads opens the log at path and returns every salvaged payload
// in file order.
func openPayloads(t *testing.T, path string) ([]string, *incr.RecordLog) {
	t.Helper()
	var got []string
	l, err := incr.OpenRecordLog("logtest1", path, func(p []byte) bool {
		got = append(got, string(p))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, l
}

func TestLogFlushAppendsIncrementally(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.bin")
	l := incr.NewRecordLog("logtest1", path)
	l.Append([]byte("one"))
	l.Append([]byte("two"))
	if l.Pending() == 0 {
		t.Fatal("no pending bytes after Append")
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if l.Pending() != 0 {
		t.Fatalf("Pending = %d after flush, want 0", l.Pending())
	}
	// Records appended after a flush land in the next flush, not a
	// rewrite: the file grows, it is not replaced.
	before, _ := os.Stat(path)
	l.Append([]byte("three"))
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() <= before.Size() {
		t.Fatalf("file did not grow across flushes: %d -> %d", before.Size(), after.Size())
	}
	got, _ := openPayloads(t, path)
	if len(got) != 3 || got[0] != "one" || got[2] != "three" {
		t.Fatalf("reopened payloads = %q", got)
	}
	// An idle flush is a no-op.
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestLogFlushDiskFull pins the disk-full contract: a failed flush
// surfaces the error, keeps the in-memory state (pending records)
// intact, and the next Save recovers everything through a compacting
// rewrite.
func TestLogFlushDiskFull(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.bin")
	l := incr.NewRecordLog("logtest1", path)
	l.Append([]byte("durable"))
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}

	if err := resilience.ArmSpec("incr.log.flush=error"); err != nil {
		t.Fatal(err)
	}
	defer resilience.DisarmAll()
	l.Append([]byte("lost-write"))
	if err := l.Flush(); err == nil {
		t.Fatal("flush under injected write error did not fail")
	}
	if !l.Salvaged() {
		t.Error("failed flush did not mark the log for compaction")
	}
	if l.Pending() == 0 {
		t.Error("failed flush dropped pending records")
	}
	// Repeated flushes while damaged are no-ops, not repeated failures.
	if err := l.Flush(); err != nil {
		t.Fatalf("flush on a damaged log should be a no-op, got %v", err)
	}

	// The previously flushed record is still salvageable right now.
	got, _ := openPayloads(t, path)
	if len(got) != 1 || got[0] != "durable" {
		t.Fatalf("pre-failure records damaged: %q", got)
	}

	// Recovery: disarm, Save compacts, everything is on disk.
	resilience.DisarmAll()
	if err := l.Save(2, func(emit func([]byte)) {
		emit([]byte("durable"))
		emit([]byte("lost-write"))
	}); err != nil {
		t.Fatal(err)
	}
	got, l2 := openPayloads(t, path)
	if len(got) != 2 || got[1] != "lost-write" {
		t.Fatalf("post-recovery payloads = %q", got)
	}
	if l2.Salvaged() {
		t.Error("recovered log still reads as damaged")
	}
}

// TestLogFlushShortWrite pins the torn-frame contract: a short write
// leaves a damaged tail that the next open salvages down to the longest
// valid prefix — every record from completed flushes survives.
func TestLogFlushShortWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.bin")
	l := incr.NewRecordLog("logtest1", path)
	l.Append([]byte("first"))
	l.Append([]byte("second"))
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}

	if err := resilience.ArmSpec("incr.log.flush=short-write"); err != nil {
		t.Fatal(err)
	}
	defer resilience.DisarmAll()
	l.Append([]byte("torn"))
	err := l.Flush()
	if err == nil {
		t.Fatal("short write did not fail the flush")
	}
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("error = %v, want io.ErrShortWrite in the chain", err)
	}
	resilience.DisarmAll()

	// The file now really holds half a frame; salvage must stop at the
	// damage and keep the first flush's records.
	got, reopened := openPayloads(t, path)
	if len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("salvaged payloads = %q, want the pre-damage prefix", got)
	}
	if !reopened.Salvaged() {
		t.Error("open of a torn log not marked salvaged")
	}

	// The writer that failed still recovers through Save's compaction.
	if err := l.Save(3, func(emit func([]byte)) {
		emit([]byte("first"))
		emit([]byte("second"))
		emit([]byte("torn"))
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := openPayloads(t, path); len(got) != 3 {
		t.Fatalf("post-compaction payloads = %q", got)
	}
}

// TestLogRenameFailure pins compaction's atomicity: when the final
// rename fails, the previous log file is untouched and the temp file is
// cleaned up. Because the temp file is fsynced before the rename point,
// this is exactly the state a crash between data-sync and rename leaves.
func TestLogRenameFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.bin")
	l := incr.NewRecordLog("logtest1", path)
	l.Append([]byte("old-1"))
	l.Append([]byte("old-2"))
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	if err := resilience.ArmSpec("incr.log.rename=error"); err != nil {
		t.Fatal(err)
	}
	defer resilience.DisarmAll()
	if err := l.Compact(func(emit func([]byte)) { emit([]byte("new")) }); err == nil {
		t.Fatal("compact under injected rename failure did not fail")
	}
	resilience.DisarmAll()

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(before) {
		t.Error("failed compaction modified the previous log")
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("temp file left behind: stat err = %v", err)
	}
	// The log still compacts cleanly afterwards.
	if err := l.Compact(func(emit func([]byte)) { emit([]byte("new")) }); err != nil {
		t.Fatal(err)
	}
	if got, _ := openPayloads(t, path); len(got) != 1 || got[0] != "new" {
		t.Fatalf("post-retry payloads = %q", got)
	}
}

// TestLogSyncFlushPolicy smoke-tests the fsync-per-flush policy (the
// effect on the platter is not observable in a test; the policy must at
// least not change what is written).
func TestLogSyncFlushPolicy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.bin")
	l := incr.NewRecordLog("logtest1", path)
	l.SetSync(incr.SyncFlush)
	l.Append([]byte("synced"))
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, _ := openPayloads(t, path); len(got) != 1 || got[0] != "synced" {
		t.Fatalf("payloads = %q", got)
	}
}

// TestStoreFlushFailureKeepsLookups pins the store-level contract on
// top of the log: a failed flush never disturbs in-memory entries, so
// compiles keep their warm hits while the disk misbehaves.
func TestStoreFlushFailureKeepsLookups(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.bin")
	s, err := incr.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	stmts, order := fakeStmts(6)
	k := incr.Key{FP: 7, Level: 2}
	s.Put(k, incr.EncodeResult(samplePartition(stmts), order, len(stmts), "main/loop0", 4))

	if err := resilience.ArmSpec("incr.log.flush=error"); err != nil {
		t.Fatal(err)
	}
	defer resilience.DisarmAll()
	if err := s.Flush(); err == nil {
		t.Fatal("store flush under injected error did not fail")
	}
	if _, st := s.Lookup(k, "main/loop0"); st != incr.StatusHit {
		t.Fatalf("lookup after failed flush: %v, want hit", st)
	}
	resilience.DisarmAll()

	// Save recovers; a reopened store still hits.
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	r, err := incr.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, st := r.Lookup(k, "main/loop0"); st != incr.StatusHit {
		t.Fatalf("reopened lookup: %v, want hit", st)
	}
}
