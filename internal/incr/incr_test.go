package incr_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"sptc/internal/depgraph"
	"sptc/internal/incr"
	"sptc/internal/ir"
	"sptc/internal/parser"
	"sptc/internal/partition"
	"sptc/internal/profile"
	"sptc/internal/sem"
	"sptc/internal/ssa"
)

const twoLoopSrc = `
var a int[64];
var g1 int;

func work() {
	var i int = 0;
	while (i < 40) {
		g1 = (g1 * 17 + i) & 1048575;
		a[(g1) & 63] = a[(g1 + 7) & 63] + 3;
		i = i + 1;
	}
}

func main() {
	var j int = 0;
	while (j < 50) {
		a[(j + 11) & 63] = a[(j * 3) & 63] * 5;
		j = j + 1;
	}
	work();
	print(g1);
}
`

// fingerprintAll builds the pipeline-lite analysis state (IR, SSA, loop
// nests, static frequency estimates — no interpreter run) and returns
// the fingerprints of every candidate loop in program order.
func fingerprintAll(tb testing.TB, src string) []uint64 {
	tb.Helper()
	prog, err := parser.Parse("incr_test.spl", src)
	if err != nil {
		tb.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		tb.Fatalf("sem: %v", err)
	}
	p, err := ir.Build(info)
	if err != nil {
		tb.Fatalf("ir: %v", err)
	}
	effects := depgraph.ComputeEffects(p)
	fper := incr.NewFingerprinter(p, effects)
	var out []uint64
	for _, f := range p.Funcs {
		dom := ssa.BuildDomTree(f)
		ssa.Build(f, dom)
		dom = ssa.BuildDomTree(f)
		nest := ssa.FindLoops(f, dom)
		if len(nest.Loops) == 0 {
			continue
		}
		profile.StaticEstimate(f, nest)
		cds := depgraph.ControlDeps(f, depgraph.BuildPostDom(f))
		for _, l := range nest.Loops {
			cfg := depgraph.Config{Effects: effects, CtrlDeps: cds, Dom: dom}
			sum, stmts, ok := fper.Loop(l, cfg, l.EffectiveBodySize())
			if !ok {
				tb.Fatalf("loop %s/%d not fingerprintable", f.Name, l.Header.ID)
			}
			if len(stmts) == 0 {
				tb.Fatalf("loop %s/%d: empty body enumeration", f.Name, l.Header.ID)
			}
			out = append(out, sum)
		}
	}
	if len(out) == 0 {
		tb.Fatal("no candidate loops in corpus program")
	}
	return out
}

func TestFingerprintStability(t *testing.T) {
	a := fingerprintAll(t, twoLoopSrc)
	b := fingerprintAll(t, twoLoopSrc)
	if len(a) != len(b) {
		t.Fatalf("loop counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loop %d: fingerprint unstable across identical builds: %#x vs %#x", i, a[i], b[i])
		}
	}
}

func TestFingerprintRenameInvariance(t *testing.T) {
	renamed := regexp.MustCompile(`\bi\b`).ReplaceAllString(twoLoopSrc, "loopCounterX")
	renamed = regexp.MustCompile(`\bj\b`).ReplaceAllString(renamed, "otherCounterY")
	renamed = regexp.MustCompile(`\bg1\b`).ReplaceAllString(renamed, "renamedGlobal")
	a := fingerprintAll(t, twoLoopSrc)
	b := fingerprintAll(t, renamed)
	if len(a) != len(b) {
		t.Fatalf("loop counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loop %d: rename changed fingerprint: %#x vs %#x", i, a[i], b[i])
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	perturbed := strings.Replace(twoLoopSrc, "* 17 +", "* 19 +", 1)
	a := fingerprintAll(t, twoLoopSrc)
	b := fingerprintAll(t, perturbed)
	changed := 0
	for i := range a {
		if a[i] != b[i] {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("constant perturbation did not change any fingerprint")
	}
	if changed == len(a) {
		t.Fatal("constant perturbation in one loop changed every fingerprint")
	}
}

func TestFingerprintFunctionReorderInvariance(t *testing.T) {
	fi := strings.Index(twoLoopSrc, "func work()")
	mi := strings.Index(twoLoopSrc, "func main()")
	reordered := twoLoopSrc[:fi] + twoLoopSrc[mi:] + twoLoopSrc[fi:mi]
	a := fingerprintAll(t, twoLoopSrc)
	b := fingerprintAll(t, reordered)
	if len(a) != len(b) {
		t.Fatalf("loop counts differ: %d vs %d", len(a), len(b))
	}
	seen := make(map[uint64]int)
	for _, x := range a {
		seen[x]++
	}
	for _, x := range b {
		if seen[x] == 0 {
			t.Fatalf("fingerprint %#x not found after function reorder", x)
		}
		seen[x]--
	}
}

func TestOptionsKey(t *testing.T) {
	base := partition.Options{MaxVCs: 20, PreForkFraction: 0.25, PruneSize: true, PruneBound: true, MaxSearchNodes: 1 << 20}
	k := incr.OptionsKey(base)
	same := base
	same.Workers = 8 // worker-count-invariant search: not part of the key
	if incr.OptionsKey(same) != k {
		t.Fatal("Workers must not change the options key")
	}
	for name, mutate := range map[string]func(*partition.Options){
		"MaxVCs":          func(o *partition.Options) { o.MaxVCs = 21 },
		"PreForkFraction": func(o *partition.Options) { o.PreForkFraction = 0.5 },
		"PruneSize":       func(o *partition.Options) { o.PruneSize = false },
		"PruneBound":      func(o *partition.Options) { o.PruneBound = false },
		"MaxSearchNodes":  func(o *partition.Options) { o.MaxSearchNodes = 4 },
	} {
		o := base
		mutate(&o)
		if incr.OptionsKey(o) == k {
			t.Fatalf("changing %s must change the options key", name)
		}
	}
}

// fakeStmts builds n distinct statement pointers and their order map.
func fakeStmts(n int) ([]*ir.Stmt, map[*ir.Stmt]int) {
	stmts := make([]*ir.Stmt, n)
	order := make(map[*ir.Stmt]int, n)
	for i := range stmts {
		stmts[i] = &ir.Stmt{}
		order[stmts[i]] = i
	}
	return stmts, order
}

func samplePartition(stmts []*ir.Stmt) *partition.Result {
	return &partition.Result{
		Cost: 12.5, EmptyCost: 3.25, VCCount: 4, BodySize: 9, SizeLimit: 3, PreForkSize: 2,
		PreForkVCs:  []*ir.Stmt{stmts[1], stmts[4]},
		Move:        map[*ir.Stmt]bool{stmts[0]: true, stmts[2]: true},
		CopyConds:   map[*ir.Stmt]bool{stmts[3]: true},
		SearchNodes: 101, CostEvals: 88, DedupHits: 7, Recomputes: 2, BoundUpdates: 5, MemoShardHits: 1,
	}
}

func TestCodecRoundTrip(t *testing.T) {
	stmts, order := fakeStmts(6)
	pr := samplePartition(stmts)
	e := incr.EncodeResult(pr, order, len(stmts), "main/loop0", pr.VCCount)
	if e == nil {
		t.Fatal("EncodeResult returned nil for a healthy result")
	}
	got, ok := e.Decode(stmts, 8)
	if !ok {
		t.Fatal("Decode failed against the same enumeration")
	}
	if got.Cost != pr.Cost || got.EmptyCost != pr.EmptyCost || got.VCCount != pr.VCCount ||
		got.BodySize != pr.BodySize || got.SizeLimit != pr.SizeLimit || got.PreForkSize != pr.PreForkSize {
		t.Fatalf("scalar fields lost: %+v vs %+v", got, pr)
	}
	if got.Workers != 8 {
		t.Fatalf("Workers must echo the decode-time value, got %d", got.Workers)
	}
	if len(got.PreForkVCs) != 2 || got.PreForkVCs[0] != stmts[1] || got.PreForkVCs[1] != stmts[4] {
		t.Fatalf("PreForkVCs lost: %v", got.PreForkVCs)
	}
	if !got.Move[stmts[0]] || !got.Move[stmts[2]] || len(got.Move) != 2 {
		t.Fatalf("Move set lost: %v", got.Move)
	}
	if !got.CopyConds[stmts[3]] || len(got.CopyConds) != 1 {
		t.Fatalf("CopyConds set lost: %v", got.CopyConds)
	}
	if got.SearchNodes != 101 || got.CostEvals != 88 || got.DedupHits != 7 ||
		got.Recomputes != 2 || got.BoundUpdates != 5 || got.MemoShardHits != 1 {
		t.Fatalf("counters lost: %+v", got)
	}
}

func TestCodecRejectsDegradedAndMismatch(t *testing.T) {
	stmts, order := fakeStmts(6)
	pr := samplePartition(stmts)
	pr.Degraded = true
	if incr.EncodeResult(pr, order, len(stmts), "u", 4) != nil {
		t.Fatal("degraded results must not be cached")
	}
	pr.Degraded = false
	if incr.EncodeResult(pr, map[*ir.Stmt]int{}, len(stmts), "u", 4) != nil {
		t.Fatal("unmapped statements must refuse to encode")
	}
	e := incr.EncodeResult(pr, order, len(stmts), "u", 4)
	if _, ok := e.Decode(stmts[:4], 1); ok {
		t.Fatal("decode must reject a shorter enumeration")
	}
}

func TestStoreRoundTripAndLastWins(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.bin")
	stmts, order := fakeStmts(6)
	k := incr.Key{FP: 0xdead, Level: 2, Opts: 0xbeef}
	first := incr.EncodeResult(samplePartition(stmts), order, len(stmts), "main/loop0", 4)
	second := incr.EncodeResult(samplePartition(stmts), order, len(stmts), "main/loop0", 4)
	second.Cost = 99

	s, err := incr.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, st := s.Lookup(k, "main/loop0"); st != incr.StatusMiss {
		t.Fatalf("empty store lookup: %v", st)
	}
	s.Put(k, first)
	s.Put(k, second) // same key: last record wins
	s.Put(incr.Key{FP: 2, Level: 1}, incr.EncodeResult(samplePartition(stmts), order, len(stmts), "main/loop1", 4))
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}

	r, err := incr.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", r.Len())
	}
	e, st := r.Lookup(k, "main/loop0")
	if st != incr.StatusHit || e.Cost != 99 {
		t.Fatalf("lookup after reopen: status %v cost %v, want hit/99", st, e.Cost)
	}
	// Same slot, different fingerprint: the loop changed.
	if _, st := r.Lookup(incr.Key{FP: 0xfeed, Level: 2, Opts: 0xbeef}, "main/loop0"); st != incr.StatusInvalidated {
		t.Fatalf("changed-loop lookup: %v, want invalidated", st)
	}
	// Unknown slot: plain miss.
	if _, st := r.Lookup(incr.Key{FP: 3}, "other/loop9"); st != incr.StatusMiss {
		t.Fatalf("unknown-slot lookup: %v, want miss", st)
	}
}

func TestStoreCorruptSalvage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.bin")
	stmts, order := fakeStmts(6)
	s, err := incr.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		s.Put(incr.Key{FP: uint64(i)}, incr.EncodeResult(samplePartition(stmts), order, len(stmts), "main/loop0", 4))
	}
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]struct {
		mutate func([]byte) []byte
		want   int // salvaged entries
	}{
		"clean":          {func(b []byte) []byte { return b }, 4},
		"truncated-tail": {func(b []byte) []byte { return b[:len(b)-7] }, 3},
		"flipped-tail":   {func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)-1] ^= 0xff; return c }, 3},
		"no-magic":       {func(b []byte) []byte { return []byte("garbage file") }, 0},
		"magic-only":     {func(b []byte) []byte { return b[:8] }, 0},
		"half-magic":     {func(b []byte) []byte { return b[:3] }, 0},
		"empty":          {func(b []byte) []byte { return nil }, 0},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "c.bin")
			if err := os.WriteFile(p, tc.mutate(data), 0o666); err != nil {
				t.Fatal(err)
			}
			s, err := incr.Open(p)
			if err != nil {
				t.Fatalf("salvage must not error: %v", err)
			}
			if s.Len() != tc.want {
				t.Fatalf("salvaged %d entries, want %d", s.Len(), tc.want)
			}
			// The store must stay fully usable: new writes and a save
			// (which compacts away the damaged tail) must succeed.
			s.Put(incr.Key{FP: 77}, incr.EncodeResult(samplePartition(stmts), order, len(stmts), "x/loop0", 4))
			if err := s.Save(); err != nil {
				t.Fatalf("save after salvage: %v", err)
			}
			r, err := incr.Open(p)
			if err != nil {
				t.Fatal(err)
			}
			if r.Len() != tc.want+1 {
				t.Fatalf("after rewrite: %d entries, want %d", r.Len(), tc.want+1)
			}
		})
	}
}

func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.bin")
	stmts, order := fakeStmts(6)
	s, err := incr.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	k := incr.Key{FP: 1}
	for i := 0; i < 10; i++ {
		s.Put(k, incr.EncodeResult(samplePartition(stmts), order, len(stmts), "main/loop0", 4))
	}
	if err := s.Save(); err != nil { // 10 records, 1 live: compacts
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := incr.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("compacted store has %d entries, want 1", s2.Len())
	}
	// A second superseding Put and explicit Compact keeps one record.
	s2.Put(k, incr.EncodeResult(samplePartition(stmts), order, len(stmts), "main/loop0", 4))
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	info2, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Size() != info.Size() {
		t.Fatalf("compacted sizes differ: %d vs %d", info2.Size(), info.Size())
	}
}

func TestStoreInMemorySaveNoop(t *testing.T) {
	s := incr.New()
	stmts, order := fakeStmts(6)
	s.Put(incr.Key{FP: 1}, incr.EncodeResult(samplePartition(stmts), order, len(stmts), "m/loop0", 4))
	if err := s.Save(); err != nil {
		t.Fatalf("in-memory save: %v", err)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("in-memory compact: %v", err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := incr.New()
	stmts, order := fakeStmts(6)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := incr.Key{FP: uint64(i % 17), Level: g % 3}
				if i%2 == 0 {
					s.Put(k, incr.EncodeResult(samplePartition(stmts), order, len(stmts), "m/loop0", 4))
				} else {
					s.Lookup(k, "m/loop0")
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() == 0 {
		t.Fatal("no entries after concurrent writes")
	}
}

// callNestSrc exercises the fingerprint paths twoLoopSrc cannot: a loop
// whose body calls a function (callee summaries and their sorted global
// effects enter the hash) and a nested loop (the descendant-loop tree
// enters the hash).
const callNestSrc = `
var a int[64];
var g1 int;
var g2 int;

func bump(x int) int {
	g2 = (g2 + x) & 1048575;
	return g2 % 7;
}

func main() {
	var i int = 0;
	while (i < 30) {
		var j int = 0;
		while (j < 8) {
			a[(i + j) & 63] = a[(i * 3 + j) & 63] + bump(j);
			j = j + 1;
		}
		g1 = (g1 * 13 + a[i & 63]) & 1048575;
		i = i + 1;
	}
	print(g1 + g2);
}
`

func TestFingerprintCallsAndNesting(t *testing.T) {
	f1 := fingerprintAll(t, callNestSrc)
	f2 := fingerprintAll(t, callNestSrc)
	if len(f1) == 0 {
		t.Fatal("no fingerprintable loops")
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("loop %d fingerprint unstable: %x vs %x", i, f1[i], f2[i])
		}
	}
	// A callee body edit must dirty every loop that calls it: the callee
	// summary is a cost-model input.
	edited := strings.Replace(callNestSrc, "g2 + x", "g2 + x * 3", 1)
	f3 := fingerprintAll(t, edited)
	changed := 0
	for i := range f1 {
		if f1[i] != f3[i] {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("callee edit changed no loop fingerprint")
	}
}

func TestStatusString(t *testing.T) {
	for want, s := range map[string]incr.Status{
		"miss":        incr.StatusMiss,
		"hit":         incr.StatusHit,
		"invalidated": incr.StatusInvalidated,
		"?":           incr.Status(99),
	} {
		if got := s.String(); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", s, got, want)
		}
	}
}

// TestStoreMalformedRecordPayload covers the record-decoder failure
// path: a record whose checksum is valid but whose payload does not
// parse (truncated fields, trailing bytes) must be dropped by salvage,
// never crash or fail Open.
func TestStoreMalformedRecordPayload(t *testing.T) {
	record := func(payload []byte) []byte {
		h := ir.NewFPHash()
		for _, b := range payload {
			h.Byte(b)
		}
		sum := h.Sum()
		out := []byte{byte(len(payload)), byte(len(payload) >> 8), byte(len(payload) >> 16), byte(len(payload) >> 24)}
		out = append(out, payload...)
		for i := 0; i < 8; i++ {
			out = append(out, byte(sum>>(8*i)))
		}
		return out
	}
	for _, c := range []struct {
		name    string
		payload []byte
	}{
		{"truncated-fields", []byte("abcd")},
		{"empty-payload", nil},
	} {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "malformed.cache")
			data := append([]byte("sptincr1"), record(c.payload)...)
			if err := os.WriteFile(path, data, 0o666); err != nil {
				t.Fatal(err)
			}
			s, err := incr.Open(path)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			if s.Len() != 0 {
				t.Fatalf("Len = %d after malformed record, want 0", s.Len())
			}
			// The salvage rewrite must produce a healthy store.
			stmts, order := fakeStmts(6)
			e := incr.EncodeResult(samplePartition(stmts), order, len(stmts), "main/loop0", 2)
			if e == nil {
				t.Fatal("EncodeResult returned nil")
			}
			s.Put(incr.Key{FP: 42, Level: 2, Opts: 7}, e)
			if err := s.Save(); err != nil {
				t.Fatalf("Save: %v", err)
			}
			s2, err := incr.Open(path)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if s2.Len() != 1 {
				t.Fatalf("reopened Len = %d, want 1", s2.Len())
			}
		})
	}
}
