package interp_test

import (
	"strings"
	"testing"

	"sptc/internal/interp"
	"sptc/internal/ir"
	"sptc/internal/parser"
	"sptc/internal/sem"
	"sptc/internal/ssa"
)

// compile parses, checks, and lowers src, optionally building SSA.
func compile(t *testing.T, src string, buildSSA bool) *ir.Program {
	t.Helper()
	prog, err := parser.Parse("test.spl", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := ir.Build(info)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := ir.VerifyProgram(p); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if buildSSA {
		for _, f := range p.Funcs {
			dom := ssa.BuildDomTree(f)
			ssa.Build(f, dom)
			if err := ir.Verify(f); err != nil {
				t.Fatalf("verify after SSA (%s): %v\n%s", f.Name, err, ir.FormatFunc(f))
			}
		}
	}
	return p
}

// run executes the program and returns its printed output.
func run(t *testing.T, p *ir.Program) string {
	t.Helper()
	var out strings.Builder
	m := interp.New(p, &out)
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v\n%s", err, ir.FormatProgram(p))
	}
	return out.String()
}

func runSrc(t *testing.T, src string, ssaForm bool) string {
	t.Helper()
	return run(t, compile(t, src, ssaForm))
}

func TestArithmetic(t *testing.T) {
	src := `
func main() {
	var x int = 3;
	var y int = 4;
	print(x*x + y*y);
	print(10 / 3, 10 % 3);
	print(1 << 4, 256 >> 2);
	print(6 & 3, 6 | 3, 6 ^ 3, ~0);
	var f float = 1.5;
	print(f * 2.0 + 0.25);
	print(int(f * 2.0));
	print(float(7) / 2.0);
}
`
	want := "25\n3 1\n16 64\n2 7 5 -1\n3.25\n3\n3.5\n"
	for _, ssaForm := range []bool{false, true} {
		if got := runSrc(t, src, ssaForm); got != want {
			t.Errorf("ssa=%v: got %q want %q", ssaForm, got, want)
		}
	}
}

func TestControlFlow(t *testing.T) {
	src := `
func main() {
	var i int = 0;
	var sum int = 0;
	while (i < 10) {
		if (i % 2 == 0) {
			sum += i;
		} else {
			sum -= 1;
		}
		i++;
	}
	print(sum);
	var j int;
	for (j = 0; j < 5; j++) {
		if (j == 3) { break; }
		print(j);
	}
	var k int = 0;
	do {
		k += 2;
	} while (k < 7);
	print(k);
}
`
	want := "15\n0\n1\n2\n8\n"
	for _, ssaForm := range []bool{false, true} {
		if got := runSrc(t, src, ssaForm); got != want {
			t.Errorf("ssa=%v: got %q want %q", ssaForm, got, want)
		}
	}
}

func TestArraysAndGlobals(t *testing.T) {
	src := `
var n int = 5;
var a int[10];
var m float[3][3];

func fill() {
	var i int;
	for (i = 0; i < n; i++) {
		a[i] = i * i;
	}
	var r int;
	var c int;
	for (r = 0; r < 3; r++) {
		for (c = 0; c < 3; c++) {
			m[r][c] = float(r * 3 + c);
		}
	}
}

func main() {
	fill();
	var i int;
	var sum int = 0;
	for (i = 0; i < n; i++) {
		sum += a[i];
	}
	print(sum);
	print(m[2][1]);
}
`
	want := "30\n7\n"
	for _, ssaForm := range []bool{false, true} {
		if got := runSrc(t, src, ssaForm); got != want {
			t.Errorf("ssa=%v: got %q want %q", ssaForm, got, want)
		}
	}
}

func TestFunctionCalls(t *testing.T) {
	src := `
func fib(n int) int {
	if (n < 2) { return n; }
	return fib(n-1) + fib(n-2);
}

func hyp(a float, b float) float {
	return fsqrt(a*a + b*b);
}

func main() {
	print(fib(10));
	print(hyp(3.0, 4.0));
	print(imax(3, 7), imin(3, 7), iabs(-9));
	print(fmax(1.5, 2.5), fmin(1.5, 2.5), fabs(-2.25));
}
`
	want := "55\n5\n7 3 9\n2.5 1.5 2.25\n"
	for _, ssaForm := range []bool{false, true} {
		if got := runSrc(t, src, ssaForm); got != want {
			t.Errorf("ssa=%v: got %q want %q", ssaForm, got, want)
		}
	}
}

func TestBreakContinueNested(t *testing.T) {
	src := `
func main() {
	var i int;
	var total int = 0;
	for (i = 0; i < 6; i++) {
		var j int;
		for (j = 0; j < 6; j++) {
			if (j > i) { break; }
			if (j % 2 == 1) { continue; }
			total += j;
		}
	}
	print(total);
}
`
	// i=0: j=0 -> 0 ; i=1: 0 ; i=2: 0+2 ; i=3: 0+2 ; i=4: 0+2+4 ; i=5: 0+2+4
	want := "16\n"
	for _, ssaForm := range []bool{false, true} {
		if got := runSrc(t, src, ssaForm); got != want {
			t.Errorf("ssa=%v: got %q want %q", ssaForm, got, want)
		}
	}
}

func TestSSAThenCleanupPreservesSemantics(t *testing.T) {
	src := `
var acc float;

func main() {
	var i int = 0;
	var lim int = 20;
	while (i < lim) {
		var t float = float(i) * 0.5;
		if (i % 3 == 0) {
			acc = acc + t;
		}
		i = i + 1;
	}
	print(acc);
}
`
	want := runSrc(t, src, false)
	p := compile(t, src, true)
	for _, f := range p.Funcs {
		ssa.CopyProp(f)
		ssa.ConstFold(f)
		ssa.DeadCode(f)
		if err := ir.Verify(f); err != nil {
			t.Fatalf("verify after cleanup: %v", err)
		}
	}
	if got := run(t, p); got != want {
		t.Errorf("after cleanup: got %q want %q", got, want)
	}
}

func TestIndexOutOfRangeTraps(t *testing.T) {
	src := `
var a int[4];
func main() {
	var i int = 9;
	a[i] = 1;
}
`
	p := compile(t, src, true)
	var out strings.Builder
	m := interp.New(p, &out)
	if _, err := m.Run(); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestDivisionByZeroTraps(t *testing.T) {
	src := `
func main() {
	var x int = 0;
	print(10 / x);
}
`
	p := compile(t, src, true)
	var out strings.Builder
	m := interp.New(p, &out)
	if _, err := m.Run(); err == nil {
		t.Fatal("expected division-by-zero error")
	}
}

func TestEagerLogicalOps(t *testing.T) {
	// SPL's && and || are eager; both sides always evaluate.
	src := `
func main() {
	var x int = 2;
	print(x > 1 && x < 5);
	print(x > 3 || x == 2);
	print(!(x == 2));
}
`
	want := "1\n1\n0\n"
	if got := runSrc(t, src, true); got != want {
		t.Errorf("got %q want %q", got, want)
	}
}
