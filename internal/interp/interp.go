// Package interp executes IR programs directly (in SSA or pre-SSA form).
// It is the substrate for the profilers (§7.3 of the paper: control-flow
// edge profiling, data-dependence profiling, and value profiling for
// software value prediction) and the functional reference for testing the
// SPT transformation: a transformed program must print exactly what the
// original printed.
package interp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"

	"sptc/internal/ir"
)

// Value is one runtime scalar. Exactly one of I/F is meaningful,
// determined by the static kind of the variable or memory cell.
type Value struct {
	I int64
	F float64
}

// IntVal makes an integer Value.
func IntVal(i int64) Value { return Value{I: i} }

// FloatVal makes a float Value.
func FloatVal(f float64) Value { return Value{F: f} }

// Hooks receives execution events. Any field may be nil.
type Hooks struct {
	// OnEdge fires for every control transfer between blocks of the same
	// function, including loop back edges.
	OnEdge func(fr *Frame, from, to *ir.Block)
	// OnStmt fires before each statement executes.
	OnStmt func(fr *Frame, s *ir.Stmt)
	// OnLoad fires for every memory read (global scalar or array element).
	OnLoad func(fr *Frame, s *ir.Stmt, op *ir.Op, addr int)
	// OnStore fires for every memory write, after the value is computed.
	OnStore func(fr *Frame, s *ir.Stmt, addr int)
	// OnDef fires when an assignment or phi defines a scalar.
	OnDef func(fr *Frame, s *ir.Stmt, v Value)
	// OnEnter/OnExit fire on function entry and exit.
	OnEnter func(fr *Frame)
	// OnExit fires when fr returns.
	OnExit func(fr *Frame)
}

// Frame is one function activation.
type Frame struct {
	Func   *ir.Func
	Caller *Frame
	Depth  int
	Regs   map[*ir.Var]Value
	ID     int64 // unique activation id
}

// Machine executes a program.
type Machine struct {
	Prog     *ir.Program
	Mem      []Value
	Out      io.Writer
	Hooks    Hooks
	Steps    int64 // statements executed
	MaxSteps int64
	// Ctx, when set, cancels execution cooperatively: it is polled
	// every ctxPollSteps statements.
	Ctx context.Context

	nextFrameID int64
}

// ctxPollSteps is how often (in executed statements) the interpreter
// polls Ctx for cancellation.
const ctxPollSteps = 4096

// ErrStepLimit is returned when execution exceeds MaxSteps.
var ErrStepLimit = errors.New("interp: step limit exceeded")

// New creates a machine with memory laid out and globals initialized.
func New(prog *ir.Program, out io.Writer) *Machine {
	size := prog.Layout()
	m := &Machine{Prog: prog, Mem: make([]Value, size), Out: out, MaxSteps: 2_000_000_000}
	for _, g := range prog.Globals {
		if !g.IsArray() {
			if g.Elem == ir.ValFloat {
				m.Mem[g.Addr] = FloatVal(g.InitF)
			} else {
				m.Mem[g.Addr] = IntVal(g.InitInt)
			}
		}
	}
	return m
}

// Run executes main and returns its result (zero Value for void).
func (m *Machine) Run() (Value, error) {
	if m.Prog.Main == nil {
		return Value{}, errors.New("interp: program has no main")
	}
	return m.Call(m.Prog.Main, nil, nil)
}

// Call invokes f with the given arguments.
func (m *Machine) Call(f *ir.Func, args []Value, caller *Frame) (Value, error) {
	fr := &Frame{Func: f, Caller: caller, Regs: make(map[*ir.Var]Value), ID: m.nextFrameID}
	m.nextFrameID++
	if caller != nil {
		fr.Depth = caller.Depth + 1
	}
	if fr.Depth > 10000 {
		return Value{}, fmt.Errorf("interp: call stack overflow in %s", f.Name)
	}
	for i, p := range f.Params {
		if i < len(args) {
			fr.Regs[p] = args[i]
		}
	}
	if m.Hooks.OnEnter != nil {
		m.Hooks.OnEnter(fr)
	}

	blk := f.Entry
	var prev *ir.Block
	for {
		// Phase 1: evaluate all phis using values from the predecessor.
		phis := blk.Phis()
		if len(phis) > 0 && prev != nil {
			pi := blk.PredIndex(prev)
			if pi < 0 {
				return Value{}, fmt.Errorf("interp: %s: b%d entered from non-predecessor b%d", f.Name, blk.ID, prev.ID)
			}
			vals := make([]Value, len(phis))
			for i, phi := range phis {
				if pi >= len(phi.PhiArgs) {
					return Value{}, fmt.Errorf("interp: %s: phi arity mismatch in b%d", f.Name, blk.ID)
				}
				vals[i] = fr.Regs[phi.PhiArgs[pi]]
			}
			for i, phi := range phis {
				fr.Regs[phi.Dst] = vals[i]
				if m.Hooks.OnDef != nil {
					m.Hooks.OnDef(fr, phi, vals[i])
				}
				m.Steps++
			}
		}

		for _, s := range blk.Stmts[len(phis):] {
			m.Steps++
			if m.Steps > m.MaxSteps {
				return Value{}, ErrStepLimit
			}
			if m.Ctx != nil && m.Steps%ctxPollSteps == 0 {
				if err := m.Ctx.Err(); err != nil {
					return Value{}, err
				}
			}
			if m.Hooks.OnStmt != nil {
				m.Hooks.OnStmt(fr, s)
			}
			switch s.Kind {
			case ir.StmtAssign:
				v, err := m.eval(fr, s, s.RHS)
				if err != nil {
					return Value{}, err
				}
				fr.Regs[s.Dst] = v
				if m.Hooks.OnDef != nil {
					m.Hooks.OnDef(fr, s, v)
				}
			case ir.StmtStoreG:
				v, err := m.eval(fr, s, s.RHS)
				if err != nil {
					return Value{}, err
				}
				m.Mem[s.G.Addr] = v
				if m.Hooks.OnStore != nil {
					m.Hooks.OnStore(fr, s, s.G.Addr)
				}
			case ir.StmtStoreA:
				addr, err := m.elemAddr(fr, s, s.G, s.Index)
				if err != nil {
					return Value{}, err
				}
				v, err := m.eval(fr, s, s.RHS)
				if err != nil {
					return Value{}, err
				}
				m.Mem[addr] = v
				if m.Hooks.OnStore != nil {
					m.Hooks.OnStore(fr, s, addr)
				}
			case ir.StmtCall:
				if _, err := m.eval(fr, s, s.RHS); err != nil {
					return Value{}, err
				}
			case ir.StmtRet:
				var v Value
				if s.RHS != nil {
					var err error
					v, err = m.eval(fr, s, s.RHS)
					if err != nil {
						return Value{}, err
					}
				}
				if m.Hooks.OnExit != nil {
					m.Hooks.OnExit(fr)
				}
				return v, nil
			case ir.StmtIf:
				v, err := m.eval(fr, s, s.RHS)
				if err != nil {
					return Value{}, err
				}
				next := blk.Succs[1]
				if isTrue(v, s.RHS.Type) {
					next = blk.Succs[0]
				}
				if m.Hooks.OnEdge != nil {
					m.Hooks.OnEdge(fr, blk, next)
				}
				prev, blk = blk, next
				goto nextBlock
			case ir.StmtGoto:
				next := blk.Succs[0]
				if m.Hooks.OnEdge != nil {
					m.Hooks.OnEdge(fr, blk, next)
				}
				prev, blk = blk, next
				goto nextBlock
			case ir.StmtFork, ir.StmtKill:
				// Functionally, SPT fork/kill are no-ops: speculation
				// only affects timing. The machine simulator models them.
			case ir.StmtPhi:
				return Value{}, fmt.Errorf("interp: %s: phi not at block head (b%d)", f.Name, blk.ID)
			default:
				return Value{}, fmt.Errorf("interp: %s: invalid statement kind %s", f.Name, s.Kind)
			}
		}
		return Value{}, fmt.Errorf("interp: %s: block b%d fell through without terminator", f.Name, blk.ID)
	nextBlock:
		continue
	}
}

func isTrue(v Value, k ir.ValKind) bool {
	if k == ir.ValFloat {
		return v.F != 0
	}
	return v.I != 0
}

func (m *Machine) elemAddr(fr *Frame, s *ir.Stmt, g *ir.Global, index []*ir.Op) (int, error) {
	if len(index) != len(g.Dims) {
		return 0, fmt.Errorf("interp: %s: wrong index arity for %s", fr.Func.Name, g.Name)
	}
	off := 0
	for d, ix := range index {
		v, err := m.eval(fr, s, ix)
		if err != nil {
			return 0, err
		}
		i := int(v.I)
		if i < 0 || i >= g.Dims[d] {
			return 0, fmt.Errorf("interp: %s: index %d out of range [0,%d) for %s (stmt s%d)",
				fr.Func.Name, i, g.Dims[d], g.Name, s.ID)
		}
		off = off*g.Dims[d] + i
	}
	return g.Addr + off, nil
}

func (m *Machine) eval(fr *Frame, s *ir.Stmt, o *ir.Op) (Value, error) {
	switch o.Kind {
	case ir.OpConstInt:
		return IntVal(o.ConstI), nil
	case ir.OpConstFloat:
		return FloatVal(o.ConstF), nil
	case ir.OpConstStr:
		return Value{}, nil
	case ir.OpUseVar:
		return fr.Regs[o.Var], nil
	case ir.OpLoadG:
		if m.Hooks.OnLoad != nil {
			m.Hooks.OnLoad(fr, s, o, o.G.Addr)
		}
		return m.Mem[o.G.Addr], nil
	case ir.OpLoadA:
		addr, err := m.elemAddr(fr, s, o.G, o.Args)
		if err != nil {
			return Value{}, err
		}
		if m.Hooks.OnLoad != nil {
			m.Hooks.OnLoad(fr, s, o, addr)
		}
		return m.Mem[addr], nil
	case ir.OpBin:
		x, err := m.eval(fr, s, o.Args[0])
		if err != nil {
			return Value{}, err
		}
		y, err := m.eval(fr, s, o.Args[1])
		if err != nil {
			return Value{}, err
		}
		return evalBin(fr, s, o, x, y)
	case ir.OpUn:
		x, err := m.eval(fr, s, o.Args[0])
		if err != nil {
			return Value{}, err
		}
		switch o.Un {
		case ir.UnNeg:
			if o.Type == ir.ValFloat {
				return FloatVal(-x.F), nil
			}
			return IntVal(-x.I), nil
		case ir.UnNot:
			if isTrue(x, o.Args[0].Type) {
				return IntVal(0), nil
			}
			return IntVal(1), nil
		case ir.UnBitNot:
			return IntVal(^x.I), nil
		}
	case ir.OpCast:
		x, err := m.eval(fr, s, o.Args[0])
		if err != nil {
			return Value{}, err
		}
		if o.Type == ir.ValFloat {
			if o.Args[0].Type == ir.ValFloat {
				return x, nil
			}
			return FloatVal(float64(x.I)), nil
		}
		if o.Args[0].Type == ir.ValFloat {
			return IntVal(int64(x.F)), nil
		}
		return x, nil
	case ir.OpCall:
		return m.evalCall(fr, s, o)
	}
	return Value{}, fmt.Errorf("interp: invalid op kind %d", o.Kind)
}

func evalBin(fr *Frame, s *ir.Stmt, o *ir.Op, x, y Value) (Value, error) {
	lf := o.Args[0].Type == ir.ValFloat || o.Args[1].Type == ir.ValFloat
	b2i := func(b bool) Value {
		if b {
			return IntVal(1)
		}
		return IntVal(0)
	}
	if lf {
		switch o.Bin {
		case ir.BinAdd:
			return FloatVal(x.F + y.F), nil
		case ir.BinSub:
			return FloatVal(x.F - y.F), nil
		case ir.BinMul:
			return FloatVal(x.F * y.F), nil
		case ir.BinDiv:
			if y.F == 0 {
				return Value{}, fmt.Errorf("interp: %s: float division by zero (stmt s%d)", fr.Func.Name, s.ID)
			}
			return FloatVal(x.F / y.F), nil
		case ir.BinEq:
			return b2i(x.F == y.F), nil
		case ir.BinNeq:
			return b2i(x.F != y.F), nil
		case ir.BinLt:
			return b2i(x.F < y.F), nil
		case ir.BinLeq:
			return b2i(x.F <= y.F), nil
		case ir.BinGt:
			return b2i(x.F > y.F), nil
		case ir.BinGeq:
			return b2i(x.F >= y.F), nil
		}
		return Value{}, fmt.Errorf("interp: %s: operator %s on float operands", fr.Func.Name, o.Bin)
	}
	switch o.Bin {
	case ir.BinAdd:
		return IntVal(x.I + y.I), nil
	case ir.BinSub:
		return IntVal(x.I - y.I), nil
	case ir.BinMul:
		return IntVal(x.I * y.I), nil
	case ir.BinDiv:
		if y.I == 0 {
			return Value{}, fmt.Errorf("interp: %s: integer division by zero (stmt s%d)", fr.Func.Name, s.ID)
		}
		return IntVal(x.I / y.I), nil
	case ir.BinRem:
		if y.I == 0 {
			return Value{}, fmt.Errorf("interp: %s: integer remainder by zero (stmt s%d)", fr.Func.Name, s.ID)
		}
		return IntVal(x.I % y.I), nil
	case ir.BinAnd:
		return IntVal(x.I & y.I), nil
	case ir.BinOr:
		return IntVal(x.I | y.I), nil
	case ir.BinXor:
		return IntVal(x.I ^ y.I), nil
	case ir.BinShl:
		return IntVal(x.I << uint(y.I&63)), nil
	case ir.BinShr:
		return IntVal(x.I >> uint(y.I&63)), nil
	case ir.BinEq:
		return b2i(x.I == y.I), nil
	case ir.BinNeq:
		return b2i(x.I != y.I), nil
	case ir.BinLt:
		return b2i(x.I < y.I), nil
	case ir.BinLeq:
		return b2i(x.I <= y.I), nil
	case ir.BinGt:
		return b2i(x.I > y.I), nil
	case ir.BinGeq:
		return b2i(x.I >= y.I), nil
	case ir.BinLAnd:
		return b2i(x.I != 0 && y.I != 0), nil
	case ir.BinLOr:
		return b2i(x.I != 0 || y.I != 0), nil
	}
	return Value{}, fmt.Errorf("interp: invalid binary operator")
}

func (m *Machine) evalCall(fr *Frame, s *ir.Stmt, o *ir.Op) (Value, error) {
	if o.Builtin {
		return m.evalBuiltin(fr, s, o)
	}
	if o.Func == nil {
		return Value{}, fmt.Errorf("interp: call to unresolved function %s", o.Callee)
	}
	args := make([]Value, len(o.Args))
	for i, a := range o.Args {
		v, err := m.eval(fr, s, a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	return m.Call(o.Func, args, fr)
}

func (m *Machine) evalBuiltin(fr *Frame, s *ir.Stmt, o *ir.Op) (Value, error) {
	switch o.Callee {
	case "print":
		for i, a := range o.Args {
			if i > 0 {
				fmt.Fprint(m.Out, " ")
			}
			if a.Kind == ir.OpConstStr {
				fmt.Fprint(m.Out, a.Str)
				continue
			}
			v, err := m.eval(fr, s, a)
			if err != nil {
				return Value{}, err
			}
			if a.Type == ir.ValFloat {
				fmt.Fprintf(m.Out, "%.6g", v.F)
			} else {
				fmt.Fprintf(m.Out, "%d", v.I)
			}
		}
		fmt.Fprintln(m.Out)
		return Value{}, nil
	}

	args := make([]Value, len(o.Args))
	for i, a := range o.Args {
		v, err := m.eval(fr, s, a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	switch o.Callee {
	case "fabs":
		return FloatVal(math.Abs(args[0].F)), nil
	case "fsqrt":
		if args[0].F < 0 {
			return Value{}, fmt.Errorf("interp: fsqrt of negative value")
		}
		return FloatVal(math.Sqrt(args[0].F)), nil
	case "fmin":
		return FloatVal(math.Min(args[0].F, args[1].F)), nil
	case "fmax":
		return FloatVal(math.Max(args[0].F, args[1].F)), nil
	case "iabs":
		if args[0].I < 0 {
			return IntVal(-args[0].I), nil
		}
		return args[0], nil
	case "imin":
		if args[0].I < args[1].I {
			return args[0], nil
		}
		return args[1], nil
	case "imax":
		if args[0].I > args[1].I {
			return args[0], nil
		}
		return args[1], nil
	}
	return Value{}, fmt.Errorf("interp: unknown builtin %s", o.Callee)
}
