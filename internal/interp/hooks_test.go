package interp_test

import (
	"strings"
	"testing"

	"sptc/internal/interp"
	"sptc/internal/ir"
)

func TestHooksFire(t *testing.T) {
	src := `
var g int;
var a int[8];
func main() {
	var i int;
	for (i = 0; i < 8; i++) {
		a[i] = i;
		g = g + a[i];
	}
	print(g);
}
`
	p := compile(t, src, true)
	var edges, loads, stores, defs, enters, exits int
	m := interp.New(p, &strings.Builder{})
	m.Hooks = interp.Hooks{
		OnEdge:  func(fr *interp.Frame, from, to *ir.Block) { edges++ },
		OnLoad:  func(fr *interp.Frame, s *ir.Stmt, op *ir.Op, addr int) { loads++ },
		OnStore: func(fr *interp.Frame, s *ir.Stmt, addr int) { stores++ },
		OnDef:   func(fr *interp.Frame, s *ir.Stmt, v interp.Value) { defs++ },
		OnEnter: func(fr *interp.Frame) { enters++ },
		OnExit:  func(fr *interp.Frame) { exits++ },
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// 8 iterations: 8 array stores + 8 g stores; 8 array loads + 8 g
	// loads + 1 final g load in print.
	if stores != 16 {
		t.Errorf("stores = %d, want 16", stores)
	}
	if loads != 17 {
		t.Errorf("loads = %d, want 17", loads)
	}
	if edges == 0 || defs == 0 {
		t.Errorf("edges=%d defs=%d", edges, defs)
	}
	if enters != 1 || exits != 1 {
		t.Errorf("enters=%d exits=%d", enters, exits)
	}
}

func TestStepLimit(t *testing.T) {
	src := `
func main() {
	var x int = 1;
	while (x > 0) { x = x + 1; }
	print(x);
}
`
	p := compile(t, src, true)
	m := interp.New(p, &strings.Builder{})
	m.MaxSteps = 1000
	_, err := m.Run()
	if err != interp.ErrStepLimit {
		t.Fatalf("expected step limit, got %v", err)
	}
}

func TestDeepRecursionGuard(t *testing.T) {
	src := `
func down(n int) int {
	return down(n + 1);
}
func main() {
	print(down(0));
}
`
	p := compile(t, src, true)
	m := interp.New(p, &strings.Builder{})
	if _, err := m.Run(); err == nil {
		t.Fatal("expected stack overflow error")
	} else if !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("got %v", err)
	}
}

func TestMutualRecursion(t *testing.T) {
	src := `
func isEven(n int) int {
	if (n == 0) { return 1; }
	return isOdd(n - 1);
}
func isOdd(n int) int {
	if (n == 0) { return 0; }
	return isEven(n - 1);
}
func main() {
	print(isEven(10), isOdd(10), isEven(7));
}
`
	if got := runSrc(t, src, true); got != "1 0 0\n" {
		t.Errorf("got %q", got)
	}
}

func TestGlobalInitialValues(t *testing.T) {
	src := `
var x int = 40 + 2;
var f float = 2.5;
var neg int = -7;
func main() { print(x, f, neg); }
`
	if got := runSrc(t, src, true); got != "42 2.5 -7\n" {
		t.Errorf("got %q", got)
	}
}

func TestShiftAndMaskSemantics(t *testing.T) {
	src := `
func main() {
	var neg int = -8;
	print(neg >> 1);       // arithmetic shift
	print(1 << 62 >> 60);
	print(-1 & 255);
	print(7 % -3, -7 % 3); // Go-style remainder
}
`
	if got := runSrc(t, src, true); got != "-4\n4\n255\n1 -1\n" {
		t.Errorf("got %q", got)
	}
}

func TestFloatFormatting(t *testing.T) {
	src := `
func main() {
	print(1.0 / 3.0);
	print(float(10) / 4.0);
	print(0.1 + 0.2);
}
`
	got := runSrc(t, src, true)
	if !strings.HasPrefix(got, "0.333333") {
		t.Errorf("got %q", got)
	}
}
