// Package benchprog holds the synthetic benchmark suite standing in for
// the paper's ten SPEC2000Int programs (eon and perlbmk are excluded, as
// in the paper). Each program is written in SPL and mirrors the workload
// anatomy the paper's evaluation depends on:
//
//   - serial phases (linear congruential generators, pointer-chasing
//     walks, accumulator recurrences) whose loops the cost model must
//     reject — these keep the SPT runtime coverage near the paper's ~30%
//     rather than at 100%;
//   - hot loops whose cross-iteration dependences are rare at run time
//     but invisible to static type-based analysis (indirect indexing
//     through data): selected only with dependence profiling, which is
//     what separates the "best" from the "basic" compilation;
//   - a small amount of affine, statically analyzable parallelism (the
//     "basic" compilation's ~1% average win);
//   - pointer-chase and variable-stride while loops with small bodies
//     that only while-loop unrolling (the "anticipated" compilation) can
//     grow past the minimum SPT body size;
//   - stride recurrences through calls that require software value
//     prediction (Figure 13);
//   - recursive phases executing outside any loop, which bound the
//     "maximum loop coverage" of Figure 16 below 100%; and
//   - large-working-set pointer-chasing (mcf, vortex) for the low end of
//     Table 1's IPC range.
//
// All programs are deterministic, self-checking (they print checksums,
// compared across compilation levels by the test suite), and sized for
// trimmed profiling runs, like the paper's reduced input sets.
package benchprog

// Benchmark is one suite entry.
type Benchmark struct {
	Name   string
	Source string
	// Character notes for documentation and reports.
	Character string
}

// Suite returns the ten benchmarks in the paper's order.
func Suite() []Benchmark {
	return []Benchmark{
		{"bzip2", srcBzip2, "byte histogram + move-to-front + run-length; indirect table updates"},
		{"crafty", srcCrafty, "bitboard evaluation; serial hash chain; piece-list while loops; search recursion"},
		{"gap", srcGap, "permutation composition via indirect loads; cycle walks; orbit list chase"},
		{"gcc", srcGcc, "branchy IR walks with indirect operands; recursive tree folding"},
		{"gzip", srcGzip, "LZ77 window matching with variable advance; hash chains; bit-packing while loop"},
		{"mcf", srcMcf, "network arc pricing over a cache-hostile working set; serial augmenting walk"},
		{"parser", srcParser, "token scoring; dictionary chain probing; recursive descent phrases"},
		{"twolf", srcTwolf, "float wire-length with indirect pins; serial annealing accept chain"},
		{"vortex", srcVortex, "object store; affine record copies (static win); chained lookups"},
		{"vpr", srcVpr, "Figure 2's routing cost accumulation; SVP timing walk; serial maze chase"},
	}
}

// Names returns the suite's benchmark names in the paper's order.
func Names() []string {
	suite := Suite()
	names := make([]string, len(suite))
	for i, b := range suite {
		names[i] = b.Name
	}
	return names
}

// ByName returns the named benchmark, or nil.
func ByName(name string) *Benchmark {
	for _, b := range Suite() {
		if b.Name == name {
			bb := b
			return &bb
		}
	}
	return nil
}

const srcBzip2 = `
// bzip2: block compression. The histogram/transform loop updates tables
// indexed by data bytes -- dependences exist only on byte collisions at
// distance one, which profiling shows to be rare. Generation and
// run-length coding are serial; move-to-front ranking is a small-bodied
// pointer-style while loop that only while-unrolling can grow.
var block int[8192];
var freq int[256];
var xform int[8192];
var mtf int[256];
var rlesum int;
var hot int;

func gen() {
	var x int = 12345;
	var i int;
	for (i = 0; i < 8192; i++) {
		var v int = (x >> 8) & 255;
		v = v + (v >> 2) % 13 + (v & 31) + v % 7;
		v = v + (v >> 3) % 11 + (v ^ (x & 63));
		var b int = v & 255;
		if ((x & 31) == 0) {
			b = 42;
		}
		block[i] = b;
		// Feedback: the next seed needs this iteration's full result, so
		// the recurrence cannot move into a small pre-fork region.
		x = (x * 1103515245 + 12345 + v) & 1073741823;
	}
}

func transform() {
	var i int;
	for (i = 0; i < 8192; i++) {
		var b int = block[i];
		var v int = b * 3 + (b >> 2) + (b & 15) + b % 7;
		v = v + (v >> 3) % 13 + (v & 31) + v % 11;
		var w int = freq[b] + 1;
		w = w + (w >> 6);
		xform[i] = v + w % 5;
		if (v > 780 + (i & 7)) {
			hot = hot + 1;
		}
		// Indirect table update fed by the whole iteration: statically a
		// loop-carried dependence on every freq read, dynamically one only
		// when adjacent bytes collide.
		freq[b] = w + (v & 1);
	}
}

func mtfinit() {
	var i int;
	for (i = 0; i < 256; i++) {
		mtf[i] = i;
	}
}

func mtfrank(b int) int {
	var r int = 0;
	while (mtf[r] != b) {
		r++;
	}
	var j int = r;
	while (j > 0) {
		mtf[j] = mtf[j-1];
		j--;
	}
	mtf[0] = b;
	return r;
}

func runlength() {
	var i int;
	var run int = 0;
	var prev int = -1;
	for (i = 0; i < 8192; i++) {
		var b int = block[i];
		if (b == prev) {
			run++;
		} else {
			rlesum = (rlesum + run * 17 + (prev & 255)) & 1048575;
			run = 1;
			prev = b;
		}
	}
}

func main() {
	gen();
	transform();
	mtfinit();
	var i int;
	var ranks int = 0;
	for (i = 0; i < 8192; i += 16) {
		ranks = ranks + mtfrank(block[i]);
	}
	runlength();
	var h int = 0;
	for (i = 0; i < 8192; i++) {
		h = (h + xform[i] * ((i & 15) + 1)) & 268435455;
	}
	print("bzip2", h, ranks & 1048575, rlesum, hot);
}
`

const srcCrafty = `
// crafty: board evaluation. The evaluation loop folds every board into a
// serial hash chain, so it cannot be speculated; the mobility pass walks
// piece lists (pointer-chase while loop, small body -- anticipated
// only); perft-style recursion burns time outside every loop.
var boards int[4096];
var piece int[4096];
var nextp int[4096];
var mobility int[4096];
var hashkey int;
var mobsum int;
var nodes int;

func gen() {
	var x int = 99991;
	var i int;
	for (i = 0; i < 4096; i++) {
		var v int = (x >> 5) & 1048575;
		v = v + v % 97 + (v >> 4) % 89 + (v & 255);
		boards[i] = v * 4096 + (x & 4095);
		piece[i] = (v >> 7) & 63;
		nextp[i] = i - 1 - (v & 1);
		x = (x * 6364136223846793005 + v) & 4611686018427387903;
	}
	nextp[0] = -1;
	nextp[1] = -1;
}

func evaluate() {
	var i int;
	for (i = 0; i < 4096; i++) {
		var b int = boards[i];
		var s int = (b & 1048575) % 97 + ((b >> 20) & 1048575) % 89;
		s = s + (b >> 40) % 83 + (b & (b >> 1)) % 79;
		hashkey = (hashkey * 31 + s) & 268435455;
	}
}

func mobility_pass() {
	var cur int = 4095;
	while (cur >= 0) {
		var b int = boards[cur];
		var m int = piece[cur] * 3 + (b & 255) % 29;
		m = m + ((b >> 8) & 63);
		mobility[cur] = m;
		mobsum = mobsum + (m & 63);
		cur = nextp[cur];
	}
}

func perft(depth int, b int) int {
	if (depth == 0) {
		return (b & 15) + 1;
	}
	var total int = 0;
	var m int = 0;
	while (m < 3) {
		total = total + perft(depth - 1, (b * 2654435761 + m) & 1073741823);
		m++;
	}
	nodes = nodes + 1;
	return total;
}

func main() {
	gen();
	evaluate();
	mobility_pass();
	mobility_pass();
	mobility_pass();
	mobility_pass();
	mobility_pass();
	mobility_pass();
	var p int = perft(10, 777);
	print("crafty", hashkey, mobsum & 1048575, p & 1048575, nodes);
}
`

const srcGap = `
// gap: permutation arithmetic. Composition reads through two levels of
// indirection (profile-clean, statically opaque); the generator shuffle
// and the cycle walk are serial; orbit traversal is a pointer chase with
// a small body.
var perm int[4096];
var inv int[4096];
var comp int[4096];
var orbitnext int[4096];
var acc int;
var orbitsum int;

func genperm() {
	var i int;
	for (i = 0; i < 4096; i++) {
		perm[i] = i;
	}
	var x int = 7;
	for (i = 4095; i > 0; i--) {
		var j int = x % (i + 1);
		var t int = perm[i];
		perm[i] = perm[j];
		perm[j] = t;
		x = (x * 48271 + t) & 1048575;
	}
	for (i = 0; i < 4096; i++) {
		orbitnext[i] = i - 1 - (perm[i] & 3);
	}
}

func invert() {
	var i int;
	for (i = 0; i < 4096; i++) {
		inv[perm[i]] = i;
	}
}

func compose() {
	var i int;
	for (i = 0; i < 4096; i++) {
		var a int = perm[i];
		var b int = perm[a];
		var c int = inv[(b + 1) & 4095];
		var v int = a * 3 + b * 5 + c * 7;
		v = v + (a ^ b) % 31 + (b ^ c) % 29 + (a & c) % 23;
		comp[i] = v & 1048575;
		// Unconditional indirect update of a table this loop also reads:
		// statically a carried dependence, dynamically almost never one.
		inv[(v * 2654435761) & 4095] = c;
		acc = acc + (v & 63);
	}
}

func cyclewalk() int {
	var seen int = 0;
	var cur int = 0;
	var steps int = 0;
	while (steps < 40000) {
		cur = perm[(cur + (seen & 1)) & 4095];
		seen = (seen * 3 + cur) & 268435455;
		steps++;
	}
	return seen;
}

func orbits() {
	var cur int = 4095;
	while (cur >= 0) {
		var c int = comp[cur];
		var o int = (c & 127) + c % 61 + (cur & 7);
		o = o + (c ^ cur) % 37;
		orbitsum = orbitsum + o;
		cur = orbitnext[cur];
	}
}

func main() {
	genperm();
	invert();
	compose();
	var w int = cyclewalk();
	orbits();
	orbits();
	orbits();
	orbits();
	orbits();
	orbits();
	print("gap", acc & 16777215, w, orbitsum & 16777215);
}
`

const srcGcc = `
// gcc: IR passes. The folding pass reads operands through use-def links
// (indirect -- needs profiling); constant propagation is a serial
// worklist chain; expression trees are folded recursively outside loops.
var opkind int[8192];
var opval int[8192];
var useidx int[8192];
var folded int[8192];
var maxval int;
var rarehits int;
var treesum int;

func gen() {
	var x int = 31337;
	var i int;
	for (i = 0; i < 8192; i++) {
		var v int = (x >> 4) & 65535;
		v = v + v % 61 + (v >> 5) % 53;
		opkind[i] = v & 7;
		opval[i] = (v * 9) & 65535;
		useidx[i] = (v * 31) & 8191;
		x = (x * 1103515245 + v) & 1073741823;
	}
}

func foldpass() {
	var i int;
	for (i = 0; i < 8192; i++) {
		var k int = opkind[i];
		var v int = opval[useidx[i]];
		v = v + (folded[(v * 2654435761) & 8191] & 1);
		var r int = 0;
		if (k < 2) {
			r = v + 17 + (v >> 3) % 11;
		} else { if (k < 4) {
			r = v * 3 - (v >> 2) + v % 13;
		} else { if (k < 6) {
			r = (v << 1) ^ (v >> 3);
			r = r + r % 7;
		} else {
			r = v - (v >> 4) + (v & 63) + v % 19;
		} } }
		folded[i] = r;
		if (r > 196000 + (i & 31)) {
			if (r > maxval) {
				maxval = r;
			}
			rarehits = rarehits + 1;
		}
	}
}

func proppass() {
	var v int = 1;
	var i int;
	for (i = 0; i < 8192; i++) {
		v = (v * 2654435761 + folded[i]) & 268435455;
	}
	treesum = treesum ^ v;
}

func foldtree(depth int, seed int) int {
	if (depth == 0) {
		return seed % 251;
	}
	var l int = foldtree(depth - 1, (seed * 131 + 7) & 1073741823);
	var r int = foldtree(depth - 1, (seed * 137 + 11) & 1073741823);
	return (l + r * 3 + seed % 17) & 268435455;
}

func main() {
	gen();
	foldpass();
	foldpass();
	proppass();
	treesum = (treesum + foldtree(16, 12345)) & 268435455;
	var i int;
	var h int = 0;
	for (i = 0; i < 8192; i++) {
		h = (h + folded[i] * ((i & 31) + 1)) & 268435455;
	}
	print("gcc", h, maxval, rarehits, treesum);
}
`

const srcGzip = `
// gzip: LZ77 deflate. The match loop advances by the (data-dependent)
// match length -- a genuine while loop with a body large enough for the
// best compilation to select once dependence profiling clears the hash
// chain updates. Window generation is serial; the final bit packer is a
// small-bodied while loop (anticipated only).
var text int[16384];
var head int[1024];
var litlen int[16384];
var outbits int;
var packed int;

func gen() {
	var x int = 555;
	var i int;
	for (i = 0; i < 16384; i++) {
		x = (x * 69069 + 1) & 1073741823;
		var c int = (x >> 9) & 15;
		if (i > 64 && (x & 7) < 3) {
			c = text[i - 64];
		}
		text[i] = c;
	}
	for (i = 0; i < 1024; i++) {
		head[i] = -1;
	}
}

func deflate() {
	var i int = 0;
	while (i < 15800) {
		var h int = (text[i] * 1089 + text[i+1] * 33 + text[i+2]) & 1023;
		var cand int = head[h];
		var best int = 0;
		if (cand >= 0 && cand < i) {
			var len int = 0;
			while (len < 24 && text[cand + len] == text[i + len]) {
				len++;
			}
			best = len;
		}
		litlen[i] = best * 4 + (text[i] & 3);
		head[h] = i;
		outbits = outbits + 9 + best % 5;
		i = i + 1 + best;
	}
}

func packbits() {
	var p int = 0;
	while (p < 15800) {
		packed = (packed * 5 + litlen[p] + (p & 31)) & 268435455;
		p = p + 1 + (litlen[p] & 3);
	}
}

func main() {
	gen();
	deflate();
	packbits();
	packbits();
	packbits();
	packbits();
	packbits();
	packbits();
	print("gzip", outbits & 16777215, packed);
}
`

const srcMcf = `
// mcf: minimum-cost flow. The arc pricing pass streams half a million
// arcs with node-potential lookups through indirection over a working
// set far beyond the L3 cache: memory-bound, low IPC, and speculative
// (profiling shows the rare potential updates almost never collide).
// The augmenting walk is a serial pointer chase.
var arctail int[524288];
var archead int[524288];
var arccost int[524288];
var potential int[65536];
var reduced int[524288];
var flowsum int;

func gen() {
	var x int = 424242;
	var i int;
	for (i = 0; i < 65536; i++) {
		x = (x * 1103515245 + 12345) & 1073741823;
		potential[i] = (x >> 6) & 65535;
	}
	for (i = 0; i < 524288; i++) {
		x = (x * 1103515245 + 12345) & 1073741823;
		arctail[i] = (x >> 5) & 65535;
		archead[i] = (x >> 14) & 65535;
		arccost[i] = (x >> 3) & 4095;
	}
}

func pricepass() {
	var i int;
	var neg int = 0;
	for (i = 0; i < 524288; i += 8) {
		var t int = arctail[i];
		var hd int = archead[i];
		var rc int = arccost[i] + potential[t] - potential[hd];
		reduced[i] = rc;
		// Unconditional node relabel: statically aliases every potential
		// read; dynamically adjacent arcs almost never share nodes.
		potential[hd] = potential[hd] + ((rc >> 12) & 1);
		if (rc < -60000) {
			neg = neg + 1;
		}
	}
	flowsum = (flowsum + neg) & 1048575;
}

func walk() int {
	var cur int = 1;
	var acc int = 0;
	var steps int = 0;
	while (steps < 30000) {
		var a int = ((cur * 2654435761) >> 4) & 524287;
		acc = acc + reduced[a & 524280];
		cur = (archead[a] + (acc & 7)) & 65535;
		steps++;
	}
	return acc & 268435455;
}

func main() {
	gen();
	pricepass();
	pricepass();
	var w int = walk();
	var i int;
	for (i = 0; i < 524288; i += 256) {
		flowsum = (flowsum + reduced[i]) & 268435455;
	}
	print("mcf", flowsum, w);
}
`

const srcParser = `
// parser: link-grammar flavored scoring. Token scoring reads dictionary
// entries through hash indirection (best); the bucket chains are walked
// by a pointer-chase while loop with a small body (anticipated); phrase
// structures are checked by recursion outside loops.
var dictkey int[4096];
var dictnext int[4096];
var walknext int[4096];
var bucket int[512];
var tokens int[8192];
var tokscore int[8192];
var scoresum int;
var chainsum int;
var phrases int;

func gen() {
	var i int;
	for (i = 0; i < 512; i++) {
		bucket[i] = -1;
	}
	var x int = 2718;
	for (i = 0; i < 4096; i++) {
		var k int = (x >> 5) & 1048575;
		k = k + k % 73 + (k >> 6) % 67;
		dictkey[i] = k;
		var h int = k & 511;
		dictnext[i] = bucket[h];
		bucket[h] = i;
		walknext[i] = i - 1 - (k & 3);
		x = (x * 48271 + k) & 1073741823;
	}
	for (i = 0; i < 8192; i++) {
		var k int = (x >> 5) & 1048575;
		if ((x & 3) == 0) {
			tokens[i] = dictkey[(x >> 8) & 4095];
		} else {
			tokens[i] = k;
		}
		x = (x * 48271 + (tokens[i] & 63)) & 1073741823;
	}
}

func score() {
	var i int;
	for (i = 0; i < 8192; i++) {
		var t int = tokens[i];
		var d int = dictkey[t & 4095];
		var s int = (t ^ d) % 127 + (t & 63) + d % 29;
		s = s + (t >> 3) % 31 + (d >> 2) % 37 + ((t + d) & 255) % 41;
		tokscore[i] = s;
		tokens[(s * 2654435761) & 8191] = t;
		scoresum = (scoresum + s * ((i & 7) + 1)) & 268435455;
	}
}

func chains() {
	var cur int = 4095;
	while (cur >= 0) {
		var k int = dictkey[cur];
		var c int = (k & 63) + k % 59 + (cur & 15);
		c = c + (k ^ cur) % 41;
		chainsum = chainsum + c;
		cur = walknext[cur];
	}
}

func phrase(depth int, seed int) int {
	if (depth == 0) {
		return seed & 7;
	}
	var left int = phrase(depth - 1, (seed * 193 + 3) & 1073741823);
	var right int = phrase(depth - 1, (seed * 197 + 5) & 1073741823);
	phrases = phrases + 1;
	return (left * 3 + right + seed % 11) & 65535;
}

func main() {
	gen();
	score();
	chains();
	chains();
	chains();
	chains();
	chains();
	chains();
	var p int = phrase(15, 4242);
	print("parser", scoresum, chainsum & 16777215, p, phrases);
}
`

const srcTwolf = `
// twolf: standard-cell placement. Wire-length estimation reads pin
// coordinates through net membership arrays (indirect, profile-clean
// float work); the annealing accept/reject chain is serial in the RNG
// and the cost accumulator.
var pinx float[4096];
var piny float[4096];
var netpins int[4096];
var netof int[4096];
var pinnext int[4096];
var wirelen float;
var accepts int;
var annealcost float;
var pinwalk float;

func gen() {
	var x int = 13579;
	var i int;
	for (i = 0; i < 4096; i++) {
		x = (x * 1103515245 + 12345) & 1073741823;
		pinx[i] = float((x >> 6) & 1023) * 0.125;
		piny[i] = float((x >> 16) & 1023) * 0.125;
		netpins[i] = (x >> 4) & 4095;
		netof[i] = (x >> 9) & 511;
		pinnext[i] = i - 1 - ((x >> 11) & 3);
	}
}

func wirelength() {
	var i int;
	for (i = 0; i < 4096; i++) {
		var p int = netpins[i];
		var q int = netpins[(i + netof[i]) & 4095];
		var dx float = fabs(pinx[p] - pinx[q]);
		var dy float = fabs(piny[p] - piny[q]);
		var c float = dx + dy + fsqrt(dx * dy + 1.0) * 0.25;
		c = c + fabs(dx - dy) * 0.125;
		pinx[(p * 2654435761) & 4095] = pinx[(p * 2654435761) & 4095] + c * 0.0001;
		wirelen = wirelen + c;
	}
}

func anneal() {
	var x int = 97531;
	var t float = 1000.0;
	var i int;
	for (i = 0; i < 30000; i++) {
		var delta float = float((x >> 8) & 255) - 120.0;
		if (delta < t * 0.2) {
			annealcost = annealcost + delta * 0.01;
			accepts = accepts + 1;
		}
		t = t * 0.9999;
		x = (x * 1103515245 + 12345 + accepts) & 1073741823;
	}
}

func pinchase() {
	var cur int = 4095;
	while (cur >= 0) {
		var ax float = pinx[cur];
		var ay float = piny[cur];
		var d float = fabs(ax - ay) * 0.25 + fabs(ax + ay) * 0.125;
		pinwalk = pinwalk + d;
		cur = pinnext[cur];
	}
}

func main() {
	gen();
	wirelength();
	wirelength();
	anneal();
	pinchase();
	pinchase();
	pinchase();
	pinchase();
	print("twolf", wirelen, annealcost, accepts, pinwalk);
}
`

const srcVortex = `
// vortex: object store. Record copies through the index are affine in
// the field offset -- the one hot loop even static analysis can prove
// safe, giving the basic compilation its win. Object lookups chase
// chained references (small-bodied while loop); the store generation is
// serial.
var store int[262144];
var index int[16384];
var chain int[16384];
var outrec int[262144];
var valid int;
var chased int;

func gen() {
	var x int = 86420;
	var i int;
	for (i = 0; i < 16384; i++) {
		var v int = (x >> 7) & 16383;
		v = v + v % 41 + (v >> 3) % 37;
		index[i] = v & 16383;
		chain[i] = i - 1 - (v & 3);
		x = (x * 1103515245 + v) & 1073741823;
	}
	for (i = 0; i < 262144; i++) {
		var w int = (x >> 5) & 65535;
		store[i] = w;
		x = (x * 69069 + 1 + (w & 15)) & 1073741823;
	}
}

func copyrecords() {
	var i int;
	for (i = 0; i < 16384; i++) {
		var src int = index[i] * 16;
		var dst int = i * 16;
		var f int;
		for (f = 0; f < 16; f++) {
			outrec[dst + f] = store[src + f] + f;
		}
	}
}

func validate() {
	var i int;
	for (i = 0; i < 16384; i++) {
		var dst int = i * 16;
		var sum int = outrec[dst] + outrec[dst + 5] + outrec[dst + 9] + outrec[dst + 13];
		sum = sum + outrec[dst + 2] % 31 + outrec[dst + 7] % 29;
		outrec[(sum * 2654435761) & 262143] = sum & 65535;
		if ((sum & 15) == 7) {
			valid = valid + 1;
		}
	}
}

func chase() {
	var cur int = 16383;
	while (cur >= 0) {
		var ix int = index[cur];
		var c int = (ix & 63) + ix % 53 + (cur & 7);
		c = c + (ix ^ cur) % 39;
		chased = chased + c;
		cur = chain[cur];
	}
}

func main() {
	gen();
	copyrecords();
	validate();
	chase();
	chase();
	chase();
	chase();
	chase();
	chase();
	var h int = 0;
	var i int;
	for (i = 0; i < 262144; i += 128) {
		h = (h + outrec[i]) & 268435455;
	}
	print("vortex", valid, chased & 16777215, h);
}
`

const srcVpr = `
// vpr: place and route. The sweep is the paper's own Figure 2 loop with
// the pin base read through an index array (so only profiling clears
// it); the timing walk is a stride recurrence through a helper function
// (the Figure 13 SVP case); maze routing is a serial chase.
var error_m float[128][128];
var pbase float[128];
var pidx int[128];
var maze int[65536];
var cost float;
var crit int;
var mazesum int;
var slotsum int;

func gen() {
	var i int;
	var j int;
	for (i = 0; i < 128; i++) {
		pbase[i] = float((i * 29) & 63) * 0.25;
		pidx[i] = (i * 37 + 11) & 127;
		for (j = 0; j < 128; j++) {
			error_m[i][j] = float(((i * 13 + j * 7) & 127)) * 0.0625;
		}
	}
	var x int = 8086;
	for (i = 0; i < 65536; i++) {
		var m int = (x >> 7) & 65535;
		m = m + m % 87 + (m >> 4) % 71;
		maze[i] = m & 65535;
		x = (x * 1103515245 + 12345 + m) & 1073741823;
	}
}

func sweep() {
	var i int = 0;
	while (i < 128) {
		var cost0 float = 0.0;
		var j int;
		for (j = 0; j < i; j++) {
			cost0 = cost0 + fabs(error_m[i][j] - pbase[pidx[j]]);
		}
		cost = cost + cost0;
		// Deposit the row cost at a data-dependent matrix cell: statically
		// this aliases every error_m read; the deposit column is never
		// read by the sweep, so profiling sees no dependence at all.
		error_m[(int(cost0) * 2654435761) & 127][127] = cost0;
		i = i + 1;
	}
}

// nextslot is deliberately heavyweight: its call-expanded size exceeds
// the pre-fork budget, so code reordering cannot hoist the t = nextslot(t)
// recurrence -- only value prediction can break it (Figure 13).
func nextslot(t int) int {
	var w int = t;
	w = w + w % 131 + (w >> 3) % 127 + (w & 255);
	w = w + w % 113 + (w >> 5) % 109 + (w & 127);
	w = w + w % 103 + (w >> 2) % 101 + (w & 63);
	w = w + w % 97 + (w >> 4) % 89 + (w & 31);
	slotsum = (slotsum + w) & 268435455;
	if ((t & 1023) == 1023) {
		return t + 5;
	}
	return t + 4;
}

func timing() {
	var t int = 0;
	var worst int = 0;
	while (t < 22000) {
		var slack int = (t % 97) * 3 + (t % 31) * 5 + ((t >> 3) % 53) * 2;
		slack = slack + (t % 13) * 7 + ((t >> 2) % 11) + (t % 23) * 2;
		if (slack > worst) {
			worst = slack;
			crit = t;
		}
		t = nextslot(t);
	}
}

func route() {
	var cur int = 1;
	var steps int = 0;
	while (steps < 40000) {
		mazesum = (mazesum + maze[cur]) & 268435455;
		cur = (maze[cur] + (mazesum & 3)) & 65535;
		steps++;
	}
}

func main() {
	gen();
	sweep();
	sweep();
	sweep();
	timing();
	route();
	print("vpr", cost, crit, mazesum, slotsum);
}
`
