package benchprog_test

import (
	"strings"
	"testing"

	"sptc"
	"sptc/internal/benchprog"
	"sptc/internal/interp"
)

// TestSuiteCompilesAndPreservesSemantics is the suite-wide correctness
// gate: every benchmark must compile at every level and produce the same
// output as the base compilation, under both the interpreter and the
// machine simulator.
func TestSuiteCompilesAndPreservesSemantics(t *testing.T) {
	for _, b := range benchprog.Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			baseRes, err := sptc.Compile(b.Name, b.Source, sptc.LevelBase)
			if err != nil {
				t.Fatalf("base compile: %v", err)
			}
			var baseOut strings.Builder
			if _, err := interp.New(baseRes.Prog, &baseOut).Run(); err != nil {
				t.Fatalf("base run: %v", err)
			}
			want := baseOut.String()
			if want == "" {
				t.Fatal("benchmark printed nothing")
			}

			for _, level := range []sptc.Level{sptc.LevelBasic, sptc.LevelBest, sptc.LevelAnticipated} {
				res, err := sptc.Compile(b.Name, b.Source, level)
				if err != nil {
					t.Fatalf("%s compile: %v", level, err)
				}
				var out strings.Builder
				if _, err := interp.New(res.Prog, &out).Run(); err != nil {
					t.Fatalf("%s interp: %v", level, err)
				}
				if out.String() != want {
					t.Errorf("%s interp output %q, want %q", level, out.String(), want)
				}
				var simOut strings.Builder
				if _, err := sptc.Simulate(res, &simOut); err != nil {
					t.Fatalf("%s simulate: %v", level, err)
				}
				if simOut.String() != want {
					t.Errorf("%s simulator output %q, want %q", level, simOut.String(), want)
				}
			}
		})
	}
}

func TestByName(t *testing.T) {
	if b := benchprog.ByName("mcf"); b == nil || b.Name != "mcf" {
		t.Fatal("ByName(mcf) failed")
	}
	if b := benchprog.ByName("nosuch"); b != nil {
		t.Fatal("ByName(nosuch) should be nil")
	}
	if n := len(benchprog.Suite()); n != 10 {
		t.Fatalf("suite has %d entries, want 10", n)
	}
}
