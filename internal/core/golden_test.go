package core_test

import (
	"strings"
	"testing"

	"sptc/internal/core"
	"sptc/internal/ir"
)

// compileBest compiles src at the best level with selection disabled and
// returns the formatted main function.
func transformedMain(t *testing.T, src string, opt core.Options) (*core.Result, string) {
	t.Helper()
	res, err := core.CompileSource("g.spl", src, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, f := range res.Prog.Funcs {
		if f.Name == "main" {
			return res, ir.FormatFunc(f)
		}
	}
	t.Fatal("no main")
	return nil, ""
}

// TestGoldenFigure2Shape checks the structural outcome of the paper's
// motivating transformation: the induction update is moved ahead of the
// fork, the body reads the old value through a temporary, and the loop
// exits through SPT_KILL.
func TestGoldenFigure2Shape(t *testing.T) {
	src := `
var acc float;
var err_v float[64];

func main() {
	var i int = 0;
	while (i < 64) {
		var c float = 0.0;
		var j int;
		for (j = 0; j < i; j++) {
			c = c + fabs(err_v[j] - float(i));
		}
		acc = acc + c;
		i = i + 1;
	}
	print(acc);
}
`
	opt := core.DefaultOptions(core.LevelBest)
	opt.DisableSelection = true
	res, text := transformedMain(t, src, opt)
	if len(res.SPT) == 0 {
		t.Fatalf("no loop transformed:\n%s", text)
	}
	// Structural markers of the Figure 2 transformation: fork and kill
	// instructions, and old-value temporaries feeding readers that
	// originally executed before the moved induction updates (the paper's
	// temp_i; ours are named <var>_old / <var>_s<id> for per-definition
	// snapshots, Figure 11).
	for _, want := range []string{"SPT_FORK", "SPT_KILL", "_old"} {
		if !strings.Contains(text, want) {
			t.Errorf("transformed main missing %q:\n%s", want, text)
		}
	}
	// Each fork names its speculative start block (the loop header).
	if !strings.Contains(text, "SPT_FORK(loop0) ->") {
		t.Errorf("fork missing its target:\n%s", text)
	}
}

// TestGoldenFigure12TempCond: moving a conditional statement replicates
// its branch through a temp_cond-style temporary evaluated once.
func TestGoldenFigure12TempCond(t *testing.T) {
	src := `
var data int[256];
var best int;

func main() {
	var i int = 0;
	while (i < 256) {
		var v int = data[i & 255] * 3 + (i & 63) + (i % 7) + (i >> 2) % 5;
		v = v + v % 13 + (v >> 1) % 11 + (i % 17);
		if (v > best + 60) {
			best = v;
		}
		i = i + 1;
	}
	print(best);
}
`
	opt := core.DefaultOptions(core.LevelBest)
	opt.DisableSelection = true
	res, text := transformedMain(t, src, opt)
	if len(res.SPT) == 0 {
		t.Skipf("loop not transformed:\n%s", text)
	}
	// The conditional store's branch is replicated via a condition
	// temporary only when the partition moves it; check that IF the store
	// moved, a cond temp exists.
	movedStore := false
	for _, r := range res.Reports {
		if r.Partition == nil {
			continue
		}
		for s := range r.Partition.Move {
			if s.Kind == ir.StmtStoreG && s.G.Name == "best" {
				movedStore = true
			}
		}
	}
	if movedStore && !strings.Contains(text, "cond") {
		t.Errorf("moved conditional store without a replicated condition:\n%s", text)
	}
}

// TestGoldenKillOnEveryExit: every SPT loop exit edge carries a kill.
func TestGoldenKillOnEveryExit(t *testing.T) {
	src := `
var a int[128];
var found int;

func main() {
	var i int;
	for (i = 0; i < 128; i++) {
		a[i] = (i * 37) & 127;
	}
	for (i = 0; i < 128; i++) {
		var v int = a[i] * 5 + a[i] % 7 + (a[i] >> 2) % 11 + (i & 15);
		v = v + v % 13 + (v >> 1) % 17;
		if (v == 9999) {
			found = i;
			break;
		}
	}
	print(found);
}
`
	opt := core.DefaultOptions(core.LevelBest)
	opt.DisableSelection = true
	res, _ := transformedMain(t, src, opt)
	if len(res.SPT) == 0 {
		t.Skip("nothing transformed")
	}
	// For each SPT loop: every edge leaving the loop must pass a block
	// whose first statement is SPT_KILL with the right loop ID.
	for _, f := range res.Prog.Funcs {
		for _, b := range f.Blocks {
			for _, s := range b.Stmts {
				if s.Kind != ir.StmtFork {
					continue
				}
				// Find the loop blocks by walking from the fork target.
				// Simpler: check that at least one kill with the same
				// loop ID exists in the function.
				killSeen := false
				for _, b2 := range f.Blocks {
					for _, s2 := range b2.Stmts {
						if s2.Kind == ir.StmtKill && s2.LoopID == s.LoopID {
							killSeen = true
						}
					}
				}
				if !killSeen {
					t.Errorf("fork for loop %d has no matching kill", s.LoopID)
				}
			}
		}
	}
}

// TestGoldenSVPFigure13Shape: the SVP rewrite produces the prediction
// chain and the check-and-recovery block of Figure 13.
func TestGoldenSVPFigure13Shape(t *testing.T) {
	src := `
var sum int;
var steps int;

func bar(x int) int {
	var w int = x;
	w = w + w % 131 + (w >> 3) % 127 + (w & 255);
	w = w + w % 113 + (w >> 5) % 109 + (w & 127);
	steps = (steps + w) & 1048575;
	if (x % 509 == 0) {
		return x + 3;
	}
	return x + 2;
}

func main() {
	var x int = 1;
	while (x < 20000) {
		var s int = x % 13 + (x >> 3) % 5 + x % 7 + (x * 3) % 11;
		s = s + x % 17 + (x >> 1) % 19 + (x ^ (x >> 2)) % 23;
		sum = (sum + s) & 268435455;
		x = bar(x);
	}
	print(sum, x, steps);
}
`
	res, text := transformedMain(t, src, core.DefaultOptions(core.LevelBest))
	svpApplied := false
	for _, r := range res.Reports {
		if r.SVP {
			svpApplied = true
		}
	}
	if !svpApplied {
		t.Fatalf("SVP not applied:\n%s", text)
	}
	if !strings.Contains(text, "pred_x") {
		t.Errorf("no pred_x prediction chain:\n%s", text)
	}
	if len(res.SPT) == 0 {
		t.Errorf("SVP'd loop not selected")
	}
}
