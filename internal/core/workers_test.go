package core_test

// Worker-count invariance of the parallel pass 1: Compile with
// SearchWorkers ∈ {0, 1, 2, 8} must produce identical reports,
// decisions, degradation events, and transformed-program output. Run
// under -race in CI, the sweep also exercises the pass-1 job pool and
// the per-loop budget pre-split for data races.

import (
	"fmt"
	"strings"
	"testing"

	"sptc/internal/core"
	"sptc/internal/interp"
	"sptc/internal/resilience"
	"sptc/internal/splgen"
)

// searchWorkerSources is the compile corpus for the invariance sweeps:
// the fail-soft selection loop plus generated and adversarial programs.
func searchWorkerSources() map[string]string {
	srcs := map[string]string{"failsoft": failsoftSrc}
	for seed := int64(1); seed <= 4; seed++ {
		srcs[fmt.Sprintf("gen%d", seed)] = splgen.Generate(seed)
		srcs[fmt.Sprintf("adv%d", seed)] = splgen.Adversarial(seed)
	}
	return srcs
}

// sameCompile asserts two compiles of one source reached identical
// observable outcomes.
func sameCompile(t *testing.T, label string, want, got *core.Result) {
	t.Helper()
	if len(got.SPT) != len(want.SPT) {
		t.Errorf("%s: %d SPT loops, want %d", label, len(got.SPT), len(want.SPT))
	}
	if len(got.Degradations) != len(want.Degradations) {
		t.Errorf("%s: %d degradations, want %d", label, len(got.Degradations), len(want.Degradations))
	} else {
		for i, ev := range got.Degradations {
			w := want.Degradations[i]
			if ev.Phase != w.Phase || ev.Unit != w.Unit || ev.Reason != w.Reason {
				t.Errorf("%s: degradation %d = {%s %s %s}, want {%s %s %s}",
					label, i, ev.Phase, ev.Unit, ev.Reason, w.Phase, w.Unit, w.Reason)
			}
		}
	}
	if len(got.Reports) != len(want.Reports) {
		t.Fatalf("%s: %d reports, want %d", label, len(got.Reports), len(want.Reports))
	}
	for i, rep := range got.Reports {
		w := want.Reports[i]
		if rep.Decision != w.Decision {
			t.Errorf("%s report %d: decision %s, want %s", label, i, rep.Decision, w.Decision)
		}
		if rep.EstCost != w.EstCost || rep.PreForkSize != w.PreForkSize || rep.VCCount != w.VCCount {
			t.Errorf("%s report %d: (cost %v, prefork %d, vcs %d), want (%v, %d, %d)",
				label, i, rep.EstCost, rep.PreForkSize, rep.VCCount, w.EstCost, w.PreForkSize, w.VCCount)
		}
		if (rep.Partition == nil) != (w.Partition == nil) {
			t.Errorf("%s report %d: partition presence differs", label, i)
			continue
		}
		if rep.Partition != nil && rep.Partition.SearchNodes != w.Partition.SearchNodes {
			t.Errorf("%s report %d: %d search nodes, want %d",
				label, i, rep.Partition.SearchNodes, w.Partition.SearchNodes)
		}
	}
}

// runCompiled interprets the transformed program and returns its output.
func runCompiled(t *testing.T, res *core.Result) string {
	t.Helper()
	var out strings.Builder
	m := interp.New(res.Prog, &out)
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.String()
}

// TestSearchWorkersInvariance: the three-phase parallel pass 1 reaches
// the same compilation as the classic serial one at every worker count
// — same decisions, same partitions, same search-node counts (the
// partition search is worker-count-invariant under the default node
// budget), same transformed-program output.
func TestSearchWorkersInvariance(t *testing.T) {
	for name, src := range searchWorkerSources() {
		t.Run(name, func(t *testing.T) {
			serial, err := core.CompileSource(name+".spl", src, core.DefaultOptions(core.LevelBest))
			if err != nil {
				t.Fatalf("serial compile: %v", err)
			}
			baseOut := runCompiled(t, serial)
			for _, workers := range []int{1, 2, 8} {
				opt := core.DefaultOptions(core.LevelBest)
				opt.SearchWorkers = workers
				res, err := core.CompileSource(name+".spl", src, opt)
				if err != nil {
					t.Fatalf("workers=%d: compile: %v", workers, err)
				}
				label := fmt.Sprintf("workers=%d", workers)
				sameCompile(t, label, serial, res)
				if out := runCompiled(t, res); out != baseOut {
					t.Errorf("%s: transformed output %q, serial %q", label, out, baseOut)
				}
			}
		})
	}
}

// TestSearchWorkersBudgetSplit: a shared search budget is pre-split
// deterministically across candidate loops, so which loops degrade —
// and the resulting compile — is identical at every parallel worker
// count and across repeated runs.
func TestSearchWorkersBudgetSplit(t *testing.T) {
	compile := func(workers int) *core.Result {
		t.Helper()
		opt := core.DefaultOptions(core.LevelBest)
		opt.SearchWorkers = workers
		opt.Partition.Budget = resilience.NewBudget(nil, 2)
		res, err := core.CompileSource("budget.spl", failsoftSrc, opt)
		if err != nil {
			t.Fatalf("workers=%d: compile: %v", workers, err)
		}
		return res
	}
	want := compile(2)
	sawBudget := false
	for _, ev := range want.Degradations {
		if ev.Reason == resilience.ReasonBudget {
			sawBudget = true
		}
	}
	if !sawBudget {
		t.Fatal("budget of 2 nodes exhausted nothing; test is vacuous")
	}
	sameCompile(t, "workers=8", want, compile(8))
	for run := 0; run < 3; run++ {
		sameCompile(t, fmt.Sprintf("workers=2 run %d", run), want, compile(2))
	}
}

// TestSearchWorkersFailSoft: a panic inside a pass-1 worker goroutine is
// contained by the per-loop guard exactly like in the serial pass — the
// loop is demoted to serial, the pool survives, the compile completes.
func TestSearchWorkersFailSoft(t *testing.T) {
	defer resilience.DisarmAll()
	base, clean := compileFailsoft(t, nil)
	if len(clean.SPT) == 0 {
		t.Fatal("clean compile selected no SPT loops; test is vacuous")
	}
	resilience.Arm("core.pass1.loop", resilience.Fault{Kind: resilience.FaultPanic})
	got, res := compileFailsoft(t, func(o *core.Options) { o.SearchWorkers = 4 })
	if got != base {
		t.Fatalf("degraded compile changed program output: %q vs %q", got, base)
	}
	if len(res.SPT) != 0 {
		t.Fatalf("panicking pass 1 still produced %d SPT loops", len(res.SPT))
	}
	for _, ev := range res.Degradations {
		if ev.Phase != "pass1.loop" || ev.Reason != resilience.ReasonPanic {
			t.Fatalf("unexpected event %+v", ev)
		}
	}
}
