package core

import (
	"sptc/internal/ir"
	"sptc/internal/machine"
	"sptc/internal/ssa"
)

// SimulationOptions assembles machine.RunOptions for a compiled program:
// SPT headers with their loop IDs and the block membership of every SPT
// loop (recomputed on the final IR). Shared by the root package, the
// evaluation harness, and the compilation service.
func SimulationOptions(res *Result) machine.RunOptions {
	opt := machine.RunOptions{
		SPTHeaders: make(map[*ir.Block]int),
		LoopBlocks: make(map[*ir.Block]map[*ir.Block]bool),
	}
	byFunc := make(map[*ir.Func][]*SPTLoop)
	for _, l := range res.SPT {
		byFunc[l.Func] = append(byFunc[l.Func], l)
	}
	for f, loops := range byFunc {
		dom := ssa.BuildDomTree(f)
		nest := ssa.FindLoops(f, dom)
		for _, sl := range loops {
			nl := nest.ByHeader[sl.Header]
			if nl == nil {
				continue // transformed away (e.g. fully dead)
			}
			opt.SPTHeaders[sl.Header] = sl.ID
			set := make(map[*ir.Block]bool, len(nl.Blocks))
			for _, b := range nl.Blocks {
				set[b] = true
			}
			opt.LoopBlocks[sl.Header] = set
		}
	}
	return opt
}

// CoverageOptions returns RunOptions that attribute cycles to every
// natural loop of the program whose body size is at most maxBody ops
// (used to measure the paper's Figure 16 "maximum coverage"). Keys are
// sequential loop indexes; the returned slice maps key -> body size.
func CoverageOptions(prog *ir.Program, maxBody int) (machine.RunOptions, []int) {
	opt := machine.RunOptions{
		AttributeLoops: make(map[*ir.Block]int),
		LoopBlocks:     make(map[*ir.Block]map[*ir.Block]bool),
	}
	var sizes []int
	for _, f := range prog.Funcs {
		dom := ssa.BuildDomTree(f)
		nest := ssa.FindLoops(f, dom)
		for _, l := range nest.Loops {
			size := l.BodySize()
			if maxBody > 0 && size > maxBody {
				continue
			}
			key := len(sizes)
			sizes = append(sizes, size)
			opt.AttributeLoops[l.Header] = key
			set := make(map[*ir.Block]bool, len(l.Blocks))
			for _, b := range l.Blocks {
				set[b] = true
			}
			opt.LoopBlocks[l.Header] = set
		}
	}
	return opt, sizes
}

// ParseDecision maps a Decision.String() name back to the Decision; ok
// is false for an unknown name. The compilation service uses it to
// reconstruct loop reports from wire responses.
func ParseDecision(name string) (Decision, bool) {
	for d := DecisionSelected; d <= DecisionDegraded; d++ {
		if d.String() == name {
			return d, true
		}
	}
	return 0, false
}

// ParseLevel maps the external level names (CLI flags, service requests)
// to core levels; ok is false for an unknown name. allowBase admits the
// non-SPT reference level.
func ParseLevel(name string, allowBase bool) (Level, bool) {
	switch name {
	case "base":
		if allowBase {
			return LevelBase, true
		}
	case "basic":
		return LevelBasic, true
	case "best":
		return LevelBest, true
	case "anticipated":
		return LevelAnticipated, true
	}
	return 0, false
}
