package core_test

import (
	"fmt"
	"strings"
	"testing"

	"sptc/internal/interp"
	"sptc/internal/ir"
	"sptc/internal/parser"
	"sptc/internal/sem"
	"sptc/internal/splgen"
	"sptc/internal/ssa"
	"sptc/internal/transform"
)

// The metamorphic suite checks semantic-preservation relations over the
// splgen corpus: applying a transformation the pipeline relies on — the
// §6 cleanup passes (copy propagation, constant folding, dead-code
// elimination) or loop unrolling by a fixed factor — must not change the
// program's interpreted output. Unlike the differential fuzz oracle,
// which runs the whole pipeline, each relation here isolates one
// transformation, so a violation points directly at the guilty pass.

// metamorphicTransform is one output-preserving program transformation.
type metamorphicTransform struct {
	name  string
	apply func(p *ir.Program)
}

func metamorphicTransforms() []metamorphicTransform {
	return []metamorphicTransform{
		{"cleanup", func(p *ir.Program) {
			for _, f := range p.Funcs {
				dom := ssa.BuildDomTree(f)
				ssa.Build(f, dom)
				ssa.CopyProp(f)
				ssa.ConstFold(f)
				ssa.DeadCode(f)
			}
		}},
		{"unroll2", func(p *ir.Program) { unrollEveryLoop(p, 2) }},
		{"unroll4", func(p *ir.Program) { unrollEveryLoop(p, 4) }},
	}
}

// unrollEveryLoop unrolls every innermost loop by the given factor,
// mirroring UnrollAll's one-loop-per-round discipline (unrolling
// invalidates the loop nest; remainder loops keep the original header
// and must not be unrolled again). The program must be in base-variable
// form.
func unrollEveryLoop(p *ir.Program, factor int) {
	for _, f := range p.Funcs {
		done := make(map[*ir.Block]bool)
		for rounds := 0; rounds < 64; rounds++ {
			dom := ssa.BuildDomTree(f)
			nest := ssa.FindLoops(f, dom)
			var todo *ssa.Loop
			for _, l := range nest.Loops {
				if len(l.Children) == 0 && !done[l.Header] {
					todo = l
					break
				}
			}
			if todo == nil {
				break
			}
			done[todo.Header] = true
			transform.Unroll(f, todo, factor)
		}
		ir.PruneUnreachable(f)
		ir.ReorderRPO(f)
	}
}

// buildIR runs the front end (parse, typecheck, IR construction) and
// returns the program in base-variable form.
func buildIR(tb testing.TB, src string) *ir.Program {
	tb.Helper()
	prog, err := parser.Parse("meta.spl", src)
	if err != nil {
		tb.Fatalf("parse: %v\n%s", err, src)
	}
	info, err := sem.Check(prog)
	if err != nil {
		tb.Fatalf("sem: %v\n%s", err, src)
	}
	p, err := ir.Build(info)
	if err != nil {
		tb.Fatalf("build: %v\n%s", err, src)
	}
	return p
}

func interpret(tb testing.TB, p *ir.Program, src string) string {
	tb.Helper()
	var out strings.Builder
	if _, err := interp.New(p, &out).Run(); err != nil {
		tb.Fatalf("interpret: %v\n%s", err, src)
	}
	return out.String()
}

// TestMetamorphicTransforms runs every relation over the splgen corpus:
// for each generated program, the transformed program must verify and
// print exactly the untransformed program's output.
func TestMetamorphicTransforms(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 6
	}
	transforms := metamorphicTransforms()
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			src := splgen.Generate(seed)
			want := interpret(t, buildIR(t, src), src)
			for _, tr := range transforms {
				tr := tr
				t.Run(tr.name, func(t *testing.T) {
					p := buildIR(t, src)
					tr.apply(p)
					if err := ir.VerifyProgram(p); err != nil {
						t.Fatalf("%s broke IR invariants: %v\n%s", tr.name, err, src)
					}
					got := interpret(t, p, src)
					if got != want {
						t.Fatalf("%s changed program output:\nwant %q\ngot  %q\n%s", tr.name, want, got, src)
					}
				})
			}
		})
	}
}
