package core_test

import (
	"strings"
	"testing"

	"sptc/internal/core"
	"sptc/internal/interp"
	"sptc/internal/ir"
	"sptc/internal/ssa"
)

// runProgram compiles src at the given level and returns the program's
// printed output, plus the compilation result.
func runLevel(t *testing.T, src string, opt core.Options) (string, *core.Result) {
	t.Helper()
	res, err := core.CompileSource("test.spl", src, opt)
	if err != nil {
		t.Fatalf("compile(%s): %v", opt.Level, err)
	}
	for _, f := range res.Prog.Funcs {
		if err := ssa.VerifySSA(f, ssa.BuildDomTree(f)); err != nil {
			t.Fatalf("SSA invariants after %s compile: %v", opt.Level, err)
		}
	}
	var out strings.Builder
	m := interp.New(res.Prog, &out)
	if _, err := m.Run(); err != nil {
		t.Fatalf("run(%s): %v\n%s", opt.Level, err, ir.FormatProgram(res.Prog))
	}
	return out.String(), res
}

// checkAllLevels compiles src at every level (with selection disabled so
// every legal loop is transformed) and requires identical output.
func checkAllLevels(t *testing.T, name, src string) {
	t.Helper()
	base, _ := runLevel(t, src, core.DefaultOptions(core.LevelBase))
	for _, level := range []core.Level{core.LevelBasic, core.LevelBest, core.LevelAnticipated} {
		opt := core.DefaultOptions(level)
		opt.DisableSelection = true
		got, res := runLevel(t, src, opt)
		if got != base {
			t.Errorf("%s at %s: output diverged\nbase: %q\n got: %q", name, level, base, got)
		}
		_ = res
	}
}

func TestSemanticsFig2Loop(t *testing.T) {
	// The motivating example of Figure 2: induction update moved to the
	// pre-fork region, body reads the old value via a temporary.
	checkAllLevels(t, "fig2", `
var error_m float[40][40];
var p float[40];
var cost float;

func main() {
	var i int = 0;
	var n int = 40;
	var k int;
	for (k = 0; k < 40; k++) {
		p[k] = float(k) * 0.25;
		var j int;
		for (j = 0; j < 40; j++) {
			error_m[k][j] = float(k - j) * 0.5;
		}
	}
	while (i < n) {
		var cost0 float = 0.0;
		var j int;
		for (j = 0; j < i; j++) {
			cost0 = cost0 + fabs(error_m[i][j] - p[j]);
		}
		cost = cost + cost0;
		i = i + 1;
	}
	print(cost);
}
`)
}

func TestSemanticsConditionalUpdate(t *testing.T) {
	// Rarely-taken cross-iteration dependence under a branch: exercises
	// partial conditional statement motion (Figure 12).
	checkAllLevels(t, "conditional", `
var data int[512];
var best int;

func main() {
	var i int;
	for (i = 0; i < 512; i++) {
		data[i] = (i * 2654435761) % 1000;
	}
	best = -1;
	var bi int = 0;
	for (i = 0; i < 512; i++) {
		var v int = data[i] * 3 - (data[i] >> 2) + (data[i] & 15);
		v = v + data[i] % 7;
		if (v > best) {
			best = v;
			bi = i;
		}
	}
	print(best, bi);
}
`)
}

func TestSemanticsRecurrenceSVP(t *testing.T) {
	// A stride recurrence through a function call (Figure 13's shape):
	// only SVP can make this loop speculative.
	checkAllLevels(t, "svp", `
var sum int;

func bar(x int) int {
	if (x % 97 == 0) {
		return x + 3;
	}
	return x + 2;
}

func foo(x int) {
	sum = sum + x % 13 + (x >> 3) % 5 + x % 7 + (x * 3) % 11 + x % 17 + (x >> 1) % 19;
}

func main() {
	var x int = 1;
	while (x < 4000) {
		foo(x);
		x = bar(x);
	}
	print(sum, x);
}
`)
}

func TestSemanticsArrayPipeline(t *testing.T) {
	// Cross-iteration array dependence with distance 1: a[i] depends on
	// a[i-1]; static analysis sees it, the loop has real serialization.
	checkAllLevels(t, "pipeline", `
var a int[300];
var out int[300];

func main() {
	var i int;
	a[0] = 7;
	for (i = 1; i < 300; i++) {
		a[i] = (a[i-1] * 1103515245 + 12345) % 2147483647;
		out[i] = a[i] % 100 + (a[i] >> 5) % 50 + a[i] % 31;
	}
	var s int = 0;
	for (i = 0; i < 300; i++) {
		s += out[i];
	}
	print(s);
}
`)
}

func TestSemanticsNestedLoops(t *testing.T) {
	checkAllLevels(t, "nested", `
var m int[60][60];
var rowsum int[60];

func main() {
	var r int;
	var c int;
	for (r = 0; r < 60; r++) {
		for (c = 0; c < 60; c++) {
			m[r][c] = (r * 31 + c * 17) % 101;
		}
	}
	var total int = 0;
	for (r = 0; r < 60; r++) {
		var s int = 0;
		for (c = 0; c < 60; c++) {
			s += m[r][c] * m[r][(c + 1) % 60] % 13;
		}
		rowsum[r] = s;
		total += s;
	}
	print(total, rowsum[0], rowsum[59]);
}
`)
}

func TestSemanticsBreakAndEarlyExit(t *testing.T) {
	checkAllLevels(t, "break", `
var v int[256];

func main() {
	var i int;
	for (i = 0; i < 256; i++) {
		v[i] = (i * 37) % 211;
	}
	var found int = -1;
	var probes int = 0;
	for (i = 0; i < 256; i++) {
		probes++;
		var h int = v[i] * 3 % 97 + v[i] % 11 + (v[i] >> 2) % 7;
		if (h == 13) {
			found = i;
			break;
		}
	}
	print(found, probes);
}
`)
}

func TestSemanticsGlobalScratch(t *testing.T) {
	// A per-iteration scratch global: static analysis sees a carried
	// dependence, profiling (and privatization) do not.
	checkAllLevels(t, "scratch", `
var tmp int;
var acc int;
var src int[400];

func main() {
	var i int;
	for (i = 0; i < 400; i++) {
		src[i] = (i * 73) % 509;
	}
	for (i = 0; i < 400; i++) {
		tmp = src[i] * 5 + (src[i] >> 1) % 23;
		tmp = tmp + tmp % 19 + (tmp >> 3) % 29;
		acc += tmp % 41;
	}
	print(acc, tmp);
}
`)
}

func TestSemanticsWhileLoopSmallBody(t *testing.T) {
	// Small-bodied while loop: basic/best cannot unroll it (ORC unrolled
	// only DO loops); anticipated unrolls while loops too.
	checkAllLevels(t, "while", `
var bits int;

func main() {
	var x int = 123456789;
	while (x != 0) {
		bits += x & 1;
		x = x >> 1;
	}
	print(bits);
}
`)
}

func TestSemanticsCallsWithSideEffects(t *testing.T) {
	checkAllLevels(t, "calls", `
var log_total int;
var table int[128];

func update(k int) {
	table[k % 128] = table[k % 128] + 1;
	log_total = log_total + 1;
}

func main() {
	var i int;
	for (i = 0; i < 500; i++) {
		var k int = (i * 2654435761) % 1024;
		update(k);
		if (i % 2 == 0) {
			update(k + 1);
		}
	}
	var s int = 0;
	for (i = 0; i < 128; i++) {
		s += table[i] * (i + 1);
	}
	print(s, log_total);
}
`)
}

func TestSemanticsDoWhile(t *testing.T) {
	checkAllLevels(t, "dowhile", `
func main() {
	var n int = 0;
	var x int = 1000;
	do {
		x = x - 7;
		n++;
	} while (x > 3);
	print(n, x);
}
`)
}

func TestSelectionProducesSPTLoops(t *testing.T) {
	// With real selection (not disabled), the speculation-friendly loop
	// should be selected and transformed at the best level.
	src := `
var data float[600];
var total float;

func main() {
	var i int;
	for (i = 0; i < 600; i++) {
		data[i] = float(i % 83) * 0.5 + 1.0;
	}
	for (i = 0; i < 600; i++) {
		var x float = data[i];
		var acc float = 0.0;
		acc = acc + x * 1.5 + x * x * 0.25;
		acc = acc + fabs(x - 20.0) * 0.125 + fsqrt(x) * 0.5;
		acc = acc + x * 0.0625 + (x + 1.0) * 0.03125;
		acc = acc + fabs(acc - x) + fsqrt(acc + 1.0);
		total = total + acc;
	}
	print(total);
}
`
	base, _ := runLevel(t, src, core.DefaultOptions(core.LevelBase))
	opt := core.DefaultOptions(core.LevelBest)
	got, res := runLevel(t, src, opt)
	if got != base {
		t.Fatalf("output diverged: %q vs %q", base, got)
	}
	if len(res.SPT) == 0 {
		for _, r := range res.Reports {
			t.Logf("loop %s/%d: %s body=%d trips=%.1f cost=%.2f vcs=%d",
				r.Func, r.LoopID, r.Decision, r.BodySize, r.AvgTrip, r.EstCost, r.VCCount)
		}
		t.Fatal("expected at least one SPT loop to be selected")
	}
}
