package core_test

import (
	"strings"
	"testing"

	"sptc/internal/core"
	"sptc/internal/interp"
	"sptc/internal/ir"
)

// TestNestedStoreMotionOrder is a regression test for the iteration-order
// bug found via the vpr benchmark: after inner-loop unrolling, reverse
// postorder placed unrolled inner-loop blocks after the outer induction
// update, so the old-value snapshot rewrite missed readers that actually
// execute before the moved definition. The dependence graph now orders
// blocks with inner loops contracted (depgraph.bodyOrder).
func TestNestedStoreMotionOrder(t *testing.T) {
	src := `
var error_m float[128][128];
var pbase float[128];

func main() {
	var i int;
	var j int;
	for (i = 0; i < 128; i++) {
		pbase[i] = float((i * 29) & 63) * 0.25;
		for (j = 0; j < 128; j++) {
			error_m[i][j] = float(((i * 13 + j * 7) & 127)) * 0.0625;
		}
	}
	print(pbase[3], error_m[5][6]);
}
`
	base, _ := runLevel(t, src, core.DefaultOptions(core.LevelBase))
	opt := core.DefaultOptions(core.LevelBasic)
	opt.DisableSelection = true
	res, err := core.CompileSource("dbg.spl", src, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var out strings.Builder
	m := interp.New(res.Prog, &out)
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v\n%s", err, ir.FormatProgram(res.Prog))
	}
	if out.String() != base {
		t.Fatalf("diverged: %q vs %q", out.String(), base)
	}
}
