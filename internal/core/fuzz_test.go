package core_test

import (
	"fmt"
	"strings"
	"testing"

	"sptc/internal/core"
	"sptc/internal/interp"
	"sptc/internal/ir"
	"sptc/internal/machine"
	"sptc/internal/splgen"
	"sptc/internal/ssa"
)

// simRunOptions builds RunOptions activating speculation for every loop
// the compiler transformed.
func simRunOptions(res *core.Result, engine machine.EngineKind) machine.RunOptions {
	ro := machine.RunOptions{
		SPTHeaders: map[*ir.Block]int{},
		LoopBlocks: map[*ir.Block]map[*ir.Block]bool{},
		Engine:     engine,
	}
	for _, sl := range res.SPT {
		dom := ssa.BuildDomTree(sl.Func)
		nest := ssa.FindLoops(sl.Func, dom)
		nl := nest.ByHeader[sl.Header]
		if nl == nil {
			continue
		}
		ro.SPTHeaders[sl.Header] = sl.ID
		set := map[*ir.Block]bool{}
		for _, blk := range nl.Blocks {
			set[blk] = true
		}
		ro.LoopBlocks[sl.Header] = set
	}
	return ro
}

// runSimulator compiles nothing; it executes an already-compiled program
// on the machine simulator with speculation enabled for every loop the
// compiler transformed, and returns the printed output plus stats.
func runSimulator(tb testing.TB, res *core.Result, src string, level core.Level, engine machine.EngineKind) (string, *machine.Result) {
	tb.Helper()
	ro := simRunOptions(res, engine)
	var simOut strings.Builder
	ro.Out = &simOut
	stats, err := machine.Run(res.Prog, machine.DefaultConfig(), ro)
	if err != nil {
		tb.Fatalf("%s simulate: %v\n%s", level, err, src)
	}
	return simOut.String(), stats
}

// checkDifferential is the shared differential oracle: the program must
// print identical output under (a) the base interpreter, (b) every
// compilation level with selection forced on, interpreted, and (c) the
// SPT machine simulator with speculation active. Callable from both the
// fixed-seed test and the native fuzz target.
func checkDifferential(tb testing.TB, src string) {
	tb.Helper()

	baseRes, err := core.CompileSource("fuzz.spl", src, core.DefaultOptions(core.LevelBase))
	if err != nil {
		tb.Fatalf("base compile: %v\n%s", err, src)
	}
	var want strings.Builder
	if _, err := interp.New(baseRes.Prog, &want).Run(); err != nil {
		tb.Fatalf("base run: %v\n%s", err, src)
	}

	for _, level := range []core.Level{core.LevelBasic, core.LevelBest, core.LevelAnticipated} {
		opt := core.DefaultOptions(level)
		opt.DisableSelection = true
		res, err := core.CompileSource("fuzz.spl", src, opt)
		if err != nil {
			tb.Fatalf("%s compile: %v\n%s", level, err, src)
		}
		for _, fn := range res.Prog.Funcs {
			if err := ssa.VerifySSA(fn, ssa.BuildDomTree(fn)); err != nil {
				tb.Fatalf("%s SSA invariants: %v\n%s", level, err, src)
			}
		}
		var got strings.Builder
		if _, err := interp.New(res.Prog, &got).Run(); err != nil {
			tb.Fatalf("%s interp: %v\n%s", level, err, src)
		}
		if got.String() != want.String() {
			tb.Fatalf("%s interp diverged:\nwant %q\ngot  %q\n%s", level, want.String(), got.String(), src)
		}

		simOut, bcStats := runSimulator(tb, res, src, level, machine.EngineBytecode)
		if simOut != want.String() {
			tb.Fatalf("%s simulator diverged:\nwant %q\ngot  %q\n%s", level, want.String(), simOut, src)
		}

		// The reference tree-walker must agree with the bytecode engine
		// bit for bit: same bytes printed, same cycle count (exact float
		// equality), same dynamic instruction, branch, and memory
		// counters. This is the fuzzed arm of the engine-fidelity oracle
		// (TestEngineFidelity covers the benchmark suite).
		treeOut, treeStats := runSimulator(tb, res, src, level, machine.EngineTree)
		if treeOut != simOut {
			tb.Fatalf("%s engines printed different output:\nbytecode %q\ntree     %q\n%s", level, simOut, treeOut, src)
		}
		if bcStats.Cycles != treeStats.Cycles || bcStats.Ops != treeStats.Ops ||
			bcStats.BranchLookups != treeStats.BranchLookups || bcStats.BranchMisses != treeStats.BranchMisses ||
			bcStats.MemAccesses != treeStats.MemAccesses {
			tb.Fatalf("%s engine counters diverged:\nbytecode cycles=%v ops=%d branches=%d/%d mem=%d\ntree     cycles=%v ops=%d branches=%d/%d mem=%d\n%s",
				level,
				bcStats.Cycles, bcStats.Ops, bcStats.BranchLookups, bcStats.BranchMisses, bcStats.MemAccesses,
				treeStats.Cycles, treeStats.Ops, treeStats.BranchLookups, treeStats.BranchMisses, treeStats.MemAccesses,
				src)
		}
		for id, bls := range bcStats.Loops {
			tls := treeStats.Loops[id]
			if tls == nil || *bls != *tls {
				tb.Fatalf("%s loop %d stats diverged:\nbytecode %+v\ntree     %+v\n%s", level, id, bls, tls, src)
			}
		}
	}
}

// TestFuzzPipelineSemantics runs the differential oracle over a fixed
// block of generator seeds, so a plain `go test` still gets meaningful
// randomized coverage without the fuzz engine.
func TestFuzzPipelineSemantics(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 6
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			checkDifferential(t, splgen.Generate(seed))
		})
	}
}

// TestDifferentialEdgeCases routes hand-written programs through the
// same oracle, targeting corners the random generator rarely reaches:
// the integer/float builtins, int<->float casts, shift counts at and
// past the 63-bit mask (both simulators compute x << uint(y&63), so a
// count of 64 must behave as 0 and -1 as 63 everywhere), truncating
// division and remainder with negative operands and constant divisors
// (the bytecode engine fuses those), and returns executed from inside
// an SPT loop body, which exit through the misspeculation-safe
// return-through-loop path on both legs.
func TestDifferentialEdgeCases(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"builtins", `
func main() {
	var i int = 0;
	var acc int = 0;
	var f float = 0.0;
	while (i < 200) {
		acc = acc + imin(i, 100 - i) + imax(0 - i, i % 17) + iabs(50 - i);
		f = f + fmin(float(i), 31.5) + fmax(f * 0.001, fabs(float(10 - i))) + fsqrt(float(i) + 0.25);
		i = i + 1;
	}
	print(acc);
	print(int(f));
}
`},
		{"casts", `
func main() {
	var i int = 0;
	var s int = 0;
	var g float = 1.0;
	while (i < 300) {
		var x float = float(i * 7 - 1000);
		s = s + int(x / 3.0) + int(g);
		g = g + x * 0.125 - float(int(g) % 13);
		i = i + 1;
	}
	print(s);
	print(int(g * 0.001));
}
`},
		{"shift-masking", `
func main() {
	var i int = 0;
	var h int = 1;
	var neg int = 0 - 1;
	while (i < 256) {
		h = h + (1 << (i & 63)) % 1000003;
		h = h + ((h >> (i % 70)) & 255);
		h = h + (i << 62) % 997;
		h = h + ((h ^ i) >> neg);
		i = i + 1;
	}
	print(h);
}
`},
		{"div-rem", `
func main() {
	var i int = 1;
	var s int = 0;
	while (i < 400) {
		var x int = i * 37 - 3000;
		s = s + x / 7 + x % 7 + x / (0 - 5) + x % (0 - 5);
		s = s + (x * x) / (i + 1);
		i = i + 1;
	}
	print(s);
}
`},
		{"return-through-loop", `
func scan(limit int) int {
	var i int = 0;
	var acc int = 0;
	while (i < 100000) {
		acc = acc + (i * i) % 101;
		if (acc > limit) {
			return acc * 2 + i;
		}
		i = i + 1;
	}
	return 0 - acc;
}

func main() {
	var k int = 0;
	var total int = 0;
	while (k < 50) {
		total = (total + scan(k * 37 + 10)) % 1000003;
		k = k + 1;
	}
	print(total);
}
`},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			checkDifferential(t, tc.src)
		})
	}
}

// TestFsqrtNegativeErrorParity pins runtime-error behavior: when the
// program eventually takes fsqrt of a negative value, the interpreter
// and both simulator engines must all fail (no engine may silently keep
// running), and the two simulator engines must report the identical
// error. The SPT levels cannot compile an erroring program at all —
// the profiling interpretation runs it to completion and surfaces the
// same failure at compile time — so the simulators execute the base
// compilation here; the builtin error path is level-independent.
func TestFsqrtNegativeErrorParity(t *testing.T) {
	src := `
func main() {
	var i int = 0;
	var f float = 100.0;
	while (i < 500) {
		f = f - float(i);
		f = f + fsqrt(f) * 0.25;
		i = i + 1;
	}
	print(f);
}
`
	baseRes, err := core.CompileSource("edge.spl", src, core.DefaultOptions(core.LevelBase))
	if err != nil {
		t.Fatalf("base compile: %v", err)
	}
	var sink strings.Builder
	if _, err := interp.New(baseRes.Prog, &sink).Run(); err == nil || !strings.Contains(err.Error(), "fsqrt of negative value") {
		t.Fatalf("interp error = %v, want fsqrt-of-negative failure", err)
	}

	errText := map[machine.EngineKind]string{}
	for _, engine := range []machine.EngineKind{machine.EngineBytecode, machine.EngineTree} {
		ro := simRunOptions(baseRes, engine)
		ro.Out = &sink
		_, err := machine.Run(baseRes.Prog, machine.DefaultConfig(), ro)
		if err == nil || !strings.Contains(err.Error(), "fsqrt of negative value") {
			t.Fatalf("%v simulate error = %v, want fsqrt-of-negative failure", engine, err)
		}
		errText[engine] = err.Error()
	}
	if errText[machine.EngineBytecode] != errText[machine.EngineTree] {
		t.Fatalf("engines report different errors:\nbytecode %q\ntree     %q",
			errText[machine.EngineBytecode], errText[machine.EngineTree])
	}
}

// FuzzDifferentialLevels is the native fuzz entry point: the engine
// mutates the generator seed, splgen expands it into a well-formed SPL
// program, and the differential oracle cross-checks every compilation
// level against the base interpreter.
func FuzzDifferentialLevels(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkDifferential(t, splgen.Generate(seed))
	})
}
