package core_test

import (
	"fmt"
	"strings"
	"testing"

	"sptc/internal/core"
	"sptc/internal/interp"
	"sptc/internal/ir"
	"sptc/internal/machine"
	"sptc/internal/splgen"
	"sptc/internal/ssa"
)

// runSimulator compiles nothing; it executes an already-compiled program
// on the machine simulator with speculation enabled for every loop the
// compiler transformed, and returns the printed output plus stats.
func runSimulator(tb testing.TB, res *core.Result, src string, level core.Level) (string, *machine.Result) {
	tb.Helper()
	ro := machine.RunOptions{
		SPTHeaders: map[*ir.Block]int{},
		LoopBlocks: map[*ir.Block]map[*ir.Block]bool{},
	}
	for _, sl := range res.SPT {
		dom := ssa.BuildDomTree(sl.Func)
		nest := ssa.FindLoops(sl.Func, dom)
		nl := nest.ByHeader[sl.Header]
		if nl == nil {
			continue
		}
		ro.SPTHeaders[sl.Header] = sl.ID
		set := map[*ir.Block]bool{}
		for _, blk := range nl.Blocks {
			set[blk] = true
		}
		ro.LoopBlocks[sl.Header] = set
	}
	var simOut strings.Builder
	ro.Out = &simOut
	stats, err := machine.Run(res.Prog, machine.DefaultConfig(), ro)
	if err != nil {
		tb.Fatalf("%s simulate: %v\n%s", level, err, src)
	}
	return simOut.String(), stats
}

// checkDifferential is the shared differential oracle: the program must
// print identical output under (a) the base interpreter, (b) every
// compilation level with selection forced on, interpreted, and (c) the
// SPT machine simulator with speculation active. Callable from both the
// fixed-seed test and the native fuzz target.
func checkDifferential(tb testing.TB, src string) {
	tb.Helper()

	baseRes, err := core.CompileSource("fuzz.spl", src, core.DefaultOptions(core.LevelBase))
	if err != nil {
		tb.Fatalf("base compile: %v\n%s", err, src)
	}
	var want strings.Builder
	if _, err := interp.New(baseRes.Prog, &want).Run(); err != nil {
		tb.Fatalf("base run: %v\n%s", err, src)
	}

	for _, level := range []core.Level{core.LevelBasic, core.LevelBest, core.LevelAnticipated} {
		opt := core.DefaultOptions(level)
		opt.DisableSelection = true
		res, err := core.CompileSource("fuzz.spl", src, opt)
		if err != nil {
			tb.Fatalf("%s compile: %v\n%s", level, err, src)
		}
		for _, fn := range res.Prog.Funcs {
			if err := ssa.VerifySSA(fn, ssa.BuildDomTree(fn)); err != nil {
				tb.Fatalf("%s SSA invariants: %v\n%s", level, err, src)
			}
		}
		var got strings.Builder
		if _, err := interp.New(res.Prog, &got).Run(); err != nil {
			tb.Fatalf("%s interp: %v\n%s", level, err, src)
		}
		if got.String() != want.String() {
			tb.Fatalf("%s interp diverged:\nwant %q\ngot  %q\n%s", level, want.String(), got.String(), src)
		}

		simOut, _ := runSimulator(tb, res, src, level)
		if simOut != want.String() {
			tb.Fatalf("%s simulator diverged:\nwant %q\ngot  %q\n%s", level, want.String(), simOut, src)
		}
	}
}

// TestFuzzPipelineSemantics runs the differential oracle over a fixed
// block of generator seeds, so a plain `go test` still gets meaningful
// randomized coverage without the fuzz engine.
func TestFuzzPipelineSemantics(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 6
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			checkDifferential(t, splgen.Generate(seed))
		})
	}
}

// FuzzDifferentialLevels is the native fuzz entry point: the engine
// mutates the generator seed, splgen expands it into a well-formed SPL
// program, and the differential oracle cross-checks every compilation
// level against the base interpreter.
func FuzzDifferentialLevels(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkDifferential(t, splgen.Generate(seed))
	})
}
