package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sptc/internal/core"
	"sptc/internal/interp"
	"sptc/internal/ir"
	"sptc/internal/machine"
	"sptc/internal/ssa"
)

// progGen generates random but well-formed SPL programs whose loops
// exercise the transformation space: affine and indirect array accesses,
// scalar accumulators, conditional updates, nested and while loops. All
// indices are masked, all divisors are nonzero constants, so generated
// programs never trap.
type progGen struct {
	r   *rand.Rand
	buf strings.Builder
	// loop variables currently in scope, innermost last
	ivs []string
	tmp int
}

func (g *progGen) pick(xs []string) string { return xs[g.r.Intn(len(xs))] }

func (g *progGen) expr(depth int) string {
	atoms := []string{"7", "13", "g1", "g2"}
	for _, iv := range g.ivs {
		atoms = append(atoms, iv, iv)
	}
	if depth > 0 {
		atoms = append(atoms,
			"a["+g.index()+"]",
			"b["+g.index()+"]",
		)
	}
	if depth <= 0 {
		return g.pick(atoms)
	}
	switch g.r.Intn(7) {
	case 0:
		return "(" + g.expr(depth-1) + " + " + g.expr(depth-1) + ")"
	case 1:
		return "(" + g.expr(depth-1) + " - " + g.expr(depth-1) + ")"
	case 2:
		return "(" + g.expr(depth-1) + " * " + fmt.Sprint(g.r.Intn(5)+1) + ")"
	case 3:
		return "(" + g.expr(depth-1) + " % " + fmt.Sprint(g.r.Intn(29)+2) + ")"
	case 4:
		return "(" + g.expr(depth-1) + " & " + fmt.Sprint(g.r.Intn(63)+1) + ")"
	case 5:
		return "(" + g.expr(depth-1) + " >> " + fmt.Sprint(g.r.Intn(4)+1) + ")"
	default:
		return g.pick(atoms)
	}
}

// index produces a masked, always-in-bounds array index built only from
// scalars and constants (never array loads, to bound expression depth).
func (g *progGen) index() string {
	return "(" + g.expr(0) + " + " + fmt.Sprint(g.r.Intn(64)) + ") & 63"
}

func (g *progGen) stmt(depth, indent int) {
	pad := strings.Repeat("\t", indent)
	switch g.r.Intn(8) {
	case 0:
		fmt.Fprintf(&g.buf, "%sa[%s] = %s;\n", pad, g.index(), g.expr(2))
	case 1:
		fmt.Fprintf(&g.buf, "%sb[%s] = b[%s] + %s;\n", pad, g.index(), g.index(), g.expr(1))
	case 2:
		fmt.Fprintf(&g.buf, "%sg1 = (g1 + %s) & 1048575;\n", pad, g.expr(2))
	case 3:
		fmt.Fprintf(&g.buf, "%sg2 = (g2 ^ %s) & 1048575;\n", pad, g.expr(1))
	case 4:
		g.tmp++
		name := fmt.Sprintf("t%d", g.tmp)
		fmt.Fprintf(&g.buf, "%svar %s int = %s;\n", pad, name, g.expr(2))
		fmt.Fprintf(&g.buf, "%sa[(%s) & 63] = %s + 1;\n", pad, name, name)
	case 5:
		fmt.Fprintf(&g.buf, "%sif (%s %% %d == 0) {\n", pad, g.expr(1), g.r.Intn(5)+2)
		g.stmt(depth-1, indent+1)
		if g.r.Intn(2) == 0 {
			fmt.Fprintf(&g.buf, "%s} else {\n", pad)
			g.stmt(depth-1, indent+1)
		}
		fmt.Fprintf(&g.buf, "%s}\n", pad)
	case 6:
		if depth > 0 && len(g.ivs) < 3 {
			g.loop(depth-1, indent)
		} else {
			fmt.Fprintf(&g.buf, "%sg1 = (g1 + %s) & 1048575;\n", pad, g.expr(1))
		}
	default:
		fmt.Fprintf(&g.buf, "%sg2 = (g2 + a[%s] %% 97) & 1048575;\n", pad, g.index())
	}
}

func (g *progGen) loop(depth, indent int) {
	pad := strings.Repeat("\t", indent)
	g.tmp++
	iv := fmt.Sprintf("i%d", g.tmp)
	trips := g.r.Intn(30) + 4
	step := g.r.Intn(2) + 1
	if g.r.Intn(3) == 0 {
		// while-style loop with explicit update
		fmt.Fprintf(&g.buf, "%svar %s int = 0;\n", pad, iv)
		fmt.Fprintf(&g.buf, "%swhile (%s < %d) {\n", pad, iv, trips)
		g.ivs = append(g.ivs, iv)
		n := g.r.Intn(3) + 1
		for k := 0; k < n; k++ {
			g.stmt(depth, indent+1)
		}
		fmt.Fprintf(&g.buf, "%s\t%s = %s + %d;\n", pad, iv, iv, step)
		g.ivs = g.ivs[:len(g.ivs)-1]
		fmt.Fprintf(&g.buf, "%s}\n", pad)
		return
	}
	fmt.Fprintf(&g.buf, "%svar %s int;\n", pad, iv)
	fmt.Fprintf(&g.buf, "%sfor (%s = 0; %s < %d; %s += %d) {\n", pad, iv, iv, trips, iv, step)
	g.ivs = append(g.ivs, iv)
	n := g.r.Intn(4) + 1
	for k := 0; k < n; k++ {
		g.stmt(depth, indent+1)
	}
	g.ivs = g.ivs[:len(g.ivs)-1]
	fmt.Fprintf(&g.buf, "%s}\n", pad)
}

func generate(seed int64) string {
	g := &progGen{r: rand.New(rand.NewSource(seed))}
	g.buf.WriteString("var a int[64];\nvar b int[64];\nvar g1 int;\nvar g2 int;\n\nfunc main() {\n")
	nLoops := g.r.Intn(3) + 2
	for i := 0; i < nLoops; i++ {
		g.loop(2, 1)
	}
	g.buf.WriteString("\tvar k int;\n\tvar h int = 0;\n")
	g.buf.WriteString("\tfor (k = 0; k < 64; k++) { h = (h * 31 + a[k] + b[k]) & 268435455; }\n")
	g.buf.WriteString("\tprint(g1, g2, h);\n}\n")
	return g.buf.String()
}

// TestFuzzPipelineSemantics is the differential fuzzer: random programs
// must print identical output under (a) the base interpreter, (b) every
// compilation level with selection forced on, interpreted, and (c) the
// SPT machine simulator with speculation active.
func TestFuzzPipelineSemantics(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 6
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			src := generate(seed)

			baseRes, err := core.CompileSource("fuzz.spl", src, core.DefaultOptions(core.LevelBase))
			if err != nil {
				t.Fatalf("base compile: %v\n%s", err, src)
			}
			var want strings.Builder
			if _, err := interp.New(baseRes.Prog, &want).Run(); err != nil {
				t.Fatalf("base run: %v\n%s", err, src)
			}

			for _, level := range []core.Level{core.LevelBasic, core.LevelBest, core.LevelAnticipated} {
				opt := core.DefaultOptions(level)
				opt.DisableSelection = true
				res, err := core.CompileSource("fuzz.spl", src, opt)
				if err != nil {
					t.Fatalf("%s compile: %v\n%s", level, err, src)
				}
				for _, fn := range res.Prog.Funcs {
					if err := ssa.VerifySSA(fn, ssa.BuildDomTree(fn)); err != nil {
						t.Fatalf("%s SSA invariants: %v\n%s", level, err, src)
					}
				}
				var got strings.Builder
				if _, err := interp.New(res.Prog, &got).Run(); err != nil {
					t.Fatalf("%s interp: %v\n%s", level, err, src)
				}
				if got.String() != want.String() {
					t.Fatalf("%s interp diverged:\nwant %q\ngot  %q\n%s", level, want.String(), got.String(), src)
				}

				// Simulate with speculation enabled.
				ro := machine.RunOptions{
					SPTHeaders: map[*ir.Block]int{},
					LoopBlocks: map[*ir.Block]map[*ir.Block]bool{},
				}
				for _, sl := range res.SPT {
					dom := ssa.BuildDomTree(sl.Func)
					nest := ssa.FindLoops(sl.Func, dom)
					nl := nest.ByHeader[sl.Header]
					if nl == nil {
						continue
					}
					ro.SPTHeaders[sl.Header] = sl.ID
					set := map[*ir.Block]bool{}
					for _, blk := range nl.Blocks {
						set[blk] = true
					}
					ro.LoopBlocks[sl.Header] = set
				}
				var simOut strings.Builder
				ro.Out = &simOut
				if _, err := machine.Run(res.Prog, machine.DefaultConfig(), ro); err != nil {
					t.Fatalf("%s simulate: %v\n%s", level, err, src)
				}
				if simOut.String() != want.String() {
					t.Fatalf("%s simulator diverged:\nwant %q\ngot  %q\n%s", level, want.String(), simOut.String(), src)
				}
			}
		})
	}
}
