package core_test

import (
	"sync"
	"testing"

	"sptc/internal/core"
)

// TestConcurrentCompileSource compiles the same source from several
// goroutines at once. Under -race this is the standing proof that the
// pipeline keeps no shared mutable state between compilations, which is
// what lets the evaluation harness fan compile+simulate jobs out over a
// worker pool.
func TestConcurrentCompileSource(t *testing.T) {
	src := `
var a int[512];
var chain int[512];
var s1 int;
var s2 int;
func main() {
	var i int = 0;
	while (i < 512) {
		a[i] = (i * 2654435761) & 511;
		chain[i] = (i * 31 + 7) & 511;
		i = i + 1;
	}
	var r int = 0;
	i = 0;
	while (i < 512) {
		var x int = a[chain[i] & 511] * 3 + (a[i] >> 2);
		s1 = s1 + (x & 15);
		r = (r + x) & 1023;
		i = i + 1;
	}
	var p int = 0;
	i = 0;
	while (i < 400) {
		p = chain[p];
		s2 = s2 + (p & 7);
		i = i + 1;
	}
	print(s1, s2, r);
}
`
	const n = 4
	results := make([]*core.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = core.CompileSource("conc.spl", src, core.DefaultOptions(core.LevelBest))
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	// Compilation is deterministic: every goroutine must reach identical
	// decisions.
	want := results[0]
	for i, got := range results[1:] {
		if len(got.SPT) != len(want.SPT) {
			t.Errorf("goroutine %d: %d SPT loops, goroutine 0 had %d", i+1, len(got.SPT), len(want.SPT))
		}
		if len(got.Reports) != len(want.Reports) {
			t.Fatalf("goroutine %d: %d reports, goroutine 0 had %d", i+1, len(got.Reports), len(want.Reports))
		}
		for j, rep := range got.Reports {
			if rep.Decision != want.Reports[j].Decision {
				t.Errorf("goroutine %d report %d: decision %s, goroutine 0 had %s",
					i+1, j, rep.Decision, want.Reports[j].Decision)
			}
		}
	}
}
