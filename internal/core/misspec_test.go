package core_test

import (
	"strings"
	"testing"

	"sptc/internal/core"
	"sptc/internal/interp"
	"sptc/internal/machine"
)

// misspecSrc is built to defeat speculation part of the time: each
// iteration stores to exactly the address the next iteration loads
// (a cross-iteration flow dependence through memory), the stored value
// changes every iteration, and the computing chain is long enough that
// the pre-fork size limit keeps it out of the pre-fork region.
const misspecSrc = `
var a int[64];
var s int;
func main() {
	var i int = 0;
	while (i < 96) {
		var x int = a[(i * 13 + 3) & 63];
		x = x * 3 + (x >> 2) + (x & 15) + i;
		x = x + x % 7 + (x >> 1) % 5 + x % 11 + (x >> 3) % 13;
		x = x + x % 17 + (x >> 2) % 19 + x % 23;
		a[((i + 1) * 13 + 3) & 63] = x & 255;
		s = s + (x & 63);
		i = i + 1;
	}
	print(s, a[7], a[21]);
}
`

// TestDifferentialMisspeculation checks the machine's recovery path: the
// program must produce architecturally identical output at every level
// even though the simulator demonstrably misspeculates and re-executes.
func TestDifferentialMisspeculation(t *testing.T) {
	// Output equality across all four levels, interpreter and simulator.
	checkDifferential(t, misspecSrc)

	// The run must actually have exercised misspeculation recovery —
	// otherwise this test silently stops covering the re-execution path.
	opt := core.DefaultOptions(core.LevelBest)
	opt.DisableSelection = true
	res, err := core.CompileSource("misspec.spl", misspecSrc, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var want strings.Builder
	baseRes, err := core.CompileSource("misspec.spl", misspecSrc, core.DefaultOptions(core.LevelBase))
	if err != nil {
		t.Fatalf("base compile: %v", err)
	}
	if _, err := interp.New(baseRes.Prog, &want).Run(); err != nil {
		t.Fatalf("base run: %v", err)
	}

	out, stats := runSimulator(t, res, misspecSrc, core.LevelBest, machine.EngineBytecode)
	if out != want.String() {
		t.Fatalf("simulator diverged:\nwant %q\ngot  %q", want.String(), out)
	}
	var spec, misspec int64
	for _, ls := range stats.Loops {
		spec += ls.SpecIters
		misspec += ls.MisspecIters
	}
	if spec == 0 {
		t.Fatal("no speculative iterations ran; the loop was not executed under SPT")
	}
	if misspec == 0 {
		t.Fatal("no misspeculated iterations; the recovery path went untested")
	}
	t.Logf("spec iters %d, misspeculated %d", spec, misspec)
}
