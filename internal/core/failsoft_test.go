package core_test

import (
	"context"
	"strings"
	"testing"

	"sptc/internal/core"
	"sptc/internal/interp"
	"sptc/internal/resilience"
	"sptc/internal/ssa"
)

// failsoftSrc has one speculation-friendly loop that LevelBest selects
// and transforms when nothing goes wrong (same shape as
// TestSelectionProducesSPTLoops).
const failsoftSrc = `
var data float[600];
var total float;

func main() {
	var i int;
	for (i = 0; i < 600; i++) {
		data[i] = float(i % 83) * 0.5 + 1.0;
	}
	for (i = 0; i < 600; i++) {
		var x float = data[i];
		var acc float = 0.0;
		acc = acc + x * 1.5 + x * x * 0.25;
		acc = acc + fabs(x - 20.0) * 0.125 + fsqrt(x) * 0.5;
		acc = acc + x * 0.0625 + (x + 1.0) * 0.03125;
		acc = acc + fabs(acc - x) + fsqrt(acc + 1.0);
		total = total + acc;
	}
	print(total);
}
`

// compileFailsoft compiles failsoftSrc at LevelBest, requiring success,
// and returns the program's output and the result.
func compileFailsoft(t *testing.T, mutate func(*core.Options)) (string, *core.Result) {
	t.Helper()
	opt := core.DefaultOptions(core.LevelBest)
	if mutate != nil {
		mutate(&opt)
	}
	res, err := core.CompileSource("failsoft.spl", failsoftSrc, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, f := range res.Prog.Funcs {
		if err := ssa.VerifySSA(f, ssa.BuildDomTree(f)); err != nil {
			t.Fatalf("SSA invariants: %v", err)
		}
	}
	var out strings.Builder
	m := interp.New(res.Prog, &out)
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.String(), res
}

func TestFailSoftPass1Panic(t *testing.T) {
	defer resilience.DisarmAll()
	base, clean := compileFailsoft(t, nil)
	if len(clean.SPT) == 0 {
		t.Fatal("clean compile selected no SPT loops; test is vacuous")
	}

	resilience.Arm("core.pass1.loop", resilience.Fault{Kind: resilience.FaultPanic})
	got, res := compileFailsoft(t, nil)

	if got != base {
		t.Fatalf("degraded compile changed program output: %q vs %q", got, base)
	}
	if len(res.SPT) != 0 {
		t.Fatalf("panicking pass 1 still produced %d SPT loops", len(res.SPT))
	}
	if !res.Degraded() {
		t.Fatal("no degradation events recorded")
	}
	sawDemoted := false
	for _, rep := range res.Reports {
		if rep.Decision == core.DecisionDegraded {
			sawDemoted = true
		}
	}
	if !sawDemoted {
		t.Fatal("no loop demoted to DecisionDegraded")
	}
	for _, ev := range res.Degradations {
		if ev.Phase != "pass1.loop" || ev.Reason != resilience.ReasonPanic {
			t.Fatalf("unexpected event %+v", ev)
		}
		if !strings.Contains(ev.Stack, "Fire") {
			t.Fatalf("event lost the panic stack:\n%s", ev.Stack)
		}
	}
}

func TestFailSoftTransformPanic(t *testing.T) {
	defer resilience.DisarmAll()
	base, clean := compileFailsoft(t, nil)
	if len(clean.SPT) == 0 {
		t.Fatal("clean compile selected no SPT loops; test is vacuous")
	}

	resilience.Arm("core.pass2.transform", resilience.Fault{Kind: resilience.FaultPanic})
	got, res := compileFailsoft(t, nil)

	if got != base {
		t.Fatalf("rolled-back compile changed program output: %q vs %q", got, base)
	}
	if len(res.SPT) != 0 {
		t.Fatalf("panicking transform still registered %d SPT loops", len(res.SPT))
	}
	demoted := 0
	for _, rep := range res.Reports {
		if rep.Decision == core.DecisionDegraded {
			demoted++
			if rep.Transformed {
				t.Fatal("degraded loop still marked transformed")
			}
		}
	}
	if demoted != len(clean.SPT) {
		t.Fatalf("demoted %d loops, expected the %d selected ones", demoted, len(clean.SPT))
	}
	for _, ev := range res.Degradations {
		if ev.Phase != "pass2.transform" || ev.Reason != resilience.ReasonPanic {
			t.Fatalf("unexpected event %+v", ev)
		}
	}
}

func TestFailSoftSearchBudget(t *testing.T) {
	base, clean := compileFailsoft(t, nil)
	got, res := compileFailsoft(t, func(o *core.Options) {
		o.Partition.MaxSearchNodes = 1
	})
	if got != base {
		t.Fatalf("budgeted compile changed program output: %q vs %q", got, base)
	}
	sawBudget := false
	for _, ev := range res.Degradations {
		if ev.Phase == "pass1.search" && ev.Reason == resilience.ReasonBudget {
			sawBudget = true
		}
	}
	if !sawBudget {
		t.Fatalf("no pass1.search budget event; events = %v, clean VCs = %d",
			res.Degradations, len(clean.Reports))
	}
	// The anytime partition is valid, so every analyzed loop still has
	// one, and its cost never exceeds the serial fallback.
	for _, rep := range res.Reports {
		if rep.Partition == nil || rep.Partition.Skipped {
			continue
		}
		if rep.Partition.Cost > rep.Partition.EmptyCost+1e-9 {
			t.Fatalf("loop %s/%d: anytime cost %.6f above serial %.6f",
				rep.Func, rep.LoopID, rep.Partition.Cost, rep.Partition.EmptyCost)
		}
	}
}

func TestFailSoftInjectedDelayIsHarmless(t *testing.T) {
	defer resilience.DisarmAll()
	base, _ := compileFailsoft(t, nil)
	resilience.Arm("core.pass1.loop", resilience.Fault{Kind: resilience.FaultDelay, Delay: 0})
	got, res := compileFailsoft(t, nil)
	if got != base {
		t.Fatalf("delay changed output: %q vs %q", got, base)
	}
	if res.Degraded() {
		t.Fatalf("zero delay degraded the compile: %v", res.Degradations)
	}
}

func TestCompileContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := core.DefaultOptions(core.LevelBest)
	opt.Context = ctx
	_, err := core.CompileSource("failsoft.spl", failsoftSrc, opt)
	if err == nil {
		t.Fatal("canceled compile succeeded")
	}
	if !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("err = %v", err)
	}
}
