package core_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"sptc/internal/core"
	"sptc/internal/incr"
	"sptc/internal/ir"
	"sptc/internal/machine"
	"sptc/internal/trace"

	"sptc/internal/splgen"
)

// multiFuncSrc is a hand-written multi-function program for the
// function-reordering edit class: splgen emits single-function programs,
// and reordering independent functions is exactly the edit the
// fingerprint's name/position invariance must absorb (every loop clean
// even though loop IDs renumber).
const multiFuncSrc = `
var a int[64];
var g1 int;
var g2 int;

func first() {
	var i int = 0;
	while (i < 40) {
		g1 = (g1 * 17 + i) & 1048575;
		a[(g1) & 63] = a[(g1 + 7) & 63] + 3;
		i = i + 1;
	}
}

func second() {
	var j int = 0;
	while (j < 50) {
		g2 = (g2 + a[(j * 3) & 63] * 5) & 1048575;
		a[(j + 11) & 63] = g2 & 255;
		j = j + 1;
	}
}

func main() {
	var r int = 0;
	while (r < 6) {
		first();
		second();
		r = r + 1;
	}
	print(g1, g2);
}
`

// incrEdit is one edit class of the metamorphic suite. apply returns the
// edited source, or ok=false when the edit does not apply to this
// program. allHits asserts the edit leaves every loop clean (invariance
// edits); someMiss asserts it dirties a nonempty strict subset of the
// loops — the loop-granularity claim: the perturbed loop (and its
// enclosing candidates, whose bodies contain it) go cold while every
// other loop stays clean.
type incrEdit struct {
	name     string
	apply    func(src string) (string, bool)
	allHits  bool
	someMiss bool
}

func incrEdits() []incrEdit {
	wordRe := func(w string) *regexp.Regexp {
		return regexp.MustCompile(`\b` + regexp.QuoteMeta(w) + `\b`)
	}
	return []incrEdit{
		{
			name:    "identity",
			apply:   func(src string) (string, bool) { return src, true },
			allHits: true,
		},
		{
			// Rename locals: fingerprints hash variables by first
			// occurrence, never by name, so every loop stays clean.
			name: "rename-vars",
			apply: func(src string) (string, bool) {
				out := src
				applied := false
				for _, w := range []string{"i1", "h", "k", "i", "j", "r"} {
					re := wordRe(w)
					if re.MatchString(out) {
						out = re.ReplaceAllString(out, w+"RenamedVariable")
						applied = true
					}
				}
				return out, applied
			},
			allHits: true,
		},
		{
			// Perturb one loop body: splgen programs end with the `h = (h
			// * 31 + ...)` checksum loop, whose body no other loop
			// depends on, so exactly that loop goes dirty.
			name: "perturb-one-loop",
			apply: func(src string) (string, bool) {
				if !strings.Contains(src, "* 31 +") {
					return src, false
				}
				return strings.Replace(src, "* 31 +", "* 29 +", 1), true
			},
			someMiss: true,
		},
		{
			// Reorder independent function definitions: loop IDs and
			// structural slots renumber, but the content-addressed keys
			// still hit.
			name: "reorder-funcs",
			apply: func(src string) (string, bool) {
				fi := strings.Index(src, "func first()")
				si := strings.Index(src, "func second()")
				mi := strings.Index(src, "func main()")
				if fi < 0 || si < 0 || mi < 0 || !(fi < si && si < mi) {
					return src, false
				}
				return src[:fi] + src[si:mi] + src[fi:si] + src[mi:], true
			},
			allHits: true,
		},
	}
}

// compileIncr compiles src with an optional incremental store, returning
// the result and the trace track carrying the incr counters.
func compileIncr(tb testing.TB, src string, level core.Level, workers int, store *incr.Store) (*core.Result, *trace.Track) {
	tb.Helper()
	tr := trace.New()
	tk := tr.StartTrack("compile")
	opt := core.DefaultOptions(level)
	opt.SearchWorkers = workers
	opt.Trace = tk
	opt.Incr = store
	res, err := core.CompileSource("incr.spl", src, opt)
	if err != nil {
		tb.Fatalf("compile (level %v, workers %d): %v", level, workers, err)
	}
	return res, tk
}

// diffIncrCompiles asserts that the incremental compile `warm` is
// equivalent to the from-scratch compile `cold` of the same source:
// emitted program bytes, per-loop decisions and costs, degradation
// events, and (at workers <= 1, where they are deterministic even from
// scratch) the restored search counters.
func diffIncrCompiles(t *testing.T, cold, warm *core.Result, workers int) {
	t.Helper()
	if a, b := ir.FormatProgram(cold.Prog), ir.FormatProgram(warm.Prog); a != b {
		t.Fatalf("emitted programs differ:\n--- from scratch ---\n%s\n--- incremental ---\n%s", a, b)
	}
	if len(cold.Reports) != len(warm.Reports) {
		t.Fatalf("report count: from scratch %d, incremental %d", len(cold.Reports), len(warm.Reports))
	}
	for i, cr := range cold.Reports {
		wr := warm.Reports[i]
		if cr.Func != wr.Func || cr.LoopID != wr.LoopID || cr.Kind != wr.Kind || cr.Depth != wr.Depth {
			t.Fatalf("report %d identity differs: %+v vs %+v", i, cr, wr)
		}
		if cr.Decision != wr.Decision {
			t.Fatalf("report %d (%s/loop%d): decision %v (scratch) vs %v (incremental)", i, cr.Func, cr.LoopID, cr.Decision, wr.Decision)
		}
		if cr.BodySize != wr.BodySize || cr.VCCount != wr.VCCount ||
			cr.Iterations != wr.Iterations || cr.AvgTrip != wr.AvgTrip ||
			cr.EstCost != wr.EstCost || cr.PreForkSize != wr.PreForkSize ||
			cr.Benefit != wr.Benefit || cr.Transformed != wr.Transformed ||
			cr.SPTLoopID != wr.SPTLoopID || cr.SVP != wr.SVP {
			t.Fatalf("report %d (%s/loop%d) fields differ:\nscratch:     %+v\nincremental: %+v", i, cr.Func, cr.LoopID, cr, wr)
		}
		cp, wp := cr.Partition, wr.Partition
		if (cp == nil) != (wp == nil) {
			t.Fatalf("report %d: partition presence differs", i)
		}
		if cp == nil {
			continue
		}
		if cp.Cost != wp.Cost || cp.EmptyCost != wp.EmptyCost || cp.Skipped != wp.Skipped ||
			cp.BodySize != wp.BodySize || cp.SizeLimit != wp.SizeLimit ||
			cp.PreForkSize != wp.PreForkSize || len(cp.PreForkVCs) != len(wp.PreForkVCs) ||
			len(cp.Move) != len(wp.Move) || len(cp.CopyConds) != len(wp.CopyConds) {
			t.Fatalf("report %d partition differs:\nscratch:     %v\nincremental: %v", i, cp, wp)
		}
		if cp.SearchNodes != wp.SearchNodes {
			t.Fatalf("report %d search nodes: %d (scratch) vs %d (incremental)", i, cp.SearchNodes, wp.SearchNodes)
		}
		if workers <= 1 {
			// Serial search: the zero-set memo dedups cost queries before
			// they reach an evaluator, so CostEvals and DedupHits are
			// deterministic and the restored values must match a cold
			// compile exactly. Recomputes is not comparable: evaluators
			// live in a sync.Pool, and a GC-evicted evaluator re-enters
			// cold and re-propagates, so the count drifts with GC timing.
			if cp.CostEvals != wp.CostEvals || cp.DedupHits != wp.DedupHits {
				t.Fatalf("report %d counters differ: scratch evals=%d dedup=%d, incremental evals=%d dedup=%d",
					i, cp.CostEvals, cp.DedupHits, wp.CostEvals, wp.DedupHits)
			}
		}
	}
	if len(cold.Degradations) != len(warm.Degradations) {
		t.Fatalf("degradations: %d (scratch) vs %d (incremental)", len(cold.Degradations), len(warm.Degradations))
	}
	for i, cd := range cold.Degradations {
		wd := warm.Degradations[i]
		if cd.Phase != wd.Phase || cd.Unit != wd.Unit || cd.Reason != wd.Reason {
			t.Fatalf("degradation %d differs: %v vs %v", i, cd, wd)
		}
	}
	if len(cold.SPT) != len(warm.SPT) {
		t.Fatalf("SPT loops: %d (scratch) vs %d (incremental)", len(cold.SPT), len(warm.SPT))
	}
	for i, cs := range cold.SPT {
		if ws := warm.SPT[i]; cs.ID != ws.ID || cs.Report.LoopID != ws.Report.LoopID {
			t.Fatalf("SPT loop %d differs: id %d loop %d vs id %d loop %d", i, cs.ID, cs.Report.LoopID, ws.ID, ws.Report.LoopID)
		}
	}
}

// incrCounters reads the pass-1 incremental counters from a track.
func incrCounters(tk *trace.Track) (hits, misses, invalidated int64) {
	return tk.SumInt("pass1", "incr_hits"), tk.SumInt("pass1", "incr_misses"), tk.SumInt("pass1", "incr_invalidated")
}

// TestIncrementalMetamorphicEquivalence is the headline suite: over a
// corpus of generated and hand-written programs, for every edit class ×
// level × worker count, an incremental recompile of the edited program
// against a store populated by the original must be byte-identical to a
// from-scratch compile of the edited program — and the hit counters must
// show the dirtiness the edit implies (invariance edits: all loops
// clean; a one-loop perturbation: exactly one loop dirty).
func TestIncrementalMetamorphicEquivalence(t *testing.T) {
	corpus := map[string]string{
		"splgen3":   splgen.Generate(3),
		"splgen7":   splgen.Generate(7),
		"splgen11":  splgen.Generate(11),
		"multifunc": multiFuncSrc,
	}
	levels := []core.Level{core.LevelBasic, core.LevelBest, core.LevelAnticipated}
	workerCounts := []int{1, 8}
	for name, src := range corpus {
		for _, edit := range incrEdits() {
			edited, ok := edit.apply(src)
			if !ok {
				continue
			}
			for _, level := range levels {
				for _, workers := range workerCounts {
					t.Run(fmt.Sprintf("%s/%s/%v/w%d", name, edit.name, level, workers), func(t *testing.T) {
						store := incr.New()
						_, baseTk := compileIncr(t, src, level, workers, store)
						_, baseMisses, _ := incrCounters(baseTk)

						warm, warmTk := compileIncr(t, edited, level, workers, store)
						cold, _ := compileIncr(t, edited, level, workers, nil)
						diffIncrCompiles(t, cold, warm, workers)

						hits, misses, _ := incrCounters(warmTk)
						if edit.allHits {
							if misses != 0 || hits != baseMisses {
								t.Fatalf("edit %s should leave every loop clean: base misses %d, warm hits %d misses %d",
									edit.name, baseMisses, hits, misses)
							}
						}
						if edit.someMiss {
							if misses < 1 || hits < 1 || hits+misses != baseMisses {
								t.Fatalf("edit %s should dirty a strict subset of the loops: base misses %d, warm hits %d misses %d",
									edit.name, baseMisses, hits, misses)
							}
						}
					})
				}
			}
		}
	}
}

// TestIncrementalSimulationFidelity runs the machine simulator over the
// incremental and from-scratch compiles of an edited program and
// compares program output and every fidelity counter.
func TestIncrementalSimulationFidelity(t *testing.T) {
	for _, seed := range []int64{3, 7} {
		src := splgen.Generate(seed)
		edited := strings.Replace(src, "* 31 +", "* 29 +", 1)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			store := incr.New()
			compileIncr(t, src, core.LevelBest, 1, store)
			warm, _ := compileIncr(t, edited, core.LevelBest, 1, store)
			cold, _ := compileIncr(t, edited, core.LevelBest, 1, nil)
			outCold, simCold := runSimulator(t, cold, edited, core.LevelBest, machine.EngineBytecode)
			outWarm, simWarm := runSimulator(t, warm, edited, core.LevelBest, machine.EngineBytecode)
			if outCold != outWarm {
				t.Fatalf("simulated output differs:\n%q\nvs\n%q", outCold, outWarm)
			}
			if simCold.Cycles != simWarm.Cycles || simCold.Ops != simWarm.Ops ||
				simCold.BranchLookups != simWarm.BranchLookups ||
				simCold.BranchMisses != simWarm.BranchMisses ||
				simCold.MemAccesses != simWarm.MemAccesses {
				t.Fatalf("fidelity counters differ: scratch %+v incremental %+v", simCold, simWarm)
			}
		})
	}
}

// TestIncrementalPersistentStore exercises the disk round trip: populate
// a store in one "session", reopen it in another, and verify a warm
// compile hits every loop and matches from-scratch output.
func TestIncrementalPersistentStore(t *testing.T) {
	src := splgen.Generate(5)
	path := filepath.Join(t.TempDir(), "incr.bin")

	store, err := incr.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	_, tk := compileIncr(t, src, core.LevelBest, 1, store)
	_, baseMisses, _ := incrCounters(tk)
	if baseMisses == 0 {
		t.Fatalf("expected cold misses on first compile")
	}
	if err := store.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}

	reopened, err := incr.Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if reopened.Len() != store.Len() {
		t.Fatalf("reopened store has %d entries, want %d", reopened.Len(), store.Len())
	}
	warm, warmTk := compileIncr(t, src, core.LevelBest, 1, reopened)
	cold, _ := compileIncr(t, src, core.LevelBest, 1, nil)
	diffIncrCompiles(t, cold, warm, 1)
	hits, misses, _ := incrCounters(warmTk)
	if misses != 0 || hits != baseMisses {
		t.Fatalf("reopened store: hits %d misses %d, want %d/0", hits, misses, baseMisses)
	}
}

// TestIncrementalCorruptStoreFallsBack verifies the fail-soft contract:
// a corrupt or truncated store file loads as a (possibly partial) store,
// the compile runs cold for unsalvageable entries, and output still
// matches from-scratch.
func TestIncrementalCorruptStoreFallsBack(t *testing.T) {
	src := splgen.Generate(5)
	path := filepath.Join(t.TempDir(), "incr.bin")
	store, err := incr.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	compileIncr(t, src, core.LevelBest, 1, store)
	if err := store.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated":     func(b []byte) []byte { return b[:len(b)/2] },
		"flipped-byte":  func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)-5] ^= 0xff; return c },
		"garbage":       func(b []byte) []byte { return []byte("not a store at all") },
		"empty":         func(b []byte) []byte { return nil },
		"header-only":   func(b []byte) []byte { return b[:8] },
		"partial-magic": func(b []byte) []byte { return b[:4] },
	} {
		t.Run(name, func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "corrupt.bin")
			if err := os.WriteFile(p, mutate(data), 0o666); err != nil {
				t.Fatal(err)
			}
			s, err := incr.Open(p)
			if err != nil {
				t.Fatalf("corrupt store must open, got error: %v", err)
			}
			warm, _ := compileIncr(t, src, core.LevelBest, 1, s)
			cold, _ := compileIncr(t, src, core.LevelBest, 1, nil)
			diffIncrCompiles(t, cold, warm, 1)
			// And the salvaged store must save cleanly again.
			if err := s.Save(); err != nil {
				t.Fatalf("save after salvage: %v", err)
			}
		})
	}
}

// TestIncrementalInvalidatedCounter checks the third counter: a loop
// whose structural slot was seen with a different fingerprint counts as
// invalidated, not just missed.
func TestIncrementalInvalidatedCounter(t *testing.T) {
	src := splgen.Generate(3)
	edited := strings.Replace(src, "* 31 +", "* 29 +", 1)
	store := incr.New()
	compileIncr(t, src, core.LevelBest, 1, store)
	_, tk := compileIncr(t, edited, core.LevelBest, 1, store)
	hits, misses, invalidated := incrCounters(tk)
	if misses < 1 || hits < 1 {
		t.Fatalf("perturbed loop should go dirty while others stay clean: hits %d misses %d", hits, misses)
	}
	// Every dirty loop here is a structural slot seen before with a
	// different fingerprint, so the full miss count reports as invalidated.
	if invalidated != misses {
		t.Fatalf("all misses are invalidations: misses %d invalidated %d", misses, invalidated)
	}
}

// TestIncrementalBypassConditions: caching must be skipped — and the
// compile must still succeed cold — under a search budget or a deadline,
// where splicing could mask anytime degradation.
func TestIncrementalBypassConditions(t *testing.T) {
	src := splgen.Generate(3)
	store := incr.New()
	compileIncr(t, src, core.LevelBest, 1, store) // populate

	opt := core.DefaultOptions(core.LevelBest)
	opt.Incr = store
	opt.Partition.MaxSearchNodes = 4 // still cacheable: per-loop deterministic budget
	tr := trace.New()
	tk := tr.StartTrack("budgeted")
	opt.Trace = tk
	if _, err := core.CompileSource("incr.spl", src, opt); err != nil {
		t.Fatalf("compile: %v", err)
	}
	// Different MaxSearchNodes → different options key → all misses, no
	// stale hits from the default-budget entries.
	if hits := tk.SumInt("pass1", "incr_hits"); hits != 0 {
		t.Fatalf("MaxSearchNodes change must miss, got %d hits", hits)
	}
}

// fuzzIncrEdit applies one edit opcode to a splgen-generated program.
// Every opcode maps to a textual edit that keeps the program well-formed
// on any splgen output (splgen reserves t<n>/i<n> for generated locals
// and k/h for the checksum epilogue, so the rename targets cannot
// collide), so the fuzz engine can compose arbitrary edit scripts and
// the result always compiles.
func fuzzIncrEdit(src string, op byte) string {
	switch op % 4 {
	case 1:
		// Identifier renames: fingerprint invariance (all loops clean).
		src = regexp.MustCompile(`\bk\b`).ReplaceAllString(src, "checksumIndex")
		src = regexp.MustCompile(`\bh\b`).ReplaceAllString(src, "checksumAcc")
		return regexp.MustCompile(`\bg1\b`).ReplaceAllString(src, "globalOne")
	case 2:
		// Semantic perturbation of the checksum loop: that loop (and any
		// enclosing candidates) goes dirty. No-op once already applied.
		return strings.Replace(src, "* 31 +", "* 29 +", 1)
	case 3:
		// Formatting churn: the fingerprint hashes the parsed IR, so
		// whitespace edits leave every loop clean.
		return strings.ReplaceAll(src, ";\n", ";\n\n")
	default:
		return src
	}
}

// FuzzIncrementalCompile drives the incremental pipeline with fuzzed
// edit scripts: the engine mutates the splgen seed and a byte string of
// edit opcodes, and the oracle asserts that a warm recompile of the
// edited program (store populated by the original) is equivalent to a
// from-scratch compile — and that the hit/miss counters still account
// for every candidate loop.
func FuzzIncrementalCompile(f *testing.F) {
	f.Add(int64(3), []byte{1})
	f.Add(int64(5), []byte{0})
	f.Add(int64(7), []byte{2})
	f.Add(int64(11), []byte{3, 2})
	f.Add(int64(13), []byte{1, 3, 2, 1})
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		if len(script) > 8 {
			script = script[:8] // bound per-input work; longer scripts only repeat ops
		}
		base := splgen.Generate(seed)
		edited := base
		for _, op := range script {
			edited = fuzzIncrEdit(edited, op)
		}

		store, err := incr.Open(filepath.Join(t.TempDir(), "fuzz.cache"))
		if err != nil {
			t.Fatalf("open store: %v", err)
		}
		_, populateTk := compileIncr(t, base, core.LevelBest, 1, store)
		warm, warmTk := compileIncr(t, edited, core.LevelBest, 1, store)
		cold, _ := compileIncr(t, edited, core.LevelBest, 1, nil)
		diffIncrCompiles(t, cold, warm, 1)

		// The edits never add or remove loops, so the warm compile must
		// account for exactly the loop population the populate run saw:
		// every candidate is either a hit or a miss, never dropped.
		_, baseMisses, _ := incrCounters(populateTk)
		hits, misses, _ := incrCounters(warmTk)
		if hits+misses != baseMisses {
			t.Fatalf("loop accounting: %d hits + %d misses != %d candidates", hits, misses, baseMisses)
		}
	})
}
