// Package core is the paper's primary contribution: the cost-driven
// two-pass SPT compilation framework (§3). Pass 1 analyzes every loop
// candidate — building its annotated dependence graph, the misspeculation
// cost model, and the optimal pre-fork/post-fork partition. Pass 2
// selects the good SPT loops by the §6.1 criteria and performs the final
// SPT transformation with cleanup.
//
// Three compilation levels mirror the paper's evaluation: Basic (loop
// unrolling and code reordering with control-flow profiling and static
// type-based dependence analysis only), Best (plus data-dependence
// profiling and software value prediction), and Anticipated (plus
// while-loop unrolling and privatization).
package core

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sptc/internal/cost"
	"sptc/internal/depgraph"
	"sptc/internal/incr"
	"sptc/internal/interp"
	"sptc/internal/ir"
	"sptc/internal/parser"
	"sptc/internal/partition"
	"sptc/internal/profile"
	"sptc/internal/resilience"
	"sptc/internal/sem"
	"sptc/internal/ssa"
	"sptc/internal/trace"
	"sptc/internal/transform"
)

// Fault-injection points for the fail-soft tests and CLIs
// (see internal/resilience).
var (
	injectPass1     = resilience.Register("core.pass1.loop")
	injectTransform = resilience.Register("core.pass2.transform")
)

// Level is the compilation level.
type Level int

// Compilation levels.
const (
	// LevelBase builds the non-SPT reference code (no speculation).
	LevelBase Level = iota
	// LevelBasic is the paper's basic compilation: unrolling + code
	// reordering, control-flow profiling, static dependence analysis.
	LevelBasic
	// LevelBest adds data-dependence profiling and software value
	// prediction.
	LevelBest
	// LevelAnticipated additionally unrolls while loops and privatizes
	// per-iteration scratch globals.
	LevelAnticipated
)

func (l Level) String() string {
	switch l {
	case LevelBase:
		return "base"
	case LevelBasic:
		return "basic"
	case LevelBest:
		return "best"
	case LevelAnticipated:
		return "anticipated"
	}
	return "?"
}

// SelectOptions are the §6.1 SPT loop selection criteria.
type SelectOptions struct {
	// CostFraction: the optimal misspeculation cost must be below this
	// fraction of the loop body size (criterion 1).
	CostFraction float64
	// PreForkFraction: the pre-fork region must be below this fraction of
	// the loop body size (criterion 2; also the search threshold).
	PreForkFraction float64
	// MinBodySize and MaxBodySize bound the loop body (criterion 3); the
	// paper's maximum loop size limit is 1000.
	MinBodySize int
	MaxBodySize int
	// MinIterCount rejects loops with too few iterations per entry
	// (criterion 4; paper: "especially a number smaller than 2").
	MinIterCount float64
}

// Options configures a compilation.
type Options struct {
	Level     Level
	Unroll    transform.UnrollOptions
	SVP       transform.SVPOptions
	Partition partition.Options
	Select    SelectOptions
	// ProfileOut receives the program's output during profiling runs
	// (defaults to io.Discard).
	ProfileOut io.Writer
	// MaxProfileSteps bounds the profiling execution.
	MaxProfileSteps int64
	// DisableSVP turns software value prediction off (ablation).
	DisableSVP bool
	// SearchWorkers parallelizes pass 1 at two levels: candidate loops
	// are analyzed by a pool of SearchWorkers goroutines (dependence
	// graphs and cost models are per-loop and read-only), and each
	// loop's partition search runs its own parallel branch-and-bound
	// with partition.Options.Workers = SearchWorkers. The compilation
	// result is identical for every SearchWorkers value: loop analyses
	// are independent, reports and degradation events are reduced in
	// loop order after the join, a shared partition.Options.Budget is
	// pre-split deterministically across candidate loops, and the
	// search itself is worker-count-invariant. 0 (the default) keeps
	// the classic single-threaded pass 1 and serial search. Pass 2
	// (selection + transformation) always stays serial: it mutates the
	// IR.
	SearchWorkers int
	// DisableSelection transforms every loop with a legal partition
	// regardless of the §6.1 criteria (ablation: "speculate everything").
	DisableSelection bool
	// Incr enables incremental recompilation: before the pass-1 pool
	// runs, every candidate loop is fingerprinted (normalized IR plus all
	// dependence-graph and profile inputs the cost model reads) and
	// looked up in the store; clean loops splice their stored partition
	// into pass 2 without building a dependence graph or searching, dirty
	// loops run pass 1 as usual and store their result. The compilation
	// output is byte-identical to a from-scratch compile (pinned by the
	// metamorphic equivalence suite). Caching is bypassed — every loop
	// compiles cold — whenever a hit could diverge from a cold compile:
	// under a shared search budget or a context deadline (anytime
	// degradation depends on elapsed work), or with fault-injection
	// points armed (a hit would skip the injection sites). Degraded
	// results are never stored. Nil disables the cache.
	Incr *incr.Store
	// Trace receives one span per pipeline pass (parse, sem, build,
	// unroll, privatize, ssa, profile, svp, pass1, pass2, transform,
	// cleanup) plus one "loop" span per analyzed candidate carrying the
	// partition-search counters. Nil disables tracing at no cost.
	Trace *trace.Track
	// Context cancels the whole compilation: it is checked between
	// passes, inside the profiling interpreter, and inside the
	// partition search. Nil means context.Background().
	Context context.Context
}

// DefaultOptions returns the paper-faithful configuration for a level.
func DefaultOptions(level Level) Options {
	return Options{
		Level:     level,
		Unroll:    transform.DefaultUnrollOptions(),
		SVP:       transform.DefaultSVPOptions(),
		Partition: partition.DefaultOptions(),
		Select: SelectOptions{
			CostFraction:    0.08,
			PreForkFraction: 0.3,
			MinBodySize:     48,
			MaxBodySize:     1000,
			MinIterCount:    2,
		},
		MaxProfileSteps: 2_000_000_000,
	}
}

// Decision is the pass-2 disposition of one loop candidate, the
// categories of the paper's Figure 15.
type Decision int

// Loop dispositions.
const (
	DecisionSelected Decision = iota
	DecisionNotRun            // never executed during profiling
	DecisionTooSmall          // body below minimum (the paper's unrollable-while problem)
	DecisionTooLarge          // body above the hardware limit
	DecisionLowTrip           // iteration count too small
	DecisionTooManyVCs
	DecisionHighCost
	DecisionBigPreFork
	DecisionNested   // a better overlapping candidate was selected
	DecisionShape    // header shape unsupported for transformation
	DecisionDegraded // analysis or transform failed; loop demoted to serial
)

func (d Decision) String() string {
	switch d {
	case DecisionSelected:
		return "selected"
	case DecisionNotRun:
		return "not-run"
	case DecisionTooSmall:
		return "body-too-small"
	case DecisionTooLarge:
		return "body-too-large"
	case DecisionLowTrip:
		return "low-trip-count"
	case DecisionTooManyVCs:
		return "too-many-vcs"
	case DecisionHighCost:
		return "high-cost"
	case DecisionBigPreFork:
		return "big-prefork"
	case DecisionNested:
		return "overlap"
	case DecisionShape:
		return "shape"
	case DecisionDegraded:
		return "degraded"
	}
	return "?"
}

// LoopReport captures everything pass 1 and pass 2 learned about a loop.
type LoopReport struct {
	Func     string
	LoopID   int
	HeaderID int
	Kind     ssa.LoopKind
	Depth    int

	BodySize   int
	Iterations float64
	Entries    float64
	AvgTrip    float64
	VCCount    int

	Partition *partition.Result
	SVP       bool // software value prediction applied

	Decision Decision
	// Benefit is the selection ranking estimate (dynamic ops covered,
	// scaled by expected overlap).
	Benefit float64

	// Filled after transformation.
	Transformed bool
	SPTLoopID   int
	EstCost     float64
	PreForkSize int
	// HasCalls reports whether the transformed loop's final body contains
	// non-builtin calls (the paper's Figure 19 outliers). Computed on the
	// post-cleanup IR for transformed loops only.
	HasCalls bool
}

// SPTLoop identifies a transformed loop for the machine simulator.
type SPTLoop struct {
	ID     int
	Func   *ir.Func
	Header *ir.Block
	Report *LoopReport
}

// Result is a completed compilation.
type Result struct {
	Level   Level
	Prog    *ir.Program
	Reports []*LoopReport
	SPT     []*SPTLoop

	// Profiles from the final profiling run (nil at LevelBase).
	Edge *profile.EdgeProfile
	Dep  *profile.DepProfile

	// Degradations lists every fail-soft event survived during the
	// compile: loops demoted to serial after a panic, and anytime
	// partition searches stopped by a budget or deadline.
	Degradations []resilience.DegradationEvent
}

// Degraded reports whether any fail-soft event occurred.
func (r *Result) Degraded() bool { return len(r.Degradations) > 0 }

// CompileSource parses and compiles SPL source text. The whole
// compilation is recorded as one "compile" span on opt.Trace, with the
// front-end and pipeline passes as children.
func CompileSource(name, src string, opt Options) (*Result, error) {
	root := opt.Trace.Start("compile").Str("source", name).Str("level", opt.Level.String())
	defer root.End()

	sp := opt.Trace.Start("parse")
	prog, err := parser.Parse(name, src)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = opt.Trace.Start("sem")
	info, err := sem.Check(prog)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = opt.Trace.Start("build")
	p, err := ir.Build(info)
	sp.End()
	if err != nil {
		return nil, err
	}
	return Compile(p, opt)
}

// Compile runs the SPT pipeline over an IR program (which it mutates).
//
// Compile is fail-soft: a candidate loop whose analysis or transform
// panics (or hits an armed fault-injection point) is demoted to serial
// with DecisionDegraded and the event recorded in Result.Degradations;
// the compile itself keeps going. Only front-end errors, IR corruption,
// and cancellation of opt.Context abort the whole compilation.
func Compile(p *ir.Program, opt Options) (*Result, error) {
	res := &Result{Level: opt.Level, Prog: p}
	if opt.ProfileOut == nil {
		opt.ProfileOut = io.Discard
	}
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if opt.Level == LevelBase {
		finishSSA(p, opt.Trace)
		return res, ir.VerifyProgram(p)
	}

	// Preprocessing (pre-SSA): loop unrolling (§7.1); while-loop
	// unrolling and privatization at the anticipated level.
	sp := opt.Trace.Start("unroll")
	uopt := opt.Unroll
	uopt.UnrollWhile = opt.Level >= LevelAnticipated
	for _, f := range p.Funcs {
		transform.UnrollAll(f, uopt)
	}
	sp.End()
	if opt.Level >= LevelAnticipated {
		sp = opt.Trace.Start("privatize")
		effects := depgraph.ComputeEffects(p)
		for _, f := range p.Funcs {
			dom := ssa.BuildDomTree(f)
			nest := ssa.FindLoops(f, dom)
			for _, l := range nest.Loops {
				transform.Privatize(f, l, dom, effects)
			}
		}
		sp.End()
	}

	sp = opt.Trace.Start("ssa")
	buildSSAAll(p)
	sp.End()
	if err := ir.VerifyProgram(p); err != nil {
		return nil, fmt.Errorf("after preprocessing: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Profiling run.
	sp = opt.Trace.Start("profile")
	prof, err := runProfile(ctx, p, opt)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("profiling: %w", err)
	}

	// Software value prediction (best level and up): rewrite predictable
	// critical recurrences, then re-profile so pass 1 sees the new code.
	svpApplied := make(map[*ir.Block]bool) // headers of SVP'd loops
	if opt.Level >= LevelBest && !opt.DisableSVP {
		sp = opt.Trace.Start("svp")
		changed := applySVP(p, prof, opt, svpApplied)
		sp.Int("rewrites", int64(len(svpApplied))).End()
		if changed {
			if err := ir.VerifyProgram(p); err != nil {
				return nil, fmt.Errorf("after SVP: %w", err)
			}
			sp = opt.Trace.Start("profile")
			prof, err = runProfile(ctx, p, opt)
			sp.End()
			if err != nil {
				return nil, fmt.Errorf("re-profiling after SVP: %w", err)
			}
		}
	}
	prof.Edge.Apply(p)
	res.Edge = prof.Edge
	res.Dep = prof.Dep
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Pass 1: analyze every loop candidate. Phase A walks the program in
	// order, building the per-function analyses (dominators, loop nests,
	// control dependences) and one job per executed loop; phase B runs
	// the jobs — inline when SearchWorkers <= 1, on a worker pool
	// otherwise; phase C reduces results into reports, trace spans, and
	// degradation events in loop order, so the compilation outcome never
	// depends on scheduling.
	pass1 := opt.Trace.Start("pass1")
	effects := depgraph.ComputeEffects(p)
	var jobs []*pass1Job
	loopID := 0
	for _, f := range p.Funcs {
		dom := ssa.BuildDomTree(f)
		nest := ssa.FindLoops(f, dom)
		if len(nest.Loops) == 0 {
			continue
		}
		pd := depgraph.BuildPostDom(f)
		cds := depgraph.ControlDeps(f, pd)
		for _, l := range nest.Loops {
			rep := &LoopReport{
				Func: f.Name, LoopID: loopID, HeaderID: l.Header.ID,
				Kind: l.Kind, Depth: l.Depth, BodySize: l.EffectiveBodySize(),
			}
			loopID++
			rep.SVP = svpApplied[l.Header]
			st := prof.Edge.Stats(l)
			rep.Iterations = float64(st.Iterations)
			rep.Entries = float64(st.Entries)
			rep.AvgTrip = st.AvgTrip
			res.Reports = append(res.Reports, rep)
			jobs = append(jobs, &pass1Job{
				rep:    rep,
				loop:   l,
				notRun: st.Iterations == 0,
				cfg: depgraph.Config{
					UseProfile: opt.Level >= LevelBest,
					Dep:        prof.Dep,
					Effects:    effects,
					CtrlDeps:   cds,
					Dom:        dom,
				},
				unit: fmt.Sprintf("%s/loop%d", f.Name, rep.LoopID),
			})
		}
	}

	popt := opt.Partition
	popt.PreForkFraction = opt.Select.PreForkFraction
	popt.Workers = opt.SearchWorkers

	// Incremental planning: fingerprint every candidate and mark the
	// clean ones before any budget is split or any worker runs; hits
	// never reach the search, so the split below stays deterministic.
	plan := planIncremental(p, jobs, opt, popt, ctx, effects)

	if opt.SearchWorkers >= 2 {
		// A shared node budget cannot be raced over by concurrent
		// searches without making exhaustion order — and so degradation
		// decisions — scheduling-dependent. Pre-split it into per-loop
		// shares (deterministic: job order and share sizes depend only
		// on the program).
		if popt.Budget != nil {
			shares := popt.Budget.Split(len(jobs))
			for i, j := range jobs {
				j.budget = shares[i]
			}
		}
		runJobs(jobs, opt.SearchWorkers, func(j *pass1Job) {
			j.begin = opt.Trace.Now()
			j.run(ctx, popt)
			j.dur = opt.Trace.Now() - j.begin
		})
	} else {
		for _, j := range jobs {
			j.begin = opt.Trace.Now()
			j.run(ctx, popt)
			j.dur = opt.Trace.Now() - j.begin
		}
	}

	// Phase C: serial reduction in loop order.
	var cands []*candidateShim
	for _, j := range jobs {
		rep := j.rep
		lsp := opt.Trace.Record("loop", j.begin, j.dur).
			Str("func", rep.Func).Int("loop", int64(rep.LoopID)).Int("body", int64(rep.BodySize))
		if j.notRun {
			rep.Decision = DecisionNotRun
			continue
		}
		if j.gerr != nil {
			if ctx.Err() != nil {
				pass1.End()
				return nil, ctx.Err()
			}
			rep.Decision = DecisionDegraded
			ev := resilience.Event("pass1.loop", j.unit, j.gerr)
			res.Degradations = append(res.Degradations, ev)
			lsp.Str("degraded", ev.Reason.String())
			continue
		}
		if j.pr == nil {
			// No dependence graph (the loop never ran) and no cached
			// partition: nothing to decide.
			rep.Decision = DecisionNotRun
			continue
		}
		pr := j.pr
		rep.Partition = pr
		rep.EstCost = pr.Cost
		rep.PreForkSize = pr.PreForkSize
		if pr.Degraded {
			// The anytime search stopped early but its best-so-far
			// partition is still valid; record the event and keep
			// the loop in play.
			res.Degradations = append(res.Degradations, resilience.DegradationEvent{
				Phase: "pass1.search", Unit: j.unit, Reason: pr.DegradeReason,
			})
			lsp.Str("degraded", pr.DegradeReason.String())
		}
		lsp.Int("vcs", int64(rep.VCCount)).
			Int("search_nodes", int64(pr.SearchNodes)).
			Int("cost_evals", int64(pr.CostEvals)).
			Int("dedup_hits", int64(pr.DedupHits)).
			Int("recomputes", int64(pr.Recomputes)).
			Int("search_workers", int64(pr.Workers)).
			Int("bound_updates", int64(pr.BoundUpdates)).
			Int("memo_shard_hits", int64(pr.MemoShardHits))
		order := j.order
		if order == nil && j.g != nil {
			order = j.g.Order
		}
		if plan != nil {
			if j.cached != nil {
				lsp.Int("incr_hit", 1)
			} else if j.fpOK && j.g != nil && len(j.g.Stmts) == len(j.stmts) {
				// Store the fresh result for the next compile. Degraded
				// results are rejected inside EncodeResult; a statement
				// enumeration mismatch (never expected: the fingerprint
				// and the graph flatten the same body order) skips the
				// store rather than risking a bad splice.
				if e := incr.EncodeResult(pr, j.g.Order, len(j.g.Stmts), j.unit, rep.VCCount); e != nil {
					opt.Incr.Put(j.key, e)
				}
			}
		}
		cands = append(cands, &candidateShim{rep: rep, loop: j.loop, order: order})
	}
	if plan != nil {
		pass1.Int("incr_hits", plan.hits).
			Int("incr_misses", plan.misses).
			Int("incr_invalidated", plan.invalidated)
	}
	pass1.Int("degraded", int64(len(res.Degradations))).End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Pass 2: final SPT loop selection (§6.1).
	pass2 := opt.Trace.Start("pass2")
	for _, c := range cands {
		c.rep.Decision = decide(c.rep, opt.Select, opt.DisableSelection)
		if c.rep.Decision == DecisionSelected {
			// Benefit: dynamic operations covered by speculative overlap.
			overlap := float64(c.rep.BodySize-c.rep.PreForkSize) - c.rep.EstCost
			if overlap < 0 {
				overlap = 0
			}
			c.rep.Benefit = c.rep.Iterations * overlap
		}
	}

	// Resolve overlapping candidates (nesting levels of a loop nest):
	// keep the higher-benefit loop.
	selected := resolveOverlaps(cands)
	pass2.Int("selected", int64(len(selected))).End()

	// Transformation: per function, collapse out of SSA, transform each
	// selected loop, then rebuild SSA and clean up.
	byFunc := make(map[*ir.Func][]*candidateShim)
	var funcOrder []*ir.Func
	for _, c := range selected {
		f := c.loop.Func
		if byFunc[f] == nil {
			funcOrder = append(funcOrder, f)
		}
		byFunc[f] = append(byFunc[f], c)
	}
	sptID := 0
	degradedIn := len(res.Degradations)
	tsp := opt.Trace.Start("transform")
	for _, f := range funcOrder {
		if err := ctx.Err(); err != nil {
			tsp.End()
			return nil, err
		}
		ssa.Collapse(f)
		for _, c := range byFunc[f] {
			pr := c.rep.Partition
			// A panic mid-transform can leave f half-rewritten; snapshot
			// first so the loop can be rolled back and demoted to serial
			// while the rest of the function transforms normally.
			sn := ir.Snapshot(f)
			var sr *transform.SPTResult
			gerr := resilience.Guard(func() error {
				if err := injectTransform.Fire(ctx); err != nil {
					return err
				}
				var err error
				sr, err = transform.TransformSPT(f, c.loop, pr.Move, pr.CopyConds, c.order, sptID)
				return err
			})
			if gerr != nil {
				sn.Restore()
				if ctx.Err() != nil {
					tsp.End()
					return nil, ctx.Err()
				}
				if resilience.ReasonFor(gerr) == resilience.ReasonError {
					// TransformSPT declined the loop (unsupported header
					// shape): the historical, non-exceptional outcome.
					c.rep.Decision = DecisionShape
					continue
				}
				c.rep.Decision = DecisionDegraded
				unit := fmt.Sprintf("%s/loop%d", f.Name, c.rep.LoopID)
				res.Degradations = append(res.Degradations, resilience.Event("pass2.transform", unit, gerr))
				continue
			}
			c.rep.Transformed = true
			c.rep.SPTLoopID = sptID
			res.SPT = append(res.SPT, &SPTLoop{ID: sptID, Func: f, Header: sr.Header, Report: c.rep})
			sptID++
		}
	}
	tsp.Int("spt_loops", int64(sptID)).Int("degraded", int64(len(res.Degradations)-degradedIn)).End()
	csp := opt.Trace.Start("cleanup")
	for _, f := range funcOrder {
		ir.PruneUnreachable(f)
		ir.ReorderRPO(f)
		dom := ssa.BuildDomTree(f)
		ssa.Build(f, dom)
		ssa.CopyProp(f)
		ssa.ConstFold(f)
		ssa.DeadCode(f)
		if err := ir.Verify(f); err != nil {
			csp.End()
			return nil, fmt.Errorf("after SPT transformation of %s: %w", f.Name, err)
		}
	}
	csp.End()
	for _, sl := range res.SPT {
		sl.Report.HasCalls = loopHasCalls(sl)
	}
	return res, nil
}

// loopHasCalls reports whether the loop's final body contains non-builtin
// calls, recomputed on the post-cleanup IR (Figure 19's outlier marker).
func loopHasCalls(sl *SPTLoop) bool {
	dom := ssa.BuildDomTree(sl.Func)
	nest := ssa.FindLoops(sl.Func, dom)
	nl := nest.ByHeader[sl.Header]
	if nl == nil {
		return false
	}
	for _, b := range nl.Blocks {
		for _, s := range b.Stmts {
			found := false
			s.Ops(func(o *ir.Op) {
				if o.Kind == ir.OpCall && !o.Builtin {
					found = true
				}
			})
			if found {
				return true
			}
		}
	}
	return false
}

// candidateShim carries one loop candidate through passes 1 and 2.
// order is the body-statement iteration order the transformation sorts
// by — from the dependence graph on a cold analysis, or rebuilt from the
// fingerprint enumeration on an incremental hit (the full graph is never
// built for clean loops).
type candidateShim struct {
	rep   *LoopReport
	loop  *ssa.Loop
	order map[*ir.Stmt]int
}

// pass1Job is one loop candidate's analysis unit: the inputs are built
// serially in program order (phase A), run writes the outputs — each job
// touches only its own fields, so a pool of workers can run jobs without
// locks — and the serial reduction (phase C) folds them into the
// compile result in loop order.
type pass1Job struct {
	rep    *LoopReport
	loop   *ssa.Loop
	notRun bool
	cfg    depgraph.Config
	unit   string
	// budget is this loop's pre-split share of a shared search budget
	// (nil: use partition.Options.Budget as passed).
	budget *resilience.Budget

	// Incremental-compilation state (set by planIncremental). fpOK marks
	// a fingerprintable loop; cached is the stored partition on a hit
	// (run skips the whole analysis), with order the rebuilt iteration
	// order; stmts is the fingerprint's body enumeration.
	fpOK   bool
	key    incr.Key
	stmts  []*ir.Stmt
	cached *partition.Result
	order  map[*ir.Stmt]int

	g          *depgraph.Graph
	pr         *partition.Result
	gerr       error
	begin, dur time.Duration
}

// run analyzes the job's loop: dependence graph, cost model, partition
// search. Isolated by resilience.Guard — a panic or injected fault
// demotes this loop to serial without aborting the compile (or, in the
// parallel pass 1, killing the worker pool).
func (j *pass1Job) run(ctx context.Context, popt partition.Options) {
	if j.notRun {
		return
	}
	if j.cached != nil {
		// Incremental hit: the stored partition replaces the whole
		// analysis — no dependence graph, no cost model, no search.
		j.pr = j.cached
		return
	}
	j.gerr = resilience.Guard(func() error {
		if err := injectPass1.Fire(ctx); err != nil {
			return err
		}
		j.g = depgraph.Build(j.loop, j.cfg)
		if j.g == nil {
			return nil
		}
		j.rep.VCCount = len(j.g.VCs)
		popt.BodySize = j.rep.BodySize
		popt.Context = ctx
		if j.budget != nil {
			popt.Budget = j.budget
		}
		j.pr = partition.Search(j.g, cost.Build(j.g), popt)
		return nil
	})
}

// incrPlan summarizes one compile's incremental planning, for the pass-1
// trace counters (incr_hits/incr_misses/incr_invalidated).
type incrPlan struct {
	hits, misses, invalidated int64
}

// planIncremental fingerprints every runnable candidate loop and marks
// the store hits so the pool skips their analysis. Returns nil when the
// cache is off or bypassed; bypass conditions are exactly the ones under
// which a splice could diverge from a cold compile: a shared search
// budget or a deadline makes anytime degradation depend on elapsed work,
// and armed fault-injection points must keep firing inside every loop's
// analysis.
func planIncremental(p *ir.Program, jobs []*pass1Job, opt Options, popt partition.Options, ctx context.Context, effects map[*ir.Func]*depgraph.Effects) *incrPlan {
	if opt.Incr == nil || popt.Budget != nil {
		return nil
	}
	if _, hasDeadline := ctx.Deadline(); hasDeadline {
		return nil
	}
	if len(resilience.Armed()) > 0 {
		return nil
	}
	fper := incr.NewFingerprinter(p, effects)
	optsKey := incr.OptionsKey(popt)
	plan := &incrPlan{}
	for _, j := range jobs {
		if j.notRun {
			continue
		}
		sum, stmts, ok := fper.Loop(j.loop, j.cfg, j.rep.BodySize)
		if !ok {
			continue
		}
		j.fpOK = true
		j.key = incr.Key{FP: sum, Level: int(opt.Level), Opts: optsKey}
		j.stmts = stmts
		e, st := opt.Incr.Lookup(j.key, j.unit)
		switch st {
		case incr.StatusHit:
			pr, ok := e.Decode(stmts, popt.Workers)
			if !ok {
				// The stored entry does not fit this body enumeration
				// (a store written by a different build, or damage the
				// checksum missed): recompile cold.
				plan.misses++
				continue
			}
			order := make(map[*ir.Stmt]int, len(stmts))
			for i, s := range stmts {
				order[s] = i
			}
			j.cached = pr
			j.order = order
			j.rep.VCCount = pr.VCCount
			plan.hits++
		case incr.StatusInvalidated:
			plan.invalidated++
			plan.misses++
		default:
			plan.misses++
		}
	}
	return plan
}

// runJobs drains the job list with a pool of worker goroutines.
func runJobs(jobs []*pass1Job, workers int, run func(*pass1Job)) {
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= len(jobs) {
					return
				}
				run(jobs[t])
			}
		}()
	}
	wg.Wait()
}

func decide(rep *LoopReport, sel SelectOptions, disableSelection bool) Decision {
	pr := rep.Partition
	if pr == nil {
		return DecisionNotRun
	}
	if pr.Skipped {
		return DecisionTooManyVCs
	}
	if disableSelection {
		return DecisionSelected
	}
	if rep.BodySize < sel.MinBodySize {
		return DecisionTooSmall
	}
	if rep.BodySize > sel.MaxBodySize {
		return DecisionTooLarge
	}
	if rep.AvgTrip < sel.MinIterCount || rep.Iterations < 64 {
		return DecisionLowTrip
	}
	if pr.Cost > sel.CostFraction*float64(rep.BodySize) {
		return DecisionHighCost
	}
	if pr.PreForkSize > int(sel.PreForkFraction*float64(rep.BodySize)) {
		return DecisionBigPreFork
	}
	return DecisionSelected
}

// resolveOverlaps keeps, among candidates sharing blocks (nesting levels
// of the same nest), only the highest-benefit selected loop.
func resolveOverlaps(cands []*candidateShim) []*candidateShim {
	var sel []*candidateShim
	for _, c := range cands {
		if c.rep.Decision == DecisionSelected {
			sel = append(sel, c)
		}
	}
	sort.SliceStable(sel, func(i, j int) bool { return sel[i].rep.Benefit > sel[j].rep.Benefit })
	var kept []*candidateShim
	for _, c := range sel {
		conflict := false
		for _, k := range kept {
			if c.loop.Func == k.loop.Func && (loopOverlaps(c.loop, k.loop)) {
				conflict = true
				break
			}
		}
		if conflict {
			c.rep.Decision = DecisionNested
			continue
		}
		kept = append(kept, c)
	}
	// Deterministic transformation order: program order.
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].rep.LoopID < kept[j].rep.LoopID })
	return kept
}

func loopOverlaps(a, b *ssa.Loop) bool {
	for _, blk := range a.Blocks {
		if b.Contains(blk) {
			return true
		}
	}
	return false
}

// applySVP scans loops for predictable critical recurrences and rewrites
// them (Figure 13). Returns whether anything changed.
func applySVP(p *ir.Program, prof *profile.Profiler, opt Options, applied map[*ir.Block]bool) bool {
	prof.Edge.Apply(p)
	effects := depgraph.ComputeEffects(p)
	changed := false
	for _, f := range p.Funcs {
		dom := ssa.BuildDomTree(f)
		nest := ssa.FindLoops(f, dom)
		if len(nest.Loops) == 0 {
			continue
		}
		pd := depgraph.BuildPostDom(f)
		cds := depgraph.ControlDeps(f, pd)
		var todo []*transform.SVPCandidate
		for _, l := range nest.Loops {
			if prof.Edge.Stats(l).Iterations == 0 {
				continue
			}
			cfg := depgraph.Config{UseProfile: true, Dep: prof.Dep, Effects: effects, CtrlDeps: cds, Dom: dom}
			g := depgraph.Build(l, cfg)
			if g == nil || len(g.VCs) == 0 {
				continue
			}
			// Only bother when the loop's no-reorder cost is material:
			// SVP is for critical dependences (§7.2).
			body := l.EffectiveBodySize()
			model := cost.Build(g)
			empty := model.Evaluate(nil)
			if empty <= opt.Select.CostFraction*float64(body) {
				continue
			}
			c := transform.FindSVPCandidate(l, g.VCs, g.ViolProb, prof.Value, opt.SVP)
			if c == nil {
				continue
			}
			// SVP is for dependences code reordering cannot remove
			// (§7.2: "x=bar(x) is a violation candidate which cannot be
			// moved to the pre-fork region"): skip candidates whose
			// closure already fits the pre-fork size budget.
			sizeLimit := int(opt.Select.PreForkFraction * float64(body))
			if transform.ClosureFits(g, c.Stmt, sizeLimit) {
				continue
			}
			// The prediction chain itself needs pre-fork budget, and the
			// loop must be large enough to ever be selected; otherwise
			// the instrumentation is pure overhead (the paper inserts SVP
			// only when the value-prediction overhead is acceptably low).
			if sizeLimit < 10 || body < opt.Select.MinBodySize {
				continue
			}
			// The prediction must actually rescue the loop: the residual
			// cost with the candidate neutralized must be selectable, and
			// the candidate must account for a large share of the cost.
			pre := map[*ir.Stmt]bool{c.Stmt: true}
			residual := model.Evaluate(pre)
			if empty-residual < 0.25*empty {
				continue
			}
			if residual > opt.Select.CostFraction*float64(body) {
				continue
			}
			todo = append(todo, c)
		}
		if len(todo) == 0 {
			continue
		}
		ssa.Collapse(f)
		any := false
		for _, c := range todo {
			if transform.ApplySVP(f, c) {
				applied[c.Loop.Header] = true
				any = true
			}
		}
		ir.PruneUnreachable(f)
		ir.ReorderRPO(f)
		d2 := ssa.BuildDomTree(f)
		ssa.Build(f, d2)
		if any {
			changed = true
		}
	}
	return changed
}

func runProfile(ctx context.Context, p *ir.Program, opt Options) (*profile.Profiler, error) {
	nests := make(map[*ir.Func]*ssa.LoopNest, len(p.Funcs))
	for _, f := range p.Funcs {
		dom := ssa.BuildDomTree(f)
		nests[f] = ssa.FindLoops(f, dom)
	}
	prof := profile.NewProfiler(p, nests)
	m := interp.New(p, opt.ProfileOut)
	m.Ctx = ctx
	m.Hooks = prof.Hooks()
	if opt.MaxProfileSteps > 0 {
		m.MaxSteps = opt.MaxProfileSteps
	}
	if _, err := m.Run(); err != nil {
		return nil, err
	}
	return prof, nil
}

func finishSSA(p *ir.Program, tk *trace.Track) {
	sp := tk.Start("ssa")
	buildSSAAll(p)
	sp.End()
	sp = tk.Start("cleanup")
	for _, f := range p.Funcs {
		ssa.CopyProp(f)
		ssa.ConstFold(f)
		ssa.DeadCode(f)
	}
	sp.End()
}

func buildSSAAll(p *ir.Program) {
	for _, f := range p.Funcs {
		dom := ssa.BuildDomTree(f)
		ssa.Build(f, dom)
	}
}
