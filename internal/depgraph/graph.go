package depgraph

import (
	"fmt"
	"sort"
	"strings"

	"sptc/internal/ir"
	"sptc/internal/profile"
	"sptc/internal/ssa"
)

// EdgeKind classifies dependence edges.
type EdgeKind int

// Edge kinds.
const (
	EdgeScalar EdgeKind = iota // SSA def-use, possibly through phis
	EdgeMemory                 // store -> load on the same global/array
	EdgeCall                   // dependence through a callee's side effects
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeScalar:
		return "scalar"
	case EdgeMemory:
		return "memory"
	case EdgeCall:
		return "call"
	}
	return "?"
}

// Edge is one true data dependence, annotated with its probability
// (§4.1: "a probability value of p on an edge W->R means for every N
// writes at W, only pN reads will access the same memory location at R").
type Edge struct {
	From  *ir.Stmt // producer (the write)
	To    *ir.Stmt // consumer statement
	ToOp  int      // op ID of the reading operation within To; -1 if unknown
	Cross bool     // cross-iteration (distance exactly 1)
	Prob  float64
	Kind  EdgeKind
}

// LegalEdge encodes a reordering constraint: if Later is moved into the
// pre-fork region, Earlier must be moved as well. This covers forward
// intra-iteration true dependences plus memory anti- and output
// dependences, which temporary-variable renaming cannot break.
type LegalEdge struct {
	Earlier *ir.Stmt
	Later   *ir.Stmt
}

// Graph is the annotated dependence graph of one loop.
type Graph struct {
	Loop *ssa.Loop
	Func *ir.Func

	Stmts []*ir.Stmt       // loop-body statements in iteration order
	Order map[*ir.Stmt]int // iteration-order index
	Block map[*ir.Stmt]*ir.Block

	True  []*Edge     // true dependences with probabilities (cost model)
	Legal []LegalEdge // reordering constraints

	// Ctrl maps each statement to the branch statements (within the
	// loop) it is control-dependent on, with the probability of reaching
	// the statement from that branch.
	Ctrl map[*ir.Stmt][]CtrlStmtDep

	VCs      []*ir.Stmt           // violation candidates (§4.2.1)
	ViolProb map[*ir.Stmt]float64 // violation probability per VC

	Iterations float64 // dynamic iteration count of the loop
}

// CtrlStmtDep is a statement-level control dependence.
type CtrlStmtDep struct {
	Branch *ir.Stmt // the StmtIf terminator
	Prob   float64
}

// Config controls graph construction.
type Config struct {
	// UseProfile selects profiled dependence probabilities (the paper's
	// "best" compilation); otherwise static type-based analysis with
	// affine disambiguation is used (the "basic" compilation).
	UseProfile bool
	Dep        *profile.DepProfile
	Effects    map[*ir.Func]*Effects
	// CtrlDeps are the function's block-level control dependences.
	CtrlDeps map[*ir.Block][]CtrlDep
	// Dom is the function's dominator tree (computed if nil); the scalar
	// motion rules need dominance information.
	Dom *ssa.DomTree
}

// Build constructs the dependence graph for loop l. Block frequencies and
// successor probabilities must already be annotated (from the edge
// profile or the static estimator). Returns nil if the loop never ran.
func Build(l *ssa.Loop, cfg Config) *Graph {
	g := &Graph{
		Loop:     l,
		Func:     l.Func,
		Order:    make(map[*ir.Stmt]int),
		Block:    make(map[*ir.Stmt]*ir.Block),
		Ctrl:     make(map[*ir.Stmt][]CtrlStmtDep),
		ViolProb: make(map[*ir.Stmt]float64),
	}
	g.Iterations = l.Header.Freq
	if g.Iterations <= 0 {
		return nil
	}

	for _, b := range BodyOrder(l) {
		for _, s := range b.Stmts {
			g.Order[s] = len(g.Stmts)
			g.Stmts = append(g.Stmts, s)
			g.Block[s] = b
		}
	}

	dom := cfg.Dom
	if dom == nil {
		dom = ssa.BuildDomTree(l.Func)
	}
	g.buildCtrl(cfg)
	g.buildScalarEdges(dom)
	g.buildMemoryEdges(cfg)
	g.collectVCs()
	return g
}

// BodyOrder returns the loop's blocks in iteration-execution order: a
// topological order of the loop body with every child loop contracted to
// a single unit (so an inner loop's blocks always precede blocks that
// execute after the inner loop exits, which plain reverse postorder does
// not guarantee once bodies are unrolled). Within a unit, child loops
// are ordered recursively. Blocks on exclusive branch arms are mutually
// unordered at run time, so any topological placement is sound for the
// order-based legality rules.
//
// Flattening the statements of these blocks yields exactly Graph.Stmts;
// the incremental-compilation fingerprint relies on that to enumerate a
// loop body without building the graph.
func BodyOrder(l *ssa.Loop) []*ir.Block {
	// Unit of a block: the outermost child loop containing it, or the
	// block itself. Child loops are disjoint at the top level.
	type unit struct {
		block *ir.Block // nil for a contracted child loop
		child *ssa.Loop
	}
	unitOf := make(map[*ir.Block]*unit)
	var units []*unit
	for _, c := range l.Children {
		u := &unit{child: c}
		units = append(units, u)
		for _, b := range c.Blocks {
			unitOf[b] = u
		}
	}
	for _, b := range l.Blocks {
		if unitOf[b] == nil {
			u := &unit{block: b}
			units = append(units, u)
			unitOf[b] = u
		}
	}

	succs := make(map[*unit][]*unit)
	for _, b := range l.Blocks {
		u := unitOf[b]
		for _, s := range b.Succs {
			if s == l.Header || !l.Contains(s) {
				continue
			}
			v := unitOf[s]
			if v != u {
				succs[u] = append(succs[u], v)
			}
		}
	}

	// DFS postorder from the header's unit, reversed.
	seen := make(map[*unit]bool)
	var post []*unit
	var dfs func(*unit)
	dfs = func(u *unit) {
		if seen[u] {
			return
		}
		seen[u] = true
		for _, v := range succs[u] {
			dfs(v)
		}
		post = append(post, u)
	}
	dfs(unitOf[l.Header])
	for _, u := range units {
		dfs(u) // pick up anything unreachable, defensively
	}

	var out []*ir.Block
	for i := len(post) - 1; i >= 0; i-- {
		u := post[i]
		if u.block != nil {
			out = append(out, u.block)
			continue
		}
		out = append(out, BodyOrder(u.child)...)
	}
	return out
}

func (g *Graph) inLoop(s *ir.Stmt) bool {
	_, ok := g.Order[s]
	return ok
}

func (g *Graph) freq(s *ir.Stmt) float64 {
	if b, ok := g.Block[s]; ok {
		return b.Freq
	}
	return 0
}

// execProb is the probability a statement executes in one iteration.
func (g *Graph) execProb(s *ir.Stmt) float64 {
	p := g.freq(s) / g.Iterations
	if p > 1 {
		return 1
	}
	return p
}

func (g *Graph) buildCtrl(cfg Config) {
	for _, s := range g.Stmts {
		b := g.Block[s]
		for _, cd := range cfg.CtrlDeps[b] {
			if !g.Loop.Contains(cd.Branch) || cd.Branch == g.Block[s] {
				continue
			}
			term := cd.Branch.Terminator()
			if term == nil || term.Kind != ir.StmtIf {
				continue
			}
			// The loop header's own exit test controls everything in the
			// body; it is not a reorderable statement, so skip it.
			if cd.Branch == g.Loop.Header {
				continue
			}
			g.Ctrl[s] = append(g.Ctrl[s], CtrlStmtDep{Branch: term, Prob: cd.Prob})
		}
	}
}

// phiSource is one resolved producer behind a chain of phis.
type phiSource struct {
	def   *ir.Stmt
	prob  float64
	cross bool
}

// resolveUses returns the in-loop producers of variable v, tracing through
// phi nodes. Crossing the analyzed loop's header phi via an in-loop
// argument yields a cross-iteration source.
func (g *Graph) resolveUses(defStmt map[*ir.Var]*ir.Stmt, v *ir.Var) []phiSource {
	var out []phiSource
	var walk func(v *ir.Var, prob float64, cross bool, seen map[*ir.Stmt]bool)
	walk = func(v *ir.Var, prob float64, cross bool, seen map[*ir.Stmt]bool) {
		d := defStmt[v]
		if d == nil || !g.inLoop(d) {
			return
		}
		if d.Kind != ir.StmtPhi {
			out = append(out, phiSource{def: d, prob: prob, cross: cross})
			return
		}
		if seen[d] {
			return
		}
		seen[d] = true
		blk := g.Block[d]
		isHeader := blk == g.Loop.Header
		var freqTotal float64
		for i := range d.PhiArgs {
			if i < len(blk.Preds) {
				freqTotal += blk.Preds[i].Freq
			}
		}
		for i, arg := range d.PhiArgs {
			if i >= len(blk.Preds) {
				break
			}
			pred := blk.Preds[i]
			fromInside := g.Loop.Contains(pred)
			argProb := 1.0
			if freqTotal > 0 {
				argProb = pred.Freq / freqTotal
			} else if len(d.PhiArgs) > 0 {
				argProb = 1 / float64(len(d.PhiArgs))
			}
			switch {
			case isHeader && !fromInside:
				// Initial value from outside the loop: not a dependence
				// on any in-loop statement for this loop level.
			case isHeader && fromInside:
				// Loop-carried: value produced by the previous iteration.
				walk(arg, prob*argProb, true, seen)
			default:
				walk(arg, prob*argProb, cross, seen)
			}
		}
		delete(seen, d)
	}
	walk(v, 1, false, make(map[*ir.Stmt]bool))
	return out
}

func (g *Graph) buildScalarEdges(dom *ssa.DomTree) {
	defStmt := make(map[*ir.Var]*ir.Stmt)
	for _, b := range g.Func.Blocks {
		for _, s := range b.Stmts {
			if d := s.Defs(); d != nil {
				defStmt[d] = s
			}
		}
	}

	for _, t := range g.Stmts {
		if t.Kind == ir.StmtPhi {
			continue
		}
		fT := g.freq(t)
		t.Ops(func(o *ir.Op) {
			if o.Kind != ir.OpUseVar {
				return
			}
			for _, src := range g.resolveUses(defStmt, o.Var) {
				if src.def == t && !src.cross {
					continue
				}
				var prob float64
				if src.cross {
					prob = src.prob * g.execProb(t)
				} else {
					fD := g.freq(src.def)
					r := 1.0
					if fD > 0 {
						r = fT / fD
					}
					if r > 1 {
						r = 1
					}
					prob = src.prob * r
				}
				if prob <= 0 {
					continue
				}
				g.True = append(g.True, &Edge{
					From: src.def, To: t, ToOp: o.ID,
					Cross: src.cross, Prob: prob, Kind: EdgeScalar,
				})
				if !src.cross {
					if g.Order[src.def] < g.Order[t] {
						g.Legal = append(g.Legal, LegalEdge{Earlier: src.def, Later: t})
					} else if src.def != t {
						// Intra-iteration dependence flowing backward in
						// body order (through an inner-loop back edge):
						// the pair must move together or not at all.
						g.Legal = append(g.Legal, LegalEdge{Earlier: src.def, Later: t})
						g.Legal = append(g.Legal, LegalEdge{Earlier: t, Later: src.def})
					}
				}
			}
		})
	}

	g.buildScalarMotionRules(dom)
}

// buildScalarMotionRules adds the legality edges that make the snapshot
// scheme of the SPT transformation sound (the paper's temporary-variable
// insertion, Figures 10/11):
//
//  1. Definitions of the same base variable move prefix-closed: a later
//     definition may move only if every earlier one moves.
//  2. A reader left behind in the post-fork region reads either the
//     iteration-entry snapshot (no moved definition precedes it) or the
//     per-definition snapshot of the last moved definition before it.
//     The latter is only well-defined when that definition — and every
//     definition between it and the reader — dominates the reader; when
//     domination fails, the reader is tied to the definition so they
//     move together.
func (g *Graph) buildScalarMotionRules(dom *ssa.DomTree) {
	defsOf := make(map[*ir.Var][]*ir.Stmt)
	for _, s := range g.Stmts {
		if s.Kind == ir.StmtAssign && s.Dst != nil {
			base := s.Dst.Base
			defsOf[base] = append(defsOf[base], s)
		}
	}
	for base, defs := range defsOf {
		sort.Slice(defs, func(i, j int) bool { return g.Order[defs[i]] < g.Order[defs[j]] })
		// Rule 1: prefix-closed definitions.
		for i := 1; i < len(defs); i++ {
			g.Legal = append(g.Legal, LegalEdge{Earlier: defs[i-1], Later: defs[i]})
		}
		if len(defs) == 0 {
			continue
		}
		firstDef := g.Order[defs[0]]
		// Rule 2: readers after at least one definition.
		for _, r := range g.Stmts {
			if r.Kind == ir.StmtPhi {
				continue
			}
			ro, ok := g.Order[r]
			if !ok || ro <= firstDef {
				continue // readers before every definition use the entry snapshot
			}
			reads := false
			r.Ops(func(o *ir.Op) {
				if o.Kind == ir.OpUseVar && o.Var.Base == base {
					reads = true
				}
			})
			if !reads {
				continue
			}
			rb := g.Block[r]
			// Walk candidate "last moved definition" positions from the
			// last definition before r downward, accumulating whether
			// every definition from that point to r dominates r.
			suffixDominates := true
			for i := len(defs) - 1; i >= 0; i-- {
				d := defs[i]
				if g.Order[d] >= ro || d == r {
					continue
				}
				if !dom.Dominates(g.Block[d], rb) {
					suffixDominates = false
				}
				if !suffixDominates {
					g.Legal = append(g.Legal, LegalEdge{Earlier: r, Later: d})
				}
			}
		}
	}
}

// memRef is one memory access site within the loop.
type memRef struct {
	stmt  *ir.Stmt
	op    *ir.Op // the load op, or nil for the store itself
	g     *ir.Global
	index []*ir.Op // nil for scalar globals
	write bool
	call  bool // access through a callee (via effect summary)
}

func (g *Graph) memRefs(cfg Config) []memRef {
	var refs []memRef
	for _, s := range g.Stmts {
		switch s.Kind {
		case ir.StmtStoreG:
			refs = append(refs, memRef{stmt: s, g: s.G, write: true})
		case ir.StmtStoreA:
			refs = append(refs, memRef{stmt: s, g: s.G, index: s.Index, write: true})
		}
		s.Ops(func(o *ir.Op) {
			switch o.Kind {
			case ir.OpLoadG:
				refs = append(refs, memRef{stmt: s, op: o, g: o.G})
			case ir.OpLoadA:
				refs = append(refs, memRef{stmt: s, op: o, g: o.G, index: o.Args})
			case ir.OpCall:
				if o.Builtin {
					return
				}
				eff := cfg.Effects[o.Func]
				if eff == nil {
					return
				}
				for gl := range eff.Reads {
					refs = append(refs, memRef{stmt: s, op: o, g: gl, call: true})
				}
				for gl := range eff.Writes {
					refs = append(refs, memRef{stmt: s, op: o, g: gl, call: true, write: true})
				}
			}
		})
	}
	return refs
}

func (g *Graph) buildMemoryEdges(cfg Config) {
	refs := g.memRefs(cfg)

	// Legality edges are always static and conservative: within one
	// iteration, accesses to the same global must not be reordered unless
	// affine analysis proves disjointness. (Scalar renaming cannot break
	// memory anti/output dependences.)
	var iv *ir.Var
	var step int64
	if ind := ssa.Induction(g.Loop); ind != nil {
		iv, step = ind.IV, ind.Step
	}

	mayAliasIntra := func(a, b memRef) bool {
		if a.g != b.g {
			return false
		}
		if a.call || b.call || a.index == nil || b.index == nil {
			return true
		}
		same, _, unknown := StaticArrayRelation(a.index, b.index, iv, step)
		return same || unknown
	}

	// sameInner reports whether two statements share a descendant loop of
	// the analyzed loop; such pairs can alias across inner-loop iterations
	// in either body order, so they must move together.
	var descendants []*ssaLoopRef
	collectDescendants(g.Loop, &descendants)
	sameInner := func(a, b *ir.Stmt) bool {
		ba, bb := g.Block[a], g.Block[b]
		for _, d := range descendants {
			if d.contains(ba) && d.contains(bb) {
				return true
			}
		}
		return false
	}

	for i, a := range refs {
		for j, b := range refs {
			if i == j || (!a.write && !b.write) {
				continue
			}
			if g.Order[a.stmt] >= g.Order[b.stmt] || a.stmt == b.stmt {
				continue
			}
			if mayAliasIntra(a, b) {
				g.Legal = append(g.Legal, LegalEdge{Earlier: a.stmt, Later: b.stmt})
				if sameInner(a.stmt, b.stmt) {
					g.Legal = append(g.Legal, LegalEdge{Earlier: b.stmt, Later: a.stmt})
				}
			}
		}
	}

	// Ordered I/O: print statements and IO-calling statements keep their
	// mutual order.
	var ioStmts []*ir.Stmt
	seenIO := make(map[*ir.Stmt]bool)
	for _, s := range g.Stmts {
		s.Ops(func(o *ir.Op) {
			if o.Kind != ir.OpCall || seenIO[s] {
				return
			}
			if o.Builtin && o.Callee == "print" {
				seenIO[s] = true
			} else if !o.Builtin {
				if eff := cfg.Effects[o.Func]; eff != nil && eff.IO {
					seenIO[s] = true
				}
			}
		})
		if seenIO[s] {
			ioStmts = append(ioStmts, s)
		}
	}
	for i := 1; i < len(ioStmts); i++ {
		g.Legal = append(g.Legal, LegalEdge{Earlier: ioStmts[i-1], Later: ioStmts[i]})
	}

	// True dependences for the cost model.
	if cfg.UseProfile && cfg.Dep != nil {
		g.buildProfiledMemEdges(cfg)
		return
	}
	g.buildStaticMemEdges(refs, iv, step)
}

func (g *Graph) buildProfiledMemEdges(cfg Config) {
	keys := cfg.Dep.LoopPairs(g.Loop)
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].W.ID != keys[j].W.ID {
			return keys[i].W.ID < keys[j].W.ID
		}
		return keys[i].R.ID < keys[j].R.ID
	})
	for _, k := range keys {
		// Pairs whose endpoints are not loop-body statements arise from
		// dependences through callees; the paper's framework could not
		// attribute those to call sites either (its noted cost-model
		// weakness, §8/Figure 19), so they are skipped here as well.
		if !g.inLoop(k.W) || !g.inLoop(k.R) {
			continue
		}
		c := cfg.Dep.Pairs[k]
		if p := cfg.Dep.IntraProb(k.W, k.R, g.Loop); p > 0 && g.Order[k.W] < g.Order[k.R] {
			g.True = append(g.True, &Edge{From: k.W, To: k.R, ToOp: c.ROp, Prob: p, Kind: EdgeMemory})
		}
		if p := cfg.Dep.CrossProb(k.W, k.R, g.Loop); p > 0 {
			g.True = append(g.True, &Edge{From: k.W, To: k.R, ToOp: c.ROp, Cross: true, Prob: p, Kind: EdgeMemory})
		}
	}
}

func (g *Graph) buildStaticMemEdges(refs []memRef, iv *ir.Var, step int64) {
	for _, w := range refs {
		if !w.write {
			continue
		}
		for _, r := range refs {
			if r.write && r.op == nil {
				continue // store-store handled by legality only
			}
			if !w.write || (r.stmt == w.stmt && r.op == nil) {
				continue
			}
			// Only store -> load true dependences here; r must read.
			isRead := !r.write || r.call
			if !isRead || w.g != r.g {
				continue
			}
			kind := EdgeMemory
			if w.call || r.call {
				kind = EdgeCall
			}

			sameIter, nextIter, unknown := false, false, true
			if !w.call && !r.call {
				if w.index == nil && r.index == nil {
					sameIter, nextIter, unknown = true, true, false
				} else if w.index != nil && r.index != nil {
					sameIter, nextIter, unknown = StaticArrayRelation(w.index, r.index, iv, step)
				}
			}
			if unknown {
				sameIter, nextIter = true, true
			}

			toOp := -1
			if r.op != nil {
				toOp = r.op.ID
			}
			wProb := g.execProb(w.stmt)
			if sameIter && g.Order[w.stmt] < g.Order[r.stmt] {
				p := 1.0
				if fw := g.freq(w.stmt); fw > 0 {
					p = g.freq(r.stmt) / fw
				}
				if p > 1 {
					p = 1
				}
				g.True = append(g.True, &Edge{From: w.stmt, To: r.stmt, ToOp: toOp, Prob: p, Kind: kind})
			}
			if nextIter {
				p := g.execProb(r.stmt)
				// A write that always re-executes before the read in the
				// same iteration kills the cross-iteration value.
				if sameIter && g.Order[w.stmt] < g.Order[r.stmt] {
					p *= 1 - wProb
				}
				if p > 0 {
					g.True = append(g.True, &Edge{From: w.stmt, To: r.stmt, ToOp: toOp, Cross: true, Prob: p, Kind: kind})
				}
			}
		}
	}
}

// ssaLoopRef is a light view over ssa.Loop used for containment tests.
type ssaLoopRef struct {
	blocks map[*ir.Block]bool
}

func (r *ssaLoopRef) contains(b *ir.Block) bool { return r.blocks[b] }

func collectDescendants(l *ssa.Loop, out *[]*ssaLoopRef) {
	for _, c := range l.Children {
		m := make(map[*ir.Block]bool, len(c.Blocks))
		for _, b := range c.Blocks {
			m[b] = true
		}
		*out = append(*out, &ssaLoopRef{blocks: m})
		collectDescendants(c, out)
	}
}

func (g *Graph) collectVCs() {
	seen := make(map[*ir.Stmt]bool)
	for _, e := range g.True {
		if !e.Cross || seen[e.From] {
			continue
		}
		seen[e.From] = true
		g.VCs = append(g.VCs, e.From)
		g.ViolProb[e.From] = g.execProb(e.From)
	}
	sort.Slice(g.VCs, func(i, j int) bool { return g.Order[g.VCs[i]] < g.Order[g.VCs[j]] })
}

// String renders the graph for debugging.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "depgraph for %s (%d stmts, %.0f iters)\n", g.Loop, len(g.Stmts), g.Iterations)
	for _, e := range g.True {
		arrow := "->"
		if e.Cross {
			arrow = "=>"
		}
		fmt.Fprintf(&b, "  s%d %s s%d (op %d) p=%.3f %s\n", e.From.ID, arrow, e.To.ID, e.ToOp, e.Prob, e.Kind)
	}
	for _, vc := range g.VCs {
		fmt.Fprintf(&b, "  VC s%d vp=%.3f: %s\n", vc.ID, g.ViolProb[vc], ir.FormatStmt(vc))
	}
	return b.String()
}
