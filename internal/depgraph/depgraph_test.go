package depgraph_test

import (
	"testing"

	"sptc/internal/depgraph"
	"sptc/internal/interp"
	"sptc/internal/ir"
	"sptc/internal/parser"
	"sptc/internal/profile"
	"sptc/internal/sem"
	"sptc/internal/ssa"
)

// compileLoop builds src, runs SSA, profiles it, and returns the
// dependence graph of the first loop in main plus supporting structures.
func compileLoop(t *testing.T, src string, useProfile bool) (*depgraph.Graph, *ssa.Loop, *profile.Profiler) {
	t.Helper()
	p, err := parser.Parse("t.spl", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(p)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	prog, err := ir.Build(info)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	nests := make(map[*ir.Func]*ssa.LoopNest)
	for _, f := range prog.Funcs {
		dom := ssa.BuildDomTree(f)
		ssa.Build(f, dom)
		nests[f] = ssa.FindLoops(f, ssa.BuildDomTree(f))
	}
	prof := profile.NewProfiler(prog, nests)
	m := interp.New(prog, discard{})
	m.Hooks = prof.Hooks()
	if _, err := m.Run(); err != nil {
		t.Fatalf("profile run: %v", err)
	}
	prof.Edge.Apply(prog)

	f := prog.Main
	nest := nests[f]
	if len(nest.Loops) == 0 {
		t.Fatal("no loops")
	}
	l := nest.Loops[0]
	pd := depgraph.BuildPostDom(f)
	cfg := depgraph.Config{
		UseProfile: useProfile,
		Dep:        prof.Dep,
		Effects:    depgraph.ComputeEffects(prog),
		CtrlDeps:   depgraph.ControlDeps(f, pd),
	}
	g := depgraph.Build(l, cfg)
	if g == nil {
		t.Fatal("graph is nil (loop never ran?)")
	}
	return g, l, prof
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestInductionIsViolationCandidate(t *testing.T) {
	// The Figure 2 shape: the only carried dependence is i = i + 1.
	g, _, _ := compileLoop(t, `
var a int[64];
func main() {
	var i int = 0;
	while (i < 64) {
		a[i] = i * 3;
		i = i + 1;
	}
	print(a[5]);
}
`, true)
	if len(g.VCs) != 1 {
		t.Fatalf("VCs = %d, want 1 (the induction update)\n%s", len(g.VCs), g)
	}
	vc := g.VCs[0]
	if vc.Kind != ir.StmtAssign || vc.Dst.Base.Name != "i" {
		t.Errorf("violation candidate is %s, want the i update", ir.FormatStmt(vc))
	}
	if vp := g.ViolProb[vc]; vp < 0.95 {
		t.Errorf("unconditional update should have violation probability ~1, got %.2f", vp)
	}
}

func TestConditionalUpdateViolationProbability(t *testing.T) {
	// best-update pattern: the carried write executes rarely.
	g, _, _ := compileLoop(t, `
var data int[256];
var best int;
func main() {
	var i int;
	for (i = 0; i < 256; i++) {
		data[i] = (i * 2654435761) & 1023;
	}
	best = -1;
	for (i = 0; i < 256; i++) {
		if (data[i] > 1000 + (i & 7)) {
			best = data[i];
		}
	}
	print(best);
}
`, true)
	var bestVC *ir.Stmt
	for _, vc := range g.VCs {
		if vc.Kind == ir.StmtStoreG && vc.G.Name == "best" {
			bestVC = vc
		}
	}
	if bestVC == nil {
		t.Skip("best store not carried in the first loop (loop ordering)")
	}
	if vp := g.ViolProb[bestVC]; vp > 0.5 {
		t.Errorf("rare conditional store has violation probability %.2f", vp)
	}
}

func TestProfiledVsStaticMemoryDeps(t *testing.T) {
	src := `
var table int[512];
var src_a int[512];
func main() {
	var i int;
	for (i = 0; i < 512; i++) {
		src_a[i] = (i * 2654435761) & 511;
	}
	for (i = 0; i < 512; i++) {
		table[src_a[i]] = table[src_a[i]] + 1;
	}
	print(table[0]);
}
`
	// Static: the indirect store must produce a cross-iteration edge with
	// certainty; profiled: collisions at distance one are rare.
	countCross := func(useProfile bool) (int, float64) {
		g, _, _ := compileLoop(t, src, useProfile)
		// Graph of the FIRST loop is affine; we need the second. Use the
		// nest directly instead.
		_ = g
		return 0, 0
	}
	_ = countCross
	// Build both graphs for the second loop explicitly.
	for _, useProfile := range []bool{false, true} {
		g := secondLoopGraph(t, src, useProfile)
		var maxCross float64
		for _, e := range g.True {
			if e.Cross && e.Kind == depgraph.EdgeMemory {
				if e.Prob > maxCross {
					maxCross = e.Prob
				}
			}
		}
		if useProfile && maxCross > 0.2 {
			t.Errorf("profiled cross probability %.3f should be small", maxCross)
		}
		if !useProfile && maxCross < 0.8 {
			t.Errorf("static cross probability %.3f should be conservative (~1)", maxCross)
		}
	}
}

func secondLoopGraph(t *testing.T, src string, useProfile bool) *depgraph.Graph {
	t.Helper()
	p, _ := parser.Parse("t.spl", src)
	info, _ := sem.Check(p)
	prog, _ := ir.Build(info)
	nests := make(map[*ir.Func]*ssa.LoopNest)
	for _, f := range prog.Funcs {
		dom := ssa.BuildDomTree(f)
		ssa.Build(f, dom)
		nests[f] = ssa.FindLoops(f, ssa.BuildDomTree(f))
	}
	prof := profile.NewProfiler(prog, nests)
	m := interp.New(prog, discard{})
	m.Hooks = prof.Hooks()
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	prof.Edge.Apply(prog)
	f := prog.Main
	nest := nests[f]
	if len(nest.Loops) < 2 {
		t.Fatal("need two loops")
	}
	pd := depgraph.BuildPostDom(f)
	cfg := depgraph.Config{
		UseProfile: useProfile,
		Dep:        prof.Dep,
		Effects:    depgraph.ComputeEffects(prog),
		CtrlDeps:   depgraph.ControlDeps(f, pd),
	}
	g := depgraph.Build(nest.Loops[1], cfg)
	if g == nil {
		t.Fatal("nil graph")
	}
	return g
}

func TestLegalityEdgesAreForward(t *testing.T) {
	g, _, _ := compileLoop(t, `
var a int[128];
var s int;
func main() {
	var i int;
	for (i = 0; i < 128; i++) {
		var x int = a[i & 127];
		a[(i + 1) & 127] = x + 1;
		s += x;
	}
	print(s);
}
`, true)
	for _, e := range g.Legal {
		if _, ok := g.Order[e.Earlier]; !ok {
			t.Errorf("legality edge references out-of-loop statement s%d", e.Earlier.ID)
		}
		if _, ok := g.Order[e.Later]; !ok {
			t.Errorf("legality edge references out-of-loop statement s%d", e.Later.ID)
		}
	}
}

func TestControlDeps(t *testing.T) {
	g, _, _ := compileLoop(t, `
var s int;
func main() {
	var i int;
	for (i = 0; i < 64; i++) {
		if (i % 3 == 0) {
			s = s + i;
		}
	}
	print(s);
}
`, true)
	// The store to s is control-dependent on exactly one in-loop branch.
	var store *ir.Stmt
	for _, st := range g.Stmts {
		if st.Kind == ir.StmtStoreG {
			store = st
		}
	}
	if store == nil {
		t.Fatal("no store found")
	}
	cds := g.Ctrl[store]
	if len(cds) != 1 {
		t.Fatalf("store has %d control deps, want 1", len(cds))
	}
	if cds[0].Branch.Kind != ir.StmtIf {
		t.Error("control dep should be a branch statement")
	}
	if cds[0].Prob <= 0 || cds[0].Prob > 1 {
		t.Errorf("branch probability %.2f out of range", cds[0].Prob)
	}
}

func TestEffectsSummaries(t *testing.T) {
	p, _ := parser.Parse("t.spl", `
var g1 int;
var g2 int;
var arr int[4];
func reader() int { return g1; }
func writer() { g2 = 1; }
func both() { writer(); arr[0] = reader(); }
func pure(x int) int { return x * 2; }
func prints() { print(1); }
func recur(n int) int { if (n <= 0) { return g1; } return recur(n - 1); }
func main() { both(); prints(); print(pure(2), recur(3)); }
`)
	info, _ := sem.Check(p)
	prog, _ := ir.Build(info)
	eff := depgraph.ComputeEffects(prog)

	g1 := prog.GlobalByName("g1")
	g2 := prog.GlobalByName("g2")
	arr := prog.GlobalByName("arr")

	if e := eff[prog.FuncByName("reader")]; !e.MayRead(g1) || e.MayWrite(g1) {
		t.Error("reader summary wrong")
	}
	if e := eff[prog.FuncByName("writer")]; !e.MayWrite(g2) || e.MayRead(g2) {
		t.Error("writer summary wrong")
	}
	if e := eff[prog.FuncByName("both")]; !e.MayWrite(g2) || !e.MayRead(g1) || !e.MayWrite(arr) {
		t.Error("transitive summary wrong")
	}
	if e := eff[prog.FuncByName("pure")]; !e.Pure() {
		t.Error("pure function misclassified")
	}
	if e := eff[prog.FuncByName("prints")]; !e.IO || e.Pure() {
		t.Error("print should mark IO")
	}
	if e := eff[prog.FuncByName("recur")]; !e.MayRead(g1) {
		t.Error("recursive summary should converge and read g1")
	}
}

func TestAffineDisambiguation(t *testing.T) {
	f := &ir.Func{Name: "t"}
	iv := f.NewVar("i", ir.ValInt)
	use := func() *ir.Op {
		o := f.NewOp(ir.OpUseVar, ir.ValInt)
		o.Var = iv
		return o
	}
	cnst := func(c int64) *ir.Op {
		o := f.NewOp(ir.OpConstInt, ir.ValInt)
		o.ConstI = c
		return o
	}
	plus := func(x, y *ir.Op) *ir.Op {
		o := f.NewOp(ir.OpBin, ir.ValInt)
		o.Bin = ir.BinAdd
		o.Args = []*ir.Op{x, y}
		return o
	}

	// a[i] vs a[i]: same iteration only.
	same, next, unknown := depgraph.StaticArrayRelation([]*ir.Op{use()}, []*ir.Op{use()}, iv, 1)
	if !same || next || unknown {
		t.Errorf("a[i]/a[i]: %v %v %v", same, next, unknown)
	}
	// a[i+1] vs a[i] with step 1: store reaches the next iteration.
	same, next, unknown = depgraph.StaticArrayRelation([]*ir.Op{plus(use(), cnst(1))}, []*ir.Op{use()}, iv, 1)
	if same || !next || unknown {
		t.Errorf("a[i+1]/a[i]: %v %v %v", same, next, unknown)
	}
	// a[i+2] vs a[i] with step 1: distance two, not violation-relevant.
	same, next, unknown = depgraph.StaticArrayRelation([]*ir.Op{plus(use(), cnst(2))}, []*ir.Op{use()}, iv, 1)
	if same || next || unknown {
		t.Errorf("a[i+2]/a[i]: %v %v %v", same, next, unknown)
	}
	// Non-affine index: unknown.
	mul := f.NewOp(ir.OpBin, ir.ValInt)
	mul.Bin = ir.BinMul
	mul.Args = []*ir.Op{use(), cnst(3)}
	_, _, unknown = depgraph.StaticArrayRelation([]*ir.Op{mul}, []*ir.Op{use()}, iv, 1)
	if !unknown {
		t.Error("a[3i]/a[i] should be unknown")
	}
}
