// Package depgraph builds the per-loop annotated data-dependence graphs
// the misspeculation cost model consumes (§4.1 of the paper): true
// dependences (intra- and cross-iteration) annotated with probabilities,
// legality edges for code reordering (true/anti/output), and control
// dependences used to copy partial conditional statements into the
// pre-fork region (Figure 12).
package depgraph

import "sptc/internal/ir"

// PostDom holds immediate post-dominator information for one function.
// A virtual exit post-dominates every return block.
type PostDom struct {
	// IPdom maps a block to its immediate post-dominator; nil means the
	// virtual exit.
	IPdom map[*ir.Block]*ir.Block

	rpoNum map[*ir.Block]int
}

// BuildPostDom computes post-dominators on the reverse CFG using the
// iterative Cooper-Harvey-Kennedy scheme with a virtual exit node.
func BuildPostDom(f *ir.Func) *PostDom {
	pd := &PostDom{IPdom: make(map[*ir.Block]*ir.Block), rpoNum: make(map[*ir.Block]int)}

	// Exits: blocks with no successors (ret-terminated).
	var exits []*ir.Block
	for _, b := range f.Blocks {
		if len(b.Succs) == 0 {
			exits = append(exits, b)
		}
	}

	// Reverse postorder on the reverse CFG, starting from exits.
	seen := make(map[*ir.Block]bool)
	var post []*ir.Block
	var dfs func(*ir.Block)
	dfs = func(b *ir.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, p := range b.Preds {
			dfs(p)
		}
		post = append(post, b)
	}
	for _, e := range exits {
		dfs(e)
	}
	// Blocks not reaching an exit (infinite loops) are processed last.
	for _, b := range f.Blocks {
		if !seen[b] {
			dfs(b)
		}
	}

	var rpo []*ir.Block
	for i := len(post) - 1; i >= 0; i-- {
		rpo = append(rpo, post[i])
	}
	for i, b := range rpo {
		pd.rpoNum[b] = i
	}

	// idom on reverse graph; the virtual exit is represented by nil, and
	// exit blocks have the virtual exit as their immediate post-dominator.
	processed := make(map[*ir.Block]bool)
	for _, e := range exits {
		pd.IPdom[e] = nil
		processed[e] = true
	}
	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if len(b.Succs) == 0 {
				continue
			}
			var cand *ir.Block
			candSet := false
			for _, s := range b.Succs {
				if !processed[s] {
					continue
				}
				if !candSet {
					cand, candSet = s, true
				} else {
					cand = pd.intersect(cand, s, processed)
					// nil result means the virtual exit.
					if cand == nil {
						break
					}
				}
			}
			if !candSet {
				continue
			}
			old, had := pd.IPdom[b]
			if !had || old != cand || !processed[b] {
				if !had || old != cand {
					pd.IPdom[b] = cand
					changed = true
				}
				if !processed[b] {
					processed[b] = true
					changed = true
				}
			}
		}
	}
	return pd
}

// intersect walks up the post-dominator tree; nil represents the virtual
// exit, which is an ancestor of everything.
func (pd *PostDom) intersect(a, b *ir.Block, processed map[*ir.Block]bool) *ir.Block {
	for a != b {
		if a == nil || b == nil {
			return nil
		}
		for a != nil && b != nil && pd.rpoNum[a] > pd.rpoNum[b] {
			a = pd.IPdom[a]
		}
		for a != nil && b != nil && pd.rpoNum[b] > pd.rpoNum[a] {
			b = pd.IPdom[b]
		}
	}
	return a
}

// PostDominates reports whether a post-dominates b (reflexively). The
// virtual exit (nil) post-dominates everything.
func (pd *PostDom) PostDominates(a, b *ir.Block) bool {
	if a == nil {
		return true
	}
	for b != nil {
		if a == b {
			return true
		}
		next, ok := pd.IPdom[b]
		if !ok {
			return false
		}
		b = next
	}
	return false
}

// CtrlDep records that a block's execution is controlled by a branch.
type CtrlDep struct {
	Branch *ir.Block // block whose terminator is the controlling StmtIf
	// Prob is the probability the controlled block executes given the
	// branch executes (the taken-edge probability toward it).
	Prob float64
}

// ControlDeps computes, for every block, the set of branches it is
// control-dependent on (Ferrante et al.): b is control-dependent on edge
// (p -> s) iff b post-dominates s but does not post-dominate p.
func ControlDeps(f *ir.Func, pd *PostDom) map[*ir.Block][]CtrlDep {
	out := make(map[*ir.Block][]CtrlDep)
	for _, p := range f.Blocks {
		if len(p.Succs) < 2 {
			continue
		}
		for i, s := range p.Succs {
			// Walk the post-dominator tree from s up to (but excluding)
			// ipdom(p); every node on the way is control-dependent on p.
			stop := pd.IPdom[p]
			cur := s
			for cur != nil && cur != stop {
				prob := 0.5
				if i < len(p.SuccProb) {
					prob = p.SuccProb[i]
				}
				out[cur] = append(out[cur], CtrlDep{Branch: p, Prob: prob})
				cur = pd.IPdom[cur]
			}
		}
	}
	return out
}
