package depgraph

import "sptc/internal/ir"

// Effects summarizes the memory side effects of a function, transitively
// including its callees. It is the type-based interprocedural summary the
// static (basic-compilation) dependence analysis relies on; the paper's
// ORC implementation similarly used type-based alias analysis.
type Effects struct {
	Reads  map[*ir.Global]bool
	Writes map[*ir.Global]bool
	IO     bool // calls print (ordered side effect)
	// Unknown marks recursion cycles that could not be fully resolved;
	// treated as touching everything.
	Unknown bool
}

// MayRead reports whether the function may read g.
func (e *Effects) MayRead(g *ir.Global) bool { return e.Unknown || e.Reads[g] }

// MayWrite reports whether the function may write g.
func (e *Effects) MayWrite(g *ir.Global) bool { return e.Unknown || e.Writes[g] }

// Pure reports whether the function has no memory or I/O side effects.
func (e *Effects) Pure() bool {
	return !e.Unknown && !e.IO && len(e.Writes) == 0
}

// ComputeEffects builds effect summaries for every function, resolving
// call cycles by iterating to a fixed point.
func ComputeEffects(p *ir.Program) map[*ir.Func]*Effects {
	out := make(map[*ir.Func]*Effects, len(p.Funcs))
	for _, f := range p.Funcs {
		out[f] = &Effects{Reads: make(map[*ir.Global]bool), Writes: make(map[*ir.Global]bool)}
	}

	local := func(f *ir.Func, e *Effects) bool {
		changed := false
		setR := func(g *ir.Global) {
			if !e.Reads[g] {
				e.Reads[g] = true
				changed = true
			}
		}
		setW := func(g *ir.Global) {
			if !e.Writes[g] {
				e.Writes[g] = true
				changed = true
			}
		}
		for _, b := range f.Blocks {
			for _, s := range b.Stmts {
				if s.Kind == ir.StmtStoreG || s.Kind == ir.StmtStoreA {
					setW(s.G)
				}
				s.Ops(func(o *ir.Op) {
					switch o.Kind {
					case ir.OpLoadG, ir.OpLoadA:
						setR(o.G)
					case ir.OpCall:
						if o.Builtin {
							if o.Callee == "print" && !e.IO {
								e.IO = true
								changed = true
							}
							return
						}
						callee := out[o.Func]
						if callee == nil {
							if !e.Unknown {
								e.Unknown = true
								changed = true
							}
							return
						}
						for g := range callee.Reads {
							setR(g)
						}
						for g := range callee.Writes {
							setW(g)
						}
						if callee.IO && !e.IO {
							e.IO = true
							changed = true
						}
						if callee.Unknown && !e.Unknown {
							e.Unknown = true
							changed = true
						}
					}
				})
			}
		}
		return changed
	}

	for {
		changed := false
		for _, f := range p.Funcs {
			if local(f, out[f]) {
				changed = true
			}
		}
		if !changed {
			return out
		}
	}
}

// AffineIndex describes an array index of the form iv + offset where iv
// is a loop induction variable (base version), or a constant.
type AffineIndex struct {
	IV     *ir.Var // nil for a pure constant
	Offset int64
	OK     bool
}

// AnalyzeIndex tries to express the index operation as iv + c for the
// given induction variable base. Accepts iv, iv+c, iv-c, c+iv, and plain
// constants.
func AnalyzeIndex(o *ir.Op, iv *ir.Var) AffineIndex {
	switch o.Kind {
	case ir.OpConstInt:
		return AffineIndex{Offset: o.ConstI, OK: true}
	case ir.OpUseVar:
		if o.Var.Base == iv {
			return AffineIndex{IV: iv, OK: true}
		}
	case ir.OpBin:
		x, y := o.Args[0], o.Args[1]
		switch o.Bin {
		case ir.BinAdd:
			if x.Kind == ir.OpUseVar && x.Var.Base == iv && y.Kind == ir.OpConstInt {
				return AffineIndex{IV: iv, Offset: y.ConstI, OK: true}
			}
			if y.Kind == ir.OpUseVar && y.Var.Base == iv && x.Kind == ir.OpConstInt {
				return AffineIndex{IV: iv, Offset: x.ConstI, OK: true}
			}
		case ir.BinSub:
			if x.Kind == ir.OpUseVar && x.Var.Base == iv && y.Kind == ir.OpConstInt {
				return AffineIndex{IV: iv, Offset: -y.ConstI, OK: true}
			}
		}
	}
	return AffineIndex{}
}

// StaticArrayRelation classifies the iteration distance between a store
// and a load of the same array using affine index analysis against the
// loop induction variable stepping by step.
//
// Returns (sameIter, nextIter, unknown): whether the pair may alias within
// one iteration, whether the store may reach the load one iteration later,
// or whether nothing could be proven (conservative: both possible).
func StaticArrayRelation(storeIx, loadIx []*ir.Op, iv *ir.Var, step int64) (sameIter, nextIter, unknown bool) {
	if iv == nil || step == 0 || len(storeIx) != len(loadIx) || len(storeIx) == 0 {
		return false, false, true
	}
	// Only the last (fastest-varying) dimension is analyzed; leading
	// dimensions must be syntactically identical affine forms.
	for d := 0; d < len(storeIx)-1; d++ {
		a := AnalyzeIndex(storeIx[d], iv)
		b := AnalyzeIndex(loadIx[d], iv)
		if !a.OK || !b.OK || a.IV != b.IV || a.Offset != b.Offset {
			return false, false, true
		}
	}
	a := AnalyzeIndex(storeIx[len(storeIx)-1], iv)
	b := AnalyzeIndex(loadIx[len(loadIx)-1], iv)
	if !a.OK || !b.OK {
		return false, false, true
	}
	switch {
	case a.IV == nil && b.IV == nil:
		// Two constants: alias iff equal, and then in every iteration.
		if a.Offset == b.Offset {
			return true, true, false
		}
		return false, false, false
	case a.IV != nil && b.IV != nil:
		// store[i+c1] in iter i reaches load[j+c2] in iter j when
		// i+c1 == j+c2, i.e. j == i + (c1-c2)/step iterations later.
		delta := a.Offset - b.Offset
		if delta == 0 {
			return true, false, false
		}
		if step != 0 && delta%step == 0 && delta/step == 1 {
			return false, true, false
		}
		return false, false, false
	default:
		// Mixed iv/constant: the store hits the load's cell in exactly
		// one iteration; conservatively allow both.
		return false, false, true
	}
}
