// Package source provides source positions and diagnostics shared by the
// SPL front end (lexer, parser, semantic analysis).
package source

import (
	"fmt"
	"sort"
	"strings"
)

// Pos identifies a location in a source file by 1-based line and column.
// The zero Pos is "no position".
type Pos struct {
	Line int
	Col  int
}

// IsValid reports whether p denotes an actual source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Before reports whether p appears strictly before q in the file.
func (p Pos) Before(q Pos) bool {
	return p.Line < q.Line || (p.Line == q.Line && p.Col < q.Col)
}

// File associates a name with source text and supports position lookup.
type File struct {
	Name string
	Text string

	lineStarts []int // byte offset of each line start
}

// NewFile creates a File and indexes its line starts.
func NewFile(name, text string) *File {
	f := &File{Name: name, Text: text}
	f.lineStarts = append(f.lineStarts, 0)
	for i := 0; i < len(text); i++ {
		if text[i] == '\n' {
			f.lineStarts = append(f.lineStarts, i+1)
		}
	}
	return f
}

// PosFor converts a byte offset into a Pos.
func (f *File) PosFor(offset int) Pos {
	if offset < 0 {
		return Pos{}
	}
	if offset > len(f.Text) {
		offset = len(f.Text)
	}
	line := sort.Search(len(f.lineStarts), func(i int) bool {
		return f.lineStarts[i] > offset
	})
	return Pos{Line: line, Col: offset - f.lineStarts[line-1] + 1}
}

// Line returns the text of the 1-based line n, without the newline.
func (f *File) Line(n int) string {
	if n < 1 || n > len(f.lineStarts) {
		return ""
	}
	start := f.lineStarts[n-1]
	end := len(f.Text)
	if n < len(f.lineStarts) {
		end = f.lineStarts[n] - 1
	}
	return f.Text[start:end]
}

// An Error is a diagnostic tied to a source position.
type Error struct {
	File string
	Pos  Pos
	Msg  string
}

func (e *Error) Error() string {
	if e.File == "" {
		return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
	}
	return fmt.Sprintf("%s:%s: %s", e.File, e.Pos, e.Msg)
}

// ErrorList accumulates diagnostics. The zero value is ready to use.
type ErrorList struct {
	list []*Error
}

// Add appends a new diagnostic.
func (l *ErrorList) Add(file string, pos Pos, format string, args ...any) {
	l.list = append(l.list, &Error{File: file, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Len returns the number of diagnostics collected.
func (l *ErrorList) Len() int { return len(l.list) }

// All returns the collected diagnostics in order of addition.
func (l *ErrorList) All() []*Error { return l.list }

// Err returns an error summarizing the list, or nil if it is empty.
func (l *ErrorList) Err() error {
	if len(l.list) == 0 {
		return nil
	}
	return l
}

// Error formats every diagnostic, one per line.
func (l *ErrorList) Error() string {
	var b strings.Builder
	for i, e := range l.list {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.Error())
	}
	return b.String()
}

// Sort orders the diagnostics by file, then position.
func (l *ErrorList) Sort() {
	sort.SliceStable(l.list, func(i, j int) bool {
		a, b := l.list[i], l.list[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Pos.Before(b.Pos)
	})
}
