package source_test

import (
	"strings"
	"testing"
	"testing/quick"

	"sptc/internal/source"
)

func TestPosFor(t *testing.T) {
	f := source.NewFile("t", "ab\ncd\n\nxyz")
	cases := []struct {
		off       int
		line, col int
	}{
		{0, 1, 1}, {1, 1, 2}, {2, 1, 3},
		{3, 2, 1}, {5, 2, 3},
		{6, 3, 1},
		{7, 4, 1}, {9, 4, 3},
	}
	for _, c := range cases {
		got := f.PosFor(c.off)
		if got.Line != c.line || got.Col != c.col {
			t.Errorf("PosFor(%d) = %v, want %d:%d", c.off, got, c.line, c.col)
		}
	}
	if p := f.PosFor(-1); p.IsValid() {
		t.Error("negative offset should be invalid")
	}
}

func TestLine(t *testing.T) {
	f := source.NewFile("t", "first\nsecond\nthird")
	if got := f.Line(2); got != "second" {
		t.Errorf("Line(2) = %q", got)
	}
	if got := f.Line(3); got != "third" {
		t.Errorf("Line(3) = %q", got)
	}
	if got := f.Line(99); got != "" {
		t.Errorf("Line(99) = %q", got)
	}
}

func TestErrorListSortAndFormat(t *testing.T) {
	var l source.ErrorList
	l.Add("b.spl", source.Pos{Line: 1, Col: 1}, "later file")
	l.Add("a.spl", source.Pos{Line: 5, Col: 2}, "second")
	l.Add("a.spl", source.Pos{Line: 2, Col: 9}, "first %d", 42)
	l.Sort()
	all := l.All()
	if all[0].Msg != "first 42" || all[1].Msg != "second" || all[2].Msg != "later file" {
		t.Errorf("sort order wrong: %v", l.Error())
	}
	msg := l.Error()
	if !strings.Contains(msg, "a.spl:2:9: first 42") {
		t.Errorf("format: %q", msg)
	}
	if l.Err() == nil {
		t.Error("non-empty list should be an error")
	}
	var empty source.ErrorList
	if empty.Err() != nil {
		t.Error("empty list should be nil error")
	}
}

func TestPosBefore(t *testing.T) {
	a := source.Pos{Line: 1, Col: 5}
	b := source.Pos{Line: 1, Col: 6}
	c := source.Pos{Line: 2, Col: 1}
	if !a.Before(b) || !b.Before(c) || c.Before(a) || a.Before(a) {
		t.Error("Before ordering broken")
	}
}

// TestQuickPosForRoundTrip: for any generated text, PosFor(offset) maps
// back to the exact byte via line starts.
func TestQuickPosForRoundTrip(t *testing.T) {
	f := func(seed uint32, n uint8) bool {
		var b strings.Builder
		x := seed
		for i := 0; i < int(n); i++ {
			x = x*1664525 + 1013904223
			if x%7 == 0 {
				b.WriteByte('\n')
			} else {
				b.WriteByte(byte('a' + x%26))
			}
		}
		text := b.String()
		file := source.NewFile("q", text)
		lineStart := 0
		line := 1
		for off := 0; off < len(text); off++ {
			p := file.PosFor(off)
			if p.Line != line || p.Col != off-lineStart+1 {
				return false
			}
			if text[off] == '\n' {
				line++
				lineStart = off + 1
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
