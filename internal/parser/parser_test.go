package parser_test

import (
	"strings"
	"testing"

	"sptc/internal/ast"
	"sptc/internal/parser"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse("t.spl", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func parseErr(t *testing.T, src string) error {
	t.Helper()
	_, err := parser.Parse("t.spl", src)
	if err == nil {
		t.Fatalf("expected parse error for %q", src)
	}
	return err
}

func TestDeclarations(t *testing.T) {
	p := parse(t, `
var a int;
var b float = 1.5;
var c int[10];
var m float[4][8];
func f(x int, y float) int { return x; }
func g() { }
`)
	if len(p.Globals) != 4 {
		t.Fatalf("got %d globals", len(p.Globals))
	}
	if p.Globals[2].Type.Kind != ast.TypeArray || p.Globals[2].Type.Dims[0] != 10 {
		t.Errorf("c: %v", p.Globals[2].Type)
	}
	if p.Globals[3].Type.Elem != ast.TypeFloat || len(p.Globals[3].Type.Dims) != 2 {
		t.Errorf("m: %v", p.Globals[3].Type)
	}
	if len(p.Funcs) != 2 {
		t.Fatalf("got %d funcs", len(p.Funcs))
	}
	f := p.Funcs[0]
	if f.Name != "f" || len(f.Params) != 2 || f.Result.Kind != ast.TypeInt {
		t.Errorf("f: %+v", f)
	}
	if p.Funcs[1].Result.Kind != ast.TypeVoid {
		t.Errorf("g should be void")
	}
}

func TestPrecedence(t *testing.T) {
	p := parse(t, `func main() { var x int = 1 + 2 * 3; var y int = (1 + 2) * 3; }`)
	body := p.Funcs[0].Body.Stmts
	x := body[0].(*ast.DeclStmt).Decl.Init.(*ast.BinaryExpr)
	if x.Op.String() != "+" {
		t.Fatalf("1+2*3 root should be +, got %s", x.Op)
	}
	if mul, ok := x.Y.(*ast.BinaryExpr); !ok || mul.Op.String() != "*" {
		t.Fatalf("rhs of + should be *")
	}
	y := body[1].(*ast.DeclStmt).Decl.Init.(*ast.BinaryExpr)
	if y.Op.String() != "*" {
		t.Fatalf("(1+2)*3 root should be *, got %s", y.Op)
	}
}

func TestControlFlowForms(t *testing.T) {
	p := parse(t, `
func main() {
	if (1) { } else if (2) { } else { }
	while (1) { break; }
	do { continue; } while (0);
	for (var i int = 0; i < 10; i++) { }
	for (; ; ) { break; }
}
`)
	stmts := p.Funcs[0].Body.Stmts
	ifs := stmts[0].(*ast.IfStmt)
	if _, ok := ifs.Else.(*ast.IfStmt); !ok {
		t.Error("else-if should nest as IfStmt")
	}
	if _, ok := stmts[1].(*ast.WhileStmt); !ok {
		t.Error("expected while")
	}
	if _, ok := stmts[2].(*ast.DoWhileStmt); !ok {
		t.Error("expected do-while")
	}
	forStmt := stmts[3].(*ast.ForStmt)
	if forStmt.Init == nil || forStmt.Cond == nil || forStmt.Post == nil {
		t.Error("for pieces missing")
	}
	empty := stmts[4].(*ast.ForStmt)
	if empty.Init != nil || empty.Cond != nil || empty.Post != nil {
		t.Error("empty for should have nil pieces")
	}
}

func TestIncDecDesugar(t *testing.T) {
	p := parse(t, `func main() { var i int; i++; i--; i += 2; }`)
	stmts := p.Funcs[0].Body.Stmts
	inc := stmts[1].(*ast.AssignStmt)
	if inc.Op.String() != "+=" {
		t.Errorf("i++ desugars to +=, got %s", inc.Op)
	}
	if lit, ok := inc.RHS.(*ast.IntLit); !ok || lit.Value != 1 {
		t.Errorf("i++ RHS should be 1")
	}
	dec := stmts[2].(*ast.AssignStmt)
	if dec.Op.String() != "-=" {
		t.Errorf("i-- desugars to -=, got %s", dec.Op)
	}
}

func TestIndexAndCalls(t *testing.T) {
	p := parse(t, `
var a int[4];
var m int[2][2];
func f(x int) int { return x; }
func main() {
	a[1] = m[0][1] + f(a[2]);
	f(f(1));
}
`)
	mainFn := p.Funcs[1]
	asg := mainFn.Body.Stmts[0].(*ast.AssignStmt)
	lhs := asg.LHS.(*ast.IndexExpr)
	if len(lhs.Index) != 1 {
		t.Errorf("a[1] should have 1 index")
	}
	add := asg.RHS.(*ast.BinaryExpr)
	if ix, ok := add.X.(*ast.IndexExpr); !ok || len(ix.Index) != 2 {
		t.Errorf("m[0][1] should have 2 indexes")
	}
	if _, ok := add.Y.(*ast.CallExpr); !ok {
		t.Errorf("expected call")
	}
}

func TestCasts(t *testing.T) {
	p := parse(t, `func main() { var x float = float(3); var y int = int(x + 0.5); }`)
	d := p.Funcs[0].Body.Stmts[0].(*ast.DeclStmt)
	if c, ok := d.Decl.Init.(*ast.CastExpr); !ok || c.To != ast.TypeFloat {
		t.Errorf("expected float cast")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"func main() { var x int = ; }",
		"func main() { if 1 { } }", // missing parens
		"func main() { x = 1 }",    // missing semicolon
		"func ()",                  // missing name
		"var a int[0];",            // bad dimension
		"func main() { 1 + 2; }",   // expression is not a statement
		"func main() { break }",    // missing semicolon
		"var x notatype;",
	}
	for _, src := range cases {
		parseErr(t, src)
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	err := parseErr(t, "func main() {\n  var x int = ;\n}")
	if !strings.Contains(err.Error(), "t.spl:2:") {
		t.Errorf("error should point at line 2: %v", err)
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	p := parse(t, `
var g int = 3;
func f(x int) int { return x * g; }
func main() {
	var i int;
	for (i = 0; i < 4; i++) {
		if (i % 2 == 0) { g += f(i); } else { g -= 1; }
	}
	while (g > 0) { g = g - 3; }
	do { g++; } while (g < 2);
	print("done", g);
}
`)
	var idents, calls, bins int
	ast.Walk(p, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.Ident:
			idents++
		case *ast.CallExpr:
			calls++
		case *ast.BinaryExpr:
			bins++
		}
		return true
	})
	if idents < 10 || calls < 2 || bins < 6 {
		t.Errorf("walk too shallow: idents=%d calls=%d bins=%d", idents, calls, bins)
	}
}

func TestDeepNesting(t *testing.T) {
	// Deeply nested expressions should parse without issue.
	var b strings.Builder
	b.WriteString("func main() { var x int = ")
	for i := 0; i < 100; i++ {
		b.WriteString("(1 + ")
	}
	b.WriteString("0")
	for i := 0; i < 100; i++ {
		b.WriteString(")")
	}
	b.WriteString("; }")
	parse(t, b.String())
}
