// Package parser implements a recursive-descent parser for SPL.
package parser

import (
	"strconv"

	"sptc/internal/ast"
	"sptc/internal/lexer"
	"sptc/internal/source"
	"sptc/internal/token"
)

// Parse parses the given source text as an SPL program. The returned
// program is nil when errors were found.
func Parse(filename, text string) (*ast.Program, error) {
	file := source.NewFile(filename, text)
	var errs source.ErrorList
	p := &parser{lex: lexer.New(file, &errs), errs: &errs, file: file}
	p.next()
	prog := p.parseProgram()
	errs.Sort()
	if err := errs.Err(); err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	lex  *lexer.Lexer
	errs *source.ErrorList
	file *source.File
	tok  lexer.Token
}

func (p *parser) next() { p.tok = p.lex.Next() }

func (p *parser) errorf(pos source.Pos, format string, args ...any) {
	p.errs.Add(p.file.Name, pos, format, args...)
}

func (p *parser) expect(k token.Kind) lexer.Token {
	t := p.tok
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
		// Do not consume: let the caller's recovery handle it, except
		// when the found token can never start anything useful.
		if t.Kind == token.ILLEGAL {
			p.next()
		}
		return lexer.Token{Kind: k, Pos: t.Pos}
	}
	p.next()
	return t
}

// sync skips tokens until a likely statement boundary.
func (p *parser) sync() {
	for {
		switch p.tok.Kind {
		case token.EOF, token.SEMICOLON, token.RBRACE:
			if p.tok.Kind == token.SEMICOLON {
				p.next()
			}
			return
		case token.IF, token.WHILE, token.FOR, token.DO, token.RETURN,
			token.BREAK, token.CONTINUE, token.VAR, token.FUNC:
			return
		}
		p.next()
	}
}

func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{File: p.file}
	for p.tok.Kind != token.EOF {
		switch p.tok.Kind {
		case token.VAR:
			d := p.parseVarDecl()
			if d != nil {
				prog.Globals = append(prog.Globals, d)
			}
		case token.FUNC:
			f := p.parseFuncDecl()
			if f != nil {
				prog.Funcs = append(prog.Funcs, f)
			}
		default:
			p.errorf(p.tok.Pos, "expected declaration, found %s", p.tok)
			p.sync()
			if p.tok.Kind == token.SEMICOLON || p.tok.Kind == token.RBRACE {
				p.next()
			}
		}
	}
	return prog
}

// parseVarDecl parses: var name type [= expr] ;
// where type := int | float | int[N] | int[N][M] | float[N] | float[N][M]
func (p *parser) parseVarDecl() *ast.VarDecl {
	pos := p.expect(token.VAR).Pos
	name := p.expect(token.IDENT)
	typ, ok := p.parseType()
	if !ok {
		p.sync()
		return nil
	}
	d := &ast.VarDecl{PosTok: pos, Name: name.Lit, Type: typ}
	if p.tok.Kind == token.ASSIGN {
		p.next()
		d.Init = p.parseExpr()
	}
	p.expect(token.SEMICOLON)
	return d
}

func (p *parser) parseType() (ast.Type, bool) {
	var base ast.TypeKind
	switch p.tok.Kind {
	case token.INT:
		base = ast.TypeInt
	case token.FLOAT:
		base = ast.TypeFloat
	default:
		p.errorf(p.tok.Pos, "expected type, found %s", p.tok)
		return ast.Type{}, false
	}
	p.next()
	if p.tok.Kind != token.LBRACKET {
		return ast.Type{Kind: base}, true
	}
	var dims []int
	for p.tok.Kind == token.LBRACKET && len(dims) < 2 {
		p.next()
		sz := p.expect(token.INTLIT)
		n, err := strconv.Atoi(sz.Lit)
		if err != nil || n <= 0 {
			p.errorf(sz.Pos, "array dimension must be a positive integer")
			n = 1
		}
		dims = append(dims, n)
		p.expect(token.RBRACKET)
	}
	return ast.Type{Kind: ast.TypeArray, Elem: base, Dims: dims}, true
}

func (p *parser) parseFuncDecl() *ast.FuncDecl {
	pos := p.expect(token.FUNC).Pos
	name := p.expect(token.IDENT)
	f := &ast.FuncDecl{PosTok: pos, Name: name.Lit, Result: ast.Type{Kind: ast.TypeVoid}}
	p.expect(token.LPAREN)
	for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
		pn := p.expect(token.IDENT)
		pt, ok := p.parseType()
		if !ok {
			p.sync()
			break
		}
		if pt.Kind == ast.TypeArray {
			p.errorf(pn.Pos, "array parameters are not supported; use globals")
		}
		f.Params = append(f.Params, ast.Param{PosTok: pn.Pos, Name: pn.Lit, Type: pt})
		if p.tok.Kind == token.COMMA {
			p.next()
			continue
		}
		break
	}
	p.expect(token.RPAREN)
	if p.tok.Kind == token.INT || p.tok.Kind == token.FLOAT {
		rt, _ := p.parseType()
		f.Result = rt
	}
	f.Body = p.parseBlock()
	return f
}

func (p *parser) parseBlock() *ast.BlockStmt {
	pos := p.expect(token.LBRACE).Pos
	b := &ast.BlockStmt{PosTok: pos}
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		s := p.parseStmt()
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	p.expect(token.RBRACE)
	return b
}

func (p *parser) parseStmt() ast.Stmt {
	switch p.tok.Kind {
	case token.VAR:
		d := p.parseVarDecl()
		if d == nil {
			return nil
		}
		return &ast.DeclStmt{Decl: d}
	case token.LBRACE:
		return p.parseBlock()
	case token.IF:
		return p.parseIf()
	case token.WHILE:
		return p.parseWhile()
	case token.DO:
		return p.parseDoWhile()
	case token.FOR:
		return p.parseFor()
	case token.BREAK:
		pos := p.tok.Pos
		p.next()
		p.expect(token.SEMICOLON)
		return &ast.BreakStmt{PosTok: pos}
	case token.CONTINUE:
		pos := p.tok.Pos
		p.next()
		p.expect(token.SEMICOLON)
		return &ast.ContinueStmt{PosTok: pos}
	case token.RETURN:
		pos := p.tok.Pos
		p.next()
		r := &ast.ReturnStmt{PosTok: pos}
		if p.tok.Kind != token.SEMICOLON {
			r.X = p.parseExpr()
		}
		p.expect(token.SEMICOLON)
		return r
	case token.SEMICOLON:
		p.next()
		return nil
	case token.IDENT:
		s := p.parseSimpleStmt()
		p.expect(token.SEMICOLON)
		return s
	default:
		p.errorf(p.tok.Pos, "expected statement, found %s", p.tok)
		p.sync()
		return nil
	}
}

// parseSimpleStmt parses an assignment, inc/dec, or a call statement.
func (p *parser) parseSimpleStmt() ast.Stmt {
	lhs := p.parsePrimary()
	switch p.tok.Kind {
	case token.ASSIGN, token.PLUSEQ, token.MINUSEQ, token.STAREQ, token.SLASHEQ, token.PERCENTEQ:
		op := p.tok.Kind
		pos := p.tok.Pos
		p.next()
		rhs := p.parseExpr()
		if !isLValue(lhs) {
			p.errorf(lhs.Pos(), "cannot assign to this expression")
		}
		return &ast.AssignStmt{PosTok: pos, LHS: lhs, Op: op, RHS: rhs}
	case token.INC, token.DEC:
		op := token.PLUSEQ
		if p.tok.Kind == token.DEC {
			op = token.MINUSEQ
		}
		pos := p.tok.Pos
		p.next()
		if !isLValue(lhs) {
			p.errorf(lhs.Pos(), "cannot increment this expression")
		}
		one := &ast.IntLit{PosTok: pos, Value: 1}
		return &ast.AssignStmt{PosTok: pos, LHS: lhs, Op: op, RHS: one}
	default:
		if _, ok := lhs.(*ast.CallExpr); !ok {
			p.errorf(lhs.Pos(), "expression is not a statement")
		}
		return &ast.ExprStmt{X: lhs}
	}
}

func isLValue(e ast.Expr) bool {
	switch e.(type) {
	case *ast.Ident, *ast.IndexExpr:
		return true
	}
	return false
}

func (p *parser) parseIf() ast.Stmt {
	pos := p.expect(token.IF).Pos
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	then := p.parseBlock()
	s := &ast.IfStmt{PosTok: pos, Cond: cond, Then: then}
	if p.tok.Kind == token.ELSE {
		p.next()
		if p.tok.Kind == token.IF {
			s.Else = p.parseIf()
		} else {
			s.Else = p.parseBlock()
		}
	}
	return s
}

func (p *parser) parseWhile() ast.Stmt {
	pos := p.expect(token.WHILE).Pos
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	body := p.parseBlock()
	return &ast.WhileStmt{PosTok: pos, Cond: cond, Body: body}
}

func (p *parser) parseDoWhile() ast.Stmt {
	pos := p.expect(token.DO).Pos
	body := p.parseBlock()
	p.expect(token.WHILE)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	p.expect(token.SEMICOLON)
	return &ast.DoWhileStmt{PosTok: pos, Body: body, Cond: cond}
}

func (p *parser) parseFor() ast.Stmt {
	pos := p.expect(token.FOR).Pos
	p.expect(token.LPAREN)
	f := &ast.ForStmt{PosTok: pos}
	if p.tok.Kind != token.SEMICOLON {
		if p.tok.Kind == token.VAR {
			d := p.parseVarDecl() // consumes the semicolon
			if d != nil {
				f.Init = &ast.DeclStmt{Decl: d}
			}
		} else {
			f.Init = p.parseSimpleStmt()
			p.expect(token.SEMICOLON)
		}
	} else {
		p.next()
	}
	if p.tok.Kind != token.SEMICOLON {
		f.Cond = p.parseExpr()
	}
	p.expect(token.SEMICOLON)
	if p.tok.Kind != token.RPAREN {
		f.Post = p.parseSimpleStmt()
	}
	p.expect(token.RPAREN)
	f.Body = p.parseBlock()
	return f
}

// ---- Expressions ----

func (p *parser) parseExpr() ast.Expr { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		prec := p.tok.Kind.Precedence()
		if prec < minPrec {
			return x
		}
		op := p.tok.Kind
		pos := p.tok.Pos
		p.next()
		y := p.parseBinary(prec + 1)
		x = &ast.BinaryExpr{PosTok: pos, Op: op, X: x, Y: y}
	}
}

func (p *parser) parseUnary() ast.Expr {
	switch p.tok.Kind {
	case token.MINUS, token.NOT, token.TILDE:
		op := p.tok.Kind
		pos := p.tok.Pos
		p.next()
		x := p.parseUnary()
		return &ast.UnaryExpr{PosTok: pos, Op: op, X: x}
	case token.PLUS:
		p.next()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() ast.Expr {
	switch p.tok.Kind {
	case token.INTLIT:
		t := p.tok
		p.next()
		v, err := strconv.ParseInt(t.Lit, 0, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid integer literal %q", t.Lit)
		}
		return &ast.IntLit{PosTok: t.Pos, Value: v}
	case token.FLOATLIT:
		t := p.tok
		p.next()
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid float literal %q", t.Lit)
		}
		return &ast.FloatLit{PosTok: t.Pos, Value: v}
	case token.STRLIT:
		t := p.tok
		p.next()
		return &ast.StrLit{PosTok: t.Pos, Value: t.Lit}
	case token.INT, token.FLOAT:
		to := ast.TypeInt
		if p.tok.Kind == token.FLOAT {
			to = ast.TypeFloat
		}
		pos := p.tok.Pos
		p.next()
		p.expect(token.LPAREN)
		x := p.parseExpr()
		p.expect(token.RPAREN)
		return &ast.CastExpr{PosTok: pos, To: to, X: x}
	case token.LPAREN:
		p.next()
		x := p.parseExpr()
		p.expect(token.RPAREN)
		return x
	case token.IDENT:
		id := p.tok
		p.next()
		switch p.tok.Kind {
		case token.LPAREN:
			return p.parseCall(id)
		case token.LBRACKET:
			return p.parseIndex(id)
		}
		return &ast.Ident{PosTok: id.Pos, Name: id.Lit}
	default:
		p.errorf(p.tok.Pos, "expected expression, found %s", p.tok)
		pos := p.tok.Pos
		if p.tok.Kind != token.EOF && p.tok.Kind != token.SEMICOLON &&
			p.tok.Kind != token.RPAREN && p.tok.Kind != token.RBRACE {
			p.next()
		}
		return &ast.IntLit{PosTok: pos}
	}
}

func (p *parser) parseCall(id lexer.Token) ast.Expr {
	p.expect(token.LPAREN)
	c := &ast.CallExpr{PosTok: id.Pos, Name: id.Lit}
	for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
		c.Args = append(c.Args, p.parseExpr())
		if p.tok.Kind == token.COMMA {
			p.next()
			continue
		}
		break
	}
	p.expect(token.RPAREN)
	return c
}

func (p *parser) parseIndex(id lexer.Token) ast.Expr {
	ix := &ast.IndexExpr{PosTok: id.Pos, Array: &ast.Ident{PosTok: id.Pos, Name: id.Lit}}
	for p.tok.Kind == token.LBRACKET && len(ix.Index) < 2 {
		p.next()
		ix.Index = append(ix.Index, p.parseExpr())
		p.expect(token.RBRACKET)
	}
	return ix
}
