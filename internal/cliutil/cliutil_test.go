package cliutil

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"sptc/internal/core"
	"sptc/internal/trace"
)

func TestParseLevel(t *testing.T) {
	cases := []struct {
		name      string
		allowBase bool
		want      core.Level
		ok        bool
	}{
		{"base", true, core.LevelBase, true},
		{"base", false, 0, false},
		{"basic", false, core.LevelBasic, true},
		{"best", false, core.LevelBest, true},
		{"anticipated", true, core.LevelAnticipated, true},
		{"turbo", true, 0, false},
		{"", true, 0, false},
	}
	for _, tc := range cases {
		got, ok := ParseLevel(tc.name, tc.allowBase)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("ParseLevel(%q, %v) = (%v, %v), want (%v, %v)",
				tc.name, tc.allowBase, got, ok, tc.want, tc.ok)
		}
	}
}

func TestExportTrace(t *testing.T) {
	tr := trace.New()
	tk := tr.StartTrack("job")
	tk.Start("compile").Int("n", 7).End()

	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "t.json")
	csvPath := filepath.Join(dir, "t.csv")
	if err := ExportTrace(tr, jsonPath, csvPath); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("exported trace is not JSON: %v", err)
	}
	if _, err := os.Stat(csvPath); err != nil {
		t.Fatal(err)
	}

	// Empty paths are skipped without touching the filesystem.
	if err := ExportTrace(tr, "", ""); err != nil {
		t.Fatal(err)
	}
	// An unwritable path reports an error.
	if err := ExportTrace(tr, filepath.Join(dir, "no", "dir.json"), ""); err == nil {
		t.Error("expected error for unwritable trace path")
	}
}

func TestProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	p, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
	// Stop is idempotent and nil-safe.
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := (*Profiles)(nil).Stop(); err != nil {
		t.Fatal(err)
	}
	// The inert form does nothing.
	p2, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Stop(); err != nil {
		t.Fatal(err)
	}
	// Unwritable CPU profile path fails up front.
	if _, err := StartProfiles(filepath.Join(dir, "no", "cpu.prof"), ""); err == nil {
		t.Error("expected error for unwritable cpuprofile path")
	}
}
