package cliutil

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sptc/internal/core"
	"sptc/internal/machine"
	"sptc/internal/resilience"
	"sptc/internal/trace"
)

func TestParseLevel(t *testing.T) {
	cases := []struct {
		name      string
		allowBase bool
		want      core.Level
		ok        bool
	}{
		{"base", true, core.LevelBase, true},
		{"base", false, 0, false},
		{"basic", false, core.LevelBasic, true},
		{"best", false, core.LevelBest, true},
		{"anticipated", true, core.LevelAnticipated, true},
		{"turbo", true, 0, false},
		{"", true, 0, false},
	}
	for _, tc := range cases {
		got, ok := ParseLevel(tc.name, tc.allowBase)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("ParseLevel(%q, %v) = (%v, %v), want (%v, %v)",
				tc.name, tc.allowBase, got, ok, tc.want, tc.ok)
		}
	}
}

func TestExportTrace(t *testing.T) {
	tr := trace.New()
	tk := tr.StartTrack("job")
	tk.Start("compile").Int("n", 7).End()

	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "t.json")
	csvPath := filepath.Join(dir, "t.csv")
	if err := ExportTrace(tr, jsonPath, csvPath); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("exported trace is not JSON: %v", err)
	}
	if _, err := os.Stat(csvPath); err != nil {
		t.Fatal(err)
	}

	// Empty paths are skipped without touching the filesystem.
	if err := ExportTrace(tr, "", ""); err != nil {
		t.Fatal(err)
	}
	// An unwritable path reports an error.
	if err := ExportTrace(tr, filepath.Join(dir, "no", "dir.json"), ""); err == nil {
		t.Error("expected error for unwritable trace path")
	}
}

func TestProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	p, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
	// Stop is idempotent and nil-safe.
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := (*Profiles)(nil).Stop(); err != nil {
		t.Fatal(err)
	}
	// The inert form does nothing.
	p2, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Stop(); err != nil {
		t.Fatal(err)
	}
	// Unwritable CPU profile path fails up front.
	if _, err := StartProfiles(filepath.Join(dir, "no", "cpu.prof"), ""); err == nil {
		t.Error("expected error for unwritable cpuprofile path")
	}
}

func TestResilienceFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	r := AddResilienceFlags(fs)
	err := fs.Parse([]string{"-timeout", "250ms", "-search-budget", "7", "-inject", "cliutil.test.point=error"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Timeout != 250*time.Millisecond || r.SearchBudget != 7 {
		t.Errorf("parsed bundle = %+v", r)
	}
	defer resilience.DisarmAll()
	if err := r.Arm(); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	if got := resilience.Armed(); len(got) != 1 || got[0] != "cliutil.test.point" {
		t.Errorf("armed points = %v", got)
	}
	ctx, cancel := r.Context()
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Error("context should carry the -timeout deadline")
	}

	var zero Resilience
	if err := zero.Arm(); err != nil {
		t.Errorf("empty spec must be a no-op, got %v", err)
	}
	ctx2, cancel2 := zero.Context()
	defer cancel2()
	if _, ok := ctx2.Deadline(); ok {
		t.Error("no -timeout must mean no deadline")
	}
}

func TestResilienceArmBadSpec(t *testing.T) {
	defer resilience.DisarmAll()
	r := &Resilience{Inject: "point-without-fault"}
	if err := r.Arm(); err == nil {
		t.Error("malformed spec should fail")
	}
}

func TestParseEngine(t *testing.T) {
	cases := []struct {
		name string
		want machine.EngineKind
		ok   bool
	}{
		{"bytecode", machine.EngineBytecode, true},
		{"tree", machine.EngineTree, true},
		{"jit", 0, false},
		{"Bytecode", 0, false}, // names are case-sensitive
		{"", 0, false},
	}
	for _, tc := range cases {
		got, ok := ParseEngine(tc.name)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("ParseEngine(%q) = (%v, %v), want (%v, %v)", tc.name, got, ok, tc.want, tc.ok)
		}
	}
}

func TestResilienceArmBadSpecs(t *testing.T) {
	cases := []string{
		"point-without-fault",
		"p=unknown-fault",
		"p=delay:notaduration",
		"=panic",
	}
	for _, spec := range cases {
		t.Run(spec, func(t *testing.T) {
			defer resilience.DisarmAll()
			r := &Resilience{Inject: spec}
			if err := r.Arm(); err == nil {
				t.Errorf("spec %q should fail to arm", spec)
			}
		})
	}
}

func TestIncrFlag(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	i := AddIncrFlag(fs)
	if err := fs.Parse([]string{"-incr-cache", filepath.Join(t.TempDir(), "c.bin")}); err != nil {
		t.Fatal(err)
	}
	store, closer := i.Open()
	if store == nil {
		t.Fatal("expected a store for a fresh cache path")
	}
	closer() // saves an empty store without error

	// No flag: incremental compilation stays off.
	var off Incr
	if store, closer := off.Open(); store != nil {
		t.Error("empty path must disable the store")
	} else {
		closer()
	}
}

// TestIncrOpenFailSoft pins the fail-soft contract of -incr-cache: a
// damaged or unreadable store degrades to a cold compile (nil store or
// salvaged partial store) and never returns an error to the command.
func TestIncrOpenFailSoft(t *testing.T) {
	cases := map[string]struct {
		prepare   func(t *testing.T, dir string) string
		wantStore bool
	}{
		"unreadable-directory-as-file": {
			func(t *testing.T, dir string) string { return dir }, // a directory: read fails
			false,
		},
		"corrupt-content": {
			func(t *testing.T, dir string) string {
				p := filepath.Join(dir, "c.bin")
				if err := os.WriteFile(p, []byte("sptincr1 then garbage bytes"), 0o666); err != nil {
					t.Fatal(err)
				}
				return p
			},
			true, // salvaged to an empty store, still usable
		},
		"truncated-magic": {
			func(t *testing.T, dir string) string {
				p := filepath.Join(dir, "c.bin")
				if err := os.WriteFile(p, []byte("spt"), 0o666); err != nil {
					t.Fatal(err)
				}
				return p
			},
			true,
		},
		"missing-file": {
			func(t *testing.T, dir string) string { return filepath.Join(dir, "new.bin") },
			true,
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			i := &Incr{Path: tc.prepare(t, t.TempDir())}
			store, closer := i.Open()
			if (store != nil) != tc.wantStore {
				t.Fatalf("store presence = %v, want %v", store != nil, tc.wantStore)
			}
			closer() // must never panic or fail the build
		})
	}
}
