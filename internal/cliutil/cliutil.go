// Package cliutil holds the observability plumbing shared by the sptc,
// sptsim and sptbench commands: starting and stopping pprof profiles and
// exporting a tracer to the Chrome trace_event and CSV formats.
package cliutil

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"sptc/internal/core"
	"sptc/internal/incr"
	"sptc/internal/machine"
	"sptc/internal/resilience"
	"sptc/internal/service"
	"sptc/internal/trace"
)

// Profiles manages the optional -cpuprofile/-memprofile outputs of a
// command. The zero value (from StartProfiles("", "")) is inert.
type Profiles struct {
	cpuFile *os.File
	memPath string
}

// StartProfiles begins CPU profiling into cpuPath (when non-empty) and
// remembers memPath for a heap profile at Stop. Either path may be empty.
func StartProfiles(cpuPath, memPath string) (*Profiles, error) {
	p := &Profiles{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
		p.cpuFile = f
	}
	return p, nil
}

// Stop finishes the CPU profile and writes the heap profile, if either
// was requested. Safe to call on a nil receiver and idempotent for the
// CPU side.
func (p *Profiles) Stop() error {
	if p == nil {
		return nil
	}
	var first error
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			first = err
		}
		p.cpuFile = nil
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			if first == nil {
				first = err
			}
			return first
		}
		runtime.GC() // flush recently freed objects out of the profile
		if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
			first = fmt.Errorf("write heap profile: %w", err)
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		p.memPath = ""
	}
	return first
}

// ExportTrace writes the tracer to jsonPath (Chrome trace_event format,
// loadable in chrome://tracing or ui.perfetto.dev) and/or csvPath (flat
// per-span CSV). Empty paths are skipped.
func ExportTrace(tr *trace.Tracer, jsonPath, csvPath string) error {
	write := func(path string, emit func(f *os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(jsonPath, func(f *os.File) error { return tr.WriteChrome(f) }); err != nil {
		return err
	}
	return write(csvPath, func(f *os.File) error { return tr.WriteCSV(f) })
}

// Resilience bundles the fail-soft flags shared by the sptc, sptsim and
// sptbench commands: a wall-clock budget, a partition-search node
// budget, and a fault-injection spec.
type Resilience struct {
	// Timeout is the wall-clock budget (per job in sptbench, for the
	// whole compile+simulate in sptc/sptsim). 0 disables it.
	Timeout time.Duration
	// SearchBudget caps the partition search at this many nodes per loop
	// candidate; the anytime search keeps the best partition found.
	// <= 0 leaves the search unbounded.
	SearchBudget int
	// SearchWorkers parallelizes pass 1: candidate loops are analyzed
	// concurrently and each loop's partition search runs its parallel
	// branch-and-bound with this many workers. The compilation result is
	// identical for every value (see core.Options.SearchWorkers). 0
	// keeps the classic serial pass 1.
	SearchWorkers int
	// Inject is a resilience.ArmSpec fault-injection spec
	// ("point=panic|delay:DUR|error|exhaust", comma-separated).
	Inject string
}

// AddResilienceFlags registers -timeout, -search-budget, -search-workers
// and -inject on fs and returns the bundle their values land in.
func AddResilienceFlags(fs *flag.FlagSet) *Resilience {
	r := &Resilience{}
	fs.DurationVar(&r.Timeout, "timeout", 0, "wall-clock budget per compile+simulate job (0 = unlimited)")
	fs.IntVar(&r.SearchBudget, "search-budget", 0, "partition-search node budget per loop candidate (0 = unlimited)")
	fs.IntVar(&r.SearchWorkers, "search-workers", 0, "parallel pass-1/partition-search workers; result is identical for every value (0 = serial)")
	fs.StringVar(&r.Inject, "inject", "", "arm fault-injection points: `point=panic|delay:DUR|error|exhaust[,...]`")
	return r
}

// Arm arms the -inject spec (a no-op when empty).
func (r *Resilience) Arm() error {
	if r.Inject == "" {
		return nil
	}
	return resilience.ArmSpec(r.Inject)
}

// Context returns a context bounded by -timeout; the cancel func must
// always be called. With no timeout it returns context.Background().
func (r *Resilience) Context() (context.Context, context.CancelFunc) {
	if r.Timeout > 0 {
		return context.WithTimeout(context.Background(), r.Timeout)
	}
	return context.Background(), func() {}
}

// Incr carries the -incr-cache flag value.
type Incr struct {
	// Path is the loop-result store file; empty disables incremental
	// compilation.
	Path string
}

// AddIncrFlag registers -incr-cache on fs.
func AddIncrFlag(fs *flag.FlagSet) *Incr {
	i := &Incr{}
	fs.StringVar(&i.Path, "incr-cache", "", "loop-result store `file` for incremental recompilation (empty = off)")
	return i
}

// Open opens the loop-result store named by -incr-cache and returns it
// with a closer that persists it. The open is fail-soft in the
// incremental-compilation contract's sense: a corrupt or truncated store
// is salvaged by incr.Open itself, and an unreadable one (I/O error)
// degrades to a cold compile with a warning on stderr — a damaged cache
// never fails the build. With no path it returns (nil, no-op closer).
func (i *Incr) Open() (*incr.Store, func()) {
	if i.Path == "" {
		return nil, func() {}
	}
	store, err := incr.Open(i.Path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "warning: -incr-cache %s unreadable (%v): compiling cold\n", i.Path, err)
		return nil, func() {}
	}
	return store, func() {
		if err := store.Save(); err != nil {
			fmt.Fprintf(os.Stderr, "warning: -incr-cache %s not saved: %v\n", i.Path, err)
		}
	}
}

// Server bundles the daemon-client flags shared by the sptc, sptsim and
// sptbench commands: the daemon URL plus the self-healing knobs (retry
// attempts and local fallback).
type Server struct {
	// URL is the sptd base URL; empty means in-process execution.
	URL string
	// Retries is the total remote attempts per request (transient
	// failures only: overload, server timeout, connection refused/reset).
	// <= 1 disables retries.
	Retries int
	// Fallback degrades to in-process execution when the daemon stays
	// unreachable after retries (circuit breaker; see service.Failover).
	Fallback bool
}

// AddServerFlags registers -server, -server-retries and
// -server-fallback on fs. When -server is set the command executes
// through the daemon's HTTP API (with its persistent response cache)
// instead of in-process; the printed output is byte-identical either
// way because both modes render from the same wire response.
func AddServerFlags(fs *flag.FlagSet) *Server {
	s := &Server{}
	fs.StringVar(&s.URL, "server", "", "execute via the sptd daemon at `URL` (e.g. http://localhost:8347) instead of in-process")
	fs.IntVar(&s.Retries, "server-retries", 4, "total remote attempts per request for transient daemon failures (<=1 disables retries)")
	fs.BoolVar(&s.Fallback, "server-fallback", true, "fall back to in-process execution when the daemon is unreachable after retries")
	return s
}

// Remote reports whether the command runs against a daemon.
func (s *Server) Remote() bool { return s.URL != "" }

// Client builds the daemon client: a retrying service.Remote, wrapped in
// a circuit-breaking service.Failover over env when -server-fallback is
// on. env is the in-process environment a fallback runs with (ignored
// when fallback is off).
func (s *Server) Client(ctx context.Context, env service.Env) service.Client {
	r := &service.Remote{URL: s.URL, Context: ctx}
	if s.Retries > 1 {
		p := service.DefaultRetryPolicy()
		p.MaxAttempts = s.Retries
		r.Retry = p
	}
	if !s.Fallback {
		return r
	}
	env.Context = ctx
	return &service.Failover{Remote: r, Local: &service.Local{Env: env}}
}

// ParseEngine maps the CLI -engine names to simulator engine kinds; ok
// is false for an unknown name. The two engines are bit-identical in
// results; "tree" keeps the reference walker reachable for differential
// debugging and timing comparisons.
func ParseEngine(name string) (machine.EngineKind, bool) {
	switch name {
	case "bytecode":
		return machine.EngineBytecode, true
	case "tree":
		return machine.EngineTree, true
	}
	return 0, false
}

// ParseSimMode maps the CLI -sim-mode names to the simulator's
// CountersOnly switch; ok is false for an unknown name. "full" is
// complete fidelity (cycles plus every counter); "counters" skips all
// cycle accounting and reproduces only the fidelity counters
// (bit-identical to a full run), substantially faster for sweeps that
// never read cycles.
func ParseSimMode(name string) (countersOnly, ok bool) {
	switch name {
	case "full":
		return false, true
	case "counters":
		return true, true
	}
	return false, false
}

// ParseLevel maps the CLI level names to core levels; ok is false for an
// unknown name. allowBase admits the non-SPT reference level.
func ParseLevel(name string, allowBase bool) (core.Level, bool) {
	return core.ParseLevel(name, allowBase)
}
