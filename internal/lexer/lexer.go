// Package lexer implements the scanner for SPL source text.
package lexer

import (
	"sptc/internal/source"
	"sptc/internal/token"
)

// A Token is one lexical element with its spelling and position.
type Token struct {
	Kind token.Kind
	Lit  string
	Pos  source.Pos
}

func (t Token) String() string {
	switch t.Kind {
	case token.IDENT, token.INTLIT, token.FLOATLIT, token.STRLIT, token.ILLEGAL:
		return t.Kind.String() + "(" + t.Lit + ")"
	}
	return t.Kind.String()
}

// Lexer scans SPL source text into tokens.
type Lexer struct {
	file   *source.File
	src    string
	off    int
	errs   *source.ErrorList
	peeked *Token
}

// New returns a Lexer over the given file, reporting errors to errs.
func New(file *source.File, errs *source.ErrorList) *Lexer {
	return &Lexer{file: file, src: file.Text, errs: errs}
}

// File returns the file being scanned.
func (l *Lexer) File() *source.File { return l.file }

func (l *Lexer) errorf(off int, format string, args ...any) {
	l.errs.Add(l.file.Name, l.file.PosFor(off), format, args...)
}

// Peek returns the next token without consuming it.
func (l *Lexer) Peek() Token {
	if l.peeked == nil {
		t := l.scan()
		l.peeked = &t
	}
	return *l.peeked
}

// Next consumes and returns the next token.
func (l *Lexer) Next() Token {
	if l.peeked != nil {
		t := *l.peeked
		l.peeked = nil
		return t
	}
	return l.scan()
}

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.off++
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '/':
			for l.off < len(l.src) && l.src[l.off] != '\n' {
				l.off++
			}
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '*':
			start := l.off
			l.off += 2
			for l.off+1 < len(l.src) && !(l.src[l.off] == '*' && l.src[l.off+1] == '/') {
				l.off++
			}
			if l.off+1 >= len(l.src) {
				l.errorf(start, "unterminated block comment")
				l.off = len(l.src)
				return
			}
			l.off += 2
		default:
			return
		}
	}
}

func (l *Lexer) scan() Token {
	l.skipSpaceAndComments()
	if l.off >= len(l.src) {
		return Token{Kind: token.EOF, Pos: l.file.PosFor(l.off)}
	}
	start := l.off
	pos := l.file.PosFor(start)
	c := l.src[l.off]

	switch {
	case isLetter(c):
		for l.off < len(l.src) && (isLetter(l.src[l.off]) || isDigit(l.src[l.off])) {
			l.off++
		}
		lit := l.src[start:l.off]
		return Token{Kind: token.Lookup(lit), Lit: lit, Pos: pos}

	case isDigit(c):
		return l.scanNumber(start, pos)

	case c == '"':
		return l.scanString(start, pos)
	}

	l.off++
	two := func(next byte, yes, no token.Kind) Token {
		if l.off < len(l.src) && l.src[l.off] == next {
			l.off++
			return Token{Kind: yes, Lit: l.src[start:l.off], Pos: pos}
		}
		return Token{Kind: no, Lit: l.src[start:l.off], Pos: pos}
	}

	switch c {
	case '+':
		if l.off < len(l.src) && l.src[l.off] == '+' {
			l.off++
			return Token{Kind: token.INC, Lit: "++", Pos: pos}
		}
		return two('=', token.PLUSEQ, token.PLUS)
	case '-':
		if l.off < len(l.src) && l.src[l.off] == '-' {
			l.off++
			return Token{Kind: token.DEC, Lit: "--", Pos: pos}
		}
		return two('=', token.MINUSEQ, token.MINUS)
	case '*':
		return two('=', token.STAREQ, token.STAR)
	case '/':
		return two('=', token.SLASHEQ, token.SLASH)
	case '%':
		return two('=', token.PERCENTEQ, token.PERCENT)
	case '=':
		return two('=', token.EQ, token.ASSIGN)
	case '!':
		return two('=', token.NEQ, token.NOT)
	case '<':
		if l.off < len(l.src) && l.src[l.off] == '<' {
			l.off++
			return Token{Kind: token.SHL, Lit: "<<", Pos: pos}
		}
		return two('=', token.LEQ, token.LT)
	case '>':
		if l.off < len(l.src) && l.src[l.off] == '>' {
			l.off++
			return Token{Kind: token.SHR, Lit: ">>", Pos: pos}
		}
		return two('=', token.GEQ, token.GT)
	case '&':
		return two('&', token.LAND, token.AMP)
	case '|':
		return two('|', token.LOR, token.PIPE)
	case '^':
		return Token{Kind: token.CARET, Lit: "^", Pos: pos}
	case '~':
		return Token{Kind: token.TILDE, Lit: "~", Pos: pos}
	case '(':
		return Token{Kind: token.LPAREN, Lit: "(", Pos: pos}
	case ')':
		return Token{Kind: token.RPAREN, Lit: ")", Pos: pos}
	case '{':
		return Token{Kind: token.LBRACE, Lit: "{", Pos: pos}
	case '}':
		return Token{Kind: token.RBRACE, Lit: "}", Pos: pos}
	case '[':
		return Token{Kind: token.LBRACKET, Lit: "[", Pos: pos}
	case ']':
		return Token{Kind: token.RBRACKET, Lit: "]", Pos: pos}
	case ',':
		return Token{Kind: token.COMMA, Lit: ",", Pos: pos}
	case ';':
		return Token{Kind: token.SEMICOLON, Lit: ";", Pos: pos}
	case '?':
		return Token{Kind: token.QUESTION, Lit: "?", Pos: pos}
	case ':':
		return Token{Kind: token.COLON, Lit: ":", Pos: pos}
	}

	l.errorf(start, "illegal character %q", c)
	return Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

func (l *Lexer) scanNumber(start int, pos source.Pos) Token {
	kind := token.INTLIT
	if l.src[l.off] == '0' && l.off+1 < len(l.src) && (l.src[l.off+1] == 'x' || l.src[l.off+1] == 'X') {
		l.off += 2
		for l.off < len(l.src) && isHexDigit(l.src[l.off]) {
			l.off++
		}
		if l.off == start+2 {
			l.errorf(start, "malformed hex literal")
		}
		return Token{Kind: token.INTLIT, Lit: l.src[start:l.off], Pos: pos}
	}
	for l.off < len(l.src) && isDigit(l.src[l.off]) {
		l.off++
	}
	if l.off < len(l.src) && l.src[l.off] == '.' {
		kind = token.FLOATLIT
		l.off++
		for l.off < len(l.src) && isDigit(l.src[l.off]) {
			l.off++
		}
	}
	if l.off < len(l.src) && (l.src[l.off] == 'e' || l.src[l.off] == 'E') {
		kind = token.FLOATLIT
		l.off++
		if l.off < len(l.src) && (l.src[l.off] == '+' || l.src[l.off] == '-') {
			l.off++
		}
		digits := false
		for l.off < len(l.src) && isDigit(l.src[l.off]) {
			l.off++
			digits = true
		}
		if !digits {
			l.errorf(start, "malformed exponent in float literal")
		}
	}
	return Token{Kind: kind, Lit: l.src[start:l.off], Pos: pos}
}

func isHexDigit(c byte) bool {
	return isDigit(c) || ('a' <= c && c <= 'f') || ('A' <= c && c <= 'F')
}

func (l *Lexer) scanString(start int, pos source.Pos) Token {
	l.off++ // opening quote
	for l.off < len(l.src) && l.src[l.off] != '"' && l.src[l.off] != '\n' {
		if l.src[l.off] == '\\' && l.off+1 < len(l.src) {
			l.off++
		}
		l.off++
	}
	if l.off >= len(l.src) || l.src[l.off] != '"' {
		l.errorf(start, "unterminated string literal")
		return Token{Kind: token.ILLEGAL, Lit: l.src[start:l.off], Pos: pos}
	}
	l.off++
	return Token{Kind: token.STRLIT, Lit: l.src[start+1 : l.off-1], Pos: pos}
}

// ScanAll tokenizes the whole file, including the trailing EOF token.
func ScanAll(file *source.File, errs *source.ErrorList) []Token {
	l := New(file, errs)
	var out []Token
	for {
		t := l.Next()
		out = append(out, t)
		if t.Kind == token.EOF {
			return out
		}
	}
}
