package lexer_test

import (
	"strings"
	"testing"
	"testing/quick"

	"sptc/internal/lexer"
	"sptc/internal/source"
	"sptc/internal/token"
)

func scan(t *testing.T, src string) ([]lexer.Token, *source.ErrorList) {
	t.Helper()
	var errs source.ErrorList
	toks := lexer.ScanAll(source.NewFile("t.spl", src), &errs)
	return toks, &errs
}

func kinds(toks []lexer.Token) []token.Kind {
	out := make([]token.Kind, 0, len(toks))
	for _, t := range toks {
		out = append(out, t.Kind)
	}
	return out
}

func TestOperators(t *testing.T) {
	cases := map[string]token.Kind{
		"+": token.PLUS, "-": token.MINUS, "*": token.STAR, "/": token.SLASH,
		"%": token.PERCENT, "&": token.AMP, "|": token.PIPE, "^": token.CARET,
		"<<": token.SHL, ">>": token.SHR, "&&": token.LAND, "||": token.LOR,
		"!": token.NOT, "=": token.ASSIGN, "+=": token.PLUSEQ, "-=": token.MINUSEQ,
		"*=": token.STAREQ, "/=": token.SLASHEQ, "%=": token.PERCENTEQ,
		"++": token.INC, "--": token.DEC, "==": token.EQ, "!=": token.NEQ,
		"<": token.LT, ">": token.GT, "<=": token.LEQ, ">=": token.GEQ,
		"~": token.TILDE, ";": token.SEMICOLON, ",": token.COMMA,
		"(": token.LPAREN, ")": token.RPAREN, "{": token.LBRACE, "}": token.RBRACE,
		"[": token.LBRACKET, "]": token.RBRACKET,
	}
	for src, want := range cases {
		toks, errs := scan(t, src)
		if errs.Len() != 0 {
			t.Errorf("%q: unexpected errors: %v", src, errs.Err())
			continue
		}
		if len(toks) != 2 || toks[0].Kind != want {
			t.Errorf("%q: got %v, want [%s EOF]", src, kinds(toks), want)
		}
	}
}

func TestKeywordsAndIdents(t *testing.T) {
	toks, errs := scan(t, "func var if else while for do break continue return int float foo _bar x9")
	if errs.Len() != 0 {
		t.Fatalf("errors: %v", errs.Err())
	}
	want := []token.Kind{
		token.FUNC, token.VAR, token.IF, token.ELSE, token.WHILE, token.FOR,
		token.DO, token.BREAK, token.CONTINUE, token.RETURN, token.INT, token.FLOAT,
		token.IDENT, token.IDENT, token.IDENT, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s want %s", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind token.Kind
	}{
		{"0", token.INTLIT},
		{"42", token.INTLIT},
		{"0x1F", token.INTLIT},
		{"1.5", token.FLOATLIT},
		{"2.", token.FLOATLIT},
		{"1e9", token.FLOATLIT},
		{"2.5e-3", token.FLOATLIT},
		{"7E+2", token.FLOATLIT},
	}
	for _, c := range cases {
		toks, errs := scan(t, c.src)
		if errs.Len() != 0 {
			t.Errorf("%q: errors: %v", c.src, errs.Err())
			continue
		}
		if toks[0].Kind != c.kind || toks[0].Lit != c.src {
			t.Errorf("%q: got %s %q", c.src, toks[0].Kind, toks[0].Lit)
		}
	}
}

func TestCommentsSkipped(t *testing.T) {
	toks, errs := scan(t, "a // line comment\nb /* block\ncomment */ c")
	if errs.Len() != 0 {
		t.Fatalf("errors: %v", errs.Err())
	}
	if len(toks) != 4 {
		t.Fatalf("got %d tokens, want ident ident ident EOF", len(toks))
	}
	if toks[0].Lit != "a" || toks[1].Lit != "b" || toks[2].Lit != "c" {
		t.Errorf("got %v", toks)
	}
}

func TestPositions(t *testing.T) {
	toks, _ := scan(t, "a\n  bb\n\tccc")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("bb at %v", toks[1].Pos)
	}
	if toks[2].Pos.Line != 3 || toks[2].Pos.Col != 2 {
		t.Errorf("ccc at %v", toks[2].Pos)
	}
}

func TestStringLiteral(t *testing.T) {
	toks, errs := scan(t, `"hello world"`)
	if errs.Len() != 0 {
		t.Fatalf("errors: %v", errs.Err())
	}
	if toks[0].Kind != token.STRLIT || toks[0].Lit != "hello world" {
		t.Errorf("got %v", toks[0])
	}
}

func TestErrors(t *testing.T) {
	for _, src := range []string{"@", "\"unterminated", "/* unterminated", "1e"} {
		_, errs := scan(t, src)
		if errs.Len() == 0 {
			t.Errorf("%q: expected a lex error", src)
		}
	}
}

func TestMaximalMunch(t *testing.T) {
	toks, _ := scan(t, "a<<=b")
	// SPL has no <<=; expect SHL then ASSIGN.
	got := kinds(toks)
	want := []token.Kind{token.IDENT, token.SHL, token.ASSIGN, token.IDENT, token.EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

// TestQuickIdentifiers: any identifier-shaped string lexes to a single
// IDENT (or keyword) token with the same spelling.
func TestQuickIdentifiers(t *testing.T) {
	letters := "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
	digits := "0123456789"
	f := func(seed uint32, n uint8) bool {
		length := int(n)%12 + 1
		var b strings.Builder
		x := seed
		for i := 0; i < length; i++ {
			x = x*1664525 + 1013904223
			if i == 0 {
				b.WriteByte(letters[int(x>>8)%len(letters)])
			} else {
				all := letters + digits
				b.WriteByte(all[int(x>>8)%len(all)])
			}
		}
		src := b.String()
		var errs source.ErrorList
		toks := lexer.ScanAll(source.NewFile("q.spl", src), &errs)
		if errs.Len() != 0 || len(toks) != 2 {
			return false
		}
		return toks[0].Lit == src &&
			(toks[0].Kind == token.IDENT || toks[0].Kind.IsKeyword())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickIntLiterals: every non-negative int literal round-trips.
func TestQuickIntLiterals(t *testing.T) {
	f := func(v uint32) bool {
		src := source.NewFile("q.spl", "")
		_ = src
		lit := fmt_uint(v)
		var errs source.ErrorList
		toks := lexer.ScanAll(source.NewFile("q.spl", lit), &errs)
		return errs.Len() == 0 && len(toks) == 2 &&
			toks[0].Kind == token.INTLIT && toks[0].Lit == lit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func fmt_uint(v uint32) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
