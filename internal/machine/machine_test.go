package machine_test

import (
	"strings"
	"testing"

	"sptc"
	"sptc/internal/interp"
	"sptc/internal/machine"
)

// specFriendly is a loop with a rare cross-iteration dependence and a
// heavy body: an ideal SPT candidate.
const specFriendly = `
var data float[2000];
var total float;
var peaks int;

func main() {
	var i int;
	for (i = 0; i < 2000; i++) {
		data[i] = float((i * 37) % 97) * 0.5 + 1.0;
	}
	for (i = 0; i < 2000; i++) {
		var x float = data[i];
		var acc float = 0.0;
		acc = acc + x * 1.5 + x * x * 0.25;
		acc = acc + fabs(x - 20.0) * 0.125 + fsqrt(x) * 0.5;
		acc = acc + x * 0.0625 + (x + 1.0) * 0.03125;
		acc = acc + fabs(acc - x) + fsqrt(acc + 1.0) * 0.5;
		acc = acc + x * 0.011 + acc * 0.003;
		if (acc > 90.0) {
			peaks = peaks + 1;
		}
		total = total + acc;
	}
	print(total, peaks);
}
`

// serialLoop carries a tight recurrence through every iteration: SPT
// cannot help and cost-driven selection should reject it.
const serialLoop = `
var out int;

func main() {
	var x int = 7;
	var i int;
	for (i = 0; i < 5000; i++) {
		x = (x * 1103515245 + 12345) % 2147483647;
	}
	out = x;
	print(out);
}
`

func compileRun(t *testing.T, src string, level sptc.Level) (*sptc.Result, *machine.Result, string) {
	t.Helper()
	res, err := sptc.Compile("bench.spl", src, level)
	if err != nil {
		t.Fatalf("compile %s: %v", level, err)
	}
	var out strings.Builder
	sim, err := sptc.Simulate(res, &out)
	if err != nil {
		t.Fatalf("simulate %s: %v", level, err)
	}
	return res, sim, out.String()
}

func interpOutput(t *testing.T, res *sptc.Result) string {
	t.Helper()
	var out strings.Builder
	m := interp.New(res.Prog, &out)
	if _, err := m.Run(); err != nil {
		t.Fatalf("interp: %v", err)
	}
	return out.String()
}

func TestSimulatorMatchesInterpreter(t *testing.T) {
	for _, src := range []string{specFriendly, serialLoop} {
		for _, level := range []sptc.Level{sptc.LevelBase, sptc.LevelBest} {
			res, _, simOut := compileRun(t, src, level)
			if want := interpOutput(t, res); simOut != want {
				t.Errorf("level %s: simulator output %q, interpreter %q", level, simOut, want)
			}
		}
	}
}

func TestSPTSpeedsUpFriendlyLoop(t *testing.T) {
	_, base, baseOut := compileRun(t, specFriendly, sptc.LevelBase)
	res, spt, sptOut := compileRun(t, specFriendly, sptc.LevelBest)
	if baseOut != sptOut {
		t.Fatalf("outputs differ: %q vs %q", baseOut, sptOut)
	}
	if len(res.SPT) == 0 {
		for _, r := range res.Reports {
			t.Logf("loop %s/%d: %s body=%d cost=%.2f", r.Func, r.LoopID, r.Decision, r.BodySize, r.EstCost)
		}
		t.Fatal("no SPT loops selected")
	}
	speedup := base.Cycles / spt.Cycles
	t.Logf("base=%.0f spt=%.0f speedup=%.3f ipc=%.2f", base.Cycles, spt.Cycles, speedup, base.IPC())
	if speedup < 1.05 {
		t.Errorf("expected at least 5%% speedup on the speculation-friendly loop, got %.3f", speedup)
	}
	for _, ls := range spt.Loops {
		t.Logf("loop %d: iters=%d spec=%d misspec=%d reexec=%.4f speedup=%.3f",
			ls.ID, ls.Iterations, ls.SpecIters, ls.MisspecIters, ls.ReexecRatio(), ls.LoopSpeedup())
	}
}

func TestSerialLoopNotSelected(t *testing.T) {
	res, _, _ := compileRun(t, serialLoop, sptc.LevelBest)
	if len(res.SPT) != 0 {
		t.Errorf("serial recurrence loop was selected for speculation")
	}
}

func TestSerialLoopForcedSpeculationMisspeculates(t *testing.T) {
	// Force the serial loop to be transformed; the simulator must still
	// produce correct output, and the re-execution ratio must be high.
	opt := sptc.DefaultOptions(sptc.LevelBasic)
	opt.DisableSelection = true
	res, err := sptc.CompileWith("bench.spl", serialLoop, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if len(res.SPT) == 0 {
		t.Skip("loop not transformable")
	}
	var out strings.Builder
	sim, err := sptc.Simulate(res, &out)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if want := interpOutput(t, res); out.String() != want {
		t.Fatalf("output %q, want %q", out.String(), want)
	}
	for _, ls := range sim.Loops {
		if ls.SpecIters > 100 && ls.ReexecRatio() < 0.3 {
			t.Errorf("expected heavy re-execution on a serial loop, got %.3f", ls.ReexecRatio())
		}
	}
}

func TestIPCInPlausibleRange(t *testing.T) {
	_, sim, _ := compileRun(t, specFriendly, sptc.LevelBase)
	ipc := sim.IPC()
	if ipc < 0.2 || ipc > 2.5 {
		t.Errorf("base IPC %.2f outside plausible Itanium2 range", ipc)
	}
}

func TestCoverageAttribution(t *testing.T) {
	res, err := sptc.Compile("bench.spl", specFriendly, sptc.LevelBase)
	if err != nil {
		t.Fatal(err)
	}
	opt, sizes := sptc.CoverageOptions(res.Prog, 1000)
	if len(sizes) == 0 {
		t.Fatal("no loops found for coverage attribution")
	}
	sim, err := machine.Run(res.Prog, machine.DefaultConfig(), opt)
	if err != nil {
		t.Fatal(err)
	}
	var covered float64
	for _, c := range sim.CyclesByLoop {
		covered += c
	}
	frac := covered / sim.Cycles
	t.Logf("loop coverage: %.2f of %.0f cycles", frac, sim.Cycles)
	if frac <= 0.5 || frac > 1.0001 {
		t.Errorf("coverage fraction %.3f implausible for a loop-dominated program", frac)
	}
}
