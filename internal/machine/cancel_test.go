package machine_test

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"sptc/internal/core"
	"sptc/internal/interp"
	"sptc/internal/machine"
	"sptc/internal/resilience"
)

const cancelSrc = `
var out int[128];
func main() {
	var i int;
	var j int;
	for (j = 0; j < 200; j++) {
		for (i = 0; i < 100; i++) {
			var v int = i * 3 + (i >> 1) % 7 + i % 11 + (i & 15);
			out[i & 127] = out[i & 127] + v % 13;
		}
	}
	print(out[5]);
}
`

func TestSimulatorContextCanceled(t *testing.T) {
	res, ro := compileSPT(t, cancelSrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ro.Context = ctx
	_, err := machine.Run(res.Prog, machine.DefaultConfig(), ro)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestSimulatorInjectRun(t *testing.T) {
	defer resilience.DisarmAll()
	res, ro := compileSPT(t, cancelSrc)
	resilience.Arm("machine.run", resilience.Fault{Kind: resilience.FaultError})
	_, err := machine.Run(res.Prog, machine.DefaultConfig(), ro)
	if !errors.Is(err, resilience.ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	resilience.DisarmAll()
	if _, err := machine.Run(res.Prog, machine.DefaultConfig(), ro); err != nil {
		t.Fatalf("disarmed run: %v", err)
	}
}

func TestInterpreterContextCanceled(t *testing.T) {
	opt := core.DefaultOptions(core.LevelBase)
	res, err := core.CompileSource("cancel.spl", cancelSrc, opt)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := interp.New(res.Prog, io.Discard)
	m.Ctx = ctx
	if _, err := m.Run(); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestSimulatorRunsWithoutContext(t *testing.T) {
	// The zero RunOptions (no Context) must behave exactly as before.
	res, ro := compileSPT(t, cancelSrc)
	var out strings.Builder
	ro.Out = &out
	if _, err := machine.Run(res.Prog, machine.DefaultConfig(), ro); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "") || out.Len() == 0 {
		t.Fatal("no output produced")
	}
}
