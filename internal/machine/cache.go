package machine

// cacheLevel is one set-associative level with LRU replacement.
type cacheLevel struct {
	sets     int
	assoc    int
	lineBits uint
	lat      float64
	tags     [][]int64 // tag per way, -1 = invalid
	lru      [][]int64 // last-use stamp per way
	stamp    int64

	hits, misses int64
}

func newCacheLevel(words, assoc, lineWords int, lat float64) *cacheLevel {
	lineBits := uint(0)
	for 1<<lineBits < lineWords {
		lineBits++
	}
	lines := words / lineWords
	sets := lines / assoc
	if sets < 1 {
		sets = 1
	}
	c := &cacheLevel{sets: sets, assoc: assoc, lineBits: lineBits, lat: lat}
	c.tags = make([][]int64, sets)
	c.lru = make([][]int64, sets)
	for i := range c.tags {
		c.tags[i] = make([]int64, assoc)
		c.lru[i] = make([]int64, assoc)
		for w := range c.tags[i] {
			c.tags[i][w] = -1
		}
	}
	return c
}

// access looks up the line holding addr, filling it on miss. Returns
// whether it hit.
func (c *cacheLevel) access(addr int) bool {
	line := int64(addr) >> c.lineBits
	set := int(line % int64(c.sets))
	c.stamp++
	ways := c.tags[set]
	for w, t := range ways {
		if t == line {
			c.lru[set][w] = c.stamp
			c.hits++
			return true
		}
	}
	c.misses++
	// Fill: evict LRU way.
	victim := 0
	for w := 1; w < c.assoc; w++ {
		if c.lru[set][w] < c.lru[set][victim] {
			victim = w
		}
	}
	ways[victim] = line
	c.lru[set][victim] = c.stamp
	return false
}

// hierarchy is the shared three-level cache plus memory.
type hierarchy struct {
	l1, l2, l3 *cacheLevel
	memLat     float64
	memAccess  int64
}

func newHierarchy(cfg Config) *hierarchy {
	return &hierarchy{
		l1:     newCacheLevel(cfg.L1Words, cfg.L1Assoc, cfg.LineWords, cfg.L1Lat),
		l2:     newCacheLevel(cfg.L2Words, cfg.L2Assoc, cfg.LineWords, cfg.L2Lat),
		l3:     newCacheLevel(cfg.L3Words, cfg.L3Assoc, cfg.LineWords, cfg.L3Lat),
		memLat: cfg.MemLat,
	}
}

// load returns the latency of a load from addr.
func (h *hierarchy) load(addr int) float64 {
	if h.l1.access(addr) {
		return h.l1.lat
	}
	if h.l2.access(addr) {
		return h.l2.lat
	}
	if h.l3.access(addr) {
		return h.l3.lat
	}
	h.memAccess++
	return h.memLat
}

// store touches the hierarchy (write-allocate) but is charged as issue
// cost only; store latency hides behind the store buffer.
func (h *hierarchy) store(addr int) {
	if h.l1.access(addr) {
		return
	}
	if h.l2.access(addr) {
		return
	}
	if h.l3.access(addr) {
		return
	}
	h.memAccess++
}

// branchPredictor is a table of 2-bit saturating counters indexed by a
// hash of the branch site.
type branchPredictor struct {
	table []uint8
	mask  int

	lookups, misses int64
}

func newPredictor(entries int) *branchPredictor {
	n := 1
	for n < entries {
		n <<= 1
	}
	return &branchPredictor{table: make([]uint8, n), mask: n - 1}
}

// predict consults and updates the counter for site; returns true when
// the prediction matched the outcome.
func (bp *branchPredictor) predict(site int, taken bool) bool {
	idx := (site * 2654435761) & bp.mask
	ctr := bp.table[idx]
	pred := ctr >= 2
	if taken && ctr < 3 {
		bp.table[idx] = ctr + 1
	}
	if !taken && ctr > 0 {
		bp.table[idx] = ctr - 1
	}
	bp.lookups++
	if pred != taken {
		bp.misses++
		return false
	}
	return true
}
