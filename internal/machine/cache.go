package machine

// cacheLevel is one set-associative level with LRU replacement. Each
// way packs its tag (high 32 bits) and last-use stamp (low 32 bits)
// into one word, stored flat (sets x assoc), so an access walks a
// single contiguous run of memory. 32-bit fields suffice: a tag
// collision would need a simulated memory beyond 2^31 words and a
// stamp wrap 2^31 accesses in one run, neither of which is reachable,
// and both engines share this model so they stay bit-identical
// regardless.
type cacheLevel struct {
	sets     int
	setMask  int64 // sets-1 when sets is a power of two, else -1
	assoc    int
	lineBits uint
	lat      float64
	meta     []uint64 // tag<<32 | stamp per (set, way); tag ^uint32(0) = invalid
	stamp    uint32

	hits, misses int64
}

// invalidWay has a tag (all-ones) that no real line produces, since
// tags come from non-negative line numbers below 2^31.
const invalidWay = uint64(0xffffffff) << 32

func newCacheLevel(words, assoc, lineWords int, lat float64) *cacheLevel {
	lineBits := uint(0)
	for 1<<lineBits < lineWords {
		lineBits++
	}
	lines := words / lineWords
	sets := lines / assoc
	if sets < 1 {
		sets = 1
	}
	c := &cacheLevel{sets: sets, setMask: -1, assoc: assoc, lineBits: lineBits, lat: lat}
	if sets&(sets-1) == 0 {
		c.setMask = int64(sets - 1)
	}
	c.meta = make([]uint64, sets*assoc)
	for i := range c.meta {
		c.meta[i] = invalidWay
	}
	return c
}

// reset restores the level to its post-construction state (all ways
// invalid, stamps and counters zero) so a pooled engine can reuse the
// allocation with cold-cache behavior identical to a fresh level.
func (c *cacheLevel) reset() {
	for i := range c.meta {
		c.meta[i] = invalidWay
	}
	c.stamp = 0
	c.hits, c.misses = 0, 0
}

// access looks up the line holding addr, filling it on miss. Returns
// whether it hit.
func (c *cacheLevel) access(addr int) bool {
	hit, _ := c.accessLine(int64(addr) >> c.lineBits)
	return hit
}

// accessLine looks up line (an address already shifted by lineBits),
// filling it on miss. The second result is the meta index of the way
// the line now occupies (the hit way, or the filled victim), which the
// hierarchy's residency scoreboard memoizes for repeat accesses.
func (c *cacheLevel) accessLine(line int64) (bool, int32) {
	var set int
	if c.setMask >= 0 {
		set = int(line & c.setMask)
	} else {
		set = int(line % int64(c.sets))
	}
	c.stamp++
	base := set * c.assoc
	tag := uint64(uint32(line)) << 32
	if c.assoc == 4 {
		// The default L1 (which absorbs nearly every access) is 4-way:
		// a fixed-size view drops the bounds checks and loop overhead
		// from the sweep. Semantics are identical to the generic path.
		w := (*[4]uint64)(c.meta[base : base+4 : base+4])
		if w[0]&invalidWay == tag {
			w[0] = tag | uint64(c.stamp)
			c.hits++
			return true, int32(base)
		}
		if w[1]&invalidWay == tag {
			w[1] = tag | uint64(c.stamp)
			c.hits++
			return true, int32(base + 1)
		}
		if w[2]&invalidWay == tag {
			w[2] = tag | uint64(c.stamp)
			c.hits++
			return true, int32(base + 2)
		}
		if w[3]&invalidWay == tag {
			w[3] = tag | uint64(c.stamp)
			c.hits++
			return true, int32(base + 3)
		}
		victim, minStamp := 0, uint32(w[0])
		if st := uint32(w[1]); st < minStamp {
			victim, minStamp = 1, st
		}
		if st := uint32(w[2]); st < minStamp {
			victim, minStamp = 2, st
		}
		if st := uint32(w[3]); st < minStamp {
			victim = 3
		}
		c.misses++
		w[victim] = tag | uint64(c.stamp)
		return false, int32(base + victim)
	}
	ways := c.meta[base : base+c.assoc]
	for w, m := range ways {
		if m&invalidWay == tag {
			ways[w] = tag | uint64(c.stamp)
			c.hits++
			return true, int32(base + w)
		}
	}
	// Miss: the victim is the lowest-indexed way with the minimal stamp.
	// Scanning for it only here keeps the (dominant) hit path to a single
	// sweep. Stamps sit in the low bits, so comparing the full packed
	// words would order by tag first; mask them out.
	victim := 0
	minStamp := uint32(ways[0])
	for w := 1; w < len(ways); w++ {
		if s := uint32(ways[w]); s < minStamp {
			victim, minStamp = w, s
		}
	}
	c.misses++
	ways[victim] = tag | uint64(c.stamp)
	return false, int32(base + victim)
}

// sbSize is the slot count of the hierarchy's line-residency
// scoreboard. It models the reuse distance of an in-order issue
// window: consecutive accesses overwhelmingly touch lines that were
// just touched (array sweeps revisit the same line LineWords times in
// a row, plus a handful of hot scalar lines), so a small direct-mapped
// memo captures nearly all repeats while staying resident in a few
// hardware cache lines. Larger boards (512 slots) measured slower:
// the extra real-cache footprint outweighs the aliasing it avoids.
const sbSize = 64

// sbEntry memoizes where one simulated line was last seen in L1.
type sbEntry struct {
	line int64 // simulated line number, or -1 for an empty slot
	idx  int32 // index into l1.meta where that line was last resident
}

// hierarchy is the shared three-level cache plus memory, fronted by a
// window scoreboard that answers repeat same-line hits without
// re-walking the set.
//
// Scoreboard invariants (DESIGN.md "Memory model"):
//   - An entry is advisory, never authoritative: the fast path
//     re-validates the memoized way's tag against l1.meta before use,
//     so a stale entry (the way was re-filled by another line since)
//     falls through to the full walk. Tags are unique per line (line
//     numbers are non-negative and below 2^31), so a tag match proves
//     the line is resident in that way.
//   - On a validated hit the fast path performs exactly the mutations
//     of a full walk that hits: one global stamp tick, the way's
//     stamp refresh, one l1.hits increment. L2/L3 are untouched by an
//     L1 hit in both paths. Hit/miss counters and LRU state are
//     therefore bit-identical to per-access walks by construction.
//   - The slow path records the way each line lands in (hit or fill),
//     so the very next access to that line takes the fast path.
type hierarchy struct {
	l1, l2, l3 *cacheLevel
	lineBits   uint
	memLat     float64
	memAccess  int64
	sb         [sbSize]sbEntry
}

func newHierarchy(cfg Config) *hierarchy {
	h := &hierarchy{
		l1:     newCacheLevel(cfg.L1Words, cfg.L1Assoc, cfg.LineWords, cfg.L1Lat),
		l2:     newCacheLevel(cfg.L2Words, cfg.L2Assoc, cfg.LineWords, cfg.L2Lat),
		l3:     newCacheLevel(cfg.L3Words, cfg.L3Assoc, cfg.LineWords, cfg.L3Lat),
		memLat: cfg.MemLat,
	}
	h.lineBits = h.l1.lineBits
	h.clearScoreboard()
	return h
}

func (h *hierarchy) clearScoreboard() {
	for i := range h.sb {
		h.sb[i] = sbEntry{line: -1}
	}
}

// reset cold-clears all three levels, the scoreboard and the
// memory-access counter.
func (h *hierarchy) reset() {
	h.l1.reset()
	h.l2.reset()
	h.l3.reset()
	h.clearScoreboard()
	h.memAccess = 0
}

// load returns the latency of a load from addr.
func (h *hierarchy) load(addr int) float64 {
	line := int64(addr) >> h.lineBits
	e := &h.sb[int(line)&(sbSize-1)]
	if e.line == line {
		l1 := h.l1
		if tag := uint64(uint32(line)) << 32; l1.meta[e.idx]&invalidWay == tag {
			l1.stamp++
			l1.meta[e.idx] = tag | uint64(l1.stamp)
			l1.hits++
			return l1.lat
		}
	}
	return h.loadLine(line, e)
}

// loadLine is the full walk behind the scoreboard fast path; it
// refreshes the scoreboard entry with the L1 way the line now occupies.
func (h *hierarchy) loadLine(line int64, e *sbEntry) float64 {
	hit, idx := h.l1.accessLine(line)
	e.line, e.idx = line, idx
	if hit {
		return h.l1.lat
	}
	if hit, _ := h.l2.accessLine(line); hit {
		return h.l2.lat
	}
	if hit, _ := h.l3.accessLine(line); hit {
		return h.l3.lat
	}
	h.memAccess++
	return h.memLat
}

// store touches the hierarchy (write-allocate) but is charged as issue
// cost only; store latency hides behind the store buffer.
func (h *hierarchy) store(addr int) {
	line := int64(addr) >> h.lineBits
	e := &h.sb[int(line)&(sbSize-1)]
	if e.line == line {
		l1 := h.l1
		if tag := uint64(uint32(line)) << 32; l1.meta[e.idx]&invalidWay == tag {
			l1.stamp++
			l1.meta[e.idx] = tag | uint64(l1.stamp)
			l1.hits++
			return
		}
	}
	h.loadLine(line, e)
}

// branchPredictor is a table of 2-bit saturating counters indexed by a
// hash of the branch site.
type branchPredictor struct {
	table []uint8
	mask  int

	lookups, misses int64
}

func newPredictor(entries int) *branchPredictor {
	n := 1
	for n < entries {
		n <<= 1
	}
	return &branchPredictor{table: make([]uint8, n), mask: n - 1}
}

// reset clears the counters to the strongly-not-taken initial state.
func (bp *branchPredictor) reset() {
	clear(bp.table)
	bp.lookups, bp.misses = 0, 0
}

// predict consults and updates the counter for site; returns true when
// the prediction matched the outcome.
func (bp *branchPredictor) predict(site int, taken bool) bool {
	idx := (site * 2654435761) & bp.mask
	ctr := bp.table[idx]
	pred := ctr >= 2
	if taken && ctr < 3 {
		bp.table[idx] = ctr + 1
	}
	if !taken && ctr > 0 {
		bp.table[idx] = ctr - 1
	}
	bp.lookups++
	if pred != taken {
		bp.misses++
		return false
	}
	return true
}
