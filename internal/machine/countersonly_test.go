package machine_test

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"sptc"
	"sptc/internal/benchprog"
	"sptc/internal/ir"
	"sptc/internal/machine"
)

// runCountersOnly executes one compiled program in counters-only mode
// under the given engine.
func runCountersOnly(t *testing.T, res *sptc.Result, kind machine.EngineKind) (*machine.Result, string) {
	t.Helper()
	opt := sptc.SimulationOptions(res)
	var out strings.Builder
	opt.Out = &out
	opt.Engine = kind
	opt.CountersOnly = true
	sim, err := machine.Run(res.Prog, machine.DefaultConfig(), opt)
	if err != nil {
		t.Fatalf("counters-only engine %v: %v", kind, err)
	}
	return sim, out.String()
}

// stripTiming returns a deep copy of a full-fidelity result with every
// cycle-derived field zeroed — the counters-only contract: a
// counters-only run must equal this, field for field.
func stripTiming(full *machine.Result) *machine.Result {
	s := *full
	s.Cycles = 0
	s.Loops = make(map[int]*machine.LoopStats, len(full.Loops))
	for id, ls := range full.Loops {
		c := *ls
		c.SpecCycles, c.ReexecCycles, c.SeqCycles, c.Elapsed = 0, 0, 0, 0
		s.Loops[id] = &c
	}
	return &s
}

// requireCountersIdentical asserts a counters-only result reproduces
// every fidelity counter of the (stripped) full-fidelity result: output
// bytes, instruction and step-derived counts, branch predictor state,
// memory-hierarchy counters, and every per-loop integer statistic.
func requireCountersIdentical(t *testing.T, label string, want, got *machine.Result, wantOut, gotOut string) {
	t.Helper()
	if wantOut != gotOut {
		t.Errorf("%s: output differs: full %q, counters-only %q", label, wantOut, gotOut)
	}
	if got.Cycles != 0 {
		t.Errorf("%s: counters-only Cycles = %v, want 0", label, got.Cycles)
	}
	if want.Ops != got.Ops {
		t.Errorf("%s: sim_instructions differ: full %d, counters-only %d", label, want.Ops, got.Ops)
	}
	if want.BranchLookups != got.BranchLookups || want.BranchMisses != got.BranchMisses {
		t.Errorf("%s: branch counters differ: full %d/%d, counters-only %d/%d",
			label, want.BranchLookups, want.BranchMisses, got.BranchLookups, got.BranchMisses)
	}
	if want.MemAccesses != got.MemAccesses {
		t.Errorf("%s: mem_accesses differ: full %d, counters-only %d", label, want.MemAccesses, got.MemAccesses)
	}
	if !reflect.DeepEqual(want.CyclesByLoop, got.CyclesByLoop) {
		t.Errorf("%s: attributed cycles differ: full %v, counters-only %v", label, want.CyclesByLoop, got.CyclesByLoop)
	}
	if len(want.Loops) != len(got.Loops) {
		t.Errorf("%s: loop-stat sets differ: full %d loops, counters-only %d", label, len(want.Loops), len(got.Loops))
		return
	}
	for id, wl := range want.Loops {
		gl := got.Loops[id]
		if gl == nil {
			t.Errorf("%s: loop %d present only under full fidelity", label, id)
			continue
		}
		if *wl != *gl {
			t.Errorf("%s: loop %d stats differ:\n full (stripped) %+v\n counters-only   %+v", label, id, *wl, *gl)
		}
	}
}

// TestCountersOnlyFidelity is the oracle for the counters-only fast
// mode: for every benchmark at every fidelity level, a counters-only
// run must reproduce every fidelity counter of a full-fidelity run
// exactly — same program output, instruction counts, branch
// lookups/misses, cache memory accesses, and per-loop speculation
// statistics — with all cycle-derived fields zero. Both engines are
// held to it, and to each other.
func TestCountersOnlyFidelity(t *testing.T) {
	suite := benchprog.Suite()
	if testing.Short() {
		suite = suite[:3]
	}
	for _, b := range suite {
		for _, level := range fidelityLevels {
			b, level := b, level
			t.Run(b.Name+"/"+level.String(), func(t *testing.T) {
				t.Parallel()
				res, err := sptc.Compile(b.Name+".spl", b.Source, level)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				label := b.Name + "/" + level.String()
				full, fullOut := runEngine(t, res, machine.EngineBytecode)
				want := stripTiming(full)

				bc, bcOut := runCountersOnly(t, res, machine.EngineBytecode)
				requireCountersIdentical(t, label+"/bytecode", want, bc, fullOut, bcOut)

				tree, treeOut := runCountersOnly(t, res, machine.EngineTree)
				requireCountersIdentical(t, label+"/tree", want, tree, fullOut, treeOut)

				// And the two counters-only engines against each other,
				// bit for bit.
				requireIdentical(t, label+"/cross", tree, bc, treeOut, bcOut)
			})
		}
	}
}

// TestCountersOnlyRejectsAttribution pins the documented incompatibility:
// loop attribution is cycle accounting, so requesting it together with
// CountersOnly is a configuration error, not a silent zero map.
func TestCountersOnlyRejectsAttribution(t *testing.T) {
	res, err := sptc.Compile("spec.spl", specFriendly, sptc.LevelBest)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	opt := sptc.SimulationOptions(res)
	opt.CountersOnly = true
	opt.AttributeLoops = map[*ir.Block]int{} // any non-nil value
	_, err = machine.Run(res.Prog, machine.DefaultConfig(), opt)
	if err == nil {
		t.Fatal("CountersOnly + AttributeLoops accepted; want error")
	}
	if !strings.Contains(err.Error(), "CountersOnly") {
		t.Errorf("error %q does not mention CountersOnly", err)
	}
}

// TestRunRejectsInvalidConfig pins satellite contract of Config.Validate:
// Run refuses a broken cache geometry before simulating, and the error
// unwraps to the typed *machine.ConfigError the CLIs and the service
// report from.
func TestRunRejectsInvalidConfig(t *testing.T) {
	res, err := sptc.Compile("spec.spl", specFriendly, sptc.LevelBest)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cfg := machine.DefaultConfig()
	cfg.LineWords = 7 // not a power of two
	_, err = machine.Run(res.Prog, cfg, sptc.SimulationOptions(res))
	if err == nil {
		t.Fatal("invalid config accepted by Run")
	}
	var ce *machine.ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("Run error %T (%v) does not unwrap to *machine.ConfigError", err, err)
	}
	if ce.Field != "LineWords" {
		t.Errorf("Field = %q, want LineWords", ce.Field)
	}
}
