package machine

import (
	"fmt"
	"math"

	"sptc/internal/ir"
)

// execByteCount is the counters-only twin of execByte: the same opcode
// semantics, operand handling, control flow and fidelity counters, with
// every cycle-accounting statement removed. It exists because the float
// cycle accumulation is a serial dependency chain through the dispatch
// loop (each add depends on the last), and sweeps that only want
// fidelity counters (hits/misses, predictor lookups, fork/kill/iter
// counts, op and step totals) pay for it on every instruction.
//
// The contract, pinned by TestCountersOnlyFidelity:
//   - Control flow is identical to execByte: every branch, bounds check,
//     step-limit check, context poll and error path fires the same way.
//     Nothing here ever depended on a float.
//   - Every counter-mutating call is kept in execByte's order: the
//     branch predictors (lookups/misses and table state), the cache
//     hierarchy walks (hits/misses/memAccess, LRU state), speculative
//     taint propagation, sc.ops / sc.reexecOps charging, and program
//     output.
//   - s.cycles and s.memCycles are simply not maintained. Whatever the
//     surrounding SPT pair-timing code computes from them is garbage,
//     which is fine: no counter and no branch depends on those floats,
//     and Engine.Run zeroes every cycle-derived Result field in
//     counters-only mode before it can be observed.
//
// Any change to execByte must be mirrored here (and in the walker);
// the fidelity tests hold all three together.
func (s *sim) execByteCount(fr *frame, blk, prev *ir.Block, stop func(*ir.Block) bool) (execOutcome, error) {
	lfn := s.low.fns[fr.fn]
	if lfn == nil {
		return s.exec(fr, blk, prev, stop)
	}
	code := lfn.code
	aux := lfn.aux
	sptID := s.sptID[fr.fn]
	pc := lfn.entry[blk]
	prevBlk := prev

	vbase := len(s.vstack)
	if need := vbase + lfn.maxStack; cap(s.vstack) < need {
		ns := make([]tval, vbase, need+32)
		copy(ns, s.vstack)
		s.vstack = ns
	}
	vs := s.vstack[:cap(s.vstack)]
	sp := vbase
	defer func() { s.vstack = s.vstack[:vbase] }()

	ops, steps := s.ops, s.steps
	maxSteps := s.cfg.MaxSteps
	ctx := s.ctx
	var o0 int64 // op count at the current statement's start

	// Counters-only implies s.attr == nil (Run rejects the combination),
	// so the attribution arm of bcEnter is dropped entirely and skipEnter
	// loses its attr term.
	skipEnter := s.sptActive || s.spt == nil

	// The same pre/post-fork interleave specialization as execByte; see
	// the comment there. The three boundary sites reload.
	spec := s.spec
	undo := s.undoActive
	bp := s.bpM
	if spec != nil {
		bp = s.bpS
	}
	stopHdr, stopIn := s.stopHdr, s.stopIn
	hier := s.hier
	mem := s.mem
	regs, regGen := fr.regs, fr.regGen
	baseVals, baseGen := fr.baseVals, fr.baseGen
	gen := fr.gen

	for {
		in := &code[pc]
		op := in.op
		if op&bcStepped != 0 {
			steps++
			if steps > maxSteps {
				s.ops, s.steps = ops, steps
				return execOutcome{}, ErrStepLimit
			}
			if ctx != nil && steps%ctxPollSteps == 0 {
				if err := ctx.Err(); err != nil {
					s.ops, s.steps = ops, steps
					return execOutcome{}, err
				}
			}
			o0 = ops
			op &^= bcStepped
		}
		switch op {
		case bcEnter:
			b := in.blk
			if !s.sptActive && sptID != nil {
				if id := int(sptID[in.b]); id >= 0 {
					s.ops, s.steps = ops, steps
					s.vstack = vs[:sp]
					exit, exitPrev, err := s.runSPTLoop(fr, b, prevBlk, id)
					ops, steps = s.ops, s.steps
					vs = s.vstack[:cap(s.vstack)]
					spec, undo = s.spec, s.undoActive
					bp = s.bpM
					if spec != nil {
						bp = s.bpS
					}
					if rt, ok := err.(errReturnThroughLoop); ok {
						return execOutcome{ret: true, retVal: rt.val, retTaint: rt.taint}, nil
					}
					if err != nil {
						return execOutcome{}, err
					}
					if stop != nil && stop(exit) {
						return execOutcome{stopped: exit, prev: exitPrev}, nil
					}
					prevBlk = exitPrev
					pc = lfn.entry[exit]
					continue
				}
			}
			if in.a >= 0 && prevBlk != nil {
				phis := lfn.phis[in.a]
				pi := b.PredIndex(prevBlk)
				if pi < 0 {
					s.ops, s.steps = ops, steps
					return execOutcome{}, fmt.Errorf("machine: %s: b%d entered from non-pred b%d", fr.fn.Name, b.ID, prevBlk.ID)
				}
				if cap(s.phiVals) < len(phis) {
					s.phiVals = make([]Value, len(phis))
					s.phiTaints = make([]bool, len(phis))
				}
				vals := s.phiVals[:len(phis)]
				taints := s.phiTaints[:len(phis)]
				for i, phi := range phis {
					v, tnt := s.readVar(fr, phi.PhiArgs[pi])
					vals[i], taints[i] = v, tnt
				}
				for i, phi := range phis {
					s.defineVar(fr, phi.Dst, vals[i], taints[i])
				}
			}
			pc++

		case bcStep:
			steps++
			if steps > maxSteps {
				s.ops, s.steps = ops, steps
				return execOutcome{}, ErrStepLimit
			}
			if ctx != nil && steps%ctxPollSteps == 0 {
				if err := ctx.Err(); err != nil {
					s.ops, s.steps = ops, steps
					return execOutcome{}, err
				}
			}
			o0 = ops
			pc++

		case bcGoto:
			prevBlk = in.blk
			tgt := in.a
			if stop != nil {
				te := &code[tgt]
				var stopped bool
				if stopIn != nil {
					stopped = te.blk == stopHdr || !stopIn[te.b]
				} else {
					stopped = stop(te.blk)
				}
				if stopped {
					s.ops, s.steps = ops, steps
					return execOutcome{stopped: te.blk, prev: prevBlk}, nil
				}
				if skipEnter && te.a < 0 {
					tgt++
				}
			} else if skipEnter {
				if te := &code[tgt]; te.a < 0 {
					tgt++
				}
			}
			pc = tgt

		case bcIf:
			sp--
			cond := vs[sp]
			ops++
			var taken bool
			if in.bin != 0 {
				taken = cond.v.F != 0
			} else {
				taken = cond.v.I != 0
			}
			bp.predict(int(in.d), taken)
			tgt := in.b
			if taken {
				tgt = in.a
			}
			if sc := spec; sc != nil {
				sc.ops += ops - o0
				if cond.t {
					sc.reexecOps += ops - o0
				}
			}
			prevBlk = in.blk
			if stop != nil {
				te := &code[tgt]
				var stopped bool
				if stopIn != nil {
					stopped = te.blk == stopHdr || !stopIn[te.b]
				} else {
					stopped = stop(te.blk)
				}
				if stopped {
					s.ops, s.steps = ops, steps
					return execOutcome{stopped: te.blk, prev: prevBlk}, nil
				}
				if skipEnter && te.a < 0 {
					tgt++
				}
			} else if skipEnter {
				if te := &code[tgt]; te.a < 0 {
					tgt++
				}
			}
			pc = tgt

		case bcFellThrough:
			s.ops, s.steps = ops, steps
			return execOutcome{}, fmt.Errorf("machine: %s: b%d fell through", fr.fn.Name, in.blk.ID)

		case bcConst:
			vs[sp] = tval{v: in.val}
			sp++
			pc++

		case bcUseVar:
			var tv tval
			if spec == nil {
				if regGen[in.a] == gen {
					tv.v = regs[in.a]
				}
			} else {
				tv.v, tv.t = s.readVar(fr, aux[pc].v)
			}
			vs[sp] = tv
			sp++
			pc++

		case bcLoadG:
			ops++
			addr := int(in.c)
			hier.load(addr)
			if spec == nil {
				vs[sp] = tval{v: mem[addr]}
			} else {
				v, tnt := s.readMem(addr)
				vs[sp] = tval{v, tnt}
			}
			sp++
			pc++

		case bcAddrInit:
			vs[sp] = tval{}
			sp++
			pc++

		case bcAddrIdx:
			sp--
			ix := vs[sp]
			acc := &vs[sp-1]
			g := aux[pc].g
			d := int(in.a)
			i := int(ix.v.I)
			if i < 0 || i >= g.Dims[d] {
				s.ops, s.steps = ops, steps
				return execOutcome{}, fmt.Errorf("machine: %s: index %d out of range [0,%d) for %s (stmt s%d)",
					fr.fn.Name, i, g.Dims[d], g.Name, aux[pc].st.ID)
			}
			acc.v.I = acc.v.I*int64(g.Dims[d]) + int64(i)
			acc.t = acc.t || ix.t
			pc++

		case bcLoadAddr:
			acc := vs[sp-1]
			addr := int(in.c) + int(acc.v.I)
			ops++
			hier.load(addr)
			if spec == nil {
				vs[sp-1] = tval{v: mem[addr], t: acc.t}
			} else {
				v, t2 := s.readMem(addr)
				vs[sp-1] = tval{v, acc.t || t2}
			}
			pc++

		case bcBinII:
			var y tval
			switch in.ym {
			case bcMConst:
				y.v = in.val
			case bcMVar:
				if spec == nil {
					if regGen[in.yid] == gen {
						y.v = regs[in.yid]
					}
				} else {
					y.v, y.t = s.readVar(fr, aux[pc].yv)
				}
			default:
				sp--
				y = vs[sp]
			}
			var x tval
			switch in.xm {
			case bcMConst:
				x.v = in.val
			case bcMVar:
				if spec == nil {
					if regGen[in.xid] == gen {
						x.v = regs[in.xid]
					}
				} else {
					x.v, x.t = s.readVar(fr, aux[pc].xv)
				}
			default:
				sp--
				x = vs[sp]
			}
			ops++
			xi, yi := x.v.I, y.v.I
			var r int64
			switch ir.BinOp(in.bin) {
			case ir.BinAdd:
				r = xi + yi
			case ir.BinSub:
				r = xi - yi
			case ir.BinMul:
				r = xi * yi
			case ir.BinAnd:
				r = xi & yi
			case ir.BinOr:
				r = xi | yi
			case ir.BinXor:
				r = xi ^ yi
			case ir.BinShl:
				r = xi << uint(yi&63)
			case ir.BinShr:
				r = xi >> uint(yi&63)
			case ir.BinDiv:
				r = xi / yi
			case ir.BinRem:
				r = xi % yi
			case ir.BinEq:
				r = b2iInt(xi == yi)
			case ir.BinNeq:
				r = b2iInt(xi != yi)
			case ir.BinLt:
				r = b2iInt(xi < yi)
			case ir.BinLeq:
				r = b2iInt(xi <= yi)
			case ir.BinGt:
				r = b2iInt(xi > yi)
			case ir.BinGeq:
				r = b2iInt(xi >= yi)
			case ir.BinLAnd:
				r = b2iInt(xi != 0 && yi != 0)
			case ir.BinLOr:
				r = b2iInt(xi != 0 || yi != 0)
			}
			vs[sp] = tval{v: Value{I: r}, t: x.t || y.t}
			sp++
			pc++

		case bcBinII2:
			var y tval
			switch in.ym {
			case bcMConst:
				y.v = in.val
			case bcMVar:
				if spec == nil {
					if regGen[in.yid] == gen {
						y.v = regs[in.yid]
					}
				} else {
					y.v, y.t = s.readVar(fr, aux[pc].yv)
				}
			default:
				sp--
				y = vs[sp]
			}
			var x tval
			switch in.xm {
			case bcMConst:
				x.v = in.val
			case bcMVar:
				if spec == nil {
					if regGen[in.xid] == gen {
						x.v = regs[in.xid]
					}
				} else {
					x.v, x.t = s.readVar(fr, aux[pc].xv)
				}
			default:
				sp--
				x = vs[sp]
			}
			ops++
			r := intBin(ir.BinOp(in.bin), x.v.I, y.v.I)
			d := uint32(in.d)
			var y2 tval
			if uint8(d) == bcMConst {
				y2.v.I = int64(in.c)
			} else if spec == nil {
				if regGen[in.c] == gen {
					y2.v = regs[in.c]
				}
			} else {
				y2.v, y2.t = s.readVar(fr, aux[pc].v)
			}
			ops++
			x2, yi2 := r, y2.v.I
			if d&(1<<8) != 0 {
				x2, yi2 = yi2, x2
			}
			vs[sp] = tval{v: Value{I: intBin(ir.BinOp(d>>16), x2, yi2)}, t: x.t || y.t || y2.t}
			sp++
			pc++

		case bcBinFF:
			var y tval
			switch in.ym {
			case bcMConst:
				y.v = in.val
			case bcMVar:
				if spec == nil {
					if regGen[in.yid] == gen {
						y.v = regs[in.yid]
					}
				} else {
					y.v, y.t = s.readVar(fr, aux[pc].yv)
				}
			default:
				sp--
				y = vs[sp]
			}
			var x tval
			switch in.xm {
			case bcMConst:
				x.v = in.val
			case bcMVar:
				if spec == nil {
					if regGen[in.xid] == gen {
						x.v = regs[in.xid]
					}
				} else {
					x.v, x.t = s.readVar(fr, aux[pc].xv)
				}
			default:
				sp--
				x = vs[sp]
			}
			ops++
			vs[sp] = tval{v: floatBin(ir.BinOp(in.bin), x.v.F, y.v.F), t: x.t || y.t}
			sp++
			pc++

		case bcLoadA1:
			var ix tval
			switch in.xm {
			case bcMConst:
				ix.v = in.val
			case bcMVar:
				if spec == nil {
					if regGen[in.xid] == gen {
						ix.v = regs[in.xid]
					}
				} else {
					ix.v, ix.t = s.readVar(fr, aux[pc].xv)
				}
			default:
				sp--
				ix = vs[sp]
			}
			i := int(ix.v.I)
			if i < 0 || i >= int(in.c) {
				s.ops, s.steps = ops, steps
				return execOutcome{}, fmt.Errorf("machine: %s: index %d out of range [0,%d) for %s (stmt s%d)",
					fr.fn.Name, i, aux[pc].g.Dims[0], aux[pc].g.Name, aux[pc].st.ID)
			}
			addr := int(in.d) + i
			ops++
			hier.load(addr)
			if spec == nil {
				vs[sp] = tval{v: mem[addr], t: ix.t}
			} else {
				v, t2 := s.readMem(addr)
				vs[sp] = tval{v, ix.t || t2}
			}
			sp++
			pc++

		case bcBin:
			sp--
			y := vs[sp]
			x := &vs[sp-1]
			ops++
			v, err := evalBinMachine(fr, aux[pc].st, aux[pc].o, x.v, y.v)
			if err != nil {
				s.ops, s.steps = ops, steps
				return execOutcome{}, err
			}
			x.v = v
			x.t = x.t || y.t
			pc++

		case bcUn:
			x := &vs[sp-1]
			ops++
			switch in.bin {
			case 1:
				x.v = Value{F: -x.v.F}
			case 2:
				x.v = Value{I: -x.v.I}
			case 3:
				if x.v.F != 0 {
					x.v = Value{I: 0}
				} else {
					x.v = Value{I: 1}
				}
			case 4:
				if x.v.I != 0 {
					x.v = Value{I: 0}
				} else {
					x.v = Value{I: 1}
				}
			case 5:
				x.v = Value{I: ^x.v.I}
			default:
				s.ops, s.steps = ops, steps
				return execOutcome{}, fmt.Errorf("machine: bad unary op")
			}
			pc++

		case bcCast:
			x := &vs[sp-1]
			ops++
			switch in.bin {
			case 1:
				x.v = Value{F: float64(x.v.I)}
			case 2:
				x.v = Value{I: int64(x.v.F)}
			}
			pc++

		case bcCall:
			n := int(in.a)
			sp -= n
			ab := len(s.argBuf)
			tnt := false
			for i := 0; i < n; i++ {
				s.argBuf = append(s.argBuf, vs[sp+i].v)
				tnt = tnt || vs[sp+i].t
			}
			ops++
			s.ops, s.steps = ops, steps
			s.vstack = vs[:sp]
			v, retTaint, err := s.callTainted(aux[pc].o.Func, s.argBuf[ab:], fr.depth+1, tnt)
			s.argBuf = s.argBuf[:ab]
			ops, steps = s.ops, s.steps
			vs = s.vstack[:cap(s.vstack)]
			spec, undo = s.spec, s.undoActive
			bp = s.bpM
			if spec != nil {
				bp = s.bpS
			}
			if err != nil {
				return execOutcome{}, err
			}
			vs[sp] = tval{v, tnt || retTaint}
			sp++
			pc++

		case bcBuiltin:
			n := int(in.a)
			args := vs[sp-n : sp]
			tnt := false
			for i := range args {
				tnt = tnt || args[i].t
			}
			ops++
			var v Value
			switch in.b {
			case bFabs:
				v = Value{F: math.Abs(args[0].v.F)}
			case bFsqrt:
				if args[0].v.F < 0 {
					s.ops, s.steps = ops, steps
					return execOutcome{}, fmt.Errorf("machine: fsqrt of negative value")
				}
				v = Value{F: math.Sqrt(args[0].v.F)}
			case bFmin:
				v = Value{F: math.Min(args[0].v.F, args[1].v.F)}
			case bFmax:
				v = Value{F: math.Max(args[0].v.F, args[1].v.F)}
			case bIabs:
				v = args[0].v
				if v.I < 0 {
					v = Value{I: -v.I}
				}
			case bImin:
				if args[0].v.I < args[1].v.I {
					v = args[0].v
				} else {
					v = args[1].v
				}
			case bImax:
				if args[0].v.I > args[1].v.I {
					v = args[0].v
				} else {
					v = args[1].v
				}
			default:
				s.ops, s.steps = ops, steps
				return execOutcome{}, fmt.Errorf("machine: unknown builtin %s", aux[pc].o.Callee)
			}
			sp -= n
			vs[sp] = tval{v, tnt}
			sp++
			pc++

		case bcPrintBegin:
			ops++
			vs[sp] = tval{}
			sp++
			pc++

		case bcPrintSpace:
			fmt.Fprint(s.out, " ")
			pc++

		case bcPrintStr:
			fmt.Fprint(s.out, aux[pc].str)
			pc++

		case bcPrintVal:
			sp--
			x := vs[sp]
			acc := &vs[sp-1]
			acc.t = acc.t || x.t
			if in.b != 0 {
				fmt.Fprintf(s.out, "%.6g", x.v.F)
			} else {
				fmt.Fprintf(s.out, "%d", x.v.I)
			}
			pc++

		case bcPrintEnd:
			fmt.Fprintln(s.out)
			pc++

		case bcAssign:
			sp--
			x := vs[sp]
			ops++
			if spec == nil {
				regs[in.a] = x.v
				regGen[in.a] = gen
				baseVals[in.b] = x.v
				baseGen[in.b] = gen
			} else {
				s.defineVar(fr, aux[pc].v, x.v, x.t)
				sc := spec
				sc.ops += ops - o0
				if x.t {
					sc.reexecOps += ops - o0
				}
			}
			pc++

		case bcStoreG:
			sp--
			x := vs[sp]
			ops++
			addr := int(in.c)
			if spec == nil && !undo {
				mem[addr] = x.v
				hier.store(addr)
			} else {
				s.writeMem(addr, x.v, x.t)
				if sc := spec; sc != nil {
					sc.ops += ops - o0
					if x.t {
						sc.reexecOps += ops - o0
					}
				}
			}
			pc++

		case bcStoreA:
			sp -= 2
			acc := vs[sp]
			x := vs[sp+1]
			tnt := acc.t || x.t
			ops++
			addr := int(in.c) + int(acc.v.I)
			if spec == nil && !undo {
				mem[addr] = x.v
				hier.store(addr)
			} else {
				s.writeMem(addr, x.v, tnt)
				if sc := spec; sc != nil {
					sc.ops += ops - o0
					if tnt {
						sc.reexecOps += ops - o0
					}
				}
			}
			pc++

		case bcCallStmt:
			sp--
			x := vs[sp]
			if sc := spec; sc != nil {
				sc.ops += ops - o0
				if x.t {
					sc.reexecOps += ops - o0
				}
			}
			pc++

		case bcAsgMove:
			steps++
			if steps > maxSteps {
				s.ops, s.steps = ops, steps
				return execOutcome{}, ErrStepLimit
			}
			if ctx != nil && steps%ctxPollSteps == 0 {
				if err := ctx.Err(); err != nil {
					s.ops, s.steps = ops, steps
					return execOutcome{}, err
				}
			}
			os := ops
			var x tval
			if in.xm == bcMConst {
				x.v = in.val
			} else if spec == nil {
				if regGen[in.xid] == gen {
					x.v = regs[in.xid]
				}
			} else {
				x.v, x.t = s.readVar(fr, aux[pc].xv)
			}
			ops++
			if spec == nil {
				regs[in.a] = x.v
				regGen[in.a] = gen
				baseVals[in.b] = x.v
				baseGen[in.b] = gen
			} else {
				s.defineVar(fr, aux[pc].v, x.v, x.t)
				sc := spec
				sc.ops += ops - os
				if x.t {
					sc.reexecOps += ops - os
				}
			}
			pc++

		case bcAsgBinII:
			steps++
			if steps > maxSteps {
				s.ops, s.steps = ops, steps
				return execOutcome{}, ErrStepLimit
			}
			if ctx != nil && steps%ctxPollSteps == 0 {
				if err := ctx.Err(); err != nil {
					s.ops, s.steps = ops, steps
					return execOutcome{}, err
				}
			}
			os := ops
			var x, y tval
			if in.xm == bcMConst {
				x.v = in.val
			} else if spec == nil {
				if regGen[in.xid] == gen {
					x.v = regs[in.xid]
				}
			} else {
				x.v, x.t = s.readVar(fr, aux[pc].xv)
			}
			if in.ym == bcMConst {
				y.v = in.val
			} else if spec == nil {
				if regGen[in.yid] == gen {
					y.v = regs[in.yid]
				}
			} else {
				y.v, y.t = s.readVar(fr, aux[pc].yv)
			}
			ops++
			rv := Value{I: intBin(ir.BinOp(in.bin), x.v.I, y.v.I)}
			tnt := x.t || y.t
			ops++
			if spec == nil {
				regs[in.a] = rv
				regGen[in.a] = gen
				baseVals[in.b] = rv
				baseGen[in.b] = gen
			} else {
				s.defineVar(fr, aux[pc].v, rv, tnt)
				sc := spec
				sc.ops += ops - os
				if tnt {
					sc.reexecOps += ops - os
				}
			}
			pc++

		case bcAsgBinFF:
			steps++
			if steps > maxSteps {
				s.ops, s.steps = ops, steps
				return execOutcome{}, ErrStepLimit
			}
			if ctx != nil && steps%ctxPollSteps == 0 {
				if err := ctx.Err(); err != nil {
					s.ops, s.steps = ops, steps
					return execOutcome{}, err
				}
			}
			os := ops
			var x, y tval
			if in.xm == bcMConst {
				x.v = in.val
			} else if spec == nil {
				if regGen[in.xid] == gen {
					x.v = regs[in.xid]
				}
			} else {
				x.v, x.t = s.readVar(fr, aux[pc].xv)
			}
			if in.ym == bcMConst {
				y.v = in.val
			} else if spec == nil {
				if regGen[in.yid] == gen {
					y.v = regs[in.yid]
				}
			} else {
				y.v, y.t = s.readVar(fr, aux[pc].yv)
			}
			ops++
			rv := floatBin(ir.BinOp(in.bin), x.v.F, y.v.F)
			tnt := x.t || y.t
			ops++
			if spec == nil {
				regs[in.a] = rv
				regGen[in.a] = gen
				baseVals[in.b] = rv
				baseGen[in.b] = gen
			} else {
				s.defineVar(fr, aux[pc].v, rv, tnt)
				sc := spec
				sc.ops += ops - os
				if tnt {
					sc.reexecOps += ops - os
				}
			}
			pc++

		case bcAsgLoadG:
			steps++
			if steps > maxSteps {
				s.ops, s.steps = ops, steps
				return execOutcome{}, ErrStepLimit
			}
			if ctx != nil && steps%ctxPollSteps == 0 {
				if err := ctx.Err(); err != nil {
					s.ops, s.steps = ops, steps
					return execOutcome{}, err
				}
			}
			os := ops
			addr := int(in.c)
			ops++
			hier.load(addr)
			var x tval
			if spec == nil {
				x.v = mem[addr]
			} else {
				x.v, x.t = s.readMem(addr)
			}
			ops++
			if spec == nil {
				regs[in.a] = x.v
				regGen[in.a] = gen
				baseVals[in.b] = x.v
				baseGen[in.b] = gen
			} else {
				s.defineVar(fr, aux[pc].v, x.v, x.t)
				sc := spec
				sc.ops += ops - os
				if x.t {
					sc.reexecOps += ops - os
				}
			}
			pc++

		case bcAsgLoadA1:
			steps++
			if steps > maxSteps {
				s.ops, s.steps = ops, steps
				return execOutcome{}, ErrStepLimit
			}
			if ctx != nil && steps%ctxPollSteps == 0 {
				if err := ctx.Err(); err != nil {
					s.ops, s.steps = ops, steps
					return execOutcome{}, err
				}
			}
			os := ops
			var ix tval
			if in.xm == bcMConst {
				ix.v = in.val
			} else if spec == nil {
				if regGen[in.xid] == gen {
					ix.v = regs[in.xid]
				}
			} else {
				ix.v, ix.t = s.readVar(fr, aux[pc].xv)
			}
			i := int(ix.v.I)
			if i < 0 || i >= int(in.c) {
				s.ops, s.steps = ops, steps
				return execOutcome{}, fmt.Errorf("machine: %s: index %d out of range [0,%d) for %s (stmt s%d)",
					fr.fn.Name, i, aux[pc].g.Dims[0], aux[pc].g.Name, aux[pc].st.ID)
			}
			addr := int(in.d) + i
			ops++
			hier.load(addr)
			var x tval
			if spec == nil {
				x = tval{v: mem[addr], t: ix.t}
			} else {
				v, t2 := s.readMem(addr)
				x = tval{v, ix.t || t2}
			}
			ops++
			if spec == nil {
				regs[in.a] = x.v
				regGen[in.a] = gen
				baseVals[in.b] = x.v
				baseGen[in.b] = gen
			} else {
				s.defineVar(fr, aux[pc].v, x.v, x.t)
				sc := spec
				sc.ops += ops - os
				if x.t {
					sc.reexecOps += ops - os
				}
			}
			pc++

		case bcStoreGF:
			steps++
			if steps > maxSteps {
				s.ops, s.steps = ops, steps
				return execOutcome{}, ErrStepLimit
			}
			if ctx != nil && steps%ctxPollSteps == 0 {
				if err := ctx.Err(); err != nil {
					s.ops, s.steps = ops, steps
					return execOutcome{}, err
				}
			}
			os := ops
			var x tval
			if in.xm == bcMConst {
				x.v = in.val
			} else if spec == nil {
				if regGen[in.xid] == gen {
					x.v = regs[in.xid]
				}
			} else {
				x.v, x.t = s.readVar(fr, aux[pc].xv)
			}
			ops++
			addr := int(in.c)
			if spec == nil && !undo {
				mem[addr] = x.v
				hier.store(addr)
			} else {
				s.writeMem(addr, x.v, x.t)
				if sc := spec; sc != nil {
					sc.ops += ops - os
					if x.t {
						sc.reexecOps += ops - os
					}
				}
			}
			pc++

		case bcStoreA1F:
			steps++
			if steps > maxSteps {
				s.ops, s.steps = ops, steps
				return execOutcome{}, ErrStepLimit
			}
			if ctx != nil && steps%ctxPollSteps == 0 {
				if err := ctx.Err(); err != nil {
					s.ops, s.steps = ops, steps
					return execOutcome{}, err
				}
			}
			os := ops
			var ix tval
			if in.xm == bcMConst {
				ix.v = in.val
			} else if spec == nil {
				if regGen[in.xid] == gen {
					ix.v = regs[in.xid]
				}
			} else {
				ix.v, ix.t = s.readVar(fr, aux[pc].xv)
			}
			i := int(ix.v.I)
			if i < 0 || i >= int(in.c) {
				s.ops, s.steps = ops, steps
				return execOutcome{}, fmt.Errorf("machine: %s: index %d out of range [0,%d) for %s (stmt s%d)",
					fr.fn.Name, i, aux[pc].g.Dims[0], aux[pc].g.Name, aux[pc].st.ID)
			}
			var x tval
			if in.ym == bcMConst {
				x.v = in.val
			} else if spec == nil {
				if regGen[in.yid] == gen {
					x.v = regs[in.yid]
				}
			} else {
				x.v, x.t = s.readVar(fr, aux[pc].yv)
			}
			tnt := ix.t || x.t
			ops++
			addr := int(in.d) + i
			if spec == nil && !undo {
				mem[addr] = x.v
				hier.store(addr)
			} else {
				s.writeMem(addr, x.v, tnt)
				if sc := spec; sc != nil {
					sc.ops += ops - os
					if tnt {
						sc.reexecOps += ops - os
					}
				}
			}
			pc++

		case bcIfBinII:
			steps++
			if steps > maxSteps {
				s.ops, s.steps = ops, steps
				return execOutcome{}, ErrStepLimit
			}
			if ctx != nil && steps%ctxPollSteps == 0 {
				if err := ctx.Err(); err != nil {
					s.ops, s.steps = ops, steps
					return execOutcome{}, err
				}
			}
			os := ops
			var x, y tval
			if in.xm == bcMConst {
				x.v = in.val
			} else if spec == nil {
				if regGen[in.xid] == gen {
					x.v = regs[in.xid]
				}
			} else {
				x.v, x.t = s.readVar(fr, aux[pc].xv)
			}
			if in.ym == bcMConst {
				y.v = in.val
			} else if spec == nil {
				if regGen[in.yid] == gen {
					y.v = regs[in.yid]
				}
			} else {
				y.v, y.t = s.readVar(fr, aux[pc].yv)
			}
			ops++
			r := intBin(ir.BinOp(in.bin), x.v.I, y.v.I)
			tnt := x.t || y.t
			ops++
			taken := r != 0
			bp.predict(int(in.d), taken)
			tgt := in.b
			if taken {
				tgt = in.a
			}
			if sc := spec; sc != nil {
				sc.ops += ops - os
				if tnt {
					sc.reexecOps += ops - os
				}
			}
			prevBlk = in.blk
			if stop != nil {
				te := &code[tgt]
				var stopped bool
				if stopIn != nil {
					stopped = te.blk == stopHdr || !stopIn[te.b]
				} else {
					stopped = stop(te.blk)
				}
				if stopped {
					s.ops, s.steps = ops, steps
					return execOutcome{stopped: te.blk, prev: prevBlk}, nil
				}
				if skipEnter && te.a < 0 {
					tgt++
				}
			} else if skipEnter {
				if te := &code[tgt]; te.a < 0 {
					tgt++
				}
			}
			pc = tgt

		case bcIfVal:
			steps++
			if steps > maxSteps {
				s.ops, s.steps = ops, steps
				return execOutcome{}, ErrStepLimit
			}
			if ctx != nil && steps%ctxPollSteps == 0 {
				if err := ctx.Err(); err != nil {
					s.ops, s.steps = ops, steps
					return execOutcome{}, err
				}
			}
			os := ops
			var x tval
			if in.xm == bcMConst {
				x.v = in.val
			} else if spec == nil {
				if regGen[in.xid] == gen {
					x.v = regs[in.xid]
				}
			} else {
				x.v, x.t = s.readVar(fr, aux[pc].xv)
			}
			ops++
			var taken bool
			if in.bin != 0 {
				taken = x.v.F != 0
			} else {
				taken = x.v.I != 0
			}
			bp.predict(int(in.d), taken)
			tgt := in.b
			if taken {
				tgt = in.a
			}
			if sc := spec; sc != nil {
				sc.ops += ops - os
				if x.t {
					sc.reexecOps += ops - os
				}
			}
			prevBlk = in.blk
			if stop != nil {
				te := &code[tgt]
				var stopped bool
				if stopIn != nil {
					stopped = te.blk == stopHdr || !stopIn[te.b]
				} else {
					stopped = stop(te.blk)
				}
				if stopped {
					s.ops, s.steps = ops, steps
					return execOutcome{stopped: te.blk, prev: prevBlk}, nil
				}
				if skipEnter && te.a < 0 {
					tgt++
				}
			} else if skipEnter {
				if te := &code[tgt]; te.a < 0 {
					tgt++
				}
			}
			pc = tgt

		case bcBinAsgII:
			var y tval
			switch in.ym {
			case bcMConst:
				y.v = in.val
			case bcMVar:
				if spec == nil {
					if regGen[in.yid] == gen {
						y.v = regs[in.yid]
					}
				} else {
					y.v, y.t = s.readVar(fr, aux[pc].yv)
				}
			default:
				sp--
				y = vs[sp]
			}
			var x tval
			switch in.xm {
			case bcMConst:
				x.v = in.val
			case bcMVar:
				if spec == nil {
					if regGen[in.xid] == gen {
						x.v = regs[in.xid]
					}
				} else {
					x.v, x.t = s.readVar(fr, aux[pc].xv)
				}
			default:
				sp--
				x = vs[sp]
			}
			ops++
			rv := Value{I: intBin(ir.BinOp(in.bin), x.v.I, y.v.I)}
			tnt := x.t || y.t
			ops++
			if spec == nil {
				regs[in.a] = rv
				regGen[in.a] = gen
				baseVals[in.b] = rv
				baseGen[in.b] = gen
			} else {
				s.defineVar(fr, aux[pc].v, rv, tnt)
				sc := spec
				sc.ops += ops - o0
				if tnt {
					sc.reexecOps += ops - o0
				}
			}
			pc++

		case bcBinAsgFF:
			var y tval
			switch in.ym {
			case bcMConst:
				y.v = in.val
			case bcMVar:
				if spec == nil {
					if regGen[in.yid] == gen {
						y.v = regs[in.yid]
					}
				} else {
					y.v, y.t = s.readVar(fr, aux[pc].yv)
				}
			default:
				sp--
				y = vs[sp]
			}
			var x tval
			switch in.xm {
			case bcMConst:
				x.v = in.val
			case bcMVar:
				if spec == nil {
					if regGen[in.xid] == gen {
						x.v = regs[in.xid]
					}
				} else {
					x.v, x.t = s.readVar(fr, aux[pc].xv)
				}
			default:
				sp--
				x = vs[sp]
			}
			ops++
			rv := floatBin(ir.BinOp(in.bin), x.v.F, y.v.F)
			tnt := x.t || y.t
			ops++
			if spec == nil {
				regs[in.a] = rv
				regGen[in.a] = gen
				baseVals[in.b] = rv
				baseGen[in.b] = gen
			} else {
				s.defineVar(fr, aux[pc].v, rv, tnt)
				sc := spec
				sc.ops += ops - o0
				if tnt {
					sc.reexecOps += ops - o0
				}
			}
			pc++

		case bcLoadAsgA1:
			var ix tval
			switch in.xm {
			case bcMConst:
				ix.v = in.val
			case bcMVar:
				if spec == nil {
					if regGen[in.xid] == gen {
						ix.v = regs[in.xid]
					}
				} else {
					ix.v, ix.t = s.readVar(fr, aux[pc].xv)
				}
			default:
				sp--
				ix = vs[sp]
			}
			i := int(ix.v.I)
			if i < 0 || i >= int(in.c) {
				s.ops, s.steps = ops, steps
				return execOutcome{}, fmt.Errorf("machine: %s: index %d out of range [0,%d) for %s (stmt s%d)",
					fr.fn.Name, i, aux[pc].g.Dims[0], aux[pc].g.Name, aux[pc].st.ID)
			}
			addr := int(in.d) + i
			ops++
			hier.load(addr)
			var x tval
			if spec == nil {
				x = tval{v: mem[addr], t: ix.t}
			} else {
				v, t2 := s.readMem(addr)
				x = tval{v, ix.t || t2}
			}
			ops++
			if spec == nil {
				regs[in.a] = x.v
				regGen[in.a] = gen
				baseVals[in.b] = x.v
				baseGen[in.b] = gen
			} else {
				s.defineVar(fr, aux[pc].v, x.v, x.t)
				sc := spec
				sc.ops += ops - o0
				if x.t {
					sc.reexecOps += ops - o0
				}
			}
			pc++

		case bcStoreA1NS:
			sp--
			ix := vs[sp]
			i := int(ix.v.I)
			if i < 0 || i >= int(in.c) {
				s.ops, s.steps = ops, steps
				return execOutcome{}, fmt.Errorf("machine: %s: index %d out of range [0,%d) for %s (stmt s%d)",
					fr.fn.Name, i, aux[pc].g.Dims[0], aux[pc].g.Name, aux[pc].st.ID)
			}
			var x tval
			if in.ym == bcMConst {
				x.v = in.val
			} else if spec == nil {
				if regGen[in.yid] == gen {
					x.v = regs[in.yid]
				}
			} else {
				x.v, x.t = s.readVar(fr, aux[pc].yv)
			}
			tnt := ix.t || x.t
			ops++
			addr := int(in.d) + i
			if spec == nil && !undo {
				mem[addr] = x.v
				hier.store(addr)
			} else {
				s.writeMem(addr, x.v, tnt)
				if sc := spec; sc != nil {
					sc.ops += ops - o0
					if tnt {
						sc.reexecOps += ops - o0
					}
				}
			}
			pc++

		case bcRet:
			var v Value
			var tnt bool
			if in.a != 0 {
				sp--
				v, tnt = vs[sp].v, vs[sp].t
			}
			ops++
			if sc := spec; sc != nil {
				sc.ops += ops - o0
				if tnt {
					sc.reexecOps += ops - o0
				}
			}
			s.ops, s.steps = ops, steps
			return execOutcome{ret: true, retVal: v, retTaint: tnt}, nil

		case bcFork:
			ops++
			if s.forkIter != nil {
				s.ops, s.steps = ops, steps
				s.onFork(fr)
				ops, steps = s.ops, s.steps
				undo = s.undoActive
			}
			if sc := spec; sc != nil {
				sc.ops += ops - o0
			}
			pc++

		case bcKill:
			ops++
			if spec != nil {
				spec.ops += ops - o0
			}
			pc++

		case bcBad:
			s.ops, s.steps = ops, steps
			return execOutcome{}, fmt.Errorf("%s", aux[pc].str)

		default:
			s.ops, s.steps = ops, steps
			return execOutcome{}, fmt.Errorf("machine: invalid bytecode op %d", in.op)
		}
	}
}
