package machine_test

import (
	"strings"
	"testing"

	"sptc/internal/ir"
	"sptc/internal/machine"
	"sptc/internal/trace"
)

// TestForkKillChargeOneOpEach pins the fork/kill accounting convention:
// each executes as exactly one dynamic instruction on whichever core
// runs it. The hand-built program is main() { fork; kill; return 0 },
// so the expected op count is exact: one for the fork, one for the
// kill, one for the return. The pre-fix walker charged no op for
// StmtFork (Ops would read 2 here), while StmtKill did charge one —
// an asymmetry that skewed sim_instructions on every SPT run.
func TestForkKillChargeOneOpEach(t *testing.T) {
	build := func() *ir.Program {
		prog := ir.NewProgram()
		f := prog.NewFunc("main", ir.ValInt)
		b := f.NewBlock()
		f.Entry = b
		fork := f.NewStmt(ir.StmtFork)
		kill := f.NewStmt(ir.StmtKill)
		ret := f.NewStmt(ir.StmtRet)
		c := f.NewOp(ir.OpConstInt, ir.ValInt)
		ret.RHS = c
		b.Stmts = []*ir.Stmt{fork, kill, ret}
		return prog
	}
	cfg := machine.DefaultConfig()
	for _, kind := range []machine.EngineKind{machine.EngineBytecode, machine.EngineTree} {
		res, err := machine.Run(build(), cfg, machine.RunOptions{Engine: kind})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Ops != 3 {
			t.Errorf("%s: Ops = %d, want 3 (fork + kill + return, one op each)", kind, res.Ops)
		}
		want := cfg.CallOverhead + cfg.KillOverhead + cfg.IssueCost
		if res.Cycles != want {
			t.Errorf("%s: Cycles = %v, want %v (call + kill + return issue)", kind, res.Cycles, want)
		}
	}
}

// calleeTaintLoop hand-builds the transformed loop the regression needs
// (the partition search would hoist the violating call into the
// pre-fork region, hiding the bug):
//
//	func touch() int { t = load g; store g = t + 3; return t }
//	func main() {
//	  b0: i0 = 0; goto b1
//	  b1: i1 = phi(i0, i2); i2 = i1 + 1        // induction pre-fork
//	      fork
//	      v = touch()                          // violating read, post-fork
//	      c1 = v + 1; ... c8 = c7 + 1          // caller chain tainted
//	                                           // only via v's return taint
//	      store out = c8
//	      if i2 < 300 goto b1 else b2
//	  b2: kill; return 0
//	}
//
// The speculative leg's only violation is touch's load of g (written by
// the main leg after its fork point), so the taint reaching c1..c8 and
// the store exists purely through the callee's *return value* — the
// call has no arguments to carry it.
func calleeTaintLoop() (*ir.Program, machine.RunOptions) {
	prog := ir.NewProgram()
	g := &ir.Global{Name: "g", Elem: ir.ValInt}
	out := &ir.Global{Name: "out", Elem: ir.ValInt}
	prog.AddGlobal(g)
	prog.AddGlobal(out)

	touch := prog.NewFunc("touch", ir.ValInt)
	tb := touch.NewBlock()
	touch.Entry = tb
	tv := touch.NewVar("t", ir.ValInt)
	load := touch.NewStmt(ir.StmtAssign)
	load.Dst = tv
	load.RHS = touch.NewOp(ir.OpLoadG, ir.ValInt)
	load.RHS.G = g
	store := touch.NewStmt(ir.StmtStoreG)
	store.G = g
	add := touch.NewOp(ir.OpBin, ir.ValInt)
	add.Bin = ir.BinAdd
	use := touch.NewOp(ir.OpUseVar, ir.ValInt)
	use.Var = tv
	three := touch.NewOp(ir.OpConstInt, ir.ValInt)
	three.ConstI = 3
	add.Args = []*ir.Op{use, three}
	store.RHS = add
	ret := touch.NewStmt(ir.StmtRet)
	ret.RHS = touch.NewOp(ir.OpUseVar, ir.ValInt)
	ret.RHS.Var = tv
	tb.Stmts = []*ir.Stmt{load, store, ret}

	f := prog.NewFunc("main", ir.ValInt)
	b0, b1, b2 := f.NewBlock(), f.NewBlock(), f.NewBlock()
	f.Entry = b0
	b0.Succs = []*ir.Block{b1}
	b1.Preds = []*ir.Block{b0, b1}
	b1.Succs = []*ir.Block{b1, b2}
	b2.Preds = []*ir.Block{b1}

	newVar := f.NewVar
	i0, i1, i2 := newVar("i0", ir.ValInt), newVar("i1", ir.ValInt), newVar("i2", ir.ValInt)
	assign := func(dst *ir.Var, rhs *ir.Op) *ir.Stmt {
		st := f.NewStmt(ir.StmtAssign)
		st.Dst, st.RHS = dst, rhs
		return st
	}
	constI := func(v int64) *ir.Op {
		o := f.NewOp(ir.OpConstInt, ir.ValInt)
		o.ConstI = v
		return o
	}
	useVar := func(v *ir.Var) *ir.Op {
		o := f.NewOp(ir.OpUseVar, ir.ValInt)
		o.Var = v
		return o
	}
	bin := func(op ir.BinOp, x, y *ir.Op) *ir.Op {
		o := f.NewOp(ir.OpBin, ir.ValInt)
		o.Bin = op
		o.Args = []*ir.Op{x, y}
		return o
	}

	b0.Stmts = []*ir.Stmt{assign(i0, constI(0)), f.NewStmt(ir.StmtGoto)}

	phi := f.NewStmt(ir.StmtPhi)
	phi.Dst = i1
	phi.PhiArgs = []*ir.Var{i0, i2}
	b1.Stmts = []*ir.Stmt{phi, assign(i2, bin(ir.BinAdd, useVar(i1), constI(1))), f.NewStmt(ir.StmtFork)}
	call := f.NewOp(ir.OpCall, ir.ValInt)
	call.Callee, call.Func = "touch", touch
	v := newVar("v", ir.ValInt)
	b1.Stmts = append(b1.Stmts, assign(v, call))
	prev := v
	for k := 0; k < 8; k++ {
		c := newVar("c", ir.ValInt)
		b1.Stmts = append(b1.Stmts, assign(c, bin(ir.BinAdd, useVar(prev), constI(1))))
		prev = c
	}
	sto := f.NewStmt(ir.StmtStoreG)
	sto.G = out
	sto.RHS = useVar(prev)
	iff := f.NewStmt(ir.StmtIf)
	iff.RHS = bin(ir.BinLt, useVar(i2), constI(300))
	b1.Stmts = append(b1.Stmts, sto, iff)

	retz := f.NewStmt(ir.StmtRet)
	retz.RHS = constI(0)
	b2.Stmts = []*ir.Stmt{f.NewStmt(ir.StmtKill), retz}

	opt := machine.RunOptions{
		SPTHeaders: map[*ir.Block]int{b1: 0},
		LoopBlocks: map[*ir.Block]map[*ir.Block]bool{b1: {b1: true}},
	}
	return prog, opt
}

// TestCalleeReturnTaintPropagates is the regression test for the
// dropped-callee-return-taint bug: evalCall used to report only the
// argument taint as the call's taint, so a violation observed inside
// the callee never tainted the caller's dependent chain and the
// re-executed-op count missed almost the whole iteration. With the fix,
// every statement downstream of v = touch() is charged as re-executed
// work, so ReexecOps per misspeculated iteration must cover the caller
// chain, not just the callee's couple of statements.
func TestCalleeReturnTaintPropagates(t *testing.T) {
	for _, kind := range []machine.EngineKind{machine.EngineBytecode, machine.EngineTree} {
		prog, ro := calleeTaintLoop()
		ro.Engine = kind
		sim, err := machine.Run(prog, machine.DefaultConfig(), ro)
		if err != nil {
			t.Fatalf("%s: simulate: %v", kind, err)
		}
		ls := sim.Loops[0]
		if ls == nil || ls.SpecIters == 0 {
			t.Fatalf("%s: loop did not speculate: %+v", kind, ls)
		}
		if ls.MisspecIters != ls.SpecIters {
			t.Errorf("%s: MisspecIters = %d of %d speculative iters; every leg reads the advanced cursor and must violate",
				kind, ls.MisspecIters, ls.SpecIters)
		}
		// Each misspeculated iteration re-executes the caller's dependent
		// chain (v = touch(), c1..c8, the store: ten statements at two or
		// more charged ops each) on top of the callee's own tainted
		// statements. Pre-fix only the callee's three statements were
		// charged (~6 ops/iteration), far below this floor.
		if ls.ReexecOps < 15*ls.MisspecIters {
			t.Errorf("%s: ReexecOps = %d for %d misspeculated iters (%.1f/iter); callee return taint is not reaching the caller",
				kind, ls.ReexecOps, ls.MisspecIters, float64(ls.ReexecOps)/float64(ls.MisspecIters))
		}
	}
}

// TestMainMissingTagsTraceSpan is the regression test for the untagged
// trace span on the prog.Main == nil error path: machine.Run must tag
// the simulate span with the error like every other early return, so a
// trace of a failed batch shows which job died and why.
func TestMainMissingTagsTraceSpan(t *testing.T) {
	tr := trace.New()
	tk := tr.StartTrack("job")
	_, err := machine.Run(ir.NewProgram(), machine.DefaultConfig(), machine.RunOptions{Trace: tk})
	if err == nil {
		t.Fatal("expected an error for a program without main")
	}
	sp := tk.Find("simulate")
	if sp == nil {
		t.Fatal("no simulate span recorded")
	}
	var tagged bool
	for _, a := range sp.Args {
		if a.Key == "error" && strings.Contains(a.S, "no main") {
			tagged = true
		}
	}
	if !tagged {
		t.Errorf("simulate span not tagged with the error: args = %+v", sp.Args)
	}
}
