package machine_test

import (
	"io"
	"strings"
	"testing"

	"sptc/internal/core"
	"sptc/internal/ir"
	"sptc/internal/machine"
	"sptc/internal/ssa"
)

// compileSPT compiles at the best level with selection disabled and
// returns the result plus assembled run options.
func compileSPT(t *testing.T, src string) (*core.Result, machine.RunOptions) {
	t.Helper()
	opt := core.DefaultOptions(core.LevelBest)
	opt.DisableSelection = true
	res, err := core.CompileSource("spt.spl", src, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ro := machine.RunOptions{
		SPTHeaders: map[*ir.Block]int{},
		LoopBlocks: map[*ir.Block]map[*ir.Block]bool{},
		Out:        io.Discard,
	}
	for _, sl := range res.SPT {
		dom := ssa.BuildDomTree(sl.Func)
		nest := ssa.FindLoops(sl.Func, dom)
		nl := nest.ByHeader[sl.Header]
		if nl == nil {
			continue
		}
		ro.SPTHeaders[sl.Header] = sl.ID
		set := map[*ir.Block]bool{}
		for _, b := range nl.Blocks {
			set[b] = true
		}
		ro.LoopBlocks[sl.Header] = set
	}
	return res, ro
}

func TestSpeculationAccountsForksAndIterations(t *testing.T) {
	// 100 iterations, clean speculation: the pair model runs ~50 spec
	// iterations and forks once per main leg.
	res, ro := compileSPT(t, `
var out int[128];
func main() {
	var i int;
	for (i = 0; i < 100; i++) {
		var v int = i * 3 + (i >> 1) % 7 + i % 11 + (i & 15);
		v = v + v % 13 + (v >> 2) % 5 + (i % 17) + (v & 31);
		out[i & 127] = v;
	}
	print(out[5]);
}
`)
	if len(res.SPT) == 0 {
		t.Skip("loop not transformed")
	}
	sim, err := machine.Run(res.Prog, machine.DefaultConfig(), ro)
	if err != nil {
		t.Fatal(err)
	}
	var total *machine.LoopStats
	for _, ls := range sim.Loops {
		if total == nil || ls.Iterations > total.Iterations {
			total = ls
		}
	}
	if total == nil {
		t.Fatal("no loop stats")
	}
	if total.Invocations != 1 {
		t.Errorf("invocations = %d", total.Invocations)
	}
	// The unrolled main loop plus remainder split 100 iterations; the
	// dominant loop must have speculated roughly half its iterations.
	if total.SpecIters*2 < total.Iterations-2 {
		t.Errorf("spec=%d of %d iterations", total.SpecIters, total.Iterations)
	}
	if total.Forks < total.SpecIters {
		t.Errorf("forks=%d < spec iterations=%d", total.Forks, total.SpecIters)
	}
	// Clean loop: re-execution stays minimal.
	if total.ReexecRatio() > 0.1 {
		t.Errorf("re-execution ratio %.3f on a clean loop", total.ReexecRatio())
	}
}

func TestSerialRecurrenceMisspeculates(t *testing.T) {
	// The carried value feeds everything and stays post-fork: the
	// speculative iterations read stale state and re-execute heavily.
	res, ro := compileSPT(t, `
var sink int;
func main() {
	var x int = 7;
	var i int;
	for (i = 0; i < 200; i++) {
		var v int = x * 3 + (x >> 2) % 7 + x % 11 + (x & 31);
		v = v + v % 13 + (v >> 1) % 5;
		sink = (sink + v) & 1048575;
		x = (x * 1103515245 + 12345 + v) & 1073741823;
	}
	print(sink, x);
}
`)
	if len(res.SPT) == 0 {
		t.Skip("loop not transformed (needs DisableSelection)")
	}
	sim, err := machine.Run(res.Prog, machine.DefaultConfig(), ro)
	if err != nil {
		t.Fatal(err)
	}
	for _, ls := range sim.Loops {
		if ls.SpecIters < 20 {
			continue
		}
		if ls.ReexecRatio() < 0.5 {
			t.Errorf("serial loop re-execution ratio %.3f, expected heavy misspeculation", ls.ReexecRatio())
		}
		if ls.LoopSpeedup() > 1.0 {
			t.Errorf("serial loop speedup %.3f should not beat sequential", ls.LoopSpeedup())
		}
	}
}

func TestSPTLoopOutputsMatchPlainRun(t *testing.T) {
	src := `
var h int;
var a int[512];
func main() {
	var i int;
	for (i = 0; i < 512; i++) {
		a[i] = (i * 2654435761) & 1023;
	}
	for (i = 0; i < 512; i++) {
		var v int = a[i] % 97 + (a[i] >> 3) % 31 + (i & 7);
		v = v + v % 19 + (v >> 1) % 23;
		h = (h + v * ((i & 3) + 1)) & 268435455;
	}
	print(h);
}
`
	res, ro := compileSPT(t, src)
	var sptOut, plainOut strings.Builder
	ro.Out = &sptOut
	if _, err := machine.Run(res.Prog, machine.DefaultConfig(), ro); err != nil {
		t.Fatal(err)
	}
	// Same program, no SPT headers: plain sequential simulation.
	if _, err := machine.Run(res.Prog, machine.DefaultConfig(), machine.RunOptions{Out: &plainOut}); err != nil {
		t.Fatal(err)
	}
	if sptOut.String() != plainOut.String() {
		t.Fatalf("SPT execution changed output: %q vs %q", sptOut.String(), plainOut.String())
	}
}

func TestNestedSPTViaCallIsGuarded(t *testing.T) {
	// A selected loop calls a function that itself contains a selected
	// loop; the simulator must not nest speculation.
	res, ro := compileSPT(t, `
var t int[256];
func inner(k int) int {
	var j int;
	var s int = 0;
	for (j = 0; j < 32; j++) {
		var v int = (k + j) % 13 + ((k ^ j) & 31) + (j >> 1) % 7;
		v = v + v % 11 + (v >> 2) % 5 + (j & 15);
		s = (s + v) & 65535;
	}
	return s;
}
func main() {
	var i int;
	for (i = 0; i < 64; i++) {
		t[i & 255] = inner(i);
	}
	var h int;
	for (i = 0; i < 64; i++) {
		h = (h + t[i]) & 1048575;
	}
	print(h);
}
`)
	var out strings.Builder
	ro.Out = &out
	sim, err := machine.Run(res.Prog, machine.DefaultConfig(), ro)
	if err != nil {
		t.Fatal(err)
	}
	var plain strings.Builder
	if _, err := machine.Run(res.Prog, machine.DefaultConfig(), machine.RunOptions{Out: &plain}); err != nil {
		t.Fatal(err)
	}
	if out.String() != plain.String() {
		t.Fatalf("output diverged: %q vs %q", out.String(), plain.String())
	}
	_ = sim
}

func TestReenteredLoopCountsInvocations(t *testing.T) {
	res, ro := compileSPT(t, `
var acc int;
func work(base int) {
	var i int;
	for (i = 0; i < 50; i++) {
		var v int = (base + i) % 17 + ((base ^ i) & 31) + (i >> 1) % 7;
		v = v + v % 11 + (v >> 2) % 5 + (i & 15) + v % 19;
		acc = (acc + v) & 1048575;
	}
}
func main() {
	// do-while outer loop: shape-rejected for SPT, so each work() call
	// enters the inner SPT loop as a fresh invocation.
	var k int = 0;
	do {
		work(k * 100);
		k++;
	} while (k < 5);
	print(acc);
}
`)
	sim, err := machine.Run(res.Prog, machine.DefaultConfig(), ro)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ls := range sim.Loops {
		if ls.Invocations == 5 {
			found = true
		}
	}
	if !found && len(sim.Loops) > 0 {
		for id, ls := range sim.Loops {
			t.Logf("loop %d: invocations=%d iters=%d", id, ls.Invocations, ls.Iterations)
		}
		t.Error("expected a loop invoked 5 times")
	}
}
