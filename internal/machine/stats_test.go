package machine_test

import (
	"math"
	"testing"

	"sptc/internal/machine"
)

// TestDegenerateLoopStats pins the zero-denominator behavior of the
// per-loop ratio accessors: a loop that never speculates (SpecOps == 0)
// must report a 0 re-execution ratio, not NaN, and a loop with no
// attributed cycles must report a neutral speedup.
func TestDegenerateLoopStats(t *testing.T) {
	ls := &machine.LoopStats{}
	if got := ls.ReexecRatio(); got != 0 {
		t.Errorf("ReexecRatio with SpecOps=0: got %v, want 0", got)
	}
	if got := ls.LoopSpeedup(); got != 1 {
		t.Errorf("LoopSpeedup with Elapsed=0: got %v, want 1", got)
	}

	// Even inconsistent stats (re-executed ops without speculative ops)
	// must not produce Inf.
	ls = &machine.LoopStats{ReexecOps: 7}
	if got := ls.ReexecRatio(); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("ReexecRatio with ReexecOps>0, SpecOps=0: got %v", got)
	}

	ls = &machine.LoopStats{SeqCycles: 100}
	if got := ls.LoopSpeedup(); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("LoopSpeedup with SeqCycles>0, Elapsed=0: got %v", got)
	}
}

// TestDegenerateResultIPC covers the empty-simulation case.
func TestDegenerateResultIPC(t *testing.T) {
	r := &machine.Result{}
	if got := r.IPC(); got != 0 {
		t.Errorf("IPC with Cycles=0: got %v, want 0", got)
	}
	r = &machine.Result{Ops: 42}
	if got := r.IPC(); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("IPC with Ops>0, Cycles=0: got %v", got)
	}
}
