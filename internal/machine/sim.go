package machine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"sptc/internal/interp"
	"sptc/internal/ir"
	"sptc/internal/resilience"
	"sptc/internal/trace"
)

// injectRun lets tests and CLIs force a fault at simulator entry
// (see internal/resilience).
var injectRun = resilience.Register("machine.run")

// Value aliases the interpreter's runtime value.
type Value = interp.Value

// LoopStats accumulates per-SPT-loop metrics.
type LoopStats struct {
	ID           int
	Invocations  int64
	Iterations   int64 // total iterations executed (main + spec)
	SpecIters    int64 // iterations executed speculatively
	MisspecIters int64 // speculative iterations with any re-execution
	SpecOps      int64 // instructions executed speculatively
	ReexecOps    int64 // instructions re-executed due to misspeculation
	SpecCycles   float64
	ReexecCycles float64
	SeqCycles    float64 // work cycles (what sequential execution would cost)
	Elapsed      float64 // actual cycles attributed to the loop under SPT
	Forks, Kills int64
}

// ReexecRatio is the fraction of speculative computation re-executed
// (Figure 19's y-axis).
func (l *LoopStats) ReexecRatio() float64 {
	if l.SpecOps == 0 {
		return 0
	}
	return float64(l.ReexecOps) / float64(l.SpecOps)
}

// LoopSpeedup is the loop-local speedup over sequential execution
// (Figure 18).
func (l *LoopStats) LoopSpeedup() float64 {
	if l.Elapsed == 0 {
		return 1
	}
	return l.SeqCycles / l.Elapsed
}

// Result is the outcome of one simulation.
type Result struct {
	Cycles float64
	Ops    int64 // dynamic instructions, excluding nops/phis/operand refs

	Loops map[int]*LoopStats

	// CyclesByLoop attributes cycles to statically identified loops when
	// loop attribution was requested (coverage measurements).
	CyclesByLoop map[int]float64

	BranchLookups int64
	BranchMisses  int64
	MemAccesses   int64
}

// IPC returns instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Ops) / r.Cycles
}

// RunOptions configure a simulation run.
type RunOptions struct {
	// SPTHeaders maps SPT loop headers to loop IDs; those loops execute
	// in the speculative pairwise model.
	SPTHeaders map[*ir.Block]int
	// AttributeLoops maps arbitrary loop headers to keys; cycles executed
	// while inside such a loop are attributed to its key (innermost
	// wins). Used for coverage measurements.
	AttributeLoops map[*ir.Block]int
	// LoopBlocks gives the block membership for every header in
	// SPTHeaders and AttributeLoops.
	LoopBlocks map[*ir.Block]map[*ir.Block]bool
	Out        io.Writer
	// Trace receives one span covering the whole run, carrying the
	// simulation counters (sim_instructions, cycles, forks, misspec
	// iterations, ...). Nil disables tracing at no cost.
	Trace *trace.Track
	// TraceName overrides the span name (default "simulate"); the
	// evaluation harness uses it to keep auxiliary coverage runs out of
	// the per-job simulate metrics.
	TraceName string
	// Context, when set, cancels the simulation cooperatively: it is
	// polled every ctxPollSteps simulated statements.
	Context context.Context
	// Engine selects the execution engine: the compile-once bytecode
	// engine (EngineBytecode, the default) or the reference tree-walking
	// interpreter (EngineTree). The two are bit-identical — same output
	// bytes, cycles, op counts and fidelity counters; the tree walker is
	// kept as the differential oracle for the bytecode engine.
	Engine EngineKind
	// CountersOnly skips all cycle accounting: the run produces the
	// program output and every fidelity counter (instructions, forks,
	// kills, spec/misspec iterations, per-loop op counts, branch
	// lookups/misses, memory accesses) bit-identical to a full-fidelity
	// run, but Result.Cycles, the per-loop float timing fields and
	// CyclesByLoop are zero. Sweeps that only read counters (violation
	// profiles, coverage-free sanity sweeps) run substantially faster:
	// the bytecode engine executes a trimmed dispatch loop with no float
	// accumulation. Incompatible with AttributeLoops (which measures
	// cycles); Run rejects the combination.
	CountersOnly bool
}

// EngineKind selects the simulator's execution engine.
type EngineKind uint8

const (
	// EngineBytecode executes functions lowered to flat bytecode, cached
	// per (program, config). The default.
	EngineBytecode EngineKind = iota
	// EngineTree executes the reference tree-walking interpreter.
	EngineTree
)

func (k EngineKind) String() string {
	switch k {
	case EngineBytecode:
		return "bytecode"
	case EngineTree:
		return "tree"
	}
	return fmt.Sprintf("EngineKind(%d)", uint8(k))
}

// ctxPollSteps is how often (in simulated statements) the simulator
// polls Context for cancellation.
const ctxPollSteps = 4096

// ErrStepLimit mirrors the interpreter's limit error.
var ErrStepLimit = errors.New("machine: step limit exceeded")

// frame is one function activation. Registers, base-variable values and
// taint are dense arrays indexed by the function's per-program variable
// numbering (ir.Var.ID / Var.Base.ID), stamped with the frame's
// generation: a slot whose stamp differs from gen is absent and reads as
// the zero Value, exactly like a missing map key. Frames are pooled per
// function; reuse bumps gen instead of clearing the arrays.
type frame struct {
	fn   *ir.Func
	pool *framePoolEntry
	regs []Value
	// baseVals tracks the latest value per base variable — the physical
	// register file the fork instruction copies into the speculative
	// thread's context (SSA versions are a compiler artifact).
	baseVals []Value
	regGen   []uint32
	baseGen  []uint32
	taint    []uint32 // taint[id] == gen: tainted during the speculative leg
	gen      uint32
	depth    int
}

func (fr *frame) reg(v *ir.Var) Value {
	if fr.regGen[v.ID] == fr.gen {
		return fr.regs[v.ID]
	}
	return Value{}
}

func (fr *frame) baseVal(v *ir.Var) Value {
	if fr.baseGen[v.ID] == fr.gen {
		return fr.baseVals[v.ID]
	}
	return Value{}
}

func (fr *frame) setReg(v *ir.Var, val Value) {
	fr.regs[v.ID] = val
	fr.regGen[v.ID] = fr.gen
	fr.baseVals[v.Base.ID] = val
	fr.baseGen[v.Base.ID] = fr.gen
}

func (fr *frame) setTaint(v *ir.Var, tnt bool) {
	if tnt {
		fr.taint[v.ID] = fr.gen
	} else {
		fr.taint[v.ID] = 0
	}
}

// specCtx tracks the merged functional/speculative evaluation of one
// speculatively executed iteration. The per-fork buffers (context
// snapshot, undo log, write-set) live on the sim and are pooled across
// forks: SPT regions never nest, so exactly one speculative leg is live
// at a time and a generation stamp per fork replaces reallocation.
type specCtx struct {
	loopFrame *frame

	ops          int64
	reexecOps    int64
	reexecCycles float64
}

type sim struct {
	cfg  Config
	prog *ir.Program
	mem  []Value
	ctx  context.Context
	hier *hierarchy
	bpM  *branchPredictor // main core
	bpS  *branchPredictor // speculative core
	out  io.Writer

	cycles    float64
	ops       int64
	steps     int64
	memCycles float64 // cycles spent below L1 (shared L2/L3/memory)

	spt        map[*ir.Block]int
	loopBlocks map[*ir.Block]map[*ir.Block]bool
	loops      map[int]*LoopStats
	sptActive  bool
	// countersOnly selects the bytecode engine's trimmed dispatch loop
	// (no float cycle accumulation); see RunOptions.CountersOnly. The
	// tree walker ignores it and always accumulates (its results are
	// stripped in Engine.Run), staying the differential oracle for the
	// trimmed loop.
	countersOnly bool

	undoActive bool     // post-fork undo log open (main leg)
	spec       *specCtx // active speculative leg
	specBuf    specCtx  // storage for spec (reused per leg)

	// Fork-hook state, armed during main SPT legs (see onFork).
	forkIter       *iterRun
	forkFrame      *frame
	forkC0, forkM0 float64

	framePool map[*ir.Func]*framePoolEntry

	// Pooled per-fork speculative buffers (see specCtx). The memory-side
	// buffers are indexed by address and allocated lazily at the first
	// fork; the register-side buffers are indexed by the loop frame's
	// variable numbering and grown to the widest function seen.
	undoVal     []Value  // fork-time values of post-fork-written addrs
	undoGen     []uint32 // == undoStamp: address present in the undo log
	writtenGen  []uint32 // == specStamp: written by the speculative leg
	taintMemGen []uint32 // == specStamp: that write was tainted
	undoStamp   uint32
	specStamp   uint32

	snapVals []Value  // loop frame base values at fork time
	snapGen  []uint32 // copy of the frame's baseGen at fork time
	defGen   []uint32 // == defStamp: defined in the speculative iteration
	defStamp uint32

	phiVals   []Value // scratch for parallel phi evaluation
	phiTaints []bool
	argBuf    []Value // stack-discipline scratch for call arguments

	// Bytecode engine state (see bytecode.go / bcexec.go).
	low    *loweredProg // non-nil: execute lowered bytecode instead of walking the IR
	vstack []tval       // operand stack, stack-disciplined across nested calls
	// sptID is the dense form of RunOptions.SPTHeaders, indexed by the
	// lowered function's block numbering (instr.b), so block entry tests
	// a slice instead of a map. -1 marks a non-header block.
	sptID map[*ir.Func][]int32
	// Dense form of the active SPT leg's stop predicate (stop fires when
	// control reaches stopHdr or leaves the loop's block set), so the hot
	// jump path tests a slice instead of calling a closure over a map.
	stopHdr     *ir.Block
	stopIn      []bool               // by the loop function's dense block index
	inLoopDense map[*ir.Block][]bool // per-run cache, keyed by loop header

	// loop attribution
	attr      map[*ir.Block]int
	attrStack []attrEntry
	attrCyc   map[int]float64
	lastAttr  float64 // cycle checkpoint for attribution
}

type framePoolEntry struct{ frames []*frame }

// acquireFrame takes a frame for f from the pool, or allocates one sized
// to the function's variable numbering.
func (s *sim) acquireFrame(f *ir.Func, depth int) *frame {
	e := s.framePool[f]
	if e == nil {
		e = &framePoolEntry{}
		s.framePool[f] = e
	}
	if n := len(e.frames); n > 0 {
		fr := e.frames[n-1]
		e.frames = e.frames[:n-1]
		fr.gen++
		if fr.gen == 0 { // stamp wrap: reset to a pristine frame
			clear(fr.regGen)
			clear(fr.baseGen)
			clear(fr.taint)
			fr.gen = 1
		}
		fr.depth = depth
		return fr
	}
	n := f.NumVars()
	return &frame{
		fn:       f,
		pool:     e,
		regs:     make([]Value, n),
		baseVals: make([]Value, n),
		regGen:   make([]uint32, n),
		baseGen:  make([]uint32, n),
		taint:    make([]uint32, n),
		gen:      1,
		depth:    depth,
	}
}

func (s *sim) releaseFrame(fr *frame) {
	fr.pool.frames = append(fr.pool.frames, fr)
}

type attrEntry struct {
	key    int
	header *ir.Block
	fr     *frame
}

// bp returns the active core's branch predictor.
func (s *sim) bp() *branchPredictor {
	if s.spec != nil {
		return s.bpS
	}
	return s.bpM
}

// enginePool recycles engines for the one-shot Run API, so even callers
// that never hold an Engine amortize the per-run machine state (memory
// image, cache and predictor tables, frame pools, operand stacks).
// Engine.reset re-establishes run-fresh semantics, so pooled and fresh
// engines produce bit-identical results (TestEngineFidelity covers the
// reuse path explicitly).
var enginePool = sync.Pool{New: func() any { return NewEngine() }}

// Run simulates the program to completion on a pooled engine. Callers
// with many independent simulations should use an Engine (or RunBatch),
// which pins the pooled per-run machine state to a worker; the results
// are identical either way.
func Run(prog *ir.Program, cfg Config, opt RunOptions) (*Result, error) {
	e := enginePool.Get().(*Engine)
	res, err := e.Run(prog, cfg, opt)
	enginePool.Put(e)
	return res, err
}

func (s *sim) call(f *ir.Func, args []Value, depth int) (Value, error) {
	v, _, err := s.callTainted(f, args, depth, false)
	return v, err
}

// popAttrFrame drops attribution entries belonging to a returning frame.
func (s *sim) popAttrFrame(fr *frame) {
	if s.attr == nil {
		return
	}
	s.flushAttr()
	for len(s.attrStack) > 0 && s.attrStack[len(s.attrStack)-1].fr == fr {
		s.attrStack = s.attrStack[:len(s.attrStack)-1]
	}
}

type execOutcome struct {
	ret      bool
	retVal   Value
	retTaint bool      // the returned value depends on violated speculative state
	stopped  *ir.Block // set when the stop predicate fired (block not executed)
	prev     *ir.Block // predecessor on arrival at stopped
}

// exec runs from blk (entered from prev) until the function returns or
// stop fires for a block about to be entered.
func (s *sim) exec(fr *frame, blk, prev *ir.Block, stop func(*ir.Block) bool) (execOutcome, error) {
	for {
		// SPT loop entry: only from the outermost, non-speculative
		// context, and only when not already inside an SPT region.
		if id, ok := s.spt[blk]; ok && !s.sptActive {
			exit, exitPrev, err := s.runSPTLoop(fr, blk, prev, id)
			if rt, ok := err.(errReturnThroughLoop); ok {
				return execOutcome{ret: true, retVal: rt.val, retTaint: rt.taint}, nil
			}
			if err != nil {
				return execOutcome{}, err
			}
			blk, prev = exit, exitPrev
			if stop != nil && stop(blk) {
				return execOutcome{stopped: blk, prev: prev}, nil
			}
			continue
		}
		s.noteBlock(fr, blk)

		// Phis evaluate in parallel from the predecessor's values.
		phis := blk.Phis()
		if len(phis) > 0 && prev != nil {
			pi := blk.PredIndex(prev)
			if pi < 0 {
				return execOutcome{}, fmt.Errorf("machine: %s: b%d entered from non-pred b%d", fr.fn.Name, blk.ID, prev.ID)
			}
			// Scratch reuse is safe: nothing between the read and define
			// loops re-enters exec.
			if cap(s.phiVals) < len(phis) {
				s.phiVals = make([]Value, len(phis))
				s.phiTaints = make([]bool, len(phis))
			}
			vals := s.phiVals[:len(phis)]
			taints := s.phiTaints[:len(phis)]
			for i, phi := range phis {
				v, tnt := s.readVar(fr, phi.PhiArgs[pi])
				vals[i], taints[i] = v, tnt
			}
			for i, phi := range phis {
				s.defineVar(fr, phi.Dst, vals[i], taints[i])
			}
		}

		for _, st := range blk.Stmts[len(phis):] {
			s.steps++
			if s.steps > s.cfg.MaxSteps {
				return execOutcome{}, ErrStepLimit
			}
			if s.ctx != nil && s.steps%ctxPollSteps == 0 {
				if err := s.ctx.Err(); err != nil {
					return execOutcome{}, err
				}
			}
			c0, o0 := s.cycles, s.ops

			switch st.Kind {
			case ir.StmtAssign:
				v, tnt, err := s.eval(fr, st, st.RHS)
				if err != nil {
					return execOutcome{}, err
				}
				s.cycles += s.cfg.IssueCost
				s.ops++
				s.defineVar(fr, st.Dst, v, tnt)
				s.chargeSpec(st, tnt, c0, o0)

			case ir.StmtStoreG, ir.StmtStoreA:
				addr := st.G.Addr
				tnt := false
				if st.Kind == ir.StmtStoreA {
					a, t, err := s.elemAddr(fr, st, st.G, st.Index)
					if err != nil {
						return execOutcome{}, err
					}
					addr, tnt = a, t
				}
				v, t2, err := s.eval(fr, st, st.RHS)
				if err != nil {
					return execOutcome{}, err
				}
				tnt = tnt || t2
				s.cycles += s.cfg.IssueCost
				s.ops++
				s.writeMem(addr, v, tnt)
				s.chargeSpec(st, tnt, c0, o0)

			case ir.StmtCall:
				_, tnt, err := s.eval(fr, st, st.RHS)
				if err != nil {
					return execOutcome{}, err
				}
				s.chargeSpec(st, tnt, c0, o0)

			case ir.StmtRet:
				var v Value
				var tnt bool
				if st.RHS != nil {
					var err error
					v, tnt, err = s.eval(fr, st, st.RHS)
					if err != nil {
						return execOutcome{}, err
					}
				}
				s.cycles += s.cfg.IssueCost
				s.ops++
				s.chargeSpec(st, tnt, c0, o0)
				return execOutcome{ret: true, retVal: v, retTaint: tnt}, nil

			case ir.StmtIf:
				v, tnt, err := s.eval(fr, st, st.RHS)
				if err != nil {
					return execOutcome{}, err
				}
				s.cycles += s.cfg.IssueCost
				s.ops++
				taken := isTrue(v, st.RHS.Type)
				if !s.bp().predict(st.ID, taken) {
					s.cycles += s.cfg.MispredictPenalty
				}
				next := blk.Succs[1]
				if taken {
					next = blk.Succs[0]
				}
				s.chargeSpec(st, tnt, c0, o0)
				prev, blk = blk, next
				goto nextBlock

			case ir.StmtGoto:
				prev, blk = blk, blk.Succs[0]
				goto nextBlock

			// Fork and kill accounting convention: each executes as one
			// dynamic instruction (ops++) on whichever core runs it, and
			// both flow through chargeSpec so speculative-leg op counts
			// (spec.ops) include them. Their cycle overheads are charged
			// where they take effect: ForkOverhead inside onFork (only
			// when a fork actually spawns), KillOverhead only on the
			// non-speculative core (a speculative thread's own kill is
			// discarded with the thread).
			case ir.StmtFork:
				s.ops++
				if s.forkIter != nil {
					s.onFork(fr)
				}
				// Outside an active main SPT leg (including speculative
				// legs) the fork spawns nothing.
				s.chargeSpec(st, false, c0, o0)

			case ir.StmtKill:
				s.ops++
				if s.spec == nil {
					s.cycles += s.cfg.KillOverhead
				}
				s.chargeSpec(st, false, c0, o0)

			default:
				return execOutcome{}, fmt.Errorf("machine: invalid statement kind %s", st.Kind)
			}
		}
		return execOutcome{}, fmt.Errorf("machine: %s: b%d fell through", fr.fn.Name, blk.ID)

	nextBlock:
		if stop != nil && stop(blk) {
			return execOutcome{stopped: blk, prev: prev}, nil
		}
	}
}

// chargeSpec records a statement's cost as re-execution when it was
// misspeculated during a speculative leg.
func (s *sim) chargeSpec(st *ir.Stmt, tainted bool, c0 float64, o0 int64) {
	if s.spec == nil {
		return
	}
	s.spec.ops += s.ops - o0
	if tainted {
		s.spec.reexecCycles += s.cycles - c0
		s.spec.reexecOps += s.ops - o0
	}
	_ = st
}

// readVar reads a scalar, performing the speculative context check: a
// variable not yet defined in the speculative iteration was provided by
// the fork-time context copy (one value per base variable — a physical
// register); if the main thread has since produced a different value for
// that register, the read is violated.
func (s *sim) readVar(fr *frame, v *ir.Var) (Value, bool) {
	val := fr.reg(v)
	if s.spec == nil {
		return val, false
	}
	return val, s.readVarSpec(fr, v, val)
}

// readVarSpec is readVar's speculative tail, split out so the common
// non-speculative read inlines at its call sites.
func (s *sim) readVarSpec(fr *frame, v *ir.Var, val Value) bool {
	if fr == s.spec.loopFrame && s.defGen[v.ID] != s.defStamp {
		var snap Value
		if s.snapGen[v.Base.ID] == fr.gen {
			snap = s.snapVals[v.Base.ID]
		}
		if snap != val {
			return true // violated: stale context value
		}
		return false
	}
	return fr.taint[v.ID] == fr.gen
}

func (s *sim) defineVar(fr *frame, v *ir.Var, val Value, tnt bool) {
	fr.setReg(v, val)
	if s.spec != nil {
		if fr == s.spec.loopFrame {
			s.defGen[v.ID] = s.defStamp
		}
		fr.setTaint(v, tnt)
	}
}

// writeMem stores to memory, maintaining the undo log and speculative
// write-set.
func (s *sim) writeMem(addr int, v Value, tnt bool) {
	if s.undoActive && s.undoGen[addr] != s.undoStamp {
		s.undoGen[addr] = s.undoStamp
		s.undoVal[addr] = s.mem[addr]
	}
	if s.spec != nil {
		s.writtenGen[addr] = s.specStamp
		if tnt {
			s.taintMemGen[addr] = s.specStamp
		} else {
			s.taintMemGen[addr] = 0
		}
	}
	s.mem[addr] = v
	s.hier.store(addr)
}

// readMem performs the speculative memory check: an address written by
// the main thread after the fork is stale in the speculative thread; the
// read is violated when the values differ. The speculative thread's own
// buffered writes are read through with their taint.
func (s *sim) readMem(addr int) (Value, bool) {
	v := s.mem[addr]
	if s.spec == nil {
		return v, false
	}
	if s.writtenGen[addr] == s.specStamp {
		return v, s.taintMemGen[addr] == s.specStamp
	}
	if s.undoGen[addr] == s.undoStamp && s.undoVal[addr] != v {
		return v, true
	}
	return v, false
}

func isTrue(v Value, k ir.ValKind) bool {
	if k == ir.ValFloat {
		return v.F != 0
	}
	return v.I != 0
}

func (s *sim) elemAddr(fr *frame, st *ir.Stmt, g *ir.Global, index []*ir.Op) (int, bool, error) {
	off := 0
	tnt := false
	for d, ix := range index {
		v, t, err := s.eval(fr, st, ix)
		if err != nil {
			return 0, false, err
		}
		tnt = tnt || t
		i := int(v.I)
		if i < 0 || i >= g.Dims[d] {
			return 0, false, fmt.Errorf("machine: %s: index %d out of range [0,%d) for %s (stmt s%d)",
				fr.fn.Name, i, g.Dims[d], g.Name, st.ID)
		}
		off = off*g.Dims[d] + i
	}
	return g.Addr + off, tnt, nil
}

func (s *sim) eval(fr *frame, st *ir.Stmt, o *ir.Op) (Value, bool, error) {
	switch o.Kind {
	case ir.OpConstInt:
		return Value{I: o.ConstI}, false, nil
	case ir.OpConstFloat:
		return Value{F: o.ConstF}, false, nil
	case ir.OpConstStr:
		return Value{}, false, nil
	case ir.OpUseVar:
		v, tnt := s.readVar(fr, o.Var)
		return v, tnt, nil
	case ir.OpLoadG:
		s.ops++
		lat := s.hier.load(o.G.Addr)
		s.cycles += lat
		if lat > s.cfg.L1Lat {
			s.memCycles += lat
		}
		v, tnt := s.readMem(o.G.Addr)
		return v, tnt, nil
	case ir.OpLoadA:
		addr, tnt, err := s.elemAddr(fr, st, o.G, o.Args)
		if err != nil {
			return Value{}, false, err
		}
		s.ops++
		lat := s.hier.load(addr)
		s.cycles += lat
		if lat > s.cfg.L1Lat {
			s.memCycles += lat
		}
		v, t2 := s.readMem(addr)
		return v, tnt || t2, nil
	case ir.OpBin:
		x, tx, err := s.eval(fr, st, o.Args[0])
		if err != nil {
			return Value{}, false, err
		}
		y, ty, err := s.eval(fr, st, o.Args[1])
		if err != nil {
			return Value{}, false, err
		}
		s.ops++
		s.cycles += s.binCost(o)
		v, err := evalBinMachine(fr, st, o, x, y)
		return v, tx || ty, err
	case ir.OpUn:
		x, tnt, err := s.eval(fr, st, o.Args[0])
		if err != nil {
			return Value{}, false, err
		}
		s.ops++
		s.cycles += s.cfg.IssueCost
		switch o.Un {
		case ir.UnNeg:
			if o.Type == ir.ValFloat {
				return Value{F: -x.F}, tnt, nil
			}
			return Value{I: -x.I}, tnt, nil
		case ir.UnNot:
			if isTrue(x, o.Args[0].Type) {
				return Value{I: 0}, tnt, nil
			}
			return Value{I: 1}, tnt, nil
		case ir.UnBitNot:
			return Value{I: ^x.I}, tnt, nil
		}
		return Value{}, false, fmt.Errorf("machine: bad unary op")
	case ir.OpCast:
		x, tnt, err := s.eval(fr, st, o.Args[0])
		if err != nil {
			return Value{}, false, err
		}
		s.ops++
		s.cycles += s.cfg.IssueCost
		if o.Type == ir.ValFloat {
			if o.Args[0].Type == ir.ValFloat {
				return x, tnt, nil
			}
			return Value{F: float64(x.I)}, tnt, nil
		}
		if o.Args[0].Type == ir.ValFloat {
			return Value{I: int64(x.F)}, tnt, nil
		}
		return x, tnt, nil
	case ir.OpCall:
		return s.evalCall(fr, st, o)
	}
	return Value{}, false, fmt.Errorf("machine: invalid op kind %d", o.Kind)
}

func (s *sim) binCost(o *ir.Op) float64 {
	floatOperands := o.Args[0].Type == ir.ValFloat || o.Args[1].Type == ir.ValFloat
	switch o.Bin {
	case ir.BinMul:
		if floatOperands {
			return s.cfg.FloatCost
		}
		return s.cfg.IntMulCost
	case ir.BinDiv:
		if floatOperands {
			return s.cfg.FloatDivCost
		}
		return s.cfg.IntDivCost
	case ir.BinRem:
		return s.cfg.IntDivCost
	default:
		if floatOperands {
			return s.cfg.FloatCost
		}
		return s.cfg.IssueCost
	}
}

func (s *sim) evalCall(fr *frame, st *ir.Stmt, o *ir.Op) (Value, bool, error) {
	if o.Builtin {
		return s.evalBuiltin(fr, st, o)
	}
	if o.Func == nil {
		return Value{}, false, fmt.Errorf("machine: unresolved call %s", o.Callee)
	}
	// Argument values live in a stack-disciplined scratch buffer: nested
	// calls during operand evaluation push above our base and truncate
	// back before we append the next operand.
	base := len(s.argBuf)
	argTaint := false
	for _, a := range o.Args {
		v, t, err := s.eval(fr, st, a)
		if err != nil {
			s.argBuf = s.argBuf[:base]
			return Value{}, false, err
		}
		s.argBuf = append(s.argBuf, v)
		argTaint = argTaint || t
	}
	s.ops++
	v, retTaint, err := s.callTainted(o.Func, s.argBuf[base:], fr.depth+1, argTaint)
	s.argBuf = s.argBuf[:base]
	return v, argTaint || retTaint, err
}

// callTainted invokes a function during either normal or speculative
// execution. Argument taint seeds the callee's parameter taint; the
// second result is the taint of the returned value, so misspeculation
// observed inside the callee (e.g. a read of a post-fork-modified
// global) propagates back to the caller's expression.
func (s *sim) callTainted(f *ir.Func, args []Value, depth int, argTaint bool) (Value, bool, error) {
	if depth > 10000 {
		return Value{}, false, fmt.Errorf("machine: call stack overflow in %s", f.Name)
	}
	fr := s.acquireFrame(f, depth)
	for i, p := range f.Params {
		if i < len(args) {
			fr.setReg(p, args[i])
			if s.spec != nil && argTaint {
				fr.setTaint(p, true)
			}
		}
	}
	s.cycles += s.cfg.CallOverhead
	out, err := s.execFrom(fr, f.Entry, nil, nil)
	if err != nil {
		return Value{}, false, err
	}
	s.popAttrFrame(fr)
	s.releaseFrame(fr)
	if !out.ret {
		return Value{}, false, fmt.Errorf("machine: %s finished without return", f.Name)
	}
	return out.retVal, out.retTaint, nil
}

func (s *sim) evalBuiltin(fr *frame, st *ir.Stmt, o *ir.Op) (Value, bool, error) {
	if o.Callee == "print" {
		s.ops++
		s.cycles += s.cfg.PrintCost
		tnt := false
		for i, a := range o.Args {
			if i > 0 {
				fmt.Fprint(s.out, " ")
			}
			if a.Kind == ir.OpConstStr {
				fmt.Fprint(s.out, a.Str)
				continue
			}
			v, t, err := s.eval(fr, st, a)
			if err != nil {
				return Value{}, false, err
			}
			tnt = tnt || t
			if a.Type == ir.ValFloat {
				fmt.Fprintf(s.out, "%.6g", v.F)
			} else {
				fmt.Fprintf(s.out, "%d", v.I)
			}
		}
		fmt.Fprintln(s.out)
		return Value{}, tnt, nil
	}

	base := len(s.argBuf)
	defer func() { s.argBuf = s.argBuf[:base] }()
	tnt := false
	for _, a := range o.Args {
		v, t, err := s.eval(fr, st, a)
		if err != nil {
			return Value{}, false, err
		}
		s.argBuf = append(s.argBuf, v)
		tnt = tnt || t
	}
	args := s.argBuf[base:]
	s.ops++
	switch o.Callee {
	case "fabs":
		s.cycles += s.cfg.IssueCost
		return Value{F: math.Abs(args[0].F)}, tnt, nil
	case "fsqrt":
		s.cycles += s.cfg.SqrtCost
		if args[0].F < 0 {
			return Value{}, false, fmt.Errorf("machine: fsqrt of negative value")
		}
		return Value{F: math.Sqrt(args[0].F)}, tnt, nil
	case "fmin":
		s.cycles += s.cfg.FloatCost
		return Value{F: math.Min(args[0].F, args[1].F)}, tnt, nil
	case "fmax":
		s.cycles += s.cfg.FloatCost
		return Value{F: math.Max(args[0].F, args[1].F)}, tnt, nil
	case "iabs":
		s.cycles += s.cfg.IssueCost
		if args[0].I < 0 {
			return Value{I: -args[0].I}, tnt, nil
		}
		return args[0], tnt, nil
	case "imin":
		s.cycles += s.cfg.IssueCost
		if args[0].I < args[1].I {
			return args[0], tnt, nil
		}
		return args[1], tnt, nil
	case "imax":
		s.cycles += s.cfg.IssueCost
		if args[0].I > args[1].I {
			return args[0], tnt, nil
		}
		return args[1], tnt, nil
	}
	return Value{}, false, fmt.Errorf("machine: unknown builtin %s", o.Callee)
}

// evalBinMachine mirrors the interpreter's binary semantics.
func evalBinMachine(fr *frame, st *ir.Stmt, o *ir.Op, x, y Value) (Value, error) {
	lf := o.Args[0].Type == ir.ValFloat || o.Args[1].Type == ir.ValFloat
	b2i := func(b bool) Value {
		if b {
			return Value{I: 1}
		}
		return Value{I: 0}
	}
	if lf {
		switch o.Bin {
		case ir.BinAdd:
			return Value{F: x.F + y.F}, nil
		case ir.BinSub:
			return Value{F: x.F - y.F}, nil
		case ir.BinMul:
			return Value{F: x.F * y.F}, nil
		case ir.BinDiv:
			if y.F == 0 {
				return Value{}, fmt.Errorf("machine: %s: float division by zero (stmt s%d)", fr.fn.Name, st.ID)
			}
			return Value{F: x.F / y.F}, nil
		case ir.BinEq:
			return b2i(x.F == y.F), nil
		case ir.BinNeq:
			return b2i(x.F != y.F), nil
		case ir.BinLt:
			return b2i(x.F < y.F), nil
		case ir.BinLeq:
			return b2i(x.F <= y.F), nil
		case ir.BinGt:
			return b2i(x.F > y.F), nil
		case ir.BinGeq:
			return b2i(x.F >= y.F), nil
		}
		return Value{}, fmt.Errorf("machine: op %s on floats", o.Bin)
	}
	switch o.Bin {
	case ir.BinAdd:
		return Value{I: x.I + y.I}, nil
	case ir.BinSub:
		return Value{I: x.I - y.I}, nil
	case ir.BinMul:
		return Value{I: x.I * y.I}, nil
	case ir.BinDiv:
		if y.I == 0 {
			return Value{}, fmt.Errorf("machine: %s: integer division by zero (stmt s%d)", fr.fn.Name, st.ID)
		}
		return Value{I: x.I / y.I}, nil
	case ir.BinRem:
		if y.I == 0 {
			return Value{}, fmt.Errorf("machine: %s: integer remainder by zero (stmt s%d)", fr.fn.Name, st.ID)
		}
		return Value{I: x.I % y.I}, nil
	case ir.BinAnd:
		return Value{I: x.I & y.I}, nil
	case ir.BinOr:
		return Value{I: x.I | y.I}, nil
	case ir.BinXor:
		return Value{I: x.I ^ y.I}, nil
	case ir.BinShl:
		return Value{I: x.I << uint(y.I&63)}, nil
	case ir.BinShr:
		return Value{I: x.I >> uint(y.I&63)}, nil
	case ir.BinEq:
		return b2i(x.I == y.I), nil
	case ir.BinNeq:
		return b2i(x.I != y.I), nil
	case ir.BinLt:
		return b2i(x.I < y.I), nil
	case ir.BinLeq:
		return b2i(x.I <= y.I), nil
	case ir.BinGt:
		return b2i(x.I > y.I), nil
	case ir.BinGeq:
		return b2i(x.I >= y.I), nil
	case ir.BinLAnd:
		return b2i(x.I != 0 && y.I != 0), nil
	case ir.BinLOr:
		return b2i(x.I != 0 || y.I != 0), nil
	}
	return Value{}, fmt.Errorf("machine: invalid binary operator")
}

// noteBlock maintains loop-cycle attribution.
func (s *sim) noteBlock(fr *frame, blk *ir.Block) {
	if s.attr == nil {
		return
	}
	// Charge elapsed cycles to the current top before updating the stack.
	s.flushAttr()
	// Pop loops of this frame that do not contain blk.
	for len(s.attrStack) > 0 {
		top := s.attrStack[len(s.attrStack)-1]
		if top.fr != fr {
			break
		}
		set := s.loopBlocks[top.header]
		if set != nil && set[blk] {
			break
		}
		s.attrStack = s.attrStack[:len(s.attrStack)-1]
	}
	if key, ok := s.attr[blk]; ok {
		if n := len(s.attrStack); n > 0 && s.attrStack[n-1].header == blk && s.attrStack[n-1].fr == fr {
			return // back edge of the same instance
		}
		s.attrStack = append(s.attrStack, attrEntry{key: key, header: blk, fr: fr})
	}
}

func (s *sim) flushAttr() {
	if s.attr == nil {
		return
	}
	delta := s.cycles - s.lastAttr
	if delta > 0 && len(s.attrStack) > 0 {
		s.attrCyc[s.attrStack[len(s.attrStack)-1].key] += delta
	}
	s.lastAttr = s.cycles
}
