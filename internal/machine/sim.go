package machine

import (
	"errors"
	"fmt"
	"io"
	"math"

	"sptc/internal/interp"
	"sptc/internal/ir"
)

// Value aliases the interpreter's runtime value.
type Value = interp.Value

// LoopStats accumulates per-SPT-loop metrics.
type LoopStats struct {
	ID           int
	Invocations  int64
	Iterations   int64 // total iterations executed (main + spec)
	SpecIters    int64 // iterations executed speculatively
	MisspecIters int64 // speculative iterations with any re-execution
	SpecOps      int64 // instructions executed speculatively
	ReexecOps    int64 // instructions re-executed due to misspeculation
	SpecCycles   float64
	ReexecCycles float64
	SeqCycles    float64 // work cycles (what sequential execution would cost)
	Elapsed      float64 // actual cycles attributed to the loop under SPT
	Forks, Kills int64
}

// ReexecRatio is the fraction of speculative computation re-executed
// (Figure 19's y-axis).
func (l *LoopStats) ReexecRatio() float64 {
	if l.SpecOps == 0 {
		return 0
	}
	return float64(l.ReexecOps) / float64(l.SpecOps)
}

// LoopSpeedup is the loop-local speedup over sequential execution
// (Figure 18).
func (l *LoopStats) LoopSpeedup() float64 {
	if l.Elapsed == 0 {
		return 1
	}
	return l.SeqCycles / l.Elapsed
}

// Result is the outcome of one simulation.
type Result struct {
	Cycles float64
	Ops    int64 // dynamic instructions, excluding nops/phis/operand refs

	Loops map[int]*LoopStats

	// CyclesByLoop attributes cycles to statically identified loops when
	// loop attribution was requested (coverage measurements).
	CyclesByLoop map[int]float64

	BranchLookups int64
	BranchMisses  int64
	MemAccesses   int64
}

// IPC returns instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Ops) / r.Cycles
}

// RunOptions configure a simulation run.
type RunOptions struct {
	// SPTHeaders maps SPT loop headers to loop IDs; those loops execute
	// in the speculative pairwise model.
	SPTHeaders map[*ir.Block]int
	// AttributeLoops maps arbitrary loop headers to keys; cycles executed
	// while inside such a loop are attributed to its key (innermost
	// wins). Used for coverage measurements.
	AttributeLoops map[*ir.Block]int
	// LoopBlocks gives the block membership for every header in
	// SPTHeaders and AttributeLoops.
	LoopBlocks map[*ir.Block]map[*ir.Block]bool
	Out        io.Writer
}

// ErrStepLimit mirrors the interpreter's limit error.
var ErrStepLimit = errors.New("machine: step limit exceeded")

type frame struct {
	fn   *ir.Func
	regs map[*ir.Var]Value
	// baseVals tracks the latest value per base variable — the physical
	// register file the fork instruction copies into the speculative
	// thread's context (SSA versions are a compiler artifact).
	baseVals map[*ir.Var]Value
	taint    map[*ir.Var]bool // allocated during speculative legs
	depth    int
}

// specCtx tracks the merged functional/speculative evaluation of one
// speculatively executed iteration.
type specCtx struct {
	loopFrame *frame
	// snapshot holds the loop frame's base-variable values at fork time
	// (the context copy the speculative thread starts from).
	snapshot map[*ir.Var]Value
	defined  map[*ir.Var]bool
	undo     map[int]Value // fork-time values of post-fork-written addrs
	written  map[int]bool
	taintMem map[int]bool

	ops          int64
	reexecOps    int64
	reexecCycles float64
}

type sim struct {
	cfg  Config
	prog *ir.Program
	mem  []Value
	hier *hierarchy
	bpM  *branchPredictor // main core
	bpS  *branchPredictor // speculative core
	out  io.Writer

	cycles    float64
	ops       int64
	steps     int64
	memCycles float64 // cycles spent below L1 (shared L2/L3/memory)

	spt        map[*ir.Block]int
	loopBlocks map[*ir.Block]map[*ir.Block]bool
	loops      map[int]*LoopStats
	sptActive  bool

	undo     *map[int]Value         // active post-fork undo log
	spec     *specCtx               // active speculative leg
	forkHook func(*frame, *ir.Stmt) // set during main SPT legs

	// loop attribution
	attr      map[*ir.Block]int
	attrStack []attrEntry
	attrCyc   map[int]float64
	lastAttr  float64 // cycle checkpoint for attribution
}

type attrEntry struct {
	key    int
	header *ir.Block
	fr     *frame
}

// bp returns the active core's branch predictor.
func (s *sim) bp() *branchPredictor {
	if s.spec != nil {
		return s.bpS
	}
	return s.bpM
}

// Run simulates the program to completion.
func Run(prog *ir.Program, cfg Config, opt RunOptions) (*Result, error) {
	if opt.Out == nil {
		opt.Out = io.Discard
	}
	s := &sim{
		cfg:        cfg,
		prog:       prog,
		mem:        make([]Value, prog.Layout()),
		hier:       newHierarchy(cfg),
		bpM:        newPredictor(cfg.PredictorEntries),
		bpS:        newPredictor(cfg.PredictorEntries),
		out:        opt.Out,
		spt:        opt.SPTHeaders,
		loopBlocks: opt.LoopBlocks,
		loops:      make(map[int]*LoopStats),
		attr:       opt.AttributeLoops,
		attrCyc:    make(map[int]float64),
	}
	for _, g := range prog.Globals {
		if !g.IsArray() {
			if g.Elem == ir.ValFloat {
				s.mem[g.Addr] = Value{F: g.InitF}
			} else {
				s.mem[g.Addr] = Value{I: g.InitInt}
			}
		}
	}
	if prog.Main == nil {
		return nil, errors.New("machine: program has no main")
	}
	if _, err := s.call(prog.Main, nil, 0); err != nil {
		return nil, err
	}
	s.flushAttr()
	res := &Result{
		Cycles:        s.cycles,
		Ops:           s.ops,
		Loops:         s.loops,
		CyclesByLoop:  s.attrCyc,
		BranchLookups: s.bpM.lookups + s.bpS.lookups,
		BranchMisses:  s.bpM.misses + s.bpS.misses,
		MemAccesses:   s.hier.memAccess,
	}
	return res, nil
}

func (s *sim) call(f *ir.Func, args []Value, depth int) (Value, error) {
	if depth > 10000 {
		return Value{}, fmt.Errorf("machine: call stack overflow in %s", f.Name)
	}
	fr := &frame{fn: f, regs: make(map[*ir.Var]Value), baseVals: make(map[*ir.Var]Value), depth: depth}
	if s.spec != nil {
		fr.taint = make(map[*ir.Var]bool)
	}
	for i, p := range f.Params {
		if i < len(args) {
			fr.regs[p] = args[i]
			fr.baseVals[p.Base] = args[i]
		}
	}
	s.cycles += s.cfg.CallOverhead
	out, err := s.exec(fr, f.Entry, nil, nil)
	if err != nil {
		return Value{}, err
	}
	s.popAttrFrame(fr)
	if !out.ret {
		return Value{}, fmt.Errorf("machine: %s finished without return", f.Name)
	}
	return out.retVal, nil
}

// popAttrFrame drops attribution entries belonging to a returning frame.
func (s *sim) popAttrFrame(fr *frame) {
	if s.attr == nil {
		return
	}
	s.flushAttr()
	for len(s.attrStack) > 0 && s.attrStack[len(s.attrStack)-1].fr == fr {
		s.attrStack = s.attrStack[:len(s.attrStack)-1]
	}
}

type execOutcome struct {
	ret     bool
	retVal  Value
	stopped *ir.Block // set when the stop predicate fired (block not executed)
	prev    *ir.Block // predecessor on arrival at stopped
}

// exec runs from blk (entered from prev) until the function returns or
// stop fires for a block about to be entered.
func (s *sim) exec(fr *frame, blk, prev *ir.Block, stop func(*ir.Block) bool) (execOutcome, error) {
	for {
		// SPT loop entry: only from the outermost, non-speculative
		// context, and only when not already inside an SPT region.
		if id, ok := s.spt[blk]; ok && !s.sptActive {
			exit, exitPrev, err := s.runSPTLoop(fr, blk, prev, id)
			if rt, ok := err.(errReturnThroughLoop); ok {
				return execOutcome{ret: true, retVal: rt.val}, nil
			}
			if err != nil {
				return execOutcome{}, err
			}
			blk, prev = exit, exitPrev
			if stop != nil && stop(blk) {
				return execOutcome{stopped: blk, prev: prev}, nil
			}
			continue
		}
		s.noteBlock(fr, blk)

		// Phis evaluate in parallel from the predecessor's values.
		phis := blk.Phis()
		if len(phis) > 0 && prev != nil {
			pi := blk.PredIndex(prev)
			if pi < 0 {
				return execOutcome{}, fmt.Errorf("machine: %s: b%d entered from non-pred b%d", fr.fn.Name, blk.ID, prev.ID)
			}
			vals := make([]Value, len(phis))
			taints := make([]bool, len(phis))
			for i, phi := range phis {
				v, tnt := s.readVar(fr, phi.PhiArgs[pi])
				vals[i], taints[i] = v, tnt
			}
			for i, phi := range phis {
				s.defineVar(fr, phi, phi.Dst, vals[i], taints[i])
			}
		}

		for _, st := range blk.Stmts[len(phis):] {
			s.steps++
			if s.steps > s.cfg.MaxSteps {
				return execOutcome{}, ErrStepLimit
			}
			c0, o0 := s.cycles, s.ops

			switch st.Kind {
			case ir.StmtAssign:
				v, tnt, err := s.eval(fr, st, st.RHS)
				if err != nil {
					return execOutcome{}, err
				}
				s.cycles += s.cfg.IssueCost
				s.ops++
				s.defineVar(fr, st, st.Dst, v, tnt)
				s.chargeSpec(st, tnt, c0, o0)

			case ir.StmtStoreG, ir.StmtStoreA:
				addr := st.G.Addr
				tnt := false
				if st.Kind == ir.StmtStoreA {
					a, t, err := s.elemAddr(fr, st, st.G, st.Index)
					if err != nil {
						return execOutcome{}, err
					}
					addr, tnt = a, t
				}
				v, t2, err := s.eval(fr, st, st.RHS)
				if err != nil {
					return execOutcome{}, err
				}
				tnt = tnt || t2
				s.cycles += s.cfg.IssueCost
				s.ops++
				s.writeMem(addr, v, tnt)
				s.chargeSpec(st, tnt, c0, o0)

			case ir.StmtCall:
				_, tnt, err := s.eval(fr, st, st.RHS)
				if err != nil {
					return execOutcome{}, err
				}
				s.chargeSpec(st, tnt, c0, o0)

			case ir.StmtRet:
				var v Value
				var tnt bool
				if st.RHS != nil {
					var err error
					v, tnt, err = s.eval(fr, st, st.RHS)
					if err != nil {
						return execOutcome{}, err
					}
				}
				s.cycles += s.cfg.IssueCost
				s.ops++
				s.chargeSpec(st, tnt, c0, o0)
				return execOutcome{ret: true, retVal: v}, nil

			case ir.StmtIf:
				v, tnt, err := s.eval(fr, st, st.RHS)
				if err != nil {
					return execOutcome{}, err
				}
				s.cycles += s.cfg.IssueCost
				s.ops++
				taken := isTrue(v, st.RHS.Type)
				if !s.bp().predict(st.ID, taken) {
					s.cycles += s.cfg.MispredictPenalty
				}
				next := blk.Succs[1]
				if taken {
					next = blk.Succs[0]
				}
				s.chargeSpec(st, tnt, c0, o0)
				prev, blk = blk, next
				goto nextBlock

			case ir.StmtGoto:
				prev, blk = blk, blk.Succs[0]
				goto nextBlock

			case ir.StmtFork:
				if s.forkHook != nil {
					s.forkHook(fr, st)
				}
				// Outside an active main SPT leg (including speculative
				// legs) the fork is a no-op.

			case ir.StmtKill:
				if s.spec == nil {
					s.cycles += s.cfg.KillOverhead
				}
				s.ops++

			default:
				return execOutcome{}, fmt.Errorf("machine: invalid statement kind %s", st.Kind)
			}
		}
		return execOutcome{}, fmt.Errorf("machine: %s: b%d fell through", fr.fn.Name, blk.ID)

	nextBlock:
		if stop != nil && stop(blk) {
			return execOutcome{stopped: blk, prev: prev}, nil
		}
	}
}

// chargeSpec records a statement's cost as re-execution when it was
// misspeculated during a speculative leg.
func (s *sim) chargeSpec(st *ir.Stmt, tainted bool, c0 float64, o0 int64) {
	if s.spec == nil {
		return
	}
	s.spec.ops += s.ops - o0
	if tainted {
		s.spec.reexecCycles += s.cycles - c0
		s.spec.reexecOps += s.ops - o0
	}
	_ = st
}

// readVar reads a scalar, performing the speculative context check: a
// variable not yet defined in the speculative iteration was provided by
// the fork-time context copy (one value per base variable — a physical
// register); if the main thread has since produced a different value for
// that register, the read is violated.
func (s *sim) readVar(fr *frame, v *ir.Var) (Value, bool) {
	val := fr.regs[v]
	if s.spec == nil {
		return val, false
	}
	if fr == s.spec.loopFrame && !s.spec.defined[v] {
		if s.spec.snapshot[v.Base] != val {
			return val, true // violated: stale context value
		}
		return val, false
	}
	return val, fr.taint[v]
}

func (s *sim) defineVar(fr *frame, st *ir.Stmt, v *ir.Var, val Value, tnt bool) {
	fr.regs[v] = val
	fr.baseVals[v.Base] = val
	if s.spec != nil {
		if fr == s.spec.loopFrame {
			s.spec.defined[v] = true
		}
		if fr.taint == nil {
			fr.taint = make(map[*ir.Var]bool)
		}
		fr.taint[v] = tnt
	}
	_ = st
}

// writeMem stores to memory, maintaining the undo log and speculative
// write-set.
func (s *sim) writeMem(addr int, v Value, tnt bool) {
	if s.undo != nil {
		if _, seen := (*s.undo)[addr]; !seen {
			(*s.undo)[addr] = s.mem[addr]
		}
	}
	if s.spec != nil {
		s.spec.written[addr] = true
		s.spec.taintMem[addr] = tnt
	}
	s.mem[addr] = v
	s.hier.store(addr)
}

// readMem performs the speculative memory check: an address written by
// the main thread after the fork is stale in the speculative thread; the
// read is violated when the values differ. The speculative thread's own
// buffered writes are read through with their taint.
func (s *sim) readMem(addr int) (Value, bool) {
	v := s.mem[addr]
	if s.spec == nil {
		return v, false
	}
	if s.spec.written[addr] {
		return v, s.spec.taintMem[addr]
	}
	if old, ok := s.spec.undo[addr]; ok && old != v {
		return v, true
	}
	return v, false
}

func isTrue(v Value, k ir.ValKind) bool {
	if k == ir.ValFloat {
		return v.F != 0
	}
	return v.I != 0
}

func (s *sim) elemAddr(fr *frame, st *ir.Stmt, g *ir.Global, index []*ir.Op) (int, bool, error) {
	off := 0
	tnt := false
	for d, ix := range index {
		v, t, err := s.eval(fr, st, ix)
		if err != nil {
			return 0, false, err
		}
		tnt = tnt || t
		i := int(v.I)
		if i < 0 || i >= g.Dims[d] {
			return 0, false, fmt.Errorf("machine: %s: index %d out of range [0,%d) for %s (stmt s%d)",
				fr.fn.Name, i, g.Dims[d], g.Name, st.ID)
		}
		off = off*g.Dims[d] + i
	}
	return g.Addr + off, tnt, nil
}

func (s *sim) eval(fr *frame, st *ir.Stmt, o *ir.Op) (Value, bool, error) {
	switch o.Kind {
	case ir.OpConstInt:
		return Value{I: o.ConstI}, false, nil
	case ir.OpConstFloat:
		return Value{F: o.ConstF}, false, nil
	case ir.OpConstStr:
		return Value{}, false, nil
	case ir.OpUseVar:
		v, tnt := s.readVar(fr, o.Var)
		return v, tnt, nil
	case ir.OpLoadG:
		s.ops++
		lat := s.hier.load(o.G.Addr)
		s.cycles += lat
		if lat > s.cfg.L1Lat {
			s.memCycles += lat
		}
		v, tnt := s.readMem(o.G.Addr)
		return v, tnt, nil
	case ir.OpLoadA:
		addr, tnt, err := s.elemAddr(fr, st, o.G, o.Args)
		if err != nil {
			return Value{}, false, err
		}
		s.ops++
		lat := s.hier.load(addr)
		s.cycles += lat
		if lat > s.cfg.L1Lat {
			s.memCycles += lat
		}
		v, t2 := s.readMem(addr)
		return v, tnt || t2, nil
	case ir.OpBin:
		x, tx, err := s.eval(fr, st, o.Args[0])
		if err != nil {
			return Value{}, false, err
		}
		y, ty, err := s.eval(fr, st, o.Args[1])
		if err != nil {
			return Value{}, false, err
		}
		s.ops++
		s.cycles += s.binCost(o)
		v, err := evalBinMachine(fr, st, o, x, y)
		return v, tx || ty, err
	case ir.OpUn:
		x, tnt, err := s.eval(fr, st, o.Args[0])
		if err != nil {
			return Value{}, false, err
		}
		s.ops++
		s.cycles += s.cfg.IssueCost
		switch o.Un {
		case ir.UnNeg:
			if o.Type == ir.ValFloat {
				return Value{F: -x.F}, tnt, nil
			}
			return Value{I: -x.I}, tnt, nil
		case ir.UnNot:
			if isTrue(x, o.Args[0].Type) {
				return Value{I: 0}, tnt, nil
			}
			return Value{I: 1}, tnt, nil
		case ir.UnBitNot:
			return Value{I: ^x.I}, tnt, nil
		}
		return Value{}, false, fmt.Errorf("machine: bad unary op")
	case ir.OpCast:
		x, tnt, err := s.eval(fr, st, o.Args[0])
		if err != nil {
			return Value{}, false, err
		}
		s.ops++
		s.cycles += s.cfg.IssueCost
		if o.Type == ir.ValFloat {
			if o.Args[0].Type == ir.ValFloat {
				return x, tnt, nil
			}
			return Value{F: float64(x.I)}, tnt, nil
		}
		if o.Args[0].Type == ir.ValFloat {
			return Value{I: int64(x.F)}, tnt, nil
		}
		return x, tnt, nil
	case ir.OpCall:
		return s.evalCall(fr, st, o)
	}
	return Value{}, false, fmt.Errorf("machine: invalid op kind %d", o.Kind)
}

func (s *sim) binCost(o *ir.Op) float64 {
	floatOperands := o.Args[0].Type == ir.ValFloat || o.Args[1].Type == ir.ValFloat
	switch o.Bin {
	case ir.BinMul:
		if floatOperands {
			return s.cfg.FloatCost
		}
		return s.cfg.IntMulCost
	case ir.BinDiv:
		if floatOperands {
			return s.cfg.FloatDivCost
		}
		return s.cfg.IntDivCost
	case ir.BinRem:
		return s.cfg.IntDivCost
	default:
		if floatOperands {
			return s.cfg.FloatCost
		}
		return s.cfg.IssueCost
	}
}

func (s *sim) evalCall(fr *frame, st *ir.Stmt, o *ir.Op) (Value, bool, error) {
	if o.Builtin {
		return s.evalBuiltin(fr, st, o)
	}
	if o.Func == nil {
		return Value{}, false, fmt.Errorf("machine: unresolved call %s", o.Callee)
	}
	args := make([]Value, len(o.Args))
	argTaint := false
	for i, a := range o.Args {
		v, t, err := s.eval(fr, st, a)
		if err != nil {
			return Value{}, false, err
		}
		args[i] = v
		argTaint = argTaint || t
	}
	s.ops++
	v, err := s.callTainted(o.Func, args, fr.depth+1, argTaint)
	return v, argTaint, err
}

// callTainted invokes a function during either normal or speculative
// execution. Argument taint seeds the callee's parameter taint.
func (s *sim) callTainted(f *ir.Func, args []Value, depth int, argTaint bool) (Value, error) {
	fr := &frame{fn: f, regs: make(map[*ir.Var]Value), baseVals: make(map[*ir.Var]Value), depth: depth}
	if s.spec != nil {
		fr.taint = make(map[*ir.Var]bool)
	}
	for i, p := range f.Params {
		if i < len(args) {
			fr.regs[p] = args[i]
			fr.baseVals[p.Base] = args[i]
			if s.spec != nil && argTaint {
				fr.taint[p] = true
			}
		}
	}
	s.cycles += s.cfg.CallOverhead
	out, err := s.exec(fr, f.Entry, nil, nil)
	if err != nil {
		return Value{}, err
	}
	s.popAttrFrame(fr)
	if !out.ret {
		return Value{}, fmt.Errorf("machine: %s finished without return", f.Name)
	}
	return out.retVal, nil
}

func (s *sim) evalBuiltin(fr *frame, st *ir.Stmt, o *ir.Op) (Value, bool, error) {
	if o.Callee == "print" {
		s.ops++
		s.cycles += s.cfg.PrintCost
		tnt := false
		for i, a := range o.Args {
			if i > 0 {
				fmt.Fprint(s.out, " ")
			}
			if a.Kind == ir.OpConstStr {
				fmt.Fprint(s.out, a.Str)
				continue
			}
			v, t, err := s.eval(fr, st, a)
			if err != nil {
				return Value{}, false, err
			}
			tnt = tnt || t
			if a.Type == ir.ValFloat {
				fmt.Fprintf(s.out, "%.6g", v.F)
			} else {
				fmt.Fprintf(s.out, "%d", v.I)
			}
		}
		fmt.Fprintln(s.out)
		return Value{}, tnt, nil
	}

	args := make([]Value, len(o.Args))
	tnt := false
	for i, a := range o.Args {
		v, t, err := s.eval(fr, st, a)
		if err != nil {
			return Value{}, false, err
		}
		args[i] = v
		tnt = tnt || t
	}
	s.ops++
	switch o.Callee {
	case "fabs":
		s.cycles += s.cfg.IssueCost
		return Value{F: math.Abs(args[0].F)}, tnt, nil
	case "fsqrt":
		s.cycles += s.cfg.SqrtCost
		if args[0].F < 0 {
			return Value{}, false, fmt.Errorf("machine: fsqrt of negative value")
		}
		return Value{F: math.Sqrt(args[0].F)}, tnt, nil
	case "fmin":
		s.cycles += s.cfg.FloatCost
		return Value{F: math.Min(args[0].F, args[1].F)}, tnt, nil
	case "fmax":
		s.cycles += s.cfg.FloatCost
		return Value{F: math.Max(args[0].F, args[1].F)}, tnt, nil
	case "iabs":
		s.cycles += s.cfg.IssueCost
		if args[0].I < 0 {
			return Value{I: -args[0].I}, tnt, nil
		}
		return args[0], tnt, nil
	case "imin":
		s.cycles += s.cfg.IssueCost
		if args[0].I < args[1].I {
			return args[0], tnt, nil
		}
		return args[1], tnt, nil
	case "imax":
		s.cycles += s.cfg.IssueCost
		if args[0].I > args[1].I {
			return args[0], tnt, nil
		}
		return args[1], tnt, nil
	}
	return Value{}, false, fmt.Errorf("machine: unknown builtin %s", o.Callee)
}

// evalBinMachine mirrors the interpreter's binary semantics.
func evalBinMachine(fr *frame, st *ir.Stmt, o *ir.Op, x, y Value) (Value, error) {
	lf := o.Args[0].Type == ir.ValFloat || o.Args[1].Type == ir.ValFloat
	b2i := func(b bool) Value {
		if b {
			return Value{I: 1}
		}
		return Value{I: 0}
	}
	if lf {
		switch o.Bin {
		case ir.BinAdd:
			return Value{F: x.F + y.F}, nil
		case ir.BinSub:
			return Value{F: x.F - y.F}, nil
		case ir.BinMul:
			return Value{F: x.F * y.F}, nil
		case ir.BinDiv:
			if y.F == 0 {
				return Value{}, fmt.Errorf("machine: %s: float division by zero (stmt s%d)", fr.fn.Name, st.ID)
			}
			return Value{F: x.F / y.F}, nil
		case ir.BinEq:
			return b2i(x.F == y.F), nil
		case ir.BinNeq:
			return b2i(x.F != y.F), nil
		case ir.BinLt:
			return b2i(x.F < y.F), nil
		case ir.BinLeq:
			return b2i(x.F <= y.F), nil
		case ir.BinGt:
			return b2i(x.F > y.F), nil
		case ir.BinGeq:
			return b2i(x.F >= y.F), nil
		}
		return Value{}, fmt.Errorf("machine: op %s on floats", o.Bin)
	}
	switch o.Bin {
	case ir.BinAdd:
		return Value{I: x.I + y.I}, nil
	case ir.BinSub:
		return Value{I: x.I - y.I}, nil
	case ir.BinMul:
		return Value{I: x.I * y.I}, nil
	case ir.BinDiv:
		if y.I == 0 {
			return Value{}, fmt.Errorf("machine: %s: integer division by zero (stmt s%d)", fr.fn.Name, st.ID)
		}
		return Value{I: x.I / y.I}, nil
	case ir.BinRem:
		if y.I == 0 {
			return Value{}, fmt.Errorf("machine: %s: integer remainder by zero (stmt s%d)", fr.fn.Name, st.ID)
		}
		return Value{I: x.I % y.I}, nil
	case ir.BinAnd:
		return Value{I: x.I & y.I}, nil
	case ir.BinOr:
		return Value{I: x.I | y.I}, nil
	case ir.BinXor:
		return Value{I: x.I ^ y.I}, nil
	case ir.BinShl:
		return Value{I: x.I << uint(y.I&63)}, nil
	case ir.BinShr:
		return Value{I: x.I >> uint(y.I&63)}, nil
	case ir.BinEq:
		return b2i(x.I == y.I), nil
	case ir.BinNeq:
		return b2i(x.I != y.I), nil
	case ir.BinLt:
		return b2i(x.I < y.I), nil
	case ir.BinLeq:
		return b2i(x.I <= y.I), nil
	case ir.BinGt:
		return b2i(x.I > y.I), nil
	case ir.BinGeq:
		return b2i(x.I >= y.I), nil
	case ir.BinLAnd:
		return b2i(x.I != 0 && y.I != 0), nil
	case ir.BinLOr:
		return b2i(x.I != 0 || y.I != 0), nil
	}
	return Value{}, fmt.Errorf("machine: invalid binary operator")
}

// noteBlock maintains loop-cycle attribution.
func (s *sim) noteBlock(fr *frame, blk *ir.Block) {
	if s.attr == nil {
		return
	}
	// Charge elapsed cycles to the current top before updating the stack.
	s.flushAttr()
	// Pop loops of this frame that do not contain blk.
	for len(s.attrStack) > 0 {
		top := s.attrStack[len(s.attrStack)-1]
		if top.fr != fr {
			break
		}
		set := s.loopBlocks[top.header]
		if set != nil && set[blk] {
			break
		}
		s.attrStack = s.attrStack[:len(s.attrStack)-1]
	}
	if key, ok := s.attr[blk]; ok {
		if n := len(s.attrStack); n > 0 && s.attrStack[n-1].header == blk && s.attrStack[n-1].fr == fr {
			return // back edge of the same instance
		}
		s.attrStack = append(s.attrStack, attrEntry{key: key, header: blk, fr: fr})
	}
}

func (s *sim) flushAttr() {
	if s.attr == nil {
		return
	}
	delta := s.cycles - s.lastAttr
	if delta > 0 && len(s.attrStack) > 0 {
		s.attrCyc[s.attrStack[len(s.attrStack)-1].key] += delta
	}
	s.lastAttr = s.cycles
}
