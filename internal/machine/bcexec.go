package machine

import (
	"fmt"
	"math"

	"sptc/internal/ir"
)

// tval is one value-stack slot: a runtime value plus its speculative
// taint. Values are always constructed exactly like the tree walker's
// (the unused half of the Value union stays zero), because speculative
// violation detection compares whole Values.
type tval struct {
	v Value
	t bool
}

// execFrom dispatches block-range execution to the active engine: the
// bytecode engine when the program was lowered (RunOptions.Engine ==
// EngineBytecode, the default), the reference tree walker otherwise.
// Everything around it — the SPT pairwise runner, frames, speculative
// buffers, memory hierarchy — is shared by both engines.
func (s *sim) execFrom(fr *frame, blk, prev *ir.Block, stop func(*ir.Block) bool) (execOutcome, error) {
	if s.low != nil {
		return s.execByte(fr, blk, prev, stop)
	}
	return s.exec(fr, blk, prev, stop)
}

// execByte is the bytecode engine's dispatch loop: the exact semantics
// of sim.exec (see sim.go) over the lowered instruction stream. Any
// change to the walker must be mirrored here; TestEngineFidelity holds
// the two bit-identical.
//
// The hot counters (cycles, ops, steps, memCycles) live in locals and
// are flushed to the sim around anything that observes them: SPT loop
// entry, the fork hook, calls, attribution, and every return. The float
// additions happen in exactly the walker's order, so the flushed totals
// are bit-identical. The operand stack is a pre-sized window of
// s.vstack addressed by sp; lowering computed the per-activation
// maximum depth, so pushes never reallocate mid-frame (only a nested
// call can move the backing array, and the window is reloaded after).
func (s *sim) execByte(fr *frame, blk, prev *ir.Block, stop func(*ir.Block) bool) (execOutcome, error) {
	lfn := s.low.fns[fr.fn]
	if lfn == nil {
		return s.exec(fr, blk, prev, stop)
	}
	code := lfn.code
	aux := lfn.aux
	sptID := s.sptID[fr.fn]
	pc := lfn.entry[blk]
	prevBlk := prev

	vbase := len(s.vstack)
	if need := vbase + lfn.maxStack; cap(s.vstack) < need {
		ns := make([]tval, vbase, need+32)
		copy(ns, s.vstack)
		s.vstack = ns
	}
	vs := s.vstack[:cap(s.vstack)]
	sp := vbase
	defer func() { s.vstack = s.vstack[:vbase] }()

	cycles, ops, steps, memCycles := s.cycles, s.ops, s.steps, s.memCycles
	maxSteps := s.cfg.MaxSteps
	mp := s.cfg.MispredictPenalty
	l1Lat := s.cfg.L1Lat
	isC := s.cfg.IssueCost
	ctx := s.ctx
	var c0 float64 // cycle/op counts at the current statement's start,
	var o0 int64   // for re-execution accounting; calls recurse fresh

	// With attribution off, a phi-less block's bcEnter is a no-op when
	// the SPT entry check cannot fire: inside an SPT region (sptActive)
	// nested entries are ignored, and with no header set there is nothing
	// to enter. Both are fixed for the duration of this activation, so
	// jumps may land directly past such enters.
	skipEnter := s.attr == nil && (s.sptActive || s.spt == nil)

	for {
		in := &code[pc]
		op := in.op
		if op&bcStepped != 0 {
			// This instruction absorbed its statement's bare bcStep (see
			// bcStepped): run the prologue first, in the walker's order.
			steps++
			if steps > maxSteps {
				s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
				return execOutcome{}, ErrStepLimit
			}
			if ctx != nil && steps%ctxPollSteps == 0 {
				if err := ctx.Err(); err != nil {
					s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
					return execOutcome{}, err
				}
			}
			c0, o0 = cycles, ops
			op &^= bcStepped
		}
		switch op {
		case bcEnter:
			b := in.blk
			// SPT loop entry: only from the outermost, non-speculative
			// context, and only when not already inside an SPT region.
			if !s.sptActive && sptID != nil {
				if id := int(sptID[in.b]); id >= 0 {
					s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
					s.vstack = vs[:sp]
					exit, exitPrev, err := s.runSPTLoop(fr, b, prevBlk, id)
					cycles, ops, steps, memCycles = s.cycles, s.ops, s.steps, s.memCycles
					vs = s.vstack[:cap(s.vstack)]
					if rt, ok := err.(errReturnThroughLoop); ok {
						return execOutcome{ret: true, retVal: rt.val, retTaint: rt.taint}, nil
					}
					if err != nil {
						return execOutcome{}, err
					}
					if stop != nil && stop(exit) {
						return execOutcome{stopped: exit, prev: exitPrev}, nil
					}
					prevBlk = exitPrev
					pc = lfn.entry[exit]
					continue
				}
			}
			if s.attr != nil {
				s.cycles = cycles
				s.noteBlock(fr, b)
			}
			if in.a >= 0 && prevBlk != nil {
				// Phis evaluate in parallel from the predecessor's values.
				phis := lfn.phis[in.a]
				pi := b.PredIndex(prevBlk)
				if pi < 0 {
					s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
					return execOutcome{}, fmt.Errorf("machine: %s: b%d entered from non-pred b%d", fr.fn.Name, b.ID, prevBlk.ID)
				}
				if cap(s.phiVals) < len(phis) {
					s.phiVals = make([]Value, len(phis))
					s.phiTaints = make([]bool, len(phis))
				}
				vals := s.phiVals[:len(phis)]
				taints := s.phiTaints[:len(phis)]
				for i, phi := range phis {
					v, tnt := s.readVar(fr, phi.PhiArgs[pi])
					vals[i], taints[i] = v, tnt
				}
				for i, phi := range phis {
					s.defineVar(fr, phi.Dst, vals[i], taints[i])
				}
			}
			pc++

		case bcStep:
			steps++
			if steps > maxSteps {
				s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
				return execOutcome{}, ErrStepLimit
			}
			if ctx != nil && steps%ctxPollSteps == 0 {
				if err := ctx.Err(); err != nil {
					s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
					return execOutcome{}, err
				}
			}
			c0, o0 = cycles, ops
			pc++

		case bcGoto:
			prevBlk = in.blk
			tgt := in.a
			if stop != nil {
				te := &code[tgt]
				var stopped bool
				if si := s.stopIn; si != nil {
					stopped = te.blk == s.stopHdr || !si[te.b]
				} else {
					stopped = stop(te.blk)
				}
				if stopped {
					s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
					return execOutcome{stopped: te.blk, prev: prevBlk}, nil
				}
				if skipEnter && te.a < 0 {
					tgt++ // phi-less enter is a no-op here; land past it
				}
			} else if skipEnter {
				if te := &code[tgt]; te.a < 0 {
					tgt++
				}
			}
			pc = tgt

		case bcIf:
			sp--
			cond := vs[sp]
			cycles += in.cost
			ops++
			var taken bool
			if in.bin != 0 {
				taken = cond.v.F != 0
			} else {
				taken = cond.v.I != 0
			}
			bp := s.bpM
			if s.spec != nil {
				bp = s.bpS
			}
			if !bp.predict(int(in.d), taken) {
				cycles += mp
			}
			tgt := in.b
			if taken {
				tgt = in.a
			}
			if sc := s.spec; sc != nil {
				sc.ops += ops - o0
				if cond.t {
					sc.reexecCycles += cycles - c0
					sc.reexecOps += ops - o0
				}
			}
			prevBlk = in.blk
			if stop != nil {
				te := &code[tgt]
				var stopped bool
				if si := s.stopIn; si != nil {
					stopped = te.blk == s.stopHdr || !si[te.b]
				} else {
					stopped = stop(te.blk)
				}
				if stopped {
					s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
					return execOutcome{stopped: te.blk, prev: prevBlk}, nil
				}
				if skipEnter && te.a < 0 {
					tgt++
				}
			} else if skipEnter {
				if te := &code[tgt]; te.a < 0 {
					tgt++
				}
			}
			pc = tgt

		case bcFellThrough:
			s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
			return execOutcome{}, fmt.Errorf("machine: %s: b%d fell through", fr.fn.Name, in.blk.ID)

		case bcConst:
			vs[sp] = tval{v: in.val}
			sp++
			pc++

		case bcUseVar:
			var tv tval
			if s.spec == nil {
				if fr.regGen[in.a] == fr.gen {
					tv.v = fr.regs[in.a]
				}
			} else {
				tv.v, tv.t = s.readVar(fr, aux[pc].v)
			}
			vs[sp] = tv
			sp++
			pc++

		case bcLoadG:
			ops++
			addr := int(in.c)
			lat := s.hier.load(addr)
			cycles += lat
			if lat > l1Lat {
				memCycles += lat
			}
			if s.spec == nil {
				vs[sp] = tval{v: s.mem[addr]}
			} else {
				v, tnt := s.readMem(addr)
				vs[sp] = tval{v, tnt}
			}
			sp++
			pc++

		case bcAddrInit:
			vs[sp] = tval{}
			sp++
			pc++

		case bcAddrIdx:
			sp--
			ix := vs[sp]
			acc := &vs[sp-1]
			g := aux[pc].g
			d := int(in.a)
			i := int(ix.v.I)
			if i < 0 || i >= g.Dims[d] {
				s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
				return execOutcome{}, fmt.Errorf("machine: %s: index %d out of range [0,%d) for %s (stmt s%d)",
					fr.fn.Name, i, g.Dims[d], g.Name, aux[pc].st.ID)
			}
			acc.v.I = acc.v.I*int64(g.Dims[d]) + int64(i)
			acc.t = acc.t || ix.t
			pc++

		case bcLoadAddr:
			acc := vs[sp-1]
			addr := int(in.c) + int(acc.v.I)
			ops++
			lat := s.hier.load(addr)
			cycles += lat
			if lat > l1Lat {
				memCycles += lat
			}
			if s.spec == nil {
				vs[sp-1] = tval{v: s.mem[addr], t: acc.t}
			} else {
				v, t2 := s.readMem(addr)
				vs[sp-1] = tval{v, acc.t || t2}
			}
			pc++

		case bcBinII:
			// Operand fetch: y first (it is on top when both are on the
			// stack), then x. Var/const fetches are pure, so the relative
			// order versus the walker's x-then-y evaluation is unobservable.
			var y tval
			switch in.ym {
			case bcMConst:
				y.v = in.val
			case bcMVar:
				if s.spec == nil {
					if fr.regGen[in.yid] == fr.gen {
						y.v = fr.regs[in.yid]
					}
				} else {
					y.v, y.t = s.readVar(fr, aux[pc].yv)
				}
			default:
				sp--
				y = vs[sp]
			}
			var x tval
			switch in.xm {
			case bcMConst:
				x.v = in.val
			case bcMVar:
				if s.spec == nil {
					if fr.regGen[in.xid] == fr.gen {
						x.v = fr.regs[in.xid]
					}
				} else {
					x.v, x.t = s.readVar(fr, aux[pc].xv)
				}
			default:
				sp--
				x = vs[sp]
			}
			ops++
			cycles += in.cost
			// The operator switch is written out here (rather than calling
			// intBin) because this is the single hottest opcode and the
			// switch is too large for the inliner.
			xi, yi := x.v.I, y.v.I
			var r int64
			switch ir.BinOp(in.bin) {
			case ir.BinAdd:
				r = xi + yi
			case ir.BinSub:
				r = xi - yi
			case ir.BinMul:
				r = xi * yi
			case ir.BinAnd:
				r = xi & yi
			case ir.BinOr:
				r = xi | yi
			case ir.BinXor:
				r = xi ^ yi
			case ir.BinShl:
				r = xi << uint(yi&63)
			case ir.BinShr:
				r = xi >> uint(yi&63)
			case ir.BinDiv:
				// Reached only with a constant nonzero, non-minus-one
				// divisor (fastIntBin): neither trap is possible.
				r = xi / yi
			case ir.BinRem:
				r = xi % yi
			case ir.BinEq:
				r = b2iInt(xi == yi)
			case ir.BinNeq:
				r = b2iInt(xi != yi)
			case ir.BinLt:
				r = b2iInt(xi < yi)
			case ir.BinLeq:
				r = b2iInt(xi <= yi)
			case ir.BinGt:
				r = b2iInt(xi > yi)
			case ir.BinGeq:
				r = b2iInt(xi >= yi)
			case ir.BinLAnd:
				r = b2iInt(xi != 0 && yi != 0)
			case ir.BinLOr:
				r = b2iInt(xi != 0 || yi != 0)
			}
			vs[sp] = tval{v: Value{I: r}, t: x.t || y.t}
			sp++
			pc++

		case bcBinII2:
			// A bcBinII pair fused by the emit peephole: the first op runs
			// exactly as bcBinII, its result feeds the second op without a
			// stack round-trip. Charging matches the separate ops: two
			// ops, two cycle-cost adds in order.
			var y tval
			switch in.ym {
			case bcMConst:
				y.v = in.val
			case bcMVar:
				if s.spec == nil {
					if fr.regGen[in.yid] == fr.gen {
						y.v = fr.regs[in.yid]
					}
				} else {
					y.v, y.t = s.readVar(fr, aux[pc].yv)
				}
			default:
				sp--
				y = vs[sp]
			}
			var x tval
			switch in.xm {
			case bcMConst:
				x.v = in.val
			case bcMVar:
				if s.spec == nil {
					if fr.regGen[in.xid] == fr.gen {
						x.v = fr.regs[in.xid]
					}
				} else {
					x.v, x.t = s.readVar(fr, aux[pc].xv)
				}
			default:
				sp--
				x = vs[sp]
			}
			ops++
			cycles += in.cost
			r := intBin(ir.BinOp(in.bin), x.v.I, y.v.I)
			d := uint32(in.d)
			var y2 tval
			if uint8(d) == bcMConst {
				y2.v.I = int64(in.c)
			} else if s.spec == nil {
				if fr.regGen[in.c] == fr.gen {
					y2.v = fr.regs[in.c]
				}
			} else {
				y2.v, y2.t = s.readVar(fr, aux[pc].v)
			}
			ops++
			cycles += in.val.F
			x2, yi2 := r, y2.v.I
			if d&(1<<8) != 0 {
				x2, yi2 = yi2, x2
			}
			vs[sp] = tval{v: Value{I: intBin(ir.BinOp(d>>16), x2, yi2)}, t: x.t || y.t || y2.t}
			sp++
			pc++

		case bcBinFF:
			var y tval
			switch in.ym {
			case bcMConst:
				y.v = in.val
			case bcMVar:
				if s.spec == nil {
					if fr.regGen[in.yid] == fr.gen {
						y.v = fr.regs[in.yid]
					}
				} else {
					y.v, y.t = s.readVar(fr, aux[pc].yv)
				}
			default:
				sp--
				y = vs[sp]
			}
			var x tval
			switch in.xm {
			case bcMConst:
				x.v = in.val
			case bcMVar:
				if s.spec == nil {
					if fr.regGen[in.xid] == fr.gen {
						x.v = fr.regs[in.xid]
					}
				} else {
					x.v, x.t = s.readVar(fr, aux[pc].xv)
				}
			default:
				sp--
				x = vs[sp]
			}
			ops++
			cycles += in.cost
			vs[sp] = tval{v: floatBin(ir.BinOp(in.bin), x.v.F, y.v.F), t: x.t || y.t}
			sp++
			pc++

		case bcLoadA1:
			var ix tval
			switch in.xm {
			case bcMConst:
				ix.v = in.val
			case bcMVar:
				if s.spec == nil {
					if fr.regGen[in.xid] == fr.gen {
						ix.v = fr.regs[in.xid]
					}
				} else {
					ix.v, ix.t = s.readVar(fr, aux[pc].xv)
				}
			default:
				sp--
				ix = vs[sp]
			}
			i := int(ix.v.I)
			if i < 0 || i >= int(in.c) {
				s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
				return execOutcome{}, fmt.Errorf("machine: %s: index %d out of range [0,%d) for %s (stmt s%d)",
					fr.fn.Name, i, aux[pc].g.Dims[0], aux[pc].g.Name, aux[pc].st.ID)
			}
			addr := int(in.d) + i
			ops++
			lat := s.hier.load(addr)
			cycles += lat
			if lat > l1Lat {
				memCycles += lat
			}
			if s.spec == nil {
				vs[sp] = tval{v: s.mem[addr], t: ix.t}
			} else {
				v, t2 := s.readMem(addr)
				vs[sp] = tval{v, ix.t || t2}
			}
			sp++
			pc++

		case bcBin:
			sp--
			y := vs[sp]
			x := &vs[sp-1]
			ops++
			cycles += in.cost
			v, err := evalBinMachine(fr, aux[pc].st, aux[pc].o, x.v, y.v)
			if err != nil {
				s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
				return execOutcome{}, err
			}
			x.v = v
			x.t = x.t || y.t
			pc++

		case bcUn:
			x := &vs[sp-1]
			ops++
			cycles += in.cost
			switch in.bin { // pre-resolved by splitInstr
			case 1:
				x.v = Value{F: -x.v.F}
			case 2:
				x.v = Value{I: -x.v.I}
			case 3:
				if x.v.F != 0 {
					x.v = Value{I: 0}
				} else {
					x.v = Value{I: 1}
				}
			case 4:
				if x.v.I != 0 {
					x.v = Value{I: 0}
				} else {
					x.v = Value{I: 1}
				}
			case 5:
				x.v = Value{I: ^x.v.I}
			default:
				s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
				return execOutcome{}, fmt.Errorf("machine: bad unary op")
			}
			pc++

		case bcCast:
			x := &vs[sp-1]
			ops++
			cycles += in.cost
			switch in.bin { // pre-resolved by splitInstr
			case 1:
				x.v = Value{F: float64(x.v.I)}
			case 2:
				x.v = Value{I: int64(x.v.F)}
			}
			pc++

		case bcCall:
			n := int(in.a)
			sp -= n
			ab := len(s.argBuf)
			tnt := false
			for i := 0; i < n; i++ {
				s.argBuf = append(s.argBuf, vs[sp+i].v)
				tnt = tnt || vs[sp+i].t
			}
			ops++
			s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
			s.vstack = vs[:sp]
			v, retTaint, err := s.callTainted(aux[pc].o.Func, s.argBuf[ab:], fr.depth+1, tnt)
			s.argBuf = s.argBuf[:ab]
			cycles, ops, steps, memCycles = s.cycles, s.ops, s.steps, s.memCycles
			vs = s.vstack[:cap(s.vstack)]
			if err != nil {
				return execOutcome{}, err
			}
			vs[sp] = tval{v, tnt || retTaint}
			sp++
			pc++

		case bcBuiltin:
			n := int(in.a)
			args := vs[sp-n : sp]
			tnt := false
			for i := range args {
				tnt = tnt || args[i].t
			}
			ops++
			var v Value
			switch in.b {
			case bFabs:
				cycles += in.cost
				v = Value{F: math.Abs(args[0].v.F)}
			case bFsqrt:
				cycles += in.cost
				if args[0].v.F < 0 {
					s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
					return execOutcome{}, fmt.Errorf("machine: fsqrt of negative value")
				}
				v = Value{F: math.Sqrt(args[0].v.F)}
			case bFmin:
				cycles += in.cost
				v = Value{F: math.Min(args[0].v.F, args[1].v.F)}
			case bFmax:
				cycles += in.cost
				v = Value{F: math.Max(args[0].v.F, args[1].v.F)}
			case bIabs:
				cycles += in.cost
				v = args[0].v
				if v.I < 0 {
					v = Value{I: -v.I}
				}
			case bImin:
				cycles += in.cost
				if args[0].v.I < args[1].v.I {
					v = args[0].v
				} else {
					v = args[1].v
				}
			case bImax:
				cycles += in.cost
				if args[0].v.I > args[1].v.I {
					v = args[0].v
				} else {
					v = args[1].v
				}
			default:
				s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
				return execOutcome{}, fmt.Errorf("machine: unknown builtin %s", aux[pc].o.Callee)
			}
			sp -= n
			vs[sp] = tval{v, tnt}
			sp++
			pc++

		case bcPrintBegin:
			ops++
			cycles += in.cost
			vs[sp] = tval{} // the print taint accumulator
			sp++
			pc++

		case bcPrintSpace:
			fmt.Fprint(s.out, " ")
			pc++

		case bcPrintStr:
			fmt.Fprint(s.out, aux[pc].str)
			pc++

		case bcPrintVal:
			sp--
			x := vs[sp]
			acc := &vs[sp-1]
			acc.t = acc.t || x.t
			if in.b != 0 {
				fmt.Fprintf(s.out, "%.6g", x.v.F)
			} else {
				fmt.Fprintf(s.out, "%d", x.v.I)
			}
			pc++

		case bcPrintEnd:
			fmt.Fprintln(s.out)
			// The accumulator stays: it is the print call's {Value{}, taint}.
			pc++

		case bcAssign:
			sp--
			x := vs[sp]
			cycles += in.cost
			ops++
			if s.spec == nil {
				fr.regs[in.a] = x.v
				fr.regGen[in.a] = fr.gen
				fr.baseVals[in.b] = x.v
				fr.baseGen[in.b] = fr.gen
			} else {
				s.defineVar(fr, aux[pc].v,x.v, x.t)
				sc := s.spec
				sc.ops += ops - o0
				if x.t {
					sc.reexecCycles += cycles - c0
					sc.reexecOps += ops - o0
				}
			}
			pc++

		case bcStoreG:
			sp--
			x := vs[sp]
			cycles += in.cost
			ops++
			addr := int(in.c)
			if s.spec == nil && !s.undoActive {
				s.mem[addr] = x.v
				s.hier.store(addr)
			} else {
				s.writeMem(addr, x.v, x.t)
				if sc := s.spec; sc != nil {
					sc.ops += ops - o0
					if x.t {
						sc.reexecCycles += cycles - c0
						sc.reexecOps += ops - o0
					}
				}
			}
			pc++

		case bcStoreA:
			sp -= 2
			acc := vs[sp]
			x := vs[sp+1]
			tnt := acc.t || x.t
			cycles += in.cost
			ops++
			addr := int(in.c) + int(acc.v.I)
			if s.spec == nil && !s.undoActive {
				s.mem[addr] = x.v
				s.hier.store(addr)
			} else {
				s.writeMem(addr, x.v, tnt)
				if sc := s.spec; sc != nil {
					sc.ops += ops - o0
					if tnt {
						sc.reexecCycles += cycles - c0
						sc.reexecOps += ops - o0
					}
				}
			}
			pc++

		case bcCallStmt:
			sp--
			x := vs[sp]
			if sc := s.spec; sc != nil {
				sc.ops += ops - o0
				if x.t {
					sc.reexecCycles += cycles - c0
					sc.reexecOps += ops - o0
				}
			}
			pc++

		// Statement-fused opcodes: one dispatch covering the walker's whole
		// per-statement sequence (step bookkeeping, operand fetch, the op,
		// the finisher, speculative charging) in the identical charge order.
		// Operands here are only ever constants or variables (bcMConst /
		// bcMVar), which charge nothing, so the fused statement's c0/o0
		// baseline is simply the instruction's entry counts.
		case bcAsgMove:
			steps++
			if steps > maxSteps {
				s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
				return execOutcome{}, ErrStepLimit
			}
			if ctx != nil && steps%ctxPollSteps == 0 {
				if err := ctx.Err(); err != nil {
					s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
					return execOutcome{}, err
				}
			}
			cs, os := cycles, ops
			var x tval
			if in.xm == bcMConst {
				x.v = in.val
			} else if s.spec == nil {
				if fr.regGen[in.xid] == fr.gen {
					x.v = fr.regs[in.xid]
				}
			} else {
				x.v, x.t = s.readVar(fr, aux[pc].xv)
			}
			cycles += in.cost
			ops++
			if s.spec == nil {
				fr.regs[in.a] = x.v
				fr.regGen[in.a] = fr.gen
				fr.baseVals[in.b] = x.v
				fr.baseGen[in.b] = fr.gen
			} else {
				s.defineVar(fr, aux[pc].v,x.v, x.t)
				sc := s.spec
				sc.ops += ops - os
				if x.t {
					sc.reexecCycles += cycles - cs
					sc.reexecOps += ops - os
				}
			}
			pc++

		case bcAsgBinII:
			steps++
			if steps > maxSteps {
				s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
				return execOutcome{}, ErrStepLimit
			}
			if ctx != nil && steps%ctxPollSteps == 0 {
				if err := ctx.Err(); err != nil {
					s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
					return execOutcome{}, err
				}
			}
			cs, os := cycles, ops
			var x, y tval
			if in.xm == bcMConst {
				x.v = in.val
			} else if s.spec == nil {
				if fr.regGen[in.xid] == fr.gen {
					x.v = fr.regs[in.xid]
				}
			} else {
				x.v, x.t = s.readVar(fr, aux[pc].xv)
			}
			if in.ym == bcMConst {
				y.v = in.val
			} else if s.spec == nil {
				if fr.regGen[in.yid] == fr.gen {
					y.v = fr.regs[in.yid]
				}
			} else {
				y.v, y.t = s.readVar(fr, aux[pc].yv)
			}
			ops++
			cycles += in.cost
			rv := Value{I: intBin(ir.BinOp(in.bin), x.v.I, y.v.I)}
			tnt := x.t || y.t
			cycles += isC
			ops++
			if s.spec == nil {
				fr.regs[in.a] = rv
				fr.regGen[in.a] = fr.gen
				fr.baseVals[in.b] = rv
				fr.baseGen[in.b] = fr.gen
			} else {
				s.defineVar(fr, aux[pc].v,rv, tnt)
				sc := s.spec
				sc.ops += ops - os
				if tnt {
					sc.reexecCycles += cycles - cs
					sc.reexecOps += ops - os
				}
			}
			pc++

		case bcAsgBinFF:
			steps++
			if steps > maxSteps {
				s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
				return execOutcome{}, ErrStepLimit
			}
			if ctx != nil && steps%ctxPollSteps == 0 {
				if err := ctx.Err(); err != nil {
					s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
					return execOutcome{}, err
				}
			}
			cs, os := cycles, ops
			var x, y tval
			if in.xm == bcMConst {
				x.v = in.val
			} else if s.spec == nil {
				if fr.regGen[in.xid] == fr.gen {
					x.v = fr.regs[in.xid]
				}
			} else {
				x.v, x.t = s.readVar(fr, aux[pc].xv)
			}
			if in.ym == bcMConst {
				y.v = in.val
			} else if s.spec == nil {
				if fr.regGen[in.yid] == fr.gen {
					y.v = fr.regs[in.yid]
				}
			} else {
				y.v, y.t = s.readVar(fr, aux[pc].yv)
			}
			ops++
			cycles += in.cost
			rv := floatBin(ir.BinOp(in.bin), x.v.F, y.v.F)
			tnt := x.t || y.t
			cycles += isC
			ops++
			if s.spec == nil {
				fr.regs[in.a] = rv
				fr.regGen[in.a] = fr.gen
				fr.baseVals[in.b] = rv
				fr.baseGen[in.b] = fr.gen
			} else {
				s.defineVar(fr, aux[pc].v,rv, tnt)
				sc := s.spec
				sc.ops += ops - os
				if tnt {
					sc.reexecCycles += cycles - cs
					sc.reexecOps += ops - os
				}
			}
			pc++

		case bcAsgLoadG:
			steps++
			if steps > maxSteps {
				s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
				return execOutcome{}, ErrStepLimit
			}
			if ctx != nil && steps%ctxPollSteps == 0 {
				if err := ctx.Err(); err != nil {
					s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
					return execOutcome{}, err
				}
			}
			cs, os := cycles, ops
			addr := int(in.c)
			ops++
			lat := s.hier.load(addr)
			cycles += lat
			if lat > l1Lat {
				memCycles += lat
			}
			var x tval
			if s.spec == nil {
				x.v = s.mem[addr]
			} else {
				x.v, x.t = s.readMem(addr)
			}
			cycles += isC
			ops++
			if s.spec == nil {
				fr.regs[in.a] = x.v
				fr.regGen[in.a] = fr.gen
				fr.baseVals[in.b] = x.v
				fr.baseGen[in.b] = fr.gen
			} else {
				s.defineVar(fr, aux[pc].v,x.v, x.t)
				sc := s.spec
				sc.ops += ops - os
				if x.t {
					sc.reexecCycles += cycles - cs
					sc.reexecOps += ops - os
				}
			}
			pc++

		case bcAsgLoadA1:
			steps++
			if steps > maxSteps {
				s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
				return execOutcome{}, ErrStepLimit
			}
			if ctx != nil && steps%ctxPollSteps == 0 {
				if err := ctx.Err(); err != nil {
					s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
					return execOutcome{}, err
				}
			}
			cs, os := cycles, ops
			var ix tval
			if in.xm == bcMConst {
				ix.v = in.val
			} else if s.spec == nil {
				if fr.regGen[in.xid] == fr.gen {
					ix.v = fr.regs[in.xid]
				}
			} else {
				ix.v, ix.t = s.readVar(fr, aux[pc].xv)
			}
			i := int(ix.v.I)
			if i < 0 || i >= int(in.c) {
				s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
				return execOutcome{}, fmt.Errorf("machine: %s: index %d out of range [0,%d) for %s (stmt s%d)",
					fr.fn.Name, i, aux[pc].g.Dims[0], aux[pc].g.Name, aux[pc].st.ID)
			}
			addr := int(in.d) + i
			ops++
			lat := s.hier.load(addr)
			cycles += lat
			if lat > l1Lat {
				memCycles += lat
			}
			var x tval
			if s.spec == nil {
				x = tval{v: s.mem[addr], t: ix.t}
			} else {
				v, t2 := s.readMem(addr)
				x = tval{v, ix.t || t2}
			}
			cycles += isC
			ops++
			if s.spec == nil {
				fr.regs[in.a] = x.v
				fr.regGen[in.a] = fr.gen
				fr.baseVals[in.b] = x.v
				fr.baseGen[in.b] = fr.gen
			} else {
				s.defineVar(fr, aux[pc].v,x.v, x.t)
				sc := s.spec
				sc.ops += ops - os
				if x.t {
					sc.reexecCycles += cycles - cs
					sc.reexecOps += ops - os
				}
			}
			pc++

		case bcStoreGF:
			steps++
			if steps > maxSteps {
				s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
				return execOutcome{}, ErrStepLimit
			}
			if ctx != nil && steps%ctxPollSteps == 0 {
				if err := ctx.Err(); err != nil {
					s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
					return execOutcome{}, err
				}
			}
			cs, os := cycles, ops
			var x tval
			if in.xm == bcMConst {
				x.v = in.val
			} else if s.spec == nil {
				if fr.regGen[in.xid] == fr.gen {
					x.v = fr.regs[in.xid]
				}
			} else {
				x.v, x.t = s.readVar(fr, aux[pc].xv)
			}
			cycles += in.cost
			ops++
			addr := int(in.c)
			if s.spec == nil && !s.undoActive {
				s.mem[addr] = x.v
				s.hier.store(addr)
			} else {
				s.writeMem(addr, x.v, x.t)
				if sc := s.spec; sc != nil {
					sc.ops += ops - os
					if x.t {
						sc.reexecCycles += cycles - cs
						sc.reexecOps += ops - os
					}
				}
			}
			pc++

		case bcStoreA1F:
			steps++
			if steps > maxSteps {
				s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
				return execOutcome{}, ErrStepLimit
			}
			if ctx != nil && steps%ctxPollSteps == 0 {
				if err := ctx.Err(); err != nil {
					s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
					return execOutcome{}, err
				}
			}
			cs, os := cycles, ops
			var ix tval
			if in.xm == bcMConst {
				ix.v = in.val
			} else if s.spec == nil {
				if fr.regGen[in.xid] == fr.gen {
					ix.v = fr.regs[in.xid]
				}
			} else {
				ix.v, ix.t = s.readVar(fr, aux[pc].xv)
			}
			i := int(ix.v.I)
			if i < 0 || i >= int(in.c) {
				s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
				return execOutcome{}, fmt.Errorf("machine: %s: index %d out of range [0,%d) for %s (stmt s%d)",
					fr.fn.Name, i, aux[pc].g.Dims[0], aux[pc].g.Name, aux[pc].st.ID)
			}
			var x tval
			if in.ym == bcMConst {
				x.v = in.val
			} else if s.spec == nil {
				if fr.regGen[in.yid] == fr.gen {
					x.v = fr.regs[in.yid]
				}
			} else {
				x.v, x.t = s.readVar(fr, aux[pc].yv)
			}
			tnt := ix.t || x.t
			cycles += in.cost
			ops++
			addr := int(in.d) + i
			if s.spec == nil && !s.undoActive {
				s.mem[addr] = x.v
				s.hier.store(addr)
			} else {
				s.writeMem(addr, x.v, tnt)
				if sc := s.spec; sc != nil {
					sc.ops += ops - os
					if tnt {
						sc.reexecCycles += cycles - cs
						sc.reexecOps += ops - os
					}
				}
			}
			pc++

		case bcIfBinII:
			steps++
			if steps > maxSteps {
				s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
				return execOutcome{}, ErrStepLimit
			}
			if ctx != nil && steps%ctxPollSteps == 0 {
				if err := ctx.Err(); err != nil {
					s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
					return execOutcome{}, err
				}
			}
			cs, os := cycles, ops
			var x, y tval
			if in.xm == bcMConst {
				x.v = in.val
			} else if s.spec == nil {
				if fr.regGen[in.xid] == fr.gen {
					x.v = fr.regs[in.xid]
				}
			} else {
				x.v, x.t = s.readVar(fr, aux[pc].xv)
			}
			if in.ym == bcMConst {
				y.v = in.val
			} else if s.spec == nil {
				if fr.regGen[in.yid] == fr.gen {
					y.v = fr.regs[in.yid]
				}
			} else {
				y.v, y.t = s.readVar(fr, aux[pc].yv)
			}
			ops++
			cycles += in.cost
			r := intBin(ir.BinOp(in.bin), x.v.I, y.v.I)
			tnt := x.t || y.t
			cycles += isC
			ops++
			taken := r != 0
			bp := s.bpM
			if s.spec != nil {
				bp = s.bpS
			}
			if !bp.predict(int(in.d), taken) {
				cycles += mp
			}
			tgt := in.b
			if taken {
				tgt = in.a
			}
			if sc := s.spec; sc != nil {
				sc.ops += ops - os
				if tnt {
					sc.reexecCycles += cycles - cs
					sc.reexecOps += ops - os
				}
			}
			prevBlk = in.blk
			if stop != nil {
				te := &code[tgt]
				var stopped bool
				if si := s.stopIn; si != nil {
					stopped = te.blk == s.stopHdr || !si[te.b]
				} else {
					stopped = stop(te.blk)
				}
				if stopped {
					s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
					return execOutcome{stopped: te.blk, prev: prevBlk}, nil
				}
				if skipEnter && te.a < 0 {
					tgt++
				}
			} else if skipEnter {
				if te := &code[tgt]; te.a < 0 {
					tgt++
				}
			}
			pc = tgt

		case bcIfVal:
			steps++
			if steps > maxSteps {
				s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
				return execOutcome{}, ErrStepLimit
			}
			if ctx != nil && steps%ctxPollSteps == 0 {
				if err := ctx.Err(); err != nil {
					s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
					return execOutcome{}, err
				}
			}
			cs, os := cycles, ops
			var x tval
			if in.xm == bcMConst {
				x.v = in.val
			} else if s.spec == nil {
				if fr.regGen[in.xid] == fr.gen {
					x.v = fr.regs[in.xid]
				}
			} else {
				x.v, x.t = s.readVar(fr, aux[pc].xv)
			}
			cycles += in.cost
			ops++
			var taken bool
			if in.bin != 0 {
				taken = x.v.F != 0
			} else {
				taken = x.v.I != 0
			}
			bp := s.bpM
			if s.spec != nil {
				bp = s.bpS
			}
			if !bp.predict(int(in.d), taken) {
				cycles += mp
			}
			tgt := in.b
			if taken {
				tgt = in.a
			}
			if sc := s.spec; sc != nil {
				sc.ops += ops - os
				if x.t {
					sc.reexecCycles += cycles - cs
					sc.reexecOps += ops - os
				}
			}
			prevBlk = in.blk
			if stop != nil {
				te := &code[tgt]
				var stopped bool
				if si := s.stopIn; si != nil {
					stopped = te.blk == s.stopHdr || !si[te.b]
				} else {
					stopped = stop(te.blk)
				}
				if stopped {
					s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
					return execOutcome{stopped: te.blk, prev: prevBlk}, nil
				}
				if skipEnter && te.a < 0 {
					tgt++
				}
			} else if skipEnter {
				if te := &code[tgt]; te.a < 0 {
					tgt++
				}
			}
			pc = tgt

		// Finisher-merged opcodes: last RHS op + statement finisher in one
		// dispatch. A bcStep ran earlier in the statement, so speculative
		// charging uses the outer c0/o0 baseline, and operands may come
		// from the stack (charged by their own instructions).
		case bcBinAsgII:
			var y tval
			switch in.ym {
			case bcMConst:
				y.v = in.val
			case bcMVar:
				if s.spec == nil {
					if fr.regGen[in.yid] == fr.gen {
						y.v = fr.regs[in.yid]
					}
				} else {
					y.v, y.t = s.readVar(fr, aux[pc].yv)
				}
			default:
				sp--
				y = vs[sp]
			}
			var x tval
			switch in.xm {
			case bcMConst:
				x.v = in.val
			case bcMVar:
				if s.spec == nil {
					if fr.regGen[in.xid] == fr.gen {
						x.v = fr.regs[in.xid]
					}
				} else {
					x.v, x.t = s.readVar(fr, aux[pc].xv)
				}
			default:
				sp--
				x = vs[sp]
			}
			ops++
			cycles += in.cost
			rv := Value{I: intBin(ir.BinOp(in.bin), x.v.I, y.v.I)}
			tnt := x.t || y.t
			cycles += isC
			ops++
			if s.spec == nil {
				fr.regs[in.a] = rv
				fr.regGen[in.a] = fr.gen
				fr.baseVals[in.b] = rv
				fr.baseGen[in.b] = fr.gen
			} else {
				s.defineVar(fr, aux[pc].v,rv, tnt)
				sc := s.spec
				sc.ops += ops - o0
				if tnt {
					sc.reexecCycles += cycles - c0
					sc.reexecOps += ops - o0
				}
			}
			pc++

		case bcBinAsgFF:
			var y tval
			switch in.ym {
			case bcMConst:
				y.v = in.val
			case bcMVar:
				if s.spec == nil {
					if fr.regGen[in.yid] == fr.gen {
						y.v = fr.regs[in.yid]
					}
				} else {
					y.v, y.t = s.readVar(fr, aux[pc].yv)
				}
			default:
				sp--
				y = vs[sp]
			}
			var x tval
			switch in.xm {
			case bcMConst:
				x.v = in.val
			case bcMVar:
				if s.spec == nil {
					if fr.regGen[in.xid] == fr.gen {
						x.v = fr.regs[in.xid]
					}
				} else {
					x.v, x.t = s.readVar(fr, aux[pc].xv)
				}
			default:
				sp--
				x = vs[sp]
			}
			ops++
			cycles += in.cost
			rv := floatBin(ir.BinOp(in.bin), x.v.F, y.v.F)
			tnt := x.t || y.t
			cycles += isC
			ops++
			if s.spec == nil {
				fr.regs[in.a] = rv
				fr.regGen[in.a] = fr.gen
				fr.baseVals[in.b] = rv
				fr.baseGen[in.b] = fr.gen
			} else {
				s.defineVar(fr, aux[pc].v,rv, tnt)
				sc := s.spec
				sc.ops += ops - o0
				if tnt {
					sc.reexecCycles += cycles - c0
					sc.reexecOps += ops - o0
				}
			}
			pc++

		case bcLoadAsgA1:
			var ix tval
			switch in.xm {
			case bcMConst:
				ix.v = in.val
			case bcMVar:
				if s.spec == nil {
					if fr.regGen[in.xid] == fr.gen {
						ix.v = fr.regs[in.xid]
					}
				} else {
					ix.v, ix.t = s.readVar(fr, aux[pc].xv)
				}
			default:
				sp--
				ix = vs[sp]
			}
			i := int(ix.v.I)
			if i < 0 || i >= int(in.c) {
				s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
				return execOutcome{}, fmt.Errorf("machine: %s: index %d out of range [0,%d) for %s (stmt s%d)",
					fr.fn.Name, i, aux[pc].g.Dims[0], aux[pc].g.Name, aux[pc].st.ID)
			}
			addr := int(in.d) + i
			ops++
			lat := s.hier.load(addr)
			cycles += lat
			if lat > l1Lat {
				memCycles += lat
			}
			var x tval
			if s.spec == nil {
				x = tval{v: s.mem[addr], t: ix.t}
			} else {
				v, t2 := s.readMem(addr)
				x = tval{v, ix.t || t2}
			}
			cycles += isC
			ops++
			if s.spec == nil {
				fr.regs[in.a] = x.v
				fr.regGen[in.a] = fr.gen
				fr.baseVals[in.b] = x.v
				fr.baseGen[in.b] = fr.gen
			} else {
				s.defineVar(fr, aux[pc].v,x.v, x.t)
				sc := s.spec
				sc.ops += ops - o0
				if x.t {
					sc.reexecCycles += cycles - c0
					sc.reexecOps += ops - o0
				}
			}
			pc++

		case bcStoreA1NS:
			sp--
			ix := vs[sp]
			i := int(ix.v.I)
			if i < 0 || i >= int(in.c) {
				s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
				return execOutcome{}, fmt.Errorf("machine: %s: index %d out of range [0,%d) for %s (stmt s%d)",
					fr.fn.Name, i, aux[pc].g.Dims[0], aux[pc].g.Name, aux[pc].st.ID)
			}
			var x tval
			if in.ym == bcMConst {
				x.v = in.val
			} else if s.spec == nil {
				if fr.regGen[in.yid] == fr.gen {
					x.v = fr.regs[in.yid]
				}
			} else {
				x.v, x.t = s.readVar(fr, aux[pc].yv)
			}
			tnt := ix.t || x.t
			cycles += in.cost
			ops++
			addr := int(in.d) + i
			if s.spec == nil && !s.undoActive {
				s.mem[addr] = x.v
				s.hier.store(addr)
			} else {
				s.writeMem(addr, x.v, tnt)
				if sc := s.spec; sc != nil {
					sc.ops += ops - o0
					if tnt {
						sc.reexecCycles += cycles - c0
						sc.reexecOps += ops - o0
					}
				}
			}
			pc++

		case bcRet:
			var v Value
			var tnt bool
			if in.a != 0 {
				sp--
				v, tnt = vs[sp].v, vs[sp].t
			}
			cycles += in.cost
			ops++
			if sc := s.spec; sc != nil {
				sc.ops += ops - o0
				if tnt {
					sc.reexecCycles += cycles - c0
					sc.reexecOps += ops - o0
				}
			}
			s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
			return execOutcome{ret: true, retVal: v, retTaint: tnt}, nil

		case bcFork:
			ops++
			if s.forkIter != nil {
				s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
				s.onFork(fr)
				cycles, ops, steps, memCycles = s.cycles, s.ops, s.steps, s.memCycles
			}
			if sc := s.spec; sc != nil {
				sc.ops += ops - o0
			}
			pc++

		case bcKill:
			ops++
			if s.spec == nil {
				cycles += in.cost
			} else {
				s.spec.ops += ops - o0
			}
			pc++

		case bcBad:
			s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
			return execOutcome{}, fmt.Errorf("%s", aux[pc].str)

		default:
			s.cycles, s.ops, s.steps, s.memCycles = cycles, ops, steps, memCycles
			return execOutcome{}, fmt.Errorf("machine: invalid bytecode op %d", in.op)
		}
	}
}

func b2iInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// intBin evaluates a non-trapping integer binary operator, mirroring the
// walker's evalBin int arm exactly (including the shift-count masking).
func intBin(op ir.BinOp, xi, yi int64) int64 {
	switch op {
	case ir.BinAdd:
		return xi + yi
	case ir.BinSub:
		return xi - yi
	case ir.BinMul:
		return xi * yi
	case ir.BinAnd:
		return xi & yi
	case ir.BinOr:
		return xi | yi
	case ir.BinXor:
		return xi ^ yi
	case ir.BinShl:
		return xi << uint(yi&63)
	case ir.BinShr:
		return xi >> uint(yi&63)
	case ir.BinDiv:
		// Reached only with a constant nonzero, non-minus-one divisor
		// (fastIntBin): neither trap is possible.
		return xi / yi
	case ir.BinRem:
		return xi % yi
	case ir.BinEq:
		return b2iInt(xi == yi)
	case ir.BinNeq:
		return b2iInt(xi != yi)
	case ir.BinLt:
		return b2iInt(xi < yi)
	case ir.BinLeq:
		return b2iInt(xi <= yi)
	case ir.BinGt:
		return b2iInt(xi > yi)
	case ir.BinGeq:
		return b2iInt(xi >= yi)
	case ir.BinLAnd:
		return b2iInt(xi != 0 && yi != 0)
	case ir.BinLOr:
		return b2iInt(xi != 0 || yi != 0)
	}
	return 0
}

// floatBin evaluates a non-trapping float binary operator; comparisons
// produce int-typed Values, arithmetic float-typed ones, exactly like
// the walker (the unused union half stays zero).
func floatBin(op ir.BinOp, xf, yf float64) Value {
	switch op {
	case ir.BinAdd:
		return Value{F: xf + yf}
	case ir.BinSub:
		return Value{F: xf - yf}
	case ir.BinMul:
		return Value{F: xf * yf}
	case ir.BinEq:
		return Value{I: b2iInt(xf == yf)}
	case ir.BinNeq:
		return Value{I: b2iInt(xf != yf)}
	case ir.BinLt:
		return Value{I: b2iInt(xf < yf)}
	case ir.BinLeq:
		return Value{I: b2iInt(xf <= yf)}
	case ir.BinGt:
		return Value{I: b2iInt(xf > yf)}
	case ir.BinGeq:
		return Value{I: b2iInt(xf >= yf)}
	}
	return Value{}
}
