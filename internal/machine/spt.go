package machine

import (
	"fmt"

	"sptc/internal/ir"
)

// iterRun describes one executed loop iteration.
type iterRun struct {
	cycles    float64 // work cycles for the iteration (excl. fork overhead)
	preCycles float64 // cycles from iteration start to the fork point
	memCycles float64 // shared-memory cycles in the iteration
	preMem    float64 // shared-memory cycles before the fork point
	ops       int64
	forked    bool
	snapshot  map[*ir.Var]Value
	undo      map[int]Value
	next      *ir.Block // header (another iteration) or an exit block
	prev      *ir.Block // predecessor block on arrival at next
}

// runIteration executes one iteration of the loop starting at header
// (entered from prev), stopping when control returns to the header or
// leaves the loop. When mainLeg is set, the fork instruction snapshots
// the context and opens the undo log.
func (s *sim) runIteration(fr *frame, header, from, prev *ir.Block, inLoop map[*ir.Block]bool, mainLeg bool) (*iterRun, error) {
	it := &iterRun{}
	c0, o0, m0 := s.cycles, s.ops, s.memCycles

	if mainLeg {
		s.forkHook = func(f *frame, st *ir.Stmt) {
			if it.forked || f != fr {
				return // only the loop's own fork, once
			}
			it.forked = true
			it.preCycles = s.cycles - c0
			it.preMem = s.memCycles - m0
			s.cycles += s.cfg.ForkOverhead
			it.snapshot = make(map[*ir.Var]Value, len(fr.baseVals))
			for v, val := range fr.baseVals {
				it.snapshot[v] = val
			}
			it.undo = make(map[int]Value)
			s.undo = &it.undo
		}
	}

	stop := func(b *ir.Block) bool {
		return b == header || !inLoop[b]
	}

	out, err := s.exec(fr, from, prev, stop)
	if mainLeg {
		s.forkHook = nil
		s.undo = nil
	}
	if err != nil {
		return nil, err
	}
	if out.ret {
		// A return from inside the loop leaves the function entirely; the
		// SPT runner treats it as an exit with the value propagated.
		return nil, errReturnThroughLoop{out.retVal}
	}
	it.cycles = s.cycles - c0
	it.memCycles = s.memCycles - m0
	if it.forked {
		it.cycles -= s.cfg.ForkOverhead
	}
	it.ops = s.ops - o0
	it.next = out.stopped
	it.prev = out.prev
	return it, nil
}

// errReturnThroughLoop unwinds a function return that happened inside an
// SPT loop body back to the SPT runner.
type errReturnThroughLoop struct{ val Value }

func (errReturnThroughLoop) Error() string { return "return through SPT loop" }

// runSPTLoop executes one dynamic instance of an SPT loop in the paper's
// pairwise execution model. It returns the exit block and the
// predecessor with which normal execution resumes.
func (s *sim) runSPTLoop(fr *frame, header, prev *ir.Block, loopID int) (*ir.Block, *ir.Block, error) {
	st := s.loops[loopID]
	if st == nil {
		st = &LoopStats{ID: loopID}
		s.loops[loopID] = st
	}
	st.Invocations++
	inLoop := s.loopBlocks[header]
	if inLoop == nil {
		return nil, nil, fmt.Errorf("machine: no block set for SPT loop %d", loopID)
	}

	s.sptActive = true
	defer func() { s.sptActive = false }()

	elapsed0 := s.cycles
	cur, curPrev := header, prev
	for {
		// Main leg: iteration j.
		j, err := s.runIteration(fr, header, cur, curPrev, inLoop, true)
		if err != nil {
			return nil, nil, err
		}
		st.Iterations++
		st.SeqCycles += j.cycles

		if j.next != header {
			// Loop exited during the main leg. A pending fork (exit after
			// the fork point) spawned a speculative thread that the
			// SPT_KILL on the exit edge already discarded.
			if j.forked {
				st.Forks++
				st.Kills++
			}
			st.Elapsed += s.cycles - elapsed0
			return j.next, j.prev, nil
		}
		if !j.forked {
			// No fork executed (should not happen for a transformed loop
			// that stays inside); continue sequentially.
			cur, curPrev = j.next, j.prev
			continue
		}
		st.Forks++

		// Speculative leg: iteration j+1, executed functionally while
		// checking what the speculative thread would have observed.
		s.spec = &specCtx{
			loopFrame: fr,
			snapshot:  j.snapshot,
			defined:   make(map[*ir.Var]bool),
			undo:      j.undo,
			written:   make(map[int]bool),
			taintMem:  make(map[int]bool),
		}
		sp, err := s.runIteration(fr, header, header, j.prev, inLoop, false)
		spec := s.spec
		s.spec = nil
		if err != nil {
			return nil, nil, err
		}
		st.Iterations++
		st.SpecIters++
		st.SeqCycles += sp.cycles
		st.SpecOps += spec.ops
		st.SpecCycles += sp.cycles
		st.ReexecOps += spec.reexecOps
		st.ReexecCycles += spec.reexecCycles
		if spec.reexecOps > 0 {
			st.MisspecIters++
		}

		// Pair timing: the speculative thread starts ForkOverhead after
		// the main leg's pre-fork region; the main thread commits at the
		// later of both completions, then re-executes misspeculated work.
		// The cores share the L2/L3/memory path, so below-L1 cycles of
		// the two concurrent legs serialize rather than overlap.
		mainWork := j.cycles + s.cfg.ForkOverhead // as accumulated serially
		specWork := sp.cycles
		tFork := j.preCycles + s.cfg.ForkOverhead
		contention := j.memCycles - j.preMem // post-fork shared-memory time
		if sp.memCycles < contention {
			contention = sp.memCycles
		}
		contention *= s.cfg.MemContention
		pairTime := tFork + j.cycles - j.preCycles // main finishes j
		specEnd := tFork + specWork
		if specEnd > pairTime {
			pairTime = specEnd
		}
		pairTime += contention
		pairTime += s.cfg.CommitOverhead + spec.reexecCycles
		serial := mainWork + specWork
		s.cycles += pairTime - serial // adjust for overlap (negative when speculation wins)

		if sp.next != header {
			st.Elapsed += s.cycles - elapsed0
			return sp.next, sp.prev, nil
		}
		cur, curPrev = sp.next, sp.prev
	}
}
