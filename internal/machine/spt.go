package machine

import (
	"fmt"

	"sptc/internal/ir"
)

// iterRun describes one executed loop iteration. The fork's context
// snapshot and undo log live in the sim's pooled buffers (one fork is
// live at a time), not here.
type iterRun struct {
	cycles    float64 // work cycles for the iteration (excl. fork overhead)
	preCycles float64 // cycles from iteration start to the fork point
	memCycles float64 // shared-memory cycles in the iteration
	preMem    float64 // shared-memory cycles before the fork point
	ops       int64
	forked    bool
	next      *ir.Block // header (another iteration) or an exit block
	prev      *ir.Block // predecessor block on arrival at next
}

// ensureSpecMem lazily allocates the address-indexed speculative buffers
// (undo log, write-set, write taint) at the first fork. A pooled engine
// may carry buffers from a smaller program; grow them to cover the
// current memory image (stamps restart at zero, reading as absent).
func (s *sim) ensureSpecMem() {
	if len(s.undoVal) < len(s.mem) {
		n := len(s.mem)
		s.undoVal = make([]Value, n)
		s.undoGen = make([]uint32, n)
		s.writtenGen = make([]uint32, n)
		s.taintMemGen = make([]uint32, n)
		s.undoStamp, s.specStamp = 0, 0
	}
}

// bumpStamp advances a generation stamp, clearing the stamped buffers on
// the (practically unreachable) uint32 wrap so stale stamps can never
// read as current.
func bumpStamp(stamp *uint32, bufs ...[]uint32) {
	*stamp++
	if *stamp == 0 {
		for _, b := range bufs {
			clear(b)
		}
		*stamp = 1
	}
}

// snapshotFrame copies the loop frame's base-variable file (values and
// generation stamps) into the pooled fork-time snapshot.
func (s *sim) snapshotFrame(fr *frame) {
	n := len(fr.baseVals)
	if cap(s.snapVals) < n {
		s.snapVals = make([]Value, n)
		s.snapGen = make([]uint32, n)
	}
	s.snapVals = s.snapVals[:n]
	s.snapGen = s.snapGen[:n]
	copy(s.snapVals, fr.baseVals)
	copy(s.snapGen, fr.baseGen)
}

// beginSpecLeg prepares the pooled per-leg buffers: the defined-set for
// the loop frame's variables and a fresh write-set generation.
func (s *sim) beginSpecLeg(fr *frame) {
	n := len(fr.regs)
	if cap(s.defGen) < n {
		s.defGen = make([]uint32, n)
	}
	s.defGen = s.defGen[:n]
	bumpStamp(&s.defStamp, s.defGen)
	bumpStamp(&s.specStamp, s.writtenGen, s.taintMemGen)
}

// runIteration executes one iteration of the loop starting at header
// (entered from prev), stopping when stop fires (control back at the
// header or out of the loop). When mainLeg is set, the fork instruction
// snapshots the context and opens the undo log. The result is written
// into the caller-provided it, so the per-iteration bookkeeping does not
// allocate.
func (s *sim) runIteration(it *iterRun, fr *frame, from, prev *ir.Block, stop func(*ir.Block) bool, mainLeg bool) error {
	*it = iterRun{}
	c0, o0, m0 := s.cycles, s.ops, s.memCycles

	if mainLeg {
		s.forkIter, s.forkFrame = it, fr
		s.forkC0, s.forkM0 = c0, m0
	}

	out, err := s.execFrom(fr, from, prev, stop)
	if mainLeg {
		s.forkIter, s.forkFrame = nil, nil
		s.undoActive = false
	}
	if err != nil {
		return err
	}
	if out.ret {
		// A return from inside the loop leaves the function entirely; the
		// SPT runner treats it as an exit with the value propagated.
		return errReturnThroughLoop{out.retVal, out.retTaint}
	}
	it.cycles = s.cycles - c0
	it.memCycles = s.memCycles - m0
	if it.forked {
		it.cycles -= s.cfg.ForkOverhead
	}
	it.ops = s.ops - o0
	it.next = out.stopped
	it.prev = out.prev
	return nil
}

// onFork handles the loop's own fork instruction during a main leg: it
// marks the fork point, snapshots the register context and opens a fresh
// undo-log generation.
func (s *sim) onFork(fr *frame) {
	it := s.forkIter
	if it.forked || fr != s.forkFrame {
		return // only the loop's own fork, once
	}
	it.forked = true
	it.preCycles = s.cycles - s.forkC0
	it.preMem = s.memCycles - s.forkM0
	s.cycles += s.cfg.ForkOverhead
	s.ensureSpecMem()
	s.snapshotFrame(fr)
	bumpStamp(&s.undoStamp, s.undoGen)
	s.undoActive = true
}

// errReturnThroughLoop unwinds a function return that happened inside an
// SPT loop body back to the SPT runner.
type errReturnThroughLoop struct {
	val   Value
	taint bool
}

func (errReturnThroughLoop) Error() string { return "return through SPT loop" }

// runSPTLoop executes one dynamic instance of an SPT loop in the paper's
// pairwise execution model. It returns the exit block and the
// predecessor with which normal execution resumes.
func (s *sim) runSPTLoop(fr *frame, header, prev *ir.Block, loopID int) (*ir.Block, *ir.Block, error) {
	st := s.loops[loopID]
	if st == nil {
		st = &LoopStats{ID: loopID}
		s.loops[loopID] = st
	}
	st.Invocations++
	inLoop := s.loopBlocks[header]
	if inLoop == nil {
		return nil, nil, fmt.Errorf("machine: no block set for SPT loop %d", loopID)
	}

	s.sptActive = true
	defer func() { s.sptActive = false }()

	stop := func(b *ir.Block) bool {
		return b == header || !inLoop[b]
	}

	// Give the bytecode engine a dense view of the stop predicate
	// (closure-and-map-free); built once per run per header.
	if s.low != nil {
		if lfn := s.low.fns[fr.fn]; lfn != nil {
			dense := s.inLoopDense[header]
			if dense == nil {
				dense = make([]bool, len(lfn.blocks))
				for i, b := range lfn.blocks {
					dense[i] = inLoop[b]
				}
				if s.inLoopDense == nil {
					s.inLoopDense = make(map[*ir.Block][]bool)
				}
				s.inLoopDense[header] = dense
			}
			s.stopHdr, s.stopIn = header, dense
			defer func() { s.stopHdr, s.stopIn = nil, nil }()
		}
	}

	elapsed0 := s.cycles
	cur, curPrev := header, prev
	var j, sp iterRun
	for {
		// Main leg: iteration j.
		if err := s.runIteration(&j, fr, cur, curPrev, stop, true); err != nil {
			return nil, nil, err
		}
		st.Iterations++
		st.SeqCycles += j.cycles

		if j.next != header {
			// Loop exited during the main leg. A pending fork (exit after
			// the fork point) spawned a speculative thread that the
			// SPT_KILL on the exit edge already discarded.
			if j.forked {
				st.Forks++
				st.Kills++
			}
			st.Elapsed += s.cycles - elapsed0
			return j.next, j.prev, nil
		}
		if !j.forked {
			// No fork executed (should not happen for a transformed loop
			// that stays inside); continue sequentially.
			cur, curPrev = j.next, j.prev
			continue
		}
		st.Forks++

		// Speculative leg: iteration j+1, executed functionally while
		// checking what the speculative thread would have observed. The
		// fork-time snapshot and undo log from leg j are still current in
		// the pooled buffers.
		s.beginSpecLeg(fr)
		s.specBuf = specCtx{loopFrame: fr}
		s.spec = &s.specBuf
		err := s.runIteration(&sp, fr, header, j.prev, stop, false)
		spec := s.spec
		s.spec = nil
		if err != nil {
			return nil, nil, err
		}
		st.Iterations++
		st.SpecIters++
		st.SeqCycles += sp.cycles
		st.SpecOps += spec.ops
		st.SpecCycles += sp.cycles
		st.ReexecOps += spec.reexecOps
		st.ReexecCycles += spec.reexecCycles
		if spec.reexecOps > 0 {
			st.MisspecIters++
		}

		// Pair timing: the speculative thread starts ForkOverhead after
		// the main leg's pre-fork region; the main thread commits at the
		// later of both completions, then re-executes misspeculated work.
		// The cores share the L2/L3/memory path, so below-L1 cycles of
		// the two concurrent legs serialize rather than overlap.
		mainWork := j.cycles + s.cfg.ForkOverhead // as accumulated serially
		specWork := sp.cycles
		tFork := j.preCycles + s.cfg.ForkOverhead
		contention := j.memCycles - j.preMem // post-fork shared-memory time
		if sp.memCycles < contention {
			contention = sp.memCycles
		}
		contention *= s.cfg.MemContention
		pairTime := tFork + j.cycles - j.preCycles // main finishes j
		specEnd := tFork + specWork
		if specEnd > pairTime {
			pairTime = specEnd
		}
		pairTime += contention
		pairTime += s.cfg.CommitOverhead + spec.reexecCycles
		serial := mainWork + specWork
		s.cycles += pairTime - serial // adjust for overlap (negative when speculation wins)

		if sp.next != header {
			st.Elapsed += s.cycles - elapsed0
			return sp.next, sp.prev, nil
		}
		cur, curPrev = sp.next, sp.prev
	}
}
