package machine

import (
	"errors"
	"strings"
	"testing"
)

// TestValidateDefault pins the paper-faithful configuration as valid.
func TestValidateDefault(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

// TestValidateRejects pins the typed rejection of each geometry error:
// the field name lands in ConfigError.Field so CLIs and the service can
// report exactly which knob is wrong.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		field  string
	}{
		{"zero-line", func(c *Config) { c.LineWords = 0 }, "LineWords"},
		{"npot-line", func(c *Config) { c.LineWords = 3 }, "LineWords"},
		{"negative-line", func(c *Config) { c.LineWords = -8 }, "LineWords"},
		{"zero-assoc", func(c *Config) { c.L1Assoc = 0 }, "L1Assoc"},
		{"negative-assoc", func(c *Config) { c.L2Assoc = -1 }, "L2Assoc"},
		{"zero-words", func(c *Config) { c.L3Words = 0 }, "L3Words"},
		{"sub-set-level", func(c *Config) { c.L1Words = c.LineWords*c.L1Assoc - 1 }, "L1Words"},
		{"zero-predictor", func(c *Config) { c.PredictorEntries = 0 }, "PredictorEntries"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("error %T is not a *ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Errorf("Field = %q, want %q", ce.Field, tc.field)
			}
			if !strings.Contains(err.Error(), tc.field) {
				t.Errorf("message %q does not name the field", err)
			}
		})
	}
}
