package machine_test

import (
	"reflect"
	"strings"
	"testing"

	"sptc"
	"sptc/internal/benchprog"
	"sptc/internal/machine"
)

// fidelityLevels are the compilation levels the differential oracle
// sweeps: the non-SPT reference plus the two speculation-heavy levels,
// so forks, speculative legs, violation re-execution, and value
// prediction are all exercised under both engines.
var fidelityLevels = []sptc.Level{sptc.LevelBase, sptc.LevelBest, sptc.LevelAnticipated}

// runEngine executes one compiled program under the given engine and
// returns the result plus the program output.
func runEngine(t *testing.T, res *sptc.Result, kind machine.EngineKind) (*machine.Result, string) {
	t.Helper()
	opt := sptc.SimulationOptions(res)
	var out strings.Builder
	opt.Out = &out
	opt.Engine = kind
	sim, err := machine.Run(res.Prog, machine.DefaultConfig(), opt)
	if err != nil {
		t.Fatalf("engine %v: %v", kind, err)
	}
	return sim, out.String()
}

// requireIdentical asserts two results are bit-identical: same output
// bytes, same cycle count (exact float equality — the engines must
// accumulate in the same order), and the same value for every counter
// and per-loop statistic.
func requireIdentical(t *testing.T, label string, tree, bc *machine.Result, treeOut, bcOut string) {
	t.Helper()
	if treeOut != bcOut {
		t.Errorf("%s: output differs: tree %q, bytecode %q", label, treeOut, bcOut)
	}
	if tree.Cycles != bc.Cycles {
		t.Errorf("%s: cycles differ: tree %v, bytecode %v", label, tree.Cycles, bc.Cycles)
	}
	if tree.Ops != bc.Ops {
		t.Errorf("%s: sim_instructions differ: tree %d, bytecode %d", label, tree.Ops, bc.Ops)
	}
	if tree.BranchLookups != bc.BranchLookups || tree.BranchMisses != bc.BranchMisses {
		t.Errorf("%s: branch counters differ: tree %d/%d, bytecode %d/%d",
			label, tree.BranchLookups, tree.BranchMisses, bc.BranchLookups, bc.BranchMisses)
	}
	if tree.MemAccesses != bc.MemAccesses {
		t.Errorf("%s: mem_accesses differ: tree %d, bytecode %d", label, tree.MemAccesses, bc.MemAccesses)
	}
	if !reflect.DeepEqual(tree.CyclesByLoop, bc.CyclesByLoop) {
		t.Errorf("%s: attributed cycles differ: tree %v, bytecode %v", label, tree.CyclesByLoop, bc.CyclesByLoop)
	}
	if len(tree.Loops) != len(bc.Loops) {
		t.Errorf("%s: loop-stat sets differ: tree %d loops, bytecode %d", label, len(tree.Loops), len(bc.Loops))
		return
	}
	for id, tl := range tree.Loops {
		bl := bc.Loops[id]
		if bl == nil {
			t.Errorf("%s: loop %d present only under tree engine", label, id)
			continue
		}
		if *tl != *bl {
			t.Errorf("%s: loop %d stats differ:\n tree    %+v\n bytecode %+v", label, id, *tl, *bl)
		}
	}
}

// TestEngineFidelity is the differential oracle for the bytecode engine:
// every benchmark in the suite, at every compilation level, must produce
// bit-identical results (output, cycles, instruction counts, branch and
// memory counters, per-loop speculation statistics) under the flat
// bytecode engine and the reference tree-walking interpreter.
func TestEngineFidelity(t *testing.T) {
	suite := benchprog.Suite()
	if testing.Short() {
		suite = suite[:3]
	}
	for _, b := range suite {
		for _, level := range fidelityLevels {
			b, level := b, level
			t.Run(b.Name+"/"+level.String(), func(t *testing.T) {
				t.Parallel()
				res, err := sptc.Compile(b.Name+".spl", b.Source, level)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				tree, treeOut := runEngine(t, res, machine.EngineTree)
				bc, bcOut := runEngine(t, res, machine.EngineBytecode)
				requireIdentical(t, b.Name+"/"+level.String(), tree, bc, treeOut, bcOut)
			})
		}
	}
}

// TestEngineFidelitySmallPrograms covers the hand-written kernels used
// elsewhere in this package (an SPT-friendly float loop and a serial
// recurrence) so failures localize to a small IR.
func TestEngineFidelitySmallPrograms(t *testing.T) {
	for _, tc := range []struct {
		name, src string
	}{{"specFriendly", specFriendly}, {"serialLoop", serialLoop}} {
		for _, level := range fidelityLevels {
			res, err := sptc.Compile(tc.name+".spl", tc.src, level)
			if err != nil {
				t.Fatalf("compile %s: %v", tc.name, err)
			}
			tree, treeOut := runEngine(t, res, machine.EngineTree)
			bc, bcOut := runEngine(t, res, machine.EngineBytecode)
			requireIdentical(t, tc.name+"/"+level.String(), tree, bc, treeOut, bcOut)
		}
	}
}

// TestPooledEngineFidelity checks that an Engine reused across jobs (the
// RunBatch worker pattern) matches fresh runs bit-for-bit: pooled
// memory, cache and predictor tables, frame pools, and speculative
// buffers must reset to run-fresh semantics.
func TestPooledEngineFidelity(t *testing.T) {
	progs := []benchprog.Benchmark{
		*benchprog.ByName("bzip2"),
		*benchprog.ByName("vpr"),
		{Name: "specFriendly", Source: specFriendly},
	}
	for _, kind := range []machine.EngineKind{machine.EngineTree, machine.EngineBytecode} {
		e := machine.NewEngine()
		for round := 0; round < 2; round++ {
			for _, b := range progs {
				res, err := sptc.Compile(b.Name+".spl", b.Source, sptc.LevelBest)
				if err != nil {
					t.Fatalf("compile %s: %v", b.Name, err)
				}
				fresh, freshOut := runEngine(t, res, kind)
				opt := sptc.SimulationOptions(res)
				var out strings.Builder
				opt.Out = &out
				opt.Engine = kind
				pooled, err := e.Run(res.Prog, machine.DefaultConfig(), opt)
				if err != nil {
					t.Fatalf("pooled run %s: %v", b.Name, err)
				}
				label := b.Name + "/" + kind.String() + "/round" + string(rune('0'+round))
				requireIdentical(t, label, fresh, pooled, freshOut, out.String())
			}
		}
	}
}
