package machine

import (
	"testing"
	"testing/quick"
)

func TestCacheLevelHitsAndMisses(t *testing.T) {
	// 8 lines of 8 words, 2-way: 4 sets.
	c := newCacheLevel(64, 2, 8, 1)
	if c.sets != 4 {
		t.Fatalf("sets = %d", c.sets)
	}
	if c.access(0) {
		t.Error("first access should miss")
	}
	if !c.access(0) || !c.access(7) {
		t.Error("same line should hit")
	}
	if c.access(8) {
		t.Error("next line should miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCacheLevel(64, 2, 8, 1)
	// Three lines mapping to the same set (set count 4, line 8 words):
	// addresses 0, 4*8=32... set = line % 4: lines 0, 4, 8 -> set 0.
	a, b, d := 0, 4*8, 8*8
	c.access(a)
	c.access(b)
	c.access(a) // a most recent
	c.access(d) // evicts b (LRU)
	if !c.access(a) {
		t.Error("a should still be resident")
	}
	if c.access(b) {
		t.Error("b should have been evicted")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	cfg := DefaultConfig()
	h := newHierarchy(cfg)
	// Cold: full memory latency.
	if lat := h.load(0); lat != cfg.MemLat {
		t.Errorf("cold load latency %v, want %v", lat, cfg.MemLat)
	}
	// Hot: L1 latency.
	if lat := h.load(1); lat != cfg.L1Lat {
		t.Errorf("hot load latency %v, want %v", lat, cfg.L1Lat)
	}
	// Evict from L1 by streaming past its capacity; then the line should
	// still be in L2.
	for a := 0; a < cfg.L1Words*2; a += cfg.LineWords {
		h.load(a + 1024*1024)
	}
	lat := h.load(0)
	if lat != cfg.L2Lat && lat != cfg.L3Lat {
		t.Errorf("post-eviction latency %v, want L2 (%v) or L3 (%v)", lat, cfg.L2Lat, cfg.L3Lat)
	}
}

func TestPredictorLearnsBias(t *testing.T) {
	bp := newPredictor(64)
	// Always-taken branch: after warmup, every prediction is correct.
	for i := 0; i < 4; i++ {
		bp.predict(7, true)
	}
	correct := 0
	for i := 0; i < 100; i++ {
		if bp.predict(7, true) {
			correct++
		}
	}
	if correct != 100 {
		t.Errorf("biased branch: %d/100 correct", correct)
	}
	// Alternating branch on a 2-bit counter: poor accuracy.
	miss := 0
	for i := 0; i < 100; i++ {
		if !bp.predict(13, i%2 == 0) {
			miss++
		}
	}
	if miss < 40 {
		t.Errorf("alternating branch should mispredict often, missed %d/100", miss)
	}
}

// TestQuickCacheNeverPanics: arbitrary access sequences are safe and
// deterministic.
func TestQuickCacheDeterministic(t *testing.T) {
	f := func(seed uint32, n uint8) bool {
		run := func() (int64, int64) {
			c := newCacheLevel(256, 4, 8, 1)
			x := seed
			for i := 0; i < int(n); i++ {
				x = x*1664525 + 1013904223
				c.access(int(x % 4096))
			}
			return c.hits, c.misses
		}
		h1, m1 := run()
		h2, m2 := run()
		return h1 == h2 && m1 == m2 && h1+m1 == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConfigContention(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.MemContention < 0 || cfg.MemContention > 1 {
		t.Errorf("contention factor %v out of [0,1]", cfg.MemContention)
	}
}
