package machine

import (
	"testing"
	"testing/quick"
)

func TestCacheLevelHitsAndMisses(t *testing.T) {
	// 8 lines of 8 words, 2-way: 4 sets.
	c := newCacheLevel(64, 2, 8, 1)
	if c.sets != 4 {
		t.Fatalf("sets = %d", c.sets)
	}
	if c.access(0) {
		t.Error("first access should miss")
	}
	if !c.access(0) || !c.access(7) {
		t.Error("same line should hit")
	}
	if c.access(8) {
		t.Error("next line should miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCacheLevel(64, 2, 8, 1)
	// Three lines mapping to the same set (set count 4, line 8 words):
	// addresses 0, 4*8=32... set = line % 4: lines 0, 4, 8 -> set 0.
	a, b, d := 0, 4*8, 8*8
	c.access(a)
	c.access(b)
	c.access(a) // a most recent
	c.access(d) // evicts b (LRU)
	if !c.access(a) {
		t.Error("a should still be resident")
	}
	if c.access(b) {
		t.Error("b should have been evicted")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	cfg := DefaultConfig()
	h := newHierarchy(cfg)
	// Cold: full memory latency.
	if lat := h.load(0); lat != cfg.MemLat {
		t.Errorf("cold load latency %v, want %v", lat, cfg.MemLat)
	}
	// Hot: L1 latency.
	if lat := h.load(1); lat != cfg.L1Lat {
		t.Errorf("hot load latency %v, want %v", lat, cfg.L1Lat)
	}
	// Evict from L1 by streaming past its capacity; then the line should
	// still be in L2.
	for a := 0; a < cfg.L1Words*2; a += cfg.LineWords {
		h.load(a + 1024*1024)
	}
	lat := h.load(0)
	if lat != cfg.L2Lat && lat != cfg.L3Lat {
		t.Errorf("post-eviction latency %v, want L2 (%v) or L3 (%v)", lat, cfg.L2Lat, cfg.L3Lat)
	}
}

func TestPredictorLearnsBias(t *testing.T) {
	bp := newPredictor(64)
	// Always-taken branch: after warmup, every prediction is correct.
	for i := 0; i < 4; i++ {
		bp.predict(7, true)
	}
	correct := 0
	for i := 0; i < 100; i++ {
		if bp.predict(7, true) {
			correct++
		}
	}
	if correct != 100 {
		t.Errorf("biased branch: %d/100 correct", correct)
	}
	// Alternating branch on a 2-bit counter: poor accuracy.
	miss := 0
	for i := 0; i < 100; i++ {
		if !bp.predict(13, i%2 == 0) {
			miss++
		}
	}
	if miss < 40 {
		t.Errorf("alternating branch should mispredict often, missed %d/100", miss)
	}
}

// TestQuickCacheNeverPanics: arbitrary access sequences are safe and
// deterministic.
func TestQuickCacheDeterministic(t *testing.T) {
	f := func(seed uint32, n uint8) bool {
		run := func() (int64, int64) {
			c := newCacheLevel(256, 4, 8, 1)
			x := seed
			for i := 0; i < int(n); i++ {
				x = x*1664525 + 1013904223
				c.access(int(x % 4096))
			}
			return c.hits, c.misses
		}
		h1, m1 := run()
		h2, m2 := run()
		return h1 == h2 && m1 == m2 && h1+m1 == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConfigContention(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.MemContention < 0 || cfg.MemContention > 1 {
		t.Errorf("contention factor %v out of [0,1]", cfg.MemContention)
	}
}

// refLevel is an executable-specification LRU cache: a plain map from
// set to way list, replacing the lowest-indexed way holding the
// smallest stamp. The differential tests below pin cacheLevel's packed
// fast paths (including the specialized 4-way sweep) against it.
type refLevel struct {
	sets, assoc int
	lineBits    uint
	stamp       uint32
	ways        map[int][]refWay
	hits, miss  int64
}

type refWay struct {
	line  int64
	stamp uint32
	valid bool
}

func newRefLevel(words, assoc, lineWords int) *refLevel {
	lineBits := uint(0)
	for 1<<lineBits < lineWords {
		lineBits++
	}
	sets := words / lineWords / assoc
	if sets < 1 {
		sets = 1
	}
	return &refLevel{sets: sets, assoc: assoc, lineBits: lineBits, ways: make(map[int][]refWay)}
}

func (r *refLevel) access(addr int) bool {
	line := int64(addr) >> r.lineBits
	set := int(line % int64(r.sets))
	r.stamp++
	ws := r.ways[set]
	if ws == nil {
		ws = make([]refWay, r.assoc)
		r.ways[set] = ws
	}
	for w := range ws {
		if ws[w].valid && ws[w].line == line {
			ws[w].stamp = r.stamp
			r.hits++
			return true
		}
	}
	victim := 0
	for w := 1; w < len(ws); w++ {
		// Invalid ways keep stamp 0, so they lose ties to nothing and the
		// lowest-indexed cold way fills first — same as the packed layout.
		if ws[w].stamp < ws[victim].stamp {
			victim = w
		}
	}
	ws[victim] = refWay{line: line, stamp: r.stamp, valid: true}
	r.miss++
	return false
}

// TestCacheLevelMatchesReference runs random access streams through
// cacheLevel and the executable specification at several geometries:
// the specialized 4-way path, the generic path (1/2/8-way), and a
// non-power-of-two set count (3 sets, exercising the modulo fallback).
func TestCacheLevelMatchesReference(t *testing.T) {
	geoms := []struct {
		name             string
		words, assoc, lw int
	}{
		{"4way-specialized", 256, 4, 8},
		{"direct-mapped", 128, 1, 8},
		{"2way", 128, 2, 8},
		{"8way-generic", 512, 8, 8},
		{"3sets-modulo", 3 * 2 * 8, 2, 8}, // 6 lines, 2-way: 3 sets, setMask -1
		{"single-set-clamp", 8, 4, 8},     // fewer words than one set: sets clamps to 1
	}
	for _, g := range geoms {
		t.Run(g.name, func(t *testing.T) {
			c := newCacheLevel(g.words, g.assoc, g.lw, 1)
			r := newRefLevel(g.words, g.assoc, g.lw)
			if g.name == "3sets-modulo" && c.setMask != -1 {
				t.Fatalf("setMask = %d, want -1 for %d sets", c.setMask, c.sets)
			}
			x := uint32(12345)
			for i := 0; i < 20000; i++ {
				x = x*1664525 + 1013904223
				addr := int(x % 8192)
				if got, want := c.access(addr), r.access(addr); got != want {
					t.Fatalf("access %d (addr %d): hit=%v, reference says %v", i, addr, got, want)
				}
			}
			if c.hits != r.hits || c.misses != r.miss {
				t.Errorf("counters (%d hits, %d misses) diverge from reference (%d, %d)",
					c.hits, c.misses, r.hits, r.miss)
			}
			if c.hits == 0 || c.misses == 0 {
				t.Errorf("degenerate stream: %d hits, %d misses", c.hits, c.misses)
			}
		})
	}
}

// TestCacheLRUVictimTieBreak pins the fill order of a cold set: invalid
// ways all carry stamp 0, so misses fill ways in index order, and the
// 4-way specialized sweep agrees with the generic scan.
func TestCacheLRUVictimTieBreak(t *testing.T) {
	for _, assoc := range []int{4, 8} {
		c := newCacheLevel(assoc*8, assoc, 8, 1) // one set
		for w := 0; w < assoc; w++ {
			hit, idx := c.accessLine(int64(w * c.sets)) // all map to set 0
			if hit {
				t.Fatalf("assoc %d: cold access %d hit", assoc, w)
			}
			if idx != int32(w) {
				t.Fatalf("assoc %d: cold fill %d landed in way %d, want index order", assoc, w, idx)
			}
		}
		// The set is full with stamps 1..assoc; the next miss evicts way 0.
		if hit, idx := c.accessLine(int64(assoc)); hit || idx != 0 {
			t.Fatalf("assoc %d: full-set miss hit=%v way=%d, want miss into way 0", assoc, hit, idx)
		}
	}
}

// TestScoreboardTransparent is the memory-model pin for the windowed
// residency scoreboard: a hierarchy whose scoreboard is wiped before
// every access (forcing the full walk each time) must report exactly
// the same latencies, hit/miss counters, LRU state and memory-access
// count as one using the fast path. The stream mixes sequential sweeps
// (the scoreboard's best case) with strided and random accesses and
// interleaved stores, including lines that alias in the 64-slot board.
func TestScoreboardTransparent(t *testing.T) {
	cfg := DefaultConfig()
	fast := newHierarchy(cfg)
	slow := newHierarchy(cfg)
	x := uint32(99)
	for i := 0; i < 60000; i++ {
		var addr int
		switch i % 4 {
		case 0: // sequential sweep
			addr = (i / 4) % 4096
		case 1: // stride that revisits scoreboard-aliasing lines
			addr = (i * cfg.LineWords * sbSize) % (1 << 20)
		case 2: // random
			x = x*1664525 + 1013904223
			addr = int(x % (1 << 18))
		case 3: // hot scalars
			addr = int(x % 64)
		}
		slow.clearScoreboard()
		if i%7 == 3 {
			fast.store(addr)
			slow.store(addr)
		} else {
			lf, ls := fast.load(addr), slow.load(addr)
			if lf != ls {
				t.Fatalf("access %d (addr %d): latency %v with scoreboard, %v without", i, addr, lf, ls)
			}
		}
	}
	for _, lv := range []struct {
		name       string
		fast, slow *cacheLevel
	}{{"L1", fast.l1, slow.l1}, {"L2", fast.l2, slow.l2}, {"L3", fast.l3, slow.l3}} {
		if lv.fast.hits != lv.slow.hits || lv.fast.misses != lv.slow.misses {
			t.Errorf("%s: (%d hits, %d misses) with scoreboard, (%d, %d) without",
				lv.name, lv.fast.hits, lv.fast.misses, lv.slow.hits, lv.slow.misses)
		}
		if lv.fast.stamp != lv.slow.stamp {
			t.Errorf("%s: stamp %d with scoreboard, %d without", lv.name, lv.fast.stamp, lv.slow.stamp)
		}
		for i := range lv.fast.meta {
			if lv.fast.meta[i] != lv.slow.meta[i] {
				t.Fatalf("%s: LRU state diverges at way %d", lv.name, i)
			}
		}
	}
	if fast.memAccess != slow.memAccess {
		t.Errorf("memAccess %d with scoreboard, %d without", fast.memAccess, slow.memAccess)
	}
}

// TestPredictorSaturation pins the 2-bit counter's hysteresis: a
// saturated always-taken branch survives a single not-taken blip
// without flipping its prediction.
func TestPredictorSaturation(t *testing.T) {
	bp := newPredictor(64)
	site := 7
	// Saturate at strongly-taken; extra taken outcomes must not overflow.
	for i := 0; i < 50; i++ {
		bp.predict(site, true)
	}
	if bp.predict(site, false) {
		// The saturated counter predicts taken, so a not-taken outcome is
		// a mispredict (and steps the counter 3 -> 2).
		t.Fatal("saturated counter should still predict taken on a not-taken blip")
	}
	if !bp.predict(site, true) {
		t.Error("one not-taken blip flipped a saturated counter")
	}
	// Symmetric floor: strongly-not-taken survives one taken blip.
	for i := 0; i < 50; i++ {
		bp.predict(site, false)
	}
	bp.predict(site, true)
	if !bp.predict(site, false) {
		t.Error("one taken blip flipped a strongly-not-taken counter")
	}
}

// TestPredictorAliasing demonstrates destructive interference: with a
// small table, two sites hashing to the same entry share one counter,
// so training one site mistrains the other.
func TestPredictorAliasing(t *testing.T) {
	bp := newPredictor(2) // mask 1: plenty of colliding sites
	idx := func(site int) int { return (site * 2654435761) & bp.mask }
	a := 1
	b := -1
	for s := 2; s < 1000; s++ {
		if s != a && idx(s) == idx(a) {
			b = s
			break
		}
	}
	if b < 0 {
		t.Fatal("no aliasing site found")
	}
	for i := 0; i < 4; i++ {
		bp.predict(a, true) // train a's (shared) counter to strongly-taken
	}
	if !bp.predict(b, true) {
		t.Errorf("site %d should inherit site %d's trained counter", b, a)
	}
	misses := bp.misses
	bp.predict(b, false) // b's not-taken outcome now mistrains a
	bp.predict(b, false)
	bp.predict(b, false)
	if bp.misses == misses {
		t.Error("retraining the shared counter should mispredict at least once")
	}
	if bp.predict(a, true) {
		t.Errorf("site %d's counter should have been mistrained by site %d", a, b)
	}
}
