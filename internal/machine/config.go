// Package machine simulates the SPT architecture of §8: a tightly-coupled
// dual-core machine with one main core and one speculative core. Each
// core is an in-order Itanium2-like core with its own branch predictor;
// the cores share the memory/cache hierarchy. The minimum overheads to
// fork and commit a speculative thread are 6 and 5 cycles; branch
// misprediction costs 5 cycles — the paper's configuration.
//
// The simulator executes programs functionally (producing the same output
// as the interpreter) while accounting cycles. SPT loops execute in the
// paper's pairwise model: the main thread runs iteration i, forks a
// speculative thread that runs iteration i+1 concurrently from the fork
// point, then commits the speculative results, re-executing whatever was
// misspeculated. Violations are detected by value: a speculative read is
// violated when the value at fork time differs from the value the main
// thread eventually produced.
package machine

import "fmt"

// Config holds the machine parameters.
type Config struct {
	// SPT overheads (cycles), §8.
	ForkOverhead   float64
	CommitOverhead float64
	KillOverhead   float64

	// Branch misprediction penalty (cycles), §8.
	MispredictPenalty float64
	// PredictorEntries sizes the per-core 2-bit predictor table.
	PredictorEntries int

	// Issue cost per simple instruction (cycles). 0.5 approximates a
	// sustained 2-wide in-order pipeline on dependent integer code.
	IssueCost float64

	// Operation latencies (cycles, charged per dynamic instruction).
	IntMulCost   float64
	IntDivCost   float64
	FloatCost    float64 // fp add/sub/mul/compare
	FloatDivCost float64
	SqrtCost     float64
	CallOverhead float64
	PrintCost    float64

	// Cache hierarchy (Itanium2-like sizes and latencies). Sizes are in
	// words (8 bytes); lines in words.
	LineWords int
	L1Words   int
	L1Assoc   int
	L1Lat     float64
	L2Words   int
	L2Assoc   int
	L2Lat     float64
	L3Words   int
	L3Assoc   int
	L3Lat     float64
	MemLat    float64

	// MemContention is the fraction of overlapping below-L1 memory time
	// of the two cores that serializes on the shared cache/memory path.
	MemContention float64

	// MaxSteps bounds execution (statements).
	MaxSteps int64
}

// ConfigError reports an invalid machine configuration field. It is
// returned (wrapped) by Run and RunBatch, so callers — including the
// CLIs and the service — can distinguish a bad config from a program
// error with errors.As.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("machine: invalid config: %s %s", e.Field, e.Reason)
}

// Validate checks the cache geometry and predictor sizing. Invalid
// shapes are rejected here with a typed error instead of being
// silently rounded inside newCacheLevel: a non-power-of-two line size
// would change which address bits select the line, and a level too
// small for one full set would quietly clamp to a single set — both
// would give plausible-looking but meaningless hit rates. Run calls
// this on every simulation.
func (c *Config) Validate() error {
	if c.LineWords <= 0 || c.LineWords&(c.LineWords-1) != 0 {
		return &ConfigError{"LineWords", fmt.Sprintf("must be a positive power of two (got %d)", c.LineWords)}
	}
	levels := [...]struct {
		name  string
		words int
		assoc int
	}{
		{"L1", c.L1Words, c.L1Assoc},
		{"L2", c.L2Words, c.L2Assoc},
		{"L3", c.L3Words, c.L3Assoc},
	}
	for _, l := range levels {
		if l.assoc <= 0 {
			return &ConfigError{l.name + "Assoc", fmt.Sprintf("must be positive (got %d)", l.assoc)}
		}
		if l.words <= 0 {
			return &ConfigError{l.name + "Words", fmt.Sprintf("must be positive (got %d)", l.words)}
		}
		if min := c.LineWords * l.assoc; l.words < min {
			return &ConfigError{l.name + "Words", fmt.Sprintf(
				"must hold at least one full set: %d-way x %d-word lines needs %d words (got %d)",
				l.assoc, c.LineWords, min, l.words)}
		}
	}
	if c.PredictorEntries <= 0 {
		return &ConfigError{"PredictorEntries", fmt.Sprintf("must be positive (got %d)", c.PredictorEntries)}
	}
	return nil
}

// DefaultConfig returns the paper-faithful machine configuration.
func DefaultConfig() Config {
	return Config{
		ForkOverhead:      6,
		CommitOverhead:    5,
		KillOverhead:      1,
		MispredictPenalty: 5,
		PredictorEntries:  4096,

		IssueCost:    0.5,
		IntMulCost:   1.5,
		IntDivCost:   10,
		FloatCost:    1.5,
		FloatDivCost: 15,
		SqrtCost:     18,
		CallOverhead: 2,
		PrintCost:    10,

		LineWords: 8,        // 64-byte lines
		L1Words:   2 * 1024, // 16 KiB
		L1Assoc:   4,
		L1Lat:     1,
		L2Words:   32 * 1024, // 256 KiB
		L2Assoc:   8,
		L2Lat:     7,
		L3Words:   384 * 1024, // 3 MiB
		L3Assoc:   12,
		L3Lat:     14,
		MemLat:    200,

		MemContention: 0.6,

		MaxSteps: 4_000_000_000,
	}
}
