// Package machine simulates the SPT architecture of §8: a tightly-coupled
// dual-core machine with one main core and one speculative core. Each
// core is an in-order Itanium2-like core with its own branch predictor;
// the cores share the memory/cache hierarchy. The minimum overheads to
// fork and commit a speculative thread are 6 and 5 cycles; branch
// misprediction costs 5 cycles — the paper's configuration.
//
// The simulator executes programs functionally (producing the same output
// as the interpreter) while accounting cycles. SPT loops execute in the
// paper's pairwise model: the main thread runs iteration i, forks a
// speculative thread that runs iteration i+1 concurrently from the fork
// point, then commits the speculative results, re-executing whatever was
// misspeculated. Violations are detected by value: a speculative read is
// violated when the value at fork time differs from the value the main
// thread eventually produced.
package machine

// Config holds the machine parameters.
type Config struct {
	// SPT overheads (cycles), §8.
	ForkOverhead   float64
	CommitOverhead float64
	KillOverhead   float64

	// Branch misprediction penalty (cycles), §8.
	MispredictPenalty float64
	// PredictorEntries sizes the per-core 2-bit predictor table.
	PredictorEntries int

	// Issue cost per simple instruction (cycles). 0.5 approximates a
	// sustained 2-wide in-order pipeline on dependent integer code.
	IssueCost float64

	// Operation latencies (cycles, charged per dynamic instruction).
	IntMulCost   float64
	IntDivCost   float64
	FloatCost    float64 // fp add/sub/mul/compare
	FloatDivCost float64
	SqrtCost     float64
	CallOverhead float64
	PrintCost    float64

	// Cache hierarchy (Itanium2-like sizes and latencies). Sizes are in
	// words (8 bytes); lines in words.
	LineWords int
	L1Words   int
	L1Assoc   int
	L1Lat     float64
	L2Words   int
	L2Assoc   int
	L2Lat     float64
	L3Words   int
	L3Assoc   int
	L3Lat     float64
	MemLat    float64

	// MemContention is the fraction of overlapping below-L1 memory time
	// of the two cores that serializes on the shared cache/memory path.
	MemContention float64

	// MaxSteps bounds execution (statements).
	MaxSteps int64
}

// DefaultConfig returns the paper-faithful machine configuration.
func DefaultConfig() Config {
	return Config{
		ForkOverhead:      6,
		CommitOverhead:    5,
		KillOverhead:      1,
		MispredictPenalty: 5,
		PredictorEntries:  4096,

		IssueCost:    0.5,
		IntMulCost:   1.5,
		IntDivCost:   10,
		FloatCost:    1.5,
		FloatDivCost: 15,
		SqrtCost:     18,
		CallOverhead: 2,
		PrintCost:    10,

		LineWords: 8,        // 64-byte lines
		L1Words:   2 * 1024, // 16 KiB
		L1Assoc:   4,
		L1Lat:     1,
		L2Words:   32 * 1024, // 256 KiB
		L2Assoc:   8,
		L2Lat:     7,
		L3Words:   384 * 1024, // 3 MiB
		L3Assoc:   12,
		L3Lat:     14,
		MemLat:    200,

		MemContention: 0.6,

		MaxSteps: 4_000_000_000,
	}
}
