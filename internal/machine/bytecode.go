package machine

import (
	"fmt"
	"sync"

	"sptc/internal/ir"
)

// This file implements the compile-once bytecode engine: each ir.Func is
// lowered into a dense flat instruction array (branch-threaded jumps by
// instruction index, per-op cycle costs pre-resolved from the Config,
// phi moves flattened into per-block parallel-copy sequences) and cached
// per (program, config), so repeated simulations of the same compiled
// program skip both lowering and the tree walk entirely.
//
// The engine is bit-identical to the tree walker in sim.go: every cycle
// charge, op count, step, branch-predictor lookup, memory access, error
// message and output byte is issued in exactly the same order. The tree
// walker is kept as the differential oracle (RunOptions.Engine ==
// EngineTree); TestEngineFidelity enforces the equivalence over the
// corpus.

// bcOp enumerates bytecode opcodes.
type bcOp uint8

const (
	bcInvalid bcOp = iota

	// Block and control flow.
	bcEnter       // block entry: SPT check, attribution, phi parallel copy
	bcStep        // per-statement bookkeeping (steps, limits, c0/o0)
	bcGoto        // a = target pc, blk = source block
	bcIf          // a = then pc, b = else pc, st, blk = source block
	bcFellThrough // blk: block without terminator was executed to the end

	// Expression operands (push onto the value stack).
	bcConst    // val
	bcUseVar   // v
	bcLoadG    // g
	bcAddrInit // push the address accumulator for an array access
	bcAddrIdx  // a = dim, g, st: fold one index into the accumulator
	bcLoadAddr // g, st: pop accumulator, load element
	bcBinII    // bin = BinOp, xm/ym modes, cost: non-trapping int binary op
	bcBinFF    // bin = BinOp, xm/ym modes, cost: non-trapping float binary op
	bcBin      // o, st, cost: generic binary op (div/rem, mixed errors)
	bcUn       // o, cost
	bcCast     // o, cost
	bcCall     // o, st, a = argument count: user function call
	bcBuiltin  // o, st, a = argument count, b = builtin kind, cost
	bcLoadA1   // g, st, c = dims[0], xm index mode: 1-dim array load

	// Statement-fused forms: one dispatch for a whole statement whose
	// operands are variables or constants (charge-free), folding the
	// bcStep bookkeeping in. a/b carry the destination's (ID, Base.ID).
	bcAsgMove   // st, v = dst, xm: dst = operand
	bcAsgBinII  // st, v = dst, bin, xm/ym, cost: dst = x intop y
	bcAsgBinFF  // st, v = dst, bin, xm/ym, cost: dst = x floatop y
	bcAsgLoadG  // st, v = dst, g: dst = global
	bcAsgLoadA1 // st, v = dst, g, c = dims[0], xm: dst = g[x]
	bcStoreGF   // st, g, xm: global = operand
	bcStoreA1F  // st, g, c = dims[0], xm index, ym value: g[x] = y
	bcIfBinII   // st, blk, bin, xm/ym, a/b targets, cost: if (x intop y)
	bcIfVal     // st, blk, xm, bin = float flag, a/b targets: if (operand)

	// Finisher-merged forms: the statement's last expression op and its
	// finisher in one dispatch. Unlike the statement-fused forms these
	// follow a bcStep (operands may be charging stack expressions), so
	// they use the step's c0/o0 baseline for speculative charging.
	bcBinAsgII  // st, v = dst, bin, xm/ym, cost: dst = x intop y
	bcBinAsgFF  // st, v = dst, bin, xm/ym, cost: dst = x floatop y
	bcLoadAsgA1 // st, v = dst, g, c = dims[0], xm: dst = g[x]
	bcStoreA1NS // st, g, c = dims[0], xm index (stack), ym value: g[x] = y

	// print builtin (interleaved with argument evaluation, like the
	// walker: the taint accumulator lives on the value stack).
	bcPrintBegin // cost = PrintCost
	bcPrintSpace
	bcPrintStr // str
	bcPrintVal // b = 1 for float formatting
	bcPrintEnd

	// Statement finishers.
	bcAssign   // st, v = destination, cost = IssueCost
	bcStoreG   // st, g, cost
	bcStoreA   // st, g, cost (pops value then address accumulator)
	bcCallStmt // st: call evaluated for effect
	bcRet      // st, a = 1 when a value is returned, cost
	bcFork     // st
	bcKill     // st, cost = KillOverhead

	bcBad // str: pre-formatted runtime error (reached only if executed)

	// bcBinII2 chains two non-trapping int binary ops in one dispatch:
	// the first op is a full bcBinII; its result feeds the second op
	// directly (no stack round-trip). Second-op encoding in the hot
	// instr: d packs bin2<<16 | rIsY<<8 | ym2, c holds the operand (var
	// ID, or the int32 constant value), val.F holds the second op's
	// cycle cost (the first op's const, if any, is an int in val.I, so
	// the float half is free), and aux.v holds the operand var for the
	// speculative read path. Emitted by the emit peephole when a bcBinII
	// immediately consumes the previous bcBinII's result.
	bcBinII2
)

// bcStepped flags an instruction that folds the preceding bare bcStep's
// statement prologue (step count, limit check, context poll, c0/o0
// capture) into its own dispatch. emit sets it when it would otherwise
// append an instruction right after a bare bcStep, replacing the step's
// slot: the prologue runs first, then the op, exactly the sequence the
// two separate dispatches produced. A bare bcStep carries no state of
// its own (its st pointer is never read), so the merge is
// semantics-preserving; executors mask the flag off before switching.
const bcStepped bcOp = 0x80

// Builtin kinds for bcBuiltin.b.
const (
	bFabs = iota
	bFsqrt
	bFmin
	bFmax
	bIabs
	bImin
	bImax
	bUnknown
)

// Fused-operand modes (instr.xm / instr.ym): where a binary or fused
// statement operand comes from. Stack operands were evaluated by
// preceding instructions; const and var operands are fetched inline,
// which is safe because their evaluation is charge-free and effect-free
// in the walker too.
const (
	bcMStack = iota
	bcMConst // x: val2, y: val
	bcMVar   // x: xv, y: yv
)

// linstr is one instruction in its lowering-time form, carrying the IR
// pointers the lowering rules work with. After fixup resolution each
// linstr is split (splitInstr) into a compact hot instr the dispatch
// loop fetches, plus an instrAux entry for the cold fields.
type linstr struct {
	op     bcOp
	bin    uint8 // fused binary operator; bcIf/bcIfVal: 1 = float condition
	xm, ym uint8 // fused operand modes
	a, b   int32 // jump targets, arg counts, or fused dst (ID, Base.ID)
	c      int32 // fused 1-dim array ops: g.Dims[0]; bcBinII2 second-op const
	cost   float64
	val    Value // bcConst value; fused y-operand const
	val2   Value // fused x-operand const
	st     *ir.Stmt
	o      *ir.Op
	v      *ir.Var // bcUseVar/bcAssign var; fused dst
	xv, yv *ir.Var // fused operand vars
	g      *ir.Global
	blk    *ir.Block
	str    string

	// bcBinII2 second-op fields (set by the emit peephole).
	bin2  uint8   // second operator
	ym2   uint8   // second non-result operand mode (bcMVar or bcMConst)
	rIsY  uint8   // 1 when the first op's result is the second op's y
	y2v   *ir.Var // second operand var (ym2 == bcMVar)
	cost2 float64 // second op's cycle cost (charged as its own add)
}

// instr is one executed instruction: a 64-byte record holding only what
// the dispatch loop's fast paths read, so a fetch touches one cache
// line. Derived scalars replace pointer chases: operand variable IDs
// (xid/yid), global addresses (c or d), branch-predictor sites and
// unary/cast kinds are pre-resolved by splitInstr. Slow paths (spec
// reads, calls, errors) find the original IR pointers in the parallel
// aux array at the same index.
type instr struct {
	op     bcOp
	bin    uint8 // fused BinOp; if: float-cond flag; un/cast: kind
	xm, ym uint8 // fused operand modes
	a, b   int32 // jump targets, arg counts, dst (ID, Base.ID), var ID
	c      int32 // 1-dim ops: g.Dims[0]; global/addr ops: g.Addr
	d      int32 // 1-dim ops: g.Addr; branches: predictor site (st.ID)
	xid    int32 // x operand variable ID (xm == bcMVar)
	yid    int32 // y operand variable ID (ym == bcMVar)
	cost   float64
	val    Value // bcConst value; fused const operand (at most one)
	blk    *ir.Block
}

// instrAux holds an instruction's cold operands, off the fetch path.
type instrAux struct {
	st     *ir.Stmt
	o      *ir.Op
	v      *ir.Var // bcUseVar/bcAssign var; fused dst
	xv, yv *ir.Var // fused operand vars
	g      *ir.Global
	str    string
}

// lowFunc is one lowered function.
type lowFunc struct {
	fn     *ir.Func
	code   []instr
	aux    []instrAux          // cold halves, parallel to code
	entry  map[*ir.Block]int32 // block -> its bcEnter pc
	phis   [][]*ir.Stmt        // phi lists referenced by bcEnter.a
	blocks []*ir.Block         // dense block numbering (bcEnter.b indexes it)
	// maxStack is the deepest operand stack any single activation of this
	// function can reach; the executor pre-sizes its stack window with it
	// so pushes never reallocate mid-frame.
	maxStack int
}

// loweredProg is a whole program lowered against one machine config.
type loweredProg struct {
	fns map[*ir.Func]*lowFunc
}

// ---- lowering ----

type lowerer struct {
	cfg  Config
	f    *ir.Func
	lf   *lowFunc
	code []linstr // lowering-time instruction buffer, split after fixups
	fix  []fixup  // jump operands patched once all blocks are placed

	depth, maxDepth int // operand-stack depth tracking during lowering
}

// stk records an instruction's net operand-stack effect.
func (lo *lowerer) stk(d int) {
	lo.depth += d
	if lo.depth > lo.maxDepth {
		lo.maxDepth = lo.depth
	}
}

type fixup struct {
	pc     int32
	target *ir.Block
	field  uint8 // 0: a, 1: b
}

func (lo *lowerer) emit(in linstr) int32 {
	if n := len(lo.code); n > 0 {
		if lo.code[n-1].op == bcStep && in.op != bcStep {
			// Fold the statement's bcStep prologue into its first real
			// instruction (see bcStepped). Steps never start a block —
			// every block opens with bcEnter — so no jump target or entry
			// can reference the replaced slot.
			in.op |= bcStepped
			lo.code[n-1] = in
			return int32(n - 1)
		}
		if in.op == bcBinII {
			if prev := &lo.code[n-1]; prev.op&^bcStepped == bcBinII {
				if pc, ok := lo.mergeBinII(prev, &in, int32(n-1)); ok {
					return pc
				}
			}
		}
	}
	pc := int32(len(lo.code))
	lo.code = append(lo.code, in)
	return pc
}

// mergeBinII turns the just-emitted bcBinII (prev) plus a new bcBinII
// that consumes its result into one bcBinII2, when the new op's only
// stack operand is that result and its other operand is a variable or
// an int32-size constant. Expression trees lower the single stack
// operand's chain immediately before the consuming op, so the previous
// instruction's result is always the top of stack here. The pair
// charges exactly as the two separate ops did: two ops, two separate
// cycle-cost adds in the same order.
func (lo *lowerer) mergeBinII(prev, in *linstr, pc int32) (int32, bool) {
	var rIsY uint8
	var om uint8 // the non-result operand's mode
	var ov *ir.Var
	var oc Value
	switch {
	case in.xm == bcMStack && in.ym != bcMStack:
		rIsY, om, ov, oc = 0, in.ym, in.yv, in.val
	case in.ym == bcMStack && in.xm != bcMStack:
		rIsY, om, ov, oc = 1, in.xm, in.xv, in.val2
	default:
		return 0, false
	}
	switch om {
	case bcMVar:
		prev.c = 0 // splitInstr fills the var ID
	case bcMConst:
		if oc.I < -1<<31 || oc.I > 1<<31-1 {
			return 0, false
		}
		prev.c = int32(oc.I)
	default:
		return 0, false
	}
	prev.op = bcBinII2 | (prev.op & bcStepped)
	prev.bin2 = in.bin
	prev.ym2 = om
	prev.rIsY = rIsY
	prev.y2v = ov
	prev.cost2 = in.cost
	return pc, true
}

func lowerProgramUncached(prog *ir.Program, cfg Config) *loweredProg {
	lp := &loweredProg{fns: make(map[*ir.Func]*lowFunc, len(prog.Funcs))}
	for _, f := range prog.Funcs {
		lf := lowerFunc(f, cfg)
		if lf == nil {
			// A derived field overflowed its int32 slot (gigantic globals);
			// the caller falls back to the tree walker.
			return nil
		}
		lp.fns[f] = lf
	}
	return lp
}

func lowerFunc(f *ir.Func, cfg Config) *lowFunc {
	lo := &lowerer{
		cfg: cfg,
		f:   f,
		lf:  &lowFunc{fn: f, entry: make(map[*ir.Block]int32, len(f.Blocks))},
	}
	for _, b := range f.Blocks {
		lo.depth = 0
		lo.lowerBlock(b)
	}
	lo.lf.maxStack = lo.maxDepth + 1 // +1: slack for the bcRet pop ordering
	for _, fx := range lo.fix {
		pc, ok := lo.lf.entry[fx.target]
		if !ok {
			// A successor outside f.Blocks: surface the walker's
			// fell-through error shape if control ever reaches it.
			pc = lo.emit(linstr{op: bcBad,
				str: fmt.Sprintf("machine: %s: jump to unplaced block b%d", f.Name, fx.target.ID)})
		}
		if fx.field == 0 {
			lo.code[fx.pc].a = pc
		} else {
			lo.code[fx.pc].b = pc
		}
	}
	lo.lf.code = make([]instr, len(lo.code))
	lo.lf.aux = make([]instrAux, len(lo.code))
	for i := range lo.code {
		if !splitInstr(&lo.code[i], &lo.lf.code[i], &lo.lf.aux[i]) {
			return nil
		}
	}
	return lo.lf
}

// splitInstr derives one executed instruction and its aux entry from the
// lowering-time form. Returns false when a derived scalar does not fit
// its int32 slot (practically unreachable: it needs >2^31 memory words).
func splitInstr(li *linstr, in *instr, ax *instrAux) bool {
	*in = instr{op: li.op, bin: li.bin, xm: li.xm, ym: li.ym,
		a: li.a, b: li.b, c: li.c, cost: li.cost, val: li.val, blk: li.blk}
	*ax = instrAux{st: li.st, o: li.o, v: li.v, xv: li.xv, yv: li.yv, g: li.g, str: li.str}
	if li.xm == bcMConst {
		// At most one operand is a constant (lowering demotes the other
		// to a stack push), so the single val slot is free for it.
		in.val = li.val2
	}
	if li.xv != nil {
		in.xid = int32(li.xv.ID)
	}
	if li.yv != nil {
		in.yid = int32(li.yv.ID)
	}
	switch li.op &^ bcStepped {
	case bcLoadG, bcStoreG, bcStoreA, bcAsgLoadG, bcStoreGF, bcLoadAddr:
		if li.g.Addr > 1<<31-1 {
			return false
		}
		in.c = int32(li.g.Addr)
	case bcLoadA1, bcAsgLoadA1, bcStoreA1F, bcLoadAsgA1, bcStoreA1NS:
		if li.g.Addr > 1<<31-1 {
			return false
		}
		in.d = int32(li.g.Addr)
	case bcIf, bcIfVal, bcIfBinII:
		in.d = int32(li.st.ID)
	case bcBinII2:
		in.d = int32(li.bin2)<<16 | int32(li.rIsY)<<8 | int32(li.ym2)
		if li.ym2 == bcMVar {
			in.c = int32(li.y2v.ID)
		}
		ax.v = li.y2v
		in.val.F = li.cost2 // first-op const, if any, is an int in val.I
	case bcUseVar:
		in.a = int32(li.v.ID)
	case bcAssign:
		in.a, in.b = int32(li.v.ID), int32(li.v.Base.ID)
	case bcCast:
		// bin: 0 = no-op, 1 = int->float, 2 = float->int.
		o := li.o
		if o.Type == ir.ValFloat {
			if o.Args[0].Type != ir.ValFloat {
				in.bin = 1
			}
		} else if o.Args[0].Type == ir.ValFloat {
			in.bin = 2
		}
	case bcUn:
		// bin: 1 = neg float, 2 = neg int, 3 = not float, 4 = not int,
		// 5 = bitnot, 0 = invalid (errors at execution, like the walker).
		o := li.o
		switch o.Un {
		case ir.UnNeg:
			if o.Type == ir.ValFloat {
				in.bin = 1
			} else {
				in.bin = 2
			}
		case ir.UnNot:
			if o.Args[0].Type == ir.ValFloat {
				in.bin = 3
			} else {
				in.bin = 4
			}
		case ir.UnBitNot:
			in.bin = 5
		default:
			in.bin = 0
		}
	}
	return true
}

func (lo *lowerer) lowerBlock(b *ir.Block) {
	lf := lo.lf
	lf.entry[b] = int32(len(lo.code))
	phis := b.Phis()
	phiIdx := int32(-1)
	if len(phis) > 0 {
		phiIdx = int32(len(lf.phis))
		lf.phis = append(lf.phis, phis)
	}
	blkIdx := int32(len(lf.blocks))
	lf.blocks = append(lf.blocks, b)
	lo.emit(linstr{op: bcEnter, a: phiIdx, b: blkIdx, blk: b})

	terminated := false
	for _, st := range b.Stmts[len(phis):] {
		if handled, term := lo.lowerStmtFused(b, st); handled {
			if term {
				terminated = true
				break
			}
			continue
		}
		lo.emit(linstr{op: bcStep, st: st})
		switch st.Kind {
		case ir.StmtAssign:
			if lo.lowerAssignMerged(st) {
				break
			}
			lo.lowerOp(st, st.RHS)
			lo.emit(linstr{op: bcAssign, st: st, v: st.Dst, cost: lo.cfg.IssueCost})
			lo.stk(-1)

		case ir.StmtStoreG:
			lo.lowerOp(st, st.RHS)
			lo.emit(linstr{op: bcStoreG, st: st, g: st.G, cost: lo.cfg.IssueCost})
			lo.stk(-1)

		case ir.StmtStoreA:
			if len(st.Index) == 1 && fusable1Dim(st.G) {
				if ym, yc, yv, ok := fusedOperand(st.RHS); ok {
					// Index is a charging expression (the pure-index form was
					// statement-fused), value is pure: the bounds check still
					// precedes value fetch, matching the walker's order.
					lo.lowerOp(st, st.Index[0])
					lo.emit(linstr{op: bcStoreA1NS, st: st, g: st.G, c: int32(st.G.Dims[0]),
						ym: ym, val: yc, yv: yv, cost: lo.cfg.IssueCost})
					lo.stk(-1)
					break
				}
			}
			lo.emit(linstr{op: bcAddrInit})
			lo.stk(1)
			for d, ix := range st.Index {
				lo.lowerOp(st, ix)
				lo.emit(linstr{op: bcAddrIdx, a: int32(d), g: st.G, st: st})
				lo.stk(-1)
			}
			lo.lowerOp(st, st.RHS)
			lo.emit(linstr{op: bcStoreA, st: st, g: st.G, cost: lo.cfg.IssueCost})
			lo.stk(-2)

		case ir.StmtCall:
			lo.lowerOp(st, st.RHS)
			lo.emit(linstr{op: bcCallStmt, st: st})
			lo.stk(-1)

		case ir.StmtRet:
			hasVal := int32(0)
			if st.RHS != nil {
				lo.lowerOp(st, st.RHS)
				hasVal = 1
			}
			lo.emit(linstr{op: bcRet, st: st, a: hasVal, cost: lo.cfg.IssueCost})
			lo.stk(-int(hasVal))
			terminated = true

		case ir.StmtIf:
			lo.lowerOp(st, st.RHS)
			in := linstr{op: bcIf, st: st, blk: b, cost: lo.cfg.IssueCost}
			if st.RHS.Type == ir.ValFloat {
				in.bin = 1 // condition is a float value
			}
			pc := lo.emit(in)
			lo.stk(-1)
			lo.fix = append(lo.fix,
				fixup{pc, b.Succs[0], 0},
				fixup{pc, b.Succs[1], 1})
			terminated = true

		case ir.StmtGoto:
			pc := lo.emit(linstr{op: bcGoto, blk: b})
			lo.fix = append(lo.fix, fixup{pc, b.Succs[0], 0})
			terminated = true

		case ir.StmtFork:
			lo.emit(linstr{op: bcFork, st: st})

		case ir.StmtKill:
			lo.emit(linstr{op: bcKill, st: st, cost: lo.cfg.KillOverhead})

		default:
			lo.emit(linstr{op: bcBad,
				str: fmt.Sprintf("machine: invalid statement kind %s", st.Kind)})
			terminated = true
		}
		if terminated {
			break
		}
	}
	if !terminated {
		lo.emit(linstr{op: bcFellThrough, blk: b})
	}
}

// fusedOperand classifies an expression that a fused instruction can
// fetch inline: constants and variable reads are charge-free and
// effect-free in the walker, so fusing them cannot perturb cycle or op
// accounting, speculative bookkeeping, or error ordering.
func fusedOperand(o *ir.Op) (mode uint8, cv Value, v *ir.Var, ok bool) {
	switch o.Kind {
	case ir.OpConstInt:
		return bcMConst, Value{I: o.ConstI}, nil, true
	case ir.OpConstFloat:
		return bcMConst, Value{F: o.ConstF}, nil, true
	case ir.OpUseVar:
		return bcMVar, Value{}, o.Var, true
	}
	return 0, Value{}, nil, false
}

// fastIntBin reports whether an integer binary op qualifies for the
// non-trapping fused opcodes. Div and rem qualify only when the divisor
// is a constant that can neither divide by zero nor overflow the
// quotient (INT64_MIN / -1), which makes them as pure as the other int
// ops; any other divisor keeps the generic bcBin path and its runtime
// checks.
func fastIntBin(o *ir.Op) bool {
	if o.Bin != ir.BinDiv && o.Bin != ir.BinRem {
		return true
	}
	d := o.Args[1]
	return d.Kind == ir.OpConstInt && d.ConstI != 0 && d.ConstI != -1
}

// fusable1Dim reports whether array accesses to g can use the fused
// single-dimension opcodes (dimension count 1 and a bound that fits the
// instruction's int32 field).
func fusable1Dim(g *ir.Global) bool {
	return len(g.Dims) == 1 && g.Dims[0] <= 1<<31-1
}

// lowerStmtFused lowers a whole statement into a single instruction when
// every operand is a constant or variable. The fused forms fold the
// bcStep bookkeeping in, so one dispatch covers statement prologue,
// operand fetch, the operation, and the statement finisher — in exactly
// the walker's charge order, which is possible precisely because the
// fused operands charge nothing.
func (lo *lowerer) lowerStmtFused(b *ir.Block, st *ir.Stmt) (handled, terminated bool) {
	switch st.Kind {
	case ir.StmtAssign:
		o := st.RHS
		switch o.Kind {
		case ir.OpConstInt, ir.OpConstFloat, ir.OpUseVar:
			m, cv, v, _ := fusedOperand(o)
			lo.emitDst(st, linstr{op: bcAsgMove, xm: m, val2: cv, xv: v, cost: lo.cfg.IssueCost})
			return true, false
		case ir.OpBin:
			xm, xc, xv, okx := fusedOperand(o.Args[0])
			ym, yc, yv, oky := fusedOperand(o.Args[1])
			if !okx || !oky || (xm == bcMConst && ym == bcMConst) {
				return false, false // both-const: merged form pushes one
			}
			lf := o.Args[0].Type == ir.ValFloat || o.Args[1].Type == ir.ValFloat
			var op bcOp
			switch {
			case !lf && fastIntBin(o):
				op = bcAsgBinII
			case lf && fastFloatBin(o.Bin):
				op = bcAsgBinFF
			default:
				return false, false // trapping/generic ops keep the stack path
			}
			lo.emitDst(st, linstr{op: op, bin: uint8(o.Bin), xm: xm, ym: ym,
				val2: xc, val: yc, xv: xv, yv: yv, cost: binCostFor(lo.cfg, o)})
			return true, false
		case ir.OpLoadG:
			lo.emitDst(st, linstr{op: bcAsgLoadG, g: o.G})
			return true, false
		case ir.OpLoadA:
			if len(o.Args) != 1 || !fusable1Dim(o.G) {
				return false, false
			}
			m, cv, v, ok := fusedOperand(o.Args[0])
			if !ok {
				return false, false
			}
			lo.emitDst(st, linstr{op: bcAsgLoadA1, g: o.G, c: int32(o.G.Dims[0]),
				xm: m, val2: cv, xv: v})
			return true, false
		}
		return false, false

	case ir.StmtStoreG:
		m, cv, v, ok := fusedOperand(st.RHS)
		if !ok {
			return false, false
		}
		lo.emit(linstr{op: bcStoreGF, st: st, g: st.G, xm: m, val2: cv, xv: v,
			cost: lo.cfg.IssueCost})
		return true, false

	case ir.StmtStoreA:
		if len(st.Index) != 1 || !fusable1Dim(st.G) {
			return false, false
		}
		xm, xc, xv, okx := fusedOperand(st.Index[0])
		ym, yc, yv, oky := fusedOperand(st.RHS)
		if !okx || !oky || (xm == bcMConst && ym == bcMConst) {
			return false, false // both-const: the bcStoreA1NS path pushes the index
		}
		lo.emit(linstr{op: bcStoreA1F, st: st, g: st.G, c: int32(st.G.Dims[0]),
			xm: xm, ym: ym, val2: xc, val: yc, xv: xv, yv: yv, cost: lo.cfg.IssueCost})
		return true, false

	case ir.StmtIf:
		o := st.RHS
		var in linstr
		if o.Kind == ir.OpBin {
			lf := o.Args[0].Type == ir.ValFloat || o.Args[1].Type == ir.ValFloat
			if lf || !fastIntBin(o) {
				return false, false
			}
			xm, xc, xv, okx := fusedOperand(o.Args[0])
			ym, yc, yv, oky := fusedOperand(o.Args[1])
			if !okx || !oky || (xm == bcMConst && ym == bcMConst) {
				return false, false // both-const: expression form pushes one
			}
			in = linstr{op: bcIfBinII, st: st, blk: b, bin: uint8(o.Bin), xm: xm, ym: ym,
				val2: xc, val: yc, xv: xv, yv: yv, cost: binCostFor(lo.cfg, o)}
		} else {
			m, cv, v, ok := fusedOperand(o)
			if !ok {
				return false, false
			}
			in = linstr{op: bcIfVal, st: st, blk: b, xm: m, val2: cv, xv: v,
				cost: lo.cfg.IssueCost}
			if o.Type == ir.ValFloat {
				in.bin = 1 // condition is a float value
			}
		}
		pc := lo.emit(in)
		lo.fix = append(lo.fix,
			fixup{pc, b.Succs[0], 0},
			fixup{pc, b.Succs[1], 1})
		return true, true
	}
	return false, false
}

// lowerAssignMerged lowers an assignment whose RHS top op has a fused
// form but whose operands include charging expressions: the bcStep has
// already been emitted, stack operands are lowered normally, and the
// final op plus the assign finisher collapse into one instruction.
func (lo *lowerer) lowerAssignMerged(st *ir.Stmt) bool {
	o := st.RHS
	switch o.Kind {
	case ir.OpBin:
		lf := o.Args[0].Type == ir.ValFloat || o.Args[1].Type == ir.ValFloat
		fastII := !lf && fastIntBin(o)
		if !fastII && !(lf && fastFloatBin(o.Bin)) {
			return false
		}
		in := linstr{op: bcBinAsgII, bin: uint8(o.Bin), cost: binCostFor(lo.cfg, o)}
		if !fastII {
			in.op = bcBinAsgFF
		}
		xm, xc, xv, okx := fusedOperand(o.Args[0])
		ym, yc, yv, oky := fusedOperand(o.Args[1])
		if okx && oky && xm == bcMConst && ym == bcMConst {
			okx = false // one const slot per instr: push x instead
		}
		nstack := 0
		if okx {
			in.xm, in.val2, in.xv = xm, xc, xv
		} else {
			lo.lowerOp(st, o.Args[0])
			nstack++
		}
		if oky {
			in.ym, in.val, in.yv = ym, yc, yv
		} else {
			lo.lowerOp(st, o.Args[1])
			nstack++
		}
		lo.emitDst(st, in)
		lo.stk(-nstack)
		return true
	case ir.OpLoadA:
		if len(o.Args) != 1 || !fusable1Dim(o.G) {
			return false
		}
		// The pure-index form was statement-fused; here the index is a
		// charging expression left on the stack.
		lo.lowerOp(st, o.Args[0])
		lo.emitDst(st, linstr{op: bcLoadAsgA1, g: o.G, c: int32(o.G.Dims[0])})
		lo.stk(-1)
		return true
	}
	return false
}

// emitDst emits a statement-fused assignment with the destination's
// fast-path indices (register and base slots) pre-resolved into a/b.
func (lo *lowerer) emitDst(st *ir.Stmt, in linstr) {
	in.st = st
	in.v = st.Dst
	in.a = int32(st.Dst.ID)
	in.b = int32(st.Dst.Base.ID)
	lo.emit(in)
}

// lowerOp lowers one expression tree in post-order, so charges happen in
// exactly the walker's evaluation order.
func (lo *lowerer) lowerOp(st *ir.Stmt, o *ir.Op) {
	switch o.Kind {
	case ir.OpConstInt:
		lo.emit(linstr{op: bcConst, val: Value{I: o.ConstI}})
		lo.stk(1)
	case ir.OpConstFloat:
		lo.emit(linstr{op: bcConst, val: Value{F: o.ConstF}})
		lo.stk(1)
	case ir.OpConstStr:
		lo.emit(linstr{op: bcConst})
		lo.stk(1)
	case ir.OpUseVar:
		lo.emit(linstr{op: bcUseVar, v: o.Var})
		lo.stk(1)
	case ir.OpLoadG:
		lo.emit(linstr{op: bcLoadG, g: o.G})
		lo.stk(1)
	case ir.OpLoadA:
		if len(o.Args) == 1 && fusable1Dim(o.G) {
			in := linstr{op: bcLoadA1, g: o.G, st: st, c: int32(o.G.Dims[0])}
			if m, cv, v, ok := fusedOperand(o.Args[0]); ok {
				in.xm, in.val2, in.xv = m, cv, v
				lo.emit(in)
				lo.stk(1)
			} else {
				lo.lowerOp(st, o.Args[0]) // index on the stack (xm = bcMStack)
				lo.emit(in)
			}
			return
		}
		lo.emit(linstr{op: bcAddrInit})
		lo.stk(1)
		for d, ix := range o.Args {
			lo.lowerOp(st, ix)
			lo.emit(linstr{op: bcAddrIdx, a: int32(d), g: o.G, st: st})
			lo.stk(-1)
		}
		lo.emit(linstr{op: bcLoadAddr, g: o.G, st: st})
	case ir.OpBin:
		cost := binCostFor(lo.cfg, o)
		lf := o.Args[0].Type == ir.ValFloat || o.Args[1].Type == ir.ValFloat
		fastII := !lf && fastIntBin(o)
		if fastII || (lf && fastFloatBin(o.Bin)) {
			in := linstr{op: bcBinII, bin: uint8(o.Bin), cost: cost}
			if !fastII {
				in.op = bcBinFF
			}
			xm, xc, xv, okx := fusedOperand(o.Args[0])
			ym, yc, yv, oky := fusedOperand(o.Args[1])
			if okx && oky && xm == bcMConst && ym == bcMConst {
				okx = false // one const slot per instr: push x instead
			}
			nstack := 0
			if okx {
				in.xm, in.val2, in.xv = xm, xc, xv
			} else {
				lo.lowerOp(st, o.Args[0])
				nstack++
			}
			if oky {
				in.ym, in.val, in.yv = ym, yc, yv
			} else {
				lo.lowerOp(st, o.Args[1])
				nstack++
			}
			lo.emit(in)
			lo.stk(1 - nstack)
			return
		}
		lo.lowerOp(st, o.Args[0])
		lo.lowerOp(st, o.Args[1])
		lo.emit(linstr{op: bcBin, o: o, st: st, cost: cost})
		lo.stk(-1)
	case ir.OpUn:
		lo.lowerOp(st, o.Args[0])
		lo.emit(linstr{op: bcUn, o: o, cost: lo.cfg.IssueCost})
	case ir.OpCast:
		lo.lowerOp(st, o.Args[0])
		lo.emit(linstr{op: bcCast, o: o, cost: lo.cfg.IssueCost})
	case ir.OpCall:
		lo.lowerCall(st, o)
	default:
		lo.emit(linstr{op: bcBad,
			str: fmt.Sprintf("machine: invalid op kind %d", o.Kind)})
		lo.stk(1) // never executes, but keep depth accounting consistent
	}
}

func (lo *lowerer) lowerCall(st *ir.Stmt, o *ir.Op) {
	if o.Builtin {
		if o.Callee == "print" {
			lo.emit(linstr{op: bcPrintBegin, cost: lo.cfg.PrintCost})
			lo.stk(1)
			for i, a := range o.Args {
				if i > 0 {
					lo.emit(linstr{op: bcPrintSpace})
				}
				if a.Kind == ir.OpConstStr {
					lo.emit(linstr{op: bcPrintStr, str: a.Str})
					continue
				}
				lo.lowerOp(st, a)
				isF := int32(0)
				if a.Type == ir.ValFloat {
					isF = 1
				}
				lo.emit(linstr{op: bcPrintVal, b: isF})
				lo.stk(-1)
			}
			lo.emit(linstr{op: bcPrintEnd})
			return
		}
		kind, cost := builtinKind(lo.cfg, o.Callee)
		for _, a := range o.Args {
			lo.lowerOp(st, a)
		}
		lo.emit(linstr{op: bcBuiltin, o: o, st: st, a: int32(len(o.Args)), b: kind, cost: cost})
		lo.stk(1 - len(o.Args))
		return
	}
	if o.Func == nil {
		lo.emit(linstr{op: bcBad, str: fmt.Sprintf("machine: unresolved call %s", o.Callee)})
		lo.stk(1)
		return
	}
	for _, a := range o.Args {
		lo.lowerOp(st, a)
	}
	lo.emit(linstr{op: bcCall, o: o, st: st, a: int32(len(o.Args))})
	lo.stk(1 - len(o.Args))
}

// binCostFor mirrors sim.binCost against an explicit config.
func binCostFor(cfg Config, o *ir.Op) float64 {
	floatOperands := o.Args[0].Type == ir.ValFloat || o.Args[1].Type == ir.ValFloat
	switch o.Bin {
	case ir.BinMul:
		if floatOperands {
			return cfg.FloatCost
		}
		return cfg.IntMulCost
	case ir.BinDiv:
		if floatOperands {
			return cfg.FloatDivCost
		}
		return cfg.IntDivCost
	case ir.BinRem:
		return cfg.IntDivCost
	default:
		if floatOperands {
			return cfg.FloatCost
		}
		return cfg.IssueCost
	}
}

// fastFloatBin reports whether a float binary op has a non-trapping
// specialized opcode (division traps on zero; non-arithmetic operators
// on floats are runtime errors — both stay on the generic path).
func fastFloatBin(b ir.BinOp) bool {
	switch b {
	case ir.BinAdd, ir.BinSub, ir.BinMul,
		ir.BinEq, ir.BinNeq, ir.BinLt, ir.BinLeq, ir.BinGt, ir.BinGeq:
		return true
	}
	return false
}

func builtinKind(cfg Config, callee string) (int32, float64) {
	switch callee {
	case "fabs":
		return bFabs, cfg.IssueCost
	case "fsqrt":
		return bFsqrt, cfg.SqrtCost
	case "fmin":
		return bFmin, cfg.FloatCost
	case "fmax":
		return bFmax, cfg.FloatCost
	case "iabs":
		return bIabs, cfg.IssueCost
	case "imin":
		return bImin, cfg.IssueCost
	case "imax":
		return bImax, cfg.IssueCost
	}
	return bUnknown, 0
}

// ---- (program, config) lowering cache ----

const (
	lowCachePrograms = 64 // distinct programs retained
	lowCacheConfigs  = 16 // distinct configs retained per program
)

var (
	lowCacheMu    sync.Mutex
	lowCache      = make(map[*ir.Program]map[Config]*loweredProg)
	lowCacheOrder []*ir.Program // insertion order, for bounded eviction
)

// lowerProgram returns the cached lowering of prog against cfg, lowering
// it on a miss. Lowered code is immutable and safe to share between
// concurrent simulations. The cache is bounded: the oldest program entry
// is evicted when lowCachePrograms is exceeded (keyed by pointer
// identity, so recompiling a source produces a fresh entry).
func lowerProgram(prog *ir.Program, cfg Config) *loweredProg {
	lowCacheMu.Lock()
	if byCfg := lowCache[prog]; byCfg != nil {
		if lp := byCfg[cfg]; lp != nil {
			lowCacheMu.Unlock()
			return lp
		}
	}
	lowCacheMu.Unlock()

	lp := lowerProgramUncached(prog, cfg) // pure; done outside the lock
	if lp == nil {
		return nil // unlowerable (int32 overflow): don't cache, walker runs
	}

	lowCacheMu.Lock()
	defer lowCacheMu.Unlock()
	byCfg := lowCache[prog]
	if byCfg == nil {
		if len(lowCacheOrder) >= lowCachePrograms {
			oldest := lowCacheOrder[0]
			lowCacheOrder = lowCacheOrder[1:]
			delete(lowCache, oldest)
		}
		byCfg = make(map[Config]*loweredProg)
		lowCache[prog] = byCfg
		lowCacheOrder = append(lowCacheOrder, prog)
	}
	if ex := byCfg[cfg]; ex != nil {
		return ex
	}
	if len(byCfg) >= lowCacheConfigs {
		clear(byCfg)
	}
	byCfg[cfg] = lp
	return lp
}
