package machine

import (
	"context"
	"errors"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"sptc/internal/ir"
)

// Engine is a reusable simulation context. It retains the expensive
// per-run machine state — simulated memory, the cache hierarchy and
// branch-predictor tables, frame pools, speculative fork buffers, the
// bytecode operand stack — across Run calls, so batches of independent
// simulations (suite x levels x machine configs) avoid reallocating and
// re-warming the allocator for every job. Results are bit-identical to
// a fresh Run: all retained state is reset (or generation-stamped as
// absent) between jobs.
//
// An Engine is not safe for concurrent use; RunBatch gives each worker
// its own.
type Engine struct {
	s       sim
	lastCfg Config
	has     bool
}

// NewEngine returns an empty engine. The zero value is also ready to use.
func NewEngine() *Engine { return &Engine{} }

// layoutMu serializes the first (writing) Program.Layout call a program
// sees from the simulator, so concurrent batch jobs over one program
// never race on address assignment (Layout skips redundant writes, so
// steady-state calls are read-only).
var layoutMu sync.Mutex

// Run simulates the program to completion, reusing the engine's pooled
// state.
func (e *Engine) Run(prog *ir.Program, cfg Config, opt RunOptions) (*Result, error) {
	if opt.Out == nil {
		opt.Out = io.Discard
	}
	name := opt.TraceName
	if name == "" {
		name = "simulate"
	}
	sp := opt.Trace.Start(name)
	defer sp.End()
	if err := cfg.Validate(); err != nil {
		sp.Str("error", err.Error())
		return nil, err
	}
	if opt.CountersOnly && opt.AttributeLoops != nil {
		err := errors.New("machine: CountersOnly skips cycle accounting; loop attribution (AttributeLoops) is unavailable")
		sp.Str("error", err.Error())
		return nil, err
	}
	if err := injectRun.Fire(opt.Context); err != nil {
		sp.Str("error", err.Error())
		return nil, err
	}
	if opt.Context != nil {
		if err := opt.Context.Err(); err != nil {
			sp.Str("error", err.Error())
			return nil, err
		}
	}

	layoutMu.Lock()
	size := prog.Layout()
	layoutMu.Unlock()

	s := e.reset(prog, cfg, opt, size)
	for _, g := range prog.Globals {
		if !g.IsArray() {
			if g.Elem == ir.ValFloat {
				s.mem[g.Addr] = Value{F: g.InitF}
			} else {
				s.mem[g.Addr] = Value{I: g.InitInt}
			}
		}
	}
	if prog.Main == nil {
		err := errors.New("machine: program has no main")
		sp.Str("error", err.Error())
		return nil, err
	}
	if opt.Engine == EngineBytecode {
		s.low = lowerProgram(prog, cfg)
		if s.low != nil && len(s.spt) > 0 {
			s.sptID = make(map[*ir.Func][]int32, len(s.low.fns))
			for f, lf := range s.low.fns {
				ids := make([]int32, len(lf.blocks))
				for i, b := range lf.blocks {
					if id, ok := s.spt[b]; ok {
						ids[i] = int32(id)
					} else {
						ids[i] = -1
					}
				}
				s.sptID[f] = ids
			}
		}
	}
	if _, err := s.call(prog.Main, nil, 0); err != nil {
		sp.Str("error", err.Error())
		return nil, err
	}
	s.flushAttr()
	res := &Result{
		Cycles:        s.cycles,
		Ops:           s.ops,
		Loops:         s.loops,
		CyclesByLoop:  s.attrCyc,
		BranchLookups: s.bpM.lookups + s.bpS.lookups,
		BranchMisses:  s.bpM.misses + s.bpS.misses,
		MemAccesses:   s.hier.memAccess,
	}
	if opt.CountersOnly {
		// The counters-only contract: no timing leaves the run. The
		// trimmed bytecode loop never accumulated cycles; the tree
		// walker (and the shared SPT pair-timing bookkeeping) did, so
		// the float fields are zeroed uniformly here — both engines
		// return byte-identical Results in this mode.
		res.Cycles = 0
		for _, ls := range res.Loops {
			ls.SpecCycles, ls.ReexecCycles, ls.SeqCycles, ls.Elapsed = 0, 0, 0, 0
		}
	}
	var forks, kills, specIters, misspecIters int64
	for _, ls := range res.Loops {
		forks += ls.Forks
		kills += ls.Kills
		specIters += ls.SpecIters
		misspecIters += ls.MisspecIters
	}
	sp.Int("sim_instructions", res.Ops).
		Float("cycles", res.Cycles).
		Int("forks", forks).
		Int("kills", kills).
		Int("spec_iters", specIters).
		Int("misspec_iters", misspecIters).
		Int("branch_misses", res.BranchMisses).
		Int("mem_accesses", res.MemAccesses)
	return res, nil
}

// reset prepares the pooled sim for one run: per-run fields come from
// the options, result maps are fresh (they escape into the Result), and
// the pooled buffers are reused when their shapes still fit.
func (e *Engine) reset(prog *ir.Program, cfg Config, opt RunOptions, memWords int) *sim {
	s := &e.s
	s.cfg = cfg
	s.prog = prog
	s.ctx = opt.Context
	s.out = opt.Out
	s.spt = opt.SPTHeaders
	s.loopBlocks = opt.LoopBlocks
	s.attr = opt.AttributeLoops
	s.countersOnly = opt.CountersOnly
	s.loops = make(map[int]*LoopStats)
	s.attrCyc = make(map[int]float64)
	s.cycles, s.ops, s.steps, s.memCycles = 0, 0, 0, 0
	s.sptActive, s.undoActive = false, false
	s.spec = nil
	s.specBuf = specCtx{}
	s.forkIter, s.forkFrame = nil, nil
	s.forkC0, s.forkM0 = 0, 0
	s.attrStack = s.attrStack[:0]
	s.lastAttr = 0
	s.low = nil
	s.sptID = nil
	s.vstack = s.vstack[:0]
	s.argBuf = s.argBuf[:0]
	s.stopHdr, s.stopIn = nil, nil
	s.inLoopDense = nil

	if cap(s.mem) >= memWords {
		s.mem = s.mem[:memWords]
		clear(s.mem)
	} else {
		s.mem = make([]Value, memWords)
	}
	if e.has && e.lastCfg == cfg {
		s.hier.reset()
		s.bpM.reset()
		s.bpS.reset()
	} else {
		s.hier = newHierarchy(cfg)
		s.bpM = newPredictor(cfg.PredictorEntries)
		s.bpS = newPredictor(cfg.PredictorEntries)
		e.lastCfg = cfg
		e.has = true
	}
	// The frame pool is keyed by *ir.Func, so it carries over between
	// programs; bound it so a long-lived engine over many programs does
	// not grow without limit. Frame generation stamps make stale slots
	// read as absent, so reuse is semantics-free.
	if s.framePool == nil || len(s.framePool) > 1024 {
		s.framePool = make(map[*ir.Func]*framePoolEntry)
	}
	// Speculative memory-side buffers (undo log, write-set, taint) are
	// grown on demand by ensureSpecMem; their generation stamps carry
	// over, so a fresh stamp never collides with retained entries.
	return s
}

// BatchJob is one independent simulation in a RunBatch call.
type BatchJob struct {
	Prog   *ir.Program
	Config Config
	Opt    RunOptions
}

// BatchResult pairs one job's result with its error.
type BatchResult struct {
	Res *Result
	Err error
}

// BatchOptions configures RunBatch.
type BatchOptions struct {
	// Workers bounds the number of concurrent simulations (<= 0:
	// GOMAXPROCS). Results are independent of the worker count.
	Workers int
	// Context aborts the whole batch: jobs not yet started return its
	// error, and jobs without their own RunOptions.Context inherit it
	// for cooperative cancellation.
	Context context.Context
}

// RunBatch runs many independent simulations through a shared bounded
// scheduler. Each worker owns one Engine, so per-run machine state
// (frames, speculative buffers, cache and predictor tables, operand
// stacks) is pooled across the jobs a worker executes. Results are
// returned in job order and are identical to running each job alone.
func RunBatch(jobs []BatchJob, opt BatchOptions) []BatchResult {
	results := make([]BatchResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers == 1 {
		e := NewEngine()
		for i := range jobs {
			results[i] = runBatchJob(e, &jobs[i], opt.Context)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := NewEngine()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				results[i] = runBatchJob(e, &jobs[i], opt.Context)
			}
		}()
	}
	wg.Wait()
	return results
}

func runBatchJob(e *Engine, j *BatchJob, ctx context.Context) BatchResult {
	ro := j.Opt
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return BatchResult{Err: err}
		}
		if ro.Context == nil {
			ro.Context = ctx
		}
	}
	res, err := e.Run(j.Prog, j.Config, ro)
	return BatchResult{Res: res, Err: err}
}
