package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one Chrome trace_event. Complete spans use ph "X" with
// microsecond ts/dur; track labels are emitted as thread_name metadata
// events (ph "M"), which chrome://tracing and Perfetto render as row
// names.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome exports every track as Chrome trace_event JSON: one tid
// per track, spans as complete ("X") events in start order (so per-track
// timestamps are monotone), counters and labels in the event args. The
// output loads directly in chrome://tracing and ui.perfetto.dev. Must
// not be called while tracks are still recording.
func (t *Tracer) WriteChrome(w io.Writer) error {
	tr := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, tk := range t.Tracks() {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			PID:  1,
			TID:  tk.ID,
			Args: map[string]any{"name": tk.Label},
		})
		for _, s := range tk.spans {
			dur := float64(s.Dur.Microseconds())
			ev := chromeEvent{
				Name: s.Name,
				Cat:  "sptc",
				Ph:   "X",
				TS:   float64(s.Begin) / 1e3, // ns -> us
				Dur:  &dur,
				PID:  1,
				TID:  tk.ID,
			}
			if len(s.Args) > 0 {
				ev.Args = make(map[string]any, len(s.Args))
				for _, a := range s.Args {
					switch a.Kind {
					case ArgInt:
						ev.Args[a.Key] = a.I
					case ArgFloat:
						ev.Args[a.Key] = a.F
					case ArgStr:
						ev.Args[a.Key] = a.S
					}
				}
			}
			tr.TraceEvents = append(tr.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}
