// Package trace is the compiler's structured tracing and profiling
// layer: hierarchical timed spans (pipeline → pass → loop →
// search/simulate) with typed counters attached, recorded on per-job
// tracks and exported as Chrome trace_event JSON (loadable in
// chrome://tracing or https://ui.perfetto.dev) or a flat per-span CSV.
//
// The layer is built to cost nothing when off. A nil *Tracer (and the
// nil *Track and nil *Span it hands out) is the disabled tracer: every
// method is nil-safe and returns immediately, so instrumentation sites
// call unconditionally. When a tracer exists but is switched off with
// SetEnabled(false), the only work per instrumentation call is a single
// atomic load. BenchmarkDisabledOverhead pins the disabled path;
// the end-to-end overhead on BenchmarkPartitionSearch and
// BenchmarkSimulate is measured in EXPERIMENTS.md (<2%).
//
// Concurrency model: a Tracer is safe for concurrent use; each Track is
// owned by one goroutine at a time (the evaluation harness gives every
// compile+simulate job its own track, so concurrent jobs never share a
// span stack and the merged trace keeps one well-nested span tree per
// job). Handing a track from one goroutine to another requires external
// synchronization (the harness's sync.Once provides it for the shared
// base compile).
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// ArgKind is the type of a span argument.
type ArgKind uint8

// Argument kinds.
const (
	ArgInt ArgKind = iota
	ArgFloat
	ArgStr
)

// Arg is one typed counter or label attached to a span. Int and Float
// args are counters; Str args are labels (they export into the Chrome
// args object alongside the counters).
type Arg struct {
	Key  string
	Kind ArgKind
	I    int64
	F    float64
	S    string
}

// Span is one timed, named region on a track. Begin and Dur are offsets
// from the owning tracer's epoch (a monotonic clock). Spans on one track
// nest by construction: a span started while another is open is its
// child (Depth records the nesting level).
type Span struct {
	Name  string
	Depth int
	Begin time.Duration
	Dur   time.Duration
	Args  []Arg

	track *Track
	done  bool
}

// Track is one timeline of spans — one per concurrent job. Spans on a
// track are recorded in start order and form a well-nested tree.
type Track struct {
	ID    int
	Label string

	t     *Tracer
	stack []*Span
	spans []*Span
}

// Tracer collects tracks. The zero value is not usable; use New. A nil
// *Tracer is the disabled tracer.
type Tracer struct {
	on    atomic.Bool
	epoch time.Time

	mu     sync.Mutex
	tracks []*Track
}

// New returns an enabled tracer whose span timestamps are measured from
// now.
func New() *Tracer {
	t := &Tracer{epoch: time.Now()}
	t.on.Store(true)
	return t
}

// SetEnabled switches span recording on or off. While off, every
// instrumentation call returns after a single atomic load; already
// recorded spans are kept.
func (t *Tracer) SetEnabled(on bool) {
	if t == nil {
		return
	}
	t.on.Store(on)
}

// Enabled reports whether the tracer records spans.
func (t *Tracer) Enabled() bool { return t != nil && t.on.Load() }

// StartTrack allocates a new track. Safe for concurrent use; returns nil
// (the disabled track) on a nil or disabled tracer.
func (t *Tracer) StartTrack(label string) *Track {
	if t == nil || !t.on.Load() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tk := &Track{ID: len(t.tracks) + 1, Label: label, t: t}
	t.tracks = append(t.tracks, tk)
	return tk
}

// Tracks returns the tracer's tracks in creation order. The result must
// not be read while tracks are still recording.
func (t *Tracer) Tracks() []*Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Track(nil), t.tracks...)
}

// Track returns the first track with the given label, or nil.
func (t *Tracer) Track(label string) *Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tk := range t.tracks {
		if tk.Label == label {
			return tk
		}
	}
	return nil
}

// Start begins a span on the track. The open span (if any) becomes its
// parent. Nil-safe: on a nil track, or when the tracer has been
// disabled, it returns the nil span at the cost of one atomic load.
func (tk *Track) Start(name string) *Span {
	if tk == nil || !tk.t.on.Load() {
		return nil
	}
	s := &Span{
		Name:  name,
		Depth: len(tk.stack),
		Begin: time.Since(tk.t.epoch),
		track: tk,
	}
	tk.stack = append(tk.stack, s)
	tk.spans = append(tk.spans, s)
	return s
}

// Now returns the current timestamp on the tracer's clock (the offset
// Span.Begin is measured in). Unlike Start, Now is safe to call from
// any goroutine: it only reads the tracer's immutable epoch. Returns 0
// on a nil track or a disabled tracer.
func (tk *Track) Now() time.Duration {
	if tk == nil || !tk.t.on.Load() {
		return 0
	}
	return time.Since(tk.t.epoch)
}

// Record appends an already-closed span at the track's current nesting
// depth. It is the bridge for parallel pipeline phases: worker
// goroutines timestamp their work with Now, and the track's owner
// records the finished spans after the join, in a deterministic order.
// Recorded siblings may therefore overlap in time (they ran
// concurrently), which ordinary Start/End children never do. Counters
// may still be attached to the returned span; End on it is a no-op.
// Nil-safe. Must be called by the track's owning goroutine, like Start.
func (tk *Track) Record(name string, begin, dur time.Duration) *Span {
	if tk == nil || !tk.t.on.Load() {
		return nil
	}
	s := &Span{
		Name:  name,
		Depth: len(tk.stack),
		Begin: begin,
		Dur:   dur,
		track: tk,
		done:  true,
	}
	tk.spans = append(tk.spans, s)
	return s
}

// Spans returns the track's spans in start order (parents before
// children). Nil-safe.
func (tk *Track) Spans() []*Span {
	if tk == nil {
		return nil
	}
	return tk.spans
}

// SumInt sums the named integer counter over every span with the given
// name. Nil-safe; missing counters contribute zero.
func (tk *Track) SumInt(span, key string) int64 {
	var n int64
	if tk == nil {
		return 0
	}
	for _, s := range tk.spans {
		if s.Name != span {
			continue
		}
		if v, ok := s.Int64(key); ok {
			n += v
		}
	}
	return n
}

// Find returns the first span with the given name, or nil.
func (tk *Track) Find(name string) *Span {
	if tk == nil {
		return nil
	}
	for _, s := range tk.spans {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// End closes the span, recording its duration. Nil-safe. Spans left open
// by a skipped End (early error return) are closed implicitly when an
// enclosing span ends, keeping the track's tree well-nested.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	now := time.Since(s.track.t.epoch)
	tk := s.track
	// Pop the stack through s, closing any children left open.
	for i := len(tk.stack) - 1; i >= 0; i-- {
		sp := tk.stack[i]
		tk.stack = tk.stack[:i]
		if !sp.done {
			sp.Dur = now - sp.Begin
			sp.done = true
		}
		if sp == s {
			break
		}
	}
}

// Int attaches (or overwrites) an integer counter. Returns the span for
// chaining. Nil-safe.
func (s *Span) Int(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	s.set(Arg{Key: key, Kind: ArgInt, I: v})
	return s
}

// Float attaches a float counter. Nil-safe.
func (s *Span) Float(key string, v float64) *Span {
	if s == nil {
		return nil
	}
	s.set(Arg{Key: key, Kind: ArgFloat, F: v})
	return s
}

// Str attaches a string label. Nil-safe.
func (s *Span) Str(key, v string) *Span {
	if s == nil {
		return nil
	}
	s.set(Arg{Key: key, Kind: ArgStr, S: v})
	return s
}

func (s *Span) set(a Arg) {
	for i := range s.Args {
		if s.Args[i].Key == a.Key {
			s.Args[i] = a
			return
		}
	}
	s.Args = append(s.Args, a)
}

// Int64 reads an integer counter back from the span.
func (s *Span) Int64(key string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	for _, a := range s.Args {
		if a.Key == key && a.Kind == ArgInt {
			return a.I, true
		}
	}
	return 0, false
}
