package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// WriteCSV exports every span as one flat CSV row: track id and label,
// nesting depth, span name, start and duration in microseconds, and the
// attached args as semicolon-joined key=value pairs. Rows are grouped by
// track in creation order and sorted by start time within a track. Must
// not be called while tracks are still recording.
func (t *Tracer) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"track", "label", "depth", "span", "start_us", "dur_us", "args"}); err != nil {
		return err
	}
	for _, tk := range t.Tracks() {
		for _, s := range tk.spans {
			var args []string
			for _, a := range s.Args {
				switch a.Kind {
				case ArgInt:
					args = append(args, fmt.Sprintf("%s=%d", a.Key, a.I))
				case ArgFloat:
					args = append(args, fmt.Sprintf("%s=%g", a.Key, a.F))
				case ArgStr:
					args = append(args, fmt.Sprintf("%s=%s", a.Key, a.S))
				}
			}
			if err := cw.Write([]string{
				fmt.Sprint(tk.ID),
				tk.Label,
				fmt.Sprint(s.Depth),
				s.Name,
				fmt.Sprintf("%.3f", float64(s.Begin)/1e3),
				fmt.Sprintf("%.3f", float64(s.Dur)/1e3),
				strings.Join(args, ";"),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
