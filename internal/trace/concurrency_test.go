package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentTracks exercises the tracer from 8 concurrent workers —
// the evaluation harness's shape: one track per job, spans and counters
// recorded while other jobs do the same. Run under -race (the CI race
// stage does), this pins the tracer's concurrency contract. The merged
// Chrome trace must be well-formed JSON with monotone per-track
// timestamps and every span accounted for.
func TestConcurrentTracks(t *testing.T) {
	const workers = 8
	const spansPerWorker = 200

	tr := New()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tk := tr.StartTrack(fmt.Sprintf("job%d", w))
			root := tk.Start("compile")
			for i := 0; i < spansPerWorker; i++ {
				sp := tk.Start("loop")
				sp.Int("search_nodes", int64(i)).Int("worker", int64(w))
				sp.End()
			}
			root.End()
			tk.Start("simulate").Int("sim_instructions", int64(w*1000)).End()
		}(w)
	}
	wg.Wait()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("merged trace is not well-formed JSON: %v", err)
	}

	wantEvents := workers * (1 + spansPerWorker + 1 + 1) // metadata + compile + loops + simulate
	if len(out.TraceEvents) != wantEvents {
		t.Fatalf("got %d events, want %d", len(out.TraceEvents), wantEvents)
	}

	// Per-track: timestamps monotone, no span from another worker's job.
	lastTS := map[int]float64{}
	spanCount := map[int]int{}
	workerOfTID := map[int]int64{}
	for _, ev := range out.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if last, ok := lastTS[ev.TID]; ok && ev.TS < last {
			t.Fatalf("track %d timestamps not monotone: %f after %f", ev.TID, ev.TS, last)
		}
		lastTS[ev.TID] = ev.TS
		spanCount[ev.TID]++
		if ev.Name == "loop" {
			w := int64(ev.Args["worker"].(float64))
			if seen, ok := workerOfTID[ev.TID]; ok && seen != w {
				t.Fatalf("track %d mixes spans of workers %d and %d", ev.TID, seen, w)
			}
			workerOfTID[ev.TID] = w
		}
	}
	if len(spanCount) != workers {
		t.Fatalf("got %d tracks, want %d", len(spanCount), workers)
	}
	for tid, n := range spanCount {
		if n != spansPerWorker+2 {
			t.Fatalf("track %d has %d spans, want %d", tid, n, spansPerWorker+2)
		}
	}
}
