package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func TestSpanNesting(t *testing.T) {
	tr := New()
	tk := tr.StartTrack("job")
	root := tk.Start("compile")
	child := tk.Start("parse")
	if child.Depth != 1 || root.Depth != 0 {
		t.Fatalf("depths: root=%d child=%d", root.Depth, child.Depth)
	}
	child.End()
	sib := tk.Start("sem")
	if sib.Depth != 1 {
		t.Fatalf("sibling depth = %d, want 1", sib.Depth)
	}
	sib.End()
	root.End()

	spans := tk.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Name != "compile" || spans[1].Name != "parse" || spans[2].Name != "sem" {
		t.Fatalf("span order: %s %s %s", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	for _, s := range spans {
		if !s.done {
			t.Fatalf("span %s not closed", s.Name)
		}
		if s.Dur < 0 {
			t.Fatalf("span %s negative duration", s.Name)
		}
	}
	// Children are contained in the parent.
	if spans[1].Begin < spans[0].Begin || spans[1].Begin+spans[1].Dur > spans[0].Begin+spans[0].Dur {
		t.Fatalf("child not contained in parent")
	}
}

func TestEndClosesOpenChildren(t *testing.T) {
	tr := New()
	tk := tr.StartTrack("job")
	root := tk.Start("compile")
	leaked := tk.Start("pass1") // never explicitly ended
	root.End()
	if !leaked.done {
		t.Fatalf("open child not closed by parent End")
	}
	if n := len(tk.stack); n != 0 {
		t.Fatalf("stack not drained: %d", n)
	}
	// Double End is a no-op.
	d := leaked.Dur
	leaked.End()
	root.End()
	if leaked.Dur != d {
		t.Fatalf("double End changed duration")
	}
}

func TestTypedArgs(t *testing.T) {
	tr := New()
	tk := tr.StartTrack("job")
	s := tk.Start("loop").Int("search_nodes", 42).Float("cost", 0.58).Str("func", "main")
	s.Int("search_nodes", 43) // overwrite
	s.End()

	if v, ok := s.Int64("search_nodes"); !ok || v != 43 {
		t.Fatalf("Int64(search_nodes) = %d,%v", v, ok)
	}
	if _, ok := s.Int64("cost"); ok {
		t.Fatalf("float arg visible as int counter")
	}
	if _, ok := s.Int64("absent"); ok {
		t.Fatalf("absent counter found")
	}
	if len(s.Args) != 3 {
		t.Fatalf("got %d args, want 3", len(s.Args))
	}
}

func TestSumIntAndFind(t *testing.T) {
	tr := New()
	tk := tr.StartTrack("job")
	for i := int64(1); i <= 3; i++ {
		tk.Start("loop").Int("search_nodes", i).End()
	}
	tk.Start("simulate").Int("sim_instructions", 100).End()
	if n := tk.SumInt("loop", "search_nodes"); n != 6 {
		t.Fatalf("SumInt = %d, want 6", n)
	}
	if n := tk.SumInt("loop", "absent"); n != 0 {
		t.Fatalf("SumInt(absent) = %d, want 0", n)
	}
	if sp := tk.Find("simulate"); sp == nil || sp.Name != "simulate" {
		t.Fatalf("Find(simulate) = %v", sp)
	}
	if sp := tk.Find("nope"); sp != nil {
		t.Fatalf("Find(nope) = %v, want nil", sp)
	}
}

// TestNilSafety drives the whole API through the disabled (nil) tracer:
// every call must be a no-op, never a panic.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tr.SetEnabled(true)
	if tr.Enabled() {
		t.Fatalf("nil tracer enabled")
	}
	tk := tr.StartTrack("job")
	if tk != nil {
		t.Fatalf("nil tracer returned a track")
	}
	s := tk.Start("compile")
	if s != nil {
		t.Fatalf("nil track returned a span")
	}
	s.Int("k", 1).Float("f", 1).Str("s", "x")
	s.End()
	if _, ok := s.Int64("k"); ok {
		t.Fatalf("nil span has counters")
	}
	if tk.Spans() != nil || tk.SumInt("a", "b") != 0 || tk.Find("a") != nil {
		t.Fatalf("nil track queries not empty")
	}
	if tr.Tracks() != nil || tr.Track("job") != nil {
		t.Fatalf("nil tracer queries not empty")
	}
}

func TestSetEnabled(t *testing.T) {
	tr := New()
	tk := tr.StartTrack("job")
	tk.Start("kept").End()
	tr.SetEnabled(false)
	if sp := tk.Start("dropped"); sp != nil {
		t.Fatalf("disabled tracer recorded a span")
	}
	if tr.StartTrack("late") != nil {
		t.Fatalf("disabled tracer allocated a track")
	}
	tr.SetEnabled(true)
	tk.Start("resumed").End()
	names := []string{}
	for _, s := range tk.Spans() {
		names = append(names, s.Name)
	}
	if strings.Join(names, ",") != "kept,resumed" {
		t.Fatalf("spans = %v", names)
	}
}

func TestWriteChrome(t *testing.T) {
	tr := New()
	tk := tr.StartTrack("gap/best")
	c := tk.Start("compile")
	tk.Start("loop").Int("search_nodes", 844).Str("func", "main").End()
	c.End()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	if len(out.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3 (metadata + 2 spans)", len(out.TraceEvents))
	}
	meta := out.TraceEvents[0]
	if meta.Ph != "M" || meta.Name != "thread_name" || meta.Args["name"] != "gap/best" {
		t.Fatalf("bad metadata event: %+v", meta)
	}
	loop := out.TraceEvents[2]
	if loop.Name != "loop" || loop.Ph != "X" {
		t.Fatalf("bad span event: %+v", loop)
	}
	if loop.Args["search_nodes"].(float64) != 844 || loop.Args["func"] != "main" {
		t.Fatalf("bad args: %+v", loop.Args)
	}
	if loop.TS < out.TraceEvents[1].TS {
		t.Fatalf("timestamps not monotone within track")
	}
}

func TestWriteCSV(t *testing.T) {
	tr := New()
	tk := tr.StartTrack("gap/best")
	c := tk.Start("compile")
	tk.Start("loop").Int("search_nodes", 844).Float("cost", 0.5).End()
	c.End()

	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want header + 2", len(rows))
	}
	if rows[0][0] != "track" || rows[0][6] != "args" {
		t.Fatalf("bad header: %v", rows[0])
	}
	if rows[2][3] != "loop" || rows[2][2] != "1" {
		t.Fatalf("bad span row: %v", rows[2])
	}
	if rows[2][6] != "search_nodes=844;cost=0.5" {
		t.Fatalf("bad args cell: %q", rows[2][6])
	}
}

// BenchmarkDisabledOverhead pins the cost of an instrumentation site
// when tracing is off: the nil-track path and the switched-off path
// (one atomic load) must both stay in the low-nanosecond range.
func BenchmarkDisabledOverhead(b *testing.B) {
	b.Run("nil", func(b *testing.B) {
		var tk *Track
		for i := 0; i < b.N; i++ {
			sp := tk.Start("pass")
			sp.Int("n", int64(i))
			sp.End()
		}
	})
	b.Run("switched-off", func(b *testing.B) {
		tr := New()
		tk := tr.StartTrack("job")
		tr.SetEnabled(false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := tk.Start("pass")
			sp.Int("n", int64(i))
			sp.End()
		}
	})
}
