package bitset

import (
	"math/rand"
	"testing"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if len(s) != 3 {
		t.Fatalf("capacity 130 -> %d words, want 3", len(s))
	}
	for _, i := range []int{0, 63, 64, 127, 129} {
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("Has(%d) after Add", i)
		}
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d, want 5", s.Count())
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 4 {
		t.Fatalf("Remove(64) failed: %v", s)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	want := []int{0, 63, 127, 129}
	if len(got) != len(want) {
		t.Fatalf("ForEach = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach = %v, want %v", got, want)
		}
	}
}

func TestOrCloneEqual(t *testing.T) {
	a, b := New(100), New(100)
	a.Add(3)
	b.Add(70)
	c := a.Clone()
	c.Or(b)
	if !c.Has(3) || !c.Has(70) || a.Has(70) {
		t.Fatal("Or/Clone aliasing")
	}
	if c.Equal(a) || !c.Equal(c.Clone()) {
		t.Fatal("Equal broken")
	}
	c.Clear()
	if c.Count() != 0 {
		t.Fatal("Clear broken")
	}
}

func TestAgainstMap(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n = 200
	s := New(n)
	m := map[int]bool{}
	for step := 0; step < 5000; step++ {
		i := r.Intn(n)
		if r.Intn(3) == 0 {
			s.Remove(i)
			delete(m, i)
		} else {
			s.Add(i)
			m[i] = true
		}
		if s.Count() != len(m) {
			t.Fatalf("step %d: count %d vs map %d", step, s.Count(), len(m))
		}
	}
	for i := 0; i < n; i++ {
		if s.Has(i) != m[i] {
			t.Fatalf("Has(%d) = %v, map %v", i, s.Has(i), m[i])
		}
	}
}

func TestInterner(t *testing.T) {
	in := NewInterner()
	a := New(100)
	a.Add(5)
	id0, seen := in.Intern(a)
	if seen || id0 != 0 {
		t.Fatalf("first intern: id=%d seen=%v", id0, seen)
	}
	// Mutating the caller's set must not affect the interned copy.
	a.Add(6)
	id1, seen := in.Intern(a)
	if seen || id1 != 1 {
		t.Fatalf("second intern: id=%d seen=%v", id1, seen)
	}
	b := New(100)
	b.Add(5)
	if id, seen := in.Intern(b); !seen || id != id0 {
		t.Fatalf("re-intern: id=%d seen=%v", id, seen)
	}
	if in.Len() != 2 || !in.Get(0).Has(5) || in.Get(0).Has(6) {
		t.Fatalf("interned copies corrupted")
	}
}

func TestKeyEmpty(t *testing.T) {
	if New(0).Key() != "" {
		t.Fatal("empty set key")
	}
	a, b := New(64), New(64)
	a.Add(1)
	if a.Key() == b.Key() {
		t.Fatal("distinct sets share a key")
	}
	b.Add(1)
	if a.Key() != b.Key() {
		t.Fatal("equal sets differ in key")
	}
}
