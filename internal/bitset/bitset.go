// Package bitset provides fixed-capacity dense bitsets and an interning
// table. The partition search and the cost model use them to represent
// statement sets and downward-closed violation-candidate sets as []uint64
// words instead of pointer-keyed maps: set algebra becomes word-parallel,
// copies become memcpy, and identical sets share one canonical identity
// through the Interner, so work keyed on a set (cost evaluation, size
// computation) is done once per distinct set rather than once per visit.
package bitset

import (
	"math/bits"
	"unsafe"
)

// Set is a fixed-capacity bitset. The zero value of a word-slice is a
// valid empty set of capacity 64*len(words).
type Set []uint64

// New returns an empty set with capacity for n elements.
func New(n int) Set {
	return make(Set, (n+63)>>6)
}

// Add inserts i.
func (s Set) Add(i int) { s[i>>6] |= 1 << uint(i&63) }

// Remove deletes i.
func (s Set) Remove(i int) { s[i>>6] &^= 1 << uint(i&63) }

// Has reports whether i is in the set.
func (s Set) Has(i int) bool { return s[i>>6]&(1<<uint(i&63)) != 0 }

// Count returns the number of elements.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Or sets s to s ∪ t. The sets must have equal capacity.
func (s Set) Or(t Set) {
	for i, w := range t {
		s[i] |= w
	}
}

// CopyFrom overwrites s with t. The sets must have equal capacity.
func (s Set) CopyFrom(t Set) { copy(s, t) }

// Clone returns an independent copy.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// Clear empties the set.
func (s Set) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Equal reports whether s and t hold the same elements. The sets must
// have equal capacity.
func (s Set) Equal(t Set) bool {
	for i, w := range s {
		if w != t[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for every element in ascending order.
func (s Set) ForEach(fn func(i int)) {
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi<<6 | b)
			w &= w - 1
		}
	}
}

// Hash returns a 64-bit FNV-1a content hash of the set. Equal sets hash
// equally; the hash doubles as the shard selector and bucket key of
// concurrent tables keyed on set content, so one pass over the words
// serves both (no separate string key is built).
func (s Set) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range s {
		h ^= w
		h *= prime64
	}
	return h
}

// SeqLess reports whether s precedes t in the depth-first visit order of
// the subset search: subsets ordered as their ascending index sequences,
// compared lexicographically with a prefix sorting before its
// extensions ({0} < {0,1} < {0,2} < {1}). This is the discovery-rank
// order of the branch-and-bound, so parallel workers can break exact
// (cost, size) ties identically to the serial search without tracking
// explicit ranks. The sets must have equal capacity.
func (s Set) SeqLess(t Set) bool {
	for wi, sw := range s {
		d := sw ^ t[wi]
		if d == 0 {
			continue
		}
		b := uint(bits.TrailingZeros64(d))
		// d's lowest bit is the first index where membership differs.
		// The set holding it precedes iff the other set goes on past it
		// (otherwise the other set is a strict prefix, which sorts first).
		rest := func(x Set) bool {
			if x[wi]>>(b+1) != 0 {
				return true
			}
			for wj := wi + 1; wj < len(x); wj++ {
				if x[wj] != 0 {
					return true
				}
			}
			return false
		}
		if sw&(1<<b) != 0 {
			return rest(t)
		}
		return !rest(s)
	}
	return false
}

// Key returns the set's content as a string usable as a map key. The
// returned string aliases no live memory of s (strings are immutable
// copies).
func (s Set) Key() string {
	if len(s) == 0 {
		return ""
	}
	b := unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
	return string(b)
}

// KeyView returns the set's content as a string header aliasing s's
// memory — no copy, no allocation. Only valid for transient use (a map
// lookup) while s is unmodified; use Key for keys that are stored.
func (s Set) KeyView() string {
	if len(s) == 0 {
		return ""
	}
	return unsafe.String((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

// Interner deduplicates sets: Intern returns a stable small integer ID
// per distinct set content, assigning IDs densely from 0 in first-seen
// order. The interned copy is owned by the table.
type Interner struct {
	ids  map[string]int
	sets []Set
}

// NewInterner returns an empty table.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]int)}
}

// Intern returns the canonical ID for the set's content and whether this
// content was seen before. The argument is copied on first sight and may
// be reused by the caller.
func (t *Interner) Intern(s Set) (id int, seen bool) {
	if id, ok := t.ids[s.KeyView()]; ok {
		return id, true
	}
	id = len(t.sets)
	t.ids[s.Key()] = id
	t.sets = append(t.sets, s.Clone())
	return id, false
}

// Lookup returns the ID of a previously interned set without allocating.
func (t *Interner) Lookup(s Set) (id int, ok bool) {
	id, ok = t.ids[s.KeyView()]
	return id, ok
}

// Len returns the number of distinct sets interned.
func (t *Interner) Len() int { return len(t.sets) }

// Get returns the canonical set for an ID.
func (t *Interner) Get(id int) Set { return t.sets[id] }
