package service

import (
	"context"
	"errors"
	"math/rand"
	"net/url"
	"time"
)

// RetryPolicy retries transient remote failures with bounded exponential
// backoff and full jitter. Only idempotent-safe failures are retried:
// admission rejections (429), server-side timeouts (504), bad-gateway
// class transport errors (502/503), and connection-level failures
// (refused, reset, EOF mid-response). Compile errors, request errors,
// and worker panics are deterministic — retrying them re-buys the same
// failure — so they always surface immediately.
type RetryPolicy struct {
	// MaxAttempts caps total attempts (first try included). Values < 2
	// disable retries.
	MaxAttempts int
	// BaseDelay seeds the exponential schedule: attempt n backs off by a
	// uniform random duration in [0, min(MaxDelay, BaseDelay*2^n)],
	// raised to the server's Retry-After hint when one was given.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff (default 2s when zero).
	MaxDelay time.Duration

	// Rand and Sleep are test seams; nil means math/rand and real sleep.
	Rand  func() float64
	Sleep func(ctx context.Context, d time.Duration) error
}

// DefaultRetryPolicy is the policy the CLIs and the harness arm:
// 4 attempts, 50ms base, 2s cap.
func DefaultRetryPolicy() *RetryPolicy {
	return &RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}
}

// RetryableError reports whether err is an idempotent-safe transient
// failure: one more attempt could plausibly succeed and cannot double
// any effect (every sptd request is a pure function of its body).
func RetryableError(err error) bool {
	var over *ErrOverload
	if errors.As(err, &over) {
		return true
	}
	var te *TransportError
	if errors.As(err, &te) {
		switch te.Status {
		case 429, 502, 503, 504:
			return true
		}
		return false
	}
	var ue *url.Error
	if errors.As(err, &ue) {
		// Connection refused/reset, broken pipe, unexpected EOF: the
		// request never produced a response. Timeouts driven by the
		// caller's own context are excluded below.
		return true
	}
	// A server-side deadline (kind "timeout" mapped to DeadlineExceeded)
	// is transient: the daemon was briefly saturated.
	return errors.Is(err, context.DeadlineExceeded)
}

// shouldRetry decides whether attempt (0-based, already failed with err)
// gets a successor. Nil policies never retry.
func (p *RetryPolicy) shouldRetry(ctx context.Context, attempt int, err error) bool {
	if p == nil || attempt+1 >= p.MaxAttempts {
		return false
	}
	if ctx.Err() != nil {
		// The caller gave up; any DeadlineExceeded is theirs, not the
		// server's, and retrying past it is wasted work.
		return false
	}
	return RetryableError(err)
}

// backoff sleeps the post-attempt delay: full jitter over the
// exponential schedule, floored by the server's Retry-After hint, cut
// short (with an error) when the caller's deadline would expire first.
func (p *RetryPolicy) backoff(ctx context.Context, attempt int, err error) error {
	max := p.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	ceil := p.BaseDelay << uint(attempt)
	if ceil <= 0 || ceil > max {
		ceil = max
	}
	rnd := p.Rand
	if rnd == nil {
		rnd = rand.Float64
	}
	d := time.Duration(rnd() * float64(ceil))
	if ra := retryAfterHint(err); ra > d {
		d = ra
	}
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) < d {
		return context.DeadlineExceeded
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = realSleep
	}
	return sleep(ctx, d)
}

func realSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryAfterHint extracts the server's backoff request from an error.
func retryAfterHint(err error) time.Duration {
	var over *ErrOverload
	if errors.As(err, &over) {
		return over.RetryAfter
	}
	var te *TransportError
	if errors.As(err, &te) {
		return te.RetryAfter
	}
	return 0
}
