package service

import (
	"context"
	"fmt"
	"io"
	"time"

	"sptc/internal/core"
	"sptc/internal/incr"
	"sptc/internal/machine"
	"sptc/internal/trace"
)

// RequestError is a malformed-request failure (unknown level, empty
// source): the daemon maps it to 400, never 500.
type RequestError struct{ Msg string }

func (e *RequestError) Error() string { return e.Msg }

// Env is the execution environment for one request: the server-side (or
// CLI-side) configuration that is deliberately not part of the request
// because it cannot change the result bytes.
type Env struct {
	// Track receives the request's compile+simulate spans; per-request
	// counters are read back from it. Nil disables tracing (counters stay
	// zero).
	Track *trace.Track
	// BaseTrack receives the Compare base job's spans (sptsim's
	// "file/base" track). Nil falls back to Track.
	BaseTrack *trace.Track
	// Incr is the loop-level result store active underneath the
	// whole-program cache (partial hits for edited sources).
	Incr *incr.Store
	// SearchWorkers parallelizes pass 1 (result-invariant).
	SearchWorkers int
	// Engine selects the simulation engine (result-invariant, pinned by
	// the engine-fidelity oracle).
	Engine machine.EngineKind
	// Eng, when non-nil, is a pooled simulation engine owned by the
	// calling worker (per-run machine state reuse).
	Eng *machine.Engine
	// Context cancels the request. Nil means context.Background().
	Context context.Context
	// Out, when non-nil, streams program output during simulation in
	// addition to capturing it (the Local client streams to the CLI's
	// stdout exactly like the pre-service sptsim did).
	Out io.Writer
}

func (e Env) ctx() context.Context {
	if e.Context != nil {
		return e.Context
	}
	return context.Background()
}

func (e Env) engine() *machine.Engine {
	if e.Eng != nil {
		return e.Eng
	}
	return machine.NewEngine()
}

func (e Env) compileOptions(level core.Level, req ReqOptions, tk *trace.Track) core.Options {
	opt := core.DefaultOptions(level)
	opt.Trace = tk
	opt.Context = e.ctx()
	opt.SearchWorkers = e.SearchWorkers
	opt.Incr = e.Incr
	opt.DisableSVP = opt.DisableSVP || req.DisableSVP
	opt.DisableSelection = opt.DisableSelection || req.DisableSelection
	if req.SearchBudget > 0 {
		opt.Partition.MaxSearchNodes = req.SearchBudget
	}
	return opt
}

func parseLevel(name string) (core.Level, error) {
	lvl, ok := core.ParseLevel(name, true)
	if !ok {
		return 0, &RequestError{Msg: fmt.Sprintf("unknown level %q", name)}
	}
	return lvl, nil
}

// ExecCompile runs one compile request in-process and returns its
// deterministic wire response. Meta durations are filled; the cache
// disposition is the caller's business.
func ExecCompile(req *CompileRequest, env Env) (*CompileResponse, error) {
	lvl, err := parseLevel(req.Level)
	if err != nil {
		return nil, err
	}
	opt := env.compileOptions(lvl, req.Options, env.Track)
	start := time.Now()
	res, err := core.CompileSource(req.Name, req.Source, opt)
	if err != nil {
		return nil, err
	}
	resp := CompileData(res, req.Options.Dump)
	resp.Name = req.Name
	resp.Counters = CountersFromTrack(env.Track)
	resp.Meta.Compile = time.Since(start)
	return resp, nil
}

// captureWriter buffers program output, optionally teeing it to a live
// writer (the Local client's stdout stream).
type captureWriter struct {
	buf []byte
	tee io.Writer
}

func (w *captureWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	if w.tee != nil {
		return w.tee.Write(p)
	}
	return len(p), nil
}

func (w *captureWriter) String() string { return string(w.buf) }

// ExecSimulate runs one compile+simulate request in-process: the level
// compile, its simulation, the optional coverage measurement
// (CoverageMaxBody) and the optional Compare base run.
func ExecSimulate(req *SimulateRequest, env Env) (*SimulateResponse, error) {
	lvl, err := parseLevel(req.Level)
	if err != nil {
		return nil, err
	}
	if req.Options.CountersOnly {
		// Both extras exist to measure cycles, which counters-only mode
		// does not produce.
		if req.Compare {
			return nil, &RequestError{Msg: "counters_only skips cycle accounting; compare needs cycles"}
		}
		if req.CoverageMaxBody > 0 {
			return nil, &RequestError{Msg: "counters_only skips cycle accounting; coverage_max_body needs cycles"}
		}
	}
	cfg := machine.DefaultConfig()
	if req.Machine != nil {
		cfg = *req.Machine
	}
	eng := env.engine()

	copt := env.compileOptions(lvl, req.Options, env.Track)
	cstart := time.Now()
	res, err := core.CompileSource(req.Name, req.Source, copt)
	if err != nil {
		return nil, err
	}
	cdur := time.Since(cstart)

	simOpt := core.SimulationOptions(res)
	simOpt.Trace = env.Track
	simOpt.Context = env.ctx()
	simOpt.Engine = env.Engine
	simOpt.CountersOnly = req.Options.CountersOnly
	out := &captureWriter{tee: env.Out}
	simOpt.Out = out
	sstart := time.Now()
	sim, err := eng.Run(res.Prog, cfg, simOpt)
	if err != nil {
		return nil, fmt.Errorf("simulate: %w", err)
	}

	resp := &SimulateResponse{
		Name:    req.Name,
		Level:   lvl.String(),
		Compile: CompileData(res, req.Options.Dump),
		Output:  out.String(),
		Sim:     SimData(sim),
	}
	resp.Compile.Name = req.Name

	if req.CoverageMaxBody > 0 {
		covOpt, sizes := core.CoverageOptions(res.Prog, req.CoverageMaxBody)
		covOpt.Trace = env.Track
		covOpt.TraceName = "coverage"
		covOpt.Context = env.ctx()
		covOpt.Engine = env.Engine
		if len(sizes) > 0 {
			covSim, err := eng.Run(res.Prog, cfg, covOpt)
			if err != nil {
				return nil, fmt.Errorf("coverage simulate: %w", err)
			}
			var covered float64
			for _, c := range covSim.CyclesByLoop {
				covered += c
			}
			if covSim.Cycles > 0 {
				resp.MaxCoverage = covered / covSim.Cycles
			}
		}
	}

	if req.Compare && lvl != core.LevelBase {
		btk := env.BaseTrack
		if btk == nil {
			btk = env.Track
		}
		bopt := env.compileOptions(core.LevelBase, ReqOptions{}, btk)
		baseRes, err := core.CompileSource(req.Name, req.Source, bopt)
		if err != nil {
			return nil, fmt.Errorf("base compile: %w", err)
		}
		baseOpt := core.SimulationOptions(baseRes)
		baseOpt.Trace = btk
		baseOpt.Context = env.ctx()
		baseOpt.Engine = env.Engine
		bout := &captureWriter{}
		baseOpt.Out = bout
		baseSim, err := eng.Run(baseRes.Prog, cfg, baseOpt)
		if err != nil {
			return nil, fmt.Errorf("base simulate: %w", err)
		}
		resp.Base = SimData(baseSim)
		resp.BaseOutput = bout.String()
	}

	resp.Compile.Counters = CountersFromTrack(env.Track)
	resp.Meta.Compile = cdur
	resp.Meta.Simulate = time.Since(sstart)
	return resp, nil
}
