//go:build !race

package service

// raceEnabled reports whether the race detector is compiled in; the
// load test scales its concurrency down under -race to stay within the
// detector's goroutine budget.
const raceEnabled = false
