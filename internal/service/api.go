// Package service is the compilation service: the JSON API types shared
// by the sptd daemon and its clients, the in-process executor the
// daemon's worker pool and the Local client both run, a persistent
// content-addressed response cache layered on the internal/incr record
// log, and the Client interface that lets the sptc/sptsim/sptbench
// front-ends execute either in-process or against a remote daemon.
//
// Response bodies carry only deterministic data — reports, simulation
// counters, degradation events — so a cached response is byte-identical
// to a freshly computed one. Wall-clock durations and the cache
// disposition travel out-of-band (HTTP headers, RespMeta).
package service

import (
	"fmt"
	"sort"
	"time"

	"sptc/internal/core"
	"sptc/internal/ir"
	"sptc/internal/machine"
	"sptc/internal/trace"
)

// RespFormatVersion is folded into every cache key: bumping it after a
// response-schema change invalidates persisted entries instead of
// serving stale shapes.
const RespFormatVersion = 1

// ReqOptions are the result-affecting compilation knobs a client may
// set. Deliberately absent: SearchWorkers and the simulation engine —
// both are pinned result-invariant (worker-invariance and
// engine-fidelity suites), so they stay server-side configuration and
// never fragment the cache.
type ReqOptions struct {
	// DisableSVP turns software value prediction off (ablation).
	DisableSVP bool `json:"disable_svp,omitempty"`
	// DisableSelection transforms every loop with a legal partition
	// regardless of the §6.1 criteria (ablation).
	DisableSelection bool `json:"disable_selection,omitempty"`
	// SearchBudget caps the anytime partition search per loop candidate
	// (0 = unbounded). Note a budgeted compile bypasses the loop-level
	// incr store by design.
	SearchBudget int `json:"search_budget,omitempty"`
	// Dump includes the final IR in the compile response.
	Dump bool `json:"dump,omitempty"`
	// CountersOnly runs the simulation in counters-only mode
	// (machine.RunOptions.CountersOnly): all fidelity counters are
	// bit-identical to a full run, but cycles and the per-loop float
	// timing fields are zero. Rejected together with Compare or
	// CoverageMaxBody, which exist to measure cycles. Being part of the
	// options, it keys the response cache, so full-fidelity and
	// counters-only responses never collide.
	CountersOnly bool `json:"counters_only,omitempty"`
}

// CompileRequest asks for one compilation.
type CompileRequest struct {
	// Name labels the source (file name in diagnostics and traces).
	Name   string `json:"name"`
	Source string `json:"source"`
	// Level is base|basic|best|anticipated.
	Level   string     `json:"level"`
	Options ReqOptions `json:"options,omitempty"`
}

// LoopReport is the wire form of core.LoopReport: flat, lossless for
// every field the CLIs and the evaluation harness read.
type LoopReport struct {
	Func     string `json:"func"`
	LoopID   int    `json:"loop_id"`
	HeaderID int    `json:"header_id"`
	Kind     string `json:"kind"`
	Depth    int    `json:"depth"`

	BodySize   int     `json:"body_size"`
	Iterations float64 `json:"iterations"`
	Entries    float64 `json:"entries"`
	AvgTrip    float64 `json:"avg_trip"`
	VCCount    int     `json:"vc_count"`

	// Partition is the optimal partition summary
	// (partition.Result.String()); empty when the loop was never searched.
	Partition string `json:"partition,omitempty"`
	SVP       bool   `json:"svp,omitempty"`

	Decision string  `json:"decision"`
	Benefit  float64 `json:"benefit"`

	Transformed bool    `json:"transformed,omitempty"`
	SPTLoopID   int     `json:"spt_loop_id,omitempty"`
	EstCost     float64 `json:"est_cost"`
	PreForkSize int     `json:"pre_fork_size"`
	HasCalls    bool    `json:"has_calls,omitempty"`
}

// Counters is the deterministic per-request work accounting, read back
// from the request's trace spans exactly like the evaluation harness's
// Metrics. With serial pass 1 (the daemon default) every field is
// deterministic; with SearchWorkers >= 2 the CostEvals/DedupHits/
// MemoShardHits triple is scheduling-dependent (see partition.Options).
type Counters struct {
	SearchNodes     int64 `json:"search_nodes"`
	CostEvals       int64 `json:"cost_evals"`
	DedupHits       int64 `json:"dedup_hits"`
	Recomputes      int64 `json:"recomputes"`
	SearchWorkers   int64 `json:"search_workers,omitempty"`
	BoundUpdates    int64 `json:"bound_updates"`
	MemoShardHits   int64 `json:"memo_shard_hits"`
	IncrHits        int64 `json:"incr_hits,omitempty"`
	IncrMisses      int64 `json:"incr_misses,omitempty"`
	IncrInvalidated int64 `json:"incr_invalidated,omitempty"`
	SimOps          int64 `json:"sim_ops,omitempty"`
	Degraded        int64 `json:"degraded,omitempty"`
}

// RespMeta is the out-of-band, non-deterministic envelope of a response:
// never part of the response body or the cache, filled by the client
// from HTTP headers (Remote) or measured directly (Local).
type RespMeta struct {
	// Cache is the daemon's disposition: "hit", "miss", "join" (waited on
	// an identical in-flight request), or "" in-process.
	Cache string
	// Compile and Simulate are the request's wall-clock execution times.
	Compile  time.Duration
	Simulate time.Duration
	// Retries counts the failed remote attempts that preceded this
	// response (0 when the first attempt succeeded or retries are off).
	Retries int
	// Fallback reports that a Failover client served this response from
	// its degraded in-process Local after the daemon became unreachable.
	Fallback bool
}

// CompileResponse is the deterministic result of one compilation.
type CompileResponse struct {
	Name         string       `json:"name"`
	Level        string       `json:"level"`
	Reports      []LoopReport `json:"reports"`
	SPTCount     int          `json:"spt_count"`
	Counters     Counters     `json:"counters"`
	Degraded     bool         `json:"degraded,omitempty"`
	Degradations []string     `json:"degradations,omitempty"`
	// IR is the final program listing, present when Options.Dump was set.
	IR string `json:"ir,omitempty"`

	Meta RespMeta `json:"-"`
}

// SimulateRequest asks for a compile + simulation.
type SimulateRequest struct {
	Name    string     `json:"name"`
	Source  string     `json:"source"`
	Level   string     `json:"level"`
	Options ReqOptions `json:"options,omitempty"`
	// Machine overrides the simulated machine configuration (nil = the
	// paper's default config).
	Machine *machine.Config `json:"machine,omitempty"`
	// Compare additionally compiles and simulates the non-SPT base
	// program and reports it in Base/BaseOutput (ignored at level base).
	Compare bool `json:"compare,omitempty"`
	// CoverageMaxBody, when > 0, runs the auxiliary coverage simulation
	// attributing cycles to every natural loop with body size at most
	// this limit, and reports MaxCoverage (the Figure 16 upper bar).
	CoverageMaxBody int `json:"coverage_max_body,omitempty"`
}

// SimLoop is the wire form of machine.LoopStats (minus the redundant ID,
// which is the map key).
type SimLoop struct {
	Invocations  int64   `json:"invocations"`
	Iterations   int64   `json:"iterations"`
	SpecIters    int64   `json:"spec_iters"`
	MisspecIters int64   `json:"misspec_iters"`
	SpecOps      int64   `json:"spec_ops"`
	ReexecOps    int64   `json:"reexec_ops"`
	SpecCycles   float64 `json:"spec_cycles"`
	ReexecCycles float64 `json:"reexec_cycles"`
	SeqCycles    float64 `json:"seq_cycles"`
	Elapsed      float64 `json:"elapsed"`
	Forks        int64   `json:"forks"`
	Kills        int64   `json:"kills"`
}

// ReexecRatio mirrors machine.LoopStats.ReexecRatio.
func (l *SimLoop) ReexecRatio() float64 {
	if l.SpecOps == 0 {
		return 0
	}
	return float64(l.ReexecOps) / float64(l.SpecOps)
}

// LoopSpeedup mirrors machine.LoopStats.LoopSpeedup.
func (l *SimLoop) LoopSpeedup() float64 {
	if l.Elapsed == 0 {
		return 1
	}
	return l.SeqCycles / l.Elapsed
}

// SimSummary is the wire form of machine.Result.
type SimSummary struct {
	Cycles        float64          `json:"cycles"`
	Ops           int64            `json:"ops"`
	BranchLookups int64            `json:"branch_lookups"`
	BranchMisses  int64            `json:"branch_misses"`
	MemAccesses   int64            `json:"mem_accesses"`
	Loops         map[int]*SimLoop `json:"loops,omitempty"`
}

// IPC mirrors machine.Result.IPC.
func (s *SimSummary) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Ops) / s.Cycles
}

// SimulateResponse is the deterministic result of one compile+simulate.
type SimulateResponse struct {
	Name    string           `json:"name"`
	Level   string           `json:"level"`
	Compile *CompileResponse `json:"compile"`
	// Output is the program's captured output (byte-identical across
	// levels for a correct transformation).
	Output string      `json:"output"`
	Sim    *SimSummary `json:"sim"`
	// MaxCoverage is filled when CoverageMaxBody > 0.
	MaxCoverage float64 `json:"max_coverage,omitempty"`
	// Base/BaseOutput are filled when Compare was set at a non-base level.
	Base       *SimSummary `json:"base,omitempty"`
	BaseOutput string      `json:"base_output,omitempty"`

	Meta RespMeta `json:"-"`
}

// ---- core/machine -> wire conversions ----

// CompileData converts a core result to its wire form. The conversion is
// lossless for every field the CLIs and the harness consume, so local
// and remote execution render identical bytes.
func CompileData(res *core.Result, dump bool) *CompileResponse {
	resp := &CompileResponse{
		Level:    res.Level.String(),
		SPTCount: len(res.SPT),
		Degraded: res.Degraded(),
	}
	for _, r := range res.Reports {
		lr := LoopReport{
			Func:        r.Func,
			LoopID:      r.LoopID,
			HeaderID:    r.HeaderID,
			Kind:        r.Kind.String(),
			Depth:       r.Depth,
			BodySize:    r.BodySize,
			Iterations:  r.Iterations,
			Entries:     r.Entries,
			AvgTrip:     r.AvgTrip,
			VCCount:     r.VCCount,
			SVP:         r.SVP,
			Decision:    r.Decision.String(),
			Benefit:     r.Benefit,
			Transformed: r.Transformed,
			SPTLoopID:   r.SPTLoopID,
			EstCost:     r.EstCost,
			PreForkSize: r.PreForkSize,
			HasCalls:    r.HasCalls,
		}
		if r.Partition != nil {
			lr.Partition = r.Partition.String()
		}
		resp.Reports = append(resp.Reports, lr)
	}
	for _, ev := range res.Degradations {
		resp.Degradations = append(resp.Degradations, ev.String())
	}
	if dump {
		resp.IR = ir.FormatProgram(res.Prog)
	}
	return resp
}

// SimData converts a machine result to its wire form.
func SimData(sim *machine.Result) *SimSummary {
	s := &SimSummary{
		Cycles:        sim.Cycles,
		Ops:           sim.Ops,
		BranchLookups: sim.BranchLookups,
		BranchMisses:  sim.BranchMisses,
		MemAccesses:   sim.MemAccesses,
	}
	if len(sim.Loops) > 0 {
		s.Loops = make(map[int]*SimLoop, len(sim.Loops))
		for id, ls := range sim.Loops {
			s.Loops[id] = &SimLoop{
				Invocations:  ls.Invocations,
				Iterations:   ls.Iterations,
				SpecIters:    ls.SpecIters,
				MisspecIters: ls.MisspecIters,
				SpecOps:      ls.SpecOps,
				ReexecOps:    ls.ReexecOps,
				SpecCycles:   ls.SpecCycles,
				ReexecCycles: ls.ReexecCycles,
				SeqCycles:    ls.SeqCycles,
				Elapsed:      ls.Elapsed,
				Forks:        ls.Forks,
				Kills:        ls.Kills,
			}
		}
	}
	return s
}

// CountersFromTrack reads the request's work counters back from its
// completed trace spans, mirroring the harness's metricsFromTrack so the
// wire counters and a local run's metrics agree by construction.
func CountersFromTrack(tk *trace.Track) Counters {
	if tk == nil {
		return Counters{}
	}
	c := Counters{
		SearchNodes:     tk.SumInt("loop", "search_nodes"),
		CostEvals:       tk.SumInt("loop", "cost_evals"),
		DedupHits:       tk.SumInt("loop", "dedup_hits"),
		Recomputes:      tk.SumInt("loop", "recomputes"),
		BoundUpdates:    tk.SumInt("loop", "bound_updates"),
		MemoShardHits:   tk.SumInt("loop", "memo_shard_hits"),
		Degraded:        tk.SumInt("pass1", "degraded") + tk.SumInt("transform", "degraded"),
		IncrHits:        tk.SumInt("pass1", "incr_hits"),
		IncrMisses:      tk.SumInt("pass1", "incr_misses"),
		IncrInvalidated: tk.SumInt("pass1", "incr_invalidated"),
	}
	for _, s := range tk.Spans() {
		if s.Name != "loop" {
			continue
		}
		if v, ok := s.Int64("search_workers"); ok && v > c.SearchWorkers {
			c.SearchWorkers = v
		}
	}
	if v, ok := tk.Find("simulate").Int64("sim_instructions"); ok {
		c.SimOps = v
	}
	return c
}

// ---- wire -> core/machine reconstructions ----

// ReconstructCompile rebuilds the core result skeleton the evaluation
// harness's figure extraction reads (reports with typed decisions, the
// SPT loop list) from a wire response. IR-backed fields (Prog, Func,
// Header) stay nil: everything derived from them travels explicitly on
// the wire (HasCalls, Partition summaries).
func ReconstructCompile(resp *CompileResponse) (*core.Result, error) {
	lvl, ok := core.ParseLevel(resp.Level, true)
	if !ok {
		return nil, fmt.Errorf("service: response has unknown level %q", resp.Level)
	}
	res := &core.Result{Level: lvl}
	for i := range resp.Reports {
		r := &resp.Reports[i]
		d, ok := core.ParseDecision(r.Decision)
		if !ok {
			return nil, fmt.Errorf("service: response has unknown decision %q", r.Decision)
		}
		rep := &core.LoopReport{
			Func:        r.Func,
			LoopID:      r.LoopID,
			HeaderID:    r.HeaderID,
			Depth:       r.Depth,
			BodySize:    r.BodySize,
			Iterations:  r.Iterations,
			Entries:     r.Entries,
			AvgTrip:     r.AvgTrip,
			VCCount:     r.VCCount,
			SVP:         r.SVP,
			Decision:    d,
			Benefit:     r.Benefit,
			Transformed: r.Transformed,
			SPTLoopID:   r.SPTLoopID,
			EstCost:     r.EstCost,
			PreForkSize: r.PreForkSize,
			HasCalls:    r.HasCalls,
		}
		res.Reports = append(res.Reports, rep)
		if rep.Transformed {
			res.SPT = append(res.SPT, &core.SPTLoop{ID: rep.SPTLoopID, Report: rep})
		}
	}
	// SPT lists are ID-ordered by construction in the compiler; the
	// report order on the wire preserves that, but sort defensively.
	sort.Slice(res.SPT, func(i, j int) bool { return res.SPT[i].ID < res.SPT[j].ID })
	return res, nil
}

// ReconstructSim rebuilds the machine result the harness reads from a
// wire summary.
func ReconstructSim(s *SimSummary) *machine.Result {
	sim := &machine.Result{
		Cycles:        s.Cycles,
		Ops:           s.Ops,
		BranchLookups: s.BranchLookups,
		BranchMisses:  s.BranchMisses,
		MemAccesses:   s.MemAccesses,
	}
	if len(s.Loops) > 0 {
		sim.Loops = make(map[int]*machine.LoopStats, len(s.Loops))
		for id, l := range s.Loops {
			sim.Loops[id] = &machine.LoopStats{
				ID:           id,
				Invocations:  l.Invocations,
				Iterations:   l.Iterations,
				SpecIters:    l.SpecIters,
				MisspecIters: l.MisspecIters,
				SpecOps:      l.SpecOps,
				ReexecOps:    l.ReexecOps,
				SpecCycles:   l.SpecCycles,
				ReexecCycles: l.ReexecCycles,
				SeqCycles:    l.SeqCycles,
				Elapsed:      l.Elapsed,
				Forks:        l.Forks,
				Kills:        l.Kills,
			}
		}
	}
	return sim
}
