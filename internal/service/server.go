package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sptc/internal/incr"
	"sptc/internal/machine"
	"sptc/internal/resilience"
	"sptc/internal/trace"
)

// Config parameterizes the daemon.
type Config struct {
	// Addr is the listen address (":8347" by default; ":0" picks a free
	// port, readable from Server.Addr after Start).
	Addr string
	// QueueDepth bounds the admission queue: a request arriving with
	// QueueDepth tasks already waiting is rejected with HTTP 429 instead
	// of queueing unboundedly (default 256).
	QueueDepth int
	// Workers bounds concurrent request execution (default NumCPU). Each
	// worker owns one pooled simulation engine.
	Workers int
	// ReqTimeout bounds one request's execution wall clock; an expired
	// request answers 504 while the daemon keeps serving (default 0:
	// unbounded). Implemented by cancellation without a context deadline,
	// so the loop-level incr store stays active under it.
	ReqTimeout time.Duration
	// CachePath persists the whole-program response cache across
	// restarts (empty: in-memory only).
	CachePath string
	// IncrPath persists the loop-level incremental store active
	// underneath the response cache (empty: disabled).
	IncrPath string
	// MaxSource caps the request body size in bytes (default 4 MiB).
	MaxSource int64
	// SearchWorkers parallelizes pass 1 inside each request
	// (result-invariant; default 0 = serial, concurrency comes from the
	// worker pool).
	SearchWorkers int
	// Engine selects the simulation engine (result-invariant).
	Engine machine.EngineKind
	// TraceTracks caps the rotating /debug/trace buffer: after this many
	// request tracks the tracer is swapped fresh (default 64).
	TraceTracks int
	// DrainTimeout bounds the graceful-shutdown drain of in-flight
	// requests (default 30s).
	DrainTimeout time.Duration
	// FlushInterval periodically appends both persistent stores' pending
	// records to disk (no compaction), so a hard kill (SIGKILL, OOM,
	// power loss) loses at most one flush window of results instead of
	// everything since startup. 0 disables periodic flushing (graceful
	// shutdown still saves).
	FlushInterval time.Duration
	// FlushEveryN additionally triggers a flush after every Nth cache
	// miss, bounding loss under miss-heavy load independently of the
	// ticker. 0 disables the miss-count trigger.
	FlushEveryN int
	// FlushSync fsyncs after every flush append, extending the
	// durability guarantee from process death to power loss.
	FlushSync bool
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8347"
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.MaxSource <= 0 {
		c.MaxSource = 4 << 20
	}
	if c.TraceTracks <= 0 {
		c.TraceTracks = 64
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	return c
}

// Metrics is the /metrics snapshot: admission and outcome counters plus
// cumulative work sums read back from the per-request internal/trace
// spans.
type Metrics struct {
	Requests      int64 `json:"requests"`
	InFlight      int64 `json:"in_flight"`
	QueueRejects  int64 `json:"queue_rejects"`
	Compiles      int64 `json:"compiles"`
	Simulates     int64 `json:"simulates"`
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	StampedeJoins int64 `json:"stampede_joins"`
	Degraded      int64 `json:"degraded"`
	Errors        int64 `json:"errors"`
	Timeouts      int64 `json:"timeouts"`
	Panics        int64 `json:"panics"`
	SearchNodes   int64 `json:"search_nodes"`
	SimOps        int64 `json:"sim_ops"`
	CacheEntries  int64 `json:"cache_entries"`
	IncrEntries   int64 `json:"incr_entries"`
	// Flushes counts completed durability flushes of the persistent
	// stores (every entry cached before flush N is on disk when the
	// counter reads N); FlushErrors counts failed flush attempts (the
	// next graceful save compacts and recovers).
	Flushes     int64 `json:"flushes"`
	FlushErrors int64 `json:"flush_errors"`
	// MeanServiceUs is the exponentially-weighted mean execution time of
	// recent requests, the base of the 429 Retry-After estimate.
	MeanServiceUs int64 `json:"mean_service_us"`
}

type counters struct {
	requests, inFlight, queueRejects      atomic.Int64
	compiles, simulates                   atomic.Int64
	cacheHits, cacheMisses, stampedeJoins atomic.Int64
	degraded, errorsN, timeouts, panics   atomic.Int64
	searchNodes, simOps                   atomic.Int64
	flushes, flushErrors                  atomic.Int64
	meanSvcUs                             atomic.Int64 // EWMA, microseconds
	missSinceFlush                        atomic.Int64
}

// Server is the sptd daemon.
type Server struct {
	cfg   Config
	cache *Cache
	store *incr.Store
	mux   *http.ServeMux
	hs    *http.Server
	ln    net.Listener
	tasks chan *task
	wg    sync.WaitGroup
	ctr   counters
	seq   atomic.Int64

	traceMu sync.Mutex
	tracer  *trace.Tracer
	tracks  int

	baseCtx    context.Context
	baseCancel context.CancelFunc

	flushKick chan struct{}
	flushStop chan struct{}
	flushDone chan struct{}
}

type task struct {
	kind byte
	creq *CompileRequest
	sreq *SimulateRequest
	done chan taskResult
}

type taskResult struct {
	status int
	body   []byte
	disp   string
	meta   RespMeta
}

// NewServer builds a daemon, loading (or creating) its persistent
// caches. Corrupt cache files are salvaged fail-soft by the record log;
// only real I/O errors surface.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, tracer: trace.New()}
	if cfg.CachePath != "" {
		c, err := OpenCache(cfg.CachePath)
		if err != nil {
			return nil, fmt.Errorf("open response cache %s: %w", cfg.CachePath, err)
		}
		s.cache = c
	} else {
		s.cache = NewCache()
	}
	if cfg.IncrPath != "" {
		st, err := incr.Open(cfg.IncrPath)
		if err != nil {
			return nil, fmt.Errorf("open incr store %s: %w", cfg.IncrPath, err)
		}
		s.store = st
	}
	if cfg.FlushSync {
		s.cache.SetSync(incr.SyncFlush)
		if s.store != nil {
			s.store.SetSync(incr.SyncFlush)
		}
	}
	s.flushKick = make(chan struct{}, 1)
	s.tasks = make(chan *task, cfg.QueueDepth)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/compile", s.handleCompile)
	s.mux.HandleFunc("/v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/trace", s.handleTrace)
	s.hs = &http.Server{Handler: s.mux}
	return s, nil
}

// Cache exposes the response cache (tests, metrics).
func (s *Server) Cache() *Cache { return s.cache }

// Start binds the listener and launches the worker pool. Serving begins
// in the background; Run (or Wait on the returned listener) completes
// the lifecycle.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.cfg.FlushInterval > 0 || s.cfg.FlushEveryN > 0 {
		s.flushStop = make(chan struct{})
		s.flushDone = make(chan struct{})
		go s.flusher()
	}
	return nil
}

// flusher is the durability loop: it flushes both persistent stores on
// the -flush-interval ticker and whenever the miss counter kicks it, so
// a hard kill loses at most one flush window.
func (s *Server) flusher() {
	defer close(s.flushDone)
	var tick <-chan time.Time
	if s.cfg.FlushInterval > 0 {
		t := time.NewTicker(s.cfg.FlushInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-tick:
		case <-s.flushKick:
		case <-s.flushStop:
			return
		}
		s.flushStores()
	}
}

// flushStores appends both stores' pending records to disk. The flush
// counter increments only after every store flushed cleanly, so readers
// of /metrics can rely on "flushes == N implies everything cached before
// flush N is durable". A failed flush is counted and survived: the log
// marks itself for a compacting rewrite on the next save.
func (s *Server) flushStores() {
	ok := true
	if err := s.cache.Flush(); err != nil {
		ok = false
	}
	if s.store != nil {
		if err := s.store.Flush(); err != nil {
			ok = false
		}
	}
	if ok {
		s.ctr.flushes.Add(1)
	} else {
		s.ctr.flushErrors.Add(1)
	}
}

// kickFlush requests an asynchronous flush (coalesced when one is
// already pending).
func (s *Server) kickFlush() {
	if s.flushStop == nil {
		return
	}
	select {
	case s.flushKick <- struct{}{}:
	default:
	}
}

// Addr returns the bound listen address (after Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// URL returns the daemon base URL (after Start).
func (s *Server) URL() string { return "http://" + s.Addr() }

// Run serves until ctx is canceled, then shuts down gracefully: the
// listener closes, in-flight requests drain (bounded by DrainTimeout),
// the worker pool exits, and both persistent caches are saved. The
// returned error is nil on a clean shutdown.
func (s *Server) Run(ctx context.Context) error {
	if s.ln == nil {
		if err := s.Start(); err != nil {
			return err
		}
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.hs.Serve(s.ln) }()

	var err error
	select {
	case err = <-serveErr:
		// Listener failure: tear down the pool and report.
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
	case <-ctx.Done():
		drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		if serr := s.hs.Shutdown(drainCtx); serr != nil && !errors.Is(serr, context.DeadlineExceeded) {
			err = serr
		}
		cancel()
		<-serveErr
	}

	// All handlers have returned: no more enqueues. Drain the pool.
	close(s.tasks)
	s.wg.Wait()
	s.baseCancel()
	if s.flushStop != nil {
		close(s.flushStop)
		<-s.flushDone
	}

	if cerr := s.cache.Save(); cerr != nil && err == nil {
		err = fmt.Errorf("save response cache: %w", cerr)
	}
	if s.store != nil {
		if ierr := s.store.Save(); ierr != nil && err == nil {
			err = fmt.Errorf("save incr store: %w", ierr)
		}
	}
	return err
}

// newTrack allocates a request track on the rotating debug tracer.
func (s *Server) newTrack(label string) *trace.Track {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	if s.tracks >= s.cfg.TraceTracks {
		s.tracer = trace.New()
		s.tracks = 0
	}
	s.tracks++
	return s.tracer.StartTrack(label)
}

func (s *Server) worker() {
	defer s.wg.Done()
	// Each worker owns one simulation engine: per-run machine state
	// (memory image, predictor tables, frame pools) is reused across the
	// requests it executes.
	eng := machine.NewEngine()
	for t := range s.tasks {
		t.done <- s.execute(t, eng)
	}
}

// execute runs one admitted task under the per-request resilience
// envelope: panic isolation, soft timeout by cancellation (no context
// deadline, so the incr store stays active), single-flight caching.
func (s *Server) execute(t *task, eng *machine.Engine) taskResult {
	s.ctr.inFlight.Add(1)
	defer s.ctr.inFlight.Add(-1)
	start := time.Now()
	defer func() { s.observeServiceTime(time.Since(start)) }()

	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	var timedOut atomic.Bool
	if s.cfg.ReqTimeout > 0 {
		timer := time.AfterFunc(s.cfg.ReqTimeout, func() {
			timedOut.Store(true)
			cancel()
		})
		defer timer.Stop()
	}

	var (
		key   CacheKey
		label string
		run   func(env Env) (body []byte, cacheable bool, meta RespMeta, counters Counters, err error)
	)
	switch t.kind {
	case kindCompile:
		req := t.creq
		s.ctr.compiles.Add(1)
		key = CompileKey(req)
		label = fmt.Sprintf("%s/%s#%d", req.Name, req.Level, s.seq.Add(1))
		run = func(env Env) ([]byte, bool, RespMeta, Counters, error) {
			resp, err := ExecCompile(req, env)
			if err != nil {
				return nil, false, RespMeta{}, Counters{}, err
			}
			b, err := json.Marshal(resp)
			return b, !resp.Degraded, resp.Meta, resp.Counters, err
		}
	default:
		req := t.sreq
		s.ctr.simulates.Add(1)
		key = SimulateKey(req)
		label = fmt.Sprintf("%s/%s#%d", req.Name, req.Level, s.seq.Add(1))
		run = func(env Env) ([]byte, bool, RespMeta, Counters, error) {
			resp, err := ExecSimulate(req, env)
			if err != nil {
				return nil, false, RespMeta{}, Counters{}, err
			}
			b, err := json.Marshal(resp)
			return b, !resp.Compile.Degraded, resp.Meta, resp.Compile.Counters, err
		}
	}

	var meta RespMeta
	var degraded bool
	body, disp, err := s.cache.GetOrCompute(key, func() ([]byte, bool, error) {
		env := Env{
			Track:         s.newTrack(label),
			Incr:          s.store,
			SearchWorkers: s.cfg.SearchWorkers,
			Engine:        s.cfg.Engine,
			Eng:           eng,
			Context:       ctx,
		}
		var (
			b         []byte
			cacheable bool
		)
		gerr := resilience.Guard(func() error {
			var rerr error
			var c Counters
			b, cacheable, meta, c, rerr = run(env)
			if rerr == nil {
				s.ctr.searchNodes.Add(c.SearchNodes)
				s.ctr.simOps.Add(c.SimOps)
			}
			return rerr
		})
		if gerr == nil && !cacheable {
			degraded = true
		}
		return b, cacheable, gerr
	})

	switch disp {
	case DispHit:
		s.ctr.cacheHits.Add(1)
	case DispMiss:
		s.ctr.cacheMisses.Add(1)
		if n := s.cfg.FlushEveryN; n > 0 && s.ctr.missSinceFlush.Add(1)%int64(n) == 0 {
			s.kickFlush()
		}
	case DispJoin:
		s.ctr.stampedeJoins.Add(1)
	}
	if err != nil {
		return s.errorResult(err, timedOut.Load(), disp)
	}
	if degraded {
		s.ctr.degraded.Add(1)
	}
	meta.Cache = disp
	return taskResult{status: http.StatusOK, body: body, disp: disp, meta: meta}
}

// errorResult classifies a request failure into (status, kind) and
// counts it. The daemon survives every shape: a poison request degrades
// its own response, never the process.
func (s *Server) errorResult(err error, timedOut bool, disp string) taskResult {
	s.ctr.errorsN.Add(1)
	status, kind := http.StatusInternalServerError, errKindInternal
	var reqErr *RequestError
	switch {
	case errors.As(err, &reqErr):
		status, kind = http.StatusBadRequest, errKindRequest
	case resilience.ReasonFor(err) == resilience.ReasonPanic:
		s.ctr.panics.Add(1)
		status, kind = http.StatusInternalServerError, errKindPanic
	case timedOut && (errors.Is(err, context.Canceled) || resilience.ReasonFor(err) == resilience.ReasonTimeout || resilience.ReasonFor(err) == resilience.ReasonCanceled):
		s.ctr.timeouts.Add(1)
		status, kind = http.StatusGatewayTimeout, errKindTimeout
	case resilience.ReasonFor(err) == resilience.ReasonTimeout:
		s.ctr.timeouts.Add(1)
		status, kind = http.StatusGatewayTimeout, errKindTimeout
	case resilience.ReasonFor(err) == resilience.ReasonCanceled:
		status, kind = http.StatusServiceUnavailable, errKindCanceled
	default:
		// Front-end failures (parse, sem, verify) are the request's
		// fault: 400 with the compiler's message.
		status, kind = http.StatusBadRequest, errKindCompile
	}
	body, _ := json.Marshal(errorBody{Error: err.Error(), Kind: kind})
	return taskResult{status: status, body: body, disp: disp}
}

// observeServiceTime folds one request's execution time into the EWMA
// the 429 Retry-After estimate is derived from (alpha = 1/8).
func (s *Server) observeServiceTime(d time.Duration) {
	us := d.Microseconds()
	for {
		old := s.ctr.meanSvcUs.Load()
		next := us
		if old > 0 {
			next = old + (us-old)/8
		}
		if s.ctr.meanSvcUs.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfter estimates how long an overloaded client should back off:
// the time to drain a full queue at the recent mean service rate,
// floored at one second (the header's resolution) so clients never
// hammer a saturated daemon.
func (s *Server) retryAfter() time.Duration {
	mean := time.Duration(s.ctr.meanSvcUs.Load()) * time.Microsecond
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	d := mean * time.Duration(s.cfg.QueueDepth) / time.Duration(workers)
	if d < time.Second {
		d = time.Second
	}
	return d.Round(time.Second)
}

// admit enqueues a task or rejects it with 429 when the queue is full.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, t *task) {
	s.ctr.requests.Add(1)
	select {
	case s.tasks <- t:
	default:
		s.ctr.queueRejects.Add(1)
		ra := s.retryAfter()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int64(ra/time.Second)))
		writeJSONError(w, http.StatusTooManyRequests, errorBody{
			Error: fmt.Sprintf("queue full (%d deep): retry after %s", s.cfg.QueueDepth, ra),
			Kind:  errKindOverload,
		})
		return
	}
	select {
	case res := <-t.done:
		h := w.Header()
		h.Set("Content-Type", "application/json")
		if res.disp != "" {
			h.Set("X-Sptd-Cache", res.disp)
		}
		h.Set("X-Sptd-Compile-Us", fmt.Sprintf("%d", res.meta.Compile.Microseconds()))
		h.Set("X-Sptd-Simulate-Us", fmt.Sprintf("%d", res.meta.Simulate.Microseconds()))
		w.WriteHeader(res.status)
		w.Write(res.body)
	case <-r.Context().Done():
		// Client went away; the worker still completes (and caches) the
		// task via the buffered done channel.
		writeJSONError(w, http.StatusServiceUnavailable, errorBody{Error: "client canceled", Kind: errKindCanceled})
	}
}

func writeJSONError(w http.ResponseWriter, status int, eb errorBody) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, _ := json.Marshal(eb)
	w.Write(b)
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required", Kind: errKindRequest})
		return false
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxSource)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		writeJSONError(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error(), Kind: errKindRequest})
		return false
	}
	return true
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	req := new(CompileRequest)
	if !s.decode(w, r, req) {
		return
	}
	if _, err := parseLevel(req.Level); err != nil {
		writeJSONError(w, http.StatusBadRequest, errorBody{Error: err.Error(), Kind: errKindRequest})
		return
	}
	s.admit(w, r, &task{kind: kindCompile, creq: req, done: make(chan taskResult, 1)})
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	req := new(SimulateRequest)
	if !s.decode(w, r, req) {
		return
	}
	if _, err := parseLevel(req.Level); err != nil {
		writeJSONError(w, http.StatusBadRequest, errorBody{Error: err.Error(), Kind: errKindRequest})
		return
	}
	s.admit(w, r, &task{kind: kindSimulate, sreq: req, done: make(chan taskResult, 1)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Snapshot returns the current metrics.
func (s *Server) Snapshot() Metrics {
	m := Metrics{
		Requests:      s.ctr.requests.Load(),
		InFlight:      s.ctr.inFlight.Load(),
		QueueRejects:  s.ctr.queueRejects.Load(),
		Compiles:      s.ctr.compiles.Load(),
		Simulates:     s.ctr.simulates.Load(),
		CacheHits:     s.ctr.cacheHits.Load(),
		CacheMisses:   s.ctr.cacheMisses.Load(),
		StampedeJoins: s.ctr.stampedeJoins.Load(),
		Degraded:      s.ctr.degraded.Load(),
		Errors:        s.ctr.errorsN.Load(),
		Timeouts:      s.ctr.timeouts.Load(),
		Panics:        s.ctr.panics.Load(),
		SearchNodes:   s.ctr.searchNodes.Load(),
		SimOps:        s.ctr.simOps.Load(),
		CacheEntries:  int64(s.cache.Len()),
		Flushes:       s.ctr.flushes.Load(),
		FlushErrors:   s.ctr.flushErrors.Load(),
		MeanServiceUs: s.ctr.meanSvcUs.Load(),
	}
	if s.store != nil {
		m.IncrEntries = int64(s.store.Len())
	}
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Snapshot())
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	s.traceMu.Lock()
	tr := s.tracer
	s.traceMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	tr.WriteChrome(w)
}
