package service

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheKeyDerivation(t *testing.T) {
	base := &CompileRequest{Name: "a.spl", Source: "func main() {}", Level: "best"}
	k := CompileKey(base)

	same := &CompileRequest{Name: "a.spl", Source: "func main() {}", Level: "best"}
	if CompileKey(same) != k {
		t.Error("identical requests produced different keys")
	}

	variants := map[string]*CompileRequest{
		"level":   {Name: "a.spl", Source: "func main() {}", Level: "basic"},
		"source":  {Name: "a.spl", Source: "func main() { }", Level: "best"},
		"name":    {Name: "b.spl", Source: "func main() {}", Level: "best"},
		"options": {Name: "a.spl", Source: "func main() {}", Level: "best", Options: ReqOptions{DisableSVP: true}},
		"dump":    {Name: "a.spl", Source: "func main() {}", Level: "best", Options: ReqOptions{Dump: true}},
		"budget":  {Name: "a.spl", Source: "func main() {}", Level: "best", Options: ReqOptions{SearchBudget: 10}},
	}
	for what, req := range variants {
		if CompileKey(req) == k {
			t.Errorf("changing %s did not change the cache key", what)
		}
	}

	// A simulate request never shares a key with a compile request.
	sk := SimulateKey(&SimulateRequest{Name: "a.spl", Source: "func main() {}", Level: "best"})
	if sk == k {
		t.Error("simulate and compile requests share a key")
	}
	sk2 := SimulateKey(&SimulateRequest{Name: "a.spl", Source: "func main() {}", Level: "best", Compare: true})
	if sk2 == sk {
		t.Error("Compare did not change the simulate key")
	}
}

func TestGetOrComputeDispositions(t *testing.T) {
	c := NewCache()
	key := CacheKey{Kind: kindCompile, Src: 1, Opt: 2}

	data, disp, err := c.GetOrCompute(key, func() ([]byte, bool, error) { return []byte("r1"), true, nil })
	if err != nil || disp != DispMiss || string(data) != "r1" {
		t.Fatalf("first call: data=%q disp=%q err=%v, want r1/miss/nil", data, disp, err)
	}
	data, disp, err = c.GetOrCompute(key, func() ([]byte, bool, error) {
		t.Fatal("compute ran for a cached key")
		return nil, false, nil
	})
	if err != nil || disp != DispHit || string(data) != "r1" {
		t.Fatalf("second call: data=%q disp=%q err=%v, want r1/hit/nil", data, disp, err)
	}

	// Errors and non-cacheable (degraded) results never enter the cache.
	ekey := CacheKey{Kind: kindCompile, Src: 3, Opt: 4}
	if _, _, err := c.GetOrCompute(ekey, func() ([]byte, bool, error) { return nil, false, fmt.Errorf("boom") }); err == nil {
		t.Fatal("compute error was swallowed")
	}
	if _, ok := c.Get(ekey); ok {
		t.Error("failed computation was cached")
	}
	dkey := CacheKey{Kind: kindCompile, Src: 5, Opt: 6}
	if _, disp, _ := c.GetOrCompute(dkey, func() ([]byte, bool, error) { return []byte("degraded"), false, nil }); disp != DispMiss {
		t.Fatalf("disp = %q, want miss", disp)
	}
	if _, ok := c.Get(dkey); ok {
		t.Error("non-cacheable (degraded) result was cached")
	}
	// The degraded result is recomputed on retry, not served.
	if _, disp, _ := c.GetOrCompute(dkey, func() ([]byte, bool, error) { return []byte("retry"), true, nil }); disp != DispMiss {
		t.Errorf("retry after degraded result: disp = %q, want miss", disp)
	}
}

// TestCacheStampede pins the single-flight contract: N identical
// concurrent requests cost exactly one computation; everyone gets the
// same bytes.
func TestCacheStampede(t *testing.T) {
	c := NewCache()
	key := CacheKey{Kind: kindCompile, Src: 7, Opt: 8}
	const n = 64

	var computes atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	dispCounts := make([]string, n)
	datas := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			data, disp, err := c.GetOrCompute(key, func() ([]byte, bool, error) {
				computes.Add(1)
				return []byte("the-one-result"), true, nil
			})
			if err != nil {
				t.Errorf("request %d: %v", i, err)
			}
			dispCounts[i] = disp
			datas[i] = data
		}(i)
	}
	close(gate)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Errorf("computations = %d, want exactly 1 for %d concurrent identical requests", got, n)
	}
	misses := 0
	for i, d := range dispCounts {
		if d == DispMiss {
			misses++
		}
		if !bytes.Equal(datas[i], []byte("the-one-result")) {
			t.Errorf("request %d got %q", i, datas[i])
		}
	}
	if misses != 1 {
		t.Errorf("misses = %d, want 1 (rest joins or hits)", misses)
	}
}

func TestCachePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "svc.cache")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]CacheKey, 5)
	for i := range keys {
		keys[i] = CacheKey{Kind: kindCompile, Src: uint64(i), Opt: uint64(i * 7)}
		body := []byte(fmt.Sprintf(`{"resp":%d}`, i))
		if _, disp, err := c.GetOrCompute(keys[i], func() ([]byte, bool, error) { return body, true, nil }); err != nil || disp != DispMiss {
			t.Fatalf("seed %d: disp=%q err=%v", i, disp, err)
		}
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}

	// Restart: every response survives byte-identically.
	c2, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Salvaged() {
		t.Error("clean cache file reported salvage")
	}
	if c2.Len() != len(keys) {
		t.Fatalf("reloaded %d entries, want %d", c2.Len(), len(keys))
	}
	for i, k := range keys {
		data, disp, err := c2.GetOrCompute(k, func() ([]byte, bool, error) {
			t.Fatalf("key %d recomputed after restart", i)
			return nil, false, nil
		})
		if err != nil || disp != DispHit {
			t.Fatalf("key %d after restart: disp=%q err=%v", i, disp, err)
		}
		if want := fmt.Sprintf(`{"resp":%d}`, i); string(data) != want {
			t.Errorf("key %d: data %q, want %q", i, data, want)
		}
	}
}

// TestCacheSalvage extends the incr error-path coverage to the service
// cache file: truncation and corruption lose at most the damaged tail,
// and the next Save compacts the file back to a clean state.
func TestCacheSalvage(t *testing.T) {
	seed := func(t *testing.T, path string, n int) {
		c, err := OpenCache(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			key := CacheKey{Kind: kindSimulate, Src: uint64(i), Opt: 9}
			body := []byte(fmt.Sprintf(`{"n":%d}`, i))
			c.GetOrCompute(key, func() ([]byte, bool, error) { return body, true, nil })
		}
		if err := c.Save(); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("truncated-mid-record", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "svc.cache")
		seed(t, path, 4)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
			t.Fatal(err)
		}
		c, err := OpenCache(path)
		if err != nil {
			t.Fatalf("truncated cache must salvage, got %v", err)
		}
		if !c.Salvaged() {
			t.Error("Salvaged() = false after truncation")
		}
		if c.Len() != 3 {
			t.Errorf("salvaged %d entries, want 3 (longest valid prefix)", c.Len())
		}
	})

	t.Run("corrupt-byte", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "svc.cache")
		seed(t, path, 4)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xFF
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		c, err := OpenCache(path)
		if err != nil {
			t.Fatalf("corrupt cache must salvage, got %v", err)
		}
		if !c.Salvaged() {
			t.Error("Salvaged() = false after corruption")
		}
		if c.Len() >= 4 {
			t.Errorf("salvaged %d entries, want fewer than 4", c.Len())
		}

		// The next Save compacts: a fresh open sees a clean file again.
		if err := c.Save(); err != nil {
			t.Fatal(err)
		}
		c2, err := OpenCache(path)
		if err != nil {
			t.Fatal(err)
		}
		if c2.Salvaged() {
			t.Error("cache still salvaging after compacting Save")
		}
		if c2.Len() != c.Len() {
			t.Errorf("compacted file has %d entries, want %d", c2.Len(), c.Len())
		}
	})

	t.Run("wrong-magic", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "svc.cache")
		if err := os.WriteFile(path, []byte("not a cache file at all"), 0o644); err != nil {
			t.Fatal(err)
		}
		c, err := OpenCache(path)
		if err != nil {
			t.Fatalf("foreign file must salvage to empty, got %v", err)
		}
		if c.Len() != 0 || !c.Salvaged() {
			t.Errorf("len=%d salvaged=%v, want 0/true", c.Len(), c.Salvaged())
		}
	})

	t.Run("empty-file", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "svc.cache")
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		c, err := OpenCache(path)
		if err != nil {
			t.Fatal(err)
		}
		if c.Len() != 0 || c.Salvaged() {
			t.Errorf("len=%d salvaged=%v, want 0/false for an empty file", c.Len(), c.Salvaged())
		}
	})
}

func TestCacheCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "svc.cache")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	key := CacheKey{Kind: kindCompile, Src: 11, Opt: 12}
	c.GetOrCompute(key, func() ([]byte, bool, error) { return []byte(`{"v":1}`), true, nil })
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 1 || c2.Salvaged() {
		t.Errorf("after compact: len=%d salvaged=%v, want 1/false", c2.Len(), c2.Salvaged())
	}
}
