package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"

	"sptc/internal/splgen"
)

// corpus returns the differential test programs: a mix of generated and
// adversarial SPL sources (both generators are deterministic by seed).
func corpus(generated, adversarial int) map[string]string {
	m := make(map[string]string)
	for i := 0; i < generated; i++ {
		m[fmt.Sprintf("gen%d.spl", i)] = splgen.Generate(int64(i + 1))
	}
	for i := 0; i < adversarial; i++ {
		m[fmt.Sprintf("adv%d.spl", i)] = splgen.Adversarial(int64(i + 1))
	}
	return m
}

var allLevels = []string{"base", "basic", "best", "anticipated"}

// TestDifferentialCompile pins the service's central contract on a
// generated corpus x every level: the response served through the cache
// (cold, warm, and after a simulated daemon restart) is byte-identical
// to the direct in-process execution.
func TestDifferentialCompile(t *testing.T) {
	progs := corpus(5, 3)
	path := filepath.Join(t.TempDir(), "svc.cache")
	cache, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	local := &Local{Cache: cache}

	type expect struct {
		req  *CompileRequest
		want []byte
	}
	var cases []expect
	for name, src := range progs {
		for _, lvl := range allLevels {
			req := &CompileRequest{Name: name, Source: src, Level: lvl}
			direct, err := ExecCompile(req, Env{})
			if err != nil {
				t.Fatalf("%s@%s: direct: %v", name, lvl, err)
			}
			want, err := json.Marshal(direct)
			if err != nil {
				t.Fatal(err)
			}
			cases = append(cases, expect{req, want})
		}
	}

	check := func(t *testing.T, phase string, wantDisp string) {
		for _, c := range cases {
			resp, err := local.Compile(c.req)
			if err != nil {
				t.Fatalf("%s %s@%s: %v", phase, c.req.Name, c.req.Level, err)
			}
			if wantDisp != "" && resp.Meta.Cache != wantDisp {
				t.Errorf("%s %s@%s: disposition %q, want %q", phase, c.req.Name, c.req.Level, resp.Meta.Cache, wantDisp)
			}
			got, err := json.Marshal(resp)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, c.want) {
				t.Errorf("%s %s@%s: response diverged from direct execution\n got: %s\nwant: %s",
					phase, c.req.Name, c.req.Level, got, c.want)
			}
		}
	}

	check(t, "cold", DispMiss)
	check(t, "warm", DispHit)

	// Daemon restart: persist, reopen, serve everything from disk.
	if err := cache.Save(); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Salvaged() || reopened.Len() != len(cases) {
		t.Fatalf("restart: len=%d salvaged=%v, want %d/false", reopened.Len(), reopened.Salvaged(), len(cases))
	}
	local = &Local{Cache: reopened}
	check(t, "restart", DispHit)
}

// TestDifferentialSimulate does the same for compile+simulate responses,
// including the -compare base run, and cross-checks the level outputs
// against the base program's output (the transformation correctness
// oracle).
func TestDifferentialSimulate(t *testing.T) {
	progs := corpus(3, 2)
	cache := NewCache()
	local := &Local{Cache: cache}

	for name, src := range progs {
		var baseOut string
		for _, lvl := range allLevels {
			req := &SimulateRequest{Name: name, Source: src, Level: lvl, Compare: lvl != "base"}
			direct, err := ExecSimulate(req, Env{})
			if err != nil {
				t.Fatalf("%s@%s: direct: %v", name, lvl, err)
			}
			want, err := json.Marshal(direct)
			if err != nil {
				t.Fatal(err)
			}

			cold, err := local.Simulate(req)
			if err != nil {
				t.Fatalf("%s@%s: cold: %v", name, lvl, err)
			}
			got, _ := json.Marshal(cold)
			if !bytes.Equal(got, want) {
				t.Errorf("%s@%s: cold response diverged from direct execution", name, lvl)
			}
			warm, err := local.Simulate(req)
			if err != nil {
				t.Fatalf("%s@%s: warm: %v", name, lvl, err)
			}
			if warm.Meta.Cache != DispHit {
				t.Errorf("%s@%s: warm disposition %q, want hit", name, lvl, warm.Meta.Cache)
			}
			if got, _ := json.Marshal(warm); !bytes.Equal(got, want) {
				t.Errorf("%s@%s: warm response diverged from direct execution", name, lvl)
			}

			if lvl == "base" {
				baseOut = cold.Output
			} else {
				if cold.Output != baseOut {
					t.Errorf("%s@%s: program output diverged from base", name, lvl)
				}
				if cold.BaseOutput != baseOut {
					t.Errorf("%s@%s: compare base output diverged from the base run", name, lvl)
				}
			}
		}
	}
}

// TestReconstructRoundTrip pins the harness-facing reconstruction: the
// wire form of a reconstructed result equals the original wire form, so
// remote figure extraction sees exactly what a local run sees.
func TestReconstructRoundTrip(t *testing.T) {
	progs := corpus(3, 2)
	for name, src := range progs {
		for _, lvl := range allLevels {
			req := &SimulateRequest{Name: name, Source: src, Level: lvl}
			resp, err := ExecSimulate(req, Env{})
			if err != nil {
				t.Fatalf("%s@%s: %v", name, lvl, err)
			}

			res, err := ReconstructCompile(resp.Compile)
			if err != nil {
				t.Fatalf("%s@%s: reconstruct: %v", name, lvl, err)
			}
			back := CompileData(res, false)
			back.Name = resp.Compile.Name
			back.Counters = resp.Compile.Counters
			// Partition summaries are IR-derived and travel only on the
			// wire; the reconstructed skeleton cannot re-derive them.
			for i := range back.Reports {
				back.Reports[i].Partition = resp.Compile.Reports[i].Partition
				back.Reports[i].Kind = resp.Compile.Reports[i].Kind
			}
			gb, _ := json.Marshal(back)
			wb, _ := json.Marshal(resp.Compile)
			if !bytes.Equal(gb, wb) {
				t.Errorf("%s@%s: compile reconstruction not lossless\n got: %s\nwant: %s", name, lvl, gb, wb)
			}

			sim := ReconstructSim(resp.Sim)
			sb, _ := json.Marshal(SimData(sim))
			ob, _ := json.Marshal(resp.Sim)
			if !bytes.Equal(sb, ob) {
				t.Errorf("%s@%s: sim reconstruction not lossless\n got: %s\nwant: %s", name, lvl, sb, ob)
			}
		}
	}
}
