// Package crashtest drives a real sptd binary through hard-kill /
// restart cycles: it builds the daemon, runs it against persistent
// cache files, SIGKILLs it mid-flight, restarts it, and gives tests the
// handles to assert the durability contract — salvage never fails, no
// torn entry is served, and a kill loses at most one flush window of
// cached work. The process-level loop lives here (not in the service
// package) because the contract under test is exactly the part an
// in-process test cannot reach: a kill that never unwinds the stack.
package crashtest

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"
)

// BuildBinary compiles cmd/sptd into dir and returns the binary path.
// The repo root is located relative to this package's directory, so the
// build works from any test working directory inside the module.
func BuildBinary(dir string) (string, error) {
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		return "", err
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		return "", fmt.Errorf("crashtest: repo root not at %s: %w", root, err)
	}
	bin := filepath.Join(dir, "sptd")
	cmd := exec.Command("go", "build", "-o", bin, "sptc/cmd/sptd")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("crashtest: build sptd: %v\n%s", err, out)
	}
	return bin, nil
}

// Daemon is one running sptd process.
type Daemon struct {
	cmd *exec.Cmd
	url string

	mu  sync.Mutex
	log strings.Builder
	err error // wait result, once dead

	done chan struct{}
}

// Start launches bin with args plus "-addr 127.0.0.1:0" and waits for
// its listening line. The caller owns the process: Kill or Stop it.
func Start(bin string, args ...string) (*Daemon, error) {
	d := &Daemon{done: make(chan struct{})}
	d.cmd = exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := d.cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	d.cmd.Stderr = d.cmd.Stdout // interleave; both end up in the log
	if err := d.cmd.Start(); err != nil {
		return nil, err
	}

	urlCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.log.WriteString(line)
			d.log.WriteByte('\n')
			d.mu.Unlock()
			if _, rest, ok := strings.Cut(line, "listening on "); ok {
				select {
				case urlCh <- strings.TrimSpace(rest):
				default:
				}
			}
		}
		close(d.done)
	}()
	go func() {
		err := d.cmd.Wait()
		d.mu.Lock()
		d.err = err
		d.mu.Unlock()
	}()

	select {
	case u := <-urlCh:
		d.url = u
		return d, nil
	case <-d.done:
		d.Kill()
		return nil, fmt.Errorf("crashtest: sptd exited before listening:\n%s", d.Output())
	case <-time.After(30 * time.Second):
		d.Kill()
		return nil, fmt.Errorf("crashtest: sptd did not listen within 30s:\n%s", d.Output())
	}
}

// URL returns the daemon's base URL.
func (d *Daemon) URL() string { return d.url }

// Output returns everything the daemon printed so far.
func (d *Daemon) Output() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.String()
}

// Kill delivers SIGKILL — the hard crash under test: no signal handler,
// no deferred Save, no stack unwind — and waits for the process to die.
func (d *Daemon) Kill() {
	if d.cmd.Process != nil {
		d.cmd.Process.Kill()
	}
	select {
	case <-d.done:
	case <-time.After(10 * time.Second):
	}
}

// Stop shuts the daemon down gracefully (SIGTERM, drain, final Save).
func (d *Daemon) Stop() error {
	if d.cmd.Process != nil {
		d.cmd.Process.Signal(syscall.SIGTERM)
	}
	select {
	case <-d.done:
	case <-time.After(30 * time.Second):
		d.Kill()
		return fmt.Errorf("crashtest: graceful stop timed out:\n%s", d.Output())
	}
	return nil
}

// Metrics is the subset of the daemon's /metrics payload the chaos
// loop asserts on.
type Metrics struct {
	Requests    int64 `json:"requests"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	Flushes     int64 `json:"flushes"`
	FlushErrors int64 `json:"flush_errors"`
}

// Metrics fetches the daemon's current counters.
func (d *Daemon) Metrics() (Metrics, error) {
	var m Metrics
	resp, err := http.Get(d.url + "/metrics")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return m, err
	}
	return m, json.Unmarshal(data, &m)
}

// WaitFlushes polls until the flush counter reaches at least n. Because
// the counter only advances when BOTH stores flushed cleanly, flushes>=n
// proves everything cached before flush n is on disk.
func (d *Daemon) WaitFlushes(n int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		m, err := d.Metrics()
		if err == nil && m.Flushes >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("crashtest: flushes did not reach %d within %v (last: %+v, err: %v)", n, timeout, m, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
