package crashtest

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"sptc/internal/incr"
	"sptc/internal/service"
	"sptc/internal/splgen"
)

var (
	binPath string
	binErr  error
)

func TestMain(m *testing.M) {
	flag.Parse()
	if testing.Short() {
		os.Exit(m.Run())
	}
	dir, err := os.MkdirTemp("", "sptd-crashtest-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binPath, binErr = BuildBinary(dir)
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func start(t *testing.T, args []string) *Daemon {
	t.Helper()
	if binErr != nil {
		t.Fatal(binErr)
	}
	d, err := Start(binPath, args...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Kill)
	return d
}

// TestCrashRestartCycles is the chaos loop: a real sptd process under
// concurrent load is SIGKILLed at a randomized point in each cycle and
// restarted on the same cache files. After every kill, the contract:
// salvage never fails, every response that preceded a completed flush
// is served warm from the restarted daemon, and those responses are
// byte-identical to direct in-process execution — no torn entry is ever
// served. Cycle count comes from SPTD_CHAOS_CYCLES (default 6; CI's
// chaos job runs 20).
func TestCrashRestartCycles(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level kill/restart loop")
	}
	cycles := 6
	if v := os.Getenv("SPTD_CHAOS_CYCLES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad SPTD_CHAOS_CYCLES=%q", v)
		}
		cycles = n
	}
	tmp := t.TempDir()
	args := []string{
		"-cache", filepath.Join(tmp, "sptd.cache"),
		"-incr-cache", filepath.Join(tmp, "incr.cache"),
		"-flush-interval", "25ms",
		"-workers", "2",
	}
	d := start(t, args)
	rnd := rand.New(rand.NewSource(1))

	// pinned accumulates every flush-watermarked request with the exact
	// bytes the live daemon served for it; all of them must survive every
	// later kill and read back identical.
	type durable struct {
		req  *service.CompileRequest
		want []byte
	}
	var pinned []durable

	// normalize zeroes the work counters before comparison: they account
	// for the execution environment (trace attachment, the incr store),
	// not the compilation result, so a daemon with -incr-cache reports
	// them while bare direct execution does not.
	normalize := func(resp *service.CompileResponse) []byte {
		c := *resp
		c.Counters = service.Counters{}
		b, _ := json.Marshal(&c)
		return b
	}

	for cycle := 0; cycle < cycles; cycle++ {
		// Phase A: fresh sources this cycle; each daemon response must
		// already match direct execution byte for byte.
		remote := &service.Remote{URL: d.URL()}
		for i := 0; i < 3; i++ {
			req := &service.CompileRequest{
				Name:   fmt.Sprintf("c%d-%d.spl", cycle, i),
				Source: splgen.Generate(int64(1000*cycle + i)),
				Level:  "best",
			}
			resp, err := remote.Compile(req)
			if err != nil {
				t.Fatalf("cycle %d: phase A request: %v\n%s", cycle, err, d.Output())
			}
			direct, err := service.ExecCompile(req, service.Env{})
			if err != nil {
				t.Fatalf("cycle %d: direct execution: %v", cycle, err)
			}
			if got, want := normalize(resp), normalize(direct); !bytes.Equal(got, want) {
				t.Fatalf("cycle %d: daemon response for %s differs from direct execution\n got: %s\nwant: %s", cycle, req.Name, got, want)
			}
			got, _ := json.Marshal(resp)
			pinned = append(pinned, durable{req, got})
		}
		// Durability watermark: one more completed flush after phase A's
		// responses were cached puts them all on disk.
		m, err := d.Metrics()
		if err != nil {
			t.Fatalf("cycle %d: metrics: %v", cycle, err)
		}
		if err := d.WaitFlushes(m.Flushes+1, 10*time.Second); err != nil {
			t.Fatalf("cycle %d: %v\n%s", cycle, err, d.Output())
		}

		// Phase B: concurrent load so the kill lands mid-flight; these
		// requests are sacrificial and may fail when the daemon dies.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				r := &service.Remote{URL: d.URL()}
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					req := &service.CompileRequest{
						Name:   fmt.Sprintf("b%d-%d-%d.spl", cycle, g, i),
						Source: splgen.Generate(int64(100000 + 1000*cycle + 100*g + i)),
						Level:  "best",
					}
					if _, err := r.Compile(req); err != nil {
						return // daemon died under us: the point of the test
					}
				}
			}(g)
		}
		time.Sleep(time.Duration(10+rnd.Intn(190)) * time.Millisecond)
		d.Kill()
		close(stop)
		wg.Wait()

		// Salvage from the dead daemon's files never fails, and every
		// watermarked entry is still present in the salvaged prefix.
		c, err := service.OpenCache(args[1])
		if err != nil {
			t.Fatalf("cycle %d: cache salvage failed after kill -9: %v", cycle, err)
		}
		for _, p := range pinned {
			if _, ok := c.Get(service.CompileKey(p.req)); !ok {
				t.Fatalf("cycle %d: flushed entry %s lost by kill -9", cycle, p.req.Name)
			}
		}
		if _, err := incr.Open(args[3]); err != nil {
			t.Fatalf("cycle %d: incr store salvage failed after kill -9: %v", cycle, err)
		}

		// Restart on the same files: everything watermarked serves warm
		// and byte-identical.
		d = start(t, args)
		remote = &service.Remote{URL: d.URL()}
		for _, p := range pinned {
			resp, err := remote.Compile(p.req)
			if err != nil {
				t.Fatalf("cycle %d: post-restart request %s: %v", cycle, p.req.Name, err)
			}
			if resp.Meta.Cache != service.DispHit {
				t.Errorf("cycle %d: %s not served warm after restart (disposition %q)", cycle, p.req.Name, resp.Meta.Cache)
			}
			if got, _ := json.Marshal(resp); !bytes.Equal(got, p.want) {
				t.Errorf("cycle %d: %s served torn or divergent bytes after restart", cycle, p.req.Name)
			}
		}
	}
	if err := d.Stop(); err != nil {
		t.Fatal(err)
	}
	t.Logf("%d kill -9/restart cycles: salvage clean, all %d watermarked responses warm and byte-identical", cycles, len(pinned))
}

// sweepRow is one flush-interval configuration's measurement in the
// BENCH_pr9 durability/latency trade-off sweep.
type sweepRow struct {
	FlushInterval    string `json:"flush_interval"`
	MaxLossWindowMS  int64  `json:"max_loss_window_ms"`
	WarmP50US        int64  `json:"warm_p50_us"`
	WarmP95US        int64  `json:"warm_p95_us"`
	ColdEntries      int    `json:"cold_entries"`
	DurableAfterKill int    `json:"durable_after_kill"`
	Flushes          int64  `json:"flushes"`
	FlushErrors      int64  `json:"flush_errors"`
}

// TestFlushIntervalSweep measures what the -flush-interval knob buys
// and costs: warm-path latency (p50/p95) under each interval, and how
// many cold entries survive an immediate kill -9. Entries behind a
// completed flush must always survive; the loss bound is the flush
// window. With SPTD_BENCH_OUT set, the rows are written as the
// BENCH_pr9.json artifact.
func TestFlushIntervalSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level latency sweep")
	}
	intervals := []time.Duration{10 * time.Millisecond, 50 * time.Millisecond, 200 * time.Millisecond}
	const cold = 6  // distinct sources cached per configuration
	const warm = 48 // warm reads measured per configuration

	var rows []sweepRow
	for _, iv := range intervals {
		tmp := t.TempDir()
		cache := filepath.Join(tmp, "sptd.cache")
		args := []string{
			"-cache", cache,
			"-incr-cache", filepath.Join(tmp, "incr.cache"),
			"-flush-interval", iv.String(),
			"-workers", "2",
		}
		d := start(t, args)
		remote := &service.Remote{URL: d.URL()}

		reqs := make([]*service.CompileRequest, cold)
		for i := range reqs {
			reqs[i] = &service.CompileRequest{
				Name:   fmt.Sprintf("sweep%d.spl", i),
				Source: splgen.Generate(int64(5000 + i)),
				Level:  "best",
			}
			if _, err := remote.Compile(reqs[i]); err != nil {
				t.Fatalf("interval %v: cold compile: %v", iv, err)
			}
		}
		// Watermark the cold set, then measure pure warm reads.
		m, err := d.Metrics()
		if err != nil {
			t.Fatal(err)
		}
		if err := d.WaitFlushes(m.Flushes+1, 10*time.Second); err != nil {
			t.Fatalf("interval %v: %v", iv, err)
		}
		lat := make([]time.Duration, 0, warm)
		for i := 0; i < warm; i++ {
			req := reqs[i%cold]
			begin := time.Now()
			resp, err := remote.Compile(req)
			if err != nil {
				t.Fatalf("interval %v: warm read: %v", iv, err)
			}
			if resp.Meta.Cache != service.DispHit {
				t.Fatalf("interval %v: warm read %d not a hit (%q)", iv, i, resp.Meta.Cache)
			}
			lat = append(lat, time.Since(begin))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })

		final, err := d.Metrics()
		if err != nil {
			t.Fatal(err)
		}
		d.Kill()
		c, err := service.OpenCache(cache)
		if err != nil {
			t.Fatalf("interval %v: salvage failed: %v", iv, err)
		}
		survived := 0
		for _, req := range reqs {
			if _, ok := c.Get(service.CompileKey(req)); ok {
				survived++
			}
		}
		if survived < cold {
			t.Errorf("interval %v: only %d/%d watermarked entries survived kill -9", iv, survived, cold)
		}
		rows = append(rows, sweepRow{
			FlushInterval:    iv.String(),
			MaxLossWindowMS:  iv.Milliseconds(),
			WarmP50US:        lat[len(lat)/2].Microseconds(),
			WarmP95US:        lat[len(lat)*95/100].Microseconds(),
			ColdEntries:      cold,
			DurableAfterKill: survived,
			Flushes:          final.Flushes,
			FlushErrors:      final.FlushErrors,
		})
	}

	data, _ := json.MarshalIndent(map[string]any{
		"bench":      "flush-interval durability/latency sweep",
		"warm_reads": warm,
		"rows":       rows,
	}, "", "  ")
	data = append(data, '\n')
	t.Logf("sweep:\n%s", data)
	if out := os.Getenv("SPTD_BENCH_OUT"); out != "" {
		if err := os.WriteFile(out, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
