package service

import (
	"context"
	"errors"
	"net/url"
	"sync"
	"time"
)

// Breaker is a small circuit breaker over the remote transport. Closed,
// it passes requests through. After Threshold consecutive transport
// failures (connection-level errors or proxy-class TransportErrors —
// never compile/request errors, which prove the daemon is alive) it
// opens: requests short-circuit for Cooldown, then exactly one probe is
// let through half-open. A probe success closes the breaker; a probe
// failure re-opens it for another cooldown.
type Breaker struct {
	// Threshold is the consecutive-transport-failure count that opens
	// the breaker (default 3 when zero).
	Threshold int
	// Cooldown is how long the breaker stays open before half-opening
	// (default 5s when zero).
	Cooldown time.Duration
	// Clock is a test seam; nil means time.Now.
	Clock func() time.Time

	mu       sync.Mutex
	failures int       // consecutive transport failures while closed
	openedAt time.Time // zero: closed
	probing  bool      // half-open probe in flight
}

func (b *Breaker) threshold() int {
	if b.Threshold <= 0 {
		return 3
	}
	return b.Threshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return 5 * time.Second
	}
	return b.Cooldown
}

func (b *Breaker) now() time.Time {
	if b.Clock != nil {
		return b.Clock()
	}
	return time.Now()
}

// Allow reports whether a request may go to the remote. Open-state
// requests are refused until the cooldown elapses; then one caller wins
// the half-open probe slot and the rest keep short-circuiting until the
// probe reports back.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openedAt.IsZero() {
		return true
	}
	if b.probing || b.now().Sub(b.openedAt) < b.cooldown() {
		return false
	}
	b.probing = true
	return true
}

// Success reports a remote round-trip that proved the daemon reachable.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.openedAt = time.Time{}
	b.probing = false
}

// Failure reports a transport-level failure. It opens the breaker after
// Threshold consecutive failures, and re-opens it (fresh cooldown) when
// a half-open probe fails.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.probing {
		b.probing = false
		b.openedAt = b.now()
		return
	}
	b.failures++
	if b.openedAt.IsZero() && b.failures >= b.threshold() {
		b.openedAt = b.now()
	}
}

// Open reports whether the breaker is currently refusing remote traffic.
func (b *Breaker) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.openedAt.IsZero()
}

// TransportFailure reports whether err means "the daemon was
// unreachable" as opposed to "the daemon answered with an error". Only
// the former counts against the breaker and justifies local fallback:
// an answered error (compile failure, panic, even an overload 429 that
// retries couldn't outlast) proves the service is alive.
func TransportFailure(err error) bool {
	var ue *url.Error
	if errors.As(err, &ue) {
		return true
	}
	var te *TransportError
	return errors.As(err, &te)
}

// Failover is a self-healing client: requests go to Remote (whose own
// RetryPolicy masks transient faults), and when the daemon is
// unreachable — a transport failure survives the retries, or the
// breaker is already open — the request runs on the degraded in-process
// Local instead, marked with Meta.Fallback so status surfaces show it.
// The breaker half-opens after its cooldown, so a recovered daemon is
// picked back up automatically.
type Failover struct {
	Remote *Remote
	Local  *Local
	// Breaker tracks remote health; nil gets a default breaker.
	Breaker *Breaker

	once sync.Once
}

func (f *Failover) breaker() *Breaker {
	f.once.Do(func() {
		if f.Breaker == nil {
			f.Breaker = &Breaker{}
		}
	})
	return f.Breaker
}

// WithContext returns a Failover bound to ctx (the harness's per-job
// deadline cancels both the HTTP request and the local fallback) that
// shares this one's breaker, so remote health accrues across jobs.
func (f *Failover) WithContext(ctx context.Context) *Failover {
	rc := *f.Remote
	rc.Context = ctx
	lc := *f.Local
	lc.Env.Context = ctx
	return &Failover{Remote: &rc, Local: &lc, Breaker: f.breaker()}
}

// Compile implements Client.
func (f *Failover) Compile(req *CompileRequest) (*CompileResponse, error) {
	b := f.breaker()
	if !b.Allow() {
		resp, err := f.Local.Compile(req)
		if resp != nil {
			resp.Meta.Fallback = true
		}
		return resp, err
	}
	resp, err := f.Remote.Compile(req)
	if err == nil || !TransportFailure(err) {
		b.Success()
		return resp, err
	}
	b.Failure()
	retries := ErrorRetries(err)
	lresp, lerr := f.Local.Compile(req)
	if lresp != nil {
		lresp.Meta.Fallback = true
		lresp.Meta.Retries = retries
	}
	return lresp, lerr
}

// Simulate implements Client.
func (f *Failover) Simulate(req *SimulateRequest) (*SimulateResponse, error) {
	b := f.breaker()
	if !b.Allow() {
		resp, err := f.Local.Simulate(req)
		if resp != nil {
			resp.Meta.Fallback = true
		}
		return resp, err
	}
	resp, err := f.Remote.Simulate(req)
	if err == nil || !TransportFailure(err) {
		b.Success()
		return resp, err
	}
	b.Failure()
	retries := ErrorRetries(err)
	lresp, lerr := f.Local.Simulate(req)
	if lresp != nil {
		lresp.Meta.Fallback = true
		lresp.Meta.Retries = retries
	}
	return lresp, lerr
}
