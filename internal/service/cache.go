package service

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"

	"sptc/internal/incr"
	"sptc/internal/machine"
	"sptc/internal/resilience"
)

// cacheMagic versions the service-cache file format.
const cacheMagic = "sptsvc01"

// Request kinds, the first cache-key dimension.
const (
	kindCompile  byte = 1
	kindSimulate byte = 2
)

// CacheKey addresses one deterministic response: the request kind, the
// FNV-1a hash of (name, source), and the FNV-1a hash of the canonical
// JSON of every result-affecting option (level, compile options, machine
// config, response-format version).
type CacheKey struct {
	Kind byte
	Src  uint64
	Opt  uint64
}

func hashSource(name, source string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(source))
	return h.Sum64()
}

// optionsKey is the canonical serialization of everything besides the
// source that can change response bytes.
type optionsKey struct {
	Version         int             `json:"v"`
	Level           string          `json:"level"`
	Options         ReqOptions      `json:"options"`
	Machine         *machine.Config `json:"machine,omitempty"`
	Compare         bool            `json:"compare,omitempty"`
	CoverageMaxBody int             `json:"coverage_max_body,omitempty"`
}

func hashOptions(k optionsKey) uint64 {
	b, err := json.Marshal(k)
	if err != nil {
		// Plain structs of scalars cannot fail to marshal.
		panic(fmt.Sprintf("service: options hash: %v", err))
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// CompileKey derives the cache key of a compile request.
func CompileKey(req *CompileRequest) CacheKey {
	return CacheKey{
		Kind: kindCompile,
		Src:  hashSource(req.Name, req.Source),
		Opt:  hashOptions(optionsKey{Version: RespFormatVersion, Level: req.Level, Options: req.Options}),
	}
}

// SimulateKey derives the cache key of a simulate request.
func SimulateKey(req *SimulateRequest) CacheKey {
	return CacheKey{
		Kind: kindSimulate,
		Src:  hashSource(req.Name, req.Source),
		Opt: hashOptions(optionsKey{
			Version:         RespFormatVersion,
			Level:           req.Level,
			Options:         req.Options,
			Machine:         req.Machine,
			Compare:         req.Compare,
			CoverageMaxBody: req.CoverageMaxBody,
		}),
	}
}

// Cache is the whole-program content-addressed response cache: canonical
// response JSON keyed by CacheKey, persisted through an append-only
// incr.RecordLog so it survives daemon restarts, with single-flight
// deduplication so N identical concurrent requests cost one compile.
type Cache struct {
	mu       sync.Mutex
	log      *incr.RecordLog
	entries  map[CacheKey][]byte
	inflight map[CacheKey]*flight
}

type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// NewCache returns an empty in-memory cache (no persistence).
func NewCache() *Cache {
	return &Cache{
		log:      incr.NewRecordLog(cacheMagic, ""),
		entries:  make(map[CacheKey][]byte),
		inflight: make(map[CacheKey]*flight),
	}
}

// OpenCache loads the cache at path, creating it on first use. Corrupt
// or truncated files are salvaged record-by-record (longest valid
// prefix, malformed payloads dropped); content damage never returns an
// error.
func OpenCache(path string) (*Cache, error) {
	c := NewCache()
	log, err := incr.OpenRecordLog(cacheMagic, path, func(payload []byte) bool {
		key, body, ok := decodeCacheRecord(payload)
		if !ok {
			return false
		}
		c.entries[key] = body
		return true
	})
	if err != nil {
		return nil, err
	}
	c.log = log
	return c, nil
}

// record payload: kind u8 | src u64 | opt u64 | response JSON.
func encodeCacheRecord(key CacheKey, body []byte) []byte {
	p := make([]byte, 0, 17+len(body))
	p = append(p, key.Kind)
	p = binary.LittleEndian.AppendUint64(p, key.Src)
	p = binary.LittleEndian.AppendUint64(p, key.Opt)
	return append(p, body...)
}

func decodeCacheRecord(payload []byte) (CacheKey, []byte, bool) {
	if len(payload) < 17 {
		return CacheKey{}, nil, false
	}
	kind := payload[0]
	if kind != kindCompile && kind != kindSimulate {
		return CacheKey{}, nil, false
	}
	key := CacheKey{
		Kind: kind,
		Src:  binary.LittleEndian.Uint64(payload[1:]),
		Opt:  binary.LittleEndian.Uint64(payload[9:]),
	}
	body := make([]byte, len(payload)-17)
	copy(body, payload[17:])
	return key, body, true
}

// Len returns the number of live cached responses.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Salvaged reports whether loading dropped a damaged tail.
func (c *Cache) Salvaged() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.log.Salvaged()
}

// Get returns the cached response bytes for key, if present.
func (c *Cache) Get(key CacheKey) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.entries[key]
	return b, ok
}

// Disposition of one GetOrCompute call.
const (
	DispHit  = "hit"  // served from the cache
	DispMiss = "miss" // computed by this call
	DispJoin = "join" // waited on an identical in-flight computation
)

// GetOrCompute returns the response bytes for key, computing them at
// most once across concurrent callers: the first caller for an absent
// key runs compute, every concurrent duplicate blocks on its completion
// and shares the result (a cache stampede costs one compile). compute
// reports whether its result is cacheable — degraded and failed
// responses never enter the cache, so a later retry recomputes.
func (c *Cache) GetOrCompute(key CacheKey, compute func() (data []byte, cacheable bool, err error)) (data []byte, disp string, err error) {
	c.mu.Lock()
	if b, ok := c.entries[key]; ok {
		c.mu.Unlock()
		return b, DispHit, nil
	}
	if f := c.inflight[key]; f != nil {
		c.mu.Unlock()
		<-f.done
		return f.data, DispJoin, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	data, cacheable, err := compute()
	f.data, f.err = data, err

	c.mu.Lock()
	if err == nil && cacheable {
		c.entries[key] = data
		c.log.Append(encodeCacheRecord(key, data))
	}
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
	return data, DispMiss, err
}

// savePoint arms the cache's persistence path for fault injection: an
// error here models the cache file's disk failing at save/flush time.
var savePoint = resilience.Register("service.cache.save")

// SetSync selects the underlying log's fsync policy for Flush appends.
func (c *Cache) SetSync(p incr.SyncPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.log.SetSync(p)
}

// Flush appends responses cached since the last flush without
// compacting: the daemon's incremental durability path (ticker + every
// Nth miss), so a hard kill loses at most one flush window of cached
// responses. A flush failure marks the log for a compacting rewrite on
// the next Save and never disturbs the in-memory cache.
func (c *Cache) Flush() error {
	if err := savePoint.Fire(nil); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.log.Flush()
}

// Pending reports the framed bytes queued but not yet flushed (0 on a
// fully flushed or in-memory cache).
func (c *Cache) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.log.Pending()
}

// Save persists records added since load, compacting (live entries only)
// after a salvage or when superseded records outnumber live ones. A
// no-op for in-memory caches.
func (c *Cache) Save() error {
	if err := savePoint.Fire(nil); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.log.Save(len(c.entries), c.rewrite)
}

// Compact rewrites the cache file with live entries only.
func (c *Cache) Compact() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.log.Compact(c.rewrite)
}

func (c *Cache) rewrite(emit func(payload []byte)) {
	for key, body := range c.entries {
		emit(encodeCacheRecord(key, body))
	}
}
