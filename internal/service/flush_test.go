package service

import (
	"path/filepath"
	"testing"
	"time"

	"sptc/internal/resilience"
	"sptc/internal/splgen"
)

// waitFlush polls the server metrics until at least n flushes completed.
func waitFlush(t *testing.T, srv *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Snapshot().Flushes >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("flushes did not reach %d (metrics: %+v)", n, srv.Snapshot())
}

// TestServerFlushTicker pins the tentpole durability contract: with
// -flush-interval set, a cached response reaches the disk within one
// flush window — no shutdown required — so a hard kill after the flush
// cannot lose it. The check reads the live cache file with a second,
// independent Cache.
func TestServerFlushTicker(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sptd.cache")
	srv, _ := startServer(t, Config{
		Workers:       1,
		CachePath:     path,
		FlushInterval: 10 * time.Millisecond,
	})
	remote := &Remote{URL: srv.URL()}
	req := &CompileRequest{Name: "tick.spl", Source: splgen.Generate(11), Level: "basic"}
	if _, err := remote.Compile(req); err != nil {
		t.Fatal(err)
	}
	flushed := srv.Snapshot().Flushes
	waitFlush(t, srv, flushed+1)

	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Salvaged() {
		t.Error("mid-run cache file reads as damaged")
	}
	if _, ok := c.Get(CompileKey(req)); !ok {
		t.Error("flushed response not readable from the live cache file")
	}
}

// TestServerFlushEveryNthMiss pins the second flush trigger: every Nth
// cache miss kicks a flush even without a ticker.
func TestServerFlushEveryNthMiss(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sptd.cache")
	srv, _ := startServer(t, Config{
		Workers:     1,
		CachePath:   path,
		FlushEveryN: 2,
	})
	remote := &Remote{URL: srv.URL()}
	for i := 0; i < 2; i++ {
		req := &CompileRequest{Name: "nth.spl", Source: splgen.Generate(int64(20 + i)), Level: "basic"}
		if _, err := remote.Compile(req); err != nil {
			t.Fatal(err)
		}
	}
	waitFlush(t, srv, 1)

	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Errorf("live cache file has %d entries after the Nth-miss flush, want 2", c.Len())
	}
}

// TestServerFlushFailureIsContained pins the flush error path end to
// end: with the cache's disk failing, flushes report errors in metrics,
// requests keep succeeding, and the graceful shutdown's compacting Save
// recovers every entry once the disk heals.
func TestServerFlushFailureIsContained(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sptd.cache")
	srv, stop := startServer(t, Config{
		Workers:       1,
		CachePath:     path,
		FlushInterval: 10 * time.Millisecond,
	})
	if err := resilience.ArmSpec("service.cache.save=error"); err != nil {
		t.Fatal(err)
	}
	defer resilience.DisarmAll()

	remote := &Remote{URL: srv.URL()}
	req := &CompileRequest{Name: "sick.spl", Source: splgen.Generate(31), Level: "basic"}
	if _, err := remote.Compile(req); err != nil {
		t.Fatalf("request failed while the cache disk was failing: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Snapshot().FlushErrors == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Snapshot().FlushErrors == 0 {
		t.Fatal("failing flushes not reported in metrics")
	}
	// A warm hit proves the in-memory cache is undisturbed.
	resp, err := remote.Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Meta.Cache != DispHit {
		t.Errorf("cache disposition = %q after failed flushes, want hit", resp.Meta.Cache)
	}

	// Disk heals before shutdown: the final Save compacts and recovers.
	resilience.DisarmAll()
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Salvaged() {
		t.Error("cache file damaged after recovery save")
	}
	if _, ok := c.Get(CompileKey(req)); !ok {
		t.Error("entry lost across failed flushes + recovery save")
	}
}

// TestCacheFlushPending pins the Cache-level flush API the server's
// flusher drives.
func TestCacheFlushPending(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.cache")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	c.SetSync(0)
	key := CacheKey{Kind: kindCompile, Src: 1, Opt: 2}
	if _, _, err := c.GetOrCompute(key, func() ([]byte, bool, error) {
		return []byte(`{"x":1}`), true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if c.Pending() == 0 {
		t.Fatal("no pending bytes after a cached compute")
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if c.Pending() != 0 {
		t.Errorf("Pending = %d after flush", c.Pending())
	}
	r, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(key); !ok {
		t.Error("flushed entry not readable")
	}
}
