package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"

	"sptc/internal/machine"
	"sptc/internal/splgen"
)

// TestServerEndpoints covers the daemon's observability and guard-rail
// surface: /metrics, /debug/trace, method and size limits, and the
// malformed-request paths.
func TestServerEndpoints(t *testing.T) {
	srv, _ := startServer(t, Config{Workers: 2, MaxSource: 16 << 10})
	remote := &Remote{URL: srv.URL()}
	if srv.Cache() == nil {
		t.Fatal("Cache() = nil")
	}

	if _, err := remote.Compile(&CompileRequest{Name: "m.spl", Source: splgen.Generate(1), Level: "best"}); err != nil {
		t.Fatal(err)
	}

	t.Run("metrics", func(t *testing.T) {
		resp, err := http.Get(srv.URL() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m Metrics
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("metrics not JSON: %v", err)
		}
		if m.Requests < 1 || m.CacheEntries != 1 {
			t.Errorf("metrics = %+v, want >=1 request and 1 cache entry", m)
		}
	})

	t.Run("trace", func(t *testing.T) {
		resp, err := http.Get(srv.URL() + "/debug/trace")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var tr struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatalf("trace not chrome JSON: %v", err)
		}
		if len(tr.TraceEvents) == 0 {
			t.Error("trace has no events after a compile")
		}
	})

	t.Run("method-not-allowed", func(t *testing.T) {
		resp, err := http.Get(srv.URL() + "/v1/compile")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/compile = %d, want 405", resp.StatusCode)
		}
	})

	t.Run("not-found", func(t *testing.T) {
		resp, err := http.Post(srv.URL()+"/v1/nope", "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("POST /v1/nope = %d, want 404", resp.StatusCode)
		}
	})

	t.Run("source-too-large", func(t *testing.T) {
		_, err := remote.Compile(&CompileRequest{
			Name: "big.spl", Source: strings.Repeat("x", 64<<10), Level: "best",
		})
		if err == nil {
			t.Fatal("oversized source accepted")
		}
		var rerr *RequestError
		if !errors.As(err, &rerr) {
			t.Errorf("oversized source error = %v, want RequestError", err)
		}
	})

	t.Run("bad-level", func(t *testing.T) {
		_, err := remote.Simulate(&SimulateRequest{Name: "x.spl", Source: "func main() {}", Level: "turbo"})
		var rerr *RequestError
		if !errors.As(err, &rerr) {
			t.Fatalf("unknown level error = %v, want RequestError", err)
		}
		if rerr.Error() == "" {
			t.Error("empty RequestError message")
		}
	})
}

// TestSimulateMachineOverride pins that a custom machine config and the
// coverage measurement travel through the daemon: the overridden config
// changes the simulation, and MaxCoverage is populated.
func TestSimulateMachineOverride(t *testing.T) {
	srv, _ := startServer(t, Config{Workers: 2})
	remote := &Remote{URL: srv.URL()}
	src := splgen.Generate(42)

	def, err := remote.Simulate(&SimulateRequest{Name: "m.spl", Source: src, Level: "best", CoverageMaxBody: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if def.MaxCoverage <= 0 || def.MaxCoverage > 1.0001 {
		t.Errorf("MaxCoverage = %v, want (0, 1]", def.MaxCoverage)
	}

	cfg := machine.DefaultConfig()
	cfg.ForkOverhead *= 8
	slow, err := remote.Simulate(&SimulateRequest{Name: "m.spl", Source: src, Level: "best", Machine: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Output != def.Output {
		t.Errorf("machine config changed program output")
	}
	if slow.Sim.Cycles == def.Sim.Cycles {
		t.Errorf("8x fork overhead did not change cycles (%v)", slow.Sim.Cycles)
	}
}

// TestWireRatios covers the wire-DTO derived quantities against their
// definitions (mirrors of the machine package's methods).
func TestWireRatios(t *testing.T) {
	l := SimLoop{SpecOps: 10, ReexecOps: 2, SeqCycles: 30, Elapsed: 15}
	if got := l.ReexecRatio(); got != 0.2 {
		t.Errorf("ReexecRatio = %v, want 0.2", got)
	}
	if got := l.LoopSpeedup(); got != 2 {
		t.Errorf("LoopSpeedup = %v, want 2", got)
	}
	s := SimSummary{Ops: 100, Cycles: 50}
	if got := s.IPC(); got != 2 {
		t.Errorf("IPC = %v, want 2", got)
	}
	var zero SimLoop
	if zero.ReexecRatio() != 0 || zero.LoopSpeedup() != 1 {
		t.Error("zero-valued loop ratios must be 0 and 1, not NaN")
	}
	var zs SimSummary
	if zs.IPC() != 0 {
		t.Error("zero-cycle IPC must be 0, not NaN")
	}
}
