package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"sptc/internal/resilience"
	"sptc/internal/splgen"
	"sptc/internal/trace"
)

// The load test is the service-level acceptance pin: thousands of
// concurrent requests against a live daemon, cold then warm, with
// faults injected mid-flight. It asserts the contracts that matter at
// load — every response byte-identical to its twin, zero dropped or
// deadlocked requests, exactly one compile per unique key (singleflight),
// monotone counters — and records p50/p95/p99 latency per phase.
// Set SPTD_LOADTEST_OUT=path to write the phase table as JSON.

type loadPhase struct {
	Name       string `json:"name"`
	Requests   int    `json:"requests"`
	UniqueKeys int    `json:"unique_keys,omitempty"`
	Errors     int    `json:"errors"`
	P50us      int64  `json:"p50_us"`
	P95us      int64  `json:"p95_us"`
	P99us      int64  `json:"p99_us"`
	Misses     int64  `json:"cache_misses"`
	Hits       int64  `json:"cache_hits"`
	Joins      int64  `json:"stampede_joins"`
}

type loadReport struct {
	Workers      int         `json:"workers"`
	QueueDepth   int         `json:"queue_depth"`
	Race         bool        `json:"race_detector"`
	Phases       []loadPhase `json:"phases"`
	ColdWarmP50x float64     `json:"cold_warm_p50_ratio"`
}

func percentileUs(durs []time.Duration, p int) int64 {
	if len(durs) == 0 {
		return 0
	}
	s := make([]time.Duration, len(durs))
	copy(s, durs)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)-1)*p/100].Microseconds()
}

// fireAll launches every request concurrently behind one gate and waits
// for all of them: per-request latency, response bytes, and error.
func fireAll(remote *Remote, reqs []*CompileRequest) ([]time.Duration, [][]byte, []error) {
	n := len(reqs)
	durs := make([]time.Duration, n)
	bodies := make([][]byte, n)
	errs := make([]error, n)
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			start := time.Now()
			resp, err := remote.Compile(reqs[i])
			durs[i] = time.Since(start)
			if err != nil {
				errs[i] = err
				return
			}
			bodies[i], _ = json.Marshal(resp)
		}(i)
	}
	close(gate)
	wg.Wait()
	return durs, bodies, errs
}

func TestServerLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	uniq, perKey := 1000, 2
	if raceEnabled {
		// Stay well under the race detector's goroutine budget (~8k):
		// 384 client goroutines + as many server conn goroutines.
		uniq, perKey = 192, 2
	}
	total := uniq * perKey

	// 32 workers: cold compiles are CPU-bound either way, but cheap warm
	// hits drain the queue in parallel, so warm latency reflects the
	// cache rather than queue depth.
	cfg := Config{Workers: 32, QueueDepth: total + 64}
	srv, _ := startServer(t, cfg)
	remote := &Remote{URL: srv.URL(), HTTPClient: &http.Client{
		Transport: &http.Transport{MaxIdleConns: total, MaxIdleConnsPerHost: total},
	}}

	// Corpus: generated and adversarial sources across every level,
	// perKey identical requests per unique key (key-major order, so
	// request k*perKey+j is the j-th twin of key k).
	levels := []string{"basic", "best", "anticipated"}
	reqs := make([]*CompileRequest, 0, total)
	for k := 0; k < uniq; k++ {
		// Adversarial sources throughout: they carry the deep loop nests
		// that make a cold compile meaningfully more expensive than a
		// cache hit, which is exactly the contrast this test measures.
		src := splgen.Adversarial(int64(1000 + k))
		req := &CompileRequest{
			Name:   fmt.Sprintf("load-%03d.spl", k),
			Source: src,
			Level:  levels[k%len(levels)],
		}
		for j := 0; j < perKey; j++ {
			reqs = append(reqs, req)
		}
	}

	report := loadReport{Workers: cfg.Workers, QueueDepth: cfg.QueueDepth, Race: raceEnabled}
	prev := srv.Snapshot()
	phase := func(name string, uniqKeys int, durs []time.Duration, errs []error) loadPhase {
		nerr := 0
		for _, err := range errs {
			if err != nil {
				nerr++
			}
		}
		m := srv.Snapshot()
		p := loadPhase{
			Name: name, Requests: len(durs), UniqueKeys: uniqKeys, Errors: nerr,
			P50us: percentileUs(durs, 50), P95us: percentileUs(durs, 95), P99us: percentileUs(durs, 99),
			Misses: m.CacheMisses - prev.CacheMisses,
			Hits:   m.CacheHits - prev.CacheHits,
			Joins:  m.StampedeJoins - prev.StampedeJoins,
		}
		// Counters are monotone across phases: a snapshot never goes
		// backwards on any cumulative counter.
		if m.Requests < prev.Requests || m.CacheHits < prev.CacheHits ||
			m.CacheMisses < prev.CacheMisses || m.StampedeJoins < prev.StampedeJoins ||
			m.Errors < prev.Errors || m.Panics < prev.Panics {
			t.Errorf("%s: a cumulative counter went backwards: %+v -> %+v", name, prev, m)
		}
		prev = m
		report.Phases = append(report.Phases, p)
		t.Logf("%-12s %5d req  errors=%d  p50=%dus p95=%dus p99=%dus  miss=%d hit=%d join=%d",
			name, p.Requests, p.Errors, p.P50us, p.P95us, p.P99us, p.Misses, p.Hits, p.Joins)
		return p
	}

	// --- Phase 1: cold. All requests concurrent against an empty cache.
	durs, bodies, errs := fireAll(remote, reqs)
	cold := phase("cold", uniq, durs, errs)
	if cold.Errors != 0 {
		for i, err := range errs {
			if err != nil {
				t.Fatalf("cold: request %d (%s@%s) failed: %v", i, reqs[i].Name, reqs[i].Level, err)
			}
		}
	}
	if cold.Misses != int64(uniq) {
		t.Errorf("cold: %d cache misses for %d unique keys, want exactly one compile per key", cold.Misses, uniq)
	}
	if cold.Hits+cold.Joins != int64(total-uniq) {
		t.Errorf("cold: hits(%d)+joins(%d) = %d, want %d duplicate requests served without compiling",
			cold.Hits, cold.Joins, cold.Hits+cold.Joins, total-uniq)
	}
	// Twins are byte-identical; a sample of keys is also checked against
	// direct in-process execution (the full-corpus check is the
	// differential test's job).
	for k := 0; k < uniq; k++ {
		first := bodies[k*perKey]
		for j := 1; j < perKey; j++ {
			if !bytes.Equal(bodies[k*perKey+j], first) {
				t.Fatalf("cold: key %d twin %d diverged from twin 0", k, j)
			}
		}
		if k%16 == 0 {
			direct, err := ExecCompile(reqs[k*perKey], Env{Track: trace.New().StartTrack("direct")})
			if err != nil {
				t.Fatalf("direct %s: %v", reqs[k*perKey].Name, err)
			}
			want, _ := json.Marshal(direct)
			if !bytes.Equal(first, want) {
				t.Errorf("cold: key %d diverged from direct execution", k)
			}
		}
	}

	// --- Phase 2: warm. The same storm again: pure cache hits, still
	// byte-identical.
	wdurs, wbodies, werrs := fireAll(remote, reqs)
	warm := phase("warm", uniq, wdurs, werrs)
	if warm.Errors != 0 {
		t.Fatalf("warm: %d requests failed", warm.Errors)
	}
	if warm.Hits != int64(total) {
		t.Errorf("warm: %d hits for %d requests, want all hits", warm.Hits, total)
	}
	for i := range wbodies {
		if !bytes.Equal(wbodies[i], bodies[i]) {
			t.Fatalf("warm: request %d diverged from its cold twin", i)
		}
	}

	// --- Phase 3: faults mid-flight. A warm batch is in flight when the
	// panic fault arms; cached traffic is unaffected while fresh sources
	// fail classified, and nothing poisoned enters the cache.
	nfresh := 64
	fresh := make([]*CompileRequest, nfresh)
	for i := range fresh {
		fresh[i] = &CompileRequest{
			Name:   fmt.Sprintf("poison-%02d.spl", i),
			Source: splgen.Generate(int64(5000 + i)),
			Level:  "best",
		}
	}
	warmBatch := reqs[:256]
	var wg sync.WaitGroup
	warmErrs := make([]error, len(warmBatch))
	warmBodies := make([][]byte, len(warmBatch))
	warmDurs := make([]time.Duration, len(warmBatch))
	wg.Add(1)
	go func() {
		defer wg.Done()
		warmDurs, warmBodies, warmErrs = fireAll(remote, warmBatch)
	}()
	time.Sleep(2 * time.Millisecond) // warm traffic is now in flight
	if err := resilience.ArmSpec("core.pass1.loop=panic"); err != nil {
		t.Fatal(err)
	}
	fdurs, _, ferrs := fireAll(remote, fresh)
	wg.Wait()
	resilience.DisarmAll()

	all := append(append([]time.Duration{}, warmDurs...), fdurs...)
	phase("faults", nfresh, all, append(append([]error{}, warmErrs...), ferrs...))
	for i, err := range warmErrs {
		if err != nil {
			t.Errorf("faults: warm request %d failed during injection: %v", i, err)
		} else if !bytes.Equal(warmBodies[i], bodies[i]) {
			t.Errorf("faults: warm request %d diverged during injection", i)
		}
	}
	for i, err := range ferrs {
		if err == nil {
			continue // absorbed fail-soft (degraded) — still a valid response
		}
		var perr *resilience.PanicError
		if !errors.As(err, &perr) {
			t.Errorf("faults: fresh request %d failed unclassified: %v", i, err)
		}
	}
	healthz(t, srv)

	// --- Phase 4: recovery. The poisoned keys recompile cleanly: every
	// one a miss (nothing poisoned was cached), none degraded.
	rdurs, _, rerrs := fireAll(remote, fresh)
	rec := phase("recovery", nfresh, rdurs, rerrs)
	if rec.Errors != 0 {
		t.Fatalf("recovery: %d requests failed after disarm", rec.Errors)
	}
	if rec.Misses != int64(nfresh) {
		t.Errorf("recovery: %d misses for %d previously-poisoned keys, want all recomputed (poison cached otherwise)",
			rec.Misses, nfresh)
	}
	for i := range fresh {
		resp, err := remote.Compile(fresh[i])
		if err != nil {
			t.Fatalf("recovery: %s: %v", fresh[i].Name, err)
		}
		if resp.Degraded {
			t.Errorf("recovery: %s still degraded after disarm", fresh[i].Name)
		}
	}

	if warm.P50us > 0 {
		report.ColdWarmP50x = float64(cold.P50us) / float64(warm.P50us)
	}
	t.Logf("cold/warm p50 ratio: %.1fx", report.ColdWarmP50x)
	// The threshold bounds the cache's value from below: hits must stay far
	// cheaper than recomputation. It was 10x when cold compile+simulate was
	// slower; the memory-model fast paths cut the cold side enough that the
	// observed ratio now sits around 7-14x, so 5x keeps headroom against
	// noise without letting a real hit-path regression through.
	if !raceEnabled && report.ColdWarmP50x < 5 {
		t.Errorf("warm p50 not >=5x better than cold: cold=%dus warm=%dus (%.1fx)",
			cold.P50us, warm.P50us, report.ColdWarmP50x)
	}

	if out := os.Getenv("SPTD_LOADTEST_OUT"); out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
