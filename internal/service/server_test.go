package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sptc/internal/resilience"
	"sptc/internal/splgen"
)

// startServer runs a daemon on a free port; the returned stop func
// cancels its context and returns Run's error (idempotent).
func startServer(t *testing.T, cfg Config) (*Server, func() error) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Run(ctx) }()
	var once sync.Once
	var runErr error
	stop := func() error {
		once.Do(func() {
			cancel()
			runErr = <-errCh
		})
		return runErr
	}
	t.Cleanup(func() { stop() })
	return srv, stop
}

func healthz(t *testing.T, srv *Server) {
	t.Helper()
	resp, err := http.Get(srv.URL() + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
}

// TestServerStampede fires N identical concurrent requests at a cold
// daemon: exactly one compile happens; every response is identical.
func TestServerStampede(t *testing.T) {
	srv, _ := startServer(t, Config{Workers: 8, QueueDepth: 256})
	src := splgen.Generate(42)
	req := &CompileRequest{Name: "stampede.spl", Source: src, Level: "best"}

	const n = 48
	responses := make([][]byte, n)
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			remote := &Remote{URL: srv.URL()}
			resp, err := remote.Compile(req)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			responses[i], _ = json.Marshal(resp)
		}(i)
	}
	close(gate)
	wg.Wait()

	m := srv.Snapshot()
	if m.CacheMisses != 1 {
		t.Errorf("cache misses = %d, want exactly 1 compile for %d identical requests", m.CacheMisses, n)
	}
	if m.CacheHits+m.StampedeJoins != n-1 {
		t.Errorf("hits(%d) + joins(%d) = %d, want %d", m.CacheHits, m.StampedeJoins, m.CacheHits+m.StampedeJoins, n-1)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(responses[i], responses[0]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
}

// TestServerGracefulShutdown cancels the daemon with a request in
// flight: the request drains to a 200, Run returns clean, and the cache
// file on disk is valid and complete.
func TestServerGracefulShutdown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "svc.cache")
	srv, stop := startServer(t, Config{Workers: 2, CachePath: path})

	if err := resilience.ArmSpec("core.pass1.loop=delay:200ms"); err != nil {
		t.Fatal(err)
	}
	defer resilience.DisarmAll()

	type result struct {
		resp *CompileResponse
		err  error
	}
	done := make(chan result, 1)
	go func() {
		remote := &Remote{URL: srv.URL()}
		resp, err := remote.Compile(&CompileRequest{Name: "drain.spl", Source: splgen.Generate(7), Level: "best"})
		done <- result{resp, err}
	}()
	time.Sleep(50 * time.Millisecond) // request is now in a worker, delayed by the injection

	if err := stop(); err != nil {
		t.Fatalf("Run returned %v on graceful shutdown", err)
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request was dropped during shutdown: %v", r.err)
	}

	resilience.DisarmAll()
	// The drained request's response was cached and persisted: a fresh
	// cache sees a clean, complete file.
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Salvaged() {
		t.Error("cache file damaged by shutdown")
	}
	if c.Len() != 1 {
		t.Errorf("cache has %d entries after shutdown, want 1", c.Len())
	}
}

// TestServerOverload saturates a 1-worker, depth-1 daemon: excess
// requests are rejected with 429/ErrOverload instead of queueing, and
// the daemon keeps serving afterwards.
func TestServerOverload(t *testing.T) {
	srv, _ := startServer(t, Config{Workers: 1, QueueDepth: 1})
	if err := resilience.ArmSpec("core.pass1.loop=delay:300ms"); err != nil {
		t.Fatal(err)
	}
	defer resilience.DisarmAll()

	// Occupy the worker, then the queue slot.
	var wg sync.WaitGroup
	fire := func(i int) chan error {
		ch := make(chan error, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			remote := &Remote{URL: srv.URL()}
			_, err := remote.Compile(&CompileRequest{
				Name: fmt.Sprintf("load%d.spl", i), Source: splgen.Generate(int64(100 + i)), Level: "basic",
			})
			ch <- err
		}()
		return ch
	}
	first := fire(0)
	time.Sleep(100 * time.Millisecond)

	var chans []chan error
	for i := 1; i <= 8; i++ {
		chans = append(chans, fire(i))
	}
	wg.Wait()

	if err := <-first; err != nil {
		t.Errorf("first request failed: %v", err)
	}
	overloads := 0
	for i, ch := range chans {
		if err := <-ch; err != nil {
			var over *ErrOverload
			if !errors.As(err, &over) {
				t.Errorf("burst request %d: %v, want ErrOverload or success", i+1, err)
				continue
			}
			// Satellite contract: every 429 carries a Retry-After backoff
			// hint derived from queue depth x mean service time, floored
			// at one second.
			if over.RetryAfter < time.Second {
				t.Errorf("burst request %d: Retry-After = %v, want >= 1s", i+1, over.RetryAfter)
			}
			overloads++
		}
	}
	if overloads == 0 {
		t.Error("no request was rejected with 429 despite queue depth 1")
	}
	if m := srv.Snapshot(); m.QueueRejects != int64(overloads) {
		t.Errorf("queue_rejects = %d, want %d", m.QueueRejects, overloads)
	}

	resilience.DisarmAll()
	healthz(t, srv)
	remote := &Remote{URL: srv.URL()}
	if _, err := remote.Compile(&CompileRequest{Name: "after.spl", Source: splgen.Generate(200), Level: "basic"}); err != nil {
		t.Errorf("daemon unhealthy after overload: %v", err)
	}
}

// TestServerFaultInjection arms every registered injection point in turn
// against a running daemon: the affected request degrades or errors, the
// daemon stays healthy before and after, and a clean request still
// round-trips.
func TestServerFaultInjection(t *testing.T) {
	srv, _ := startServer(t, Config{Workers: 2})
	remote := &Remote{URL: srv.URL()}

	points := resilience.Points()
	if len(points) == 0 {
		t.Fatal("no registered injection points")
	}

	// Pick a source whose clean best-level compile selects at least one
	// SPT loop, so the per-loop pass-2 points actually fire.
	var src string
	for seed := int64(300); ; seed++ {
		if seed > 340 {
			t.Fatal("no generator seed in range selects an SPT loop")
		}
		s := splgen.Generate(seed)
		resp, err := ExecCompile(&CompileRequest{Name: "probe.spl", Source: s, Level: "best"}, Env{})
		if err == nil && resp.SPTCount > 0 {
			src = s
			break
		}
	}

	// Durability-path points (log flush/compaction, cache save) fire on
	// the daemon's persistence schedule, not on the request path: arming
	// them must leave request results untouched. Their failure semantics
	// are pinned by the dedicated incr/cache/crashtest suites.
	ioPoints := map[string]bool{
		"incr.log.flush":     true,
		"incr.log.rename":    true,
		"service.cache.save": true,
	}

	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			if ioPoints[point] {
				healthz(t, srv)
				if err := resilience.ArmSpec(point + "=error"); err != nil {
					t.Fatal(err)
				}
				defer resilience.DisarmAll()
				req := &SimulateRequest{
					Name:   fmt.Sprintf("fault-%s.spl", point),
					Source: src,
					Level:  "best",
				}
				resp, err := remote.Simulate(req)
				if err != nil {
					t.Fatalf("point %s: durability fault leaked into the request path: %v", point, err)
				}
				if resp.Compile.Degraded {
					t.Errorf("point %s: durability fault degraded a request", point)
				}
				resilience.DisarmAll()
				healthz(t, srv)
				return
			}
			healthz(t, srv)
			if err := resilience.ArmSpec(point + "=panic"); err != nil {
				t.Fatal(err)
			}
			defer resilience.DisarmAll()

			// The point name is folded into the request name so every
			// subtest starts cold in the daemon's cache.
			req := &SimulateRequest{
				Name:   fmt.Sprintf("fault-%s.spl", point),
				Source: src,
				Level:  "best",
			}
			resp, err := remote.Simulate(req)
			switch {
			case err != nil:
				// A hard failure (e.g. the simulator's guard) must come back
				// as a classified error, never a daemon crash.
				var perr *resilience.PanicError
				if !errors.As(err, &perr) {
					t.Logf("point %s: non-panic error shape: %v", point, err)
				}
			case resp.Compile.Degraded:
				// The compiler absorbed the fault fail-soft.
			default:
				t.Errorf("point %s: request neither degraded nor errored", point)
			}
			resilience.DisarmAll()
			healthz(t, srv)

			// The poisoned response must not have been cached: the same
			// request now succeeds cleanly.
			clean, err := remote.Simulate(req)
			if err != nil {
				t.Fatalf("point %s: clean retry failed: %v", point, err)
			}
			if clean.Compile.Degraded {
				t.Errorf("point %s: degraded response was served after disarm (cached poison)", point)
			}
			if clean.Meta.Cache == DispHit {
				t.Errorf("point %s: poisoned response was cached", point)
			}
		})
	}
}

// TestServerReqTimeout pins the 504 path: a request stalled past
// -req-timeout answers 504/timeout while the daemon survives, and the
// loop-level incr machinery stays active (the timeout is a cancellation,
// not a context deadline).
func TestServerReqTimeout(t *testing.T) {
	srv, _ := startServer(t, Config{Workers: 1, ReqTimeout: 50 * time.Millisecond})
	if err := resilience.ArmSpec("core.pass1.loop=delay:400ms"); err != nil {
		t.Fatal(err)
	}
	defer resilience.DisarmAll()

	remote := &Remote{URL: srv.URL()}
	_, err := remote.Compile(&CompileRequest{Name: "slow.spl", Source: splgen.Generate(9), Level: "best"})
	if err == nil {
		t.Fatal("stalled request did not error")
	}
	if !isTimeout(err) {
		t.Errorf("stalled request error = %v, want a deadline-classified error", err)
	}
	if m := srv.Snapshot(); m.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", m.Timeouts)
	}

	resilience.DisarmAll()
	healthz(t, srv)
	if _, err := remote.Compile(&CompileRequest{Name: "fast.spl", Source: splgen.Generate(10), Level: "best"}); err != nil {
		t.Errorf("daemon unhealthy after timeout: %v", err)
	}
}

func isTimeout(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}
