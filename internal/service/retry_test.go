package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sptc/internal/splgen"
)

// testPolicy returns a fast, deterministic retry policy that records
// every backoff it would have slept.
func testPolicy(attempts int, slept *[]time.Duration) *RetryPolicy {
	return &RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   time.Millisecond,
		MaxDelay:    10 * time.Millisecond,
		Rand:        func() float64 { return 1 },
		Sleep: func(ctx context.Context, d time.Duration) error {
			*slept = append(*slept, d)
			return nil
		},
	}
}

// flakyServer answers the first fail requests with failStatus/failBody,
// then succeeds with an empty CompileResponse.
func flakyServer(t *testing.T, fail int, failStatus int, failHeader http.Header, failBody string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(fail) {
			for k, vs := range failHeader {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(failStatus)
			fmt.Fprint(w, failBody)
			return
		}
		fmt.Fprint(w, "{}")
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func TestRetryMasksOverloadAndHonorsRetryAfter(t *testing.T) {
	srv, calls := flakyServer(t, 2, http.StatusTooManyRequests,
		http.Header{"Retry-After": []string{"2"}}, `{"error":"queue full","kind":"overload"}`)
	var slept []time.Duration
	r := &Remote{URL: srv.URL, Retry: testPolicy(4, &slept)}
	resp, err := r.Compile(&CompileRequest{Name: "a.spl", Source: "x", Level: "best"})
	if err != nil {
		t.Fatalf("retries did not mask the overload: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	if resp.Meta.Retries != 2 {
		t.Errorf("Meta.Retries = %d, want 2", resp.Meta.Retries)
	}
	if len(slept) != 2 {
		t.Fatalf("backoffs = %v, want 2", slept)
	}
	for i, d := range slept {
		// The server asked for 2s; the jittered exponential (max 10ms
		// here) must be floored up to it.
		if d < 2*time.Second {
			t.Errorf("backoff %d = %v ignored Retry-After: 2", i, d)
		}
	}
}

func TestRetryStopsAtMaxAttempts(t *testing.T) {
	srv, calls := flakyServer(t, 1000, http.StatusServiceUnavailable, nil, "upstream connect error")
	var slept []time.Duration
	r := &Remote{URL: srv.URL, Retry: testPolicy(3, &slept)}
	_, err := r.Compile(&CompileRequest{Name: "a.spl", Source: "x", Level: "best"})
	if err == nil {
		t.Fatal("exhausted retries returned success")
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("attempts = %d, want MaxAttempts=3", got)
	}
	if got := ErrorRetries(err); got != 2 {
		t.Errorf("ErrorRetries = %d, want 2", got)
	}
	var te *TransportError
	if !errors.As(err, &te) || te.Status != http.StatusServiceUnavailable {
		t.Errorf("final error = %v, want TransportError 503", err)
	}
}

// TestRetryNeverRetriesDeterministicErrors pins the idempotent-safety
// rule: compile/request errors are deterministic — a retry re-buys the
// same failure — so they surface immediately even under a retry policy.
func TestRetryNeverRetriesDeterministicErrors(t *testing.T) {
	for _, tc := range []struct {
		kind string
		body string
	}{
		{"request", `{"error":"empty source","kind":"request"}`},
		{"compile", `{"error":"parse error","kind":"compile"}`},
		{"panic", `{"error":"worker panicked","kind":"panic"}`},
	} {
		srv, calls := flakyServer(t, 1000, http.StatusBadRequest, nil, tc.body)
		var slept []time.Duration
		r := &Remote{URL: srv.URL, Retry: testPolicy(5, &slept)}
		_, err := r.Compile(&CompileRequest{Name: "a.spl", Source: "x", Level: "best"})
		if err == nil {
			t.Fatalf("kind %s: no error surfaced", tc.kind)
		}
		if got := calls.Load(); got != 1 {
			t.Errorf("kind %s: %d attempts, want 1 (no retries)", tc.kind, got)
		}
		if len(slept) != 0 {
			t.Errorf("kind %s: slept %v", tc.kind, slept)
		}
	}
}

// TestRetryDeadlineAware pins context awareness: when the caller's
// deadline would expire inside the next backoff, the transient error
// surfaces immediately instead of sleeping past the deadline.
func TestRetryDeadlineAware(t *testing.T) {
	srv, calls := flakyServer(t, 1000, http.StatusServiceUnavailable, nil, "")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	r := &Remote{
		URL:     srv.URL,
		Context: ctx,
		Retry: &RetryPolicy{
			MaxAttempts: 5,
			BaseDelay:   time.Hour, // every backoff overshoots the deadline
			MaxDelay:    time.Hour,
			Rand:        func() float64 { return 1 },
		},
	}
	start := time.Now()
	_, err := r.Compile(&CompileRequest{Name: "a.spl", Source: "x", Level: "best"})
	if err == nil {
		t.Fatal("want transient error, got success")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("retry slept past the caller's deadline (%v elapsed)", elapsed)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("attempts = %d, want 1 (backoff would overshoot)", got)
	}
}

// TestNonJSONErrorMapping pins satellite 2: error responses that are not
// the daemon's JSON shape (a proxy or LB answering for it) map to a
// typed TransportError with the status and a truncated body snippet.
func TestNonJSONErrorMapping(t *testing.T) {
	long := strings.Repeat("<html>bad gateway</html>", 50)
	for _, tc := range []struct {
		name       string
		status     int
		body       string
		wantSnip   string
		retryAfter string
	}{
		{"html", http.StatusBadGateway, long, strings.TrimSpace(long)[:128], ""},
		{"empty", http.StatusServiceUnavailable, "", "", "7"},
		{"plain", http.StatusTeapot, "short and stout", "short and stout", ""},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := http.Header{}
			if tc.retryAfter != "" {
				h.Set("Retry-After", tc.retryAfter)
			}
			srv, _ := flakyServer(t, 1000, tc.status, h, tc.body)
			r := &Remote{URL: srv.URL}
			_, err := r.Compile(&CompileRequest{Name: "a.spl", Source: "x", Level: "best"})
			var te *TransportError
			if !errors.As(err, &te) {
				t.Fatalf("error = %v (%T), want TransportError", err, err)
			}
			if te.Status != tc.status {
				t.Errorf("Status = %d, want %d", te.Status, tc.status)
			}
			if te.Snippet != tc.wantSnip {
				t.Errorf("Snippet = %q, want %q", te.Snippet, tc.wantSnip)
			}
			if tc.retryAfter != "" && te.RetryAfter != 7*time.Second {
				t.Errorf("RetryAfter = %v, want 7s", te.RetryAfter)
			}
			if !strings.Contains(err.Error(), fmt.Sprint(tc.status)) {
				t.Errorf("error text %q does not carry the status", err)
			}
		})
	}
}

func TestRetryConnectionRefused(t *testing.T) {
	// A server that is immediately closed: every dial is refused.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close()
	var slept []time.Duration
	r := &Remote{URL: url, Retry: testPolicy(3, &slept)}
	_, err := r.Compile(&CompileRequest{Name: "a.spl", Source: "x", Level: "best"})
	if err == nil {
		t.Fatal("want connection error")
	}
	if len(slept) != 2 {
		t.Errorf("backoffs = %v, want 2 (connection refused is retryable)", slept)
	}
	if got := ErrorRetries(err); got != 2 {
		t.Errorf("ErrorRetries = %d, want 2", got)
	}
	if !TransportFailure(err) {
		t.Errorf("connection refusal not classified as a transport failure: %v", err)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	b := &Breaker{Threshold: 3, Cooldown: 5 * time.Second, Clock: func() time.Time { return now }}

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Failure()
	}
	if b.Open() {
		t.Fatal("breaker opened below threshold")
	}
	b.Failure() // third consecutive failure
	if !b.Open() {
		t.Fatal("breaker did not open at threshold")
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request inside the cooldown")
	}

	// Cooldown elapses: exactly one probe goes through half-open.
	now = now.Add(6 * time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow() {
		t.Fatal("second caller won a probe slot while one is in flight")
	}

	// Probe fails: re-open for a fresh cooldown.
	b.Failure()
	if b.Allow() {
		t.Fatal("breaker allowed traffic right after a failed probe")
	}
	now = now.Add(6 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker did not half-open again")
	}
	b.Success()
	if b.Open() {
		t.Fatal("breaker still open after a successful probe")
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused traffic")
	}
}

// TestFailoverFallsBackAndRecovers pins the self-healing client: with
// the daemon gone, requests degrade to in-process execution marked
// Fallback; once the breaker opens, the network is not even tried; after
// the cooldown a probe discovers the recovered daemon and remote
// execution resumes, byte-identical.
func TestFailoverFallsBackAndRecovers(t *testing.T) {
	src := splgen.Generate(41)
	req := &CompileRequest{Name: "fo.spl", Source: src, Level: "best"}

	// A real daemon to compare against later.
	srv, _ := startServer(t, Config{Workers: 1})

	var down atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			w.WriteHeader(http.StatusBadGateway)
			fmt.Fprint(w, "<html>upstream down</html>")
			return
		}
		resp, err := http.Post(srv.URL()+r.URL.Path, "application/json", r.Body)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 32*1024)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				w.Write(buf[:n])
			}
			if err != nil {
				return
			}
		}
	}))
	t.Cleanup(proxy.Close)

	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	var slept []time.Duration
	f := &Failover{
		Remote:  &Remote{URL: proxy.URL, Retry: testPolicy(2, &slept)},
		Local:   &Local{Env: Env{}},
		Breaker: &Breaker{Threshold: 2, Cooldown: time.Minute, Clock: clock},
	}

	// Healthy path: remote, no fallback marking.
	direct, err := f.Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Meta.Fallback {
		t.Error("healthy remote response marked Fallback")
	}

	// Daemon vanishes: the same request still succeeds, locally.
	down.Store(true)
	fb, err := f.Compile(req)
	if err != nil {
		t.Fatalf("failover did not mask the outage: %v", err)
	}
	if !fb.Meta.Fallback {
		t.Error("fallback response not marked")
	}
	if fb.Meta.Retries == 0 {
		t.Error("fallback response lost the remote retry count")
	}
	if len(fb.Reports) != len(direct.Reports) || fb.SPTCount != direct.SPTCount {
		t.Error("fallback result diverges from the remote result")
	}

	// Second transport failure opens the breaker: requests short-circuit
	// to local without touching the network.
	if _, err := f.Compile(req); err != nil {
		t.Fatal(err)
	}
	if !f.Breaker.Open() {
		t.Fatal("breaker still closed after threshold transport failures")
	}
	attemptsBefore := len(slept)
	if resp, err := f.Compile(req); err != nil || !resp.Meta.Fallback {
		t.Fatalf("open-breaker request: err=%v fallback=%v", err, resp.Meta.Fallback)
	}
	if len(slept) != attemptsBefore {
		t.Error("open breaker still hit the network (backoffs recorded)")
	}

	// Daemon comes back; after the cooldown the probe closes the breaker
	// and remote execution resumes.
	down.Store(false)
	now = now.Add(2 * time.Minute)
	rec, err := f.Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Meta.Fallback {
		t.Error("post-recovery response still served locally")
	}
	if f.Breaker.Open() {
		t.Error("breaker still open after successful probe")
	}
}
