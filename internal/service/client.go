package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sptc/internal/resilience"
)

// Client executes compile and simulate requests: in-process (Local) or
// against a running sptd daemon (Remote). The front-ends render from the
// wire responses in both modes, so the printed bytes are identical by
// construction.
type Client interface {
	Compile(req *CompileRequest) (*CompileResponse, error)
	Simulate(req *SimulateRequest) (*SimulateResponse, error)
}

// Local executes requests in-process through the same executor the
// daemon's workers run. An optional Cache adds the daemon's
// content-addressed response caching (used by the equivalence tests; the
// one-shot CLIs run uncached).
type Local struct {
	Env   Env
	Cache *Cache
}

// Compile implements Client.
func (l *Local) Compile(req *CompileRequest) (*CompileResponse, error) {
	if l.Cache == nil {
		return ExecCompile(req, l.Env)
	}
	var meta RespMeta
	data, disp, err := l.Cache.GetOrCompute(CompileKey(req), func() ([]byte, bool, error) {
		resp, err := ExecCompile(req, l.Env)
		if err != nil {
			return nil, false, err
		}
		meta = resp.Meta
		b, merr := json.Marshal(resp)
		if merr != nil {
			return nil, false, merr
		}
		return b, !resp.Degraded, nil
	})
	if err != nil {
		return nil, err
	}
	resp := new(CompileResponse)
	if err := json.Unmarshal(data, resp); err != nil {
		return nil, err
	}
	resp.Meta = meta
	resp.Meta.Cache = disp
	return resp, nil
}

// Simulate implements Client.
func (l *Local) Simulate(req *SimulateRequest) (*SimulateResponse, error) {
	if l.Cache == nil {
		return ExecSimulate(req, l.Env)
	}
	var meta RespMeta
	data, disp, err := l.Cache.GetOrCompute(SimulateKey(req), func() ([]byte, bool, error) {
		resp, err := ExecSimulate(req, l.Env)
		if err != nil {
			return nil, false, err
		}
		meta = resp.Meta
		b, merr := json.Marshal(resp)
		if merr != nil {
			return nil, false, merr
		}
		return b, !resp.Compile.Degraded, nil
	})
	if err != nil {
		return nil, err
	}
	resp := new(SimulateResponse)
	if err := json.Unmarshal(data, resp); err != nil {
		return nil, err
	}
	resp.Meta = meta
	resp.Meta.Cache = disp
	return resp, nil
}

// errorBody is the daemon's error response shape.
type errorBody struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// Error kinds on the wire.
const (
	errKindRequest  = "request"
	errKindCompile  = "compile"
	errKindPanic    = "panic"
	errKindTimeout  = "timeout"
	errKindCanceled = "canceled"
	errKindOverload = "overload"
	errKindInternal = "internal"
)

// ErrOverload reports an admission-control rejection (HTTP 429): the
// daemon's queue was full. Clients may retry with backoff.
type ErrOverload struct{ Msg string }

func (e *ErrOverload) Error() string { return e.Msg }

// Remote executes requests against a running sptd daemon.
type Remote struct {
	// URL is the daemon base URL, e.g. "http://localhost:8347".
	URL string
	// HTTPClient overrides http.DefaultClient (tests, timeouts).
	HTTPClient *http.Client
	// Context cancels in-flight requests. Nil means context.Background().
	Context context.Context
}

func (r *Remote) client() *http.Client {
	if r.HTTPClient != nil {
		return r.HTTPClient
	}
	return http.DefaultClient
}

func (r *Remote) post(path string, reqBody any, respBody any) (RespMeta, error) {
	var meta RespMeta
	b, err := json.Marshal(reqBody)
	if err != nil {
		return meta, err
	}
	ctx := r.Context
	if ctx == nil {
		ctx = context.Background()
	}
	url := strings.TrimRight(r.URL, "/") + path
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		return meta, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := r.client().Do(hreq)
	if err != nil {
		return meta, fmt.Errorf("sptd: %w", err)
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(hresp.Body)
	if err != nil {
		return meta, fmt.Errorf("sptd: read response: %w", err)
	}
	meta.Cache = hresp.Header.Get("X-Sptd-Cache")
	meta.Compile = headerDur(hresp.Header, "X-Sptd-Compile-Us")
	meta.Simulate = headerDur(hresp.Header, "X-Sptd-Simulate-Us")
	if hresp.StatusCode != http.StatusOK {
		return meta, remoteError(hresp.StatusCode, data)
	}
	return meta, json.Unmarshal(data, respBody)
}

func headerDur(h http.Header, key string) time.Duration {
	us, err := strconv.ParseInt(h.Get(key), 10, 64)
	if err != nil {
		return 0
	}
	return time.Duration(us) * time.Microsecond
}

// remoteError maps the daemon's error kinds back to the error types the
// callers' fail-soft classification (resilience.ReasonFor) understands,
// so a remote panic or timeout degrades a harness job exactly like a
// local one.
func remoteError(status int, data []byte) error {
	var eb errorBody
	if json.Unmarshal(data, &eb) != nil || eb.Error == "" {
		return fmt.Errorf("sptd: HTTP %d: %s", status, strings.TrimSpace(string(data)))
	}
	switch eb.Kind {
	case errKindRequest:
		return &RequestError{Msg: eb.Error}
	case errKindPanic:
		return &resilience.PanicError{Value: eb.Error}
	case errKindTimeout:
		return fmt.Errorf("sptd: %s: %w", eb.Error, context.DeadlineExceeded)
	case errKindCanceled:
		return fmt.Errorf("sptd: %s: %w", eb.Error, context.Canceled)
	case errKindOverload:
		return &ErrOverload{Msg: eb.Error}
	default:
		return fmt.Errorf("sptd: %s", eb.Error)
	}
}

// Compile implements Client.
func (r *Remote) Compile(req *CompileRequest) (*CompileResponse, error) {
	resp := new(CompileResponse)
	meta, err := r.post("/v1/compile", req, resp)
	if err != nil {
		return nil, err
	}
	resp.Meta = meta
	return resp, nil
}

// Simulate implements Client.
func (r *Remote) Simulate(req *SimulateRequest) (*SimulateResponse, error) {
	resp := new(SimulateResponse)
	meta, err := r.post("/v1/simulate", req, resp)
	if err != nil {
		return nil, err
	}
	resp.Meta = meta
	return resp, nil
}
