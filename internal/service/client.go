package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sptc/internal/resilience"
)

// Client executes compile and simulate requests: in-process (Local) or
// against a running sptd daemon (Remote). The front-ends render from the
// wire responses in both modes, so the printed bytes are identical by
// construction.
type Client interface {
	Compile(req *CompileRequest) (*CompileResponse, error)
	Simulate(req *SimulateRequest) (*SimulateResponse, error)
}

// Local executes requests in-process through the same executor the
// daemon's workers run. An optional Cache adds the daemon's
// content-addressed response caching (used by the equivalence tests; the
// one-shot CLIs run uncached).
type Local struct {
	Env   Env
	Cache *Cache
}

// Compile implements Client.
func (l *Local) Compile(req *CompileRequest) (*CompileResponse, error) {
	if l.Cache == nil {
		return ExecCompile(req, l.Env)
	}
	var meta RespMeta
	data, disp, err := l.Cache.GetOrCompute(CompileKey(req), func() ([]byte, bool, error) {
		resp, err := ExecCompile(req, l.Env)
		if err != nil {
			return nil, false, err
		}
		meta = resp.Meta
		b, merr := json.Marshal(resp)
		if merr != nil {
			return nil, false, merr
		}
		return b, !resp.Degraded, nil
	})
	if err != nil {
		return nil, err
	}
	resp := new(CompileResponse)
	if err := json.Unmarshal(data, resp); err != nil {
		return nil, err
	}
	resp.Meta = meta
	resp.Meta.Cache = disp
	return resp, nil
}

// Simulate implements Client.
func (l *Local) Simulate(req *SimulateRequest) (*SimulateResponse, error) {
	if l.Cache == nil {
		return ExecSimulate(req, l.Env)
	}
	var meta RespMeta
	data, disp, err := l.Cache.GetOrCompute(SimulateKey(req), func() ([]byte, bool, error) {
		resp, err := ExecSimulate(req, l.Env)
		if err != nil {
			return nil, false, err
		}
		meta = resp.Meta
		b, merr := json.Marshal(resp)
		if merr != nil {
			return nil, false, merr
		}
		return b, !resp.Compile.Degraded, nil
	})
	if err != nil {
		return nil, err
	}
	resp := new(SimulateResponse)
	if err := json.Unmarshal(data, resp); err != nil {
		return nil, err
	}
	resp.Meta = meta
	resp.Meta.Cache = disp
	return resp, nil
}

// errorBody is the daemon's error response shape.
type errorBody struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// Error kinds on the wire.
const (
	errKindRequest  = "request"
	errKindCompile  = "compile"
	errKindPanic    = "panic"
	errKindTimeout  = "timeout"
	errKindCanceled = "canceled"
	errKindOverload = "overload"
	errKindInternal = "internal"
)

// ErrOverload reports an admission-control rejection (HTTP 429): the
// daemon's queue was full. Clients may retry after RetryAfter.
type ErrOverload struct {
	Msg string
	// RetryAfter is the daemon's backoff hint (the Retry-After header,
	// derived from queue depth x recent mean service time; 0 when the
	// header was absent).
	RetryAfter time.Duration
}

func (e *ErrOverload) Error() string { return e.Msg }

// TransportError is an error response that did not come from the daemon
// itself: a proxy or load balancer in front of sptd answering with HTML,
// plain text, or an empty body. It carries the status code and a
// truncated body snippet instead of a confusing JSON decode error.
type TransportError struct {
	Status     int
	Snippet    string // first transportSnippetLen bytes of the body
	RetryAfter time.Duration
}

// transportSnippetLen bounds the body excerpt a TransportError carries.
const transportSnippetLen = 128

func (e *TransportError) Error() string {
	if e.Snippet == "" {
		return fmt.Sprintf("sptd: HTTP %d (empty non-JSON body)", e.Status)
	}
	return fmt.Sprintf("sptd: HTTP %d: %s", e.Status, e.Snippet)
}

// Remote executes requests against a running sptd daemon.
type Remote struct {
	// URL is the daemon base URL, e.g. "http://localhost:8347".
	URL string
	// HTTPClient overrides http.DefaultClient (tests, timeouts).
	HTTPClient *http.Client
	// Context cancels in-flight requests. Nil means context.Background().
	Context context.Context
	// Retry, when non-nil, retries transient failures (overload, server
	// timeout, connection refused/reset) with bounded exponential
	// backoff. Nil disables retries (single attempt).
	Retry *RetryPolicy
}

func (r *Remote) client() *http.Client {
	if r.HTTPClient != nil {
		return r.HTTPClient
	}
	return http.DefaultClient
}

func (r *Remote) ctx() context.Context {
	if r.Context != nil {
		return r.Context
	}
	return context.Background()
}

// post runs one request, retrying transient failures under the Retry
// policy. meta.Retries reports the failed attempts that preceded the
// returned outcome, successful or not.
func (r *Remote) post(path string, reqBody any, respBody any) (RespMeta, error) {
	var meta RespMeta
	b, err := json.Marshal(reqBody)
	if err != nil {
		return meta, err
	}
	ctx := r.ctx()
	url := strings.TrimRight(r.URL, "/") + path
	var lastErr error
	for attempt := 0; ; attempt++ {
		meta, lastErr = r.postOnce(ctx, url, b, respBody)
		meta.Retries = attempt
		if lastErr == nil || !r.Retry.shouldRetry(ctx, attempt, lastErr) {
			return meta, wrapRetries(lastErr, attempt)
		}
		if err := r.Retry.backoff(ctx, attempt, lastErr); err != nil {
			// The caller's deadline expires before the backoff would end:
			// surface the transient error now instead of sleeping past it.
			return meta, wrapRetries(lastErr, attempt)
		}
	}
}

// retriedError transparently annotates a final error with the failed
// attempts behind it, so a Failover can account retries even when the
// response (and its RespMeta) was lost to the error path.
type retriedError struct {
	error
	retries int
}

func (e *retriedError) Unwrap() error { return e.error }

func wrapRetries(err error, retries int) error {
	if err == nil || retries == 0 {
		return err
	}
	return &retriedError{err, retries}
}

// ErrorRetries reports the failed attempts recorded in err's chain by a
// retrying Remote (0 for nil or unannotated errors).
func ErrorRetries(err error) int {
	var re *retriedError
	if errors.As(err, &re) {
		return re.retries
	}
	return 0
}

func (r *Remote) postOnce(ctx context.Context, url string, body []byte, respBody any) (RespMeta, error) {
	var meta RespMeta
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return meta, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := r.client().Do(hreq)
	if err != nil {
		return meta, fmt.Errorf("sptd: %w", err)
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(hresp.Body)
	if err != nil {
		return meta, fmt.Errorf("sptd: read response: %w", err)
	}
	meta.Cache = hresp.Header.Get("X-Sptd-Cache")
	meta.Compile = headerDur(hresp.Header, "X-Sptd-Compile-Us")
	meta.Simulate = headerDur(hresp.Header, "X-Sptd-Simulate-Us")
	if hresp.StatusCode != http.StatusOK {
		return meta, remoteError(hresp.StatusCode, hresp.Header, data)
	}
	return meta, json.Unmarshal(data, respBody)
}

func headerDur(h http.Header, key string) time.Duration {
	us, err := strconv.ParseInt(h.Get(key), 10, 64)
	if err != nil {
		return 0
	}
	return time.Duration(us) * time.Microsecond
}

// retryAfterHeader parses a Retry-After header in delay-seconds form (0
// when absent or unparseable; the HTTP-date form is not produced by sptd
// and is ignored).
func retryAfterHeader(h http.Header) time.Duration {
	secs, err := strconv.ParseInt(strings.TrimSpace(h.Get("Retry-After")), 10, 64)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// remoteError maps the daemon's error kinds back to the error types the
// callers' fail-soft classification (resilience.ReasonFor) understands,
// so a remote panic or timeout degrades a harness job exactly like a
// local one. A body that is not the daemon's JSON error shape (a proxy
// or LB answering for it) maps to a typed TransportError instead of a
// decode error.
func remoteError(status int, h http.Header, data []byte) error {
	var eb errorBody
	if json.Unmarshal(data, &eb) != nil || eb.Error == "" {
		snippet := strings.TrimSpace(string(data))
		if len(snippet) > transportSnippetLen {
			snippet = snippet[:transportSnippetLen]
		}
		return &TransportError{Status: status, Snippet: snippet, RetryAfter: retryAfterHeader(h)}
	}
	switch eb.Kind {
	case errKindRequest:
		return &RequestError{Msg: eb.Error}
	case errKindPanic:
		return &resilience.PanicError{Value: eb.Error}
	case errKindTimeout:
		return fmt.Errorf("sptd: %s: %w", eb.Error, context.DeadlineExceeded)
	case errKindCanceled:
		return fmt.Errorf("sptd: %s: %w", eb.Error, context.Canceled)
	case errKindOverload:
		return &ErrOverload{Msg: eb.Error, RetryAfter: retryAfterHeader(h)}
	default:
		return fmt.Errorf("sptd: %s", eb.Error)
	}
}

// Compile implements Client.
func (r *Remote) Compile(req *CompileRequest) (*CompileResponse, error) {
	resp := new(CompileResponse)
	meta, err := r.post("/v1/compile", req, resp)
	if err != nil {
		return nil, err
	}
	resp.Meta = meta
	return resp, nil
}

// Simulate implements Client.
func (r *Remote) Simulate(req *SimulateRequest) (*SimulateResponse, error) {
	resp := new(SimulateResponse)
	meta, err := r.post("/v1/simulate", req, resp)
	if err != nil {
		return nil, err
	}
	resp.Meta = meta
	return resp, nil
}
