package partition

import (
	"sync"

	"sptc/internal/bitset"
	"sptc/internal/cost"
)

// zeroMemo is the interned zero-set table: every distinct zero-set the
// search asks about (record costs and optimistic bounds share one key
// space) is propagated through the cost model at most once; repeat
// visits are answered from the table.
//
// The table is keyed by the set's 64-bit content hash, computed once per
// query; entries hold the full set for an exact compare, so there is no
// second hashing pass and no string key materialization on the insert
// path. Each shard stores its entries in one growable arena slice with
// the hash map pointing at chain heads (hash collisions link through
// memoEntry.next), so an insert costs one set clone plus amortized
// arena/map growth — no per-bucket slice allocations. For the parallel
// search the table is split into shards, each behind its own mutex, so
// workers publishing propagation results rarely contend; the serial
// search uses a single lock-free shard. Propagation runs outside the
// shard lock — two workers racing on one set may both compute it, but
// evaluations of the same zero-set are bit-identical by the evaluator's
// contract, so the duplicate is only wasted work, never a wrong answer.
type zeroMemo struct {
	locked bool
	mask   uint64
	shards []memoShard
}

type memoShard struct {
	mu      sync.Mutex
	m       map[uint64]int32 // content hash -> chain head in entries
	entries []memoEntry
}

type memoEntry struct {
	set   bitset.Set
	cost  float64
	next  int32 // next entry with the same hash (-1: chain end)
	owner int32
}

// memoShards is the shard count of the concurrent table (power of two).
const memoShards = 64

func newZeroMemo(parallel bool) *zeroMemo {
	n := 1
	if parallel {
		n = memoShards
	}
	z := &zeroMemo{locked: parallel, mask: uint64(n - 1), shards: make([]memoShard, n)}
	// Presize the arenas: repeated append-doubling of pointer-bearing
	// entries costs ~10% of a small serial search in growslice + write
	// barriers. The serial shard takes every insert, so it gets a large
	// arena; parallel shards split the load 64 ways.
	capPer := 512
	if parallel {
		capPer = 64
	}
	for i := range z.shards {
		z.shards[i].m = make(map[uint64]int32)
		z.shards[i].entries = make([]memoEntry, 0, capPer)
	}
	return z
}

// find walks the shard's hash chain for an exact match. Callers hold the
// shard lock when the memo is locked.
func (sh *memoShard) find(h uint64, zero bitset.Set) (*memoEntry, bool) {
	idx, ok := sh.m[h]
	if !ok {
		return nil, false
	}
	for idx >= 0 {
		e := &sh.entries[idx]
		if e.set.Equal(zero) {
			return e, true
		}
		idx = e.next
	}
	return nil, false
}

// insert prepends a new entry to the hash chain. Callers hold the shard
// lock when the memo is locked.
func (sh *memoShard) insert(h uint64, zero bitset.Set, c float64, owner int32) {
	head := int32(-1)
	if idx, ok := sh.m[h]; ok {
		head = idx
	}
	sh.entries = append(sh.entries, memoEntry{set: zero.Clone(), cost: c, next: head, owner: owner})
	sh.m[h] = int32(len(sh.entries) - 1)
}

// eval returns the misspeculation cost of the zero-set, propagating with
// ev only when no walker has asked about this content before. hit
// reports a table answer; cross reports a hit on an entry that a
// different owner (another worker) computed — the cross-worker sharing
// the sharded table exists for.
func (z *zeroMemo) eval(zero bitset.Set, ev *cost.Evaluator, owner int32) (c float64, hit, cross bool) {
	h := zero.Hash()
	sh := &z.shards[h&z.mask]
	if z.locked {
		sh.mu.Lock()
	}
	if e, ok := sh.find(h, zero); ok {
		cross = e.owner != owner
		c = e.cost
		if z.locked {
			sh.mu.Unlock()
		}
		return c, true, cross
	}
	if z.locked {
		sh.mu.Unlock()
	}

	c = ev.EvalSet(zero)

	if z.locked {
		sh.mu.Lock()
		if _, ok := sh.find(h, zero); ok {
			// Another worker published while we propagated; keep its
			// entry (same value bit for bit).
			sh.mu.Unlock()
			return c, false, false
		}
	}
	sh.insert(h, zero, c, owner)
	if z.locked {
		sh.mu.Unlock()
	}
	return c, false, false
}
