package partition

import (
	"sync"
	"sync/atomic"

	"sptc/internal/resilience"
)

// frontierDepth is how deep the coordinator expands the subset tree
// serially before fanning out: subtrees rooted at depth-2 nodes become
// tasks. The depth is a constant — independent of the worker count — so
// the task list, the per-task budget shares, and therefore the search
// outcome are identical no matter how many goroutines drain the list.
const frontierDepth = 2

// runParallel is the work-sharing branch-and-bound: a serial frontier
// expansion (recording candidates and charging the budget exactly like
// the serial search) collects subtree tasks, which a pool of
// Options.Workers goroutines then drains.
//
// Budgeted searches pre-split the remaining allowance across tasks in
// rank order (Budget.Split) and prune each task against the incumbent
// frozen after expansion plus the task's own finds, making every task a
// pure function of (graph, options, budget) — degradation decisions
// cannot depend on scheduling. Unbudgeted searches share one live
// incumbent, CAS-published on every improvement, so all workers prune
// against the global best; the partition returned is the same either
// way (the global (cost, size, rank) minimum), only the explored node
// counts differ.
func (s *searcher) runParallel(r *Result, budget *resilience.Budget) (*incumbent, []error) {
	coord := s.newWalker(-1, budget, false, false)
	coord.seedEmpty(r.EmptyCost)
	coord.record()

	// Serial frontier expansion. Mirrors walker.search node for node
	// (charging, bound cut, legality, size prune, record) down to
	// frontierDepth, where subtrees are queued instead of descended
	// into: a task's root node is charged and bound-checked by the
	// worker that runs it, exactly as the serial recursion would.
	var tasks [][]int32
	var expand func(lastIdx, depth int)
	expand = func(lastIdx, depth int) {
		if coord.stop != nil {
			return
		}
		if err := coord.budget.Spend(1); err != nil {
			coord.stop = err
			return
		}
		coord.nodes++
		if coord.boundCut(lastIdx) {
			return
		}
		for i := lastIdx + 1; i < s.n && coord.stop == nil; i++ {
			if !coord.legal(i) {
				continue
			}
			coord.push(i)
			if s.opt.PruneSize && coord.curSize > s.sizeLimit {
				coord.pop(i)
				continue
			}
			if coord.curSize <= s.sizeLimit {
				coord.record()
			}
			if depth+1 < frontierDepth {
				expand(i, depth+1)
			} else {
				prefix := make([]int32, 0, depth+1)
				coord.inSet.ForEach(func(j int) { prefix = append(prefix, int32(j)) })
				tasks = append(tasks, prefix)
			}
			coord.pop(i)
		}
	}
	expand(-1, 0)
	coord.release()

	r.SearchNodes += coord.nodes
	r.CostEvals += coord.costEvals
	r.DedupHits += coord.dedupHits
	r.BoundUpdates += coord.boundUps

	if coord.stop != nil || len(tasks) == 0 {
		return coord.snapshot(), []error{coord.stop}
	}

	// The frozen incumbent every task starts from. Live mode publishes
	// it as the shared bound's initial value instead.
	frozen := coord.snapshot()
	live := budget.Remaining() < 0 // unlimited allowance: deadline only
	var taskBudgets []*resilience.Budget
	if live {
		s.shared.Store(frozen)
	} else {
		taskBudgets = budget.Split(len(tasks))
	}

	workers := s.opt.Workers
	if workers > len(tasks) {
		workers = len(tasks)
	}

	// Per-task result slots, written by whichever worker ran the task
	// (disjoint indices, no locks) and reduced in task-rank order after
	// the join, so the reduction itself is schedule-free.
	stops := make([]error, len(tasks)+1)
	stops[0] = coord.stop
	taskBest := make([]*incumbent, len(tasks))
	walkers := make([]*walker, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		w := s.newWalker(int32(wi), nil, live, true)
		w.seedFrom(frozen)
		walkers[wi] = w
		wg.Add(1)
		go func(w *walker) {
			defer wg.Done()
			defer w.release()
			for {
				t := int(next.Add(1)) - 1
				if t >= len(tasks) {
					return
				}
				if live {
					w.budget = budget
				} else {
					// Frozen mode: each task is a pure function of its
					// pre-split budget share and the frozen incumbent —
					// reseed so nothing carries over from whatever task
					// this worker happened to run before.
					w.budget = taskBudgets[t]
					w.seedFrom(frozen)
				}
				w.stop = nil
				prefix := tasks[t]
				for _, i := range prefix {
					w.push(int(i))
				}
				w.search(int(prefix[len(prefix)-1]))
				for k := len(prefix) - 1; k >= 0; k-- {
					w.pop(int(prefix[k]))
				}
				stops[t+1] = w.stop
				taskBest[t] = w.snapshot()
			}
		}(w)
	}
	wg.Wait()

	for _, w := range walkers {
		r.SearchNodes += w.nodes
		r.CostEvals += w.costEvals
		r.DedupHits += w.dedupHits
		r.MemoShardHits += w.crossHits
		r.BoundUpdates += w.boundUps
	}

	best := frozen
	for _, cand := range taskBest {
		if cand != nil && incBetter(cand, best) {
			best = cand
		}
	}
	return best, stops
}
