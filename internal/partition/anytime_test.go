package partition_test

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"sptc/internal/cost"
	"sptc/internal/ir"
	"sptc/internal/partition"
	"sptc/internal/resilience"
)

// wideVCSource builds a loop with n independent accumulator recurrences:
// n violation candidates with no interdependence, so the unpruned search
// space is all 2^n subsets.
func wideVCSource(n int) string {
	var b strings.Builder
	b.WriteString("var a int[64];\n")
	for k := 0; k < n; k++ {
		fmt.Fprintf(&b, "var s%d int;\n", k)
	}
	b.WriteString("func main() {\n\tvar i int;\n\tfor (i = 0; i < 200; i++) {\n")
	for k := 0; k < n; k++ {
		fmt.Fprintf(&b, "\t\ts%d = (s%d + a[(i + %d) & 63] + %d) & 1048575;\n", k, k, k, k+1)
	}
	b.WriteString("\t\ta[(i * 7) & 63] = i;\n\t}\n\tprint(")
	for k := 0; k < n; k++ {
		if k > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "s%d", k)
	}
	b.WriteString(");\n}\n")
	return b.String()
}

// validateAnytime checks the invariants every Search result — degraded
// or not — must satisfy: the partition is self-consistent under the
// plain cost model and never worse than the serial fallback (the empty
// pre-fork partition, which is what a loop demoted to serial gets).
func validateAnytime(t *testing.T, r *partition.Result, m *cost.Model) {
	t.Helper()
	if r.Cost > r.EmptyCost+1e-9 {
		t.Fatalf("anytime cost %.9f exceeds serial fallback %.9f", r.Cost, r.EmptyCost)
	}
	if c := m.Evaluate(r.Move); math.Abs(c-r.Cost) > 1e-9 {
		t.Fatalf("returned move set evaluates to %.9f, search claimed %.9f", c, r.Cost)
	}
	sc := ir.NewSizeCache()
	sz := 0
	for s := range r.Move {
		sz += sc.StmtOps(s)
	}
	for s := range r.CopyConds {
		if !r.Move[s] {
			sz += sc.StmtOps(s)
		}
	}
	if sz != r.PreForkSize {
		t.Fatalf("returned sets size %d, search claimed %d", sz, r.PreForkSize)
	}
}

func TestAnytimeBudgetOne(t *testing.T) {
	for _, src := range []string{fig2ish, wideVCSource(8)} {
		g, m := loopGraph(t, src, 0)
		opt := partition.DefaultOptions()
		opt.MaxSearchNodes = 1
		r := partition.Search(g, m, opt)
		if r.Skipped {
			t.Fatal("skipped")
		}
		if len(g.VCs) > 0 && !r.Degraded {
			t.Fatalf("budget 1 on %d VCs not degraded", len(g.VCs))
		}
		if r.Degraded && r.DegradeReason != resilience.ReasonBudget {
			t.Fatalf("reason = %v", r.DegradeReason)
		}
		if r.SearchNodes > 1 {
			t.Fatalf("explored %d nodes on a 1-node budget", r.SearchNodes)
		}
		validateAnytime(t, r, m)
	}
}

// TestAnytimeMonotone: the search explores nodes in a deterministic
// order, so a larger budget sees a superset of the smaller budget's
// candidates and the best cost can only improve.
func TestAnytimeMonotone(t *testing.T) {
	g, m := loopGraph(t, wideVCSource(8), 0)
	opt := partition.DefaultOptions()
	opt.PruneBound = false // full enumeration: budgets bite at predictable points

	prev := math.Inf(1)
	var fullCost float64
	for _, budget := range []int{1, 2, 4, 16, 64, 256, 1 << 20} {
		o := opt
		o.MaxSearchNodes = budget
		r := partition.Search(g, m, o)
		validateAnytime(t, r, m)
		if r.Cost > prev+1e-12 {
			t.Fatalf("budget %d cost %.9f worse than smaller budget's %.9f", budget, r.Cost, prev)
		}
		prev = r.Cost
		if budget == 1<<20 {
			if r.Degraded {
				t.Fatalf("full budget degraded after %d nodes", r.SearchNodes)
			}
			fullCost = r.Cost
		}
	}
	if prev != fullCost {
		t.Fatalf("monotone chain did not end at the optimum")
	}
}

func TestAnytimeDeterministic(t *testing.T) {
	g, m := loopGraph(t, wideVCSource(8), 0)
	for _, budget := range []int{1, 7, 33, 100} {
		opt := partition.DefaultOptions()
		opt.MaxSearchNodes = budget
		a := partition.Search(g, m, opt)
		b := partition.Search(g, m, opt)
		if a.Cost != b.Cost || a.PreForkSize != b.PreForkSize ||
			a.SearchNodes != b.SearchNodes || a.Degraded != b.Degraded ||
			len(a.PreForkVCs) != len(b.PreForkVCs) {
			t.Fatalf("budget %d nondeterministic: %+v vs %+v", budget, a, b)
		}
		for i := range a.PreForkVCs {
			if a.PreForkVCs[i] != b.PreForkVCs[i] {
				t.Fatalf("budget %d picked different VCs", budget)
			}
		}
	}
}

// TestAnytimeSharedBudget: a budget shared across several searches is
// charged cumulatively, and a search entered with an exhausted budget
// degrades immediately to the serial fallback.
func TestAnytimeSharedBudget(t *testing.T) {
	g, m := loopGraph(t, wideVCSource(6), 0)
	opt := partition.DefaultOptions()
	opt.Budget = resilience.NewBudget(context.Background(), 10)

	first := partition.Search(g, m, opt)
	validateAnytime(t, first, m)
	if !first.Degraded {
		t.Fatalf("10-unit shared budget not exhausted by a 2^6 space (%d nodes)", first.SearchNodes)
	}

	second := partition.Search(g, m, opt)
	if !second.Degraded || second.DegradeReason != resilience.ReasonBudget {
		t.Fatalf("exhausted budget: degraded=%v reason=%v", second.Degraded, second.DegradeReason)
	}
	if second.SearchNodes != 0 {
		t.Fatalf("exhausted budget explored %d nodes", second.SearchNodes)
	}
	if second.Cost != second.EmptyCost || len(second.PreForkVCs) != 0 {
		t.Fatalf("exhausted budget returned a non-serial partition: %v", second)
	}
	validateAnytime(t, second, m)
}

func TestAnytimeContextCanceled(t *testing.T) {
	g, m := loopGraph(t, wideVCSource(10), 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := partition.DefaultOptions()
	opt.PruneBound = false // guarantee enough nodes to hit a deadline poll
	opt.MaxSearchNodes = 0 // unbounded: only the context stops it
	opt.Context = ctx
	r := partition.Search(g, m, opt)
	if !r.Degraded || r.DegradeReason != resilience.ReasonCanceled {
		t.Fatalf("degraded=%v reason=%v after %d nodes", r.Degraded, r.DegradeReason, r.SearchNodes)
	}
	validateAnytime(t, r, m)
}

func TestAnytimeInjectPoints(t *testing.T) {
	g, m := loopGraph(t, fig2ish, 0)
	opt := partition.DefaultOptions()

	t.Run("error", func(t *testing.T) {
		defer resilience.DisarmAll()
		resilience.Arm("partition.search", resilience.Fault{Kind: resilience.FaultError})
		r := partition.Search(g, m, opt)
		if !r.Degraded || r.DegradeReason != resilience.ReasonError {
			t.Fatalf("degraded=%v reason=%v", r.Degraded, r.DegradeReason)
		}
		if r.Cost != r.EmptyCost {
			t.Fatalf("injected error did not fall back to serial: %v", r)
		}
		validateAnytime(t, r, m)
	})

	t.Run("exhaust", func(t *testing.T) {
		defer resilience.DisarmAll()
		resilience.Arm("partition.search", resilience.Fault{Kind: resilience.FaultExhaust})
		r := partition.Search(g, m, opt)
		if !r.Degraded || r.DegradeReason != resilience.ReasonBudget {
			t.Fatalf("degraded=%v reason=%v", r.Degraded, r.DegradeReason)
		}
		validateAnytime(t, r, m)
	})

	t.Run("disarmed", func(t *testing.T) {
		r := partition.Search(g, m, opt)
		if r.Degraded {
			t.Fatalf("disarmed search degraded: %v", r)
		}
		validateAnytime(t, r, m)
	})
}
