package partition_test

import (
	"math"
	"testing"

	"sptc/internal/cost"
	"sptc/internal/depgraph"
	"sptc/internal/interp"
	"sptc/internal/ir"
	"sptc/internal/parser"
	"sptc/internal/partition"
	"sptc/internal/profile"
	"sptc/internal/sem"
	"sptc/internal/splgen"
	"sptc/internal/ssa"
)

// refResult is the outcome of the naive reference search.
type refResult struct {
	emptyCost float64
	cost      float64
	size      int
	nodes     int
}

// referenceSearch is the specification the optimized branch-and-bound is
// checked against: enumerate every legal downward-closed VC subset in
// the same DFS order, with plain maps and from-scratch model
// evaluations — no pruning, no bitsets, no memoization, no incremental
// propagation.
func referenceSearch(g *depgraph.Graph, m *cost.Model, sizeLimit int) *refResult {
	vcs := g.VCs
	n := len(vcs)

	// VC-dep predecessors via intra-iteration true-dependence
	// reachability (§5.1), recomputed here independently of the package.
	intraPreds := map[*ir.Stmt][]*ir.Stmt{}
	for _, e := range g.True {
		if !e.Cross {
			intraPreds[e.To] = append(intraPreds[e.To], e.From)
		}
	}
	isVC := map[*ir.Stmt]bool{}
	for _, vc := range vcs {
		isVC[vc] = true
	}
	var collect func(s *ir.Stmt, seen, out map[*ir.Stmt]bool)
	collect = func(s *ir.Stmt, seen, out map[*ir.Stmt]bool) {
		if seen[s] {
			return
		}
		seen[s] = true
		for _, p := range intraPreds[s] {
			if isVC[p] {
				out[p] = true
			}
			collect(p, seen, out)
		}
	}
	preds := make([]map[*ir.Stmt]bool, n)
	for i, vc := range vcs {
		out := map[*ir.Stmt]bool{}
		collect(vc, map[*ir.Stmt]bool{}, out)
		delete(out, vc)
		preds[i] = out
	}

	closures := make([]partition.Closure, n)
	for i, vc := range vcs {
		closures[i] = partition.ComputeClosure(g, vc)
	}

	in := make([]bool, n)
	sc := ir.NewSizeCache()

	// moveSet/condSet/size are recomputed from scratch out of the chosen
	// subset on every query; only the subset itself is incremental.
	moveSet := func() map[*ir.Stmt]bool {
		mv := map[*ir.Stmt]bool{}
		for i := range in {
			if in[i] {
				for s := range closures[i].Move {
					mv[s] = true
				}
			}
		}
		return mv
	}
	condSet := func() map[*ir.Stmt]bool {
		cd := map[*ir.Stmt]bool{}
		for i := range in {
			if in[i] {
				for s := range closures[i].CopyConds {
					cd[s] = true
				}
			}
		}
		return cd
	}
	sizeOf := func(mv, cd map[*ir.Stmt]bool) int {
		sz := 0
		for s := range mv {
			sz += sc.StmtOps(s)
		}
		for s := range cd {
			if !mv[s] {
				sz += sc.StmtOps(s)
			}
		}
		return sz
	}

	r := &refResult{emptyCost: m.Evaluate(nil)}
	r.cost, r.size = r.emptyCost, 0

	record := func() {
		mv := moveSet()
		sz := sizeOf(mv, condSet())
		if sz > sizeLimit {
			return
		}
		c := m.Evaluate(mv)
		if c < r.cost-1e-12 || (c < r.cost+1e-12 && sz < r.size) {
			r.cost, r.size = c, sz
		}
	}

	var walk func(last int)
	walk = func(last int) {
		r.nodes++
		for i := last + 1; i < n; i++ {
			legal := true
			for p := range preds[i] {
				inP := false
				for j, vc := range vcs {
					if vc == p && in[j] {
						inP = true
						break
					}
				}
				if !inP {
					legal = false
					break
				}
			}
			if !legal {
				continue
			}
			in[i] = true
			record()
			walk(i)
			in[i] = false
		}
	}
	record()
	walk(-1)
	return r
}

// maxOracleVCs bounds the exhaustive enumeration (2^n subsets).
const maxOracleVCs = 10

// checkSearchAgainstReference runs both the optimized search (under the
// given options — callers vary Workers to put the parallel search
// through the same oracle) and the naive reference on one loop and
// cross-checks every observable: optimal cost, empty cost, pre-fork
// size, node counts, and that the returned partition re-evaluates (from
// scratch, on the plain model) to the claimed cost.
func checkSearchAgainstReference(tb testing.TB, g *depgraph.Graph, m *cost.Model, opt partition.Options) {
	tb.Helper()
	if len(g.VCs) > maxOracleVCs {
		return
	}
	r := partition.Search(g, m, opt)
	if r.Skipped {
		return
	}
	ref := referenceSearch(g, m, r.SizeLimit)

	if math.Abs(r.EmptyCost-ref.emptyCost) > 1e-9 {
		tb.Fatalf("empty cost: search %.9f, reference %.9f", r.EmptyCost, ref.emptyCost)
	}
	if math.Abs(r.Cost-ref.cost) > 1e-9 {
		tb.Fatalf("optimal cost: search %.9f, reference %.9f", r.Cost, ref.cost)
	}
	// The pruned search guarantees the optimal *cost* but not the size
	// tie-break: the lower bound ignores size, so a subtree holding an
	// equal-cost smaller partition may be cut. The unpruned search below
	// must match the reference's size exactly.
	if r.SearchNodes > ref.nodes {
		tb.Fatalf("pruned search explored %d nodes, exhaustive space is %d", r.SearchNodes, ref.nodes)
	}

	// The returned partition must be self-consistent under the plain
	// model: its move set evaluates to the claimed cost, and its size
	// matches the size the search reported.
	if c := m.Evaluate(r.Move); math.Abs(c-r.Cost) > 1e-9 {
		tb.Fatalf("returned move set evaluates to %.9f, search claimed %.9f", c, r.Cost)
	}
	sc := ir.NewSizeCache()
	sz := 0
	for s := range r.Move {
		sz += sc.StmtOps(s)
	}
	for s := range r.CopyConds {
		if !r.Move[s] {
			sz += sc.StmtOps(s)
		}
	}
	if sz != r.PreForkSize {
		tb.Fatalf("returned sets size %d, search claimed %d", sz, r.PreForkSize)
	}

	// Without pruning the search must enumerate exactly the reference's
	// DFS space and land on the same optimum.
	noPrune := opt
	noPrune.PruneBound = false
	noPrune.PruneSize = false
	rn := partition.Search(g, m, noPrune)
	if rn.SearchNodes != ref.nodes {
		tb.Fatalf("unpruned search explored %d nodes, reference %d", rn.SearchNodes, ref.nodes)
	}
	if math.Abs(rn.Cost-ref.cost) > 1e-9 {
		tb.Fatalf("unpruned cost %.9f, reference %.9f", rn.Cost, ref.cost)
	}
	if rn.PreForkSize != ref.size {
		tb.Fatalf("unpruned pre-fork size: search %d, reference %d (cost %.4f)", rn.PreForkSize, ref.size, rn.Cost)
	}
}

// checkAnytimeOracle checks the anytime contract on one loop: under any
// node budget the search must return a valid, self-consistent partition
// that never costs more than the serial fallback, and an un-degraded
// result must equal the unbudgeted optimum.
func checkAnytimeOracle(tb testing.TB, g *depgraph.Graph, m *cost.Model) {
	tb.Helper()
	full := partition.Search(g, m, partition.DefaultOptions())
	if full.Skipped {
		return
	}
	for _, budget := range []int{1, 4, 64} {
		opt := partition.DefaultOptions()
		opt.MaxSearchNodes = budget
		r := partition.Search(g, m, opt)
		if r.Cost > r.EmptyCost+1e-9 {
			tb.Fatalf("budget %d: anytime cost %.9f exceeds serial fallback %.9f", budget, r.Cost, r.EmptyCost)
		}
		if r.Cost < full.Cost-1e-9 {
			tb.Fatalf("budget %d: anytime cost %.9f beats the unbudgeted optimum %.9f", budget, r.Cost, full.Cost)
		}
		if c := m.Evaluate(r.Move); math.Abs(c-r.Cost) > 1e-9 {
			tb.Fatalf("budget %d: move set evaluates to %.9f, search claimed %.9f", budget, c, r.Cost)
		}
		if r.SearchNodes > budget {
			tb.Fatalf("budget %d: search explored %d nodes", budget, r.SearchNodes)
		}
		if !r.Degraded && math.Abs(r.Cost-full.Cost) > 1e-9 {
			tb.Fatalf("budget %d: un-degraded result cost %.9f differs from optimum %.9f", budget, r.Cost, full.Cost)
		}
	}
}

// mainLoopGraphs compiles src, profiles it, and returns the dependence
// graph and cost model of every loop in main.
func mainLoopGraphs(tb testing.TB, src string) ([]*depgraph.Graph, []*cost.Model) {
	tb.Helper()
	p, err := parser.Parse("t.spl", src)
	if err != nil {
		tb.Fatalf("parse: %v\n%s", err, src)
	}
	info, err := sem.Check(p)
	if err != nil {
		tb.Fatalf("check: %v\n%s", err, src)
	}
	prog, err := ir.Build(info)
	if err != nil {
		tb.Fatalf("build: %v\n%s", err, src)
	}
	nests := make(map[*ir.Func]*ssa.LoopNest)
	for _, f := range prog.Funcs {
		dom := ssa.BuildDomTree(f)
		ssa.Build(f, dom)
		nests[f] = ssa.FindLoops(f, ssa.BuildDomTree(f))
	}
	prof := profile.NewProfiler(prog, nests)
	vm := interp.New(prog, discard{})
	vm.Hooks = prof.Hooks()
	if _, err := vm.Run(); err != nil {
		tb.Fatalf("profile: %v\n%s", err, src)
	}
	prof.Edge.Apply(prog)

	f := prog.Main
	pd := depgraph.BuildPostDom(f)
	effects := depgraph.ComputeEffects(prog)
	ctrl := depgraph.ControlDeps(f, pd)
	var gs []*depgraph.Graph
	var ms []*cost.Model
	for _, l := range nests[f].Loops {
		g := depgraph.Build(l, depgraph.Config{
			UseProfile: true,
			Dep:        prof.Dep,
			Effects:    effects,
			CtrlDeps:   ctrl,
		})
		if g == nil {
			continue
		}
		gs = append(gs, g)
		ms = append(ms, cost.Build(g))
	}
	return gs, ms
}

// TestSearchMatchesReference is the equivalence oracle on fixed inputs:
// the hand-written loop plus a block of generated programs.
func TestSearchMatchesReference(t *testing.T) {
	g, m := loopGraph(t, fig2ish, 0)
	checkSearchAgainstReference(t, g, m, partition.DefaultOptions())

	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		gs, ms := mainLoopGraphs(t, splgen.Generate(seed))
		for i := range gs {
			checkSearchAgainstReference(t, gs[i], ms[i], partition.DefaultOptions())
		}
	}
}

// fuzzSource maps a fuzzed seed to a program: non-negative seeds sample
// the transformation space (splgen.Generate), negative seeds produce
// search-adversarial programs (splgen.Adversarial) — deep VC chains and
// wide dependence fans that stress the branch-and-bound and the anytime
// budget paths.
func fuzzSource(seed int64) string {
	if seed < 0 {
		return splgen.Adversarial(-(seed + 1))
	}
	return splgen.Generate(seed)
}

// FuzzPartitionSearch feeds generated programs to the oracles: for every
// loop of every generated program, the bitset branch-and-bound must
// agree with the exhaustive map-based reference, and the budgeted search
// must honor the anytime contract.
func FuzzPartitionSearch(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	for seed := int64(-1); seed >= -4; seed-- {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		gs, ms := mainLoopGraphs(t, fuzzSource(seed))
		for i := range gs {
			checkSearchAgainstReference(t, gs[i], ms[i], partition.DefaultOptions())
			checkAnytimeOracle(t, gs[i], ms[i])
		}
	})
}

// TestAdversarialPrograms pins the adversarial generator into the
// regular test suite: both oracles over a block of pathological
// programs, independent of whether the fuzzer ever runs.
func TestAdversarialPrograms(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		gs, ms := mainLoopGraphs(t, splgen.Adversarial(seed))
		if len(gs) == 0 {
			t.Fatalf("seed %d: adversarial program produced no loop graphs", seed)
		}
		for i := range gs {
			checkSearchAgainstReference(t, gs[i], ms[i], partition.DefaultOptions())
			checkAnytimeOracle(t, gs[i], ms[i])
		}
	}
}
