package partition_test

// Worker-count invariance of the parallel branch-and-bound: for every
// graph in the corpus, Search with Workers ∈ {1, 2, 8} must return the
// same partition as the serial search — same Move/CopyConds/Cost, same
// pre-fork VCs — and, under a node budget (frozen-incumbent mode), the
// same SearchNodes and degradation decision. Run under -race in CI, the
// same sweep also exercises the sharded memo, the CAS-published
// incumbent, and the atomic budget for data races.

import (
	"fmt"
	"sort"
	"testing"

	"sptc/internal/cost"
	"sptc/internal/depgraph"
	"sptc/internal/partition"
	"sptc/internal/resilience"
)

// workerCorpus returns the graphs the invariance sweeps run over:
// structured loops, wide independent fans (worst-case subset trees),
// and the splgen + adversarial fuzz corpora.
func workerCorpus(t *testing.T) ([]*depgraph.Graph, []*cost.Model) {
	t.Helper()
	var graphs []*depgraph.Graph
	var models []*cost.Model
	add := func(src string) {
		gs, ms := mainLoopGraphs(t, src)
		graphs = append(graphs, gs...)
		models = append(models, ms...)
	}
	add(fig2ish)
	add(wideVCSource(8))
	add(wideVCSource(12))
	for seed := int64(0); seed < 6; seed++ {
		add(fuzzSource(seed))  // splgen.Generate
		add(fuzzSource(-seed)) // splgen.Adversarial
	}
	return graphs, models
}

// vcIDs is a canonical form of the pre-fork VC list for comparison.
func vcIDs(r *partition.Result) []int {
	ids := make([]int, 0, len(r.PreForkVCs))
	for _, vc := range r.PreForkVCs {
		ids = append(ids, vc.ID)
	}
	sort.Ints(ids)
	return ids
}

func sameResult(t *testing.T, label string, want, got *partition.Result) {
	t.Helper()
	if got.Cost != want.Cost {
		t.Errorf("%s: cost %v, want %v", label, got.Cost, want.Cost)
	}
	if got.PreForkSize != want.PreForkSize {
		t.Errorf("%s: pre-fork size %d, want %d", label, got.PreForkSize, want.PreForkSize)
	}
	if w, g := fmt.Sprint(vcIDs(want)), fmt.Sprint(vcIDs(got)); w != g {
		t.Errorf("%s: pre-fork VCs %s, want %s", label, g, w)
	}
	if len(got.Move) != len(want.Move) {
		t.Errorf("%s: move set size %d, want %d", label, len(got.Move), len(want.Move))
	}
	for s := range want.Move {
		if !got.Move[s] {
			t.Errorf("%s: move set missing s%d", label, s.ID)
		}
	}
	if len(got.CopyConds) != len(want.CopyConds) {
		t.Errorf("%s: copy-cond set size %d, want %d", label, len(got.CopyConds), len(want.CopyConds))
	}
	for s := range want.CopyConds {
		if !got.CopyConds[s] {
			t.Errorf("%s: copy-cond set missing s%d", label, s.ID)
		}
	}
	if got.Degraded != want.Degraded {
		t.Errorf("%s: degraded %v, want %v", label, got.Degraded, want.Degraded)
	}
}

// TestWorkersInvariance: the parallel search returns the serial result
// byte for byte at every worker count, and — because the default node
// budget selects frozen-incumbent mode — explores a worker-count-
// independent number of nodes.
func TestWorkersInvariance(t *testing.T) {
	graphs, models := workerCorpus(t)
	for gi, g := range graphs {
		serial := partition.Search(g, models[gi], partition.DefaultOptions())
		var nodes1 int
		for _, workers := range []int{1, 2, 8} {
			opt := partition.DefaultOptions()
			opt.Workers = workers
			r := partition.Search(g, models[gi], opt)
			label := fmt.Sprintf("graph %d (%d VCs) workers %d", gi, len(g.VCs), workers)
			sameResult(t, label, serial, r)
			if workers == 1 {
				nodes1 = r.SearchNodes
			} else if r.SearchNodes != nodes1 {
				t.Errorf("%s: %d search nodes, want %d (frozen mode is worker-count-invariant)",
					label, r.SearchNodes, nodes1)
			}
			if r.Workers != workers {
				t.Errorf("%s: result echoes Workers=%d", label, r.Workers)
			}
		}
	}
}

// TestWorkersUnbudgeted: with no node budget the workers share a live
// CAS-published incumbent; explored node counts may then differ between
// worker counts, but the partition may not.
func TestWorkersUnbudgeted(t *testing.T) {
	graphs, models := workerCorpus(t)
	for gi, g := range graphs {
		opt := partition.DefaultOptions()
		opt.MaxSearchNodes = 0
		serial := partition.Search(g, models[gi], opt)
		for _, workers := range []int{1, 2, 8} {
			opt := partition.DefaultOptions()
			opt.MaxSearchNodes = 0
			opt.Workers = workers
			r := partition.Search(g, models[gi], opt)
			sameResult(t, fmt.Sprintf("graph %d workers %d (unbudgeted)", gi, workers), serial, r)
		}
	}
}

// TestWorkersAnytime: under tight node budgets the parallel search keeps
// the anytime contract — a valid partition no worse than the serial
// fallback — and both the budget verdict and the partition are
// identical at every worker count >= 1 (deterministic pre-split shares,
// frozen incumbents).
func TestWorkersAnytime(t *testing.T) {
	graphs, models := workerCorpus(t)
	budgets := []int{1, 4, 64, 1024}
	for gi, g := range graphs {
		if len(g.VCs) == 0 {
			continue
		}
		for _, budget := range budgets {
			var first *partition.Result
			for _, workers := range []int{1, 2, 8} {
				opt := partition.DefaultOptions()
				opt.MaxSearchNodes = budget
				opt.Workers = workers
				r := partition.Search(g, models[gi], opt)
				validateAnytime(t, r, models[gi])
				label := fmt.Sprintf("graph %d budget %d workers %d", gi, budget, workers)
				if r.Degraded && r.DegradeReason != resilience.ReasonBudget {
					t.Errorf("%s: degrade reason %v", label, r.DegradeReason)
				}
				if first == nil {
					first = r
					continue
				}
				sameResult(t, label, first, r)
				if r.SearchNodes != first.SearchNodes {
					t.Errorf("%s: %d search nodes, want %d", label, r.SearchNodes, first.SearchNodes)
				}
			}
		}
	}
}

// TestWorkersRepeatable: the same (graph, budget, workers) triple gives
// the same answer on every run — the parallel search has no hidden
// scheduling dependence even while racing goroutines share the memo.
func TestWorkersRepeatable(t *testing.T) {
	graphs, models := workerCorpus(t)
	for gi, g := range graphs {
		if len(g.VCs) < 4 {
			continue
		}
		opt := partition.DefaultOptions()
		opt.Workers = 8
		first := partition.Search(g, models[gi], opt)
		for run := 0; run < 3; run++ {
			r := partition.Search(g, models[gi], opt)
			sameResult(t, fmt.Sprintf("graph %d run %d", gi, run), first, r)
			if r.SearchNodes != first.SearchNodes {
				t.Errorf("graph %d run %d: %d search nodes, want %d", gi, run, r.SearchNodes, first.SearchNodes)
			}
		}
	}
}

// TestWorkersAgainstOracle: the parallel search satisfies the exhaustive
// reference oracle exactly like the serial one.
func TestWorkersAgainstOracle(t *testing.T) {
	for seed := int64(-4); seed < 4; seed++ {
		graphs, models := mainLoopGraphs(t, fuzzSource(seed))
		for gi, g := range graphs {
			if len(g.VCs) == 0 || len(g.VCs) > maxOracleVCs {
				continue
			}
			opt := partition.DefaultOptions()
			opt.Workers = 4
			checkSearchAgainstReference(t, g, models[gi], opt)
		}
	}
}

// TestWorkersMemoSharing: on a wide fan the sharded memo actually
// shares propagations across workers (cross-worker hits show up in
// MemoShardHits) without changing the result.
func TestWorkersMemoSharing(t *testing.T) {
	gs, ms := mainLoopGraphs(t, wideVCSource(12))
	opt := partition.DefaultOptions()
	opt.Workers = 8
	r := partition.Search(gs[0], ms[0], opt)
	serial := partition.Search(gs[0], ms[0], partition.DefaultOptions())
	sameResult(t, "wide fan", serial, r)
	if serial.MemoShardHits != 0 {
		t.Errorf("serial search reports %d memo shard hits, want 0", serial.MemoShardHits)
	}
	t.Logf("workers=8: nodes=%d evals=%d dedup=%d shard-hits=%d bound-updates=%d",
		r.SearchNodes, r.CostEvals, r.DedupHits, r.MemoShardHits, r.BoundUpdates)
}
