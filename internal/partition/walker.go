package partition

import (
	"sync/atomic"

	"sptc/internal/bitset"
	"sptc/internal/cost"
	"sptc/internal/depgraph"
	"sptc/internal/ir"
	"sptc/internal/resilience"
)

// eps is the cost-comparison tolerance of the pruning heuristics. The
// incumbent and record comparisons themselves are exact (evaluations of
// one zero-set are bit-identical, so exact ties are meaningful and
// near-ties are modeling noise); the bound prune keeps the historical
// tolerance so a lower bound that equals the incumbent cost up to float
// noise still cuts.
const eps = 1e-12

// searcher holds everything about one Search call that is immutable once
// the precomputation is done, shared read-only by every walker: the
// dense closure/legality/suffix tables, the interned zero-set memo, the
// evaluator pool, and (in live-bound mode) the CAS-published shared
// incumbent.
type searcher struct {
	g   *depgraph.Graph
	m   *cost.Model
	opt Options

	vcs       []*ir.Stmt
	n         int // violation candidates
	nStmt     int // statements (dense indices)
	nVC       int // cost-model pseudo ordinals
	sizeLimit int

	ops        []int        // per-statement call-expanded op counts
	vcOrd      []int32      // statement index -> pseudo ordinal (-1: none)
	moveBits   []bitset.Set // per-VC move closure over statement indices
	condBits   []bitset.Set // per-VC copy-cond closure over statement indices
	moveVCBits []bitset.Set // per-VC zeroed pseudo ordinals of the closure
	predBits   []bitset.Set // per-VC legality predecessors over VC indices
	suffixZero []bitset.Set // zeroed ordinals of closures of vcs[i..]

	memo   *zeroMemo
	pool   *cost.EvaluatorPool
	shared atomic.Pointer[incumbent] // live-bound mode's global incumbent
}

// incumbent is an immutable published best partition. The total order on
// incumbents is (cost, pre-fork size, DFS discovery rank), all compared
// exactly; the rank is the subset's position in the serial depth-first
// visit order, which bitset.SeqLess compares without materializing
// ranks. The order is schedule-free: whichever walker finds the global
// minimum, every comparison against it resolves the same way, which is
// what makes the parallel search worker-count-invariant.
type incumbent struct {
	cost             float64
	size             int
	vcs, move, conds bitset.Set
}

// incBetter reports whether a precedes b in the (cost, size, rank)
// order.
func incBetter(a, b *incumbent) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	if a.size != b.size {
		return a.size < b.size
	}
	return a.vcs.SeqLess(b.vcs)
}

// walker is the mutable depth-first state of one explorer of the subset
// tree: the serial search, the parallel frontier coordinator, or a
// worker goroutine draining subtree tasks. All walkers of one Search
// share the searcher's immutable tables and memo; everything here is
// private to one goroutine.
type walker struct {
	s      *searcher
	id     int32 // memo owner (-1: serial/coordinator, else worker index)
	eval   *cost.Evaluator
	budget *resilience.Budget

	inSet     bitset.Set // VC indices in the pre-fork set
	curMove   bitset.Set
	curConds  bitset.Set
	curZero   bitset.Set
	boundZero bitset.Set
	moveRef   []int32
	condRef   []int32
	curSize   int

	// Local incumbent. For the serial walker and frozen-bound workers it
	// is the pruning bound; live-bound workers prune against the shared
	// incumbent instead and keep the local one as their publish staging.
	bestCost                     float64
	bestSize                     int
	bestVCs, bestMove, bestConds bitset.Set

	// live selects the shared atomic incumbent as the pruning bound.
	live bool
	// strict disables the equal-size tie cut. The serial walker and the
	// frontier coordinator visit candidates in DFS order, so their
	// incumbent always precedes the unexplored ones in rank and a
	// subtree whose lower bound ties the incumbent cost at equal size
	// can be cut (everything below loses the rank tie-break). A worker's
	// incumbent can come from a rank-later subtree (the frozen seed or a
	// shared-bound update), so workers must keep exploring at equal size
	// — cutting there could discard the rank winner.
	strict bool

	stop error

	nodes     int
	costEvals int
	dedupHits int
	crossHits int
	boundUps  int
}

func (s *searcher) newWalker(id int32, budget *resilience.Budget, live, strict bool) *walker {
	return &walker{
		s:      s,
		id:     id,
		eval:   s.pool.Get(),
		budget: budget,

		inSet:     bitset.New(s.n),
		curMove:   bitset.New(s.nStmt),
		curConds:  bitset.New(s.nStmt),
		curZero:   bitset.New(s.nVC),
		boundZero: bitset.New(s.nVC),
		moveRef:   make([]int32, s.nStmt),
		condRef:   make([]int32, s.nStmt),

		bestVCs:   bitset.New(s.n),
		bestMove:  bitset.New(s.nStmt),
		bestConds: bitset.New(s.nStmt),

		live:   live,
		strict: strict,
	}
}

// release returns the walker's evaluator to the pool.
func (w *walker) release() { w.s.pool.Put(w.eval) }

// seedEmpty initializes the incumbent to the serial fallback: the empty
// pre-fork partition (always legal, size 0).
func (w *walker) seedEmpty(emptyCost float64) {
	w.bestCost = emptyCost
	w.bestSize = 0
}

// seedFrom initializes the incumbent from a published candidate.
func (w *walker) seedFrom(inc *incumbent) {
	w.bestCost = inc.cost
	w.bestSize = inc.size
	w.bestVCs.CopyFrom(inc.vcs)
	w.bestMove.CopyFrom(inc.move)
	w.bestConds.CopyFrom(inc.conds)
}

// snapshot clones the walker's incumbent as a publishable candidate.
func (w *walker) snapshot() *incumbent {
	return &incumbent{
		cost: w.bestCost, size: w.bestSize,
		vcs: w.bestVCs.Clone(), move: w.bestMove.Clone(), conds: w.bestConds.Clone(),
	}
}

func (w *walker) evalZero(zero bitset.Set) float64 {
	c, hit, cross := w.s.memo.eval(zero, w.eval, w.id)
	if hit {
		w.dedupHits++
		if cross {
			w.crossHits++
		}
	} else {
		w.costEvals++
	}
	return c
}

// record evaluates the current partition and takes it as the incumbent
// when it precedes the current one in (cost, size, rank) order. Live
// walkers additionally CAS-publish improvements to the shared incumbent
// so every worker prunes against the global best.
func (w *walker) record() {
	c := w.evalZero(w.curZero)
	if c != w.bestCost {
		if c > w.bestCost {
			return
		}
	} else if w.curSize != w.bestSize {
		if w.curSize > w.bestSize {
			return
		}
	} else if !w.inSet.SeqLess(w.bestVCs) {
		return
	}
	w.bestCost = c
	w.bestSize = w.curSize
	w.bestVCs.CopyFrom(w.inSet)
	w.bestMove.CopyFrom(w.curMove)
	w.bestConds.CopyFrom(w.curConds)
	w.boundUps++
	if w.live {
		w.publish()
	}
}

// publish CAS-loops the walker's incumbent into the shared slot,
// yielding to any concurrently published candidate that precedes it.
func (w *walker) publish() {
	cand := w.snapshot()
	for {
		cur := w.s.shared.Load()
		if cur != nil && !incBetter(cand, cur) {
			return
		}
		if w.s.shared.CompareAndSwap(cur, cand) {
			return
		}
	}
}

// boundCut implements heuristic 2 (§5.2), extended so that it never cuts
// a subtree that could still win the documented (cost, size, rank)
// tie-break: the optimistic lower bound (every remaining closure
// applied) is compared against the incumbent, and a subtree whose bound
// ties the incumbent cost is only cut when its pre-fork size already
// ties or exceeds the incumbent's — size is monotone along a descent, so
// everything below would lose the size tie-break (or, at equal size for
// non-strict walkers, the rank tie-break). This is what makes bound
// pruning preserve the full tie-break, which the pre-dense-index search
// did not.
func (w *walker) boundCut(lastIdx int) bool {
	if !w.s.opt.PruneBound {
		return false
	}
	w.boundZero.CopyFrom(w.curZero)
	w.boundZero.Or(w.s.suffixZero[lastIdx+1])
	lb := w.evalZero(w.boundZero)
	bc, bs := w.bestCost, w.bestSize
	if w.live {
		if inc := w.s.shared.Load(); inc != nil {
			bc, bs = inc.cost, inc.size
		}
	}
	if lb > bc+eps {
		return true
	}
	if lb >= bc-eps {
		if w.curSize > bs {
			return true
		}
		if !w.strict && w.curSize == bs {
			return true
		}
	}
	return false
}

// legal reports whether vcs[i] may join the pre-fork set: all its VC-dep
// predecessors are already in (§5.2).
func (w *walker) legal(i int) bool {
	for wd, pw := range w.s.predBits[i] {
		if pw&^w.inSet[wd] != 0 {
			return false
		}
	}
	return true
}

// A statement contributes to the pre-fork size while it is referenced by
// any pushed closure, through either set (Move and CopyConds are
// disjoint: branches are only ever condition-copied, never moved).
func (w *walker) push(i int) {
	s := w.s
	w.inSet.Add(i)
	s.moveBits[i].ForEach(func(si int) {
		if w.moveRef[si] == 0 {
			w.curMove.Add(si)
			if w.condRef[si] == 0 {
				w.curSize += s.ops[si]
			}
			if o := s.vcOrd[si]; o >= 0 {
				w.curZero.Add(int(o))
			}
		}
		w.moveRef[si]++
	})
	s.condBits[i].ForEach(func(si int) {
		if w.condRef[si] == 0 {
			w.curConds.Add(si)
			if w.moveRef[si] == 0 {
				w.curSize += s.ops[si]
			}
		}
		w.condRef[si]++
	})
}

func (w *walker) pop(i int) {
	s := w.s
	w.inSet.Remove(i)
	s.moveBits[i].ForEach(func(si int) {
		w.moveRef[si]--
		if w.moveRef[si] == 0 {
			w.curMove.Remove(si)
			if w.condRef[si] == 0 {
				w.curSize -= s.ops[si]
			}
			if o := s.vcOrd[si]; o >= 0 {
				w.curZero.Remove(int(o))
			}
		}
	})
	s.condBits[i].ForEach(func(si int) {
		w.condRef[si]--
		if w.condRef[si] == 0 {
			w.curConds.Remove(si)
			if w.moveRef[si] == 0 {
				w.curSize -= s.ops[si]
			}
		}
	})
}

// search explores the subtree below the current set, extending it with
// candidates after lastIdx. Every invocation charges one work unit
// against the walker's budget; exhaustion sets w.stop and unwinds.
func (w *walker) search(lastIdx int) {
	if w.stop != nil {
		return
	}
	if err := w.budget.Spend(1); err != nil {
		w.stop = err
		return
	}
	w.nodes++

	if w.boundCut(lastIdx) {
		return
	}

	for i := lastIdx + 1; i < w.s.n && w.stop == nil; i++ {
		if !w.legal(i) {
			continue
		}
		w.push(i)
		if w.s.opt.PruneSize && w.curSize > w.s.sizeLimit {
			w.pop(i)
			continue // heuristic 1: descendants only grow
		}
		if w.curSize <= w.s.sizeLimit {
			w.record()
		}
		w.search(i)
		w.pop(i)
	}
}
