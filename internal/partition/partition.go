// Package partition implements §5 of the paper: finding the optimal SPT
// loop partition. The search space is the set of downward-closed subsets
// of violation candidates in the VC-dependence graph; a branch-and-bound
// search with the paper's two pruning heuristics finds the legal partition
// of minimum misspeculation cost subject to a pre-fork size threshold.
package partition

import (
	"fmt"
	"sort"
	"strings"

	"sptc/internal/cost"
	"sptc/internal/depgraph"
	"sptc/internal/ir"
)

// Options configures the search.
type Options struct {
	// MaxVCs skips loops with more violation candidates (paper: 30).
	MaxVCs int
	// PreForkFraction bounds the pre-fork region size as a fraction of
	// the loop body size.
	PreForkFraction float64
	// PruneSize enables heuristic 1 (§5.2.1): stop descending once the
	// pre-fork region exceeds the size threshold.
	PruneSize bool
	// PruneBound enables heuristic 2: stop descending when the optimistic
	// lower bound already exceeds the best cost found.
	PruneBound bool
	// MaxSearchNodes caps the search as a safety valve.
	MaxSearchNodes int
	// BodySize overrides the loop body size used for thresholds (0 =
	// static op count). The pipeline passes the effective, call-expanded
	// size here.
	BodySize int
}

// DefaultOptions mirror the paper's configuration.
func DefaultOptions() Options {
	return Options{
		MaxVCs:          30,
		PreForkFraction: 0.3,
		PruneSize:       true,
		PruneBound:      true,
		MaxSearchNodes:  1 << 20,
	}
}

// Closure is what moving one statement into the pre-fork region entails.
type Closure struct {
	// Move is the set of statements that must execute in the pre-fork
	// region (the statement plus its intra-iteration producers).
	Move map[*ir.Stmt]bool
	// CopyConds is the set of branch (StmtIf) statements whose conditions
	// must be replicated into the pre-fork region (Figure 12).
	CopyConds map[*ir.Stmt]bool
}

// Size is the call-expanded pre-fork op count the closure implies.
func (c Closure) Size() int { return closureSize(ir.NewSizeCache(), c.Move, c.CopyConds) }

// Result is the outcome of the optimal-partition search for one loop.
type Result struct {
	Graph *depgraph.Graph
	Model *cost.Model

	Skipped   bool // too many violation candidates
	VCCount   int
	BodySize  int
	SizeLimit int

	// Best partition found.
	PreForkVCs  []*ir.Stmt
	Move        map[*ir.Stmt]bool
	CopyConds   map[*ir.Stmt]bool
	PreForkSize int
	Cost        float64

	// EmptyCost is the misspeculation cost with an empty pre-fork region
	// (no reordering), for comparison.
	EmptyCost float64

	SearchNodes int
}

// String summarizes the result.
func (r *Result) String() string {
	if r.Skipped {
		return fmt.Sprintf("skipped (%d violation candidates)", r.VCCount)
	}
	var vcs []string
	for _, vc := range r.PreForkVCs {
		vcs = append(vcs, fmt.Sprintf("s%d", vc.ID))
	}
	return fmt.Sprintf("cost=%.3f (empty=%.3f) prefork=%d/%d ops, vcs=[%s], %d search nodes",
		r.Cost, r.EmptyCost, r.PreForkSize, r.BodySize, strings.Join(vcs, " "), r.SearchNodes)
}

// ComputeClosure determines the move set and condition copies required to
// place s (and everything it depends on within the iteration) into the
// pre-fork region.
func ComputeClosure(g *depgraph.Graph, s *ir.Stmt) Closure {
	c := Closure{Move: make(map[*ir.Stmt]bool), CopyConds: make(map[*ir.Stmt]bool)}

	// Index legality producers once per graph would be better; graphs are
	// small enough that a local index is fine.
	producers := make(map[*ir.Stmt][]*ir.Stmt)
	for _, e := range g.Legal {
		producers[e.Later] = append(producers[e.Later], e.Earlier)
	}

	var addMove func(*ir.Stmt)
	var addCond func(*ir.Stmt)
	addMove = func(s *ir.Stmt) {
		if s.IsTerminator() {
			// Branches are never moved; when a dependence requires a
			// branch's value in the pre-fork region (e.g. a memory
			// anti-dependence on its condition), the condition is
			// replicated instead (Figure 12's temp_cond).
			addCond(s)
			return
		}
		if c.Move[s] {
			return
		}
		c.Move[s] = true
		for _, p := range producers[s] {
			addMove(p)
		}
		for _, cd := range g.Ctrl[s] {
			addCond(cd.Branch)
		}
	}
	addCond = func(b *ir.Stmt) {
		if c.CopyConds[b] || c.Move[b] {
			return
		}
		c.CopyConds[b] = true
		// The condition's inputs must be available in the pre-fork region.
		for _, p := range producers[b] {
			addMove(p)
		}
		for _, cd := range g.Ctrl[b] {
			addCond(cd.Branch)
		}
	}
	addMove(s)
	return c
}

// closureSize is the call-expanded op count of a combined closure.
func closureSize(sc *ir.SizeCache, move, conds map[*ir.Stmt]bool) int {
	n := 0
	for s := range move {
		n += sc.StmtOps(s)
	}
	for s := range conds {
		if !move[s] {
			n += sc.StmtOps(s)
		}
	}
	return n
}

// vcDepGraph computes, for each violation candidate, the set of violation
// candidates it transitively depends on through intra-iteration true
// dependences (§5.1).
func vcDepGraph(g *depgraph.Graph) map[*ir.Stmt][]*ir.Stmt {
	// Transitive reachability over intra edges, restricted to VCs.
	intraPreds := make(map[*ir.Stmt][]*ir.Stmt)
	for _, e := range g.True {
		if !e.Cross {
			intraPreds[e.To] = append(intraPreds[e.To], e.From)
		}
	}
	isVC := make(map[*ir.Stmt]bool, len(g.VCs))
	for _, vc := range g.VCs {
		isVC[vc] = true
	}

	memo := make(map[*ir.Stmt]map[*ir.Stmt]bool)
	var reach func(s *ir.Stmt, visiting map[*ir.Stmt]bool) map[*ir.Stmt]bool
	reach = func(s *ir.Stmt, visiting map[*ir.Stmt]bool) map[*ir.Stmt]bool {
		if r, ok := memo[s]; ok {
			return r
		}
		if visiting[s] {
			return nil
		}
		visiting[s] = true
		r := make(map[*ir.Stmt]bool)
		for _, p := range intraPreds[s] {
			if isVC[p] {
				r[p] = true
			}
			for q := range reach(p, visiting) {
				r[q] = true
			}
		}
		delete(visiting, s)
		memo[s] = r
		return r
	}

	out := make(map[*ir.Stmt][]*ir.Stmt, len(g.VCs))
	for _, vc := range g.VCs {
		var preds []*ir.Stmt
		for p := range reach(vc, make(map[*ir.Stmt]bool)) {
			if p != vc {
				preds = append(preds, p)
			}
		}
		sort.Slice(preds, func(i, j int) bool { return g.Order[preds[i]] < g.Order[preds[j]] })
		out[vc] = preds
	}
	return out
}

// Search finds the optimal partition for the loop described by g.
func Search(g *depgraph.Graph, m *cost.Model, opt Options) *Result {
	r := &Result{
		Graph:     g,
		Model:     m,
		VCCount:   len(g.VCs),
		BodySize:  g.Loop.BodySize(),
		Move:      make(map[*ir.Stmt]bool),
		CopyConds: make(map[*ir.Stmt]bool),
	}
	if opt.BodySize > 0 {
		r.BodySize = opt.BodySize
	}
	r.SizeLimit = int(float64(r.BodySize) * opt.PreForkFraction)
	r.EmptyCost = m.Evaluate(nil)

	if opt.MaxVCs > 0 && len(g.VCs) > opt.MaxVCs {
		r.Skipped = true
		return r
	}

	// VCs are already in iteration order, which topologically orders the
	// VC-dep graph (intra edges are forward).
	vcs := g.VCs
	vcPreds := vcDepGraph(g)
	closures := make([]Closure, len(vcs))
	for i, vc := range vcs {
		closures[i] = ComputeClosure(g, vc)
	}
	idxOf := make(map[*ir.Stmt]int, len(vcs))
	for i, vc := range vcs {
		idxOf[vc] = i
	}

	// suffixMayMove[i] = union of closures of vcs[i..] (move sets), used
	// for the optimistic lower bound of heuristic 2.
	suffixMayMove := make([]map[*ir.Stmt]bool, len(vcs)+1)
	suffixMayMove[len(vcs)] = map[*ir.Stmt]bool{}
	for i := len(vcs) - 1; i >= 0; i-- {
		u := make(map[*ir.Stmt]bool, len(suffixMayMove[i+1])+len(closures[i].Move))
		for s := range suffixMayMove[i+1] {
			u[s] = true
		}
		for s := range closures[i].Move {
			u[s] = true
		}
		suffixMayMove[i] = u
	}

	// Best so far: the empty partition (always legal, size 0).
	r.Cost = r.EmptyCost
	r.PreForkSize = 0

	inSet := make([]bool, len(vcs))
	curMove := make(map[*ir.Stmt]bool)
	curConds := make(map[*ir.Stmt]bool)
	moveRef := make(map[*ir.Stmt]int)
	condRef := make(map[*ir.Stmt]int)

	sizes := ir.NewSizeCache()
	record := func() {
		sz := closureSize(sizes, curMove, curConds)
		c := m.Evaluate(curMove)
		if c < r.Cost-1e-12 || (c < r.Cost+1e-12 && sz < r.PreForkSize) {
			r.Cost = c
			r.PreForkSize = sz
			r.PreForkVCs = nil
			for i, vc := range vcs {
				if inSet[i] {
					r.PreForkVCs = append(r.PreForkVCs, vc)
				}
			}
			r.Move = copySet(curMove)
			r.CopyConds = copySet(curConds)
		}
	}

	push := func(i int) {
		inSet[i] = true
		for s := range closures[i].Move {
			if moveRef[s] == 0 {
				curMove[s] = true
			}
			moveRef[s]++
		}
		for s := range closures[i].CopyConds {
			if condRef[s] == 0 {
				curConds[s] = true
			}
			condRef[s]++
		}
	}
	pop := func(i int) {
		inSet[i] = false
		for s := range closures[i].Move {
			moveRef[s]--
			if moveRef[s] == 0 {
				delete(curMove, s)
			}
		}
		for s := range closures[i].CopyConds {
			condRef[s]--
			if condRef[s] == 0 {
				delete(curConds, s)
			}
		}
	}

	var search func(lastIdx int)
	search = func(lastIdx int) {
		if r.SearchNodes >= opt.MaxSearchNodes {
			return
		}
		r.SearchNodes++

		if opt.PruneBound {
			lb := m.EvaluateOptimistic(curMove, suffixMayMove[lastIdx+1])
			if lb >= r.Cost-1e-12 {
				return
			}
		}

		for i := lastIdx + 1; i < len(vcs); i++ {
			// §5.2: a node may be added only when all its VC-dep
			// predecessors are already in the pre-fork region.
			ok := true
			for _, p := range vcPreds[vcs[i]] {
				if !inSet[idxOf[p]] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			push(i)
			sz := closureSize(sizes, curMove, curConds)
			if opt.PruneSize && sz > r.SizeLimit {
				pop(i)
				continue // heuristic 1: descendants only grow
			}
			if sz <= r.SizeLimit {
				record()
			}
			search(i)
			pop(i)
		}
	}

	record() // empty partition
	search(-1)
	return r
}

func copySet(m map[*ir.Stmt]bool) map[*ir.Stmt]bool {
	out := make(map[*ir.Stmt]bool, len(m))
	for k, v := range m {
		if v {
			out[k] = true
		}
	}
	return out
}
