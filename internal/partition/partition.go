// Package partition implements §5 of the paper: finding the optimal SPT
// loop partition. The search space is the set of downward-closed subsets
// of violation candidates in the VC-dependence graph; a branch-and-bound
// search with the paper's two pruning heuristics finds the legal partition
// of minimum misspeculation cost subject to a pre-fork size threshold.
package partition

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"sptc/internal/bitset"
	"sptc/internal/cost"
	"sptc/internal/depgraph"
	"sptc/internal/ir"
	"sptc/internal/resilience"
)

// injectSearch fires once per Search call, before any node is explored;
// tests and CLIs arm it to force panics or budget exhaustion inside the
// branch-and-bound.
var injectSearch = resilience.Register("partition.search")

// Options configures the search.
type Options struct {
	// MaxVCs skips loops with more violation candidates (paper: 30).
	MaxVCs int
	// PreForkFraction bounds the pre-fork region size as a fraction of
	// the loop body size.
	PreForkFraction float64
	// PruneSize enables heuristic 1 (§5.2.1): stop descending once the
	// pre-fork region exceeds the size threshold.
	PruneSize bool
	// PruneBound enables heuristic 2: stop descending when the optimistic
	// lower bound already exceeds the best cost found.
	PruneBound bool
	// MaxSearchNodes is the search-node budget. The search is anytime:
	// when the budget runs out it stops and returns the best partition
	// found so far with Degraded set, instead of running unbounded
	// (paper §5's pruning becomes a soft bound). <= 0 means unbounded.
	MaxSearchNodes int
	// BodySize overrides the loop body size used for thresholds (0 =
	// static op count). The pipeline passes the effective, call-expanded
	// size here.
	BodySize int
	// Context carries the wall-clock deadline and cancellation for the
	// search (nil = context.Background()). Deadline exhaustion, like
	// node-budget exhaustion, yields the best partition so far.
	Context context.Context
	// Budget, when non-nil, replaces the internally built budget: every
	// search node charges one work unit, so one budget can be shared
	// across the searches of a whole compilation phase. MaxSearchNodes
	// and Context are ignored when Budget is set.
	//
	// With Workers >= 1 the search assumes exclusive ownership of the
	// budget for the duration of the call and pre-splits its remaining
	// units across subtree tasks (see Workers); callers sharing one
	// allowance across several parallel searches should carve it up
	// first with Budget.Split.
	Budget *resilience.Budget
	// Workers selects the parallel branch-and-bound: the search expands
	// a deterministic frontier of subtrees serially, then fans the
	// subtree tasks out to this many goroutines. The returned partition
	// is byte-identical for every Workers value >= 1 (and equal to the
	// serial result): candidates are totally ordered by (cost, pre-fork
	// size, DFS discovery rank) and the reducer takes the global minimum
	// of that order, which no schedule can change. 0 (the default) runs
	// the classic serial depth-first search.
	//
	// With a node budget (the default), each task prunes against the
	// incumbent frozen after frontier expansion plus its own
	// improvements, and spends a deterministically pre-split share of
	// the budget, so degradation decisions are also identical at every
	// worker count. Unbudgeted searches prune against a live shared
	// incumbent (CAS-published) instead — same partition, fewer explored
	// nodes, but scheduling-dependent SearchNodes.
	Workers int
}

// DefaultOptions mirror the paper's configuration.
func DefaultOptions() Options {
	return Options{
		MaxVCs:          30,
		PreForkFraction: 0.3,
		PruneSize:       true,
		PruneBound:      true,
		MaxSearchNodes:  1 << 20,
	}
}

// Closure is what moving one statement into the pre-fork region entails.
type Closure struct {
	// Move is the set of statements that must execute in the pre-fork
	// region (the statement plus its intra-iteration producers).
	Move map[*ir.Stmt]bool
	// CopyConds is the set of branch (StmtIf) statements whose conditions
	// must be replicated into the pre-fork region (Figure 12).
	CopyConds map[*ir.Stmt]bool
}

// Size is the call-expanded pre-fork op count the closure implies.
func (c Closure) Size() int { return closureSize(ir.NewSizeCache(), c.Move, c.CopyConds) }

// Result is the outcome of the optimal-partition search for one loop.
type Result struct {
	Graph *depgraph.Graph
	Model *cost.Model

	Skipped   bool // too many violation candidates
	VCCount   int
	BodySize  int
	SizeLimit int

	// Best partition found.
	PreForkVCs  []*ir.Stmt
	Move        map[*ir.Stmt]bool
	CopyConds   map[*ir.Stmt]bool
	PreForkSize int
	Cost        float64

	// EmptyCost is the misspeculation cost with an empty pre-fork region
	// (no reordering), for comparison.
	EmptyCost float64

	// Degraded reports that the search stopped early — node budget or
	// wall-clock deadline exhausted — and the partition is the best found
	// so far rather than the proven optimum. A degraded result is still
	// valid and legal, and its cost never exceeds the serial fallback
	// (the empty pre-fork partition): the search starts from that
	// partition and only ever improves on it.
	Degraded bool
	// DegradeReason classifies why the search degraded (ReasonNone when
	// it ran to completion).
	DegradeReason resilience.Reason

	SearchNodes int
	// CostEvals counts cost-model propagations actually performed;
	// DedupHits counts evaluations answered from the interned zero-set
	// table without propagating. Recomputes counts the dirty nodes the
	// incremental evaluator recomputed across those propagations.
	CostEvals  int
	DedupHits  int
	Recomputes int

	// Workers echoes Options.Workers. BoundUpdates counts incumbent
	// improvements across all walkers (how often the shared bound
	// tightened); MemoShardHits counts zero-set lookups answered from an
	// entry another worker propagated — the cross-worker sharing the
	// concurrent memo exists for (0 in the serial search). With Workers
	// >= 2, CostEvals/DedupHits/MemoShardHits depend on scheduling (two
	// workers may race to propagate one set); SearchNodes and the
	// partition itself do not as long as a node budget is set.
	Workers       int
	BoundUpdates  int
	MemoShardHits int
}

// String summarizes the result.
func (r *Result) String() string {
	if r.Skipped {
		return fmt.Sprintf("skipped (%d violation candidates)", r.VCCount)
	}
	var vcs []string
	for _, vc := range r.PreForkVCs {
		vcs = append(vcs, fmt.Sprintf("s%d", vc.ID))
	}
	degraded := ""
	if r.Degraded {
		degraded = fmt.Sprintf(", degraded (%s)", r.DegradeReason)
	}
	return fmt.Sprintf("cost=%.3f (empty=%.3f) prefork=%d/%d ops, vcs=[%s], %d search nodes%s",
		r.Cost, r.EmptyCost, r.PreForkSize, r.BodySize, strings.Join(vcs, " "), r.SearchNodes, degraded)
}

// ComputeClosure determines the move set and condition copies required to
// place s (and everything it depends on within the iteration) into the
// pre-fork region.
func ComputeClosure(g *depgraph.Graph, s *ir.Stmt) Closure {
	return computeClosure(g, legalProducers(g), s)
}

// legalProducers indexes the legality edges by consumer, so closures of
// many statements of one graph share the index.
func legalProducers(g *depgraph.Graph) map[*ir.Stmt][]*ir.Stmt {
	producers := make(map[*ir.Stmt][]*ir.Stmt)
	for _, e := range g.Legal {
		producers[e.Later] = append(producers[e.Later], e.Earlier)
	}
	return producers
}

func computeClosure(g *depgraph.Graph, producers map[*ir.Stmt][]*ir.Stmt, s *ir.Stmt) Closure {
	c := Closure{Move: make(map[*ir.Stmt]bool), CopyConds: make(map[*ir.Stmt]bool)}

	var addMove func(*ir.Stmt)
	var addCond func(*ir.Stmt)
	addMove = func(s *ir.Stmt) {
		if s.IsTerminator() {
			// Branches are never moved; when a dependence requires a
			// branch's value in the pre-fork region (e.g. a memory
			// anti-dependence on its condition), the condition is
			// replicated instead (Figure 12's temp_cond).
			addCond(s)
			return
		}
		if c.Move[s] {
			return
		}
		c.Move[s] = true
		for _, p := range producers[s] {
			addMove(p)
		}
		for _, cd := range g.Ctrl[s] {
			addCond(cd.Branch)
		}
	}
	addCond = func(b *ir.Stmt) {
		if c.CopyConds[b] || c.Move[b] {
			return
		}
		c.CopyConds[b] = true
		// The condition's inputs must be available in the pre-fork region.
		for _, p := range producers[b] {
			addMove(p)
		}
		for _, cd := range g.Ctrl[b] {
			addCond(cd.Branch)
		}
	}
	addMove(s)
	return c
}

// closureSize is the call-expanded op count of a combined closure.
func closureSize(sc *ir.SizeCache, move, conds map[*ir.Stmt]bool) int {
	n := 0
	for s := range move {
		n += sc.StmtOps(s)
	}
	for s := range conds {
		if !move[s] {
			n += sc.StmtOps(s)
		}
	}
	return n
}

// vcDepGraph computes, for each violation candidate, the set of violation
// candidates it transitively depends on through intra-iteration true
// dependences (§5.1).
func vcDepGraph(g *depgraph.Graph) map[*ir.Stmt][]*ir.Stmt {
	// Transitive reachability over intra edges, restricted to VCs.
	intraPreds := make(map[*ir.Stmt][]*ir.Stmt)
	for _, e := range g.True {
		if !e.Cross {
			intraPreds[e.To] = append(intraPreds[e.To], e.From)
		}
	}
	isVC := make(map[*ir.Stmt]bool, len(g.VCs))
	for _, vc := range g.VCs {
		isVC[vc] = true
	}

	memo := make(map[*ir.Stmt]map[*ir.Stmt]bool)
	var reach func(s *ir.Stmt, visiting map[*ir.Stmt]bool) map[*ir.Stmt]bool
	reach = func(s *ir.Stmt, visiting map[*ir.Stmt]bool) map[*ir.Stmt]bool {
		if r, ok := memo[s]; ok {
			return r
		}
		if visiting[s] {
			return nil
		}
		visiting[s] = true
		r := make(map[*ir.Stmt]bool)
		for _, p := range intraPreds[s] {
			if isVC[p] {
				r[p] = true
			}
			for q := range reach(p, visiting) {
				r[q] = true
			}
		}
		delete(visiting, s)
		memo[s] = r
		return r
	}

	out := make(map[*ir.Stmt][]*ir.Stmt, len(g.VCs))
	for _, vc := range g.VCs {
		var preds []*ir.Stmt
		for p := range reach(vc, make(map[*ir.Stmt]bool)) {
			if p != vc {
				preds = append(preds, p)
			}
		}
		sort.Slice(preds, func(i, j int) bool { return g.Order[preds[i]] < g.Order[preds[j]] })
		out[vc] = preds
	}
	return out
}

// Search finds the optimal partition for the loop described by g.
//
// The search works entirely on dense indices: statements are numbered by
// g.Order, closures and the current move/copy-cond sets are bitsets over
// those indices, violation-candidate sets are bitsets over the cost
// model's pseudo ordinals, and every cost query goes through an interned
// zero-set table backed by the incremental cost.Evaluator, so the §4.2.3
// propagation runs once per distinct downward-closed set instead of once
// per search node.
//
// Search is an anytime algorithm: every node charges one work unit
// against the phase budget (Options.MaxSearchNodes and the
// Options.Context deadline, or a caller-shared Options.Budget). On
// exhaustion it stops and returns the best partition found so far with
// Degraded set. The result is always valid: the search seeds the best
// with the serial fallback (empty pre-fork region), so under any budget
// — even zero — the returned partition is legal and its modeled cost is
// at most the serial partition's cost. Node-budget exhaustion is
// deterministic (the same loop and budget always stop at the same node);
// deadline exhaustion is not.
//
// With Options.Workers >= 1 the branch-and-bound itself runs in
// parallel; see Options.Workers for the determinism contract.
func Search(g *depgraph.Graph, m *cost.Model, opt Options) *Result {
	r := &Result{
		Graph:     g,
		Model:     m,
		VCCount:   len(g.VCs),
		BodySize:  g.Loop.BodySize(),
		Move:      make(map[*ir.Stmt]bool),
		CopyConds: make(map[*ir.Stmt]bool),
		Workers:   opt.Workers,
	}
	if opt.BodySize > 0 {
		r.BodySize = opt.BodySize
	}
	r.SizeLimit = int(float64(r.BodySize) * opt.PreForkFraction)

	// Phase budget: one work unit per search node plus the context's
	// deadline. A caller-provided budget is charged directly, so one
	// budget can span every loop of a compilation phase.
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	budget := opt.Budget
	if budget == nil {
		budget = resilience.NewBudget(ctx, int64(opt.MaxSearchNodes))
	}
	// stop is the sticky exhaustion error; once set, the search unwinds
	// without exploring or recording anything further.
	var stop error
	if err := injectSearch.Fire(resilience.WithBudget(ctx, budget)); err != nil {
		stop = err
	}

	s := &searcher{g: g, m: m, opt: opt}
	s.pool = m.NewEvaluatorPool()
	// Parallelize only when asked and when the subset tree is big enough
	// to have a frontier; the serial and parallel paths return the same
	// Result either way, so this is purely a fan-out decision.
	parallel := opt.Workers >= 1 && len(g.VCs) > 1 && stop == nil
	s.memo = newZeroMemo(parallel)

	eval := s.pool.Get()
	s.nVC = eval.NumVCs()
	emptyZero := bitset.New(s.nVC)
	r.EmptyCost, _, _ = s.memo.eval(emptyZero, eval, -1)
	r.CostEvals++

	if opt.MaxVCs > 0 && len(g.VCs) > opt.MaxVCs {
		r.Skipped = true
		s.pool.Put(eval)
		r.Recomputes = s.pool.Recomputes()
		return r
	}
	if stop != nil {
		// Injected or pre-exhausted before any node: degrade to the
		// serial fallback immediately.
		r.Cost = r.EmptyCost
		r.Degraded = true
		r.DegradeReason = resilience.ReasonFor(stop)
		s.pool.Put(eval)
		r.Recomputes = s.pool.Recomputes()
		return r
	}

	s.precompute(eval)
	s.pool.Put(eval)

	var best *incumbent
	var stops []error
	if parallel {
		best, stops = s.runParallel(r, budget)
	} else {
		best, stops = s.runSerial(r, budget)
	}

	for _, err := range stops {
		if err != nil {
			r.Degraded = true
			r.DegradeReason = resilience.ReasonFor(err)
			break
		}
	}

	// Convert the winning bitsets back to the exported map/slice form.
	r.Cost = best.cost
	r.PreForkSize = best.size
	best.vcs.ForEach(func(i int) { r.PreForkVCs = append(r.PreForkVCs, s.vcs[i]) })
	best.move.ForEach(func(si int) { r.Move[g.Stmts[si]] = true })
	best.conds.ForEach(func(si int) { r.CopyConds[g.Stmts[si]] = true })
	r.Recomputes = s.pool.Recomputes()
	return r
}

// precompute builds the dense tables every walker shares: closures and
// legality edges as bitsets, per-statement sizes, and the suffix
// zero-sets of the optimistic lower bound.
func (s *searcher) precompute(eval *cost.Evaluator) {
	g := s.g
	// VCs are already in iteration order, which topologically orders the
	// VC-dep graph (intra edges are forward).
	s.vcs = g.VCs
	s.n = len(s.vcs)
	s.nStmt = len(g.Stmts)
	s.sizeLimit = int(float64(s.bodySize()) * s.opt.PreForkFraction)

	// Per-statement call-expanded op counts, by dense index.
	sizes := ir.NewSizeCache()
	s.ops = make([]int, s.nStmt)
	for i, st := range g.Stmts {
		s.ops[i] = sizes.StmtOps(st)
	}

	// Statement index -> cost-model pseudo ordinal (-1 for non-VCs).
	s.vcOrd = make([]int32, s.nStmt)
	for i := range s.vcOrd {
		s.vcOrd[i] = -1
	}
	for _, vc := range s.vcs {
		if o := eval.Ordinal(vc); o >= 0 {
			s.vcOrd[g.Order[vc]] = int32(o)
		}
	}

	// Closures as statement bitsets, plus each closure's zeroed-VC set.
	producers := legalProducers(g)
	s.moveBits = make([]bitset.Set, s.n)
	s.condBits = make([]bitset.Set, s.n)
	s.moveVCBits = make([]bitset.Set, s.n)
	for i, vc := range s.vcs {
		c := computeClosure(g, producers, vc)
		s.moveBits[i] = bitset.New(s.nStmt)
		s.condBits[i] = bitset.New(s.nStmt)
		s.moveVCBits[i] = bitset.New(s.nVC)
		for st := range c.Move {
			si := g.Order[st]
			s.moveBits[i].Add(si)
			if o := s.vcOrd[si]; o >= 0 {
				s.moveVCBits[i].Add(int(o))
			}
		}
		for st := range c.CopyConds {
			s.condBits[i].Add(g.Order[st])
		}
	}

	// VC-dep predecessors as bitsets over VC indices (§5.2 legality).
	vcIdx := make(map[*ir.Stmt]int, s.n)
	for i, vc := range s.vcs {
		vcIdx[vc] = i
	}
	s.predBits = make([]bitset.Set, s.n)
	for i := range s.predBits {
		s.predBits[i] = bitset.New(s.n)
	}
	for vc, preds := range vcDepGraph(g) {
		for _, p := range preds {
			s.predBits[vcIdx[vc]].Add(vcIdx[p])
		}
	}

	// suffixZero[i] = zeroed-VC set of the union of closures of vcs[i..],
	// used for the optimistic lower bound of heuristic 2.
	s.suffixZero = make([]bitset.Set, s.n+1)
	s.suffixZero[s.n] = bitset.New(s.nVC)
	for i := s.n - 1; i >= 0; i-- {
		u := s.suffixZero[i+1].Clone()
		u.Or(s.moveVCBits[i])
		s.suffixZero[i] = u
	}
}

func (s *searcher) bodySize() int {
	if s.opt.BodySize > 0 {
		return s.opt.BodySize
	}
	return s.g.Loop.BodySize()
}

// runSerial is the classic depth-first branch-and-bound on the calling
// goroutine. A caller-shared Options.Budget is charged sequentially,
// preserving the exact legacy exhaustion points.
func (s *searcher) runSerial(r *Result, budget *resilience.Budget) (*incumbent, []error) {
	w := s.newWalker(-1, budget, false, false)
	w.seedEmpty(r.EmptyCost)
	w.record() // empty partition: the always-legal serial fallback
	w.search(-1)
	w.release()

	r.SearchNodes += w.nodes
	r.CostEvals += w.costEvals
	r.DedupHits += w.dedupHits
	r.MemoShardHits += w.crossHits
	r.BoundUpdates += w.boundUps
	return w.snapshot(), []error{w.stop}
}
