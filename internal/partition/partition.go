// Package partition implements §5 of the paper: finding the optimal SPT
// loop partition. The search space is the set of downward-closed subsets
// of violation candidates in the VC-dependence graph; a branch-and-bound
// search with the paper's two pruning heuristics finds the legal partition
// of minimum misspeculation cost subject to a pre-fork size threshold.
package partition

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"sptc/internal/bitset"
	"sptc/internal/cost"
	"sptc/internal/depgraph"
	"sptc/internal/ir"
	"sptc/internal/resilience"
)

// injectSearch fires once per Search call, before any node is explored;
// tests and CLIs arm it to force panics or budget exhaustion inside the
// branch-and-bound.
var injectSearch = resilience.Register("partition.search")

// Options configures the search.
type Options struct {
	// MaxVCs skips loops with more violation candidates (paper: 30).
	MaxVCs int
	// PreForkFraction bounds the pre-fork region size as a fraction of
	// the loop body size.
	PreForkFraction float64
	// PruneSize enables heuristic 1 (§5.2.1): stop descending once the
	// pre-fork region exceeds the size threshold.
	PruneSize bool
	// PruneBound enables heuristic 2: stop descending when the optimistic
	// lower bound already exceeds the best cost found.
	PruneBound bool
	// MaxSearchNodes is the search-node budget. The search is anytime:
	// when the budget runs out it stops and returns the best partition
	// found so far with Degraded set, instead of running unbounded
	// (paper §5's pruning becomes a soft bound). <= 0 means unbounded.
	MaxSearchNodes int
	// BodySize overrides the loop body size used for thresholds (0 =
	// static op count). The pipeline passes the effective, call-expanded
	// size here.
	BodySize int
	// Context carries the wall-clock deadline and cancellation for the
	// search (nil = context.Background()). Deadline exhaustion, like
	// node-budget exhaustion, yields the best partition so far.
	Context context.Context
	// Budget, when non-nil, replaces the internally built budget: every
	// search node charges one work unit, so one budget can be shared
	// across the searches of a whole compilation phase. MaxSearchNodes
	// and Context are ignored when Budget is set.
	Budget *resilience.Budget
}

// DefaultOptions mirror the paper's configuration.
func DefaultOptions() Options {
	return Options{
		MaxVCs:          30,
		PreForkFraction: 0.3,
		PruneSize:       true,
		PruneBound:      true,
		MaxSearchNodes:  1 << 20,
	}
}

// Closure is what moving one statement into the pre-fork region entails.
type Closure struct {
	// Move is the set of statements that must execute in the pre-fork
	// region (the statement plus its intra-iteration producers).
	Move map[*ir.Stmt]bool
	// CopyConds is the set of branch (StmtIf) statements whose conditions
	// must be replicated into the pre-fork region (Figure 12).
	CopyConds map[*ir.Stmt]bool
}

// Size is the call-expanded pre-fork op count the closure implies.
func (c Closure) Size() int { return closureSize(ir.NewSizeCache(), c.Move, c.CopyConds) }

// Result is the outcome of the optimal-partition search for one loop.
type Result struct {
	Graph *depgraph.Graph
	Model *cost.Model

	Skipped   bool // too many violation candidates
	VCCount   int
	BodySize  int
	SizeLimit int

	// Best partition found.
	PreForkVCs  []*ir.Stmt
	Move        map[*ir.Stmt]bool
	CopyConds   map[*ir.Stmt]bool
	PreForkSize int
	Cost        float64

	// EmptyCost is the misspeculation cost with an empty pre-fork region
	// (no reordering), for comparison.
	EmptyCost float64

	// Degraded reports that the search stopped early — node budget or
	// wall-clock deadline exhausted — and the partition is the best found
	// so far rather than the proven optimum. A degraded result is still
	// valid and legal, and its cost never exceeds the serial fallback
	// (the empty pre-fork partition): the search starts from that
	// partition and only ever improves on it.
	Degraded bool
	// DegradeReason classifies why the search degraded (ReasonNone when
	// it ran to completion).
	DegradeReason resilience.Reason

	SearchNodes int
	// CostEvals counts cost-model propagations actually performed;
	// DedupHits counts evaluations answered from the interned zero-set
	// table without propagating. Recomputes counts the dirty nodes the
	// incremental evaluator recomputed across those propagations.
	CostEvals  int
	DedupHits  int
	Recomputes int
}

// String summarizes the result.
func (r *Result) String() string {
	if r.Skipped {
		return fmt.Sprintf("skipped (%d violation candidates)", r.VCCount)
	}
	var vcs []string
	for _, vc := range r.PreForkVCs {
		vcs = append(vcs, fmt.Sprintf("s%d", vc.ID))
	}
	degraded := ""
	if r.Degraded {
		degraded = fmt.Sprintf(", degraded (%s)", r.DegradeReason)
	}
	return fmt.Sprintf("cost=%.3f (empty=%.3f) prefork=%d/%d ops, vcs=[%s], %d search nodes%s",
		r.Cost, r.EmptyCost, r.PreForkSize, r.BodySize, strings.Join(vcs, " "), r.SearchNodes, degraded)
}

// ComputeClosure determines the move set and condition copies required to
// place s (and everything it depends on within the iteration) into the
// pre-fork region.
func ComputeClosure(g *depgraph.Graph, s *ir.Stmt) Closure {
	return computeClosure(g, legalProducers(g), s)
}

// legalProducers indexes the legality edges by consumer, so closures of
// many statements of one graph share the index.
func legalProducers(g *depgraph.Graph) map[*ir.Stmt][]*ir.Stmt {
	producers := make(map[*ir.Stmt][]*ir.Stmt)
	for _, e := range g.Legal {
		producers[e.Later] = append(producers[e.Later], e.Earlier)
	}
	return producers
}

func computeClosure(g *depgraph.Graph, producers map[*ir.Stmt][]*ir.Stmt, s *ir.Stmt) Closure {
	c := Closure{Move: make(map[*ir.Stmt]bool), CopyConds: make(map[*ir.Stmt]bool)}

	var addMove func(*ir.Stmt)
	var addCond func(*ir.Stmt)
	addMove = func(s *ir.Stmt) {
		if s.IsTerminator() {
			// Branches are never moved; when a dependence requires a
			// branch's value in the pre-fork region (e.g. a memory
			// anti-dependence on its condition), the condition is
			// replicated instead (Figure 12's temp_cond).
			addCond(s)
			return
		}
		if c.Move[s] {
			return
		}
		c.Move[s] = true
		for _, p := range producers[s] {
			addMove(p)
		}
		for _, cd := range g.Ctrl[s] {
			addCond(cd.Branch)
		}
	}
	addCond = func(b *ir.Stmt) {
		if c.CopyConds[b] || c.Move[b] {
			return
		}
		c.CopyConds[b] = true
		// The condition's inputs must be available in the pre-fork region.
		for _, p := range producers[b] {
			addMove(p)
		}
		for _, cd := range g.Ctrl[b] {
			addCond(cd.Branch)
		}
	}
	addMove(s)
	return c
}

// closureSize is the call-expanded op count of a combined closure.
func closureSize(sc *ir.SizeCache, move, conds map[*ir.Stmt]bool) int {
	n := 0
	for s := range move {
		n += sc.StmtOps(s)
	}
	for s := range conds {
		if !move[s] {
			n += sc.StmtOps(s)
		}
	}
	return n
}

// vcDepGraph computes, for each violation candidate, the set of violation
// candidates it transitively depends on through intra-iteration true
// dependences (§5.1).
func vcDepGraph(g *depgraph.Graph) map[*ir.Stmt][]*ir.Stmt {
	// Transitive reachability over intra edges, restricted to VCs.
	intraPreds := make(map[*ir.Stmt][]*ir.Stmt)
	for _, e := range g.True {
		if !e.Cross {
			intraPreds[e.To] = append(intraPreds[e.To], e.From)
		}
	}
	isVC := make(map[*ir.Stmt]bool, len(g.VCs))
	for _, vc := range g.VCs {
		isVC[vc] = true
	}

	memo := make(map[*ir.Stmt]map[*ir.Stmt]bool)
	var reach func(s *ir.Stmt, visiting map[*ir.Stmt]bool) map[*ir.Stmt]bool
	reach = func(s *ir.Stmt, visiting map[*ir.Stmt]bool) map[*ir.Stmt]bool {
		if r, ok := memo[s]; ok {
			return r
		}
		if visiting[s] {
			return nil
		}
		visiting[s] = true
		r := make(map[*ir.Stmt]bool)
		for _, p := range intraPreds[s] {
			if isVC[p] {
				r[p] = true
			}
			for q := range reach(p, visiting) {
				r[q] = true
			}
		}
		delete(visiting, s)
		memo[s] = r
		return r
	}

	out := make(map[*ir.Stmt][]*ir.Stmt, len(g.VCs))
	for _, vc := range g.VCs {
		var preds []*ir.Stmt
		for p := range reach(vc, make(map[*ir.Stmt]bool)) {
			if p != vc {
				preds = append(preds, p)
			}
		}
		sort.Slice(preds, func(i, j int) bool { return g.Order[preds[i]] < g.Order[preds[j]] })
		out[vc] = preds
	}
	return out
}

// Search finds the optimal partition for the loop described by g.
//
// The search works entirely on dense indices: statements are numbered by
// g.Order, closures and the current move/copy-cond sets are bitsets over
// those indices, violation-candidate sets are bitsets over the cost
// model's pseudo ordinals, and every cost query goes through an interned
// zero-set table backed by the incremental cost.Evaluator, so the §4.2.3
// propagation runs once per distinct downward-closed set instead of once
// per search node.
//
// Search is an anytime algorithm: every node charges one work unit
// against the phase budget (Options.MaxSearchNodes and the
// Options.Context deadline, or a caller-shared Options.Budget). On
// exhaustion it stops and returns the best partition found so far with
// Degraded set. The result is always valid: the search seeds the best
// with the serial fallback (empty pre-fork region), so under any budget
// — even zero — the returned partition is legal and its modeled cost is
// at most the serial partition's cost. Node-budget exhaustion is
// deterministic (the same loop and budget always stop at the same node);
// deadline exhaustion is not.
func Search(g *depgraph.Graph, m *cost.Model, opt Options) *Result {
	r := &Result{
		Graph:     g,
		Model:     m,
		VCCount:   len(g.VCs),
		BodySize:  g.Loop.BodySize(),
		Move:      make(map[*ir.Stmt]bool),
		CopyConds: make(map[*ir.Stmt]bool),
	}
	if opt.BodySize > 0 {
		r.BodySize = opt.BodySize
	}
	r.SizeLimit = int(float64(r.BodySize) * opt.PreForkFraction)

	// Phase budget: one work unit per search node plus the context's
	// deadline. A caller-provided budget is charged directly, so one
	// budget can span every loop of a compilation phase.
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	budget := opt.Budget
	if budget == nil {
		budget = resilience.NewBudget(ctx, int64(opt.MaxSearchNodes))
	}
	// stop is the sticky exhaustion error; once set, the search unwinds
	// without exploring or recording anything further.
	var stop error
	if err := injectSearch.Fire(resilience.WithBudget(ctx, budget)); err != nil {
		stop = err
	}

	// Interned dedup table: every zero-set the search asks about (record
	// costs and optimistic bounds share one key space) is propagated at
	// most once; repeat visits are answered from the table. Lookups are
	// allocation-free (KeyView); only first sights copy the key.
	eval := m.NewEvaluator()
	nVC := eval.NumVCs()
	memo := make(map[string]float64)
	evalZero := func(zero bitset.Set) float64 {
		if c, ok := memo[zero.KeyView()]; ok {
			r.DedupHits++
			return c
		}
		r.CostEvals++
		c := eval.EvalSet(zero)
		memo[zero.Key()] = c
		return c
	}
	r.EmptyCost = evalZero(bitset.New(nVC))

	if opt.MaxVCs > 0 && len(g.VCs) > opt.MaxVCs {
		r.Skipped = true
		r.Recomputes = eval.Recomputes()
		return r
	}
	if stop != nil {
		// Injected or pre-exhausted before any node: degrade to the
		// serial fallback immediately.
		r.Cost = r.EmptyCost
		r.Degraded = true
		r.DegradeReason = resilience.ReasonFor(stop)
		r.Recomputes = eval.Recomputes()
		return r
	}

	// VCs are already in iteration order, which topologically orders the
	// VC-dep graph (intra edges are forward).
	vcs := g.VCs
	n := len(vcs)
	nStmt := len(g.Stmts)

	// Per-statement call-expanded op counts, by dense index.
	sizes := ir.NewSizeCache()
	ops := make([]int, nStmt)
	for i, s := range g.Stmts {
		ops[i] = sizes.StmtOps(s)
	}

	// Statement index -> cost-model pseudo ordinal (-1 for non-VCs).
	vcOrd := make([]int32, nStmt)
	for i := range vcOrd {
		vcOrd[i] = -1
	}
	for _, vc := range vcs {
		if o := eval.Ordinal(vc); o >= 0 {
			vcOrd[g.Order[vc]] = int32(o)
		}
	}

	// Closures as statement bitsets, plus each closure's zeroed-VC set.
	producers := legalProducers(g)
	moveBits := make([]bitset.Set, n)
	condBits := make([]bitset.Set, n)
	moveVCBits := make([]bitset.Set, n)
	for i, vc := range vcs {
		c := computeClosure(g, producers, vc)
		moveBits[i] = bitset.New(nStmt)
		condBits[i] = bitset.New(nStmt)
		moveVCBits[i] = bitset.New(nVC)
		for s := range c.Move {
			si := g.Order[s]
			moveBits[i].Add(si)
			if o := vcOrd[si]; o >= 0 {
				moveVCBits[i].Add(int(o))
			}
		}
		for s := range c.CopyConds {
			condBits[i].Add(g.Order[s])
		}
	}

	// VC-dep predecessors as bitsets over VC indices.
	vcIdx := make(map[*ir.Stmt]int, n)
	for i, vc := range vcs {
		vcIdx[vc] = i
	}
	predBits := make([]bitset.Set, n)
	for i := range predBits {
		predBits[i] = bitset.New(n)
	}
	for vc, preds := range vcDepGraph(g) {
		for _, p := range preds {
			predBits[vcIdx[vc]].Add(vcIdx[p])
		}
	}

	// suffixZero[i] = zeroed-VC set of the union of closures of vcs[i..],
	// used for the optimistic lower bound of heuristic 2.
	suffixZero := make([]bitset.Set, n+1)
	suffixZero[n] = bitset.New(nVC)
	for i := n - 1; i >= 0; i-- {
		u := suffixZero[i+1].Clone()
		u.Or(moveVCBits[i])
		suffixZero[i] = u
	}

	// Best so far: the empty partition (always legal, size 0).
	r.Cost = r.EmptyCost
	r.PreForkSize = 0
	bestVCs := bitset.New(n)
	bestMove := bitset.New(nStmt)
	bestConds := bitset.New(nStmt)

	inSet := bitset.New(n)
	curMove := bitset.New(nStmt)
	curConds := bitset.New(nStmt)
	curZero := bitset.New(nVC)
	boundZero := bitset.New(nVC)
	moveRef := make([]int32, nStmt)
	condRef := make([]int32, nStmt)
	curSize := 0

	record := func() {
		c := evalZero(curZero)
		if c < r.Cost-1e-12 || (c < r.Cost+1e-12 && curSize < r.PreForkSize) {
			r.Cost = c
			r.PreForkSize = curSize
			bestVCs.CopyFrom(inSet)
			bestMove.CopyFrom(curMove)
			bestConds.CopyFrom(curConds)
		}
	}

	// A statement contributes to the pre-fork size while it is referenced
	// by any pushed closure, through either set (Move and CopyConds are
	// disjoint: branches are only ever condition-copied, never moved).
	push := func(i int) {
		inSet.Add(i)
		moveBits[i].ForEach(func(s int) {
			if moveRef[s] == 0 {
				curMove.Add(s)
				if condRef[s] == 0 {
					curSize += ops[s]
				}
				if o := vcOrd[s]; o >= 0 {
					curZero.Add(int(o))
				}
			}
			moveRef[s]++
		})
		condBits[i].ForEach(func(s int) {
			if condRef[s] == 0 {
				curConds.Add(s)
				if moveRef[s] == 0 {
					curSize += ops[s]
				}
			}
			condRef[s]++
		})
	}
	pop := func(i int) {
		inSet.Remove(i)
		moveBits[i].ForEach(func(s int) {
			moveRef[s]--
			if moveRef[s] == 0 {
				curMove.Remove(s)
				if condRef[s] == 0 {
					curSize -= ops[s]
				}
				if o := vcOrd[s]; o >= 0 {
					curZero.Remove(int(o))
				}
			}
		})
		condBits[i].ForEach(func(s int) {
			condRef[s]--
			if condRef[s] == 0 {
				curConds.Remove(s)
				if moveRef[s] == 0 {
					curSize -= ops[s]
				}
			}
		})
	}

	var search func(lastIdx int)
	search = func(lastIdx int) {
		if stop != nil {
			return
		}
		if err := budget.Spend(1); err != nil {
			stop = err
			return
		}
		r.SearchNodes++

		if opt.PruneBound {
			boundZero.CopyFrom(curZero)
			boundZero.Or(suffixZero[lastIdx+1])
			if lb := evalZero(boundZero); lb >= r.Cost-1e-12 {
				return
			}
		}

		for i := lastIdx + 1; i < n && stop == nil; i++ {
			// §5.2: a node may be added only when all its VC-dep
			// predecessors are already in the pre-fork region.
			ok := true
			for w, pw := range predBits[i] {
				if pw&^inSet[w] != 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			push(i)
			if opt.PruneSize && curSize > r.SizeLimit {
				pop(i)
				continue // heuristic 1: descendants only grow
			}
			if curSize <= r.SizeLimit {
				record()
			}
			search(i)
			pop(i)
		}
	}

	record() // empty partition: the always-legal serial fallback
	search(-1)
	if stop != nil {
		r.Degraded = true
		r.DegradeReason = resilience.ReasonFor(stop)
	}

	// Convert the winning bitsets back to the exported map/slice form.
	bestVCs.ForEach(func(i int) { r.PreForkVCs = append(r.PreForkVCs, vcs[i]) })
	bestMove.ForEach(func(si int) { r.Move[g.Stmts[si]] = true })
	bestConds.ForEach(func(si int) { r.CopyConds[g.Stmts[si]] = true })
	r.Recomputes = eval.Recomputes()
	return r
}
