package partition_test

import (
	"testing"

	"sptc/internal/cost"
	"sptc/internal/depgraph"
	"sptc/internal/interp"
	"sptc/internal/ir"
	"sptc/internal/parser"
	"sptc/internal/partition"
	"sptc/internal/profile"
	"sptc/internal/sem"
	"sptc/internal/ssa"
)

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// loopGraph compiles src and returns the dependence graph and cost model
// of the loop with the given index in main.
func loopGraph(t *testing.T, src string, idx int) (*depgraph.Graph, *cost.Model) {
	t.Helper()
	p, err := parser.Parse("t.spl", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(p)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	prog, err := ir.Build(info)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	nests := make(map[*ir.Func]*ssa.LoopNest)
	for _, f := range prog.Funcs {
		dom := ssa.BuildDomTree(f)
		ssa.Build(f, dom)
		nests[f] = ssa.FindLoops(f, ssa.BuildDomTree(f))
	}
	prof := profile.NewProfiler(prog, nests)
	m := interp.New(prog, discard{})
	m.Hooks = prof.Hooks()
	if _, err := m.Run(); err != nil {
		t.Fatalf("profile: %v", err)
	}
	prof.Edge.Apply(prog)

	f := prog.Main
	nest := nests[f]
	if idx >= len(nest.Loops) {
		t.Fatalf("loop %d of %d", idx, len(nest.Loops))
	}
	pd := depgraph.BuildPostDom(f)
	g := depgraph.Build(nest.Loops[idx], depgraph.Config{
		UseProfile: true,
		Dep:        prof.Dep,
		Effects:    depgraph.ComputeEffects(prog),
		CtrlDeps:   depgraph.ControlDeps(f, pd),
	})
	if g == nil {
		t.Fatal("nil graph")
	}
	return g, cost.Build(g)
}

const fig2ish = `
var a int[256];
var s int;
func main() {
	var i int = 0;
	while (i < 256) {
		var x int = a[i] * 3 + (a[i] >> 2) + (a[i] & 15);
		x = x + x % 7 + (x >> 1) % 5 + x % 11 + (x >> 3) % 13;
		s = s + (x & 63);
		i = i + 1;
	}
	print(s);
}
`

func TestSearchMovesInduction(t *testing.T) {
	g, m := loopGraph(t, fig2ish, 0)
	r := partition.Search(g, m, partition.DefaultOptions())
	if r.Skipped {
		t.Fatal("search skipped")
	}
	if r.Cost >= r.EmptyCost {
		t.Fatalf("optimal cost %.3f should beat the empty partition %.3f", r.Cost, r.EmptyCost)
	}
	// The induction update must be among the moved violation candidates.
	movedInduction := false
	for _, vc := range r.PreForkVCs {
		if vc.Dst != nil && vc.Dst.Base.Name == "i" {
			movedInduction = true
		}
	}
	if !movedInduction {
		t.Errorf("induction update not moved: %s", r)
	}
	if r.PreForkSize > r.SizeLimit {
		t.Errorf("pre-fork %d exceeds limit %d", r.PreForkSize, r.SizeLimit)
	}
}

func TestSearchOptimalityAgainstBruteForce(t *testing.T) {
	g, m := loopGraph(t, fig2ish, 0)
	opt := partition.DefaultOptions()
	r := partition.Search(g, m, opt)

	// Brute force over all downward-closed VC subsets.
	vcs := g.VCs
	if len(vcs) > 12 {
		t.Skip("too many VCs for brute force")
	}
	best := r.EmptyCost
	for mask := 0; mask < 1<<len(vcs); mask++ {
		move := map[*ir.Stmt]bool{}
		conds := map[*ir.Stmt]bool{}
		size := 0
		for i, vc := range vcs {
			if mask&(1<<i) == 0 {
				continue
			}
			cl := partition.ComputeClosure(g, vc)
			for s := range cl.Move {
				move[s] = true
			}
			for s := range cl.CopyConds {
				conds[s] = true
			}
		}
		sc := ir.NewSizeCache()
		for s := range move {
			size += sc.StmtOps(s)
		}
		for s := range conds {
			if !move[s] {
				size += sc.StmtOps(s)
			}
		}
		if size > r.SizeLimit {
			continue
		}
		if c := m.Evaluate(move); c < best {
			best = c
		}
	}
	if r.Cost > best+1e-9 {
		t.Errorf("branch-and-bound cost %.4f worse than brute force %.4f", r.Cost, best)
	}
}

func TestPruningPreservesOptimum(t *testing.T) {
	g, m := loopGraph(t, fig2ish, 0)

	with := partition.DefaultOptions()
	without := partition.DefaultOptions()
	without.PruneBound = false
	without.PruneSize = false

	rw := partition.Search(g, m, with)
	ro := partition.Search(g, m, without)
	if rw.Cost != ro.Cost {
		t.Errorf("pruning changed the optimum: %.4f vs %.4f", rw.Cost, ro.Cost)
	}
	if rw.SearchNodes > ro.SearchNodes {
		t.Errorf("pruning explored more nodes (%d) than exhaustive (%d)", rw.SearchNodes, ro.SearchNodes)
	}
}

func TestVCLimitSkips(t *testing.T) {
	g, m := loopGraph(t, fig2ish, 0)
	opt := partition.DefaultOptions()
	opt.MaxVCs = 0 // no limit
	if r := partition.Search(g, m, opt); r.Skipped {
		t.Error("MaxVCs=0 should not skip")
	}
	if len(g.VCs) > 0 {
		opt.MaxVCs = len(g.VCs) - 1
		if opt.MaxVCs == 0 {
			opt.MaxVCs = -0 // keep zero meaning "no limit"; skip the check
			return
		}
		if r := partition.Search(g, m, opt); !r.Skipped {
			t.Errorf("expected skip with MaxVCs=%d < %d VCs", opt.MaxVCs, len(g.VCs))
		}
	}
}

func TestClosureContainsProducers(t *testing.T) {
	g, _ := loopGraph(t, `
var out int[128];
var s int;
func main() {
	var i int = 0;
	while (i < 128) {
		var t1 int = i * 3;
		var t2 int = t1 + 7;
		out[i & 127] = t2;
		s = s + t2 % 5;
		i = i + 1;
	}
	print(s);
}
`, 0)
	// Moving the accumulator must drag its producers t2 and t1.
	var sVC *ir.Stmt
	for _, vc := range g.VCs {
		if vc.Kind == ir.StmtStoreG && vc.G.Name == "s" {
			sVC = vc
		}
	}
	if sVC == nil {
		t.Skip("accumulator not a VC in this shape")
	}
	cl := partition.ComputeClosure(g, sVC)
	names := map[string]bool{}
	for st := range cl.Move {
		if st.Dst != nil {
			names[st.Dst.Base.Name] = true
		}
	}
	if !names["t2"] || !names["t1"] {
		t.Errorf("closure of s misses producers: %v", names)
	}
}

func TestCopyCondsForConditionalVC(t *testing.T) {
	g, m := loopGraph(t, `
var best int;
var data int[512];
func main() {
	var i int = 0;
	while (i < 512) {
		var v int = data[i & 511] * 3 + (i & 63) + (i % 7) + (i >> 2) % 5;
		v = v + v % 13 + (v >> 1) % 11 + (i % 17);
		if (v > best + 60) {
			best = v;
		}
		i = i + 1;
	}
	print(best);
}
`, 0)
	var bestVC *ir.Stmt
	for _, vc := range g.VCs {
		if vc.Kind == ir.StmtStoreG && vc.G.Name == "best" {
			bestVC = vc
		}
	}
	if bestVC == nil {
		t.Fatal("conditional store not a VC")
	}
	cl := partition.ComputeClosure(g, bestVC)
	if len(cl.CopyConds) == 0 {
		t.Error("moving a conditional store must copy its controlling branch (Figure 12)")
	}
	_ = m
}

// TestMonotonicityOnRealLoop mirrors the §5 pruning premise on a real
// dependence graph: growing the moved VC set never increases cost.
func TestMonotonicityOnRealLoop(t *testing.T) {
	g, m := loopGraph(t, fig2ish, 0)
	if len(g.VCs) > 10 {
		t.Skip("too many VCs")
	}
	costOf := func(mask int) float64 {
		move := map[*ir.Stmt]bool{}
		for i, vc := range g.VCs {
			if mask&(1<<i) != 0 {
				cl := partition.ComputeClosure(g, vc)
				for s := range cl.Move {
					move[s] = true
				}
			}
		}
		return m.Evaluate(move)
	}
	for mask := 0; mask < 1<<len(g.VCs); mask++ {
		base := costOf(mask)
		for i := range g.VCs {
			if mask&(1<<i) != 0 {
				continue
			}
			if bigger := costOf(mask | 1<<i); bigger > base+1e-9 {
				t.Errorf("adding VC %d to %b increased cost %.4f -> %.4f", i, mask, base, bigger)
			}
		}
	}
}
