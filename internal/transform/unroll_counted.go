package transform

import (
	"sptc/internal/ir"
	"sptc/internal/ssa"
)

// unrollCounted performs classic guarded unrolling for a counted loop:
//
//	main:  if (iv cmp bound - (U-1)*step) -> copy1 ... copyU -> main
//	       else -> remainder (the original loop, untouched)
//
// The main loop executes U iterations per test, so the unrolled body
// contains a single induction chain and no intermediate exit tests —
// exactly what ORC's LNO produces for DO loops, and what keeps the SPT
// pre-fork region small. Reports whether the shape was applicable.
func unrollCounted(f *ir.Func, l *ssa.Loop, factor int) ([]*ir.Block, bool) {
	ind := ssa.Induction(l)
	if ind == nil || !ind.IVLeft {
		return nil, false
	}
	// The guard arithmetic needs the comparison direction to match the
	// step sign.
	switch ind.Cmp {
	case ir.BinLt, ir.BinLeq:
		if ind.Step <= 0 {
			return nil, false
		}
	case ir.BinGt, ir.BinGeq:
		if ind.Step >= 0 {
			return nil, false
		}
	default:
		return nil, false
	}
	// Exits only from the header; a single in-loop header successor.
	for _, b := range l.Blocks {
		if b == l.Header {
			continue
		}
		for _, s := range b.Succs {
			if !l.Contains(s) {
				return nil, false
			}
		}
	}
	var bodyEntry *ir.Block
	for _, s := range l.Header.Succs {
		if l.Contains(s) && s != l.Header {
			if bodyEntry != nil {
				return nil, false
			}
			bodyEntry = s
		}
	}
	if bodyEntry == nil || len(l.Header.Stmts) != 1 {
		return nil, false
	}
	// The update must run exactly once per iteration: its block must
	// dominate every latch and not sit inside an inner loop.
	dom := ssa.BuildDomTree(f)
	var updBlock *ir.Block
	for _, b := range l.Blocks {
		for _, s := range b.Stmts {
			if s == ind.Update {
				updBlock = b
			}
		}
	}
	if updBlock == nil {
		return nil, false
	}
	for _, c := range l.Children {
		if c.Contains(updBlock) {
			return nil, false
		}
	}
	for _, latch := range l.Latches {
		if !dom.Dominates(updBlock, latch) {
			return nil, false
		}
	}

	// Guarded main header: if (iv cmp bound - (U-1)*step) -> copy1 | header.
	mainHeader := f.NewBlock()
	adj := f.NewOp(ir.OpBin, ir.ValInt)
	adj.Bin = ir.BinSub
	adjC := f.NewOp(ir.OpConstInt, ir.ValInt)
	adjC.ConstI = int64(factor-1) * ind.Step
	adj.Args = []*ir.Op{f.CloneOp(ind.BoundOp), adjC}
	cond := f.NewOp(ir.OpBin, ir.ValInt)
	cond.Bin = ind.Cmp
	ivUse := f.NewOp(ir.OpUseVar, ir.ValInt)
	ivUse.Var = ind.IV
	cond.Args = []*ir.Op{ivUse, adj}
	test := f.NewStmt(ir.StmtIf)
	test.RHS = cond
	mainHeader.Stmts = append(mainHeader.Stmts, test)
	added := []*ir.Block{mainHeader}

	// Clone the body (header excluded) factor times.
	var bodyBlocks []*ir.Block
	for _, b := range l.Blocks {
		if b != l.Header {
			bodyBlocks = append(bodyBlocks, b)
		}
	}
	copies := make([]map[*ir.Block]*ir.Block, factor)
	for k := 0; k < factor; k++ {
		m := make(map[*ir.Block]*ir.Block, len(bodyBlocks))
		for _, b := range bodyBlocks {
			nb := f.NewBlock()
			for _, s := range b.Stmts {
				nb.Stmts = append(nb.Stmts, f.CloneStmt(s))
			}
			nb.Freq = b.Freq
			m[b] = nb
			added = append(added, nb)
		}
		copies[k] = m
	}

	// Wire each copy: in-copy edges stay within the copy; edges to the
	// original header chain to the next copy (or back to mainHeader).
	for k := 0; k < factor; k++ {
		next := mainHeader
		if k+1 < factor {
			next = copies[k+1][bodyEntry]
		}
		for _, b := range bodyBlocks {
			nb := copies[k][b]
			for _, s := range b.Succs {
				if s == l.Header {
					ir.AddEdge(nb, next)
				} else {
					ir.AddEdge(nb, copies[k][s])
				}
			}
		}
	}

	// Entry edges from outside now reach the guard; the original loop
	// remains as the remainder.
	for _, p := range append([]*ir.Block(nil), l.Header.Preds...) {
		if !l.Contains(p) {
			ir.RedirectEdge(p, l.Header, mainHeader)
		}
	}
	ir.AddEdge(mainHeader, copies[0][bodyEntry])
	ir.AddEdge(mainHeader, l.Header)
	return added, true
}
