package transform

import (
	"sptc/internal/depgraph"
	"sptc/internal/ir"
	"sptc/internal/partition"
	"sptc/internal/profile"
	"sptc/internal/ssa"
)

// SVPOptions controls software value prediction.
type SVPOptions struct {
	// MinConfidence is the minimum fraction of profiled iterations whose
	// value followed the best stride (the paper requires the value to be
	// "predictable" with "acceptably low" misprediction cost).
	MinConfidence float64
	// MinObservations avoids predicting from tiny samples.
	MinObservations int64
}

// DefaultSVPOptions returns the defaults used by the SPT pipeline.
func DefaultSVPOptions() SVPOptions {
	return SVPOptions{MinConfidence: 0.9, MinObservations: 16}
}

// SVPCandidate describes one profitable value-prediction site.
type SVPCandidate struct {
	Loop   *ssa.Loop
	Stmt   *ir.Stmt // the critical violation-candidate assignment
	Var    *ir.Var  // base variable being predicted
	Stride int64
	Conf   float64
}

// FindSVPCandidate inspects a loop's violation candidates (given as SSA
// statements) against the value profile and returns the best predictable
// one, or nil. Only integer scalar assignments qualify; the statement
// must execute once per iteration (violation probability ~1) so the
// stride pattern is meaningful.
func FindSVPCandidate(l *ssa.Loop, vcs []*ir.Stmt, violProb map[*ir.Stmt]float64, vp *profile.ValueProfile, opt SVPOptions) *SVPCandidate {
	var best *SVPCandidate
	for _, vc := range vcs {
		if vc.Kind != ir.StmtAssign || vc.Dst == nil || vc.Dst.Kind != ir.ValInt {
			continue
		}
		if violProb[vc] < 0.99 {
			continue
		}
		pat := vp.Pattern(vc)
		if pat == nil || pat.Total < opt.MinObservations {
			continue
		}
		conf := pat.Confidence()
		if conf < opt.MinConfidence {
			continue
		}
		c := &SVPCandidate{Loop: l, Stmt: vc, Var: vc.Dst.Base, Stride: pat.BestStride, Conf: conf}
		if best == nil || c.Conf > best.Conf {
			best = c
		}
	}
	return best
}

// ApplySVP rewrites the loop per Figure 13 of the paper. For a critical
// assignment `v = <expr>` with predicted stride k it produces:
//
//	pred_v = v;                     // preheader
//	loop:
//	    v = pred_v;                 // body entry (becomes pre-fork code)
//	    pred_v = v + k;
//	    ... original body, incl. v = <expr> ...
//	    if (v != pred_v) { pred_v = v; }   // check & recover, at latch
//
// The loop-carried dependence chain for v is replaced by the trivially
// movable pred_v chain; the original assignment remains and feeds the
// check. The function must be in base-variable form.
//
// The rewrite requires the canonical while shape (test-terminated header,
// goto-terminated latches) so the check-and-recover code has a place on
// every back edge; it reports whether it was applied.
func ApplySVP(f *ir.Func, c *SVPCandidate) bool {
	l := c.Loop
	if t := l.Header.Terminator(); t == nil || t.Kind != ir.StmtIf {
		return false
	}
	for _, latch := range l.Latches {
		if t := latch.Terminator(); t == nil || t.Kind != ir.StmtGoto {
			return false
		}
	}
	v := c.Var
	pred := f.NewTemp("pred_"+v.Name, ir.ValInt)

	useOf := func(x *ir.Var) *ir.Op {
		o := f.NewOp(ir.OpUseVar, ir.ValInt)
		o.Var = x
		return o
	}
	constOf := func(k int64) *ir.Op {
		o := f.NewOp(ir.OpConstInt, ir.ValInt)
		o.ConstI = k
		return o
	}
	assign := func(dst *ir.Var, rhs *ir.Op) *ir.Stmt {
		s := f.NewStmt(ir.StmtAssign)
		s.Dst = dst
		s.RHS = rhs
		return s
	}

	// Preheader: pred_v = v.
	pre := ssa.Preheader(l)
	n := len(pre.Stmts)
	pre.Stmts = append(pre.Stmts[:n-1], assign(pred, useOf(v)), pre.Stmts[n-1])

	// Body entry: v = pred_v; pred_v = v + k. The body entry is the
	// header's in-loop successor; guard against the degenerate case where
	// the header is its own latch.
	var entry *ir.Block
	for _, s := range l.Header.Succs {
		if l.Contains(s) && s != l.Header {
			entry = s
			break
		}
	}
	if entry == nil {
		return false
	}
	add := f.NewOp(ir.OpBin, ir.ValInt)
	add.Bin = ir.BinAdd
	add.Args = []*ir.Op{useOf(v), constOf(c.Stride)}
	entry.Stmts = append([]*ir.Stmt{assign(v, useOf(pred)), assign(pred, add)}, entry.Stmts...)

	// Check & recover on every latch: if (v != pred_v) pred_v = v.
	for _, latch := range append([]*ir.Block(nil), l.Latches...) {
		fix := f.NewBlock()
		fix.Stmts = append(fix.Stmts, assign(pred, useOf(v)), f.NewStmt(ir.StmtGoto))

		neq := f.NewOp(ir.OpBin, ir.ValInt)
		neq.Bin = ir.BinNeq
		neq.Args = []*ir.Op{useOf(v), useOf(pred)}
		check := f.NewStmt(ir.StmtIf)
		check.RHS = neq

		// latch: [..., if(v!=pred)] -> fix | header ; fix -> header.
		latch.Stmts[len(latch.Stmts)-1] = check
		ir.RedirectEdge(latch, l.Header, fix)
		ir.AddEdge(latch, l.Header) // else edge straight to header
		ir.AddEdge(fix, l.Header)
		// Keep If successor order: then=fix, else=header.
		latch.Succs[0], latch.Succs[1] = fix, l.Header
	}
	ir.ReorderRPO(f)
	return true
}

// ClosureFits reports whether moving stmt into the pre-fork region (with
// its full legality closure) fits within the size limit — in which case
// plain code reordering suffices and value prediction is unnecessary.
func ClosureFits(g *depgraph.Graph, stmt *ir.Stmt, sizeLimit int) bool {
	cl := partition.ComputeClosure(g, stmt)
	return cl.Size() <= sizeLimit
}
