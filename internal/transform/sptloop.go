package transform

import (
	"fmt"
	"sort"

	"sptc/internal/ir"
	"sptc/internal/ssa"
)

// SPTResult reports what the SPT loop transformation produced.
type SPTResult struct {
	LoopID    int
	Header    *ir.Block
	ForkBlock *ir.Block
	PreBlocks []*ir.Block // materialized pre-fork region blocks
	Moved     int         // statements moved
	Copied    int         // branch conditions copied
	Snapshots int         // old-value temporaries inserted
}

// TransformSPT rewrites loop l into an SPT loop (§6.2):
//
//	header: if (cond) -> pre-fork region' -> SPT_FORK -> original body
//
// The pre-fork region is a clone of the loop body CFG containing exactly
// the moved statements (which are removed from the body, becoming the
// post-fork region) and the copied branch conditions (Figure 12).
// Old-value temporaries (v_old = v) are inserted at the head of the
// pre-fork region to break the live-range overlaps created by code
// reordering (the paper's Figures 10/11); readers that originally
// executed before a moved definition are redirected to the temporary.
// SPT_KILL statements are placed on every loop exit edge.
//
// The legality preconditions are established by the depgraph package: a
// moved statement's intra-iteration producers are always moved with it,
// moved definitions of a variable form a prefix of that variable's
// definitions in iteration order, and no unmoved reader sits between two
// moved definitions.
//
// The function must be in base-variable (collapsed) form; order gives the
// iteration-order index of every loop statement (from the dependence
// graph). Callers rebuild SSA and re-run cleanup afterwards.
func TransformSPT(f *ir.Func, l *ssa.Loop, move, conds map[*ir.Stmt]bool, order map[*ir.Stmt]int, loopID int) (*SPTResult, error) {
	header := l.Header
	term := header.Terminator()
	if term == nil || term.Kind != ir.StmtIf {
		return nil, fmt.Errorf("spt: loop%d header b%d is not test-terminated", loopID, header.ID)
	}
	var bodyEntry *ir.Block
	for _, s := range header.Succs {
		if l.Contains(s) && s != header {
			if bodyEntry != nil {
				return nil, fmt.Errorf("spt: loop%d header has multiple in-loop successors", loopID)
			}
			bodyEntry = s
		}
	}
	if bodyEntry == nil {
		return nil, fmt.Errorf("spt: loop%d has no body entry", loopID)
	}

	res := &SPTResult{LoopID: loopID, Header: header}

	// Record the loop's exit edges now: the transformation adds blocks
	// (pre-fork region, fork block) that are not part of l.Blocks, so
	// collecting exits after rewiring would misclassify body edges.
	type exitEdge struct{ from, to *ir.Block }
	var exits []exitEdge
	for _, b := range l.Blocks {
		for _, sc := range b.Succs {
			if !l.Contains(sc) {
				exits = append(exits, exitEdge{b, sc})
			}
		}
	}

	// Fork block: SPT_FORK(loopID) targeting the header (the speculative
	// thread executes the next iteration from its test onward).
	forkBlock := f.NewBlock()
	forkBlock.Freq = header.Freq
	fork := f.NewStmt(ir.StmtFork)
	fork.LoopID = loopID
	fork.Target = header
	forkBlock.Stmts = append(forkBlock.Stmts, fork, f.NewStmt(ir.StmtGoto))
	res.ForkBlock = forkBlock

	var preEntry *ir.Block
	if len(move) == 0 && len(conds) == 0 {
		preEntry = forkBlock
	} else {
		var err error
		preEntry, err = buildPreRegion(f, l, move, conds, forkBlock, res)
		if err != nil {
			return nil, err
		}
		insertSnapshots(f, l, move, order, preEntry, res)
	}

	// Rewire: header -> preEntry ... -> forkBlock -> bodyEntry.
	ir.RedirectEdge(header, bodyEntry, preEntry)
	ir.AddEdge(forkBlock, bodyEntry)

	// SPT_KILL on every recorded loop exit edge.
	for _, e := range exits {
		kb := f.NewBlock()
		kill := f.NewStmt(ir.StmtKill)
		kill.LoopID = loopID
		kb.Stmts = append(kb.Stmts, kill, f.NewStmt(ir.StmtGoto))
		ir.RedirectEdge(e.from, e.to, kb)
		ir.AddEdge(kb, e.to)
	}
	return res, nil
}

// buildPreRegion clones the loop body CFG, keeping only moved statements
// and copied branch conditions. Edges that would leave the body (loop
// exits, back edges to the header, returns) are redirected to forkBlock.
func buildPreRegion(f *ir.Func, l *ssa.Loop, move, conds map[*ir.Stmt]bool, forkBlock *ir.Block, res *SPTResult) (*ir.Block, error) {
	var bodyBlocks []*ir.Block
	for _, b := range l.Blocks {
		if b != l.Header {
			bodyBlocks = append(bodyBlocks, b)
		}
	}
	cloneOf := make(map[*ir.Block]*ir.Block, len(bodyBlocks))
	for _, b := range bodyBlocks {
		nb := f.NewBlock()
		nb.Freq = b.Freq
		cloneOf[b] = nb
		res.PreBlocks = append(res.PreBlocks, nb)
	}

	// innerBackedge reports whether the edge b -> s re-enters a descendant
	// loop's header (a retreating edge inside the clone).
	var descendants []*ssa.Loop
	var collect func(*ssa.Loop)
	collect = func(x *ssa.Loop) {
		for _, c := range x.Children {
			descendants = append(descendants, c)
			collect(c)
		}
	}
	collect(l)
	innerBackedge := func(b, s *ir.Block) bool {
		for _, d := range descendants {
			if s == d.Header && d.Contains(b) {
				return true
			}
		}
		return false
	}
	headerOfUncopied := func(b *ir.Block) *ssa.Loop {
		for _, d := range descendants {
			if b == d.Header {
				t := b.Terminator()
				if t != nil && t.Kind == ir.StmtIf && !conds[t] {
					return d
				}
			}
		}
		return nil
	}

	remap := func(s *ir.Block) *ir.Block {
		if s == l.Header || !l.Contains(s) {
			return forkBlock
		}
		return cloneOf[s]
	}

	for _, b := range bodyBlocks {
		nb := cloneOf[b]

		// Split statements: moved ones go to the clone (the originals are
		// removed from the body), the rest stay.
		var stay []*ir.Stmt
		for _, s := range b.Stmts {
			if s.IsTerminator() {
				stay = append(stay, s)
				continue
			}
			if move[s] {
				nb.Stmts = append(nb.Stmts, s)
				res.Moved++
			} else {
				stay = append(stay, s)
			}
		}
		b.Stmts = stay

		term := b.Terminator()
		if term == nil {
			return nil, fmt.Errorf("spt: body block b%d lost its terminator", b.ID)
		}
		switch term.Kind {
		case ir.StmtIf:
			if conds[term] {
				// Figure 12: evaluate the condition once into a temporary
				// in the pre-fork region; both the pre-fork branch and the
				// post-fork original test the temporary, so moved
				// statements cannot perturb the post-fork decision.
				tempc := f.NewTemp("cond", term.RHS.Type)
				asg := f.NewStmt(ir.StmtAssign)
				asg.Dst = tempc
				asg.RHS = term.RHS

				preUse := f.NewOp(ir.OpUseVar, tempc.Kind)
				preUse.Var = tempc
				ct := f.NewStmt(ir.StmtIf)
				ct.RHS = preUse

				postUse := f.NewOp(ir.OpUseVar, tempc.Kind)
				postUse.Var = tempc
				term.RHS = postUse

				nb.Stmts = append(nb.Stmts, asg, ct)
				ir.AddEdge(nb, remap(b.Succs[0]))
				ir.AddEdge(nb, remap(b.Succs[1]))
				res.Copied++
				continue
			}
			// Uncopied branch: pick a deterministic safe successor. A
			// descendant-loop header whose test was not copied is exited
			// (bypassing the inner loop); otherwise avoid retreating
			// edges so the pre-fork region cannot spin.
			var pick *ir.Block
			if d := headerOfUncopied(b); d != nil {
				for _, s := range b.Succs {
					if !d.Contains(s) {
						pick = s
						break
					}
				}
			}
			if pick == nil {
				for _, s := range b.Succs {
					if !innerBackedge(b, s) {
						pick = s
						break
					}
				}
			}
			if pick == nil {
				pick = b.Succs[0]
			}
			nb.Stmts = append(nb.Stmts, f.NewStmt(ir.StmtGoto))
			ir.AddEdge(nb, remap(pick))
		case ir.StmtGoto:
			nb.Stmts = append(nb.Stmts, f.NewStmt(ir.StmtGoto))
			ir.AddEdge(nb, remap(b.Succs[0]))
		case ir.StmtRet:
			// Returns cannot happen in the pre-fork region; fall through
			// to the fork so the post-fork region performs the return.
			nb.Stmts = append(nb.Stmts, f.NewStmt(ir.StmtGoto))
			ir.AddEdge(nb, forkBlock)
		default:
			return nil, fmt.Errorf("spt: unexpected terminator %s in b%d", term.Kind, b.ID)
		}
	}

	// Body entry clone is the pre-fork region entry.
	for _, s := range l.Header.Succs {
		if l.Contains(s) && s != l.Header {
			return cloneOf[s], nil
		}
	}
	return nil, fmt.Errorf("spt: no body entry for pre-region")
}

// insertSnapshots implements the temporary-variable insertion of Figures
// 10/11. For every base variable with moved definitions:
//
//   - unmoved readers that originally executed before the first moved
//     definition are redirected to an entry snapshot `v_old = v` placed
//     at the head of the pre-fork region (Figure 2's temp_i pattern);
//   - unmoved readers that originally executed after a moved definition
//     D (with no unmoved definition in between) are redirected to a
//     per-definition snapshot `v_D = v` placed immediately after D in
//     the pre-fork region (Figure 11's temp_i_2/temp_i_3 pattern).
//
// The dependence graph's legality rules guarantee that whenever a reader
// needs a per-definition snapshot, that definition dominates the reader,
// so the snapshot holds the right value on every path.
func insertSnapshots(f *ir.Func, l *ssa.Loop, move map[*ir.Stmt]bool, order map[*ir.Stmt]int, preEntry *ir.Block, res *SPTResult) {
	// Moved and unmoved definitions per base variable. Moved statements
	// already live in the pre-fork clone, so they come from the move set;
	// unmoved ones are scanned in place.
	movedDefs := make(map[*ir.Var][]*ir.Stmt)
	unmovedDefs := make(map[*ir.Var][]*ir.Stmt)
	for s := range move {
		if d := s.Defs(); d != nil && s.Kind != ir.StmtPhi {
			movedDefs[d.Base] = append(movedDefs[d.Base], s)
		}
	}
	for _, b := range l.Blocks {
		for _, s := range b.Stmts {
			d := s.Defs()
			if d == nil || s.Kind == ir.StmtPhi || move[s] {
				continue
			}
			unmovedDefs[d.Base] = append(unmovedDefs[d.Base], s)
		}
	}
	if len(movedDefs) == 0 {
		return
	}
	var bases []*ir.Var
	for v := range movedDefs {
		bases = append(bases, v)
		sort.Slice(movedDefs[v], func(i, j int) bool { return order[movedDefs[v][i]] < order[movedDefs[v][j]] })
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i].ID < bases[j].ID })

	// Location of each moved statement within the pre-fork region, for
	// placing per-definition snapshots right after their definition.
	type loc struct {
		block *ir.Block
		index int
	}
	locOf := make(map[*ir.Stmt]loc)
	for _, b := range res.PreBlocks {
		for i, s := range b.Stmts {
			locOf[s] = loc{b, i}
		}
	}
	// insertAfter places stmt ns right after the moved statement d.
	insertAfter := func(d, ns *ir.Stmt) {
		lc, ok := locOf[d]
		if !ok {
			// Should not happen; fall back to the entry block head.
			preEntry.Stmts = append([]*ir.Stmt{ns}, preEntry.Stmts...)
			return
		}
		b := lc.block
		b.Stmts = append(b.Stmts, nil)
		copy(b.Stmts[lc.index+2:], b.Stmts[lc.index+1:])
		b.Stmts[lc.index+1] = ns
		// Update locations of shifted statements.
		for i := lc.index + 1; i < len(b.Stmts); i++ {
			locOf[b.Stmts[i]] = loc{b, i}
		}
	}

	var entrySnaps []*ir.Stmt
	for _, base := range bases {
		defs := movedDefs[base]
		first := order[defs[0]]
		var oldVar *ir.Var
		defSnap := make(map[*ir.Stmt]*ir.Var)

		newSnapshot := func(suffix string) *ir.Var {
			return f.NewTemp(base.Name+suffix, base.Kind)
		}
		useBase := func() *ir.Op {
			o := f.NewOp(ir.OpUseVar, base.Kind)
			o.Var = base
			return o
		}

		for _, b := range l.Blocks {
			if b == l.Header {
				continue // the header test reads the end-of-iteration value
			}
			for _, s := range b.Stmts {
				if move[s] || s.Kind == ir.StmtFork || s.Kind == ir.StmtKill || s.Kind == ir.StmtPhi {
					continue
				}
				ro, ok := order[s]
				if !ok {
					continue
				}
				reads := false
				s.Ops(func(op *ir.Op) {
					if op.Kind == ir.OpUseVar && op.Var.Base == base {
						reads = true
					}
				})
				if !reads {
					continue
				}
				// Last moved definition before the reader.
				var dlast *ir.Stmt
				for _, d := range defs {
					if order[d] < ro {
						dlast = d
					}
				}
				var target *ir.Var
				if dlast == nil {
					// Reads the iteration-entry value.
					if oldVar == nil {
						oldVar = newSnapshot("_old")
						snap := f.NewStmt(ir.StmtAssign)
						snap.Dst = oldVar
						snap.RHS = useBase()
						entrySnaps = append(entrySnaps, snap)
						res.Snapshots++
					}
					target = oldVar
				} else {
					// An unmoved definition between dlast and the reader
					// supplies the value in the post-fork region directly.
					intervening := false
					for _, w := range unmovedDefs[base] {
						if wo, ok := order[w]; ok && wo > order[dlast] && wo < ro {
							intervening = true
							break
						}
					}
					if intervening {
						continue
					}
					target = defSnap[dlast]
					if target == nil {
						target = newSnapshot(fmt.Sprintf("_s%d", dlast.ID))
						snap := f.NewStmt(ir.StmtAssign)
						snap.Dst = target
						snap.RHS = useBase()
						insertAfter(dlast, snap)
						defSnap[dlast] = target
						res.Snapshots++
					}
				}
				s.Ops(func(op *ir.Op) {
					if op.Kind == ir.OpUseVar && op.Var.Base == base {
						op.Var = target
					}
				})
			}
		}
		_ = first
	}
	if len(entrySnaps) > 0 {
		preEntry.Stmts = append(entrySnaps, preEntry.Stmts...)
	}
}
