package transform

import (
	"sort"

	"sptc/internal/depgraph"
	"sptc/internal/ir"
	"sptc/internal/ssa"
)

// Privatize rewrites accesses to global scalars that are provably
// redefined before use in every iteration of l into accesses to a
// function-local variable, keeping a store at the end of the iteration so
// the global holds its final value after the loop. This removes the
// spurious cross-iteration dependences the static analysis would
// otherwise report for per-iteration scratch globals, and is one of the
// paper's "anticipated" enabling techniques.
//
// A global scalar g is privatizable in l when some store to g occurs in a
// block that dominates every in-loop load of g and every latch (so each
// iteration overwrites g before any use), no load of g precedes the store
// within that block, and no call inside the loop may touch g.
//
// The function must be in base-variable form. Returns the globals
// privatized.
func Privatize(f *ir.Func, l *ssa.Loop, dom *ssa.DomTree, effects map[*ir.Func]*depgraph.Effects) []*ir.Global {
	type access struct {
		stmt  *ir.Stmt
		block *ir.Block
		load  bool
		store bool
		call  bool
		index int // statement index within the block
	}
	acc := make(map[*ir.Global][]access)

	for _, b := range l.Blocks {
		for i, s := range b.Stmts {
			if s.Kind == ir.StmtStoreG {
				acc[s.G] = append(acc[s.G], access{stmt: s, block: b, store: true, index: i})
			}
			s.Ops(func(o *ir.Op) {
				switch o.Kind {
				case ir.OpLoadG:
					acc[o.G] = append(acc[o.G], access{stmt: s, block: b, load: true, index: i})
				case ir.OpCall:
					if o.Builtin {
						return
					}
					ev := effects[o.Func]
					if ev == nil {
						return
					}
					for g := range ev.Reads {
						acc[g] = append(acc[g], access{stmt: s, block: b, call: true, load: true, index: i})
					}
					for g := range ev.Writes {
						acc[g] = append(acc[g], access{stmt: s, block: b, call: true, store: true, index: i})
					}
				}
			})
		}
	}

	// The write-back happens at the latches, so mid-body exits would leave
	// the global stale; require all exits to leave from the header.
	for _, b := range l.Blocks {
		if b == l.Header {
			continue
		}
		for _, s := range b.Succs {
			if !l.Contains(s) {
				return nil
			}
		}
	}

	var order []*ir.Global
	for g := range acc {
		order = append(order, g)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Addr < order[j].Addr })

	var privatized []*ir.Global
	for _, g := range order {
		list := acc[g]
		if g.IsArray() {
			continue
		}
		// Find a dominating unconditional store.
		var domStore *access
		callTouches := false
		for i := range list {
			a := &list[i]
			if a.call {
				callTouches = true
				break
			}
		}
		if callTouches {
			continue
		}
		for i := range list {
			a := &list[i]
			if !a.store {
				continue
			}
			ok := true
			for j := range list {
				b := &list[j]
				if !b.load {
					continue
				}
				if b.block == a.block {
					// A load at the same index is in the same statement
					// as the store (read-modify-write): it reads the
					// incoming value, so the global is not dead on entry.
					if b.index <= a.index {
						ok = false
						break
					}
					continue
				}
				if !dom.Dominates(a.block, b.block) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, latch := range l.Latches {
				if !dom.Dominates(a.block, latch) {
					ok = false
					break
				}
			}
			if ok {
				domStore = a
				break
			}
		}
		if domStore == nil {
			continue
		}

		// Rewrite: loads -> local uses; stores -> local assigns; store the
		// local back to g in every latch so the global stays current.
		local := f.NewTemp(g.Name+"_priv", g.Elem)
		for _, b := range l.Blocks {
			var out []*ir.Stmt
			for _, s := range b.Stmts {
				// Rewrite loads first so a store's own right-hand side
				// (read-modify-write through another global path) is
				// covered too.
				s.Ops(func(o *ir.Op) {
					if o.Kind == ir.OpLoadG && o.G == g {
						o.Kind = ir.OpUseVar
						o.Var = local
						o.G = nil
					}
				})
				if s.Kind == ir.StmtStoreG && s.G == g {
					ns := f.NewStmt(ir.StmtAssign)
					ns.Pos = s.Pos
					ns.Dst = local
					ns.RHS = s.RHS
					out = append(out, ns)
					continue
				}
				out = append(out, s)
			}
			b.Stmts = out
		}
		for _, latch := range l.Latches {
			st := f.NewStmt(ir.StmtStoreG)
			st.G = g
			use := f.NewOp(ir.OpUseVar, g.Elem)
			use.Var = local
			st.RHS = use
			// Insert before the latch terminator.
			n := len(latch.Stmts)
			latch.Stmts = append(latch.Stmts[:n-1], st, latch.Stmts[n-1])
		}
		privatized = append(privatized, g)
	}
	return privatized
}
