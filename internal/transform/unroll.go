// Package transform implements the SPT code transformations: loop
// unrolling (§7.1), privatization, software value prediction (§7.2,
// Figure 13), and the SPT loop transformation itself (§6.2): pre-fork
// region materialization with code reordering, temporary-variable
// insertion to break overlapped live ranges (Figures 10/11), partial
// conditional statement motion (Figure 12), and SPT_FORK/SPT_KILL
// insertion.
//
// All transformations operate on base-variable (collapsed, non-SSA) IR;
// callers rebuild SSA afterwards, mirroring the paper's "SSA renaming,
// copy propagation and dead code elimination" cleanup.
package transform

import (
	"sptc/internal/ir"
	"sptc/internal/ssa"
)

// UnrollOptions controls loop unrolling.
type UnrollOptions struct {
	// MinBodySize is the target body size: loops smaller than this are
	// unrolled until they reach it (the paper's minimum SPT loop body
	// size requirement).
	MinBodySize int
	// MaxBodySize caps the unrolled size (hardware buffering limit).
	MaxBodySize int
	// MaxFactor caps the unroll factor.
	MaxFactor int
	// UnrollWhile also unrolls non-counted (while) loops. ORC's LNO could
	// only unroll DO loops; while-loop unrolling is one of the paper's
	// "anticipated" enabling techniques.
	UnrollWhile bool
}

// DefaultUnrollOptions returns the defaults used by the SPT pipeline.
func DefaultUnrollOptions() UnrollOptions {
	return UnrollOptions{MinBodySize: 60, MaxBodySize: 1000, MaxFactor: 8}
}

// UnrollFactor decides the unroll factor for a loop (0 or 1 = leave as
// is), following §7.1: unroll small-bodied loops so the speculative
// thread has enough work to amortize fork overhead.
func UnrollFactor(l *ssa.Loop, opt UnrollOptions) int {
	if l.Kind != ssa.LoopDo && !opt.UnrollWhile {
		return 1
	}
	if len(l.Children) > 0 {
		return 1 // only innermost loops are unrolled by the body-size rule
	}
	size := l.BodySize()
	if size >= opt.MinBodySize || size == 0 {
		return 1
	}
	factor := (opt.MinBodySize + size - 1) / size
	if factor > opt.MaxFactor {
		factor = opt.MaxFactor
	}
	for factor > 1 && factor*size > opt.MaxBodySize {
		factor--
	}
	return factor
}

// Unroll unrolls loop l by the given factor. Counted (DO) loops with a
// simple shape get classic guarded unrolling — the main unrolled loop
// tests once per factor iterations and a remainder loop handles the tail
// — which keeps the pre-fork region of the unrolled loop small (one
// induction chain, no intermediate tests), as ORC's LNO would produce.
// Loops that do not fit that shape (while loops, loops with breaks) fall
// back to iteration replication with per-copy exit tests, which is
// semantics-preserving for arbitrary shapes.
//
// The function must be in base-variable (non-SSA) form. Returns the
// blocks added.
func Unroll(f *ir.Func, l *ssa.Loop, factor int) []*ir.Block {
	if factor <= 1 {
		return nil
	}
	if added, ok := unrollCounted(f, l, factor); ok {
		return added
	}

	var added []*ir.Block
	// copies[k] maps original loop blocks to their k-th clone.
	copies := make([]map[*ir.Block]*ir.Block, factor-1)

	for k := 0; k < factor-1; k++ {
		m := make(map[*ir.Block]*ir.Block, len(l.Blocks))
		for _, b := range l.Blocks {
			nb := f.NewBlock()
			for _, s := range b.Stmts {
				nb.Stmts = append(nb.Stmts, f.CloneStmt(s))
			}
			nb.Freq = b.Freq
			nb.SuccProb = append([]float64(nil), b.SuccProb...)
			m[b] = nb
			added = append(added, nb)
		}
		copies[k] = m
	}

	// target returns where copy k's edge to block s should go.
	target := func(k int, s *ir.Block) *ir.Block {
		if s == l.Header {
			// Back edge: next copy's header, or the original header from
			// the last copy.
			if k+1 < factor-1 {
				return copies[k+1][l.Header]
			}
			if k == factor-2 {
				return l.Header
			}
			return copies[k+1][l.Header]
		}
		if l.Contains(s) {
			return copies[k][s]
		}
		return s // exit edge: original target
	}

	// Wire clone CFGs.
	for k := 0; k < factor-1; k++ {
		for _, b := range l.Blocks {
			nb := copies[k][b]
			for _, s := range b.Succs {
				ir.AddEdge(nb, target(k, s))
			}
		}
	}

	// Redirect original back edges to the first copy's header.
	first := copies[0][l.Header]
	for _, latch := range append([]*ir.Block(nil), l.Latches...) {
		ir.RedirectEdge(latch, l.Header, first)
	}
	return added
}

// UnrollAll unrolls every eligible loop of f (innermost loops, smallest
// first) and returns the number of loops unrolled. The function must be
// in base-variable form; loop analysis is recomputed internally.
func UnrollAll(f *ir.Func, opt UnrollOptions) int {
	n := 0
	// Unrolling invalidates the loop nest; process one loop per round.
	// Remainder loops produced by counted unrolling keep their original
	// header and must not be unrolled again.
	done := make(map[*ir.Block]bool)
	for rounds := 0; rounds < 64; rounds++ {
		dom := ssa.BuildDomTree(f)
		nest := ssa.FindLoops(f, dom)
		var todo *ssa.Loop
		factor := 1
		for _, l := range nest.Loops {
			if done[l.Header] {
				continue
			}
			fct := UnrollFactor(l, opt)
			if fct > 1 {
				todo, factor = l, fct
				break
			}
		}
		if todo == nil {
			return n
		}
		done[todo.Header] = true
		Unroll(f, todo, factor)
		ir.ReorderRPO(f)
		n++
	}
	return n
}
