package transform_test

import (
	"strings"
	"testing"

	"sptc/internal/interp"
	"sptc/internal/ir"
	"sptc/internal/parser"
	"sptc/internal/sem"
	"sptc/internal/ssa"
	"sptc/internal/transform"
)

func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := parser.Parse("t.spl", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(p)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	prog, err := ir.Build(info)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return prog
}

func run(t *testing.T, prog *ir.Program) string {
	t.Helper()
	var out strings.Builder
	if _, err := interp.New(prog, &out).Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.String()
}

func TestUnrollCountedPreservesSemantics(t *testing.T) {
	// Trip counts around the unroll factor exercise guard and remainder.
	for trips := 0; trips <= 13; trips++ {
		src := `
var s int;
func main() {
	var i int;
	for (i = 0; i < ` + itoa(trips) + `; i++) {
		s = s + i * 3 + 1;
	}
	print(s, i);
}
`
		prog := build(t, src)
		want := run(t, prog)

		prog2 := build(t, src)
		f := prog2.Main
		dom := ssa.BuildDomTree(f)
		nest := ssa.FindLoops(f, dom)
		if len(nest.Loops) != 1 {
			t.Fatalf("trips=%d: %d loops", trips, len(nest.Loops))
		}
		transform.Unroll(f, nest.Loops[0], 4)
		ir.ReorderRPO(f)
		if err := ir.Verify(f); err != nil {
			t.Fatalf("trips=%d verify: %v", trips, err)
		}
		if got := run(t, prog2); got != want {
			t.Errorf("trips=%d: %q != %q", trips, got, want)
		}
	}
}

func TestUnrollWhilePreservesSemantics(t *testing.T) {
	src := `
var bits int;
func main() {
	var x int = 123456789;
	while (x != 0) {
		bits += x & 1;
		x = x >> 1;
	}
	print(bits);
}
`
	prog := build(t, src)
	want := run(t, prog)

	prog2 := build(t, src)
	f := prog2.Main
	dom := ssa.BuildDomTree(f)
	nest := ssa.FindLoops(f, dom)
	transform.Unroll(f, nest.Loops[0], 3)
	ir.ReorderRPO(f)
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if got := run(t, prog2); got != want {
		t.Errorf("%q != %q", got, want)
	}
}

func TestUnrollWithBreak(t *testing.T) {
	src := `
var found int;
func main() {
	var i int;
	for (i = 0; i < 100; i++) {
		if (i * 7 % 23 == 3) {
			found = i;
			break;
		}
	}
	print(found, i);
}
`
	prog := build(t, src)
	want := run(t, prog)

	prog2 := build(t, src)
	f := prog2.Main
	nest := ssa.FindLoops(f, ssa.BuildDomTree(f))
	transform.Unroll(f, nest.Loops[0], 4) // break forces the retest scheme
	ir.ReorderRPO(f)
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if got := run(t, prog2); got != want {
		t.Errorf("%q != %q", got, want)
	}
}

func TestUnrollFactorPolicy(t *testing.T) {
	src := `
var s int;
func main() {
	var i int;
	for (i = 0; i < 64; i++) { s += i; }
	var x int = 1000;
	while (x > 0) { x = x - 7; }
	print(s, x);
}
`
	prog := build(t, src)
	f := prog.Main
	nest := ssa.FindLoops(f, ssa.BuildDomTree(f))
	opt := transform.DefaultUnrollOptions()
	var do, while *ssa.Loop
	for _, l := range nest.Loops {
		if l.Kind == ssa.LoopDo {
			do = l
		} else {
			while = l
		}
	}
	// Both loops are counted by our semantic classifier (x -= 7 is a
	// fixed stride), so check the while-only gate with a synthetic one.
	if do == nil {
		t.Fatal("no counted loop found")
	}
	if f := transform.UnrollFactor(do, opt); f <= 1 {
		t.Errorf("small counted loop should unroll, factor=%d", f)
	}
	_ = while
}

func TestPrivatizeScratchGlobal(t *testing.T) {
	src := `
var tmp int;
var acc int;
func main() {
	var i int;
	for (i = 0; i < 64; i++) {
		tmp = i * 3 + 1;
		tmp = tmp + tmp % 7;
		acc += tmp % 11;
	}
	print(acc, tmp);
}
`
	prog := build(t, src)
	want := run(t, prog)

	prog2 := build(t, src)
	f := prog2.Main
	dom := ssa.BuildDomTree(f)
	nest := ssa.FindLoops(f, dom)
	eff := map[*ir.Func]*depEffects{}
	_ = eff
	privatized := transform.Privatize(f, nest.Loops[0], dom, nil)
	found := false
	for _, g := range privatized {
		if g.Name == "tmp" {
			found = true
		}
		if g.Name == "acc" {
			t.Error("accumulator acc must not be privatized (read-modify-write)")
		}
	}
	if !found {
		t.Fatalf("tmp not privatized: %v", privatized)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if got := run(t, prog2); got != want {
		t.Errorf("%q != %q", got, want)
	}
}

type depEffects struct{}

func TestSVPShapeGate(t *testing.T) {
	// ApplySVP must refuse loops without a goto-terminated latch
	// (do-while shapes) instead of mangling them.
	src := `
func main() {
	var x int = 0;
	var n int = 0;
	do {
		x = x + 2;
		n++;
	} while (x < 100);
	print(x, n);
}
`
	prog := build(t, src)
	f := prog.Main
	nest := ssa.FindLoops(f, ssa.BuildDomTree(f))
	l := nest.Loops[0]
	var upd *ir.Stmt
	for _, b := range l.Blocks {
		for _, s := range b.Stmts {
			if s.Kind == ir.StmtAssign && s.Dst.Base.Name == "x" {
				upd = s
			}
		}
	}
	c := &transform.SVPCandidate{Loop: l, Stmt: upd, Var: upd.Dst.Base, Stride: 2, Conf: 1}
	if transform.ApplySVP(f, c) {
		t.Error("ApplySVP should refuse a do-while-shaped loop")
	}
	if got := run(t, prog); got != "100 50\n" {
		t.Errorf("program must be untouched after refusal, got %q", got)
	}
}

func TestApplySVPPreservesSemantics(t *testing.T) {
	src := `
var s int;
func main() {
	var x int = 1;
	while (x < 500) {
		s = (s + x % 13) & 65535;
		if (x % 37 == 0) {
			x = x + 3;
		} else {
			x = x + 2;
		}
	}
	print(s, x);
}
`
	prog := build(t, src)
	want := run(t, prog)

	prog2 := build(t, src)
	f := prog2.Main
	nest := ssa.FindLoops(f, ssa.BuildDomTree(f))
	l := nest.Loops[0]
	// Pick any x-defining statement as the critical VC stand-in.
	var upd *ir.Stmt
	for _, b := range l.Blocks {
		for _, s := range b.Stmts {
			if s.Kind == ir.StmtAssign && s.Dst.Base.Name == "x" {
				upd = s
			}
		}
	}
	c := &transform.SVPCandidate{Loop: l, Stmt: upd, Var: upd.Dst.Base, Stride: 2, Conf: 0.97}
	if !transform.ApplySVP(f, c) {
		t.Fatal("SVP not applied")
	}
	ir.PruneUnreachable(f)
	ir.ReorderRPO(f)
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if got := run(t, prog2); got != want {
		t.Errorf("%q != %q", got, want)
	}
	// The prediction machinery must be present.
	text := ir.FormatFunc(f)
	if !strings.Contains(text, "pred_x") {
		t.Errorf("no pred_x in transformed loop:\n%s", text)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
