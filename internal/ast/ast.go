// Package ast defines the abstract syntax trees for SPL.
//
// SPL is a deliberately small C-like language: scalar ints and floats,
// global 1- and 2-dimensional arrays, functions, structured control flow
// (if/while/for/do-while, break/continue/return). It is the source
// language for the SPT speculative-parallelization framework; its loops
// play the role that C loops played for the paper's ORC implementation.
package ast

import (
	"sptc/internal/source"
	"sptc/internal/token"
)

// Type describes an SPL value or object type.
type Type struct {
	Kind TypeKind
	Elem TypeKind // element type for arrays
	Dims []int    // array dimensions (len 1 or 2)
}

// TypeKind enumerates the base kinds.
type TypeKind int

// Type kinds.
const (
	TypeInvalid TypeKind = iota
	TypeVoid
	TypeInt
	TypeFloat
	TypeArray
)

func (k TypeKind) String() string {
	switch k {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeArray:
		return "array"
	}
	return "invalid"
}

func (t Type) String() string {
	if t.Kind != TypeArray {
		return t.Kind.String()
	}
	s := t.Elem.String()
	for _, d := range t.Dims {
		s += "[" + itoa(d) + "]"
	}
	return s
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// IsNumeric reports whether t is int or float.
func (t Type) IsNumeric() bool { return t.Kind == TypeInt || t.Kind == TypeFloat }

// Node is the interface implemented by all AST nodes.
type Node interface {
	Pos() source.Pos
}

// ---- Declarations ----

// Program is a whole SPL compilation unit.
type Program struct {
	File    *source.File
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// Pos returns the start of the program (position of the first decl).
func (p *Program) Pos() source.Pos {
	if len(p.Globals) > 0 {
		return p.Globals[0].Pos()
	}
	if len(p.Funcs) > 0 {
		return p.Funcs[0].Pos()
	}
	return source.Pos{}
}

// VarDecl declares a scalar or array variable, optionally initialized.
type VarDecl struct {
	PosTok source.Pos
	Name   string
	Type   Type
	Init   Expr // nil if none (arrays are always zero-initialized)
}

func (d *VarDecl) Pos() source.Pos { return d.PosTok }

// Param is one function parameter.
type Param struct {
	PosTok source.Pos
	Name   string
	Type   Type
}

// FuncDecl declares a function.
type FuncDecl struct {
	PosTok source.Pos
	Name   string
	Params []Param
	Result Type // TypeVoid if none
	Body   *BlockStmt
}

func (d *FuncDecl) Pos() source.Pos { return d.PosTok }

// ---- Statements ----

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmt()
}

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	PosTok source.Pos
	Stmts  []Stmt
}

// DeclStmt wraps a local variable declaration.
type DeclStmt struct {
	Decl *VarDecl
}

// AssignStmt assigns to a scalar or array element.
// Op is token.ASSIGN for plain assignment, or one of the compound
// assignment tokens (PLUSEQ etc.); INC/DEC are desugared by the parser.
type AssignStmt struct {
	PosTok source.Pos
	LHS    Expr // *Ident or *IndexExpr
	Op     token.Kind
	RHS    Expr
}

// ExprStmt evaluates an expression (a call) for its side effects.
type ExprStmt struct {
	X Expr
}

// IfStmt is a conditional with optional else.
type IfStmt struct {
	PosTok source.Pos
	Cond   Expr
	Then   *BlockStmt
	Else   Stmt // *BlockStmt, *IfStmt, or nil
}

// WhileStmt is a pre-tested loop.
type WhileStmt struct {
	PosTok source.Pos
	Cond   Expr
	Body   *BlockStmt
}

// DoWhileStmt is a post-tested loop.
type DoWhileStmt struct {
	PosTok source.Pos
	Body   *BlockStmt
	Cond   Expr
}

// ForStmt is a counted loop: for (init; cond; post) body.
// Init and Post may be nil; Cond may be nil (infinite).
type ForStmt struct {
	PosTok source.Pos
	Init   Stmt // *AssignStmt or *DeclStmt or nil
	Cond   Expr
	Post   Stmt // *AssignStmt or nil
	Body   *BlockStmt
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ PosTok source.Pos }

// ContinueStmt jumps to the next iteration of the innermost loop.
type ContinueStmt struct{ PosTok source.Pos }

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	PosTok source.Pos
	X      Expr // nil for void return
}

func (s *BlockStmt) Pos() source.Pos    { return s.PosTok }
func (s *DeclStmt) Pos() source.Pos     { return s.Decl.Pos() }
func (s *AssignStmt) Pos() source.Pos   { return s.PosTok }
func (s *ExprStmt) Pos() source.Pos     { return s.X.Pos() }
func (s *IfStmt) Pos() source.Pos       { return s.PosTok }
func (s *WhileStmt) Pos() source.Pos    { return s.PosTok }
func (s *DoWhileStmt) Pos() source.Pos  { return s.PosTok }
func (s *ForStmt) Pos() source.Pos      { return s.PosTok }
func (s *BreakStmt) Pos() source.Pos    { return s.PosTok }
func (s *ContinueStmt) Pos() source.Pos { return s.PosTok }
func (s *ReturnStmt) Pos() source.Pos   { return s.PosTok }

func (*BlockStmt) stmt()    {}
func (*DeclStmt) stmt()     {}
func (*AssignStmt) stmt()   {}
func (*ExprStmt) stmt()     {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*DoWhileStmt) stmt()  {}
func (*ForStmt) stmt()      {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*ReturnStmt) stmt()   {}

// ---- Expressions ----

// Expr is implemented by all expression nodes. Type is filled in by
// semantic analysis.
type Expr interface {
	Node
	expr()
	ExprType() Type
	setType(Type)
}

type typed struct{ typ Type }

func (t *typed) ExprType() Type  { return t.typ }
func (t *typed) setType(ty Type) { t.typ = ty }

// SetType records the checked type of e. It is exported for use by the
// sem package.
func SetType(e Expr, t Type) { e.setType(t) }

// Ident is a use of a named variable.
type Ident struct {
	typed
	PosTok source.Pos
	Name   string
}

// IntLit is an integer literal.
type IntLit struct {
	typed
	PosTok source.Pos
	Value  int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	typed
	PosTok source.Pos
	Value  float64
}

// StrLit is a string literal; valid only as a print argument.
type StrLit struct {
	typed
	PosTok source.Pos
	Value  string
}

// IndexExpr is a 1- or 2-dimensional array element access.
type IndexExpr struct {
	typed
	PosTok source.Pos
	Array  *Ident
	Index  []Expr // len 1 or 2
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	typed
	PosTok source.Pos
	Op     token.Kind
	X, Y   Expr
}

// UnaryExpr applies a unary operator (-, !, ~).
type UnaryExpr struct {
	typed
	PosTok source.Pos
	Op     token.Kind
	X      Expr
}

// CallExpr calls a user function or builtin.
type CallExpr struct {
	typed
	PosTok source.Pos
	Name   string
	Args   []Expr
}

// CastExpr converts between int and float: int(x), float(x).
type CastExpr struct {
	typed
	PosTok source.Pos
	To     TypeKind
	X      Expr
}

func (e *Ident) Pos() source.Pos      { return e.PosTok }
func (e *IntLit) Pos() source.Pos     { return e.PosTok }
func (e *FloatLit) Pos() source.Pos   { return e.PosTok }
func (e *StrLit) Pos() source.Pos     { return e.PosTok }
func (e *IndexExpr) Pos() source.Pos  { return e.PosTok }
func (e *BinaryExpr) Pos() source.Pos { return e.PosTok }
func (e *UnaryExpr) Pos() source.Pos  { return e.PosTok }
func (e *CallExpr) Pos() source.Pos   { return e.PosTok }
func (e *CastExpr) Pos() source.Pos   { return e.PosTok }

func (*Ident) expr()      {}
func (*IntLit) expr()     {}
func (*FloatLit) expr()   {}
func (*StrLit) expr()     {}
func (*IndexExpr) expr()  {}
func (*BinaryExpr) expr() {}
func (*UnaryExpr) expr()  {}
func (*CallExpr) expr()   {}
func (*CastExpr) expr()   {}

// Walk calls fn for every node in the subtree rooted at n, parents
// before children. If fn returns false the children are skipped.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	switch x := n.(type) {
	case *Program:
		for _, d := range x.Globals {
			Walk(d, fn)
		}
		for _, f := range x.Funcs {
			Walk(f, fn)
		}
	case *VarDecl:
		if x.Init != nil {
			Walk(x.Init, fn)
		}
	case *FuncDecl:
		Walk(x.Body, fn)
	case *BlockStmt:
		for _, s := range x.Stmts {
			Walk(s, fn)
		}
	case *DeclStmt:
		Walk(x.Decl, fn)
	case *AssignStmt:
		Walk(x.LHS, fn)
		Walk(x.RHS, fn)
	case *ExprStmt:
		Walk(x.X, fn)
	case *IfStmt:
		Walk(x.Cond, fn)
		Walk(x.Then, fn)
		if x.Else != nil {
			Walk(x.Else, fn)
		}
	case *WhileStmt:
		Walk(x.Cond, fn)
		Walk(x.Body, fn)
	case *DoWhileStmt:
		Walk(x.Body, fn)
		Walk(x.Cond, fn)
	case *ForStmt:
		if x.Init != nil {
			Walk(x.Init, fn)
		}
		if x.Cond != nil {
			Walk(x.Cond, fn)
		}
		if x.Post != nil {
			Walk(x.Post, fn)
		}
		Walk(x.Body, fn)
	case *ReturnStmt:
		if x.X != nil {
			Walk(x.X, fn)
		}
	case *IndexExpr:
		Walk(x.Array, fn)
		for _, ix := range x.Index {
			Walk(ix, fn)
		}
	case *BinaryExpr:
		Walk(x.X, fn)
		Walk(x.Y, fn)
	case *UnaryExpr:
		Walk(x.X, fn)
	case *CallExpr:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case *CastExpr:
		Walk(x.X, fn)
	}
}
