package ast_test

import (
	"testing"

	"sptc/internal/ast"
	"sptc/internal/parser"
)

func TestTypeString(t *testing.T) {
	cases := []struct {
		typ  ast.Type
		want string
	}{
		{ast.Type{Kind: ast.TypeInt}, "int"},
		{ast.Type{Kind: ast.TypeFloat}, "float"},
		{ast.Type{Kind: ast.TypeVoid}, "void"},
		{ast.Type{Kind: ast.TypeArray, Elem: ast.TypeInt, Dims: []int{8}}, "int[8]"},
		{ast.Type{Kind: ast.TypeArray, Elem: ast.TypeFloat, Dims: []int{3, 4}}, "float[3][4]"},
	}
	for _, c := range cases {
		if got := c.typ.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.typ, got, c.want)
		}
	}
}

func TestIsNumeric(t *testing.T) {
	if !(ast.Type{Kind: ast.TypeInt}).IsNumeric() || !(ast.Type{Kind: ast.TypeFloat}).IsNumeric() {
		t.Error("int/float should be numeric")
	}
	if (ast.Type{Kind: ast.TypeArray}).IsNumeric() || (ast.Type{Kind: ast.TypeVoid}).IsNumeric() {
		t.Error("array/void should not be numeric")
	}
}

func TestWalkEarlyExit(t *testing.T) {
	prog, err := parser.Parse("t.spl", `
func f(x int) int { return x + 1; }
func main() {
	var a int = f(1) * f(2);
	print(a);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	// Refusing to descend into functions must hide all calls.
	calls := 0
	ast.Walk(prog, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncDecl); ok {
			return false
		}
		if _, ok := n.(*ast.CallExpr); ok {
			calls++
		}
		return true
	})
	if calls != 0 {
		t.Errorf("early exit leaked %d calls", calls)
	}
	// Full walk sees both calls plus print.
	calls = 0
	ast.Walk(prog, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			calls++
		}
		return true
	})
	if calls != 3 {
		t.Errorf("full walk found %d calls, want 3", calls)
	}
}

func TestPositionsAreSet(t *testing.T) {
	prog, err := parser.Parse("t.spl", `
var g int;
func main() {
	var x int = g + 1;
	print(x);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	ast.Walk(prog, func(n ast.Node) bool {
		if !n.Pos().IsValid() {
			t.Errorf("node %T has no position", n)
		}
		return true
	})
}
