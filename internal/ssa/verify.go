package ssa

import (
	"fmt"

	"sptc/internal/ir"
)

// VerifySSA checks the SSA invariants of f:
//
//  1. every variable version has at most one definition;
//  2. every non-phi use is dominated by its definition;
//  3. every phi argument's definition dominates the corresponding
//     predecessor block (or is the argument's own phi, for self-loops).
//
// Parameters and never-defined version-0 variables (uses before any def,
// which the builder avoids) count as defined at entry. Returns the first
// violation, or nil.
func VerifySSA(f *ir.Func, dom *DomTree) error {
	defAt := make(map[*ir.Var]*ir.Block)
	defStmt := make(map[*ir.Var]*ir.Stmt)
	for _, b := range f.Blocks {
		for _, s := range b.Stmts {
			d := s.Defs()
			if d == nil {
				continue
			}
			if prev, dup := defStmt[d]; dup {
				return fmt.Errorf("ssa: %s: %s defined by both s%d and s%d", f.Name, d, prev.ID, s.ID)
			}
			defStmt[d] = s
			defAt[d] = b
		}
	}
	for _, p := range f.Params {
		defAt[p] = f.Entry
	}

	// Statement order within blocks, for same-block dominance.
	idx := make(map[*ir.Stmt]int)
	for _, b := range f.Blocks {
		for i, s := range b.Stmts {
			idx[s] = i
		}
	}

	dominatesUse := func(v *ir.Var, useBlock *ir.Block, useStmt *ir.Stmt) error {
		db, ok := defAt[v]
		if !ok {
			// Version-0 variable never defined: treated as defined at
			// entry (zero value), which dominates everything.
			if v.Ver == 0 {
				return nil
			}
			return fmt.Errorf("ssa: %s: use of undefined %s in s%d", f.Name, v, useStmt.ID)
		}
		if db == useBlock {
			ds := defStmt[v]
			if ds != nil && idx[ds] >= idx[useStmt] {
				return fmt.Errorf("ssa: %s: %s used at s%d before its definition s%d",
					f.Name, v, useStmt.ID, ds.ID)
			}
			return nil
		}
		if !dom.Dominates(db, useBlock) {
			return fmt.Errorf("ssa: %s: definition of %s (b%d) does not dominate use in b%d",
				f.Name, v, db.ID, useBlock.ID)
		}
		return nil
	}

	for _, b := range f.Blocks {
		for _, s := range b.Stmts {
			if s.Kind == ir.StmtPhi {
				for i, arg := range s.PhiArgs {
					if i >= len(b.Preds) {
						return fmt.Errorf("ssa: %s: phi s%d has more args than preds", f.Name, s.ID)
					}
					pred := b.Preds[i]
					db, ok := defAt[arg]
					if !ok {
						if arg.Ver == 0 {
							continue
						}
						return fmt.Errorf("ssa: %s: phi s%d uses undefined %s", f.Name, s.ID, arg)
					}
					if !dom.Dominates(db, pred) {
						return fmt.Errorf("ssa: %s: phi s%d arg %s (def b%d) does not dominate pred b%d",
							f.Name, s.ID, arg, db.ID, pred.ID)
					}
				}
				continue
			}
			var err error
			s.UsedVars(func(v *ir.Var) {
				if err == nil {
					err = dominatesUse(v, b, s)
				}
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}
