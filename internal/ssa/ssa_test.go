package ssa_test

import (
	"strings"
	"testing"
	"testing/quick"

	"sptc/internal/interp"
	"sptc/internal/ir"
	"sptc/internal/parser"
	"sptc/internal/sem"
	"sptc/internal/ssa"
)

func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := parser.Parse("t.spl", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(p)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	prog, err := ir.Build(info)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return prog
}

const diamondSrc = `
func main() {
	var x int = 0;
	var i int;
	for (i = 0; i < 10; i++) {
		if (i % 2 == 0) {
			x = x + i;
		} else {
			x = x - 1;
		}
	}
	print(x);
}
`

func TestDominators(t *testing.T) {
	prog := build(t, diamondSrc)
	f := prog.Main
	dom := ssa.BuildDomTree(f)
	// Entry dominates everything.
	for _, b := range f.Blocks {
		if !dom.Dominates(f.Entry, b) {
			t.Errorf("entry should dominate b%d", b.ID)
		}
		if !dom.Dominates(b, b) {
			t.Errorf("dominance should be reflexive (b%d)", b.ID)
		}
	}
	// The idom of every non-entry block dominates it strictly.
	for _, b := range f.Blocks {
		if b == f.Entry {
			continue
		}
		id := dom.Idom[b]
		if id == nil {
			t.Errorf("b%d has no idom", b.ID)
			continue
		}
		if !dom.Dominates(id, b) || id == b {
			t.Errorf("idom(b%d)=b%d not a strict dominator", b.ID, id.ID)
		}
	}
}

// TestDominanceFrontierProperty: for every CFG edge u->v, either u's
// frontier contains v (if u does not strictly dominate v) — the defining
// property used by phi placement.
func TestDominanceFrontierProperty(t *testing.T) {
	prog := build(t, diamondSrc)
	f := prog.Main
	dom := ssa.BuildDomTree(f)
	inFrontier := func(u, v *ir.Block) bool {
		for _, x := range dom.Frontier[u] {
			if x == v {
				return true
			}
		}
		return false
	}
	for _, u := range f.Blocks {
		for _, v := range u.Succs {
			strict := dom.Dominates(u, v) && u != v
			if !strict && len(v.Preds) >= 2 && !inFrontier(u, v) {
				t.Errorf("edge b%d->b%d: join not in frontier", u.ID, v.ID)
			}
		}
	}
}

// checkSSASingleAssignment verifies the defining SSA property.
func checkSSASingleAssignment(t *testing.T, f *ir.Func) {
	t.Helper()
	defs := map[*ir.Var]int{}
	for _, b := range f.Blocks {
		for _, s := range b.Stmts {
			if d := s.Defs(); d != nil {
				defs[d]++
			}
		}
	}
	for v, n := range defs {
		if n > 1 {
			t.Errorf("%s defined %d times", v, n)
		}
	}
}

func TestSSAConstruction(t *testing.T) {
	prog := build(t, diamondSrc)
	f := prog.Main
	dom := ssa.BuildDomTree(f)
	ssa.Build(f, dom)
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
	checkSSASingleAssignment(t, f)

	// The loop header must merge x and i with phis.
	text := ir.FormatFunc(f)
	if !strings.Contains(text, "phi(") {
		t.Errorf("expected phis:\n%s", text)
	}
}

func TestLoopDetection(t *testing.T) {
	prog := build(t, `
func main() {
	var i int;
	var j int;
	var s int;
	for (i = 0; i < 4; i++) {
		for (j = 0; j < 4; j++) {
			s += i * j;
		}
	}
	var w int = 100;
	while (w > 0) { w = w - (s & 7) - 1; }
	print(s, w);
}
`)
	f := prog.Main
	dom := ssa.BuildDomTree(f)
	nest := ssa.FindLoops(f, dom)
	if len(nest.Loops) != 3 {
		t.Fatalf("found %d loops, want 3", len(nest.Loops))
	}
	var do, while int
	var inner *ssa.Loop
	for _, l := range nest.Loops {
		switch l.Kind {
		case ssa.LoopDo:
			do++
		case ssa.LoopWhile:
			while++
		}
		if l.Depth == 2 {
			inner = l
		}
	}
	// The two for loops are counted; the while loop's step is variable.
	if do != 2 || while != 1 {
		t.Errorf("do=%d while=%d", do, while)
	}
	if inner == nil {
		t.Fatal("no depth-2 loop found")
	}
	if inner.Parent == nil || inner.Parent.Depth != 1 {
		t.Error("nest parent links broken")
	}
	if ind := ssa.Induction(inner); ind == nil || ind.Step != 1 {
		t.Errorf("inner loop induction: %+v", ind)
	}
}

func TestCollapseRoundTrip(t *testing.T) {
	src := `
var acc int;
func main() {
	var i int;
	for (i = 0; i < 50; i++) {
		var t int = i * 3;
		if (t % 4 == 1) { acc += t; } else { acc -= 1; }
	}
	print(acc);
}
`
	prog := build(t, src)
	f := prog.Main
	run := func() string {
		var out strings.Builder
		m := interp.New(prog, &out)
		if _, err := m.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String()
	}
	want := run()
	for round := 0; round < 3; round++ {
		dom := ssa.BuildDomTree(f)
		ssa.Build(f, dom)
		checkSSASingleAssignment(t, f)
		if got := run(); got != want {
			t.Fatalf("round %d SSA: %q != %q", round, got, want)
		}
		ssa.Collapse(f)
		if got := run(); got != want {
			t.Fatalf("round %d collapse: %q != %q", round, got, want)
		}
	}
}

func TestCopyPropAndDCE(t *testing.T) {
	prog := build(t, `
func main() {
	var a int = 5;
	var b int = a;
	var c int = b;
	var unused int = 42;
	print(c);
}
`)
	f := prog.Main
	dom := ssa.BuildDomTree(f)
	ssa.Build(f, dom)
	rewrites := ssa.CopyProp(f)
	if rewrites == 0 {
		t.Error("copy propagation found nothing")
	}
	removed := ssa.DeadCode(f)
	if removed == 0 {
		t.Error("DCE removed nothing")
	}
	// After cleanup, printing should still yield 5.
	var out strings.Builder
	if _, err := interp.New(prog, &out).Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.String() != "5\n" {
		t.Errorf("got %q", out.String())
	}
}

func TestConstFold(t *testing.T) {
	prog := build(t, `func main() { print(2 + 3 * 4, (10 / 2) % 3, 1 < 2, 2.0 * 4.0); }`)
	f := prog.Main
	n := ssa.ConstFold(f)
	if n == 0 {
		t.Error("nothing folded")
	}
	var out strings.Builder
	if _, err := interp.New(prog, &out).Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.String() != "14 2 1 8\n" {
		t.Errorf("got %q", out.String())
	}
}

func TestConstFoldDoesNotFoldDivByZero(t *testing.T) {
	prog := build(t, `func main() { var z int = 0; if (0) { print(1 / z, 5 / 0); } print(2); }`)
	f := prog.Main
	ssa.ConstFold(f) // must not panic or fold 5/0
	var out strings.Builder
	if _, err := interp.New(prog, &out).Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.String() != "2\n" {
		t.Errorf("got %q", out.String())
	}
}

// TestQuickCounterLoops: for random bounds and steps, a counted loop sums
// correctly after SSA + cleanup passes — exercising phi insertion,
// renaming, copy propagation and folding on many loop shapes.
func TestQuickCounterLoops(t *testing.T) {
	f := func(bound uint8, step uint8) bool {
		n := int64(bound % 37)
		st := int64(step%5) + 1
		src := `
func main() {
	var s int = 0;
	var i int;
	for (i = 0; i < ` + itoa(n) + `; i += ` + itoa(st) + `) {
		s += i;
	}
	print(s);
}
`
		p, err := parser.Parse("q.spl", src)
		if err != nil {
			return false
		}
		info, err := sem.Check(p)
		if err != nil {
			return false
		}
		prog, err := ir.Build(info)
		if err != nil {
			return false
		}
		fn := prog.Main
		dom := ssa.BuildDomTree(fn)
		ssa.Build(fn, dom)
		ssa.CopyProp(fn)
		ssa.ConstFold(fn)
		ssa.DeadCode(fn)
		var out strings.Builder
		if _, err := interp.New(prog, &out).Run(); err != nil {
			return false
		}
		want := int64(0)
		for i := int64(0); i < n; i += st {
			want += i
		}
		return out.String() == itoa(want)+"\n"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
