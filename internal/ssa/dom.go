// Package ssa implements SSA construction and the supporting CFG analyses
// (dominator tree, dominance frontiers, natural-loop detection) plus the
// SSA cleanup passes the paper's transformation relies on: copy
// propagation and dead-code elimination.
package ssa

import "sptc/internal/ir"

// DomTree holds immediate-dominator information for one function.
type DomTree struct {
	Func *ir.Func
	// Idom maps a block to its immediate dominator (nil for entry).
	Idom map[*ir.Block]*ir.Block
	// Children maps a block to the blocks it immediately dominates.
	Children map[*ir.Block][]*ir.Block
	// Frontier is the dominance frontier of each block.
	Frontier map[*ir.Block][]*ir.Block

	rpoNum map[*ir.Block]int
	rpo    []*ir.Block
}

// BuildDomTree computes the dominator tree and dominance frontiers using
// the Cooper-Harvey-Kennedy iterative algorithm.
func BuildDomTree(f *ir.Func) *DomTree {
	t := &DomTree{
		Func:     f,
		Idom:     make(map[*ir.Block]*ir.Block),
		Children: make(map[*ir.Block][]*ir.Block),
		Frontier: make(map[*ir.Block][]*ir.Block),
		rpoNum:   make(map[*ir.Block]int),
	}

	// Reverse postorder.
	seen := make(map[*ir.Block]bool)
	var post []*ir.Block
	var dfs func(*ir.Block)
	dfs = func(b *ir.Block) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		post = append(post, b)
	}
	dfs(f.Entry)
	for i := len(post) - 1; i >= 0; i-- {
		t.rpo = append(t.rpo, post[i])
	}
	for i, b := range t.rpo {
		t.rpoNum[b] = i
	}

	// Iterative idom computation.
	t.Idom[f.Entry] = f.Entry
	changed := true
	for changed {
		changed = false
		for _, b := range t.rpo {
			if b == f.Entry {
				continue
			}
			var newIdom *ir.Block
			for _, p := range b.Preds {
				if _, ok := t.Idom[p]; !ok {
					continue // not yet processed / unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = t.intersect(p, newIdom)
				}
			}
			if newIdom != nil && t.Idom[b] != newIdom {
				t.Idom[b] = newIdom
				changed = true
			}
		}
	}
	t.Idom[f.Entry] = nil

	// Children in reverse postorder, not map order: the SSA rename walk
	// follows Children, and its visit order decides variable version
	// numbering — map iteration here would make compiles of the same
	// program differ run to run.
	for _, b := range t.rpo {
		if id := t.Idom[b]; id != nil {
			t.Children[id] = append(t.Children[id], b)
		}
	}

	// Dominance frontiers.
	for _, b := range t.rpo {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			if _, ok := t.rpoNum[p]; !ok {
				continue
			}
			runner := p
			for runner != nil && runner != t.Idom[b] {
				t.Frontier[runner] = appendUnique(t.Frontier[runner], b)
				runner = t.Idom[runner]
			}
		}
	}
	return t
}

func appendUnique(list []*ir.Block, b *ir.Block) []*ir.Block {
	for _, x := range list {
		if x == b {
			return list
		}
	}
	return append(list, b)
}

func (t *DomTree) intersect(a, b *ir.Block) *ir.Block {
	for a != b {
		for t.rpoNum[a] > t.rpoNum[b] {
			a = t.Idom[a]
			if a == nil {
				return b
			}
		}
		for t.rpoNum[b] > t.rpoNum[a] {
			b = t.Idom[b]
			if b == nil {
				return a
			}
		}
	}
	return a
}

// Dominates reports whether a dominates b (reflexively).
func (t *DomTree) Dominates(a, b *ir.Block) bool {
	for b != nil {
		if a == b {
			return true
		}
		b = t.Idom[b]
	}
	return false
}

// RPO returns the blocks in reverse postorder.
func (t *DomTree) RPO() []*ir.Block { return t.rpo }
