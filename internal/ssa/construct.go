package ssa

import (
	"sptc/internal/ir"
)

// Build converts f into SSA form: phi insertion at dominance frontiers
// followed by dominator-tree renaming. Only scalar locals participate;
// globals and arrays remain explicit memory operations, matching the
// paper's HSSA-based setting where aliased memory stays in mu/chi form.
func Build(f *ir.Func, dom *DomTree) {
	insertPhis(f, dom)
	rename(f, dom)
}

func insertPhis(f *ir.Func, dom *DomTree) {
	// Definition sites per base variable. bases keeps first-definition
	// order: phi insertion must not iterate a map, or phi statement IDs
	// and in-block phi order would differ between compiles of the same
	// program.
	var bases []*ir.Var
	defSites := make(map[*ir.Var][]*ir.Block)
	defBlocks := make(map[*ir.Var]map[*ir.Block]bool)
	for _, b := range f.Blocks {
		for _, s := range b.Stmts {
			if d := s.Defs(); d != nil {
				base := d.Base
				if defBlocks[base] == nil {
					defBlocks[base] = make(map[*ir.Block]bool)
					bases = append(bases, base)
				}
				if !defBlocks[base][b] {
					defBlocks[base][b] = true
					defSites[base] = append(defSites[base], b)
				}
			}
		}
	}

	for _, base := range bases {
		sites := defSites[base]
		hasPhi := make(map[*ir.Block]bool)
		work := append([]*ir.Block(nil), sites...)
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, d := range dom.Frontier[b] {
				if hasPhi[d] {
					continue
				}
				hasPhi[d] = true
				phi := f.NewStmt(ir.StmtPhi)
				phi.Dst = base // placeholder; renamed later
				phi.PhiArgs = make([]*ir.Var, len(d.Preds))
				for i := range phi.PhiArgs {
					phi.PhiArgs[i] = base
				}
				d.Stmts = append([]*ir.Stmt{phi}, d.Stmts...)
				if !defBlocks[base][d] {
					defBlocks[base][d] = true
					work = append(work, d)
				}
			}
		}
	}
}

func rename(f *ir.Func, dom *DomTree) {
	stacks := make(map[*ir.Var][]*ir.Var) // base -> version stack
	counter := make(map[*ir.Var]int)

	top := func(base *ir.Var) *ir.Var {
		st := stacks[base]
		if len(st) == 0 {
			// Use before def (possible only for params, which are their
			// own version 0, or for ill-formed code): the base itself.
			return base
		}
		return st[len(st)-1]
	}
	push := func(base *ir.Var) *ir.Var {
		counter[base]++
		nv := f.NewVersion(base, counter[base])
		stacks[base] = append(stacks[base], nv)
		return nv
	}

	for _, p := range f.Params {
		stacks[p] = append(stacks[p], p)
	}

	renameOp := func(o *ir.Op) {
		o.Walk(func(x *ir.Op) {
			if x.Kind == ir.OpUseVar {
				x.Var = top(x.Var.Base)
			}
		})
	}

	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		pushed := make(map[*ir.Var]int)

		for _, s := range b.Stmts {
			if s.Kind != ir.StmtPhi {
				for _, ix := range s.Index {
					renameOp(ix)
				}
				if s.RHS != nil {
					renameOp(s.RHS)
				}
			}
			if d := s.Defs(); d != nil {
				base := d.Base
				s.Dst = push(base)
				pushed[base]++
			}
		}

		// Fill phi args in successors.
		for _, succ := range b.Succs {
			pi := succ.PredIndex(b)
			if pi < 0 {
				continue
			}
			for _, phi := range succ.Phis() {
				base := phi.PhiArgs[pi].Base
				phi.PhiArgs[pi] = top(base)
			}
		}

		for _, c := range dom.Children[b] {
			walk(c)
		}

		for base, n := range pushed {
			stacks[base] = stacks[base][:len(stacks[base])-n]
		}
	}
	walk(f.Entry)
}

// Collapse takes f out of SSA form: phi nodes are removed and every
// variable occurrence is replaced by its base (version-0) variable. This
// is only semantics-preserving when the SSA form was derived directly
// from an imperative program without interleaving-live-range rewrites
// (i.e., before copy propagation); the SPT transformation passes rely on
// this to perform code motion at the base-variable level, exactly where
// the paper inserts its temporaries (Figures 10/11).
func Collapse(f *ir.Func) {
	for _, b := range f.Blocks {
		var kept []*ir.Stmt
		for _, s := range b.Stmts {
			if s.Kind == ir.StmtPhi {
				continue
			}
			if s.Dst != nil {
				s.Dst = s.Dst.Base
			}
			s.Ops(func(o *ir.Op) {
				if o.Kind == ir.OpUseVar {
					o.Var = o.Var.Base
				}
			})
			kept = append(kept, s)
		}
		b.Stmts = kept
	}
}

// Repair rebuilds SSA from scratch after a transformation: it collapses
// every variable to its base version, removes phis, then re-runs phi
// insertion and renaming (the paper's "SSA renaming" cleanup step).
func Repair(f *ir.Func) *DomTree {
	Collapse(f)
	dom := BuildDomTree(f)
	Build(f, dom)
	return dom
}
