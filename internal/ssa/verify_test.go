package ssa_test

import (
	"testing"

	"sptc/internal/ir"
	"sptc/internal/ssa"
)

// TestVerifySSAOnRealPrograms: SSA construction over a battery of shapes
// must satisfy the SSA invariants.
func TestVerifySSAOnRealPrograms(t *testing.T) {
	sources := []string{
		diamondSrc,
		`
var a int[16];
func main() {
	var i int;
	for (i = 0; i < 16; i++) {
		var j int;
		for (j = 0; j < i; j++) {
			a[j] = a[j] + i;
		}
	}
	print(a[3]);
}
`,
		`
func f(n int) int {
	if (n <= 1) { return 1; }
	return n * f(n - 1);
}
func main() {
	var k int = 0;
	while (k < 6) {
		if (k % 2 == 0) { k = k + 1; } else { k = k + 2; }
	}
	print(f(5), k);
}
`,
	}
	for i, src := range sources {
		prog := build(t, src)
		for _, f := range prog.Funcs {
			dom := ssa.BuildDomTree(f)
			ssa.Build(f, dom)
			if err := ssa.VerifySSA(f, ssa.BuildDomTree(f)); err != nil {
				t.Errorf("program %d, %s: %v\n%s", i, f.Name, err, ir.FormatFunc(f))
			}
			// Cleanup passes must preserve the invariants.
			ssa.CopyProp(f)
			ssa.ConstFold(f)
			ssa.DeadCode(f)
			if err := ssa.VerifySSA(f, ssa.BuildDomTree(f)); err != nil {
				t.Errorf("program %d after cleanup, %s: %v", i, f.Name, err)
			}
		}
	}
}

// TestVerifySSACatchesDoubleDef: a manufactured double definition is
// rejected.
func TestVerifySSACatchesDoubleDef(t *testing.T) {
	prog := build(t, `func main() { var x int = 1; print(x); }`)
	f := prog.Main
	dom := ssa.BuildDomTree(f)
	ssa.Build(f, dom)

	// Duplicate the first assignment: same Dst defined twice.
	var target *ir.Stmt
	for _, b := range f.Blocks {
		for _, s := range b.Stmts {
			if s.Kind == ir.StmtAssign && target == nil {
				target = s
			}
		}
	}
	dup := f.CloneStmt(target)
	entry := f.Entry
	entry.Stmts = append([]*ir.Stmt{dup}, entry.Stmts...)
	if err := ssa.VerifySSA(f, ssa.BuildDomTree(f)); err == nil {
		t.Error("double definition not caught")
	}
}

// TestVerifySSACatchesBadDominance: a use hoisted above its definition is
// rejected.
func TestVerifySSACatchesBadDominance(t *testing.T) {
	prog := build(t, `
func main() {
	var c int = 1;
	var x int = 0;
	if (c) { x = 5; } else { x = 6; }
	print(x);
}
`)
	f := prog.Main
	dom := ssa.BuildDomTree(f)
	ssa.Build(f, dom)
	if err := ssa.VerifySSA(f, ssa.BuildDomTree(f)); err != nil {
		t.Fatalf("valid SSA rejected: %v", err)
	}

	// Find the then-arm definition and a use in the final print; rewire
	// the print's op to read the arm-local version, which does not
	// dominate the join.
	var armDef *ir.Var
	for _, b := range f.Blocks {
		for _, s := range b.Stmts {
			if s.Kind == ir.StmtAssign && s.RHS.Kind == ir.OpConstInt && s.RHS.ConstI == 5 {
				armDef = s.Dst
			}
		}
	}
	if armDef == nil {
		t.Skip("constant folded away")
	}
	broken := false
	for _, b := range f.Blocks {
		for _, s := range b.Stmts {
			if s.Kind != ir.StmtCall {
				continue
			}
			s.Ops(func(o *ir.Op) {
				if o.Kind == ir.OpUseVar && !broken {
					o.Var = armDef
					broken = true
				}
			})
		}
	}
	if !broken {
		t.Skip("no rewirable use")
	}
	if err := ssa.VerifySSA(f, ssa.BuildDomTree(f)); err == nil {
		t.Error("non-dominating use not caught")
	}
}
