package ssa

import "sptc/internal/ir"

// CopyProp propagates SSA copies: after `v = w` (or `v = const`), uses of
// v are replaced by w (or the constant). Phi nodes whose arguments are all
// the same value collapse to copies first. The function must be in SSA
// form. Returns the number of uses rewritten.
func CopyProp(f *ir.Func) int {
	// def map: var -> defining statement.
	def := make(map[*ir.Var]*ir.Stmt)
	for _, b := range f.Blocks {
		for _, s := range b.Stmts {
			if d := s.Defs(); d != nil {
				def[d] = s
			}
		}
	}

	// Collapse trivial phis: phi(v, v, ...) => copy of v;
	// phi(x, self, self...) => copy of x.
	for _, b := range f.Blocks {
		for _, s := range b.Stmts {
			if s.Kind != ir.StmtPhi {
				continue
			}
			var uniq *ir.Var
			trivial := true
			for _, a := range s.PhiArgs {
				if a == s.Dst {
					continue
				}
				if uniq == nil {
					uniq = a
				} else if uniq != a {
					trivial = false
					break
				}
			}
			if trivial && uniq != nil {
				s.Kind = ir.StmtAssign
				use := f.NewOp(ir.OpUseVar, uniq.Kind)
				use.Var = uniq
				s.RHS = use
				s.PhiArgs = nil
			}
		}
	}

	// resolve follows copy chains to the final source.
	var resolve func(v *ir.Var, depth int) (*ir.Var, *ir.Op)
	resolve = func(v *ir.Var, depth int) (*ir.Var, *ir.Op) {
		if depth > 64 {
			return v, nil
		}
		s := def[v]
		if s == nil || s.Kind != ir.StmtAssign || s.RHS == nil {
			return v, nil
		}
		switch s.RHS.Kind {
		case ir.OpUseVar:
			return resolve(s.RHS.Var, depth+1)
		case ir.OpConstInt, ir.OpConstFloat:
			return nil, s.RHS
		}
		return v, nil
	}

	n := 0
	rewriteOp := func(o *ir.Op) {
		o.Walk(func(x *ir.Op) {
			if x.Kind != ir.OpUseVar {
				return
			}
			v, c := resolve(x.Var, 0)
			if c != nil {
				// Replace with the constant, preserving the use's type.
				want := x.Type
				x.Kind = c.Kind
				x.ConstI, x.ConstF = c.ConstI, c.ConstF
				x.Var = nil
				if want == ir.ValFloat && x.Kind == ir.OpConstInt {
					x.Kind = ir.OpConstFloat
					x.ConstF = float64(x.ConstI)
				}
				n++
				return
			}
			if v != x.Var {
				x.Var = v
				n++
			}
		})
	}

	for _, b := range f.Blocks {
		for _, s := range b.Stmts {
			if s.Kind == ir.StmtPhi {
				for i, a := range s.PhiArgs {
					v, _ := resolve(a, 0)
					if v != nil && v != a {
						s.PhiArgs[i] = v
						n++
					}
				}
				continue
			}
			for _, ix := range s.Index {
				rewriteOp(ix)
			}
			if s.RHS != nil {
				rewriteOp(s.RHS)
			}
		}
	}
	return n
}

// DeadCode removes SSA assignments and phis whose results are never used
// and whose right-hand sides have no side effects (no calls). It iterates
// to a fixed point and returns the number of statements removed.
func DeadCode(f *ir.Func) int {
	removed := 0
	for {
		used := make(map[*ir.Var]bool)
		for _, b := range f.Blocks {
			for _, s := range b.Stmts {
				s.UsedVars(func(v *ir.Var) { used[v] = true })
				if s.Kind == ir.StmtPhi {
					for _, a := range s.PhiArgs {
						used[a] = true
					}
				}
			}
		}
		changed := false
		for _, b := range f.Blocks {
			var kept []*ir.Stmt
			for _, s := range b.Stmts {
				dead := false
				switch s.Kind {
				case ir.StmtAssign:
					dead = !used[s.Dst] && !s.RHS.HasCall()
				case ir.StmtPhi:
					dead = !used[s.Dst]
				}
				if dead {
					removed++
					changed = true
					continue
				}
				kept = append(kept, s)
			}
			b.Stmts = kept
		}
		if !changed {
			return removed
		}
	}
}

// ConstFold folds constant subexpressions in place and returns the number
// of operations folded. Division by a constant zero is left unfolded (it
// traps at run time, matching the interpreter).
func ConstFold(f *ir.Func) int {
	n := 0
	var fold func(o *ir.Op)
	fold = func(o *ir.Op) {
		for _, a := range o.Args {
			fold(a)
		}
		switch o.Kind {
		case ir.OpBin:
			x, y := o.Args[0], o.Args[1]
			if !isConst(x) || !isConst(y) {
				return
			}
			if (o.Bin == ir.BinDiv || o.Bin == ir.BinRem) && isZero(y) {
				return
			}
			floatOperands := x.Kind == ir.OpConstFloat || y.Kind == ir.OpConstFloat
			if o.Type == ir.ValFloat || floatOperands {
				fv := foldFloat(o.Bin, constF(x), constF(y))
				if o.Type == ir.ValFloat {
					o.ConstF = fv
					o.Kind = ir.OpConstFloat
				} else {
					o.ConstI = int64(fv)
					o.Kind = ir.OpConstInt
				}
			} else {
				v, ok := foldInt(o.Bin, constI(x), constI(y), x, y)
				if !ok {
					return
				}
				o.ConstI = v
				o.Kind = ir.OpConstInt
			}
			o.Args = nil
			n++
		case ir.OpUn:
			x := o.Args[0]
			if !isConst(x) {
				return
			}
			switch o.Un {
			case ir.UnNeg:
				if o.Type == ir.ValFloat {
					o.ConstF = -constF(x)
					o.Kind = ir.OpConstFloat
				} else {
					o.ConstI = -constI(x)
					o.Kind = ir.OpConstInt
				}
			case ir.UnNot:
				if truthy(x) {
					o.ConstI = 0
				} else {
					o.ConstI = 1
				}
				o.Kind = ir.OpConstInt
			case ir.UnBitNot:
				o.ConstI = ^constI(x)
				o.Kind = ir.OpConstInt
			}
			o.Args = nil
			n++
		case ir.OpCast:
			x := o.Args[0]
			if !isConst(x) {
				return
			}
			if o.Type == ir.ValFloat {
				o.ConstF = constF(x)
				o.Kind = ir.OpConstFloat
			} else {
				o.ConstI = constI(x)
				o.Kind = ir.OpConstInt
			}
			o.Args = nil
			n++
		}
	}
	for _, b := range f.Blocks {
		for _, s := range b.Stmts {
			for _, ix := range s.Index {
				fold(ix)
			}
			if s.RHS != nil {
				fold(s.RHS)
			}
		}
	}
	return n
}

func isConst(o *ir.Op) bool { return o.Kind == ir.OpConstInt || o.Kind == ir.OpConstFloat }

func isZero(o *ir.Op) bool {
	return (o.Kind == ir.OpConstInt && o.ConstI == 0) || (o.Kind == ir.OpConstFloat && o.ConstF == 0)
}

func truthy(o *ir.Op) bool { return !isZero(o) }

func constI(o *ir.Op) int64 {
	if o.Kind == ir.OpConstFloat {
		return int64(o.ConstF)
	}
	return o.ConstI
}

func constF(o *ir.Op) float64 {
	if o.Kind == ir.OpConstInt {
		return float64(o.ConstI)
	}
	return o.ConstF
}

func foldInt(op ir.BinOp, x, y int64, xo, yo *ir.Op) (int64, bool) {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case ir.BinAdd:
		return x + y, true
	case ir.BinSub:
		return x - y, true
	case ir.BinMul:
		return x * y, true
	case ir.BinDiv:
		if y == 0 {
			return 0, false
		}
		return x / y, true
	case ir.BinRem:
		if y == 0 {
			return 0, false
		}
		return x % y, true
	case ir.BinAnd:
		return x & y, true
	case ir.BinOr:
		return x | y, true
	case ir.BinXor:
		return x ^ y, true
	case ir.BinShl:
		return x << uint(y&63), true
	case ir.BinShr:
		return x >> uint(y&63), true
	case ir.BinEq:
		return b2i(x == y), true
	case ir.BinNeq:
		return b2i(x != y), true
	case ir.BinLt:
		return b2i(x < y), true
	case ir.BinLeq:
		return b2i(x <= y), true
	case ir.BinGt:
		return b2i(x > y), true
	case ir.BinGeq:
		return b2i(x >= y), true
	case ir.BinLAnd:
		return b2i(truthy(xo) && truthy(yo)), true
	case ir.BinLOr:
		return b2i(truthy(xo) || truthy(yo)), true
	}
	return 0, false
}

func foldFloat(op ir.BinOp, x, y float64) float64 {
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case ir.BinAdd:
		return x + y
	case ir.BinSub:
		return x - y
	case ir.BinMul:
		return x * y
	case ir.BinDiv:
		return x / y
	case ir.BinEq:
		return b2f(x == y)
	case ir.BinNeq:
		return b2f(x != y)
	case ir.BinLt:
		return b2f(x < y)
	case ir.BinLeq:
		return b2f(x <= y)
	case ir.BinGt:
		return b2f(x > y)
	case ir.BinGeq:
		return b2f(x >= y)
	}
	return 0
}
