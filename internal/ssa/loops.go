package ssa

import (
	"fmt"
	"sort"

	"sptc/internal/ir"
)

// Loop describes one natural loop.
type Loop struct {
	ID       int
	Func     *ir.Func
	Header   *ir.Block
	Latches  []*ir.Block        // sources of back edges into Header
	Blocks   []*ir.Block        // all blocks in the loop, header first
	blockSet map[*ir.Block]bool //
	Exits    []*ir.Block        // blocks outside the loop targeted from inside
	Parent   *Loop              // enclosing loop, or nil
	Children []*Loop            // directly nested loops
	Depth    int                // 1 for outermost
	Kind     LoopKind           // structural classification
}

// LoopKind classifies loop shapes, mirroring the paper's DO-loop vs
// while-loop distinction (ORC's LNO unrolled only DO loops).
type LoopKind int

// Loop kinds.
const (
	// LoopWhile is a general loop whose trip count is not a simple
	// affine function of an induction variable.
	LoopWhile LoopKind = iota
	// LoopDo is a counted (DO) loop: header test i <op> bound with a
	// single induction increment in the loop.
	LoopDo
)

func (k LoopKind) String() string {
	if k == LoopDo {
		return "do"
	}
	return "while"
}

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b *ir.Block) bool { return l.blockSet[b] }

// BodySize returns the loop body size in elementary operations.
func (l *Loop) BodySize() int { return ir.BodySize(l.Blocks) }

// EffectiveBodySize returns the loop body size with every non-builtin
// call expanded to its callee's static size (transitively, with cycles
// cut). This is the size of the speculative thread the hardware must
// buffer, which is what the paper's body-size criteria bound: a loop
// whose body is one call to a large function is not a small loop.
func (l *Loop) EffectiveBodySize() int {
	return ir.NewSizeCache().BlocksSize(l.Blocks)
}

// String identifies the loop for diagnostics.
func (l *Loop) String() string {
	return fmt.Sprintf("loop%d(%s,header=b%d,depth=%d)", l.ID, l.Kind, l.Header.ID, l.Depth)
}

// LoopNest is all loops of a function.
type LoopNest struct {
	Func  *ir.Func
	Loops []*Loop // all loops, outer before inner
	Top   []*Loop // outermost loops
	// ByHeader maps header blocks to their loop.
	ByHeader map[*ir.Block]*Loop
}

// FindLoops detects natural loops via dominator-based back-edge analysis
// and builds the loop-nest tree.
func FindLoops(f *ir.Func, dom *DomTree) *LoopNest {
	nest := &LoopNest{Func: f, ByHeader: make(map[*ir.Block]*Loop)}

	// Back edges: b -> h where h dominates b.
	type backEdge struct{ from, to *ir.Block }
	var backs []backEdge
	for _, b := range dom.RPO() {
		for _, s := range b.Succs {
			if dom.Dominates(s, b) {
				backs = append(backs, backEdge{b, s})
			}
		}
	}

	// Group back edges by header; collect the natural loop of each.
	byHeader := make(map[*ir.Block][]*ir.Block)
	for _, e := range backs {
		byHeader[e.to] = append(byHeader[e.to], e.from)
	}

	var headers []*ir.Block
	for h := range byHeader {
		headers = append(headers, h)
	}
	sort.Slice(headers, func(i, j int) bool { return headers[i].ID < headers[j].ID })

	id := 0
	for _, h := range headers {
		l := &Loop{ID: id, Func: f, Header: h, Latches: byHeader[h], blockSet: map[*ir.Block]bool{h: true}}
		id++
		// Natural loop: h plus all blocks that reach a latch without
		// passing through h.
		var stack []*ir.Block
		for _, latch := range l.Latches {
			if !l.blockSet[latch] {
				l.blockSet[latch] = true
				stack = append(stack, latch)
			}
		}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range b.Preds {
				if !l.blockSet[p] {
					l.blockSet[p] = true
					stack = append(stack, p)
				}
			}
		}
		l.Blocks = append(l.Blocks, h)
		for _, b := range dom.RPO() {
			if b != h && l.blockSet[b] {
				l.Blocks = append(l.Blocks, b)
			}
		}
		exitSet := make(map[*ir.Block]bool)
		for _, b := range l.Blocks {
			for _, s := range b.Succs {
				if !l.blockSet[s] && !exitSet[s] {
					exitSet[s] = true
					l.Exits = append(l.Exits, s)
				}
			}
		}
		nest.Loops = append(nest.Loops, l)
		nest.ByHeader[h] = l
	}

	// Nest: parent is the smallest strictly-containing loop.
	for _, l := range nest.Loops {
		var best *Loop
		for _, m := range nest.Loops {
			if m == l || !m.Contains(l.Header) {
				continue
			}
			if m.Contains(l.Header) && len(m.Blocks) > len(l.Blocks) {
				if best == nil || len(m.Blocks) < len(best.Blocks) {
					best = m
				}
			}
		}
		l.Parent = best
		if best != nil {
			best.Children = append(best.Children, l)
		} else {
			nest.Top = append(nest.Top, l)
		}
	}
	var setDepth func(l *Loop, d int)
	setDepth = func(l *Loop, d int) {
		l.Depth = d
		for _, c := range l.Children {
			setDepth(c, d+1)
		}
	}
	for _, l := range nest.Top {
		setDepth(l, 1)
	}

	// Order outer loops before inner.
	sort.SliceStable(nest.Loops, func(i, j int) bool {
		if nest.Loops[i].Depth != nest.Loops[j].Depth {
			return nest.Loops[i].Depth < nest.Loops[j].Depth
		}
		return nest.Loops[i].Header.ID < nest.Loops[j].Header.ID
	})
	for i, l := range nest.Loops {
		l.ID = i
	}

	for _, l := range nest.Loops {
		classify(l)
	}
	return nest
}

// InductionInfo describes a counted loop's induction variable, when the
// loop is a DO loop: the header tests `iv <cmp> bound` and exactly one
// statement in the loop computes iv += step.
type InductionInfo struct {
	IV      *ir.Var // version-0 base variable
	Step    int64
	Cmp     ir.BinOp
	BoundOp *ir.Op   // the bound expression (loop-invariant by construction test)
	IVLeft  bool     // the induction variable is the left operand of the test
	Update  *ir.Stmt // the unique iv update statement
}

// classify determines whether l is a DO (counted) loop. The test runs on
// pre-SSA IR (version-0 variables): the header terminator must compare a
// scalar local against a loop-invariant bound, and that scalar must be
// updated exactly once in the loop by adding/subtracting a constant.
func classify(l *Loop) {
	l.Kind = LoopWhile
	if Induction(l) != nil {
		l.Kind = LoopDo
	}
}

// Induction returns induction info if l is a counted loop, else nil.
func Induction(l *Loop) *InductionInfo {
	term := l.Header.Terminator()
	if term == nil || term.Kind != ir.StmtIf {
		return nil
	}
	cond := term.RHS
	if cond.Kind != ir.OpBin {
		return nil
	}
	switch cond.Bin {
	case ir.BinLt, ir.BinLeq, ir.BinGt, ir.BinGeq, ir.BinNeq:
	default:
		return nil
	}
	// One side must be a scalar use, the other loop-invariant.
	var ivOp, bound *ir.Op
	ivLeft := false
	if cond.Args[0].Kind == ir.OpUseVar && loopInvariantOp(l, cond.Args[1]) {
		ivOp, bound = cond.Args[0], cond.Args[1]
		ivLeft = true
	} else if cond.Args[1].Kind == ir.OpUseVar && loopInvariantOp(l, cond.Args[0]) {
		ivOp, bound = cond.Args[1], cond.Args[0]
	} else {
		return nil
	}
	iv := ivOp.Var.Base

	// Find updates of iv inside the loop.
	var update *ir.Stmt
	updates := 0
	for _, b := range l.Blocks {
		for _, s := range b.Stmts {
			if s.Kind == ir.StmtAssign && s.Dst.Base == iv {
				updates++
				update = s
			}
		}
	}
	if updates != 1 || update == nil {
		return nil
	}
	// Update must be iv = iv +/- const.
	rhs := update.RHS
	if rhs.Kind != ir.OpBin || (rhs.Bin != ir.BinAdd && rhs.Bin != ir.BinSub) {
		return nil
	}
	var stepOp *ir.Op
	if rhs.Args[0].Kind == ir.OpUseVar && rhs.Args[0].Var.Base == iv && rhs.Args[1].Kind == ir.OpConstInt {
		stepOp = rhs.Args[1]
	} else if rhs.Bin == ir.BinAdd && rhs.Args[1].Kind == ir.OpUseVar && rhs.Args[1].Var.Base == iv && rhs.Args[0].Kind == ir.OpConstInt {
		stepOp = rhs.Args[0]
	} else {
		return nil
	}
	step := stepOp.ConstI
	if rhs.Bin == ir.BinSub {
		step = -step
	}
	if step == 0 {
		return nil
	}
	return &InductionInfo{IV: iv, Step: step, Cmp: cond.Bin, BoundOp: bound, IVLeft: ivLeft, Update: update}
}

// loopInvariantOp reports whether o reads nothing defined inside l: only
// constants and scalar locals not assigned in the loop. Loads and calls
// are treated as variant.
func loopInvariantOp(l *Loop, o *ir.Op) bool {
	invariant := true
	o.Walk(func(x *ir.Op) {
		switch x.Kind {
		case ir.OpConstInt, ir.OpConstFloat, ir.OpCast, ir.OpBin, ir.OpUn:
		case ir.OpUseVar:
			if varAssignedIn(l, x.Var.Base) {
				invariant = false
			}
		default:
			invariant = false
		}
	})
	return invariant
}

func varAssignedIn(l *Loop, base *ir.Var) bool {
	for _, b := range l.Blocks {
		for _, s := range b.Stmts {
			if d := s.Defs(); d != nil && d.Base == base {
				return true
			}
		}
	}
	return false
}

// Preheader returns the unique out-of-loop predecessor of the header,
// creating one if necessary (splitting the entry edges).
func Preheader(l *Loop) *ir.Block {
	var outside []*ir.Block
	for _, p := range l.Header.Preds {
		if !l.Contains(p) {
			outside = append(outside, p)
		}
	}
	if len(outside) == 1 && len(outside[0].Succs) == 1 {
		return outside[0]
	}
	f := l.Func
	ph := f.NewBlock()
	g := f.NewStmt(ir.StmtGoto)
	ph.Stmts = append(ph.Stmts, g)
	for _, p := range outside {
		ir.RedirectEdge(p, l.Header, ph)
	}
	ir.AddEdge(ph, l.Header)
	return ph
}
