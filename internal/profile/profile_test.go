package profile_test

import (
	"math"
	"testing"

	"sptc/internal/interp"
	"sptc/internal/ir"
	"sptc/internal/parser"
	"sptc/internal/profile"
	"sptc/internal/sem"
	"sptc/internal/ssa"
)

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func profileRun(t *testing.T, src string) (*ir.Program, map[*ir.Func]*ssa.LoopNest, *profile.Profiler) {
	t.Helper()
	p, err := parser.Parse("t.spl", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(p)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	prog, err := ir.Build(info)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	nests := make(map[*ir.Func]*ssa.LoopNest)
	for _, f := range prog.Funcs {
		dom := ssa.BuildDomTree(f)
		ssa.Build(f, dom)
		nests[f] = ssa.FindLoops(f, ssa.BuildDomTree(f))
	}
	prof := profile.NewProfiler(prog, nests)
	m := interp.New(prog, discard{})
	m.Hooks = prof.Hooks()
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return prog, nests, prof
}

func TestEdgeProfileCountsAndProbabilities(t *testing.T) {
	prog, nests, prof := profileRun(t, `
var s int;
func main() {
	var i int;
	for (i = 0; i < 100; i++) {
		if (i % 4 == 0) { s += i; }
	}
	print(s);
}
`)
	prof.Edge.Apply(prog)
	f := prog.Main
	nest := nests[f]
	if len(nest.Loops) != 1 {
		t.Fatalf("%d loops", len(nest.Loops))
	}
	l := nest.Loops[0]
	st := prof.Edge.Stats(l)
	if st.Entries != 1 || st.Iterations != 101 {
		t.Errorf("entries=%d iterations=%d", st.Entries, st.Iterations)
	}
	if st.AvgTrip < 100 || st.AvgTrip > 102 {
		t.Errorf("avg trip %.1f", st.AvgTrip)
	}

	// The if-branch inside the loop is taken 25% of the time.
	var branch *ir.Block
	for _, b := range l.Blocks {
		if b == l.Header {
			continue
		}
		if term := b.Terminator(); term != nil && term.Kind == ir.StmtIf {
			branch = b
		}
	}
	if branch == nil {
		t.Fatal("no branch in loop")
	}
	if p := branch.SuccProb[0]; math.Abs(p-0.25) > 0.02 {
		t.Errorf("then-probability %.3f, want ~0.25", p)
	}
}

func TestDependenceProfileDistances(t *testing.T) {
	prog, nests, prof := profileRun(t, `
var a int[64];
func main() {
	var i int;
	a[0] = 1;
	for (i = 1; i < 64; i++) {
		a[i] = a[i-1] + 1;
	}
	print(a[63]);
}
`)
	_ = prog
	f := prog.Main
	l := nests[f].Loops[0]

	// Find the store and the load statement inside the loop.
	var store *ir.Stmt
	for _, b := range l.Blocks {
		for _, s := range b.Stmts {
			if s.Kind == ir.StmtStoreA {
				store = s
			}
		}
	}
	if store == nil {
		t.Fatal("no store")
	}
	// The a[i-1] load reads the previous iteration's store: cross
	// distance one with probability ~1.
	p := prof.Dep.CrossProb(store, store, l)
	if p < 0.9 {
		t.Errorf("distance-1 cross probability %.3f, want ~1", p)
	}
	if ip := prof.Dep.IntraProb(store, store, l); ip > 0.1 {
		t.Errorf("intra probability %.3f, want ~0", ip)
	}
}

func TestDependenceProfileRareCollisions(t *testing.T) {
	prog, nests, prof := profileRun(t, `
var tab int[512];
var idx int[512];
func main() {
	var i int;
	for (i = 0; i < 512; i++) {
		idx[i] = (i * 2654435761) & 511;
	}
	for (i = 0; i < 512; i++) {
		tab[idx[i]] = tab[idx[i]] + 1;
	}
	print(tab[0]);
}
`)
	f := prog.Main
	var second *ssa.Loop
	for _, l := range nests[f].Loops {
		if l.Header.ID > nests[f].Loops[0].Header.ID {
			second = l
		}
	}
	if second == nil {
		second = nests[f].Loops[len(nests[f].Loops)-1]
	}
	var store *ir.Stmt
	for _, b := range second.Blocks {
		for _, s := range b.Stmts {
			if s.Kind == ir.StmtStoreA && s.G.Name == "tab" {
				store = s
			}
		}
	}
	if store == nil {
		t.Skip("store not in this loop ordering")
	}
	if p := prof.Dep.CrossProb(store, store, second); p > 0.2 {
		t.Errorf("hashed updates should rarely collide at distance 1: %.3f", p)
	}
}

func TestValueProfileStride(t *testing.T) {
	prog, nests, prof := profileRun(t, `
func main() {
	var x int = 0;
	var s int = 0;
	while (x < 1000) {
		s = s + (x & 7);
		x = x + 4;
	}
	print(s);
}
`)
	f := prog.Main
	l := nests[f].Loops[0]
	var upd *ir.Stmt
	for _, b := range l.Blocks {
		for _, s := range b.Stmts {
			if s.Kind == ir.StmtAssign && s.Dst != nil && s.Dst.Base.Name == "x" {
				upd = s
			}
		}
	}
	if upd == nil {
		t.Fatal("no x update")
	}
	pat := prof.Value.Pattern(upd)
	if pat == nil {
		t.Fatal("no value pattern recorded")
	}
	if pat.BestStride != 4 {
		t.Errorf("stride %d, want 4", pat.BestStride)
	}
	if pat.Confidence() < 0.95 {
		t.Errorf("confidence %.3f", pat.Confidence())
	}
}

func TestValueProfileUnpredictable(t *testing.T) {
	prog, nests, prof := profileRun(t, `
func main() {
	var x int = 12345;
	var i int;
	var s int;
	for (i = 0; i < 500; i++) {
		x = (x * 1103515245 + 12345) & 1073741823;
		s = s ^ x;
	}
	print(s);
}
`)
	f := prog.Main
	l := nests[f].Loops[0]
	var upd *ir.Stmt
	for _, b := range l.Blocks {
		for _, s := range b.Stmts {
			if s.Kind == ir.StmtAssign && s.Dst != nil && s.Dst.Base.Name == "x" {
				upd = s
			}
		}
	}
	pat := prof.Value.Pattern(upd)
	if pat != nil && pat.Confidence() > 0.5 {
		t.Errorf("LCG should not look stride-predictable: %.3f", pat.Confidence())
	}
}

func TestStaticEstimateNormalizes(t *testing.T) {
	p, _ := parser.Parse("t.spl", `
func main() {
	var i int;
	var s int;
	for (i = 0; i < 10; i++) {
		if (i & 1) { s++; }
	}
	print(s);
}
`)
	info, _ := sem.Check(p)
	prog, _ := ir.Build(info)
	f := prog.Main
	dom := ssa.BuildDomTree(f)
	nest := ssa.FindLoops(f, dom)
	profile.StaticEstimate(f, nest)
	for _, b := range f.Blocks {
		if len(b.Succs) == 0 {
			continue
		}
		sum := 0.0
		for _, pr := range b.SuccProb {
			if pr < 0 || pr > 1 {
				t.Errorf("b%d: probability %.3f out of range", b.ID, pr)
			}
			sum += pr
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("b%d: probabilities sum to %.3f", b.ID, sum)
		}
		if b.Freq <= 0 {
			t.Errorf("b%d: nonpositive frequency", b.ID)
		}
	}
}
