// Package profile implements the three profilers the SPT framework uses
// (§7 of the paper): control-flow edge profiling (reaching probabilities),
// data-dependence profiling (intra- vs cross-iteration true dependences
// with probabilities), and value profiling for software value prediction.
//
// All three run off interpreter hooks in a single profiling execution,
// mirroring the paper's offline profiling runs on trimmed inputs.
package profile

import (
	"sptc/internal/interp"
	"sptc/internal/ir"
	"sptc/internal/ssa"
)

// EdgeProfile records block and edge execution counts.
type EdgeProfile struct {
	BlockFreq map[*ir.Block]int64
	// EdgeCount[b][i] counts traversals of b.Succs[i].
	EdgeCount map[*ir.Block][]int64
}

// LoopStats summarizes a loop's dynamic behaviour.
type LoopStats struct {
	Entries    int64 // times the loop was entered from outside
	Iterations int64 // total body iterations (header executions from inside+entry)
	AvgTrip    float64
}

// DepKey identifies a dependence pair relative to one loop.
type DepKey struct {
	W    *ir.Stmt // writing statement
	R    *ir.Stmt // reading statement
	Loop *ssa.Loop
}

// DepCount accumulates observations for one dependence pair.
type DepCount struct {
	ROp      int   // op ID of the reading operation within R
	Intra    int64 // read in the same iteration as the write
	Cross1   int64 // read in the iteration immediately after the write
	CrossAny int64 // read in any strictly later iteration
}

// DepProfile is the result of data-dependence profiling.
type DepProfile struct {
	Pairs map[DepKey]*DepCount
	// WriteExec counts executions of a store statement while a given loop
	// instance was active (the paper's N in "for every N writes at W").
	WriteExec map[stmtLoop]int64
	// StmtExec counts total executions per statement.
	StmtExec map[*ir.Stmt]int64
}

type stmtLoop struct {
	S    *ir.Stmt
	Loop *ssa.Loop
}

// CrossProb returns the probability that a write at w is read at r in the
// immediately following iteration of loop (the violation-relevant
// probability for next-iteration speculation).
func (d *DepProfile) CrossProb(w, r *ir.Stmt, loop *ssa.Loop) float64 {
	c, ok := d.Pairs[DepKey{W: w, R: r, Loop: loop}]
	if !ok {
		return 0
	}
	n := d.WriteExec[stmtLoop{w, loop}]
	if n == 0 {
		return 0
	}
	p := float64(c.Cross1) / float64(n)
	if p > 1 {
		p = 1
	}
	return p
}

// IntraProb returns the probability that a write at w is read at r within
// the same iteration of loop.
func (d *DepProfile) IntraProb(w, r *ir.Stmt, loop *ssa.Loop) float64 {
	c, ok := d.Pairs[DepKey{W: w, R: r, Loop: loop}]
	if !ok {
		return 0
	}
	n := d.WriteExec[stmtLoop{w, loop}]
	if n == 0 {
		return 0
	}
	p := float64(c.Intra) / float64(n)
	if p > 1 {
		p = 1
	}
	return p
}

// LoopPairs returns all observed dependence pairs for the loop.
func (d *DepProfile) LoopPairs(loop *ssa.Loop) []DepKey {
	var out []DepKey
	for k := range d.Pairs {
		if k.Loop == loop {
			out = append(out, k)
		}
	}
	return out
}

// ValuePattern summarizes the value sequence produced by one statement.
type ValuePattern struct {
	Total      int64 // observations with a previous value available
	BestStride int64 // most frequent delta between consecutive values
	BestCount  int64 // occurrences of BestStride
	LastSame   int64 // occurrences of delta 0 (last-value predictable)
}

// Confidence is the fraction of deltas equal to BestStride.
func (v *ValuePattern) Confidence() float64 {
	if v.Total == 0 {
		return 0
	}
	return float64(v.BestCount) / float64(v.Total)
}

// ValueProfile records per-statement value patterns for integer defs.
type ValueProfile struct {
	patterns map[*ir.Stmt]*valueState
}

type valueState struct {
	prev    int64
	hasPrev bool
	strides map[int64]int64
	total   int64
}

// Pattern returns the observed pattern for s, or nil.
func (v *ValueProfile) Pattern(s *ir.Stmt) *ValuePattern {
	st, ok := v.patterns[s]
	if !ok || st.total == 0 {
		return nil
	}
	p := &ValuePattern{Total: st.total, LastSame: st.strides[0]}
	for d, c := range st.strides {
		if c > p.BestCount || (c == p.BestCount && d == 0) {
			p.BestCount = c
			p.BestStride = d
		}
	}
	return p
}

// Profiler collects all three profiles in one run.
type Profiler struct {
	Edge  *EdgeProfile
	Dep   *DepProfile
	Value *ValueProfile

	nests map[*ir.Func]*ssa.LoopNest

	// active is the global stack of live loop instances across the call
	// stack; writes snapshot it so reads can classify intra/cross.
	active       []loopInst
	nextInstance int64

	shadow []writeRec // indexed by address
}

type loopInst struct {
	loop     *ssa.Loop
	frameID  int64
	instance int64
	iter     int64
}

const maxSnapDepth = 6

type writeRec struct {
	stmt  *ir.Stmt
	valid bool
	depth int
	snap  [maxSnapDepth]instIter
}

type instIter struct {
	loop     *ssa.Loop
	instance int64
	iter     int64
}

// NewProfiler creates a profiler for prog. nests maps each function to
// its loop nest (computed on the same IR that will execute).
func NewProfiler(prog *ir.Program, nests map[*ir.Func]*ssa.LoopNest) *Profiler {
	return &Profiler{
		Edge: &EdgeProfile{
			BlockFreq: make(map[*ir.Block]int64),
			EdgeCount: make(map[*ir.Block][]int64),
		},
		Dep: &DepProfile{
			Pairs:     make(map[DepKey]*DepCount),
			WriteExec: make(map[stmtLoop]int64),
			StmtExec:  make(map[*ir.Stmt]int64),
		},
		Value:  &ValueProfile{patterns: make(map[*ir.Stmt]*valueState)},
		nests:  nests,
		shadow: make([]writeRec, prog.Layout()),
	}
}

// Hooks returns interpreter hooks that feed this profiler.
func (p *Profiler) Hooks() interp.Hooks {
	return interp.Hooks{
		OnEnter: p.onEnter,
		OnExit:  p.onExit,
		OnEdge:  p.onEdge,
		OnLoad:  p.onLoad,
		OnStore: p.onStore,
		OnDef:   p.onDef,
	}
}

func (p *Profiler) onEnter(fr *interp.Frame) {
	p.Edge.BlockFreq[fr.Func.Entry]++
	// The entry block may itself be a loop header after transformations;
	// loops are only entered via edges, so nothing else to do.
}

func (p *Profiler) onExit(fr *interp.Frame) {
	for len(p.active) > 0 && p.active[len(p.active)-1].frameID == fr.ID {
		p.active = p.active[:len(p.active)-1]
	}
}

func (p *Profiler) onEdge(fr *interp.Frame, from, to *ir.Block) {
	p.Edge.BlockFreq[to]++
	counts := p.Edge.EdgeCount[from]
	if counts == nil {
		counts = make([]int64, len(from.Succs))
		p.Edge.EdgeCount[from] = counts
	}
	for i, s := range from.Succs {
		if s == to {
			counts[i]++
			break
		}
	}

	// Maintain the active loop stack for this frame.
	for len(p.active) > 0 {
		top := p.active[len(p.active)-1]
		if top.frameID != fr.ID || top.loop.Contains(to) {
			break
		}
		p.active = p.active[:len(p.active)-1]
	}
	nest := p.nests[fr.Func]
	if nest == nil {
		return
	}
	if l := nest.ByHeader[to]; l != nil {
		if n := len(p.active); n > 0 && p.active[n-1].loop == l && p.active[n-1].frameID == fr.ID {
			p.active[n-1].iter++ // back edge
		} else {
			p.nextInstance++
			p.active = append(p.active, loopInst{loop: l, frameID: fr.ID, instance: p.nextInstance})
		}
	}
}

func (p *Profiler) onStore(fr *interp.Frame, s *ir.Stmt, addr int) {
	p.Dep.StmtExec[s]++
	rec := &p.shadow[addr]
	rec.stmt = s
	rec.valid = true
	rec.depth = 0
	for i := len(p.active) - 1; i >= 0 && rec.depth < maxSnapDepth; i-- {
		a := p.active[i]
		rec.snap[rec.depth] = instIter{loop: a.loop, instance: a.instance, iter: a.iter}
		rec.depth++
	}
	for i := range p.active {
		p.Dep.WriteExec[stmtLoop{s, p.active[i].loop}]++
	}
}

func (p *Profiler) onLoad(fr *interp.Frame, s *ir.Stmt, op *ir.Op, addr int) {
	rec := &p.shadow[addr]
	if !rec.valid {
		return
	}
	// For each loop instance active now that was also active at the write,
	// classify the dependence at that loop level.
	for i := range p.active {
		a := p.active[i]
		for j := 0; j < rec.depth; j++ {
			w := rec.snap[j]
			if w.instance != a.instance {
				continue
			}
			key := DepKey{W: rec.stmt, R: s, Loop: a.loop}
			c := p.Dep.Pairs[key]
			if c == nil {
				c = &DepCount{ROp: op.ID}
				p.Dep.Pairs[key] = c
			}
			switch {
			case a.iter == w.iter:
				c.Intra++
			case a.iter == w.iter+1:
				c.Cross1++
				c.CrossAny++
			case a.iter > w.iter:
				c.CrossAny++
			}
		}
	}
}

func (p *Profiler) onDef(fr *interp.Frame, s *ir.Stmt, v interp.Value) {
	if s.Dst == nil || s.Dst.Kind != ir.ValInt || s.Kind == ir.StmtPhi {
		return
	}
	st := p.Value.patterns[s]
	if st == nil {
		st = &valueState{strides: make(map[int64]int64)}
		p.Value.patterns[s] = st
	}
	if st.hasPrev {
		st.strides[v.I-st.prev]++
		st.total++
	}
	st.prev = v.I
	st.hasPrev = true
}

// Apply writes the edge profile into Block.Freq and Block.SuccProb for
// every block observed. Unobserved two-way branches get a 50/50 split.
func (e *EdgeProfile) Apply(prog *ir.Program) {
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			b.Freq = float64(e.BlockFreq[b])
			if len(b.Succs) == 0 {
				b.SuccProb = nil
				continue
			}
			b.SuccProb = make([]float64, len(b.Succs))
			counts := e.EdgeCount[b]
			var total int64
			for _, c := range counts {
				total += c
			}
			if total == 0 {
				for i := range b.SuccProb {
					b.SuccProb[i] = 1 / float64(len(b.Succs))
				}
				continue
			}
			for i := range b.SuccProb {
				b.SuccProb[i] = float64(counts[i]) / float64(total)
			}
		}
	}
}

// Stats computes dynamic statistics for one loop from the edge profile.
func (e *EdgeProfile) Stats(l *ssa.Loop) LoopStats {
	var entries, backs int64
	for _, pred := range l.Header.Preds {
		counts := e.EdgeCount[pred]
		if counts == nil {
			continue
		}
		for i, s := range pred.Succs {
			if s != l.Header {
				continue
			}
			if l.Contains(pred) {
				backs += counts[i]
			} else {
				entries += counts[i]
			}
		}
	}
	st := LoopStats{Entries: entries, Iterations: backs + entries}
	// For a canonical while/for loop the header executes once more than
	// the body per entry; iterations of the *body* are backs + entries
	// minus early exits. Using backs+entries approximates body runs for
	// loops that execute at least one iteration per entry.
	if entries > 0 {
		st.AvgTrip = float64(st.Iterations) / float64(entries)
	}
	return st
}

// StaticEstimate fills Freq/SuccProb with static heuristics when no
// profile is available: branch edges split 50/50 except loop back edges,
// which get probability 0.9 (the classic static loop heuristic).
func StaticEstimate(f *ir.Func, nest *ssa.LoopNest) {
	inLoopDepth := func(b *ir.Block) int {
		d := 0
		for _, l := range nest.Loops {
			if l.Contains(b) {
				d++
			}
		}
		return d
	}
	for _, b := range f.Blocks {
		b.Freq = 1
		for d := inLoopDepth(b); d > 0; d-- {
			b.Freq *= 10
		}
		if len(b.Succs) == 0 {
			continue
		}
		b.SuccProb = make([]float64, len(b.Succs))
		if len(b.Succs) == 1 {
			b.SuccProb[0] = 1
			continue
		}
		// Favor staying in the loop.
		for i, s := range b.Succs {
			var stays bool
			for _, l := range nest.Loops {
				if l.Contains(b) && l.Contains(s) {
					stays = true
					break
				}
			}
			if stays {
				b.SuccProb[i] = 0.9
			} else {
				b.SuccProb[i] = 0.1
			}
		}
		// Normalize.
		sum := 0.0
		for _, p := range b.SuccProb {
			sum += p
		}
		if sum == 0 {
			for i := range b.SuccProb {
				b.SuccProb[i] = 1 / float64(len(b.Succs))
			}
		} else {
			for i := range b.SuccProb {
				b.SuccProb[i] /= sum
			}
		}
	}
}
