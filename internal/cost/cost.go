// Package cost implements the misspeculation cost model of §4.2: a cost
// graph built from the annotated control-flow and data-dependence graphs,
// the topological re-execution probability propagation of §4.2.3
// (x = 1 - Π(1 - r·v(p))), and the misspeculation cost Σ v(c)·Cost(c) of
// §4.2.4. The model is evaluated per SPT loop partition: violation
// candidates placed in the pre-fork region contribute no misspeculation.
package cost

import (
	"fmt"
	"sort"
	"strings"

	"sptc/internal/depgraph"
	"sptc/internal/ir"
)

// Node is one node of the cost graph. Pseudo nodes stand for violation
// candidates (the paper's D', E', F'); operation nodes represent the
// computations that may need re-execution inside a speculative iteration.
type Node struct {
	ID     int
	Pseudo bool
	VC     *ir.Stmt // violation candidate, for pseudo nodes
	Stmt   *ir.Stmt // owning statement, for operation nodes
	OpID   int      // operation ID within Stmt (-1 for the statement's own action)
	Cost   float64  // amount of computation (1 per elementary operation)

	In []EdgeTo // incoming edges
}

// EdgeTo is one incoming cost-graph edge with its conditional probability
// r: the probability that re-execution at the source causes this node to
// be re-executed (§4.2.2).
type EdgeTo struct {
	From *Node
	Prob float64
}

// Model is a cost graph ready for evaluation against partitions.
type Model struct {
	Graph *depgraph.Graph // nil for hand-built models
	Nodes []*Node         // topologically sorted: preds before succs
	ByVC  map[*ir.Stmt]*Node
}

// Evaluate computes the misspeculation cost of the partition whose
// pre-fork region consists of preFork statements. A violation candidate
// in the pre-fork region executes before the speculative thread is
// spawned, so its result is always visible (zero violation probability);
// every operation of the next iteration — including its own pre-fork
// region — still executes speculatively and can be re-executed.
func (m *Model) Evaluate(preFork map[*ir.Stmt]bool) float64 {
	return m.evaluate(preFork, nil)
}

// EvaluateOptimistic computes a lower bound on the cost of any partition
// that extends preFork by moving violation candidates drawn only from
// mayMove: those candidates are optimistically treated as if already
// moved, so only contributions that no descendant partition can
// eliminate remain.
func (m *Model) EvaluateOptimistic(preFork map[*ir.Stmt]bool, mayMove map[*ir.Stmt]bool) float64 {
	return m.evaluate(preFork, mayMove)
}

func (m *Model) evaluate(preFork, mayMove map[*ir.Stmt]bool) float64 {
	v := make([]float64, len(m.Nodes))
	total := 0.0
	for i, n := range m.Nodes {
		if n.Pseudo {
			if preFork[n.VC] || (mayMove != nil && mayMove[n.VC]) {
				v[i] = 0
			} else if m.Graph != nil {
				v[i] = m.Graph.ViolProb[n.VC]
			} else {
				v[i] = n.Cost // hand-built models store the violation prob here
			}
			continue
		}
		x := 0.0
		for _, e := range n.In {
			x = 1 - (1-x)*(1-e.Prob*v[e.From.ID])
		}
		v[i] = x
		total += x * n.Cost
	}
	return total
}

// ReexecProbs returns the per-node re-execution probabilities for the
// given partition, keyed by node. Used by diagnostics and tests.
func (m *Model) ReexecProbs(preFork map[*ir.Stmt]bool) map[*Node]float64 {
	v := make([]float64, len(m.Nodes))
	out := make(map[*Node]float64, len(m.Nodes))
	for i, n := range m.Nodes {
		if n.Pseudo {
			if preFork[n.VC] {
				v[i] = 0
			} else if m.Graph != nil {
				v[i] = m.Graph.ViolProb[n.VC]
			} else {
				v[i] = n.Cost
			}
			out[n] = v[i]
			continue
		}
		x := 0.0
		for _, e := range n.In {
			x = 1 - (1-x)*(1-e.Prob*v[e.From.ID])
		}
		v[i] = x
		out[n] = x
	}
	return out
}

// Build constructs the cost graph from a dependence graph (§4.2.2): the
// graph is initialized with the violation candidates and their
// cross-iteration edges; operation nodes reachable through intra-iteration
// dependences are then added recursively. Within a statement,
// re-execution propagates from a read up through its enclosing operations
// to the statement's action (probability 1); across statements it follows
// intra-iteration dependence edges with their annotated probabilities.
func Build(g *depgraph.Graph) *Model {
	m := &Model{Graph: g, ByVC: make(map[*ir.Stmt]*Node)}

	// Pseudo node per violation candidate.
	for _, vc := range g.VCs {
		n := &Node{ID: len(m.Nodes), Pseudo: true, VC: vc}
		m.Nodes = append(m.Nodes, n)
		m.ByVC[vc] = n
	}

	// Per-statement bookkeeping: op nodes created on demand.
	type stmtNodes struct {
		ops    map[int]*Node // op ID -> node
		action *Node
	}
	perStmt := make(map[*ir.Stmt]*stmtNodes)

	parentOf := func(s *ir.Stmt) map[int]*ir.Op {
		parents := make(map[int]*ir.Op)
		var walk func(o *ir.Op)
		walk = func(o *ir.Op) {
			for _, a := range o.Args {
				parents[a.ID] = o
				walk(a)
			}
		}
		for _, ix := range s.Index {
			walk(ix)
		}
		if s.RHS != nil {
			walk(s.RHS)
		}
		return parents
	}
	opByID := func(s *ir.Stmt) map[int]*ir.Op {
		ops := make(map[int]*ir.Op)
		s.Ops(func(o *ir.Op) { ops[o.ID] = o })
		return ops
	}

	getStmt := func(s *ir.Stmt) *stmtNodes {
		sn := perStmt[s]
		if sn == nil {
			sn = &stmtNodes{ops: make(map[int]*Node)}
			perStmt[s] = sn
		}
		return sn
	}

	// ensureAction creates the statement's action node (the store,
	// assignment, or branch itself).
	var ensureAction func(s *ir.Stmt) *Node
	ensureAction = func(s *ir.Stmt) *Node {
		sn := getStmt(s)
		if sn.action == nil {
			sn.action = &Node{ID: len(m.Nodes), Stmt: s, OpID: -1, Cost: 1}
			m.Nodes = append(m.Nodes, sn.action)
		}
		return sn.action
	}

	// ensureOpChain creates the node for op id in s and the prob-1 chain
	// up through its parents to the statement action node. Returns the
	// node for the op itself.
	ensureOpChain := func(s *ir.Stmt, opID int) *Node {
		sn := getStmt(s)
		if n, ok := sn.ops[opID]; ok {
			return n
		}
		parents := parentOf(s)
		ops := opByID(s)
		cur := opID
		var childNode *Node
		// Walk from the read op up to the root, creating nodes and
		// child->parent edges; costs are 1 per operation.
		for {
			n, ok := sn.ops[cur]
			if !ok {
				opCost := 1.0
				if o := ops[cur]; o != nil && o.Kind == ir.OpCall && !o.Builtin {
					// Re-executing a call re-executes its body; charge an
					// estimated callee size rather than 1.
					opCost = callCost(o)
				}
				n = &Node{ID: len(m.Nodes), Stmt: s, OpID: cur, Cost: opCost}
				m.Nodes = append(m.Nodes, n)
				sn.ops[cur] = n
			}
			if childNode != nil {
				n.In = append(n.In, EdgeTo{From: childNode, Prob: 1})
			}
			if ok {
				// Chain above already exists.
				return sn.ops[opID]
			}
			childNode = n
			p, hasParent := parents[cur]
			if !hasParent {
				act := ensureAction(s)
				act.In = append(act.In, EdgeTo{From: childNode, Prob: 1})
				return sn.ops[opID]
			}
			cur = p.ID
		}
	}

	// Worklist over statements whose results may be re-executed: start
	// from cross-iteration consumers, then follow intra edges.
	intraOut := make(map[*ir.Stmt][]*depgraph.Edge)
	for _, e := range g.True {
		if !e.Cross {
			intraOut[e.From] = append(intraOut[e.From], e)
		}
	}

	inWork := make(map[*ir.Stmt]bool)
	var work []*ir.Stmt

	attach := func(from *Node, e *depgraph.Edge) {
		var to *Node
		if e.ToOp >= 0 {
			to = ensureOpChain(e.To, e.ToOp)
		} else {
			to = ensureAction(e.To)
		}
		to.In = append(to.In, EdgeTo{From: from, Prob: e.Prob})
		if !inWork[e.To] {
			inWork[e.To] = true
			work = append(work, e.To)
		}
	}

	for _, e := range g.True {
		if e.Cross {
			attach(m.ByVC[e.From], e)
		}
	}
	for len(work) > 0 {
		s := work[0]
		work = work[1:]
		act := perStmt[s].action
		if act == nil {
			act = ensureAction(s)
		}
		for _, e := range intraOut[s] {
			attach(act, e)
		}
	}

	m.topoSort()
	return m
}

// callCost estimates the computation of calling f: the static op count of
// its body, once (loops inside are not expanded).
func callCost(o *ir.Op) float64 {
	if o.Func == nil {
		return 1
	}
	n := 0
	for _, b := range o.Func.Blocks {
		for _, s := range b.Stmts {
			n += s.CountOps()
		}
	}
	if n < 1 {
		n = 1
	}
	return float64(n)
}

// topoSort orders Nodes so every edge goes from an earlier node to a
// later one (Kahn's algorithm); evaluation then propagates in one pass.
func (m *Model) topoSort() {
	indeg := make(map[*Node]int, len(m.Nodes))
	out := make(map[*Node][]*Node, len(m.Nodes))
	for _, n := range m.Nodes {
		for _, e := range n.In {
			indeg[n]++
			out[e.From] = append(out[e.From], n)
		}
	}
	var order []*Node
	var ready []*Node
	for _, n := range m.Nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i].ID < ready[j].ID })
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		for _, s := range out[n] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	// Cycles cannot occur for well-formed graphs (intra edges are forward
	// and tree edges point upward); append any leftovers defensively.
	if len(order) < len(m.Nodes) {
		inOrder := make(map[*Node]bool, len(order))
		for _, n := range order {
			inOrder[n] = true
		}
		for _, n := range m.Nodes {
			if !inOrder[n] {
				order = append(order, n)
			}
		}
	}
	for i, n := range order {
		n.ID = i
	}
	m.Nodes = order
}

// NewHandModel builds a model directly from nodes for tests and examples
// (e.g. the worked example of §4.2.5). Pseudo nodes carry their violation
// probability in Cost. Nodes must be supplied with In edges referring to
// other supplied nodes.
func NewHandModel(nodes []*Node) *Model {
	m := &Model{Nodes: nodes, ByVC: make(map[*ir.Stmt]*Node)}
	for i, n := range nodes {
		n.ID = i
	}
	m.topoSort()
	return m
}

// String renders the model for debugging.
func (m *Model) String() string {
	var b strings.Builder
	for _, n := range m.Nodes {
		if n.Pseudo {
			fmt.Fprintf(&b, "n%d pseudo VC s%d\n", n.ID, n.VC.ID)
			continue
		}
		if n.Stmt != nil {
			fmt.Fprintf(&b, "n%d s%d/op%d cost=%.0f", n.ID, n.Stmt.ID, n.OpID, n.Cost)
		} else {
			fmt.Fprintf(&b, "n%d cost=%.2f", n.ID, n.Cost)
		}
		for _, e := range n.In {
			fmt.Fprintf(&b, " <-(%.2f) n%d", e.Prob, e.From.ID)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
