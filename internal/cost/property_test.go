package cost

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sptc/internal/ir"
)

// randomModel builds a random layered cost DAG: a set of pseudo nodes
// feeding operation nodes with random probabilities.
func randomModel(r *rand.Rand, nPseudo, nOps int) (*Model, []*ir.Stmt) {
	f := &ir.Func{Name: "rnd"}
	var nodes []*Node
	var vcs []*ir.Stmt
	for i := 0; i < nPseudo; i++ {
		s := f.NewStmt(ir.StmtAssign)
		vcs = append(vcs, s)
		nodes = append(nodes, &Node{Pseudo: true, VC: s, Cost: r.Float64()})
	}
	for i := 0; i < nOps; i++ {
		s := f.NewStmt(ir.StmtAssign)
		n := &Node{Stmt: s, Cost: 1 + r.Float64()*3}
		// Edges only from earlier nodes: keeps it a DAG.
		for _, p := range nodes {
			if r.Float64() < 0.4 {
				n.In = append(n.In, EdgeTo{From: p, Prob: r.Float64()})
			}
		}
		nodes = append(nodes, n)
	}
	return NewHandModel(nodes), vcs
}

// TestQuickProbabilitiesBounded: re-execution probabilities stay in [0,1]
// and the cost is bounded by the total node cost, for random DAGs and
// random partitions.
func TestQuickProbabilitiesBounded(t *testing.T) {
	f := func(seed int64, mask uint16) bool {
		r := rand.New(rand.NewSource(seed))
		m, vcs := randomModel(r, 4, 12)
		pre := map[*ir.Stmt]bool{}
		for i, vc := range vcs {
			if mask&(1<<i) != 0 {
				pre[vc] = true
			}
		}
		probs := m.ReexecProbs(pre)
		var maxCost float64
		for _, n := range m.Nodes {
			v := probs[n]
			if v < 0 || v > 1+1e-12 {
				return false
			}
			if !n.Pseudo {
				maxCost += n.Cost
			}
		}
		c := m.Evaluate(pre)
		return c >= -1e-12 && c <= maxCost+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickMonotonicity: on random DAGs, moving an additional violation
// candidate into the pre-fork region never increases the cost — the
// property the branch-and-bound pruning (§5) relies on.
func TestQuickMonotonicity(t *testing.T) {
	f := func(seed int64, mask uint16, extra uint8) bool {
		r := rand.New(rand.NewSource(seed))
		m, vcs := randomModel(r, 5, 10)
		pre := map[*ir.Stmt]bool{}
		for i, vc := range vcs {
			if mask&(1<<i) != 0 {
				pre[vc] = true
			}
		}
		base := m.Evaluate(pre)
		pick := vcs[int(extra)%len(vcs)]
		if pre[pick] {
			return true
		}
		pre[pick] = true
		return m.Evaluate(pre) <= base+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickOptimisticBound: the optimistic evaluation lower-bounds the
// actual cost of moving any subset of the may-move candidates.
func TestQuickOptimisticBound(t *testing.T) {
	f := func(seed int64, preMask, mayMask, subMask uint16) bool {
		r := rand.New(rand.NewSource(seed))
		m, vcs := randomModel(r, 6, 10)
		pre := map[*ir.Stmt]bool{}
		may := map[*ir.Stmt]bool{}
		for i, vc := range vcs {
			if preMask&(1<<i) != 0 {
				pre[vc] = true
			} else if mayMask&(1<<i) != 0 {
				may[vc] = true
			}
		}
		lb := m.EvaluateOptimistic(pre, may)
		// A random subset of may actually moves.
		actual := map[*ir.Stmt]bool{}
		for s := range pre {
			actual[s] = true
		}
		j := 0
		for _, vc := range vcs {
			if may[vc] {
				if subMask&(1<<j) != 0 {
					actual[vc] = true
				}
				j++
			}
		}
		return lb <= m.Evaluate(actual)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestTopoSortStable: evaluation is independent of input node order.
func TestTopoSortStable(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	m, vcs := randomModel(r, 4, 12)
	pre := map[*ir.Stmt]bool{vcs[0]: true}
	want := m.Evaluate(pre)

	// Shuffle the node slice and rebuild.
	nodes := append([]*Node(nil), m.Nodes...)
	for i := range nodes {
		j := r.Intn(i + 1)
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	m2 := NewHandModel(nodes)
	if got := m2.Evaluate(pre); got != want {
		t.Errorf("evaluation depends on node order: %v vs %v", got, want)
	}
}
