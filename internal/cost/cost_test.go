package cost

import (
	"math"
	"testing"

	"sptc/internal/ir"
)

// paperExample builds the §4.2.5 worked example: dependence graph of
// Figure 5, cost graph of Figure 6. Returns the model and the statements
// standing for the violation candidates D, E, F.
func paperExample() (*Model, *ir.Stmt, *ir.Stmt, *ir.Stmt) {
	f := &ir.Func{Name: "example"}
	stmt := func() *ir.Stmt { return f.NewStmt(ir.StmtAssign) }
	sA, sB, sC := stmt(), stmt(), stmt()
	sD, sE, sF := stmt(), stmt(), stmt()

	// Pseudo nodes carry the violation probability in Cost for
	// hand-built models; with no branches in the loop body it is 1.
	pD := &Node{Pseudo: true, VC: sD, Cost: 1}
	pE := &Node{Pseudo: true, VC: sE, Cost: 1}
	pF := &Node{Pseudo: true, VC: sF, Cost: 1}

	nA := &Node{Stmt: sA, Cost: 1}
	nB := &Node{Stmt: sB, Cost: 1}
	nC := &Node{Stmt: sC, Cost: 1}
	nD := &Node{Stmt: sD, Cost: 1}
	nE := &Node{Stmt: sE, Cost: 1}
	nF := &Node{Stmt: sF, Cost: 1}

	// Figure 6 edges: D' -> A (0.2), E' -> B (0.1), F' -> C (0.2),
	// B -> C (0.5), C -> E (1.0).
	nA.In = []EdgeTo{{From: pD, Prob: 0.2}}
	nB.In = []EdgeTo{{From: pE, Prob: 0.1}}
	nC.In = []EdgeTo{{From: nB, Prob: 0.5}, {From: pF, Prob: 0.2}}
	nE.In = []EdgeTo{{From: nC, Prob: 1.0}}

	m := NewHandModel([]*Node{pD, pE, pF, nA, nB, nC, nD, nE, nF})
	return m, sD, sE, sF
}

// TestPaperExampleCost reproduces the worked example of §4.2.5: with only
// D in the pre-fork region the misspeculation cost is 0.58.
func TestPaperExampleCost(t *testing.T) {
	m, sD, _, _ := paperExample()
	pre := map[*ir.Stmt]bool{sD: true}
	got := m.Evaluate(pre)
	if math.Abs(got-0.58) > 1e-9 {
		t.Fatalf("misspeculation cost = %v, want 0.58", got)
	}
}

// TestPaperExampleProbs checks the intermediate re-execution
// probabilities the paper lists: v(A)=0, v(B)=0.1, v(C)=0.24, v(E)=0.24.
func TestPaperExampleProbs(t *testing.T) {
	m, sD, _, _ := paperExample()
	pre := map[*ir.Stmt]bool{sD: true}
	probs := m.ReexecProbs(pre)

	want := map[string]float64{}
	byStmt := map[*ir.Stmt]string{}
	_ = want
	_ = byStmt

	// Locate nodes by construction order via their statements.
	var vA, vB, vC, vE float64
	for n, v := range probs {
		if n.Pseudo || n.Stmt == nil {
			continue
		}
		switch len(n.In) {
		case 0:
			// D or F; both must be 0.
			if v != 0 {
				t.Errorf("source node has v=%v, want 0", v)
			}
		}
		switch {
		case len(n.In) == 1 && n.In[0].Prob == 0.2:
			vA = v
		case len(n.In) == 1 && n.In[0].Prob == 0.1:
			vB = v
		case len(n.In) == 2:
			vC = v
		case len(n.In) == 1 && n.In[0].Prob == 1.0:
			vE = v
		}
	}
	check := func(name string, got, want float64) {
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("v(%s) = %v, want %v", name, got, want)
		}
	}
	check("A", vA, 0)
	check("B", vB, 0.1)
	check("C", vC, 0.24)
	check("E", vE, 0.24)
}

// TestMonotonicity verifies the property §5 exploits for pruning: moving
// more violation candidates into the pre-fork region never increases the
// misspeculation cost.
func TestMonotonicity(t *testing.T) {
	m, sD, sE, sF := paperExample()
	vcs := []*ir.Stmt{sD, sE, sF}
	costOf := func(mask int) float64 {
		pre := map[*ir.Stmt]bool{}
		for i, s := range vcs {
			if mask&(1<<i) != 0 {
				pre[s] = true
			}
		}
		return m.Evaluate(pre)
	}
	for mask := 0; mask < 8; mask++ {
		base := costOf(mask)
		for i := 0; i < 3; i++ {
			if mask&(1<<i) != 0 {
				continue
			}
			bigger := costOf(mask | 1<<i)
			if bigger > base+1e-12 {
				t.Errorf("cost(%03b + vc%d) = %v > cost(%03b) = %v", mask, i, bigger, mask, base)
			}
		}
	}
}

// TestEmptyAndFullPartitions: the empty pre-fork region gives the maximal
// cost; moving every violation candidate gives zero.
func TestEmptyAndFullPartitions(t *testing.T) {
	m, sD, sE, sF := paperExample()
	all := map[*ir.Stmt]bool{sD: true, sE: true, sF: true}
	if got := m.Evaluate(all); got != 0 {
		t.Fatalf("full partition cost = %v, want 0", got)
	}
	empty := m.Evaluate(map[*ir.Stmt]bool{})
	// v(A)=0.2, v(B)=0.1, v(C)=0.24, v(E)=0.24 -> 0.78
	if math.Abs(empty-0.78) > 1e-9 {
		t.Fatalf("empty partition cost = %v, want 0.78", empty)
	}
}

// TestOptimisticLowerBound: the optimistic evaluation must lower-bound
// every partition reachable by additionally moving subsets of the
// may-move statements.
func TestOptimisticLowerBound(t *testing.T) {
	m, sD, sE, sF := paperExample()
	pre := map[*ir.Stmt]bool{sD: true}
	mayMove := map[*ir.Stmt]bool{sE: true, sF: true}
	lb := m.EvaluateOptimistic(pre, mayMove)

	subsets := [][]*ir.Stmt{{}, {sE}, {sF}, {sE, sF}}
	for _, sub := range subsets {
		p := map[*ir.Stmt]bool{sD: true}
		for _, s := range sub {
			p[s] = true
		}
		if c := m.Evaluate(p); lb > c+1e-12 {
			t.Errorf("optimistic bound %v exceeds descendant cost %v (moved %d extra)", lb, c, len(sub))
		}
	}
	if base := m.Evaluate(pre); lb > base {
		t.Fatalf("optimistic bound %v exceeds base cost %v", lb, base)
	}
}

// TestIndependentPredecessorsFormula pins the combination rule: with two
// predecessors p1, p2 the probability is 1-(1-r1 v1)(1-r2 v2).
func TestIndependentPredecessorsFormula(t *testing.T) {
	f := &ir.Func{Name: "t"}
	s1, s2, s3 := f.NewStmt(ir.StmtAssign), f.NewStmt(ir.StmtAssign), f.NewStmt(ir.StmtAssign)
	p1 := &Node{Pseudo: true, VC: s1, Cost: 0.8}
	p2 := &Node{Pseudo: true, VC: s2, Cost: 0.6}
	n := &Node{Stmt: s3, Cost: 2}
	n.In = []EdgeTo{{From: p1, Prob: 0.5}, {From: p2, Prob: 0.25}}
	m := NewHandModel([]*Node{p1, p2, n})

	got := m.Evaluate(map[*ir.Stmt]bool{})
	v := 1 - (1-0.5*0.8)*(1-0.25*0.6)
	want := v * 2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("cost = %v, want %v", got, want)
	}
}
