package cost

import (
	"math/bits"
	"sync"

	"sptc/internal/bitset"
	"sptc/internal/ir"
)

// Evaluator is the incremental form of the §4.2.3 probability
// propagation, built for the partition search's access pattern: a long
// sequence of evaluations whose inputs (which violation candidates are
// zeroed by the pre-fork region) differ by a handful of candidates each.
//
// Construction precomputes everything that is invariant across
// evaluations of one model:
//
//   - the topological order (the model's node order, fixed at Build);
//   - dense forward in-edge arrays per node (edges from later nodes
//     contribute a factor of exactly 1 in Evaluate and are dropped);
//   - the partition of operation nodes into *static* nodes — not
//     reachable from any pseudo node, so their probability never changes
//     — and *dynamic* nodes;
//   - per-dynamic-node invariant factors: the product of (1 − r·v(p))
//     over in-edges whose source is static.
//
// An evaluation then flips only the changed pseudo values and recomputes
// only the dynamic nodes downstream of a change, in topological order.
// Evaluations of the same zero-set are bit-identical regardless of the
// sequence of preceding evaluations.
type Evaluator struct {
	m   *Model
	nVC int

	ordinalOf  map[*ir.Stmt]int // VC statement -> ordinal
	pseudoNode []int32          // ordinal -> node index
	baseProb   []float64        // ordinal -> violation probability when live

	cost   []float64 // node index -> cost
	v      []float64 // node index -> current probability
	outs   [][]int32 // node index -> dynamic successor node indices
	dynPos []int32   // node index -> position in dynIdx, -1 otherwise

	dynIdx    []int32   // dynamic op nodes in topological order
	inFrom    [][]int32 // per dynamic position: dynamic in-edge sources
	inProb    [][]float64
	invariant []float64 // per dynamic position: static in-edge product

	cur        bitset.Set // current zeroed-VC set, by ordinal
	dirty      []bool     // node index -> pending recompute
	constTotal float64    // Σ v·cost over static op nodes
	dynTotal   float64    // Σ v·cost over dynamic op nodes

	evals      int // propagations that recomputed at least one node
	recomputes int // dirty nodes actually recomputed across all evals
}

// NewEvaluator builds an incremental evaluator for the model. The
// evaluator starts at the empty partition (no violation candidate
// zeroed), matching Evaluate(nil).
func (m *Model) NewEvaluator() *Evaluator {
	n := len(m.Nodes)
	e := &Evaluator{
		m:         m,
		ordinalOf: make(map[*ir.Stmt]int),
		cost:      make([]float64, n),
		v:         make([]float64, n),
		outs:      make([][]int32, n),
		dynPos:    make([]int32, n),
		dirty:     make([]bool, n),
	}

	// Pseudo ordinals in node order; live violation probabilities.
	for i, nd := range m.Nodes {
		e.cost[i] = nd.Cost
		if !nd.Pseudo {
			continue
		}
		ord := e.nVC
		e.nVC++
		e.ordinalOf[nd.VC] = ord
		e.pseudoNode = append(e.pseudoNode, int32(i))
		p := nd.Cost // hand-built models store the violation prob here
		if m.Graph != nil {
			p = m.Graph.ViolProb[nd.VC]
		}
		e.baseProb = append(e.baseProb, p)
	}
	e.cur = bitset.New(e.nVC)

	// Forward in-edges only: Evaluate initializes v to 0 and walks nodes
	// in order, so an edge from a node with ID >= the consumer's sees
	// v = 0 and contributes a factor of exactly 1. Dropping those edges
	// reproduces its semantics for defensive cycles too.
	fwdIn := make([][]EdgeTo, n)
	reach := make([]bool, n) // reachable from a pseudo node
	for i, nd := range m.Nodes {
		if nd.Pseudo {
			reach[i] = true
			continue
		}
		for _, ed := range nd.In {
			if ed.From.ID < i {
				fwdIn[i] = append(fwdIn[i], ed)
				if reach[ed.From.ID] {
					reach[i] = true
				}
			}
		}
	}

	// Dynamic nodes in topological order, with invariant factors and
	// dense dynamic in-edges.
	for i := range e.dynPos {
		e.dynPos[i] = -1
	}
	for i, nd := range m.Nodes {
		if nd.Pseudo || !reach[i] {
			continue
		}
		pos := int32(len(e.dynIdx))
		e.dynPos[i] = pos
		e.dynIdx = append(e.dynIdx, int32(i))
		var from []int32
		var probs []float64
		inv := 1.0
		for _, ed := range fwdIn[i] {
			src := int32(ed.From.ID)
			if e.dynPos[src] >= 0 || m.Nodes[src].Pseudo {
				from = append(from, src)
				probs = append(probs, ed.Prob)
			} else {
				// Static source: its value is fixed for the lifetime of
				// the evaluator; fold the factor in once.
				inv *= 1 - ed.Prob*e.v[src]
			}
		}
		e.inFrom = append(e.inFrom, from)
		e.inProb = append(e.inProb, probs)
		e.invariant = append(e.invariant, inv)
		// Initialize the dynamic value below, after pseudo values are
		// set; placeholder for now so static readers see 0.
		_ = pos
	}

	// Static op nodes: compute their fixed values in topological order
	// (their inputs are static too) and fold into the constant total.
	for i, nd := range m.Nodes {
		if nd.Pseudo || reach[i] {
			continue
		}
		x := 0.0
		for _, ed := range fwdIn[i] {
			x = 1 - (1-x)*(1-ed.Prob*e.v[ed.From.ID])
		}
		e.v[i] = x
		e.constTotal += x * nd.Cost
	}

	// Successor lists restricted to dynamic consumers.
	for i := range m.Nodes {
		if e.dynPos[i] < 0 {
			continue
		}
		for _, src := range e.inFrom[e.dynPos[i]] {
			e.outs[src] = append(e.outs[src], int32(i))
		}
	}

	// Initial state: empty zero-set, every pseudo live.
	for ord, ni := range e.pseudoNode {
		e.v[ni] = e.baseProb[ord]
	}
	for _, ni := range e.dynIdx {
		pos := e.dynPos[ni]
		prod := e.invariant[pos]
		for k, src := range e.inFrom[pos] {
			prod *= 1 - e.inProb[pos][k]*e.v[src]
		}
		e.v[ni] = 1 - prod
	}
	e.dynTotal = e.sumDynamic()
	return e
}

// NumVCs returns the number of violation candidates (pseudo nodes).
func (e *Evaluator) NumVCs() int { return e.nVC }

// Ordinal returns the evaluator's dense index for a violation candidate,
// or -1 if the statement has no pseudo node.
func (e *Evaluator) Ordinal(vc *ir.Stmt) int {
	if ord, ok := e.ordinalOf[vc]; ok {
		return ord
	}
	return -1
}

// Evals returns how many evaluations recomputed at least one node (a
// measure of propagation work; evaluations whose zero-set matched the
// current state cost nothing).
func (e *Evaluator) Evals() int { return e.evals }

// Recomputes returns the total number of dirty dynamic nodes the §4.2.3
// propagation recomputed across all evaluations — the incremental
// evaluator's unit of work, attached to each loop's trace span so the
// dirty-propagation win over from-scratch evaluation is observable.
func (e *Evaluator) Recomputes() int { return e.recomputes }

func (e *Evaluator) sumDynamic() float64 {
	total := 0.0
	for _, ni := range e.dynIdx {
		total += e.v[ni] * e.cost[ni]
	}
	return total
}

// EvalSet returns the misspeculation cost of the partition whose zeroed
// violation candidates are given as a bitset over evaluator ordinals
// (pre-fork candidates, plus optimistic may-move candidates for lower
// bounds). Equivalent to Evaluate/EvaluateOptimistic up to floating-point
// association order.
func (e *Evaluator) EvalSet(zero bitset.Set) float64 {
	nDyn := int32(len(e.dynIdx))
	minPos := nDyn
	for wi := range e.cur {
		changed := e.cur[wi] ^ zero[wi]
		e.cur[wi] = zero[wi]
		for changed != 0 {
			ord := wi<<6 | bits.TrailingZeros64(changed)
			changed &= changed - 1
			ni := e.pseudoNode[ord]
			nv := e.baseProb[ord]
			if zero.Has(ord) {
				nv = 0
			}
			if nv == e.v[ni] {
				continue
			}
			e.v[ni] = nv
			for _, s := range e.outs[ni] {
				if p := e.dynPos[s]; !e.dirty[s] {
					e.dirty[s] = true
					if p < minPos {
						minPos = p
					}
				}
			}
		}
	}
	if minPos == nDyn {
		return e.constTotal + e.dynTotal
	}
	e.evals++
	for pos := minPos; pos < nDyn; pos++ {
		ni := e.dynIdx[pos]
		if !e.dirty[ni] {
			continue
		}
		e.dirty[ni] = false
		e.recomputes++
		prod := e.invariant[pos]
		from := e.inFrom[pos]
		probs := e.inProb[pos]
		for k, src := range from {
			prod *= 1 - probs[k]*e.v[src]
		}
		x := 1 - prod
		if x == e.v[ni] {
			continue
		}
		e.v[ni] = x
		for _, s := range e.outs[ni] {
			if !e.dirty[s] {
				e.dirty[s] = true
			}
		}
	}
	// Re-sum rather than accumulate deltas: same zero-set, same cost,
	// bit-for-bit, independent of evaluation history.
	e.dynTotal = e.sumDynamic()
	return e.constTotal + e.dynTotal
}

// EvaluatorPool hands out per-worker Evaluators of one model. The
// parallel partition search runs one walker per goroutine, and each
// walker needs a private Evaluator (the incremental state in the
// evaluator is single-threaded by design); pooling them keeps the
// propagation state warm across the short subtree tasks a worker drains
// instead of rebuilding the dense arrays per task. The pool additionally
// remembers every evaluator it ever created so the search can aggregate
// Evals/Recomputes across workers after the fan-out joins.
type EvaluatorPool struct {
	m    *Model
	pool sync.Pool

	mu  sync.Mutex
	all []*Evaluator
}

// NewEvaluatorPool returns an empty pool of evaluators for the model.
func (m *Model) NewEvaluatorPool() *EvaluatorPool {
	p := &EvaluatorPool{m: m}
	p.pool.New = func() any {
		e := m.NewEvaluator()
		p.mu.Lock()
		p.all = append(p.all, e)
		p.mu.Unlock()
		return e
	}
	return p
}

// Get hands out an evaluator (freshly built or recycled with its
// incremental state intact).
func (p *EvaluatorPool) Get() *Evaluator { return p.pool.Get().(*Evaluator) }

// Put returns an evaluator to the pool.
func (p *EvaluatorPool) Put(e *Evaluator) { p.pool.Put(e) }

// Evals sums Evals over every evaluator the pool created. Call after the
// goroutines using the pool have joined.
func (p *EvaluatorPool) Evals() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, e := range p.all {
		n += e.Evals()
	}
	return n
}

// Recomputes sums Recomputes over every evaluator the pool created. Call
// after the goroutines using the pool have joined.
func (p *EvaluatorPool) Recomputes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, e := range p.all {
		n += e.Recomputes()
	}
	return n
}
